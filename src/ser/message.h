// The abstract protocol message.
//
// The deterministic simulator passes messages by shared pointer (no
// serialization on the hot path); the metrics layer charges each send by
// `wire_size()`, and the TCP transport uses `serialize()` plus a
// `MessageCodec` for real framing. Concrete message types live with the
// protocol that owns them (consensus/ and pacemaker/ / core/).
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/types.h"
#include "ser/serializer.h"

namespace lumiere {

/// Collects the authenticator claims a message carries, so a pipeline
/// worker can pre-verify them off the consensus thread (runtime/pipeline.h).
/// `message` is the statement digest in the same convention the verify
/// API uses (shares: the pre-domain-separation statement).
class AuthClaimSink {
 public:
  virtual ~AuthClaimSink() = default;
  virtual void share(const crypto::Digest& message, const crypto::PartialSig& share) = 0;
  virtual void aggregate(const crypto::ThresholdSig& sig) = 0;
};

class Message {
 public:
  virtual ~Message() = default;

  /// Globally unique wire tag. Ranges: 0x1000 consensus, 0x2000 generic
  /// pacemaker, 0x2100 Cogsworth/NK20, 0x2200 LP22, 0x2300 Fever,
  /// 0x2400 Lumiere, 0x3000 adversary/test, 0x4000 dissemination,
  /// 0x5000 block sync.
  [[nodiscard]] virtual std::uint32_t type_id() const = 0;
  [[nodiscard]] virtual const char* type_name() const = 0;
  [[nodiscard]] virtual MsgClass msg_class() const = 0;

  /// Modeled wire size in bytes; all protocol messages are O(kappa)
  /// (Section 2). Used for byte-level communication accounting.
  [[nodiscard]] virtual std::size_t wire_size() const = 0;

  /// Writes the body (not the type tag) to `w`.
  virtual void serialize(ser::Writer& w) const = 0;

  /// Reports every signature/aggregate this message carries to `sink`
  /// (statement + claim), for off-thread batch verification. Default:
  /// the message carries no authenticator material.
  virtual void collect_auth(AuthClaimSink& sink) const { (void)sink; }
};

using MessagePtr = std::shared_ptr<const Message>;

/// Decoder registry for transports that move real bytes. Codecs are plain
/// objects owned by whoever needs them (no global registry; I.3).
class MessageCodec {
 public:
  using DecodeFn = std::function<MessagePtr(ser::Reader&)>;

  void register_type(std::uint32_t type_id, DecodeFn fn) {
    decoders_[type_id] = std::move(fn);
  }

  /// Installs the authenticator scheme's wire geometry; every Reader this
  /// codec hands to a decoder carries it. Default: the sim default scheme.
  void set_sig_wire(crypto::SigWireSpec spec) noexcept { sig_wire_ = spec; }
  [[nodiscard]] const crypto::SigWireSpec& sig_wire() const noexcept { return sig_wire_; }

  /// Frames `msg` as [u32 type_id || body].
  [[nodiscard]] static std::vector<std::uint8_t> encode(const Message& msg) {
    std::vector<std::uint8_t> out;
    encode_into(msg, out);
    return out;
  }

  /// encode() into a caller-owned buffer, reusing its capacity — the
  /// allocation-free form for per-connection scratch buffers and
  /// broadcast fan-out (encode once, write n frames).
  static void encode_into(const Message& msg, std::vector<std::uint8_t>& out) {
    ser::Writer w(std::move(out));
    w.u32(msg.type_id());
    msg.serialize(w);
    out = std::move(w).take();
  }

  /// Decodes one frame; nullptr on unknown type or malformed body.
  [[nodiscard]] MessagePtr decode(std::span<const std::uint8_t> frame) const {
    ser::Reader r(frame, sig_wire_);
    std::uint32_t type_id = 0;
    if (!r.u32(type_id)) return nullptr;
    const auto it = decoders_.find(type_id);
    if (it == decoders_.end()) return nullptr;
    return it->second(r);
  }

  /// All registered type ids, sorted — lets tests sweep every decodable
  /// type (e.g. the wire-size drift check) without a parallel list.
  [[nodiscard]] std::vector<std::uint32_t> registered_types() const {
    std::vector<std::uint32_t> ids;
    ids.reserve(decoders_.size());
    for (const auto& [id, fn] : decoders_) ids.push_back(id);
    std::sort(ids.begin(), ids.end());
    return ids;
  }

 private:
  std::unordered_map<std::uint32_t, DecodeFn> decoders_;
  crypto::SigWireSpec sig_wire_;
};

}  // namespace lumiere
