// Minimal binary serialization with explicit wire-size accounting.
//
// Every protocol message in this repository can be flattened to bytes and
// parsed back; the deterministic simulator mostly passes messages by value
// for speed, but (a) the TCP transport needs real frames, (b) the metrics
// layer charges communication by serialized size, and (c) round-trip tests
// catch representational drift between modules.
//
// Encoding: little-endian fixed-width integers, u32-length-prefixed byte
// strings. Readers never throw on malformed input; they return false /
// std::nullopt (truncated or corrupt frames are an expected runtime
// condition on a real network).
#pragma once

#include <cstdint>
#include <cstring>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/signer_set.h"
#include "common/time.h"
#include "common/types.h"
#include "crypto/authenticator.h"
#include "crypto/sha256.h"
#include "crypto/sig_wire.h"

namespace lumiere::ser {

/// Largest cluster size (`SignerSet` universe) a decoder will accept from
/// the wire. Bounds the bitmap allocation a single malformed message can
/// trigger; real deployments are orders of magnitude below this.
inline constexpr std::uint32_t kMaxWireUniverse = 1u << 20;

/// Append-only byte sink.
class Writer {
 public:
  Writer() = default;
  explicit Writer(std::size_t reserve) { bytes_.reserve(reserve); }
  /// Reusable-buffer mode: adopts `reuse`'s storage (cleared, capacity
  /// kept) so hot encode loops amortize to zero allocations. Recover the
  /// buffer afterwards with std::move(w).take().
  explicit Writer(std::vector<std::uint8_t>&& reuse) noexcept : bytes_(std::move(reuse)) {
    bytes_.clear();
  }

  void u8(std::uint8_t v) { bytes_.push_back(v); }
  void u16(std::uint16_t v) { append_le(v); }
  void u32(std::uint32_t v) { append_le(v); }
  void u64(std::uint64_t v) { append_le(v); }
  void i64(std::int64_t v) { append_le(static_cast<std::uint64_t>(v)); }

  void boolean(bool v) { u8(v ? 1 : 0); }
  void view(View v) { i64(v); }
  void epoch(Epoch e) { i64(e); }
  void process(ProcessId p) { u32(p); }
  void time_point(TimePoint t) { i64(t.ticks()); }
  void duration(Duration d) { i64(d.ticks()); }

  void bytes(std::span<const std::uint8_t> data) {
    u32(static_cast<std::uint32_t>(data.size()));
    bytes_.insert(bytes_.end(), data.begin(), data.end());
  }
  void str(std::string_view s) {
    bytes(std::span<const std::uint8_t>(reinterpret_cast<const std::uint8_t*>(s.data()),
                                        s.size()));
  }
  void digest(const crypto::Digest& d) {
    bytes_.insert(bytes_.end(), d.bytes().begin(), d.bytes().end());
  }
  /// Length-prefix-free append; the length must be recoverable by the
  /// reader (fixed by the format or by its SigWireSpec).
  void raw(std::span<const std::uint8_t> data) {
    bytes_.insert(bytes_.end(), data.begin(), data.end());
  }
  void signer_set(const SignerSet& set);

  // Signature material ships as raw scheme-length blobs: the reader
  // recovers the lengths from its SigWireSpec, so no per-signature length
  // prefix is spent (and the default sim scheme stays byte-identical to the
  // old fixed-Digest wire format).
  void partial_sig(const crypto::PartialSig& s) {
    process(s.signer);
    raw(s.sig.span());
  }
  void threshold_sig(const crypto::ThresholdSig& s) {
    digest(s.message);
    signer_set(s.signers);
    raw(s.tag.span());
  }

  [[nodiscard]] const std::vector<std::uint8_t>& data() const noexcept { return bytes_; }
  [[nodiscard]] std::vector<std::uint8_t> take() && noexcept { return std::move(bytes_); }
  [[nodiscard]] std::size_t size() const noexcept { return bytes_.size(); }

 private:
  template <typename T>
  void append_le(T v) {
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      bytes_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }

  std::vector<std::uint8_t> bytes_;
};

/// Sequential byte source over a borrowed buffer. Carries the
/// authenticator scheme's wire geometry (crypto/sig_wire.h) so signature
/// blobs and aggregation tags can be cut out of the frame; the default
/// spec is the sim default scheme, keeping all legacy byte streams
/// decodable without further configuration.
class Reader {
 public:
  explicit Reader(std::span<const std::uint8_t> data,
                  crypto::SigWireSpec sig_wire = {}) noexcept
      : data_(data), sig_wire_(sig_wire) {}

  [[nodiscard]] const crypto::SigWireSpec& sig_wire() const noexcept { return sig_wire_; }

  [[nodiscard]] bool u8(std::uint8_t& out) { return read_le(out); }
  [[nodiscard]] bool u16(std::uint16_t& out) { return read_le(out); }
  [[nodiscard]] bool u32(std::uint32_t& out) { return read_le(out); }
  [[nodiscard]] bool u64(std::uint64_t& out) { return read_le(out); }
  [[nodiscard]] bool i64(std::int64_t& out) {
    std::uint64_t raw = 0;
    if (!read_le(raw)) return false;
    out = static_cast<std::int64_t>(raw);
    return true;
  }

  [[nodiscard]] bool boolean(bool& out) {
    std::uint8_t raw = 0;
    if (!u8(raw) || raw > 1) return false;
    out = raw == 1;
    return true;
  }
  [[nodiscard]] bool view(View& out) { return i64(out); }
  [[nodiscard]] bool epoch(Epoch& out) { return i64(out); }
  [[nodiscard]] bool process(ProcessId& out) { return u32(out); }
  [[nodiscard]] bool time_point(TimePoint& out) {
    std::int64_t t = 0;
    if (!i64(t)) return false;
    out = TimePoint(t);
    return true;
  }
  [[nodiscard]] bool duration(Duration& out) {
    std::int64_t t = 0;
    if (!i64(t)) return false;
    out = Duration(t);
    return true;
  }

  [[nodiscard]] bool bytes(std::vector<std::uint8_t>& out);
  [[nodiscard]] bool str(std::string& out);
  [[nodiscard]] bool digest(crypto::Digest& out);
  [[nodiscard]] bool signer_set(SignerSet& out);
  /// Reads exactly `count` bytes into `out` (resized).
  [[nodiscard]] bool raw(crypto::SigBytes& out, std::size_t count);
  [[nodiscard]] bool partial_sig(crypto::PartialSig& out);
  [[nodiscard]] bool threshold_sig(crypto::ThresholdSig& out);

  [[nodiscard]] std::size_t remaining() const noexcept { return data_.size() - pos_; }
  [[nodiscard]] bool exhausted() const noexcept { return pos_ == data_.size(); }

 private:
  template <typename T>
  [[nodiscard]] bool read_le(T& out) {
    if (remaining() < sizeof(T)) return false;
    T v = 0;
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      v |= static_cast<T>(static_cast<T>(data_[pos_ + i]) << (8 * i));
    }
    pos_ += sizeof(T);
    out = v;
    return true;
  }

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
  crypto::SigWireSpec sig_wire_;
};

}  // namespace lumiere::ser
