#include "ser/serializer.h"

namespace lumiere::ser {

void Writer::signer_set(const SignerSet& set) {
  u32(set.universe_size());
  u32(set.count());
  for (const ProcessId id : set.members()) process(id);
}

bool Reader::bytes(std::vector<std::uint8_t>& out) {
  std::uint32_t len = 0;
  if (!u32(len)) return false;
  if (remaining() < len) return false;
  out.assign(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
             data_.begin() + static_cast<std::ptrdiff_t>(pos_ + len));
  pos_ += len;
  return true;
}

bool Reader::str(std::string& out) {
  std::uint32_t len = 0;
  if (!u32(len)) return false;
  if (remaining() < len) return false;
  out.assign(reinterpret_cast<const char*>(data_.data() + pos_), len);
  pos_ += len;
  return true;
}

bool Reader::digest(crypto::Digest& out) {
  if (remaining() < crypto::Digest::kSize) return false;
  std::array<std::uint8_t, crypto::Digest::kSize> raw{};
  for (std::size_t i = 0; i < raw.size(); ++i) raw[i] = data_[pos_ + i];
  pos_ += raw.size();
  out = crypto::Digest(raw);
  return true;
}

bool Reader::raw(crypto::SigBytes& out, std::size_t count) {
  if (remaining() < count) return false;
  out.assign(data_.subspan(pos_, count));
  pos_ += count;
  return true;
}

bool Reader::partial_sig(crypto::PartialSig& out) {
  ProcessId signer = kNoProcess;
  if (!process(signer)) return false;
  crypto::SigBytes sig;
  if (!raw(sig, sig_wire_.sig_bytes)) return false;
  out.signer = signer;
  out.sig = std::move(sig);
  return true;
}

bool Reader::threshold_sig(crypto::ThresholdSig& out) {
  crypto::Digest message;
  SignerSet signers;
  if (!digest(message) || !signer_set(signers)) return false;
  crypto::SigBytes tag;
  if (!raw(tag, sig_wire_.tag_bytes(signers.count()))) return false;
  out.message = message;
  out.signers = std::move(signers);
  out.tag = std::move(tag);
  return true;
}

bool Reader::signer_set(SignerSet& out) {
  std::uint32_t universe = 0;
  std::uint32_t count = 0;
  if (!u32(universe) || !u32(count)) return false;
  // The universe is the cluster size n; no deployment is anywhere near
  // kMaxWireUniverse, and an unvalidated value would let a malformed
  // message force a ~512MB bitmap allocation before any other check.
  if (universe > kMaxWireUniverse) return false;
  if (count > universe) return false;
  // Each member id occupies sizeof(ProcessId) bytes in the payload, so a
  // count the buffer cannot back is malformed — reject before allocating.
  if (remaining() < static_cast<std::size_t>(count) * sizeof(ProcessId)) return false;
  SignerSet set(universe);
  for (std::uint32_t i = 0; i < count; ++i) {
    ProcessId id = kNoProcess;
    if (!process(id)) return false;
    if (id >= universe) return false;
    if (!set.add(id)) return false;  // duplicate ⇒ malformed
  }
  out = std::move(set);
  return true;
}

}  // namespace lumiere::ser
