// The partial-synchrony message layer (Section 2).
//
// Point-to-point authenticated channels between n processors. The
// adversary (a DelayPolicy) proposes per-message delays; the network
// enforces the model guarantee that a message sent at time t is delivered
// by max(GST, t) + Delta. Messages a processor sends to itself are
// delivered immediately (the paper's convention, Section 4).
//
// Link state is scriptable over time (sim/fault_schedule.h): partitions
// cut groups apart and PARK cross-cut traffic until heal (delayed, never
// destroyed — the adversary's power in this model); crashes cut one
// processor both ways and LOSE its traffic; the global delay policy and
// individual directed links can be re-pointed mid-run. Clusters drive
// these transitions from a FaultSchedule; tests may call the setters
// directly.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "common/params.h"
#include "common/rng.h"
#include "common/time.h"
#include "common/types.h"
#include "ser/message.h"
#include "sim/delay_policy.h"
#include "sim/fault_schedule.h"
#include "sim/simulator.h"
#include "sim/transport_iface.h"

namespace lumiere::sim {

/// Receives every send/delivery; used by the metrics layer and by tests.
class NetworkObserver {
 public:
  virtual ~NetworkObserver() = default;
  virtual void on_send(TimePoint at, ProcessId from, ProcessId to, const Message& msg) = 0;
  virtual void on_deliver(TimePoint at, ProcessId from, ProcessId to, const Message& msg) = 0;
  /// One broadcast = n sends of one payload (self included, per the
  /// paper's broadcast convention). The default expands to per-peer
  /// on_send calls, matching the legacy behavior exactly; accounting
  /// observers override it to charge the payload once instead of n-1
  /// times (wire size, type lookup and log append are identical per
  /// copy).
  virtual void on_broadcast(TimePoint at, ProcessId from, const Message& msg, std::uint32_t n) {
    for (ProcessId to = 0; to < n; ++to) on_send(at, from, to, msg);
  }
};

class Network final : public MessageTransport {
 public:
  /// `gst` and `delta_cap` define the partial-synchrony envelope;
  /// `policy` is the adversary's delay choice (may be null => all
  /// messages take the full allowed bound, the worst permitted case).
  Network(Simulator* sim, std::uint32_t n, TimePoint gst, Duration delta_cap,
          std::shared_ptr<DelayPolicy> policy, std::uint64_t seed);

  using DeliverFn = MessageTransport::DeliverFn;

  /// Binds the receive callback for processor `id`. Must be called once
  /// per processor before any traffic flows to it.
  void register_endpoint(ProcessId id, DeliverFn fn) override;

  /// Point-to-point send. Self-sends deliver at the current instant.
  void send(ProcessId from, ProcessId to, MessagePtr msg) override;

  /// Sends to all n processors, including `from` itself (the paper's
  /// broadcast convention).
  void broadcast(ProcessId from, const MessagePtr& msg) override;

  void set_observer(NetworkObserver* observer) noexcept { observer_ = observer; }

  // ---- scriptable link state (the fault-schedule executor) -------------

  /// Applies one scripted event at the current instant.
  void apply(const FaultEvent& event);

  /// Cuts links between distinct groups; cross-cut sends park until
  /// heal(). Nodes appearing in no group keep all their links.
  void set_partition(const std::vector<std::vector<ProcessId>>& groups);
  /// One-way cut: sends from any node in `from` to any node in `to` park
  /// until heal(); the reverse direction flows. Independent of the
  /// symmetric partition layer; a new call replaces the active asym cut.
  void set_asym_partition(const std::vector<ProcessId>& from,
                          const std::vector<ProcessId>& to);
  /// Removes the active partition (symmetric and asymmetric) and releases
  /// parked traffic (delivered from the current instant under the usual
  /// delay computation). No-op when no partition is active.
  void heal();
  /// `down = true` takes `id` down (crash / churn-leave): it emits
  /// nothing, and anything arriving while it is down is lost. `false`
  /// readmits it. Local protocol state is untouched; down-ness is checked
  /// at the sender on send and at the receiver on delivery, so a message
  /// in flight (or parked) across a crash window that has ended by its
  /// arrival is still delivered.
  void set_down(ProcessId id, bool down);
  /// Replaces the adversary's global delay policy from now on.
  void set_delay_policy(std::shared_ptr<DelayPolicy> policy);
  /// Overrides the directed link from->to (nullptr restores the global
  /// policy for that link).
  void set_link_delay(ProcessId from, ProcessId to, std::shared_ptr<DelayPolicy> policy);

  /// Cuts a processor off permanently (legacy crash simulation; equals
  /// set_down(id, true)).
  void disconnect(ProcessId id);
  [[nodiscard]] bool disconnected(ProcessId id) const { return down_[id]; }

  [[nodiscard]] bool partition_active() const noexcept { return partition_active_; }
  [[nodiscard]] bool asym_partition_active() const noexcept { return asym_active_; }
  /// Cross-partition messages currently parked awaiting heal().
  [[nodiscard]] std::size_t parked_count() const noexcept { return parked_.size(); }

  [[nodiscard]] TimePoint gst() const noexcept { return gst_; }
  [[nodiscard]] Duration delta_cap() const noexcept { return delta_cap_; }
  [[nodiscard]] std::uint32_t n() const noexcept {
    return static_cast<std::uint32_t>(endpoints_.size());
  }

  /// Total point-to-point messages accepted for delivery (excludes
  /// self-sends, which are not network traffic).
  [[nodiscard]] std::uint64_t total_messages() const noexcept { return total_messages_; }

 private:
  struct Parked {
    ProcessId from;
    ProcessId to;
    MessagePtr msg;
  };

  /// A pooled in-flight delivery. Scheduling one send captures only this
  /// record's pointer (8 bytes, always inline in EventFn) and fires one
  /// shared trampoline; the record recycles through delivery_free_ so the
  /// steady-state send path performs no allocation.
  struct Delivery {
    Network* net = nullptr;
    ProcessId from = kNoProcess;
    ProcessId to = kNoProcess;
    MessagePtr msg;
  };

  /// True when an active partition separates `from` and `to`.
  [[nodiscard]] bool cut(ProcessId from, ProcessId to) const;
  /// Parks (under an active cut) or schedules a non-self message already
  /// charged to the observer/counters.
  void route(ProcessId from, ProcessId to, MessagePtr msg);
  /// Computes the clamped delivery instant for a message sent now and
  /// schedules it.
  void schedule_delivery(ProcessId from, ProcessId to, MessagePtr msg);
  /// Schedules a pooled delivery of `msg` firing at `at`.
  void schedule_pooled(TimePoint at, ProcessId from, ProcessId to, MessagePtr msg);
  /// The shared trampoline: delivers, then recycles the record.
  void run_delivery(Delivery* record);
  void deliver(ProcessId from, ProcessId to, const MessagePtr& msg);

  Simulator* sim_;
  TimePoint gst_;
  Duration delta_cap_;
  std::shared_ptr<DelayPolicy> policy_;
  Rng rng_;
  std::vector<DeliverFn> endpoints_;
  std::vector<bool> down_;
  /// Partition group per node; kUngrouped = in no group (fully connected).
  bool partition_active_ = false;
  std::vector<std::uint32_t> group_;
  /// One-way cut membership (asym_from_[a] && asym_to_[b] => a->b parks).
  bool asym_active_ = false;
  std::vector<bool> asym_from_;
  std::vector<bool> asym_to_;
  /// Cross-partition traffic awaiting heal, in send order.
  std::vector<Parked> parked_;
  /// Directed per-link delay overrides (win over policy_).
  std::map<std::pair<ProcessId, ProcessId>, std::shared_ptr<DelayPolicy>> link_policy_;
  NetworkObserver* observer_ = nullptr;
  std::uint64_t total_messages_ = 0;
  /// Delivery-record pool. Deque: records are referenced by scheduled
  /// events, so growth must not move existing records.
  std::deque<Delivery> delivery_slab_;
  std::vector<Delivery*> delivery_free_;
};

}  // namespace lumiere::sim
