// The partial-synchrony message layer (Section 2).
//
// Point-to-point authenticated channels between n processors. The
// adversary (a DelayPolicy) proposes per-message delays; the network
// enforces the model guarantee that a message sent at time t is delivered
// by max(GST, t) + Delta. Messages a processor sends to itself are
// delivered immediately (the paper's convention, Section 4).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/params.h"
#include "common/rng.h"
#include "common/time.h"
#include "common/types.h"
#include "ser/message.h"
#include "sim/delay_policy.h"
#include "sim/simulator.h"
#include "sim/transport_iface.h"

namespace lumiere::sim {

/// Receives every send/delivery; used by the metrics layer and by tests.
class NetworkObserver {
 public:
  virtual ~NetworkObserver() = default;
  virtual void on_send(TimePoint at, ProcessId from, ProcessId to, const Message& msg) = 0;
  virtual void on_deliver(TimePoint at, ProcessId from, ProcessId to, const Message& msg) = 0;
};

class Network final : public MessageTransport {
 public:
  /// `gst` and `delta_cap` define the partial-synchrony envelope;
  /// `policy` is the adversary's delay choice (may be null => all
  /// messages take the full allowed bound, the worst permitted case).
  Network(Simulator* sim, std::uint32_t n, TimePoint gst, Duration delta_cap,
          std::shared_ptr<DelayPolicy> policy, std::uint64_t seed);

  using DeliverFn = MessageTransport::DeliverFn;

  /// Binds the receive callback for processor `id`. Must be called once
  /// per processor before any traffic flows to it.
  void register_endpoint(ProcessId id, DeliverFn fn) override;

  /// Point-to-point send. Self-sends deliver at the current instant.
  void send(ProcessId from, ProcessId to, MessagePtr msg) override;

  /// Sends to all n processors, including `from` itself (the paper's
  /// broadcast convention).
  void broadcast(ProcessId from, const MessagePtr& msg) override;

  void set_observer(NetworkObserver* observer) noexcept { observer_ = observer; }

  /// Cuts a processor off (crash simulation): all its future inbound
  /// deliveries and outbound sends are dropped.
  void disconnect(ProcessId id);
  [[nodiscard]] bool disconnected(ProcessId id) const { return disconnected_[id]; }

  [[nodiscard]] TimePoint gst() const noexcept { return gst_; }
  [[nodiscard]] Duration delta_cap() const noexcept { return delta_cap_; }
  [[nodiscard]] std::uint32_t n() const noexcept {
    return static_cast<std::uint32_t>(endpoints_.size());
  }

  /// Total point-to-point messages accepted for delivery (excludes
  /// self-sends, which are not network traffic).
  [[nodiscard]] std::uint64_t total_messages() const noexcept { return total_messages_; }

 private:
  void deliver(ProcessId from, ProcessId to, const MessagePtr& msg);

  Simulator* sim_;
  TimePoint gst_;
  Duration delta_cap_;
  std::shared_ptr<DelayPolicy> policy_;
  Rng rng_;
  std::vector<DeliverFn> endpoints_;
  std::vector<bool> disconnected_;
  NetworkObserver* observer_ = nullptr;
  std::uint64_t total_messages_ = 0;
};

}  // namespace lumiere::sim
