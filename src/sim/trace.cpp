#include "sim/trace.h"

namespace lumiere::sim {

const char* to_string(TraceKind kind) {
  switch (kind) {
    case TraceKind::kViewEntered:
      return "view-entered";
    case TraceKind::kQcFormed:
      return "qc-formed";
    case TraceKind::kCommitted:
      return "committed";
    case TraceKind::kSyncStarted:
      return "sync-started";
    case TraceKind::kSyncCompleted:
      return "sync-completed";
    case TraceKind::kCustom:
      return "custom";
  }
  return "?";
}

std::vector<TraceEvent> TraceLog::filtered(
    const std::function<bool(const TraceEvent&)>& predicate) const {
  std::vector<TraceEvent> out;
  for (const auto& event : events_) {
    if (predicate(event)) out.push_back(event);
  }
  return out;
}

std::vector<TraceEvent> TraceLog::of_kind(TraceKind kind, ProcessId node) const {
  return filtered([kind, node](const TraceEvent& event) {
    return event.kind == kind && (node == kNoProcess || event.node == node);
  });
}

const TraceEvent* TraceLog::first_after(TraceKind kind, TimePoint from) const {
  for (const auto& event : events_) {
    if (event.kind == kind && event.at >= from) return &event;
  }
  return nullptr;
}

void TraceLog::dump(std::ostream& os, std::size_t max_events) const {
  std::size_t count = 0;
  for (const auto& event : events_) {
    if (count++ >= max_events) {
      os << "... (" << events_.size() - max_events << " more)\n";
      return;
    }
    os << event.at << " " << to_string(event.kind) << " p" << event.node << " view "
       << event.view;
    if (!event.note.empty()) os << " [" << event.note << "]";
    os << "\n";
  }
}

}  // namespace lumiere::sim
