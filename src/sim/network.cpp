#include "sim/network.h"

#include "common/assert.h"

namespace lumiere::sim {

Network::Network(Simulator* sim, std::uint32_t n, TimePoint gst, Duration delta_cap,
                 std::shared_ptr<DelayPolicy> policy, std::uint64_t seed)
    : sim_(sim),
      gst_(gst),
      delta_cap_(delta_cap),
      policy_(std::move(policy)),
      rng_(seed ^ 0x6e657477726b2121ULL),
      endpoints_(n),
      disconnected_(n, false) {
  LUMIERE_ASSERT(sim != nullptr);
  LUMIERE_ASSERT(n > 0);
  LUMIERE_ASSERT(delta_cap > Duration::zero());
}

void Network::register_endpoint(ProcessId id, DeliverFn fn) {
  LUMIERE_ASSERT(id < endpoints_.size());
  LUMIERE_ASSERT_MSG(!endpoints_[id], "endpoint registered twice");
  endpoints_[id] = std::move(fn);
}

void Network::send(ProcessId from, ProcessId to, MessagePtr msg) {
  LUMIERE_ASSERT(from < endpoints_.size() && to < endpoints_.size());
  LUMIERE_ASSERT(msg != nullptr);
  if (disconnected_[from]) return;

  const TimePoint now = sim_->now();

  if (from == to) {
    // The paper's convention: a processor's message to itself is received
    // immediately. Scheduled at the current instant (not called inline) so
    // handlers never re-enter protocol code.
    if (observer_ != nullptr) observer_->on_send(now, from, to, *msg);
    sim_->schedule_at(now, [this, from, to, msg] { deliver(from, to, msg); });
    return;
  }

  // The adversary proposes; the model clamps. `latest` is the hard bound
  // max(GST, t) + Delta from Section 2.
  const TimePoint latest = std::max(gst_, now) + delta_cap_;
  Duration proposed =
      policy_ != nullptr ? policy_->propose_delay(from, to, *msg, now, rng_) : Duration::max();
  if (proposed < Duration::zero()) proposed = Duration::zero();
  TimePoint delivery = (proposed == Duration::max()) ? latest : now + proposed;
  if (delivery > latest) delivery = latest;

  ++total_messages_;
  if (observer_ != nullptr) observer_->on_send(now, from, to, *msg);
  sim_->schedule_at(delivery, [this, from, to, msg] { deliver(from, to, msg); });
}

void Network::broadcast(ProcessId from, const MessagePtr& msg) {
  for (ProcessId to = 0; to < endpoints_.size(); ++to) {
    send(from, to, msg);
  }
}

void Network::disconnect(ProcessId id) {
  LUMIERE_ASSERT(id < disconnected_.size());
  disconnected_[id] = true;
}

void Network::deliver(ProcessId from, ProcessId to, const MessagePtr& msg) {
  if (disconnected_[to]) return;
  if (!endpoints_[to]) return;  // endpoint never registered (inactive node)
  if (observer_ != nullptr) observer_->on_deliver(sim_->now(), from, to, *msg);
  endpoints_[to](from, msg);
}

}  // namespace lumiere::sim
