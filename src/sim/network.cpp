#include "sim/network.h"

#include <algorithm>

#include "common/assert.h"

namespace lumiere::sim {

Network::Network(Simulator* sim, std::uint32_t n, TimePoint gst, Duration delta_cap,
                 std::shared_ptr<DelayPolicy> policy, std::uint64_t seed)
    : sim_(sim),
      gst_(gst),
      delta_cap_(delta_cap),
      policy_(std::move(policy)),
      rng_(seed ^ 0x6e657477726b2121ULL),
      endpoints_(n),
      down_(n, false),
      group_(n, kUngrouped),
      asym_from_(n, false),
      asym_to_(n, false) {
  LUMIERE_ASSERT(sim != nullptr);
  LUMIERE_ASSERT(n > 0);
  LUMIERE_ASSERT(delta_cap > Duration::zero());
}

void Network::register_endpoint(ProcessId id, DeliverFn fn) {
  LUMIERE_ASSERT(id < endpoints_.size());
  LUMIERE_ASSERT_MSG(!endpoints_[id], "endpoint registered twice");
  endpoints_[id] = std::move(fn);
}

bool Network::cut(ProcessId from, ProcessId to) const {
  if (partition_active_ && partition_cuts(group_, from, to)) return true;
  return asym_active_ && asym_from_[from] && asym_to_[to];
}

void Network::send(ProcessId from, ProcessId to, MessagePtr msg) {
  LUMIERE_ASSERT(from < endpoints_.size() && to < endpoints_.size());
  LUMIERE_ASSERT(msg != nullptr);
  if (down_[from]) return;

  const TimePoint now = sim_->now();

  if (from == to) {
    // The paper's convention: a processor's message to itself is received
    // immediately. Scheduled at the current instant (not called inline) so
    // handlers never re-enter protocol code.
    if (observer_ != nullptr) observer_->on_send(now, from, to, *msg);
    schedule_pooled(now, from, to, std::move(msg));
    return;
  }

  // A down receiver is NOT checked here: the send is real honest traffic
  // (it must count in the metrics) and the message travels regardless —
  // deliver() drops it iff the receiver is still down at arrival, exactly
  // like any other in-flight message.
  ++total_messages_;
  if (observer_ != nullptr) observer_->on_send(now, from, to, *msg);

  route(from, to, std::move(msg));
}

void Network::route(ProcessId from, ProcessId to, MessagePtr msg) {
  if (cut(from, to)) {
    // The adversary may delay but never destroy: cross-partition traffic
    // parks and is released by heal(). (Dropping instead would violate
    // the reliable-channel assumption and permanently wedge the
    // epoch-certificate protocols — a lost epoch cert never retransmits.)
    parked_.push_back(Parked{from, to, std::move(msg)});
    return;
  }
  schedule_delivery(from, to, std::move(msg));
}

void Network::schedule_delivery(ProcessId from, ProcessId to, MessagePtr msg) {
  const TimePoint now = sim_->now();
  // The adversary proposes; the model clamps. `latest` is the hard bound
  // max(GST, t) + Delta from Section 2.
  const TimePoint latest = std::max(gst_, now) + delta_cap_;
  DelayPolicy* policy = policy_.get();
  if (!link_policy_.empty()) {  // per-link overrides are rare; skip the map when none
    const auto link = link_policy_.find({from, to});
    if (link != link_policy_.end()) policy = link->second.get();
  }
  Duration proposed =
      policy != nullptr ? policy->propose_delay(from, to, *msg, now, rng_) : Duration::max();
  if (proposed < Duration::zero()) proposed = Duration::zero();
  TimePoint delivery = (proposed == Duration::max()) ? latest : now + proposed;
  if (delivery > latest) delivery = latest;

  schedule_pooled(delivery, from, to, std::move(msg));
}

void Network::schedule_pooled(TimePoint at, ProcessId from, ProcessId to, MessagePtr msg) {
  Delivery* record = nullptr;
  if (!delivery_free_.empty()) {
    record = delivery_free_.back();
    delivery_free_.pop_back();
  } else {
    record = &delivery_slab_.emplace_back();
    record->net = this;
  }
  record->from = from;
  record->to = to;
  record->msg = std::move(msg);
  sim_->post_at(at, [record] { record->net->run_delivery(record); });
}

void Network::run_delivery(Delivery* record) {
  const ProcessId from = record->from;
  const ProcessId to = record->to;
  MessagePtr msg = std::move(record->msg);
  // Recycle before delivering: the handler may send again and reuse the
  // record immediately (the fields are already copied out).
  delivery_free_.push_back(record);
  deliver(from, to, msg);
}

void Network::broadcast(ProcessId from, const MessagePtr& msg) {
  LUMIERE_ASSERT(from < endpoints_.size());
  LUMIERE_ASSERT(msg != nullptr);
  if (down_[from]) return;

  const TimePoint now = sim_->now();
  // One observer charge for the whole fan-out: every copy has the same
  // sender, instant, and payload, so accounting observers can multiply
  // instead of re-deriving wire size and type n-1 times.
  if (observer_ != nullptr) observer_->on_broadcast(now, from, *msg, n());
  total_messages_ += endpoints_.size() - 1;

  // Destination order (and hence RNG draw and event seq order) matches a
  // send() loop exactly — determinism across the two formulations.
  for (ProcessId to = 0; to < endpoints_.size(); ++to) {
    if (to == from) {
      schedule_pooled(now, from, to, msg);
    } else {
      route(from, to, msg);
    }
  }
}

void Network::apply(const FaultEvent& event) {
  switch (event.kind) {
    case FaultKind::kPartition:
      set_partition(event.groups);
      break;
    case FaultKind::kHeal:
      heal();
      break;
    case FaultKind::kCrash:
    case FaultKind::kLeave:
      set_down(event.node, true);
      break;
    case FaultKind::kRecover:
    case FaultKind::kRejoin:
      set_down(event.node, false);
      break;
    case FaultKind::kDelayChange:
      set_delay_policy(event.delay);
      break;
    case FaultKind::kLinkDelay:
      set_link_delay(event.node, event.peer, event.delay);
      break;
    case FaultKind::kAsymPartition:
      LUMIERE_ASSERT_MSG(event.groups.size() == 2,
                         "asym partition needs {senders, receivers} (validate first)");
      set_asym_partition(event.groups[0], event.groups[1]);
      break;
    case FaultKind::kBehaviorChange:
      break;  // executed by the Cluster (the network has no behaviors)
  }
}

void Network::set_partition(const std::vector<std::vector<ProcessId>>& groups) {
  // A new partition replaces any active one; traffic parked under the old
  // cut stays parked until heal() (the links are still down).
  group_ = partition_group_of(groups, static_cast<std::uint32_t>(endpoints_.size()));
  partition_active_ = true;
}

void Network::set_asym_partition(const std::vector<ProcessId>& from,
                                 const std::vector<ProcessId>& to) {
  // A new one-way cut replaces the active one; traffic parked under the
  // old cut stays parked until heal() (the links are still down).
  const auto n = endpoints_.size();
  std::fill(asym_from_.begin(), asym_from_.end(), false);
  std::fill(asym_to_.begin(), asym_to_.end(), false);
  for (const ProcessId id : from) {
    if (id < n) asym_from_[id] = true;
  }
  for (const ProcessId id : to) {
    if (id < n) asym_to_[id] = true;
  }
  asym_active_ = true;
}

void Network::heal() {
  if (!partition_active_ && !asym_active_) return;  // healing a healthy network is a no-op
  partition_active_ = false;
  asym_active_ = false;
  std::fill(group_.begin(), group_.end(), kUngrouped);
  std::fill(asym_from_.begin(), asym_from_.end(), false);
  std::fill(asym_to_.begin(), asym_to_.end(), false);
  // Release ALL parked traffic in send order, as if sent at the heal
  // instant (the adversary delayed each message exactly until the cut
  // lifted). Down endpoints are not special-cased here: deliver() drops a
  // message iff the receiver is down at arrival, the same rule every
  // in-flight message obeys — a crash window that ends before the heal
  // must not destroy a never-retransmitted epoch certificate.
  std::vector<Parked> parked = std::move(parked_);
  parked_.clear();
  for (Parked& p : parked) {
    schedule_delivery(p.from, p.to, std::move(p.msg));
  }
}

void Network::set_down(ProcessId id, bool down) {
  LUMIERE_ASSERT(id < down_.size());
  down_[id] = down;
}

void Network::set_delay_policy(std::shared_ptr<DelayPolicy> policy) {
  policy_ = std::move(policy);
}

void Network::set_link_delay(ProcessId from, ProcessId to, std::shared_ptr<DelayPolicy> policy) {
  LUMIERE_ASSERT(from < endpoints_.size() && to < endpoints_.size());
  if (policy == nullptr) {
    link_policy_.erase({from, to});
  } else {
    link_policy_[{from, to}] = std::move(policy);
  }
}

void Network::disconnect(ProcessId id) { set_down(id, true); }

void Network::deliver(ProcessId from, ProcessId to, const MessagePtr& msg) {
  if (down_[to]) return;
  if (!endpoints_[to]) return;  // endpoint never registered (inactive node)
  if (observer_ != nullptr) observer_->on_deliver(sim_->now(), from, to, *msg);
  endpoints_[to](from, msg);
}

}  // namespace lumiere::sim
