#include "sim/local_clock.h"

#include <vector>

#include "common/assert.h"

namespace lumiere::sim {

LocalClock::LocalClock(Simulator* sim, TimePoint join_time, std::int64_t drift_ppm)
    : sim_(sim), rate_num_(kPpmScale + drift_ppm), anchor_time_(join_time) {
  LUMIERE_ASSERT(sim != nullptr);
  LUMIERE_ASSERT_MSG(join_time >= sim->now(), "cannot join in the past");
  LUMIERE_ASSERT_MSG(rate_num_ > 0, "drift must leave the clock moving forward");
}

Duration LocalClock::scale(Duration real) const {
  return Duration((real.ticks() * rate_num_) / kPpmScale);
}

Duration LocalClock::unscale(Duration value) const {
  // Ceiling division: the first real instant at which scale() has reached
  // `value`. Guarantees scale(unscale(v)) >= v, so a wakeup scheduled at
  // this offset always finds its alarm due (no rescheduling livelock).
  return Duration((value.ticks() * kPpmScale + rate_num_ - 1) / rate_num_);
}

Duration LocalClock::reading() const {
  if (paused_) return paused_value_;
  const Duration elapsed = sim_->now() - anchor_time_;
  if (elapsed < Duration::zero()) return Duration::zero();
  return anchor_value_ + scale(elapsed);
}

void LocalClock::pause() {
  if (paused_) return;
  paused_value_ = reading();
  paused_ = true;
  resync();
}

void LocalClock::unpause() {
  if (!paused_) return;
  anchor_time_ = sim_->now();
  anchor_value_ = paused_value_;
  paused_ = false;
  resync();
}

void LocalClock::bump_to(Duration value) {
  if (value <= reading()) return;
  if (paused_) {
    paused_value_ = value;
  } else {
    // Re-anchor exactly at the bump target: bumps are protocol events
    // (lines 19/39/47 of Algorithm 1) whose values must be hit exactly.
    anchor_time_ = sim_->now();
    anchor_value_ = value;
  }
  // Alarms strictly below the new value were jumped past and are
  // discarded; alarms exactly at the new value have "seen lc == T" and
  // fire now. Removing them from the map before the event runs makes the
  // firing robust to further bumps within the same instant.
  auto it = alarms_.begin();
  while (it != alarms_.end() && it->first <= value) {
    if (it->first == value) {
      sim_->schedule_at(sim_->now(), std::move(it->second.fn));
    }
    it = alarms_.erase(it);
  }
  resync();
}

AlarmId LocalClock::set_alarm(Duration threshold, AlarmFn fn) {
  const Duration r = reading();
  if (threshold < r) return 0;  // "lc == T" can never be seen; inert.
  const AlarmId id = next_id_++;
  alarms_.emplace(threshold, Alarm{id, std::move(fn)});
  if (threshold == r) {
    // Fires immediately (even while paused): the condition holds now.
    sim_->schedule_at(sim_->now(), [this] { fire_due(); });
  } else {
    resync();
  }
  return id;
}

void LocalClock::cancel_alarm(AlarmId id) {
  if (id == 0) return;
  for (auto it = alarms_.begin(); it != alarms_.end(); ++it) {
    if (it->second.id == id) {
      alarms_.erase(it);
      resync();
      return;
    }
  }
}

TimePoint LocalClock::time_for(Duration value) const {
  LUMIERE_ASSERT(!paused_);
  LUMIERE_ASSERT(value >= reading());
  return anchor_time_ + unscale(value - anchor_value_);
}

void LocalClock::resync() {
  pending_.cancel();
  if (paused_ || alarms_.empty()) return;
  const Duration earliest = alarms_.begin()->first;
  // earliest >= reading() is an invariant: bump_to/fire_due drain anything
  // at or below the current value before calling resync.
  TimePoint wake = time_for(earliest);
  // With a drifted rate the pre-join anchor may place the wakeup in the
  // (relative) past; clamp to now.
  if (wake < sim_->now()) wake = sim_->now();
  pending_ = sim_->schedule_at(wake, [this] { fire_due(); });
}

void LocalClock::fire_due() {
  const Duration r = reading();
  std::vector<AlarmFn> due;
  auto it = alarms_.begin();
  while (it != alarms_.end() && it->first <= r) {
    due.push_back(std::move(it->second.fn));
    it = alarms_.erase(it);
  }
  resync();
  for (auto& fn : due) fn();
}

}  // namespace lumiere::sim
