// The per-processor local clock lc(p) of Section 2 / Section 4.
//
// Semantics implemented exactly as the paper specifies:
//  * lc(p) advances in real (simulated) time while running — optionally
//    at a slightly wrong rate (see drift below);
//  * the protocol may PAUSE the clock (it then holds its value) and later
//    UNPAUSE it (it resumes advancing from the held value);
//  * the protocol may BUMP the clock forward to a larger value; bumping
//    never moves the clock backwards;
//  * processors join with lc = 0 at arbitrary times (pre-GST
//    desynchronization is induced by staggering join times, which for
//    drift-free clocks is equivalent to the paper's arbitrary pre-GST
//    drift).
//
// Bounded drift (Section 2 / Section 4 remark: "our analysis is easily
// modified to deal with a scenario where local clocks have bounded drift
// during any interval after GST in which they are not paused or bumped
// forward"): a clock constructed with drift_ppm != 0 advances at rate
// (1 + drift_ppm/1e6) of real time while running. Pauses and bumps
// re-anchor the value exactly, so protocol-visible values (c_v
// thresholds) stay exact; only the *rate between anchor points* drifts.
//
// Alarms model the paper's "upon first seeing lc(p) == c_v" triggers:
// an alarm at threshold T fires exactly when the clock value *reaches* T —
// either by real-time advance or by a bump landing exactly on T. A bump
// that jumps strictly past T silently discards the alarm ("lc == T" is
// never seen); protocols compensate with explicit catch-up logic
// (Algorithm 1 lines 18, 38, 46).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>

#include "common/time.h"
#include "sim/simulator.h"

namespace lumiere::sim {

/// Identifies a registered alarm for cancellation.
using AlarmId = std::uint64_t;

class LocalClock {
 public:
  using AlarmFn = std::function<void()>;

  /// The clock starts running at `join_time` with value zero. `join_time`
  /// must not be in the simulator's past. `drift_ppm` skews the running
  /// rate to (1 + drift_ppm/1e6); |drift_ppm| must be below 1e6.
  LocalClock(Simulator* sim, TimePoint join_time, std::int64_t drift_ppm = 0);

  LocalClock(const LocalClock&) = delete;
  LocalClock& operator=(const LocalClock&) = delete;

  /// Current clock value lc(p). Zero before the join time.
  [[nodiscard]] Duration reading() const;

  [[nodiscard]] bool paused() const noexcept { return paused_; }

  /// The configured rate skew in parts-per-million.
  [[nodiscard]] std::int64_t drift_ppm() const noexcept { return rate_num_ - kPpmScale; }

  /// Holds the clock at its current value. No-op if already paused.
  void pause();

  /// Resumes advancing from the held value. No-op if not paused.
  void unpause();

  /// Moves the clock forward to `value` (Algorithm 1 lines 19/39/47).
  /// No-op if `value <= reading()` — clocks never move backwards
  /// (Lemma 5.2). Pausedness is preserved: a paused clock bumped forward
  /// stays paused at the new value.
  void bump_to(Duration value);

  /// Registers `fn` to run when the clock value reaches `threshold`.
  ///
  ///  * threshold == reading(): fires immediately (as a simulator event at
  ///    the current instant);
  ///  * threshold <  reading(): never fires ("lc == T" cannot be seen);
  ///  * otherwise: fires when real-time advance or an exact-landing bump
  ///    brings the clock to `threshold`; discarded if a bump jumps past.
  ///
  /// Alarms fire at most once.
  AlarmId set_alarm(Duration threshold, AlarmFn fn);

  void cancel_alarm(AlarmId id);

  /// Simulated instant at which the running clock would reach `value`
  /// (for introspection/tests). Requires value >= reading() and !paused().
  [[nodiscard]] TimePoint time_for(Duration value) const;

 private:
  struct Alarm {
    AlarmId id;
    AlarmFn fn;
  };

  void resync() /* reschedules the pending wakeup after any mutation */;
  void fire_due();
  /// Clock value gained over `real` elapsed time at the drifted rate.
  [[nodiscard]] Duration scale(Duration real) const;
  /// Least real elapsed time after which `scale` returns >= `value`.
  [[nodiscard]] Duration unscale(Duration value) const;

  static constexpr std::int64_t kPpmScale = 1'000'000;

  Simulator* sim_;
  std::int64_t rate_num_;       // clock ticks per kPpmScale real ticks
  TimePoint anchor_time_;       // running: reading = anchor_value_ +
  Duration anchor_value_{0};    //   scale(now - anchor_time_)
  Duration paused_value_{0};    // valid while paused_
  bool paused_ = false;
  std::multimap<Duration, Alarm> alarms_;
  AlarmId next_id_ = 1;
  EventHandle pending_;
};

}  // namespace lumiere::sim
