// Fault schedules: a time-indexed script of network/membership events.
//
// The paper's headline stories — "an asynchronous interval, then GST",
// region outages, rolling restarts — are all *sequences* of network
// regimes, not a single static delay policy. A FaultSchedule captures one
// such sequence as data: partitions that later heal, processors that crash
// and recover (or leave and rejoin — churn), and delay-policy changes that
// apply globally or to one directed link from a given instant.
//
// Semantics (enforced by sim::Network, which executes the script):
//   * partition(groups)  — links between different groups are CUT. A
//     message sent across the cut is PARKED, not lost: the partial
//     synchrony adversary may delay but never destroy honest messages, so
//     parked traffic is delivered when the partition heals (at the heal
//     instant, in deterministic send order). Links inside one group — and
//     links touching nodes listed in no group — are unaffected.
//   * asym_partition(from, to) — a ONE-WAY cut: messages from any node in
//     `from` to any node in `to` park; the reverse direction flows. The
//     asymmetric layer is independent of the symmetric partition (both may
//     be active at once); a new asym cut replaces the previous one.
//   * heal               — removes the active partition (symmetric AND
//     asymmetric) and releases every parked message. Healing with no
//     active partition is a no-op (a schedule may heal defensively).
//   * crash(node)        — the processor is down: it emits nothing, and
//     messages ARRIVING while it is down are LOST, not parked (its
//     inbound mail dies with it; in-flight or parked traffic whose
//     arrival postdates a recover is still delivered). Local protocol
//     state persists — on recover(node) it rejoins behind and catches up
//     through the protocol, like a machine whose NIC died and came back.
//   * churn leave/rejoin — alias of crash/recover recorded distinctly in
//     the trace; use ScenarioBuilder::churn() to script it.
//   * delay changes      — replace the adversary's global DelayPolicy, or
//     override one directed link, from the event instant onward. The
//     network still clamps every delivery to max(GST, t) + Delta.
//   * behavior changes   — swap the named adversary::Behavior a node runs
//     from the event instant onward (scripted mid-run Byzantine flips;
//     executed by the Cluster, not the network — the network treats the
//     event as a regime mark only).
//
// Schedules are validated by ScenarioBuilder::validate() (ids in range,
// monotone times, well-formed partitions) and executed deterministically:
// same seed + same schedule => same trace, including events that coincide
// at one timestamp (they fire in declaration order).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/time.h"
#include "common/types.h"
#include "sim/delay_policy.h"

namespace lumiere::sim {

enum class FaultKind : std::uint8_t {
  kPartition,       ///< cut links between `groups`; park cross-cut traffic
  kHeal,            ///< remove active partitions, release parked traffic
  kCrash,           ///< cut `node` both ways; its traffic is lost
  kRecover,         ///< readmit `node`
  kLeave,           ///< churn: `node` leaves (crash semantics, distinct trace)
  kRejoin,          ///< churn: `node` rejoins
  kDelayChange,     ///< swap the global delay policy for `delay`
  kLinkDelay,       ///< override the directed link `node` -> `peer` with `delay`
  kAsymPartition,   ///< one-way cut groups[0] -> groups[1]; park that direction
  kBehaviorChange,  ///< `node` switches to the behavior named `behavior`
};

[[nodiscard]] const char* to_string(FaultKind kind);

/// One scripted event. Which fields are meaningful depends on `kind`.
struct FaultEvent {
  TimePoint at;
  FaultKind kind = FaultKind::kHeal;
  /// kPartition: the disjoint groups that stay internally connected.
  /// kAsymPartition: exactly two groups — senders, then receivers, of the
  /// one-way cut (a node may appear on both sides).
  std::vector<std::vector<ProcessId>> groups;
  /// kCrash/kRecover/kLeave/kRejoin/kBehaviorChange: the affected
  /// processor. kLinkDelay: the sender.
  ProcessId node = kNoProcess;
  /// kLinkDelay: the receiver.
  ProcessId peer = kNoProcess;
  /// kDelayChange/kLinkDelay: the policy applying from `at` onward
  /// (nullptr = the worst permitted: every message at max(GST, t) + Delta).
  std::shared_ptr<DelayPolicy> delay;
  /// kBehaviorChange: the adversary::make_behavior name the node switches
  /// to ("honest" scripts a repentant node).
  std::string behavior;
};

/// The script: events in non-decreasing time order (ScenarioBuilder
/// rejects out-of-order declarations so a reader can scan a scenario
/// top-to-bottom as a timeline).
struct FaultSchedule {
  std::vector<FaultEvent> events;

  [[nodiscard]] bool empty() const noexcept { return events.empty(); }

  /// One-line description of `event` for traces and error messages,
  /// e.g. "partition{0 1|2 3} @2000000us" or "crash p3 @0us".
  [[nodiscard]] static std::string describe(const FaultEvent& event);
};

/// Sentinel for "in no partition group": such a node keeps all its links.
inline constexpr std::uint32_t kUngrouped = static_cast<std::uint32_t>(-1);

/// Per-node group index from a partition event's groups (kUngrouped for
/// nodes listed in no group). Shared by the sim network and the TCP
/// analogue so the two transports cannot disagree on what a cut means.
[[nodiscard]] std::vector<std::uint32_t> partition_group_of(
    const std::vector<std::vector<ProcessId>>& groups, std::uint32_t n);

/// True when an active partition with this group map separates a and b.
[[nodiscard]] inline bool partition_cuts(const std::vector<std::uint32_t>& group_of,
                                         ProcessId a, ProcessId b) {
  return group_of[a] != kUngrouped && group_of[b] != kUngrouped && group_of[a] != group_of[b];
}

}  // namespace lumiere::sim
