// Small-buffer, move-only callable for the simulator hot path.
//
// Every scheduled event used to carry a std::function<void()>, whose
// capture storage is heap-allocated for anything beyond a pointer or two
// — and the common shapes here (a delivery record pointer, a [this, view]
// timer) are exactly the ones worth keeping off the heap when the event
// loop runs millions of pops per simulated second. InlineFn stores
// callables up to kInlineBytes in-place (enough for a MessagePtr plus a
// couple of ids with room to spare) and only boxes larger or
// throwing-move captures behind one pointer.
//
// Move-only on purpose: events fire once, so there is never a reason to
// copy one, and move-only capture (e.g. a pooled buffer) stays legal.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace lumiere::sim {

class InlineFn {
 public:
  /// In-place capture budget. Sized for the delivery/timer shapes the
  /// simulator schedules; bigger callables still work (heap-boxed).
  static constexpr std::size_t kInlineBytes = 48;

  InlineFn() noexcept = default;

  template <typename F, typename D = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, InlineFn> &&
                                        std::is_invocable_r_v<void, D&>>>
  InlineFn(F&& fn) {  // NOLINT(google-explicit-constructor): callable wrapper
    if constexpr (fits_inline<D>) {
      ::new (static_cast<void*>(storage_)) D(std::forward<F>(fn));
      ops_ = &kInlineOps<D>;
    } else {
      ::new (static_cast<void*>(storage_)) D*(new D(std::forward<F>(fn)));
      ops_ = &kBoxedOps<D>;
    }
  }

  InlineFn(InlineFn&& other) noexcept : ops_(other.ops_) {
    if (ops_ != nullptr) {
      ops_->relocate(storage_, other.storage_);
      other.ops_ = nullptr;
    }
  }
  InlineFn& operator=(InlineFn&& other) noexcept {
    if (this != &other) {
      reset();
      ops_ = other.ops_;
      if (ops_ != nullptr) {
        ops_->relocate(storage_, other.storage_);
        other.ops_ = nullptr;
      }
    }
    return *this;
  }

  InlineFn(const InlineFn&) = delete;
  InlineFn& operator=(const InlineFn&) = delete;

  ~InlineFn() { reset(); }

  void reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

  [[nodiscard]] explicit operator bool() const noexcept { return ops_ != nullptr; }

  void operator()() { ops_->invoke(storage_); }

 private:
  struct Ops {
    void (*invoke)(void*);
    /// Move-constructs the callable into `dst` from `src`, then destroys
    /// the source — the pair that makes container reuse allocation-free.
    void (*relocate)(void* dst, void* src) noexcept;
    void (*destroy)(void*) noexcept;
  };

  template <typename D>
  static constexpr bool fits_inline = sizeof(D) <= kInlineBytes &&
                                      alignof(D) <= alignof(std::max_align_t) &&
                                      std::is_nothrow_move_constructible_v<D>;

  template <typename D>
  static constexpr Ops kInlineOps = {
      [](void* p) { (*static_cast<D*>(p))(); },
      [](void* dst, void* src) noexcept {
        ::new (dst) D(std::move(*static_cast<D*>(src)));
        static_cast<D*>(src)->~D();
      },
      [](void* p) noexcept { static_cast<D*>(p)->~D(); },
  };

  template <typename D>
  static constexpr Ops kBoxedOps = {
      [](void* p) { (**static_cast<D**>(p))(); },
      [](void* dst, void* src) noexcept {
        ::new (dst) D*(*static_cast<D**>(src));
      },
      [](void* p) noexcept { delete *static_cast<D**>(p); },
  };

  alignas(std::max_align_t) std::byte storage_[kInlineBytes];
  const Ops* ops_ = nullptr;
};

}  // namespace lumiere::sim
