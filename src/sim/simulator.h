// The simulation driver: a virtual clock over an EventQueue.
#pragma once

#include <cstdint>
#include <optional>

#include "common/assert.h"
#include "common/time.h"
#include "sim/event_queue.h"

namespace lumiere::sim {

/// Owns simulated time. All protocol components hold a Simulator* and
/// schedule work through it; nothing in the library reads wall-clock time.
class Simulator {
 public:
  Simulator() = default;

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  [[nodiscard]] TimePoint now() const noexcept { return now_; }

  EventHandle schedule_at(TimePoint at, EventFn fn) {
    LUMIERE_ASSERT_MSG(at >= now_, "scheduling into the past");
    return queue_.schedule(at, std::move(fn));
  }
  /// Fire-and-forget variant: no cancellation handle (cheaper; the
  /// network's per-message path).
  void post_at(TimePoint at, EventFn fn) {
    LUMIERE_ASSERT_MSG(at >= now_, "scheduling into the past");
    queue_.post(at, std::move(fn));
  }
  EventHandle schedule_after(Duration d, EventFn fn) {
    LUMIERE_ASSERT(d >= Duration::zero());
    return queue_.schedule(now_ + d, std::move(fn));
  }

  /// Runs a single event. Returns false when the queue is empty. The
  /// clock advances to the event's time before its callback runs, so
  /// now() is consistent inside handlers.
  bool step() {
    TimePoint at;
    EventFn fn;
    if (!queue_.pop(at, fn)) return false;
    now_ = at;
    fn();
    return true;
  }

  /// Runs all events with time <= deadline, then advances now to deadline.
  void run_until(TimePoint deadline) {
    while (!queue_.empty_at_or_before(deadline)) {
      const bool ran = step();
      LUMIERE_ASSERT(ran);
      ++executed_;
    }
    now_ = deadline;
  }

  void run_for(Duration d) { run_until(now_ + d); }

  /// Runs until the queue drains or `deadline` (if given) is reached.
  void run_until_idle(std::optional<TimePoint> deadline = std::nullopt) {
    while (!queue_.empty()) {
      if (deadline && queue_.next_time() > *deadline) break;
      const bool ran = step();
      LUMIERE_ASSERT(ran);
      ++executed_;
    }
    if (deadline && *deadline > now_) now_ = *deadline;
  }

  [[nodiscard]] std::uint64_t events_executed() const noexcept { return executed_; }
  [[nodiscard]] bool idle() const { return queue_.empty(); }

  /// Time of the next pending event (for external drivers that pace the
  /// simulator against wall-clock time). Undefined when idle().
  [[nodiscard]] TimePoint next_event_time() const { return queue_.next_time(); }

 private:
  EventQueue queue_;
  TimePoint now_ = TimePoint::origin();
  std::uint64_t executed_ = 0;
};

}  // namespace lumiere::sim
