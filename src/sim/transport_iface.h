// The message-layer seam between protocol stacks and the world.
//
// A Node talks to its peers through this interface only. Two
// implementations exist:
//   * sim::Network — the deterministic partial-synchrony simulator (the
//     primary harness; the only way to control the adversary);
//   * transport::TcpTransportAdapter — real framed bytes over localhost
//     TCP, driven in wall-clock time (transport/realtime.h).
#pragma once

#include <functional>

#include "common/types.h"
#include "ser/message.h"

namespace lumiere {

class MessageTransport {
 public:
  using DeliverFn = std::function<void(ProcessId from, const MessagePtr& msg)>;

  virtual ~MessageTransport() = default;

  /// Binds the receive callback for processor `id`. Must be called once
  /// per hosted processor before any traffic flows to it.
  virtual void register_endpoint(ProcessId id, DeliverFn fn) = 0;

  /// Point-to-point send. Self-sends must deliver (the paper's
  /// convention: a broadcast includes the sender).
  virtual void send(ProcessId from, ProcessId to, MessagePtr msg) = 0;

  /// Sends to all n processors, including `from` itself.
  virtual void broadcast(ProcessId from, const MessagePtr& msg) = 0;
};

}  // namespace lumiere
