#include "sim/topology.h"

#include <algorithm>
#include <map>
#include <sstream>

#include "common/assert.h"

namespace lumiere::sim {
namespace {

std::vector<std::vector<Duration>> symmetric(std::uint32_t regions,
                                             std::vector<std::int64_t> upper_ms) {
  // `upper_ms` lists the strict upper triangle row by row, in milliseconds.
  std::vector<std::vector<Duration>> inter(regions,
                                           std::vector<Duration>(regions, Duration::zero()));
  std::size_t k = 0;
  for (std::uint32_t a = 0; a < regions; ++a) {
    for (std::uint32_t b = a + 1; b < regions; ++b) {
      LUMIERE_ASSERT(k < upper_ms.size());
      inter[a][b] = inter[b][a] = Duration::millis(upper_ms[k++]);
    }
  }
  LUMIERE_ASSERT(k == upper_ms.size());
  return inter;
}

const std::map<std::string, TopologyPreset>& presets() {
  static const std::map<std::string, TopologyPreset> table = [] {
    std::map<std::string, TopologyPreset> t;

    TopologyPreset lan;
    lan.name = "lan";
    lan.regions = 1;
    lan.intra_lo = Duration::micros(50);
    lan.intra_hi = Duration::micros(200);
    t[lan.name] = lan;

    // Three regions, us-east / eu-west / ap-south flavored.
    TopologyPreset wan3;
    wan3.name = "wan3";
    wan3.regions = 3;
    wan3.intra_lo = Duration::micros(250);
    wan3.intra_hi = Duration::millis(1);
    wan3.inter = symmetric(3, {40, 60, 55});
    wan3.jitter = Duration::millis(5);
    t[wan3.name] = wan3;

    // Five regions spanning the Pacific; worst pair ~150ms one-way.
    TopologyPreset wan5;
    wan5.name = "wan5";
    wan5.regions = 5;
    wan5.intra_lo = Duration::micros(250);
    wan5.intra_hi = Duration::millis(1);
    wan5.inter = symmetric(5, {40, 60, 75, 100,  //
                               55, 90, 120,      //
                               45, 130,          //
                               150});
    wan5.jitter = Duration::millis(5);
    t[wan5.name] = wan5;
    return t;
  }();
  return table;
}

}  // namespace

Duration TopologyPreset::max_delay() const {
  Duration worst = intra_hi;
  for (const auto& row : inter) {
    for (const Duration d : row) worst = std::max(worst, d + jitter);
  }
  return worst;
}

bool has_topology_preset(const std::string& name) { return presets().count(name) > 0; }

std::vector<std::string> topology_preset_names() {
  std::vector<std::string> names;
  for (const auto& [name, preset] : presets()) names.push_back(name);
  return names;
}

std::string unknown_topology_message(const std::string& name) {
  std::ostringstream out;
  out << "unknown topology preset \"" << name << "\"; registered presets:";
  for (const auto& known : topology_preset_names()) out << " " << known;
  return out.str();
}

const TopologyPreset& topology_preset(const std::string& name) {
  const auto it = presets().find(name);
  LUMIERE_ASSERT_MSG(it != presets().end(), "unknown topology preset (validate first)");
  return it->second;
}

RegionDelay::RegionDelay(TopologyPreset preset, std::uint32_t n)
    : preset_(std::move(preset)), n_(n) {
  LUMIERE_ASSERT(preset_.regions > 0);
  LUMIERE_ASSERT(n > 0);
}

std::uint32_t RegionDelay::region_of(ProcessId id) const { return id % preset_.regions; }

Duration RegionDelay::propose_delay(ProcessId from, ProcessId to, const Message&, TimePoint,
                                    Rng& rng) {
  const std::uint32_t a = region_of(from);
  const std::uint32_t b = region_of(to);
  if (a == b) {
    return Duration(rng.next_in(preset_.intra_lo.ticks(), preset_.intra_hi.ticks()));
  }
  const Duration base = preset_.inter[a][b];
  const Duration jitter = preset_.jitter > Duration::zero()
                              ? Duration(rng.next_in(0, preset_.jitter.ticks()))
                              : Duration::zero();
  return base + jitter;
}

std::shared_ptr<DelayPolicy> make_topology_delay(const std::string& name, std::uint32_t n) {
  return std::make_shared<RegionDelay>(topology_preset(name), n);
}

}  // namespace lumiere::sim
