// Discrete-event priority queue with stable ordering and O(1) cancellation.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "common/time.h"

namespace lumiere::sim {

using EventFn = std::function<void()>;

/// Cancellation handle for a scheduled event. Default-constructed handles
/// are inert. Cancelling an already-fired or already-cancelled event is a
/// harmless no-op (protocols cancel alarms liberally on clock bumps).
class EventHandle {
 public:
  EventHandle() = default;

  void cancel() noexcept {
    if (auto flag = cancelled_.lock()) *flag = true;
  }
  [[nodiscard]] bool active() const noexcept {
    const auto flag = cancelled_.lock();
    return flag != nullptr && !*flag;
  }

 private:
  friend class EventQueue;
  explicit EventHandle(std::weak_ptr<bool> cancelled) noexcept
      : cancelled_(std::move(cancelled)) {}

  std::weak_ptr<bool> cancelled_;
};

/// Time-ordered event queue. Events at the same instant fire in
/// scheduling order (FIFO), which keeps simulations deterministic.
class EventQueue {
 public:
  EventQueue() = default;

  EventHandle schedule(TimePoint at, EventFn fn);

  [[nodiscard]] bool empty_at_or_before(TimePoint t) const;
  [[nodiscard]] bool empty() const;
  /// Earliest pending (non-cancelled) event time.
  [[nodiscard]] TimePoint next_time() const;

  /// Pops the earliest pending event without running it; returns false if
  /// none pending. The caller advances its clock to `at_out` *before*
  /// invoking `fn_out` so that the callback observes a consistent now().
  bool pop(TimePoint& at_out, EventFn& fn_out);

  [[nodiscard]] std::uint64_t scheduled_count() const noexcept { return seq_; }

 private:
  struct Entry {
    TimePoint at;
    std::uint64_t seq = 0;
    EventFn fn;
    std::shared_ptr<bool> cancelled;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const noexcept {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  void drop_cancelled() const;

  mutable std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::uint64_t seq_ = 0;
};

}  // namespace lumiere::sim
