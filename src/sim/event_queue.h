// Discrete-event priority queue with stable ordering and O(1) cancellation.
//
// Allocation-free in steady state: events live in a recycled slot slab
// (generation-counted, so stale handles are inert), the ordering heap is
// a flat 4-ary heap of POD entries, and callables use InlineFn's small
// buffer instead of std::function's heap capture. Popping MOVES the
// callable out of its slot — nothing on this path copies a callable.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/time.h"
#include "sim/inline_fn.h"

namespace lumiere::sim {

using EventFn = InlineFn;

namespace detail {

struct EventSlot {
  InlineFn fn;
  std::uint32_t generation = 0;  ///< bumped on every recycle; stales handles
  bool cancelled = false;
};

/// The slot slab, shared (via one shared_ptr per queue, not per event) so
/// handles that outlive the queue stay safe no-ops.
struct EventSlab {
  std::vector<EventSlot> slots;
  std::vector<std::uint32_t> free_list;
  /// Scheduled-but-cancelled events still in the heap. Zero on the hot
  /// path, letting lazy-drop scans skip the slab lookup entirely.
  std::uint32_t cancelled_count = 0;
};

}  // namespace detail

/// Cancellation handle for a scheduled event. Default-constructed handles
/// are inert. Cancelling an already-fired or already-cancelled event is a
/// harmless no-op (protocols cancel alarms liberally on clock bumps).
class EventHandle {
 public:
  EventHandle() = default;

  void cancel() noexcept {
    if (const auto slab = slab_.lock()) {
      detail::EventSlot& slot = slab->slots[slot_];
      if (slot.generation == generation_ && !slot.cancelled) {
        slot.cancelled = true;
        ++slab->cancelled_count;
      }
    }
  }
  [[nodiscard]] bool active() const noexcept {
    const auto slab = slab_.lock();
    if (slab == nullptr) return false;
    const detail::EventSlot& slot = slab->slots[slot_];
    return slot.generation == generation_ && !slot.cancelled;
  }

 private:
  friend class EventQueue;
  EventHandle(std::weak_ptr<detail::EventSlab> slab, std::uint32_t slot,
              std::uint32_t generation) noexcept
      : slab_(std::move(slab)), slot_(slot), generation_(generation) {}

  std::weak_ptr<detail::EventSlab> slab_;
  std::uint32_t slot_ = 0;
  std::uint32_t generation_ = 0;
};

/// Time-ordered event queue. Events at the same instant fire in
/// scheduling order (FIFO), which keeps simulations deterministic.
class EventQueue {
 public:
  EventQueue() : slab_(std::make_shared<detail::EventSlab>()) {}

  // Non-copyable (a copy would share the slot slab while owning its own
  // heap, letting two queues pop and recycle the same slots) and
  // non-movable (a defaulted move would leave the source with a null
  // slab, crashing on the next call). The Simulator owns one for life.
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  EventHandle schedule(TimePoint at, EventFn fn);
  /// schedule() without materializing a cancellation handle — the
  /// message-delivery fast path (a weak_ptr handle costs two atomic
  /// ref-count ops that a fire-and-forget event never uses).
  void post(TimePoint at, EventFn fn);

  [[nodiscard]] bool empty_at_or_before(TimePoint t) const;
  [[nodiscard]] bool empty() const;
  /// Earliest pending (non-cancelled) event time.
  [[nodiscard]] TimePoint next_time() const;

  /// Pops the earliest pending event without running it; returns false if
  /// none pending. The caller advances its clock to `at_out` *before*
  /// invoking `fn_out` so that the callback observes a consistent now().
  bool pop(TimePoint& at_out, EventFn& fn_out);

  [[nodiscard]] std::uint64_t scheduled_count() const noexcept { return seq_; }

 private:
  /// Heap key + slot reference; ordering is (at, seq) lexicographic so
  /// same-instant events keep FIFO order.
  struct HeapEntry {
    TimePoint at;
    std::uint64_t seq = 0;
    std::uint32_t slot = 0;
  };
  static bool before(const HeapEntry& a, const HeapEntry& b) noexcept {
    if (a.at != b.at) return a.at < b.at;
    return a.seq < b.seq;
  }

  /// Acquires a slot for `fn` and pushes its heap entry; returns the slot.
  std::uint32_t emplace_slot(TimePoint at, EventFn&& fn);
  void sift_up(std::size_t i) const;
  void sift_down(std::size_t i) const;
  /// Removes heap_[0] (the heap entry only; the slot is released
  /// separately so pop can move the callable out first).
  void remove_top() const;
  /// Recycles a slot: clears its callable, bumps the generation (staling
  /// outstanding handles) and returns it to the free list.
  void release_slot(std::uint32_t index) const;
  void drop_cancelled() const;

  // mutable: empty()/next_time() lazily drop cancelled events, as the
  // previous priority_queue implementation did.
  mutable std::vector<HeapEntry> heap_;  ///< flat 4-ary min-heap
  std::shared_ptr<detail::EventSlab> slab_;
  std::uint64_t seq_ = 0;
};

}  // namespace lumiere::sim
