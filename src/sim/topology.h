// Named WAN topology presets: per-link delay policies from a region map.
//
// A preset assigns the n processors round-robin to geographic regions and
// draws each message's delay from the region pair's band: a short
// intra-region range, or an inter-region base latency plus jitter. The
// numbers are one-way delays modeled on public inter-region RTT tables
// (intra-DC well under a millisecond; cross-continent tens of
// milliseconds) — close enough for the shapes the benches measure.
//
// Presets are looked up by name the same way protocols are: unknown names
// produce an error listing the registered alternatives, and
// ScenarioBuilder::validate() additionally rejects a preset whose worst
// link exceeds Delta (the model would clamp it and silently change the
// experiment).
//
//   builder.topology("wan3");   // 3 regions, <= ~65ms one-way
//   builder.topology("wan5");   // 5 regions, <= ~155ms one-way
//   builder.topology("lan");    // one region, 50-200us
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "sim/delay_policy.h"

namespace lumiere::sim {

/// The data behind one named topology.
struct TopologyPreset {
  std::string name;
  std::uint32_t regions = 1;
  /// Intra-region delay range (uniform).
  Duration intra_lo = Duration::micros(50);
  Duration intra_hi = Duration::micros(200);
  /// One-way base delay between distinct regions, indexed [a][b] (= [b][a]).
  std::vector<std::vector<Duration>> inter;
  /// Additive uniform [0, jitter] on inter-region messages.
  Duration jitter = Duration::zero();

  /// Worst one-way delay any link of this preset can draw.
  [[nodiscard]] Duration max_delay() const;
};

[[nodiscard]] bool has_topology_preset(const std::string& name);
[[nodiscard]] std::vector<std::string> topology_preset_names();
/// The diagnostic for an unknown preset name: names it and lists the
/// registered ones (same style as ProtocolRegistry's unknown-name errors).
[[nodiscard]] std::string unknown_topology_message(const std::string& name);
/// Preset by name; aborts on unknown names (validate first).
[[nodiscard]] const TopologyPreset& topology_preset(const std::string& name);

/// DelayPolicy over a preset: node i lives in region i % regions.
class RegionDelay final : public DelayPolicy {
 public:
  RegionDelay(TopologyPreset preset, std::uint32_t n);

  Duration propose_delay(ProcessId from, ProcessId to, const Message& msg, TimePoint send_time,
                         Rng& rng) override;

  [[nodiscard]] std::uint32_t region_of(ProcessId id) const;
  [[nodiscard]] const TopologyPreset& preset() const noexcept { return preset_; }

 private:
  TopologyPreset preset_;
  std::uint32_t n_;
};

/// Convenience: preset name -> ready policy for an n-node cluster.
[[nodiscard]] std::shared_ptr<DelayPolicy> make_topology_delay(const std::string& name,
                                                               std::uint32_t n);

}  // namespace lumiere::sim
