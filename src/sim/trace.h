// Structured execution traces.
//
// A TraceLog collects protocol-level events (view entries, QC formations,
// commits, sync-span boundaries) with timestamps. Used by tests to assert
// on event orderings and by examples/benches to print timelines; cheap
// enough to stay on in every Cluster run.
//
// Capacity: the log is a bounded ring (default 1 << 18 events). When
// full, the oldest half is discarded in one amortized trim — events()
// keeps returning a plain contiguous vector, so existing callers and the
// gtest matchers still work — and dropped() counts what was evicted. A
// soak-length run therefore holds the most recent window instead of
// growing without limit.
#pragma once

#include <cstdint>
#include <functional>
#include <ostream>
#include <string>
#include <vector>

#include "common/time.h"
#include "common/types.h"

namespace lumiere::sim {

enum class TraceKind : std::uint8_t {
  kViewEntered,
  kQcFormed,
  kCommitted,
  kSyncStarted,    ///< a pacemaker began a view-sync episode
  kSyncCompleted,  ///< that episode closed with a view entry
  kCustom,
};

[[nodiscard]] const char* to_string(TraceKind kind);

struct TraceEvent {
  TimePoint at;
  TraceKind kind = TraceKind::kCustom;
  ProcessId node = kNoProcess;
  View view = -1;
  std::string note;
};

class TraceLog {
 public:
  /// Default capacity: at ~64 bytes/event this bounds the log near 16 MiB.
  static constexpr std::size_t kDefaultCapacity = 1 << 18;

  explicit TraceLog(std::size_t capacity = kDefaultCapacity)
      : capacity_(capacity == 0 ? kDefaultCapacity : capacity) {}

  void record(TraceEvent event) {
    trim_if_full();
    events_.push_back(std::move(event));
  }
  void record(TimePoint at, TraceKind kind, ProcessId node, View view,
              std::string note = {}) {
    trim_if_full();
    events_.push_back(TraceEvent{at, kind, node, view, std::move(note)});
  }

  [[nodiscard]] const std::vector<TraceEvent>& events() const noexcept { return events_; }
  [[nodiscard]] std::size_t size() const noexcept { return events_.size(); }
  [[nodiscard]] bool empty() const noexcept { return events_.empty(); }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  /// Events evicted by the capacity bound since construction/clear().
  [[nodiscard]] std::uint64_t dropped() const noexcept { return dropped_; }
  void clear() {
    events_.clear();
    dropped_ = 0;
  }

  /// Events matching a predicate, in order.
  [[nodiscard]] std::vector<TraceEvent> filtered(
      const std::function<bool(const TraceEvent&)>& predicate) const;

  /// Events of one kind for one node (kNoProcess = any node).
  [[nodiscard]] std::vector<TraceEvent> of_kind(TraceKind kind,
                                                ProcessId node = kNoProcess) const;

  /// First event of `kind` at or after `from`; nullptr if none.
  [[nodiscard]] const TraceEvent* first_after(TraceKind kind, TimePoint from) const;

  /// Human-readable dump (one line per event).
  void dump(std::ostream& os, std::size_t max_events = SIZE_MAX) const;

 private:
  void trim_if_full() {
    if (events_.size() < capacity_) return;
    // Drop the oldest half in one move: O(1) amortized per record, and
    // the survivors stay contiguous for events().
    const std::size_t drop = capacity_ / 2 + 1;
    events_.erase(events_.begin(), events_.begin() + static_cast<std::ptrdiff_t>(drop));
    dropped_ += drop;
  }

  std::size_t capacity_;
  std::uint64_t dropped_ = 0;
  std::vector<TraceEvent> events_;
};

}  // namespace lumiere::sim
