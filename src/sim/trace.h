// Structured execution traces.
//
// A TraceLog collects protocol-level events (view entries, QC formations,
// commits) with timestamps. Used by tests to assert on event orderings
// and by examples/benches to print timelines; cheap enough to stay on in
// every Cluster run.
#pragma once

#include <cstdint>
#include <functional>
#include <ostream>
#include <string>
#include <vector>

#include "common/time.h"
#include "common/types.h"

namespace lumiere::sim {

enum class TraceKind : std::uint8_t {
  kViewEntered,
  kQcFormed,
  kCommitted,
  kCustom,
};

[[nodiscard]] const char* to_string(TraceKind kind);

struct TraceEvent {
  TimePoint at;
  TraceKind kind = TraceKind::kCustom;
  ProcessId node = kNoProcess;
  View view = -1;
  std::string note;
};

class TraceLog {
 public:
  void record(TraceEvent event) { events_.push_back(std::move(event)); }
  void record(TimePoint at, TraceKind kind, ProcessId node, View view,
              std::string note = {}) {
    events_.push_back(TraceEvent{at, kind, node, view, std::move(note)});
  }

  [[nodiscard]] const std::vector<TraceEvent>& events() const noexcept { return events_; }
  [[nodiscard]] std::size_t size() const noexcept { return events_.size(); }
  [[nodiscard]] bool empty() const noexcept { return events_.empty(); }
  void clear() { events_.clear(); }

  /// Events matching a predicate, in order.
  [[nodiscard]] std::vector<TraceEvent> filtered(
      const std::function<bool(const TraceEvent&)>& predicate) const;

  /// Events of one kind for one node (kNoProcess = any node).
  [[nodiscard]] std::vector<TraceEvent> of_kind(TraceKind kind,
                                                ProcessId node = kNoProcess) const;

  /// First event of `kind` at or after `from`; nullptr if none.
  [[nodiscard]] const TraceEvent* first_after(TraceKind kind, TimePoint from) const;

  /// Human-readable dump (one line per event).
  void dump(std::ostream& os, std::size_t max_events = SIZE_MAX) const;

 private:
  std::vector<TraceEvent> events_;
};

}  // namespace lumiere::sim
