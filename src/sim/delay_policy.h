// Message-delay policies: the adversary's control over the network.
//
// In the partial synchrony model the adversary picks GST and all delivery
// delays, subject to: a message sent at time t arrives by
// max(GST, t) + Delta. A DelayPolicy expresses the adversary's *choice*;
// the Network CLAMPS whatever the policy returns to the model bound, so no
// policy — however adversarial — can violate partial synchrony.
#pragma once

#include <memory>

#include "common/rng.h"
#include "common/time.h"
#include "common/types.h"
#include "ser/message.h"

namespace lumiere::sim {

class DelayPolicy {
 public:
  virtual ~DelayPolicy() = default;

  /// Proposed one-way delay for this message. The network clamps the
  /// result into [0, max(GST, send_time) + Delta - send_time].
  [[nodiscard]] virtual Duration propose_delay(ProcessId from, ProcessId to, const Message& msg,
                                               TimePoint send_time, Rng& rng) = 0;
};

/// Every message takes exactly `delay`.
class FixedDelay final : public DelayPolicy {
 public:
  explicit FixedDelay(Duration delay) : delay_(delay) {}
  Duration propose_delay(ProcessId, ProcessId, const Message&, TimePoint, Rng&) override {
    return delay_;
  }

 private:
  Duration delay_;
};

/// Uniform in [lo, hi] — a benign jittery network.
class UniformDelay final : public DelayPolicy {
 public:
  UniformDelay(Duration lo, Duration hi) : lo_(lo), hi_(hi) {
    LUMIERE_ASSERT(lo <= hi);
  }
  Duration propose_delay(ProcessId, ProcessId, const Message&, TimePoint, Rng& rng) override {
    return Duration(rng.next_in(lo_.ticks(), hi_.ticks()));
  }

 private:
  Duration lo_;
  Duration hi_;
};

/// Chaotic before GST (huge proposed delays, clamped by the network to the
/// model bound), uniform [lo, hi] after. This is the standard way to
/// exercise pre-GST asynchrony.
class PreGstChaosDelay final : public DelayPolicy {
 public:
  PreGstChaosDelay(TimePoint gst, Duration lo, Duration hi, Duration chaos_max)
      : gst_(gst), lo_(lo), hi_(hi), chaos_max_(chaos_max) {
    LUMIERE_ASSERT(lo <= hi);
  }
  Duration propose_delay(ProcessId, ProcessId, const Message&, TimePoint send_time,
                         Rng& rng) override {
    if (send_time < gst_) {
      return Duration(rng.next_in(0, chaos_max_.ticks()));
    }
    return Duration(rng.next_in(lo_.ticks(), hi_.ticks()));
  }

 private:
  TimePoint gst_;
  Duration lo_;
  Duration hi_;
  Duration chaos_max_;
};

}  // namespace lumiere::sim
