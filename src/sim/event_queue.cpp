#include "sim/event_queue.h"

#include "common/assert.h"

namespace lumiere::sim {

EventHandle EventQueue::schedule(TimePoint at, EventFn fn) {
  auto cancelled = std::make_shared<bool>(false);
  EventHandle handle{std::weak_ptr<bool>(cancelled)};
  heap_.push(Entry{at, seq_++, std::move(fn), std::move(cancelled)});
  return handle;
}

void EventQueue::drop_cancelled() const {
  while (!heap_.empty() && *heap_.top().cancelled) heap_.pop();
}

bool EventQueue::empty() const {
  drop_cancelled();
  return heap_.empty();
}

bool EventQueue::empty_at_or_before(TimePoint t) const {
  drop_cancelled();
  return heap_.empty() || heap_.top().at > t;
}

TimePoint EventQueue::next_time() const {
  drop_cancelled();
  LUMIERE_ASSERT_MSG(!heap_.empty(), "next_time() on empty queue");
  return heap_.top().at;
}

bool EventQueue::pop(TimePoint& at_out, EventFn& fn_out) {
  drop_cancelled();
  if (heap_.empty()) return false;
  // priority_queue::top() is const; moving the callback out requires a
  // copy-free pop, so copy the (cheap, shared-state) entry then pop.
  Entry entry = heap_.top();
  heap_.pop();
  at_out = entry.at;
  fn_out = std::move(entry.fn);
  return true;
}

}  // namespace lumiere::sim
