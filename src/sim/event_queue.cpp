#include "sim/event_queue.h"

#include <algorithm>
#include <utility>

#include "common/assert.h"

namespace lumiere::sim {

// 4-ary layout: children of i are 4i+1 .. 4i+4, parent is (i-1)/4. The
// wider fan-out halves the tree depth of the binary heap it replaces and
// keeps the four children on one cache line pair — a measurable win when
// every simulated message is two heap operations.

void EventQueue::sift_up(std::size_t i) const {
  HeapEntry entry = heap_[i];
  while (i > 0) {
    const std::size_t parent = (i - 1) / 4;
    if (!before(entry, heap_[parent])) break;
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = entry;
}

void EventQueue::sift_down(std::size_t i) const {
  const std::size_t size = heap_.size();
  HeapEntry entry = heap_[i];
  while (true) {
    const std::size_t first_child = 4 * i + 1;
    if (first_child >= size) break;
    std::size_t best = first_child;
    const std::size_t last_child = std::min(first_child + 4, size);
    for (std::size_t c = first_child + 1; c < last_child; ++c) {
      if (before(heap_[c], heap_[best])) best = c;
    }
    if (!before(heap_[best], entry)) break;
    heap_[i] = heap_[best];
    i = best;
  }
  heap_[i] = entry;
}

void EventQueue::remove_top() const {
  heap_.front() = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) sift_down(0);
}

void EventQueue::release_slot(std::uint32_t index) const {
  detail::EventSlot& slot = slab_->slots[index];
  slot.fn.reset();
  ++slot.generation;  // outstanding handles to this slot go inert
  if (slot.cancelled) {
    slot.cancelled = false;
    --slab_->cancelled_count;
  }
  slab_->free_list.push_back(index);
}

std::uint32_t EventQueue::emplace_slot(TimePoint at, EventFn&& fn) {
  std::uint32_t index = 0;
  if (!slab_->free_list.empty()) {
    index = slab_->free_list.back();
    slab_->free_list.pop_back();
  } else {
    index = static_cast<std::uint32_t>(slab_->slots.size());
    slab_->slots.emplace_back();
  }
  slab_->slots[index].fn = std::move(fn);
  heap_.push_back(HeapEntry{at, seq_++, index});
  sift_up(heap_.size() - 1);
  return index;
}

EventHandle EventQueue::schedule(TimePoint at, EventFn fn) {
  const std::uint32_t index = emplace_slot(at, std::move(fn));
  return EventHandle{std::weak_ptr<detail::EventSlab>(slab_), index,
                     slab_->slots[index].generation};
}

void EventQueue::post(TimePoint at, EventFn fn) { emplace_slot(at, std::move(fn)); }

void EventQueue::drop_cancelled() const {
  if (slab_->cancelled_count == 0) return;  // the hot-path common case
  while (!heap_.empty() && slab_->slots[heap_.front().slot].cancelled) {
    const std::uint32_t slot = heap_.front().slot;
    remove_top();
    release_slot(slot);
  }
}

bool EventQueue::empty() const {
  drop_cancelled();
  return heap_.empty();
}

bool EventQueue::empty_at_or_before(TimePoint t) const {
  drop_cancelled();
  return heap_.empty() || heap_.front().at > t;
}

TimePoint EventQueue::next_time() const {
  drop_cancelled();
  LUMIERE_ASSERT_MSG(!heap_.empty(), "next_time() on empty queue");
  return heap_.front().at;
}

bool EventQueue::pop(TimePoint& at_out, EventFn& fn_out) {
  drop_cancelled();
  if (heap_.empty()) return false;
  const HeapEntry top = heap_.front();
  remove_top();
  at_out = top.at;
  fn_out = std::move(slab_->slots[top.slot].fn);  // move, never copy
  release_slot(top.slot);
  return true;
}

}  // namespace lumiere::sim
