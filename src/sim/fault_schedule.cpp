#include "sim/fault_schedule.h"

#include <sstream>

namespace lumiere::sim {

const char* to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kPartition:
      return "partition";
    case FaultKind::kHeal:
      return "heal";
    case FaultKind::kCrash:
      return "crash";
    case FaultKind::kRecover:
      return "recover";
    case FaultKind::kLeave:
      return "leave";
    case FaultKind::kRejoin:
      return "rejoin";
    case FaultKind::kDelayChange:
      return "delay-change";
    case FaultKind::kLinkDelay:
      return "link-delay";
    case FaultKind::kAsymPartition:
      return "asym-partition";
    case FaultKind::kBehaviorChange:
      return "behavior-change";
  }
  return "?";
}

std::vector<std::uint32_t> partition_group_of(const std::vector<std::vector<ProcessId>>& groups,
                                              std::uint32_t n) {
  std::vector<std::uint32_t> group_of(n, kUngrouped);
  for (std::uint32_t g = 0; g < groups.size(); ++g) {
    for (const ProcessId id : groups[g]) {
      if (id < n) group_of[id] = g;
    }
  }
  return group_of;
}

std::string FaultSchedule::describe(const FaultEvent& event) {
  std::ostringstream out;
  out << to_string(event.kind);
  switch (event.kind) {
    case FaultKind::kPartition:
    case FaultKind::kAsymPartition: {
      const char* const join = event.kind == FaultKind::kAsymPartition ? "->" : "|";
      out << "{";
      for (std::size_t g = 0; g < event.groups.size(); ++g) {
        if (g > 0) out << join;
        for (std::size_t i = 0; i < event.groups[g].size(); ++i) {
          if (i > 0) out << " ";
          out << event.groups[g][i];
        }
      }
      out << "}";
      break;
    }
    case FaultKind::kBehaviorChange:
      out << " p" << event.node << " -> " << event.behavior;
      break;
    case FaultKind::kCrash:
    case FaultKind::kRecover:
    case FaultKind::kLeave:
    case FaultKind::kRejoin:
      out << " p" << event.node;
      break;
    case FaultKind::kLinkDelay:
      out << " p" << event.node << "->p" << event.peer;
      break;
    case FaultKind::kHeal:
    case FaultKind::kDelayChange:
      break;
  }
  out << " @" << event.at.ticks() << "us";
  return out.str();
}

}  // namespace lumiere::sim
