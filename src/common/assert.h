// Internal invariant checking.
//
// LUMIERE_ASSERT is active in all build types: the protocols in this
// repository are the artifact under study, so silently continuing past a
// broken invariant would invalidate every measurement taken afterwards
// (Core Guidelines P.7: catch run-time errors early).
#pragma once

#include <cstdio>
#include <cstdlib>

namespace lumiere::detail {

[[noreturn]] inline void assert_fail(const char* expr, const char* file, int line,
                                     const char* msg) {
  std::fprintf(stderr, "LUMIERE_ASSERT failed: %s\n  at %s:%d\n  %s\n", expr, file, line,
               msg != nullptr ? msg : "");
  std::abort();
}

}  // namespace lumiere::detail

#define LUMIERE_ASSERT(expr)                                                  \
  do {                                                                        \
    if (!(expr)) ::lumiere::detail::assert_fail(#expr, __FILE__, __LINE__, ""); \
  } while (false)

#define LUMIERE_ASSERT_MSG(expr, msg)                                           \
  do {                                                                          \
    if (!(expr)) ::lumiere::detail::assert_fail(#expr, __FILE__, __LINE__, msg); \
  } while (false)
