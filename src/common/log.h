// Minimal leveled logging.
//
// Logging is compiled in but disabled by default; tests and examples that
// want a protocol trace raise the level. No global mutable state other
// than the level itself (kept as a function-local to honour I.2/I.22 —
// no complex global initialization, no ODR hazards).
#pragma once

#include <cstdio>
#include <sstream>
#include <string>

namespace lumiere {

enum class LogLevel : int { kNone = 0, kInfo = 1, kDebug = 2, kTrace = 3 };

namespace detail {
inline LogLevel& log_level_ref() noexcept {
  static LogLevel level = LogLevel::kNone;
  return level;
}
}  // namespace detail

inline void set_log_level(LogLevel level) noexcept { detail::log_level_ref() = level; }
inline LogLevel log_level() noexcept { return detail::log_level_ref(); }

namespace detail {
inline void log_line(const char* tag, const std::string& line) {
  std::fprintf(stderr, "[%s] %s\n", tag, line.c_str());
}
}  // namespace detail

}  // namespace lumiere

#define LUMIERE_LOG_AT(lvl, tag, expr)                          \
  do {                                                          \
    if (::lumiere::log_level() >= (lvl)) {                      \
      std::ostringstream lumiere_log_os;                        \
      lumiere_log_os << expr;                                   \
      ::lumiere::detail::log_line(tag, lumiere_log_os.str());   \
    }                                                           \
  } while (false)

#define LOG_INFO(expr) LUMIERE_LOG_AT(::lumiere::LogLevel::kInfo, "info", expr)
#define LOG_DEBUG(expr) LUMIERE_LOG_AT(::lumiere::LogLevel::kDebug, "debug", expr)
#define LOG_TRACE(expr) LUMIERE_LOG_AT(::lumiere::LogLevel::kTrace, "trace", expr)
