// Strong time types for the simulation and the protocols.
//
// All protocol logic is expressed over `TimePoint`/`Duration` rather than
// raw integers so that units cannot be accidentally mixed (Core Guidelines
// I.4: make interfaces precisely and strongly typed). One tick is one
// simulated microsecond; the choice is arbitrary — every protocol bound in
// the paper is expressed relative to Delta and delta, never in wall time.
#pragma once

#include <compare>
#include <cstdint>
#include <limits>
#include <ostream>

namespace lumiere {

/// A signed span of simulated time. One tick == 1 simulated microsecond.
class Duration {
 public:
  constexpr Duration() noexcept = default;
  constexpr explicit Duration(std::int64_t ticks) noexcept : ticks_(ticks) {}

  /// Convenience factories.
  static constexpr Duration micros(std::int64_t us) noexcept { return Duration(us); }
  static constexpr Duration millis(std::int64_t ms) noexcept { return Duration(ms * 1000); }
  static constexpr Duration seconds(std::int64_t s) noexcept { return Duration(s * 1'000'000); }
  static constexpr Duration zero() noexcept { return Duration(0); }
  static constexpr Duration max() noexcept {
    return Duration(std::numeric_limits<std::int64_t>::max());
  }

  [[nodiscard]] constexpr std::int64_t ticks() const noexcept { return ticks_; }
  [[nodiscard]] constexpr double to_seconds() const noexcept {
    return static_cast<double>(ticks_) / 1e6;
  }

  constexpr auto operator<=>(const Duration&) const noexcept = default;

  constexpr Duration operator+(Duration o) const noexcept { return Duration(ticks_ + o.ticks_); }
  constexpr Duration operator-(Duration o) const noexcept { return Duration(ticks_ - o.ticks_); }
  constexpr Duration operator-() const noexcept { return Duration(-ticks_); }
  constexpr Duration operator*(std::int64_t k) const noexcept { return Duration(ticks_ * k); }
  constexpr Duration operator/(std::int64_t k) const noexcept { return Duration(ticks_ / k); }
  constexpr Duration& operator+=(Duration o) noexcept {
    ticks_ += o.ticks_;
    return *this;
  }
  constexpr Duration& operator-=(Duration o) noexcept {
    ticks_ -= o.ticks_;
    return *this;
  }

 private:
  std::int64_t ticks_ = 0;
};

constexpr Duration operator*(std::int64_t k, Duration d) noexcept { return d * k; }

/// An absolute instant of simulated time (ticks since simulation start).
class TimePoint {
 public:
  constexpr TimePoint() noexcept = default;
  constexpr explicit TimePoint(std::int64_t ticks) noexcept : ticks_(ticks) {}

  static constexpr TimePoint origin() noexcept { return TimePoint(0); }
  static constexpr TimePoint max() noexcept {
    return TimePoint(std::numeric_limits<std::int64_t>::max());
  }

  [[nodiscard]] constexpr std::int64_t ticks() const noexcept { return ticks_; }
  [[nodiscard]] constexpr double to_seconds() const noexcept {
    return static_cast<double>(ticks_) / 1e6;
  }
  /// Time elapsed since the simulation origin, as a Duration.
  [[nodiscard]] constexpr Duration since_origin() const noexcept { return Duration(ticks_); }

  constexpr auto operator<=>(const TimePoint&) const noexcept = default;

  constexpr TimePoint operator+(Duration d) const noexcept {
    return TimePoint(ticks_ + d.ticks());
  }
  constexpr TimePoint operator-(Duration d) const noexcept {
    return TimePoint(ticks_ - d.ticks());
  }
  constexpr Duration operator-(TimePoint o) const noexcept { return Duration(ticks_ - o.ticks_); }
  constexpr TimePoint& operator+=(Duration d) noexcept {
    ticks_ += d.ticks();
    return *this;
  }

 private:
  std::int64_t ticks_ = 0;
};

inline std::ostream& operator<<(std::ostream& os, Duration d) { return os << d.ticks() << "us"; }
inline std::ostream& operator<<(std::ostream& os, TimePoint t) { return os << "t+" << t.ticks(); }

}  // namespace lumiere
