// A compact set of processor indices, used to track which processors
// contributed to a certificate (QC / VC / EC / TC).
#pragma once

#include <cstdint>
#include <vector>

#include "common/assert.h"
#include "common/types.h"

namespace lumiere {

/// Dynamic bitset over processor ids [0, n). Insertion-order agnostic;
/// equality is set equality.
class SignerSet {
 public:
  SignerSet() = default;
  explicit SignerSet(std::uint32_t n) : words_((n + 63) / 64, 0), n_(n) {}

  [[nodiscard]] std::uint32_t universe_size() const noexcept { return n_; }

  /// Adds a signer; returns false if it was already present.
  bool add(ProcessId id) {
    LUMIERE_ASSERT(id < n_);
    const std::uint64_t bit = 1ULL << (id % 64);
    if ((words_[id / 64] & bit) != 0) return false;
    words_[id / 64] |= bit;
    ++count_;
    return true;
  }

  [[nodiscard]] bool contains(ProcessId id) const {
    if (id >= n_) return false;
    return (words_[id / 64] & (1ULL << (id % 64))) != 0;
  }

  [[nodiscard]] std::uint32_t count() const noexcept { return count_; }
  [[nodiscard]] bool empty() const noexcept { return count_ == 0; }

  /// All member ids in increasing order.
  [[nodiscard]] std::vector<ProcessId> members() const {
    std::vector<ProcessId> out;
    out.reserve(count_);
    for (ProcessId id = 0; id < n_; ++id) {
      if (contains(id)) out.push_back(id);
    }
    return out;
  }

  /// Number of members also present in `other` (intersection size).
  [[nodiscard]] std::uint32_t intersection_count(const SignerSet& other) const {
    LUMIERE_ASSERT(n_ == other.n_);
    std::uint32_t total = 0;
    for (std::size_t w = 0; w < words_.size(); ++w) {
      total += static_cast<std::uint32_t>(__builtin_popcountll(words_[w] & other.words_[w]));
    }
    return total;
  }

  bool operator==(const SignerSet& other) const = default;

 private:
  std::vector<std::uint64_t> words_;
  std::uint32_t n_ = 0;
  std::uint32_t count_ = 0;
};

}  // namespace lumiere
