// Deterministic pseudo-random number generation.
//
// Everything random in the library (leader-schedule permutations,
// adversarial delay draws, workload generation) flows through this
// splitmix64/xoshiro256** generator so that every experiment is exactly
// reproducible from a single 64-bit seed. std::mt19937 is avoided because
// its distributions are not guaranteed identical across standard-library
// implementations.
#pragma once

#include <cstdint>
#include <numeric>
#include <vector>

#include "common/assert.h"

namespace lumiere {

/// splitmix64: used for seeding and for cheap hash mixing.
constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** — fast, high-quality, deterministic across platforms.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  /// Uniform 64-bit word.
  std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound) noexcept {
    LUMIERE_ASSERT(bound > 0);
    // Lemire's nearly-divisionless method with rejection for exactness.
    std::uint64_t x = next();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto low = static_cast<std::uint64_t>(m);
    if (low < bound) {
      const std::uint64_t threshold = -bound % bound;
      while (low < threshold) {
        x = next();
        m = static_cast<__uint128_t>(x) * bound;
        low = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t next_in(std::int64_t lo, std::int64_t hi) noexcept {
    LUMIERE_ASSERT(lo <= hi);
    return lo + static_cast<std::int64_t>(
                    next_below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double next_double() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// true with probability p.
  bool next_bool(double p) noexcept { return next_double() < p; }

  /// A uniformly random permutation of {0, ..., n-1} (Fisher-Yates).
  std::vector<std::uint32_t> permutation(std::uint32_t n) noexcept {
    std::vector<std::uint32_t> perm(n);
    std::iota(perm.begin(), perm.end(), 0U);
    for (std::uint32_t i = n; i > 1; --i) {
      const auto j = static_cast<std::uint32_t>(next_below(i));
      std::swap(perm[i - 1], perm[j]);
    }
    return perm;
  }

  /// Derive an independent child generator (for per-component streams).
  Rng fork() noexcept { return Rng(next() ^ 0xd3833e804f4c574bULL); }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4] = {};
};

}  // namespace lumiere
