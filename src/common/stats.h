// Small shared statistics helpers.
#pragma once

#include <algorithm>
#include <cmath>
#include <optional>
#include <vector>

#include "common/time.h"

namespace lumiere {

/// Nearest-rank percentile over duration samples, p in (0, 1]; nullopt on
/// an empty sample set. Takes the samples by value (it must sort them).
/// The single definition shared by runtime::MetricsCollector and
/// workload::Report so the two latency surfaces cannot round differently.
inline std::optional<Duration> nearest_rank_percentile(std::vector<Duration> samples,
                                                       double p) {
  if (samples.empty()) return std::nullopt;
  std::sort(samples.begin(), samples.end());
  const double rank = std::ceil(p * static_cast<double>(samples.size()));
  const auto index = static_cast<std::size_t>(std::max(1.0, rank)) - 1;
  return samples[std::min(index, samples.size() - 1)];
}

}  // namespace lumiere
