// Protocol-wide parameters (Section 2 of the paper).
#pragma once

#include <cstdint>

#include "common/assert.h"
#include "common/time.h"
#include "common/types.h"

namespace lumiere {

/// The static parameters every protocol component is configured with.
///
/// * `n >= 3f + 1` processors, at most `f` Byzantine. `n = 3f + 1` is the
///   optimal-resilience point the paper analyzes; larger clusters (e.g.
///   the 5-process soak topology) keep `f = floor((n-1)/3)` and a quorum
///   of ceil((n+f+1)/2), so any two quorums still intersect in at least
///   f+1 processors (>= 1 honest). At n = 3f + 1 that quorum is exactly
///   the classic 2f+1 — byte-identical to the historical formula, which
///   the golden-digest tests pin.
/// * `delta_cap` is the *known* post-GST delivery bound Delta.
/// * `x` is the view-completion constant of the underlying protocol
///   ((diamond-1) in Section 2): with an honest leader and quorum() honest
///   processors synchronized in the view, a QC is produced and received
///   within `x * delta_actual`. Our SimpleViewCore has x = 3
///   (propose, vote, QC dissemination).
struct ProtocolParams {
  std::uint32_t n = 4;
  std::uint32_t f = 1;
  Duration delta_cap = Duration::millis(100);  ///< Delta, the known bound.
  std::uint32_t x = 3;                         ///< view-completion constant.

  /// ceil((n + f + 1) / 2): the smallest count whose pairwise
  /// intersection exceeds f. Equals 2f+1 exactly when n = 3f+1.
  [[nodiscard]] std::uint32_t quorum() const noexcept { return (n + f) / 2 + 1; }
  [[nodiscard]] std::uint32_t small_quorum() const noexcept { return f + 1; }    ///< f+1

  /// Validates n >= 3f + 1 and basic sanity. Throws nothing; aborts on
  /// misconfiguration (a configuration bug, not a runtime condition).
  void validate() const {
    LUMIERE_ASSERT_MSG(n >= 3 * f + 1, "ProtocolParams requires n >= 3f + 1");
    LUMIERE_ASSERT_MSG(f >= 1, "ProtocolParams requires f >= 1 (so n >= 4)");
    LUMIERE_ASSERT(delta_cap > Duration::zero());
    LUMIERE_ASSERT(x >= 2);
  }

  /// Convenience factory from n (any n >= 4; f = floor((n-1)/3)).
  static ProtocolParams for_n(std::uint32_t n, Duration delta_cap, std::uint32_t x = 3) {
    ProtocolParams p;
    p.n = n;
    p.f = (n - 1) / 3;
    p.delta_cap = delta_cap;
    p.x = x;
    p.validate();
    return p;
  }
};

}  // namespace lumiere
