// Protocol-wide parameters (Section 2 of the paper).
#pragma once

#include <cstdint>

#include "common/assert.h"
#include "common/time.h"
#include "common/types.h"

namespace lumiere {

/// The static parameters every protocol component is configured with.
///
/// * `n = 3f + 1` processors, at most `f` Byzantine (optimal resilience).
/// * `delta_cap` is the *known* post-GST delivery bound Delta.
/// * `x` is the view-completion constant of the underlying protocol
///   ((diamond-1) in Section 2): with an honest leader and 2f+1 honest
///   processors synchronized in the view, a QC is produced and received
///   within `x * delta_actual`. Our SimpleViewCore has x = 3
///   (propose, vote, QC dissemination).
struct ProtocolParams {
  std::uint32_t n = 4;
  std::uint32_t f = 1;
  Duration delta_cap = Duration::millis(100);  ///< Delta, the known bound.
  std::uint32_t x = 3;                         ///< view-completion constant.

  [[nodiscard]] std::uint32_t quorum() const noexcept { return 2 * f + 1; }      ///< 2f+1
  [[nodiscard]] std::uint32_t small_quorum() const noexcept { return f + 1; }    ///< f+1

  /// Validates n = 3f + 1 and basic sanity. Throws nothing; aborts on
  /// misconfiguration (a configuration bug, not a runtime condition).
  void validate() const {
    LUMIERE_ASSERT_MSG(n == 3 * f + 1, "ProtocolParams requires n == 3f + 1");
    LUMIERE_ASSERT(delta_cap > Duration::zero());
    LUMIERE_ASSERT(x >= 2);
  }

  /// Convenience factory from n (must satisfy n = 3f + 1).
  static ProtocolParams for_n(std::uint32_t n, Duration delta_cap, std::uint32_t x = 3) {
    ProtocolParams p;
    p.n = n;
    p.f = (n - 1) / 3;
    p.delta_cap = delta_cap;
    p.x = x;
    p.validate();
    return p;
  }
};

}  // namespace lumiere
