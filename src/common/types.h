// Fundamental protocol identifiers shared by every module.
#pragma once

#include <cstdint>
#include <cstddef>
#include <functional>
#include <ostream>
#include <string>

namespace lumiere {

/// Index of a processor in Pi = {p_0, ..., p_{n-1}}.
using ProcessId = std::uint32_t;

/// Sentinel for "no processor".
inline constexpr ProcessId kNoProcess = static_cast<ProcessId>(-1);

/// A view number. Views may be negative: every processor starts in view -1
/// (Algorithm 1, line 3). Signed 64-bit so that clock arithmetic
/// (c_v = Gamma * v) cannot overflow in any realistic run.
using View = std::int64_t;

/// An epoch number; processors start in epoch -1 (Algorithm 1, line 4).
using Epoch = std::int64_t;

/// Security parameter kappa, in bytes: the modeled size of hashes,
/// signatures and threshold signatures. Every certificate is O(kappa) on
/// the wire regardless of how many signers it aggregates (Section 2).
inline constexpr std::size_t kKappaBytes = 32;

/// The role a message plays, used by the metrics layer to attribute
/// communication cost to the pacemaker vs. the underlying protocol vs.
/// the data-dissemination layer beneath it.
enum class MsgClass : std::uint8_t {
  kPacemaker,  ///< view/epoch-view messages, VC/EC/TC dissemination
  kConsensus,  ///< proposals, votes, QC dissemination
  kDissem,     ///< batch pushes, availability acks, batch certs, fetches
  kSync,       ///< block-sync fetches and chain responses (state transfer)
};

inline std::ostream& operator<<(std::ostream& os, MsgClass c) {
  switch (c) {
    case MsgClass::kPacemaker:
      return os << "pacemaker";
    case MsgClass::kConsensus:
      return os << "consensus";
    case MsgClass::kDissem:
      return os << "dissem";
    case MsgClass::kSync:
      return os << "sync";
  }
  return os << "unknown";
}

}  // namespace lumiere
