// The Byzantine View Synchronization (BVS) interface.
//
// A Pacemaker decides *when each processor enters each view* (the view
// synchronization task of Section 2):
//
//  (1) a processor's view never decreases, and
//  (2) after GST there are infinitely many views with honest leaders in
//      which all honest processors overlap long enough to complete the
//      view.
//
// Implementations in this repository:
//   pacemaker/round_robin   exponential-backoff all-to-all (HotStuff-folk)
//   pacemaker/cogsworth     leader-relay synchronization [15]
//   pacemaker/naor_keidar   randomized relay variant (NK20) [16]
//   pacemaker/lp22          epoch-based quadratic-optimal [12]
//   pacemaker/fever         clock-bumping, non-standard clock model [13]
//   core/basic_lumiere      LP22 epochs + Fever bumping (Section 3.4)
//   core/lumiere            full Lumiere, Algorithm 1 (the paper)
#pragma once

#include <functional>
#include <memory>

#include "common/params.h"
#include "common/types.h"
#include "consensus/quorum_cert.h"
#include "crypto/authenticator.h"
#include "ser/message.h"
#include "sim/local_clock.h"
#include "sim/simulator.h"

namespace lumiere::pacemaker {

/// Everything a pacemaker needs from its hosting Node.
struct PacemakerWiring {
  sim::Simulator* sim = nullptr;
  sim::LocalClock* clock = nullptr;
  crypto::AuthView auth;  ///< scheme + per-node verification memo
  /// Point-to-point send of a pacemaker message.
  std::function<void(ProcessId to, MessagePtr msg)> send;
  /// Broadcast to all n processors (including self, per the paper).
  std::function<void(MessagePtr msg)> broadcast;
  /// Reports a view entry to the node (which forwards to the consensus
  /// core). Must be called with non-decreasing views.
  std::function<void(View v)> enter_view;
  /// Pokes the consensus core to retry a proposal whose
  /// PacemakerHooks::may_propose gate has lifted (may be null when the
  /// core never defers).
  std::function<void(View v)> propose_poke;
  /// Observability: the pacemaker has begun spending resources (wish /
  /// view-message / epoch-sync sends) to leave its current view, aiming
  /// for `target`. Null when the sync tracer is off. Implementations
  /// call note_sync_started() right before the episode's first send —
  /// never for passive view entries (QC ride-alongs cost nothing).
  std::function<void(View target)> sync_started;
};

class Pacemaker {
 public:
  Pacemaker(const ProtocolParams& params, ProcessId self, crypto::Signer signer,
            PacemakerWiring wiring)
      : params_(params), self_(self), signer_(signer), wiring_(std::move(wiring)) {
    params_.validate();
    LUMIERE_ASSERT(wiring_.sim != nullptr && wiring_.clock != nullptr && wiring_.auth);
  }
  virtual ~Pacemaker() = default;

  Pacemaker(const Pacemaker&) = delete;
  Pacemaker& operator=(const Pacemaker&) = delete;

  /// Begins protocol execution (the processor has joined with lc = 0).
  virtual void start() = 0;

  /// A pacemaker-class message arrived (possibly from a Byzantine sender).
  virtual void on_message(ProcessId from, const MessagePtr& msg) = 0;

  /// Any valid QC was observed by the underlying protocol on this node.
  virtual void on_qc(const consensus::QuorumCert& qc) = 0;

  /// This node, acting as leader, produced a QC (anchor for Lumiere's
  /// production deadline). Default: ignore.
  virtual void on_local_qc_formed(const consensus::QuorumCert& qc) { (void)qc; }

  /// The leader schedule lead(v).
  [[nodiscard]] virtual ProcessId leader_of(View v) const = 0;

  /// Lumiere's QC-production deadline (Section 4); default permissive.
  [[nodiscard]] virtual bool may_form_qc(View v) const {
    (void)v;
    return true;
  }

  /// Lumiere's proposal gate (see PacemakerHooks::may_propose).
  [[nodiscard]] virtual bool may_propose(View v) const {
    (void)v;
    return true;
  }

  [[nodiscard]] virtual View current_view() const = 0;
  [[nodiscard]] virtual const char* name() const = 0;

  [[nodiscard]] const ProtocolParams& params() const noexcept { return params_; }
  [[nodiscard]] ProcessId self() const noexcept { return self_; }

 protected:
  [[nodiscard]] sim::Simulator& sim() const noexcept { return *wiring_.sim; }
  [[nodiscard]] sim::LocalClock& clock() const noexcept { return *wiring_.clock; }
  [[nodiscard]] crypto::AuthView auth() const noexcept { return wiring_.auth; }
  [[nodiscard]] const crypto::Signer& signer() const noexcept { return signer_; }

  void send_to(ProcessId to, MessagePtr msg) const { wiring_.send(to, std::move(msg)); }
  void broadcast(MessagePtr msg) const { wiring_.broadcast(std::move(msg)); }
  void notify_enter_view(View v) const { wiring_.enter_view(v); }
  void poke_propose(View v) const {
    if (wiring_.propose_poke) wiring_.propose_poke(v);
  }
  void note_sync_started(View target) const {
    if (wiring_.sync_started) wiring_.sync_started(target);
  }

  ProtocolParams params_;
  ProcessId self_;
  crypto::Signer signer_;
  PacemakerWiring wiring_;
};

}  // namespace lumiere::pacemaker
