#include "pacemaker/cogsworth.h"

#include "common/log.h"

namespace lumiere::pacemaker {

CogsworthPacemaker::CogsworthPacemaker(const ProtocolParams& params, ProcessId self,
                                       crypto::Signer signer, PacemakerWiring wiring,
                                       Options options,
                                       std::unique_ptr<LeaderSchedule> schedule)
    : Pacemaker(params, self, signer, std::move(wiring)),
      options_(options),
      schedule_(std::move(schedule)) {
  LUMIERE_ASSERT(options_.view_timeout > Duration::zero());
  LUMIERE_ASSERT(options_.relay_timeout > Duration::zero());
  LUMIERE_ASSERT(schedule_ != nullptr);
}

void CogsworthPacemaker::start() { enter_view(0); }

void CogsworthPacemaker::enter_view(View v) {
  if (v <= view_) return;
  view_ = v;
  // Any in-flight wishing for an older target is now moot.
  if (wish_target_ <= v) {
    wish_target_ = -1;
    relay_timer_.cancel();
  }
  notify_enter_view(v);
  arm_view_timer();
}

void CogsworthPacemaker::arm_view_timer() {
  view_timer_.cancel();
  view_timer_ = sim().schedule_after(options_.view_timeout, [this] { begin_wishing(view_ + 1); });
}

void CogsworthPacemaker::begin_wishing(View target) {
  if (target <= view_) return;
  note_sync_started(target);
  wish_target_ = target;
  relay_index_ = 0;
  relay_wish();
}

void CogsworthPacemaker::relay_wish() {
  if (wish_target_ <= view_) return;  // reached it meanwhile
  const View target = wish_target_;
  // k-th relay: the leader of view target + k. Under round-robin this
  // walks distinct processors; under a random schedule it hits an honest
  // relay in expected O(1) attempts.
  const ProcessId relay = schedule_->leader_of(target + relay_index_);
  send_to(relay, std::make_shared<WishMsg>(
                     target, crypto::threshold_share(signer_, wish_statement(target))));
  ++relay_index_;
  relay_timer_.cancel();
  relay_timer_ = sim().schedule_after(options_.relay_timeout, [this] { relay_wish(); });
}

void CogsworthPacemaker::handle_wish(const WishMsg& msg) {
  const View v = msg.view();
  if (v <= view_ || certs_sent_.contains(v)) {
    // Already past v (or already certified): answer stragglers cheaply by
    // doing nothing — the QC / certificate that moved us is already
    // circulating.
    return;
  }
  auto [it, inserted] = wish_aggs_.try_emplace(v, auth(), wish_statement(v),
                                               params_.small_quorum());
  (void)inserted;
  if (!it->second.add(msg.share())) return;
  if (it->second.count() >= params_.small_quorum()) {
    certs_sent_.insert(v);
    broadcast(std::make_shared<WishCertMsg>(SyncCert(v, it->second.aggregate())));
  }
}

void CogsworthPacemaker::handle_cert(const WishCertMsg& msg) {
  const SyncCert& cert = msg.cert();
  if (cert.view() <= view_) return;
  if (!cert.verify(auth(), params_.small_quorum(), &wish_statement)) return;
  enter_view(cert.view());
}

void CogsworthPacemaker::on_message(ProcessId /*from*/, const MessagePtr& msg) {
  switch (msg->type_id()) {
    case kWishMsg:
      handle_wish(static_cast<const WishMsg&>(*msg));
      break;
    case kWishCertMsg:
      handle_cert(static_cast<const WishCertMsg&>(*msg));
      break;
    default:
      break;
  }
}

void CogsworthPacemaker::on_qc(const consensus::QuorumCert& qc) {
  if (qc.view() + 1 > view_) enter_view(qc.view() + 1);
}

}  // namespace lumiere::pacemaker
