#include "pacemaker/round_robin.h"

#include "common/log.h"

namespace lumiere::pacemaker {

RoundRobinPacemaker::RoundRobinPacemaker(const ProtocolParams& params, ProcessId self,
                                         crypto::Signer signer, PacemakerWiring wiring,
                                         Options options)
    : Pacemaker(params, self, signer, std::move(wiring)),
      options_(options),
      schedule_(params.n, 1) {
  LUMIERE_ASSERT(options_.base_timeout > Duration::zero());
}

void RoundRobinPacemaker::start() { enter_view(0, /*via_timeout=*/false); }

void RoundRobinPacemaker::enter_view(View v, bool via_timeout) {
  if (v <= view_) return;
  view_ = v;
  consecutive_timeouts_ = via_timeout ? consecutive_timeouts_ + 1 : 0;
  notify_enter_view(v);
  arm_timer();
}

void RoundRobinPacemaker::arm_timer() {
  timer_.cancel();
  const std::uint32_t exp =
      std::min(consecutive_timeouts_, options_.max_backoff_exponent);
  const Duration timeout = options_.base_timeout * (std::int64_t{1} << exp);
  timer_ = sim().schedule_after(timeout, [this] { on_timeout(); });
}

void RoundRobinPacemaker::on_timeout() { send_wish(view_ + 1); }

void RoundRobinPacemaker::send_wish(View v) {
  if (wished_.contains(v)) return;
  wished_.insert(v);
  note_sync_started(v);
  broadcast(std::make_shared<WishMsg>(v, crypto::threshold_share(signer_, wish_statement(v))));
}

void RoundRobinPacemaker::handle_wish(const WishMsg& msg) {
  const View v = msg.view();
  if (v <= view_) return;
  auto [it, inserted] =
      wish_aggs_.try_emplace(v, auth(), wish_statement(v), params_.quorum());
  (void)inserted;
  if (!it->second.add(msg.share())) return;
  // f+1 wishes prove at least one honest processor timed out: join in
  // (amplification keeps the protocol live when timeouts are staggered).
  if (it->second.count() >= params_.small_quorum() && !amplified_.contains(v)) {
    amplified_.insert(v);
    send_wish(v);
  }
  if (it->second.count() >= params_.quorum()) {
    enter_view(v, /*via_timeout=*/true);
  }
}

void RoundRobinPacemaker::on_message(ProcessId /*from*/, const MessagePtr& msg) {
  if (msg->type_id() == kWishMsg) handle_wish(static_cast<const WishMsg&>(*msg));
}

void RoundRobinPacemaker::on_qc(const consensus::QuorumCert& qc) {
  // Responsive advance: a QC for view v completes v; move to v+1.
  if (qc.view() + 1 > view_) enter_view(qc.view() + 1, /*via_timeout=*/false);
}

}  // namespace lumiere::pacemaker
