#include "pacemaker/pacemaker.h"

#include "pacemaker/certificates.h"

namespace lumiere::pacemaker {

namespace {

crypto::Digest tagged_view_statement(const char* tag, View v) {
  ser::Writer w;
  w.str(tag);
  w.view(v);
  return crypto::Sha256::hash(std::span<const std::uint8_t>(w.data().data(), w.size()));
}

}  // namespace

crypto::Digest view_msg_statement(View v) { return tagged_view_statement("lumiere.view", v); }

crypto::Digest epoch_msg_statement(View v) { return tagged_view_statement("lumiere.epoch", v); }

crypto::Digest wish_statement(View v) { return tagged_view_statement("lumiere.wish", v); }

}  // namespace lumiere::pacemaker
