// Leader schedules: lead(v) assignments used by the pacemakers.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/assert.h"
#include "common/rng.h"
#include "common/types.h"

namespace lumiere::pacemaker {

class LeaderSchedule {
 public:
  virtual ~LeaderSchedule() = default;
  [[nodiscard]] virtual ProcessId leader_of(View v) const = 0;
};

/// lead(v) = floor(v / tenure) mod n. tenure = 1 reproduces LP22's
/// "v mod n"; tenure = 2 reproduces Fever's "floor(v/2) mod n". Larger
/// tenures implement the Section 3.3 remark on reducing Gamma by giving
/// each leader more consecutive views.
class RoundRobinSchedule final : public LeaderSchedule {
 public:
  RoundRobinSchedule(std::uint32_t n, std::uint32_t tenure = 1) : n_(n), tenure_(tenure) {
    LUMIERE_ASSERT(n > 0 && tenure > 0);
  }

  [[nodiscard]] ProcessId leader_of(View v) const override {
    if (v < 0) return 0;
    return static_cast<ProcessId>((static_cast<std::uint64_t>(v) / tenure_) % n_);
  }

 private:
  std::uint32_t n_;
  std::uint32_t tenure_;
};

/// A seeded random permutation per window of `n * tenure` views (NK20's
/// randomized leader ordering). Deterministic in the seed.
class SeededPermutationSchedule final : public LeaderSchedule {
 public:
  SeededPermutationSchedule(std::uint32_t n, std::uint64_t seed, std::uint32_t tenure = 1)
      : n_(n), seed_(seed), tenure_(tenure) {
    LUMIERE_ASSERT(n > 0 && tenure > 0);
  }

  [[nodiscard]] ProcessId leader_of(View v) const override {
    if (v < 0) return 0;
    const std::uint64_t window = static_cast<std::uint64_t>(v) / (static_cast<std::uint64_t>(n_) * tenure_);
    const auto slot =
        static_cast<std::uint32_t>((static_cast<std::uint64_t>(v) / tenure_) % n_);
    Rng rng(seed_ ^ (window * 0x9e3779b97f4a7c15ULL) ^ 0x5eedab1eULL);
    const auto perm = rng.permutation(n_);
    return perm[slot];
  }

 private:
  std::uint32_t n_;
  std::uint64_t seed_;
  std::uint32_t tenure_;
};

}  // namespace lumiere::pacemaker
