// RareSync (Civit et al., DISC 2022 [7]) — the other quadratic-optimal
// epoch-based synchronizer discussed in Section 6.
//
// Like LP22, views are batched into epochs of f+1 views with a heavy
// all-to-all synchronization at each epoch start. Unlike LP22, RareSync
// is *not* optimistically responsive: views inside an epoch advance only
// when the local clock reaches c_v — there is no QC fast path at all.
// Every view therefore costs a full Gamma even on a perfect network.
//
// Included as a baseline because the paper positions Lumiere against
// both [7] and [12]: RareSync shows what O(n^2) worst-case costs without
// responsiveness; LP22 adds the QC fast path but inherits issues (i) and
// (ii); Lumiere fixes both.
#pragma once

#include <map>
#include <set>

#include "crypto/authenticator.h"
#include "pacemaker/leader_schedule.h"
#include "pacemaker/messages.h"
#include "pacemaker/pacemaker.h"

namespace lumiere::pacemaker {

class RareSyncPacemaker final : public Pacemaker {
 public:
  struct Options {
    /// Per-view budget Gamma; zero means (x+1) * Delta (each view gets
    /// enough time to complete under the bound, as in LP22).
    Duration gamma = Duration::zero();
  };

  RareSyncPacemaker(const ProtocolParams& params, ProcessId self, crypto::Signer signer,
                    PacemakerWiring wiring, Options options);

  void start() override;
  void on_message(ProcessId from, const MessagePtr& msg) override;
  void on_qc(const consensus::QuorumCert& qc) override;
  [[nodiscard]] ProcessId leader_of(View v) const override { return schedule_.leader_of(v); }
  [[nodiscard]] View current_view() const override { return view_; }
  [[nodiscard]] const char* name() const override { return "raresync"; }

  [[nodiscard]] Duration gamma() const noexcept { return gamma_; }
  [[nodiscard]] View epoch_first_view(Epoch e) const noexcept {
    return e * static_cast<View>(params_.f + 1);
  }
  [[nodiscard]] bool is_epoch_view(View v) const noexcept {
    return v >= 0 && v % static_cast<View>(params_.f + 1) == 0;
  }
  [[nodiscard]] Duration view_time(View v) const noexcept { return gamma_ * v; }

 private:
  void process_clock();
  void arm_boundary_alarm();
  void enter_view(View v);
  void begin_epoch_sync(View epoch_view);
  void handle_epoch_share(const EpochViewMsg& msg);
  void handle_ec(const EcMsg& msg);

  Options options_;
  RoundRobinSchedule schedule_;
  Duration gamma_;
  View view_ = -1;
  sim::AlarmId boundary_alarm_ = 0;
  std::set<View> epoch_msg_sent_;
  std::map<View, crypto::QuorumAggregator> epoch_aggs_;
  std::set<View> ec_sent_;
};

}  // namespace lumiere::pacemaker
