// Fever (Lewis-Pye & Abraham [13]), as described in Section 3.3.
//
// No epochs. Views come in leader tenures of `tenure` consecutive views
// (the paper's base protocol uses tenure = 2): views divisible by the
// tenure are "initial", the rest are grace periods. A processor enters
// initial view v when its local clock reads exactly c_v = Gamma * v, and
// sends a signed view-v message to lead(v); f+1 of those aggregate into a
// View Certificate (VC) which, like any QC, *bumps* lagging clocks
// forward to c_v. Non-initial views are entered on the QC for the
// previous view.
//
// Clock bumps keep the (f+1)-st honest gap bounded by Gamma forever —
// but only if it starts that way: Fever assumes hg_{f+1,0} <= Gamma at
// time 0, a non-standard synchronized-start assumption (our harness
// grants it by starting all processors together; the paper's Table 1
// labels the model "Bounded Clocks").
//
// The Section 3.3 remark "Reducing Gamma" is implemented via `tenure`:
// giving each leader T consecutive views lets Gamma shrink toward
// (x+1) * Delta as T grows — the liveness budget needs
// Gamma >= (2 + T x) Delta / (T - 1), which is 2(x+1) Delta at T = 2
// (the paper's constant) and approaches x Delta from above for large T.
// Larger tenures proportionally reduce per-view overhead at the cost of
// longer worst-case stretches owned by one (possibly faulty) leader.
#pragma once

#include <map>
#include <set>

#include "crypto/authenticator.h"
#include "pacemaker/leader_schedule.h"
#include "pacemaker/messages.h"
#include "pacemaker/pacemaker.h"

namespace lumiere::pacemaker {

class FeverPacemaker final : public Pacemaker {
 public:
  struct Options {
    /// Per-view time budget Gamma; zero means the tenure-dependent
    /// default (2 + tenure * x) * Delta / (tenure - 1), rounded up.
    Duration gamma = Duration::zero();
    /// Consecutive views per leader (>= 2). 2 is the paper's protocol.
    std::uint32_t tenure = 2;
  };

  FeverPacemaker(const ProtocolParams& params, ProcessId self, crypto::Signer signer,
                 PacemakerWiring wiring, Options options);

  void start() override;
  void on_message(ProcessId from, const MessagePtr& msg) override;
  void on_qc(const consensus::QuorumCert& qc) override;
  [[nodiscard]] ProcessId leader_of(View v) const override { return schedule_.leader_of(v); }
  [[nodiscard]] View current_view() const override { return view_; }
  [[nodiscard]] const char* name() const override { return "fever"; }

  [[nodiscard]] Duration gamma() const noexcept { return gamma_; }
  [[nodiscard]] std::uint32_t tenure() const noexcept { return tenure_; }
  [[nodiscard]] bool is_initial(View v) const noexcept {
    return v >= 0 && v % tenure_ == 0;
  }
  [[nodiscard]] Duration view_time(View v) const noexcept { return gamma_ * v; }

  /// The default Gamma for a given tenure (see header comment).
  static Duration default_gamma(const ProtocolParams& params, std::uint32_t tenure);

 private:
  void process_clock();
  void arm_boundary_alarm();
  void enter_initial(View v);
  void send_view_msg(View v);
  void handle_view_share(const ViewMsg& msg);
  void handle_vc(const VcMsg& msg);

  Options options_;
  std::uint32_t tenure_;
  RoundRobinSchedule schedule_;  // lead(v) = floor(v/tenure) mod n
  Duration gamma_;
  View view_ = -1;
  sim::AlarmId boundary_alarm_ = 0;
  std::set<View> view_msg_sent_;
  std::map<View, crypto::QuorumAggregator> view_aggs_;
  std::set<View> vc_sent_;
};

}  // namespace lumiere::pacemaker
