// Wire messages shared by the view-synchronization protocols.
#pragma once

#include <memory>

#include "pacemaker/certificates.h"
#include "ser/message.h"

namespace lumiere::pacemaker {

/// Message type tags (0x2000 range).
enum MsgType : std::uint32_t {
  kViewMsg = 0x2001,       ///< "view v" share, processor -> lead(v)
  kVcMsg = 0x2002,         ///< VC broadcast, lead(v) -> all
  kEpochViewMsg = 0x2003,  ///< "epoch view v" share, broadcast all-to-all
  kEcMsg = 0x2004,         ///< aggregated EC broadcast (LP22 / Basic Lumiere)
  kWishMsg = 0x2101,       ///< Cogsworth/NK20 relay wish, processor -> relay leader
  kWishCertMsg = 0x2102,   ///< Cogsworth/NK20 view-change certificate broadcast
};

/// Carries one threshold share over a per-view statement. Used for view
/// messages, epoch-view messages and wishes (distinguished by type tag;
/// the share is domain-separated per statement so tags cannot be
/// cross-replayed).
template <std::uint32_t TypeId, typename Tag>
class ShareMsg final : public Message {
 public:
  ShareMsg(View view, crypto::PartialSig share) : view_(view), share_(share) {}

  [[nodiscard]] View view() const noexcept { return view_; }
  [[nodiscard]] const crypto::PartialSig& share() const noexcept { return share_; }

  std::uint32_t type_id() const override { return TypeId; }
  const char* type_name() const override { return Tag::kName; }
  MsgClass msg_class() const override { return MsgClass::kPacemaker; }
  std::size_t wire_size() const override { return 8 + share_.wire_size(); }
  void serialize(ser::Writer& w) const override {
    w.view(view_);
    w.partial_sig(share_);
  }
  void collect_auth(AuthClaimSink& sink) const override {
    sink.share(Tag::statement(view_), share_);
  }
  static MessagePtr deserialize(ser::Reader& r) {
    View view = -1;
    crypto::PartialSig share;
    if (!r.view(view) || !r.partial_sig(share)) return nullptr;
    return std::make_shared<ShareMsg>(view, share);
  }

 private:
  View view_;
  crypto::PartialSig share_;
};

/// Carries an aggregated certificate. VC/EC/wish-cert (by type tag).
template <std::uint32_t TypeId, typename Tag>
class CertMsg final : public Message {
 public:
  explicit CertMsg(SyncCert cert) : cert_(std::move(cert)) {}

  [[nodiscard]] const SyncCert& cert() const noexcept { return cert_; }
  [[nodiscard]] View view() const noexcept { return cert_.view(); }

  std::uint32_t type_id() const override { return TypeId; }
  const char* type_name() const override { return Tag::kName; }
  MsgClass msg_class() const override { return MsgClass::kPacemaker; }
  std::size_t wire_size() const override { return 8 + cert_.sig().wire_size(); }
  void serialize(ser::Writer& w) const override { cert_.serialize(w); }
  void collect_auth(AuthClaimSink& sink) const override { sink.aggregate(cert_.sig()); }
  static MessagePtr deserialize(ser::Reader& r) {
    auto cert = SyncCert::deserialize(r);
    if (!cert) return nullptr;
    return std::make_shared<CertMsg>(std::move(*cert));
  }

 private:
  SyncCert cert_;
};

namespace detail {
struct ViewTag {
  static constexpr const char* kName = "view";
  static crypto::Digest statement(View v) { return view_msg_statement(v); }
};
struct VcTag {
  static constexpr const char* kName = "vc";
};
struct EpochViewTag {
  static constexpr const char* kName = "epoch-view";
  static crypto::Digest statement(View v) { return epoch_msg_statement(v); }
};
struct EcTag {
  static constexpr const char* kName = "ec";
};
struct WishTag {
  static constexpr const char* kName = "wish";
  static crypto::Digest statement(View v) { return wish_statement(v); }
};
struct WishCertTag {
  static constexpr const char* kName = "wish-cert";
};
}  // namespace detail

using ViewMsg = ShareMsg<kViewMsg, detail::ViewTag>;
using EpochViewMsg = ShareMsg<kEpochViewMsg, detail::EpochViewTag>;
using WishMsg = ShareMsg<kWishMsg, detail::WishTag>;
using VcMsg = CertMsg<kVcMsg, detail::VcTag>;
using EcMsg = CertMsg<kEcMsg, detail::EcTag>;
using WishCertMsg = CertMsg<kWishCertMsg, detail::WishCertTag>;

/// Registers all pacemaker message types with a codec.
inline void register_pacemaker_messages(MessageCodec& codec) {
  codec.register_type(kViewMsg, &ViewMsg::deserialize);
  codec.register_type(kVcMsg, &VcMsg::deserialize);
  codec.register_type(kEpochViewMsg, &EpochViewMsg::deserialize);
  codec.register_type(kEcMsg, &EcMsg::deserialize);
  codec.register_type(kWishMsg, &WishMsg::deserialize);
  codec.register_type(kWishCertMsg, &WishCertMsg::deserialize);
}

}  // namespace lumiere::pacemaker
