// View-synchronization certificates (VC / EC / wish certificates).
#pragma once

#include <optional>

#include "common/params.h"
#include "crypto/authenticator.h"
#include "ser/serializer.h"

namespace lumiere::pacemaker {

/// The statement signed by a "view v message": just the view number,
/// domain-separated (Section 3.3: "This message is just the value v
/// signed by p").
[[nodiscard]] crypto::Digest view_msg_statement(View v);

/// The statement signed by an "epoch view v message".
[[nodiscard]] crypto::Digest epoch_msg_statement(View v);

/// The statement signed by a relay wish (Cogsworth / NK20).
[[nodiscard]] crypto::Digest wish_statement(View v);

/// A generic certificate: a threshold signature by `threshold` distinct
/// processors over one of the statements above. VC = f+1 view messages;
/// EC = 2f+1 epoch-view messages; Cogsworth's view-change cert = f+1
/// wishes. Wire size O(kappa).
class SyncCert {
 public:
  SyncCert() = default;
  SyncCert(View view, crypto::ThresholdSig sig) : view_(view), sig_(std::move(sig)) {}

  [[nodiscard]] View view() const noexcept { return view_; }
  [[nodiscard]] const crypto::ThresholdSig& sig() const noexcept { return sig_; }

  /// Verifies signer threshold and statement binding. `statement` must be
  /// the statement function the certificate was built over.
  [[nodiscard]] bool verify(crypto::AuthView auth, std::uint32_t min_signers,
                            crypto::Digest (*statement)(View)) const {
    if (sig_.message != statement(view_)) return false;
    return auth.verify_aggregate(sig_, min_signers);
  }

  void serialize(ser::Writer& w) const {
    w.view(view_);
    w.threshold_sig(sig_);
  }
  [[nodiscard]] static std::optional<SyncCert> deserialize(ser::Reader& r) {
    SyncCert c;
    if (!r.view(c.view_)) return std::nullopt;
    if (!r.threshold_sig(c.sig_)) return std::nullopt;
    return c;
  }

  bool operator==(const SyncCert&) const = default;

 private:
  View view_ = -1;
  crypto::ThresholdSig sig_;
};

}  // namespace lumiere::pacemaker
