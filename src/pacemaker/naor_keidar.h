// NK20 (Naor & Keidar, DISC 2020 [16]): expected-linear round
// synchronization.
//
// Mechanically this is the Cogsworth relay scheme; the improvement that
// yields *expected* linear communication per view change in the presence
// of Byzantine faults is (a) a randomized leader/relay ordering, so a
// faulty relay chain is left after expected O(1) hops, and (b) relays
// answer for the certificate once formed. We inherit the relay machinery
// from CogsworthPacemaker and swap in the seeded random schedule; the
// benchmark harness measures the resulting expected-vs-worst-case split.
#pragma once

#include <memory>

#include "pacemaker/cogsworth.h"

namespace lumiere::pacemaker {

class NaorKeidarPacemaker final : public CogsworthPacemaker {
 public:
  NaorKeidarPacemaker(const ProtocolParams& params, ProcessId self, crypto::Signer signer,
                      PacemakerWiring wiring, Options options, std::uint64_t seed)
      : CogsworthPacemaker(params, self, signer, std::move(wiring), options,
                           std::make_unique<SeededPermutationSchedule>(params.n, seed)) {}

  [[nodiscard]] const char* name() const override { return "nk20"; }
};

}  // namespace lumiere::pacemaker
