// LP22 (Lewis-Pye 2022 [12]), as described in Section 3.2 of the paper.
//
// Views are batched into epochs of f+1 views. Entering an epoch requires
// a heavy all-to-all synchronization: at local-clock time c_{V(e)} a
// processor pauses its clock and broadcasts an epoch-view message; 2f+1
// such messages aggregate into an Epoch Certificate (EC), which is
// broadcast and admits everyone (setting lc := c_{V(e)}). Within the
// epoch, views are entered when the local clock reaches c_v, or early
// when a QC for v-1 arrives — but the local clock is never advanced on
// QCs, which is exactly why:
//
//  (i)  a single Byzantine leader late in the epoch costs Omega(n*Delta)
//       between decisions infinitely often (Figure 1), and
//  (ii) every epoch requires Theta(n^2) messages forever.
//
// Lumiere exists to remove both. Gamma defaults to (x+1) * Delta.
#pragma once

#include <map>
#include <optional>
#include <set>

#include "crypto/authenticator.h"
#include "pacemaker/leader_schedule.h"
#include "pacemaker/messages.h"
#include "pacemaker/pacemaker.h"

namespace lumiere::pacemaker {

class Lp22Pacemaker final : public Pacemaker {
 public:
  struct Options {
    /// Per-view time budget Gamma; zero means the paper default (x+1)*Delta.
    Duration gamma = Duration::zero();
  };

  Lp22Pacemaker(const ProtocolParams& params, ProcessId self, crypto::Signer signer,
                PacemakerWiring wiring, Options options);

  void start() override;
  void on_message(ProcessId from, const MessagePtr& msg) override;
  void on_qc(const consensus::QuorumCert& qc) override;
  [[nodiscard]] ProcessId leader_of(View v) const override { return schedule_.leader_of(v); }
  [[nodiscard]] View current_view() const override { return view_; }
  [[nodiscard]] const char* name() const override { return "lp22"; }

  [[nodiscard]] Duration gamma() const noexcept { return gamma_; }
  /// First view of epoch e (= e * (f+1)).
  [[nodiscard]] View epoch_first_view(Epoch e) const noexcept {
    return e * static_cast<View>(params_.f + 1);
  }
  [[nodiscard]] Epoch epoch_of(View v) const noexcept {
    return v >= 0 ? v / static_cast<View>(params_.f + 1) : -1;
  }
  [[nodiscard]] bool is_epoch_view(View v) const noexcept {
    return v >= 0 && v % static_cast<View>(params_.f + 1) == 0;
  }
  [[nodiscard]] Duration view_time(View v) const noexcept { return gamma_ * v; }

 private:
  void process_clock();
  void arm_boundary_alarm();
  void enter_view(View v);
  void begin_epoch_sync(View epoch_view);
  void handle_epoch_share(const EpochViewMsg& msg);
  void handle_ec(const EcMsg& msg);

  Options options_;
  RoundRobinSchedule schedule_;  // lead(v) = v mod n (Section 3.2)
  Duration gamma_;
  View view_ = -1;
  sim::AlarmId boundary_alarm_ = 0;
  std::set<View> epoch_msg_sent_;
  std::map<View, crypto::QuorumAggregator> epoch_aggs_;
  std::set<View> ec_sent_;
};

}  // namespace lumiere::pacemaker
