// RoundRobinPacemaker: the folklore exponential-backoff pacemaker
// (what HotStuff deployments historically shipped).
//
// Views advance responsively on QCs. On timeout, a processor broadcasts a
// signed wish for the next view (all-to-all); f+1 wishes for a higher
// view are echoed (Bracha-style amplification), and 2f+1 wishes admit the
// view and double the timeout. Simple and live, but:
//   * every view change costs Theta(n^2) messages, and
//   * the exponential backoff makes post-GST latency depend on how long
//     the network was asynchronous (unbounded in GST), so it meets none
//     of the paper's bounds. It is the "what everyone used before"
//     baseline.
#pragma once

#include <map>
#include <set>

#include "crypto/authenticator.h"
#include "pacemaker/leader_schedule.h"
#include "pacemaker/messages.h"
#include "pacemaker/pacemaker.h"

namespace lumiere::pacemaker {

class RoundRobinPacemaker final : public Pacemaker {
 public:
  struct Options {
    /// Base view timeout; doubles per consecutive failure.
    Duration base_timeout;
    /// Cap on the backoff exponent.
    std::uint32_t max_backoff_exponent = 16;
  };

  RoundRobinPacemaker(const ProtocolParams& params, ProcessId self, crypto::Signer signer,
                      PacemakerWiring wiring, Options options);

  void start() override;
  void on_message(ProcessId from, const MessagePtr& msg) override;
  void on_qc(const consensus::QuorumCert& qc) override;
  [[nodiscard]] ProcessId leader_of(View v) const override {
    return schedule_.leader_of(v);
  }
  [[nodiscard]] View current_view() const override { return view_; }
  [[nodiscard]] const char* name() const override { return "round-robin"; }

 private:
  void enter_view(View v, bool via_timeout);
  void arm_timer();
  void on_timeout();
  void send_wish(View v);
  void handle_wish(const WishMsg& msg);

  Options options_;
  RoundRobinSchedule schedule_;
  View view_ = -1;
  std::uint32_t consecutive_timeouts_ = 0;
  sim::EventHandle timer_;
  std::set<View> wished_;
  std::map<View, crypto::QuorumAggregator> wish_aggs_;
  std::set<View> amplified_;
};

}  // namespace lumiere::pacemaker
