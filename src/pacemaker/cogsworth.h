// Cogsworth [15]: leader-relay Byzantine view synchronization.
//
// On timing out in view v, a processor sends a signed wish for v+1 to the
// *leader* of v+1 (not all-to-all). The leader aggregates f+1 wishes into
// a view-change certificate and broadcasts it; everyone enters on receipt.
// If the target leader fails to respond, wishes are relayed to the leaders
// of successive views every `relay_timeout`, so each faulty relay costs
// O(n) messages and O(Delta) time.
//
// Measured shape (Table 1, "Cogsworth NK20" column):
//   worst-case communication O(n^3), worst-case latency O(n^2 Delta),
//   eventual O(n + n f_a^2) communication and O(f_a^2 Delta + delta)
//   latency — each of up to f_a consecutive faulty views can burn up to
//   f_a faulty relays before hitting an honest one.
//
// NaorKeidarPacemaker (naor_keidar.h) reuses this machinery with a
// randomized leader schedule, which is what turns the f_a^2 worst case
// into expected-constant relays (NK20 [16]).
#pragma once

#include <map>
#include <memory>
#include <set>

#include "crypto/authenticator.h"
#include "pacemaker/leader_schedule.h"
#include "pacemaker/messages.h"
#include "pacemaker/pacemaker.h"

namespace lumiere::pacemaker {

class CogsworthPacemaker : public Pacemaker {
 public:
  struct Options {
    /// Time in a view before wishing to leave it.
    Duration view_timeout;
    /// Time between successive relay attempts.
    Duration relay_timeout;
  };

  CogsworthPacemaker(const ProtocolParams& params, ProcessId self, crypto::Signer signer,
                     PacemakerWiring wiring, Options options,
                     std::unique_ptr<LeaderSchedule> schedule);

  void start() override;
  void on_message(ProcessId from, const MessagePtr& msg) override;
  void on_qc(const consensus::QuorumCert& qc) override;
  [[nodiscard]] ProcessId leader_of(View v) const override { return schedule_->leader_of(v); }
  [[nodiscard]] View current_view() const override { return view_; }
  [[nodiscard]] const char* name() const override { return "cogsworth"; }

 private:
  void enter_view(View v);
  void arm_view_timer();
  void begin_wishing(View target);
  void relay_wish();
  void handle_wish(const WishMsg& msg);
  void handle_cert(const WishCertMsg& msg);

  Options options_;
  std::unique_ptr<LeaderSchedule> schedule_;
  View view_ = -1;
  sim::EventHandle view_timer_;

  // Wishing state: the view we are trying to reach and the relay index
  // (0 = lead(target), k = lead(target + k)).
  View wish_target_ = -1;
  std::uint32_t relay_index_ = 0;
  sim::EventHandle relay_timer_;

  // Relay-side state: wishes received for each view (any processor can be
  // asked to act as a relay).
  std::map<View, crypto::QuorumAggregator> wish_aggs_;
  std::set<View> certs_sent_;
};

}  // namespace lumiere::pacemaker
