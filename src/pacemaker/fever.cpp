#include "pacemaker/fever.h"

#include "common/log.h"

namespace lumiere::pacemaker {

Duration FeverPacemaker::default_gamma(const ProtocolParams& params, std::uint32_t tenure) {
  LUMIERE_ASSERT(tenure >= 2);
  // Gamma >= (2 + tenure * x) * Delta / (tenure - 1), rounded up to keep
  // the liveness budget intact with integer ticks.
  const std::int64_t numerator =
      (2 + static_cast<std::int64_t>(tenure) * params.x) * params.delta_cap.ticks();
  const std::int64_t denominator = tenure - 1;
  return Duration((numerator + denominator - 1) / denominator);
}

FeverPacemaker::FeverPacemaker(const ProtocolParams& params, ProcessId self,
                               crypto::Signer signer, PacemakerWiring wiring, Options options)
    : Pacemaker(params, self, signer, std::move(wiring)),
      options_(options),
      tenure_(options.tenure),
      schedule_(params.n, options.tenure),
      gamma_(options.gamma > Duration::zero() ? options.gamma
                                              : default_gamma(params, options.tenure)) {
  LUMIERE_ASSERT_MSG(tenure_ >= 2, "Fever needs at least one grace view per tenure");
}

void FeverPacemaker::start() { process_clock(); }

void FeverPacemaker::arm_boundary_alarm() {
  clock().cancel_alarm(boundary_alarm_);
  const Duration r = clock().reading();
  // Next *initial* view boundary strictly above the current value.
  View next = r.ticks() / gamma_.ticks() + 1;
  if (next % tenure_ != 0) next += tenure_ - (next % tenure_);
  boundary_alarm_ = clock().set_alarm(view_time(next), [this] { process_clock(); });
}

void FeverPacemaker::process_clock() {
  const Duration r = clock().reading();
  const View w = r.ticks() / gamma_.ticks();
  // "If v is initial, then p enters view v when lc(p) = c_v" — which can
  // happen by real-time advance or by a bump landing exactly on c_v.
  if (r == view_time(w) && is_initial(w) && w > view_) enter_initial(w);
  arm_boundary_alarm();
}

void FeverPacemaker::enter_initial(View v) {
  view_ = v;
  notify_enter_view(v);
  send_view_msg(v);
}

void FeverPacemaker::send_view_msg(View v) {
  if (view_msg_sent_.contains(v)) return;
  view_msg_sent_.insert(v);
  note_sync_started(v);
  send_to(leader_of(v),
          std::make_shared<ViewMsg>(v, crypto::threshold_share(signer_, view_msg_statement(v))));
}

void FeverPacemaker::handle_view_share(const ViewMsg& msg) {
  const View v = msg.view();
  if (!is_initial(v) || leader_of(v) != self_) return;
  if (vc_sent_.contains(v) || v < view_) return;
  auto [it, inserted] = view_aggs_.try_emplace(v, auth(), view_msg_statement(v),
                                               params_.small_quorum());
  (void)inserted;
  if (!it->second.add(msg.share())) return;
  if (it->second.complete()) {
    vc_sent_.insert(v);
    broadcast(std::make_shared<VcMsg>(SyncCert(v, it->second.aggregate())));
  }
}

void FeverPacemaker::handle_vc(const VcMsg& msg) {
  const SyncCert& cert = msg.cert();
  const View v = cert.view();
  if (!is_initial(v) || v <= view_) return;
  if (!cert.verify(auth(), params_.small_quorum(), &view_msg_statement)) return;
  // "receives ... a VC for view v, and if lc(p) < c_v, then p
  // instantaneously bumps their local clock to c_v" — the exact landing
  // then triggers the initial-view entry rule.
  if (clock().reading() < view_time(v)) {
    clock().bump_to(view_time(v));
    process_clock();
  }
}

void FeverPacemaker::on_message(ProcessId /*from*/, const MessagePtr& msg) {
  switch (msg->type_id()) {
    case kViewMsg:
      handle_view_share(static_cast<const ViewMsg&>(*msg));
      break;
    case kVcMsg:
      handle_vc(static_cast<const VcMsg&>(*msg));
      break;
    default:
      break;
  }
}

void FeverPacemaker::on_qc(const consensus::QuorumCert& qc) {
  const View next = qc.view() + 1;
  // Bump: "receives a QC for view v-1 ... bumps their local clock to c_v".
  if (clock().reading() < view_time(next)) {
    clock().bump_to(view_time(next));
  }
  // "If v is not initial, then p enters view v if it is presently in a
  // view < v and it receives a QC for view v-1."
  if (!is_initial(next) && next > view_) {
    view_ = next;
    notify_enter_view(next);
  }
  process_clock();
}

}  // namespace lumiere::pacemaker
