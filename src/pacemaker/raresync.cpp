#include "pacemaker/raresync.h"

namespace lumiere::pacemaker {

RareSyncPacemaker::RareSyncPacemaker(const ProtocolParams& params, ProcessId self,
                                     crypto::Signer signer, PacemakerWiring wiring,
                                     Options options)
    : Pacemaker(params, self, signer, std::move(wiring)),
      options_(options),
      schedule_(params.n, 1),
      gamma_(options.gamma > Duration::zero() ? options.gamma
                                              : params.delta_cap * (params.x + 1)) {}

void RareSyncPacemaker::start() { process_clock(); }

void RareSyncPacemaker::arm_boundary_alarm() {
  clock().cancel_alarm(boundary_alarm_);
  const Duration r = clock().reading();
  const View next = r.ticks() / gamma_.ticks() + 1;
  boundary_alarm_ = clock().set_alarm(view_time(next), [this] { process_clock(); });
}

void RareSyncPacemaker::process_clock() {
  const Duration r = clock().reading();
  const View w = r.ticks() / gamma_.ticks();
  if (r == view_time(w) && w > view_) {
    if (is_epoch_view(w)) {
      begin_epoch_sync(w);
    } else {
      // Views advance purely by local clock — no responsiveness.
      enter_view(w);
    }
  }
  arm_boundary_alarm();
}

void RareSyncPacemaker::begin_epoch_sync(View epoch_view) {
  clock().pause();
  if (!epoch_msg_sent_.contains(epoch_view)) {
    epoch_msg_sent_.insert(epoch_view);
    note_sync_started(epoch_view);
    broadcast(std::make_shared<EpochViewMsg>(
        epoch_view, crypto::threshold_share(signer_, epoch_msg_statement(epoch_view))));
  }
}

void RareSyncPacemaker::enter_view(View v) {
  if (v <= view_) return;
  view_ = v;
  notify_enter_view(v);
}

void RareSyncPacemaker::handle_epoch_share(const EpochViewMsg& msg) {
  const View v = msg.view();
  if (!is_epoch_view(v)) return;
  if (v <= view_ || ec_sent_.contains(v)) return;
  auto [it, inserted] =
      epoch_aggs_.try_emplace(v, auth(), epoch_msg_statement(v), params_.quorum());
  (void)inserted;
  if (!it->second.add(msg.share())) return;
  if (it->second.complete()) {
    ec_sent_.insert(v);
    broadcast(std::make_shared<EcMsg>(SyncCert(v, it->second.aggregate())));
  }
}

void RareSyncPacemaker::handle_ec(const EcMsg& msg) {
  const SyncCert& cert = msg.cert();
  const View v = cert.view();
  if (!is_epoch_view(v) || v <= view_) return;
  if (!cert.verify(auth(), params_.quorum(), &epoch_msg_statement)) return;
  clock().bump_to(view_time(v));
  clock().unpause();
  enter_view(v);
  process_clock();
}

void RareSyncPacemaker::on_message(ProcessId /*from*/, const MessagePtr& msg) {
  switch (msg->type_id()) {
    case kEpochViewMsg:
      handle_epoch_share(static_cast<const EpochViewMsg&>(*msg));
      break;
    case kEcMsg:
      handle_ec(static_cast<const EcMsg&>(*msg));
      break;
    default:
      break;
  }
}

void RareSyncPacemaker::on_qc(const consensus::QuorumCert& /*qc*/) {
  // Deliberately empty: RareSync has no responsive fast path. QCs only
  // matter to the underlying protocol.
}

}  // namespace lumiere::pacemaker
