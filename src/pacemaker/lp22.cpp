#include "pacemaker/lp22.h"

#include "common/log.h"

namespace lumiere::pacemaker {

Lp22Pacemaker::Lp22Pacemaker(const ProtocolParams& params, ProcessId self, crypto::Signer signer,
                             PacemakerWiring wiring, Options options)
    : Pacemaker(params, self, signer, std::move(wiring)),
      options_(options),
      schedule_(params.n, 1),
      gamma_(options.gamma > Duration::zero() ? options.gamma
                                              : params.delta_cap * (params.x + 1)) {}

void Lp22Pacemaker::start() { process_clock(); }

void Lp22Pacemaker::arm_boundary_alarm() {
  clock().cancel_alarm(boundary_alarm_);
  const Duration r = clock().reading();
  const View next = r.ticks() / gamma_.ticks() + 1;
  boundary_alarm_ = clock().set_alarm(view_time(next), [this] { process_clock(); });
}

void Lp22Pacemaker::process_clock() {
  const Duration r = clock().reading();
  const View w = r.ticks() / gamma_.ticks();
  if (r == view_time(w) && w > view_) {
    if (is_epoch_view(w)) {
      begin_epoch_sync(w);
    } else {
      // "Processor p enters non-epoch view v when its local clock
      // reaches c_v."
      enter_view(w);
    }
  }
  arm_boundary_alarm();
}

void Lp22Pacemaker::begin_epoch_sync(View epoch_view) {
  // "At this point, it pauses its local clock and sends an epoch view v
  // message to all processors."
  clock().pause();
  if (!epoch_msg_sent_.contains(epoch_view)) {
    epoch_msg_sent_.insert(epoch_view);
    note_sync_started(epoch_view);
    broadcast(std::make_shared<EpochViewMsg>(
        epoch_view, crypto::threshold_share(signer_, epoch_msg_statement(epoch_view))));
  }
}

void Lp22Pacemaker::enter_view(View v) {
  if (v <= view_) return;
  view_ = v;
  notify_enter_view(v);
}

void Lp22Pacemaker::handle_epoch_share(const EpochViewMsg& msg) {
  const View v = msg.view();
  if (!is_epoch_view(v)) return;
  // "Upon receiving epoch view v messages from 2f+1 distinct processors
  // while in a view < v, any honest processor combines these into an EC
  // and sends the EC to all processors."
  if (v <= view_ || ec_sent_.contains(v)) return;
  auto [it, inserted] =
      epoch_aggs_.try_emplace(v, auth(), epoch_msg_statement(v), params_.quorum());
  (void)inserted;
  if (!it->second.add(msg.share())) return;
  if (it->second.complete()) {
    ec_sent_.insert(v);
    broadcast(std::make_shared<EcMsg>(SyncCert(v, it->second.aggregate())));
  }
}

void Lp22Pacemaker::handle_ec(const EcMsg& msg) {
  const SyncCert& cert = msg.cert();
  const View v = cert.view();
  if (!is_epoch_view(v) || v <= view_) return;
  if (!cert.verify(auth(), params_.quorum(), &epoch_msg_statement)) return;
  // "Upon seeing an EC for view v while in any lower view, any honest
  // processor sets lc(p) := c_v, unpauses its local clock if paused, and
  // then enters epoch e and view v."
  clock().bump_to(view_time(v));
  clock().unpause();
  enter_view(v);
  process_clock();  // re-arm the boundary alarm from the new clock value
}

void Lp22Pacemaker::on_message(ProcessId /*from*/, const MessagePtr& msg) {
  switch (msg->type_id()) {
    case kEpochViewMsg:
      handle_epoch_share(static_cast<const EpochViewMsg&>(*msg));
      break;
    case kEcMsg:
      handle_ec(static_cast<const EcMsg&>(*msg));
      break;
    default:
      break;
  }
}

void Lp22Pacemaker::on_qc(const consensus::QuorumCert& qc) {
  // "Processor p enters non-epoch view v when ... p sees a QC for view
  // v-1." No clock bump — the defining weakness of LP22.
  const View next = qc.view() + 1;
  if (!is_epoch_view(next) && next > view_) enter_view(next);
}

}  // namespace lumiere::pacemaker
