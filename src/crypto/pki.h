// Public-key infrastructure and per-process signatures for the simulation.
//
// The paper (Section 2) assumes *perfect* cryptography: processors hold
// signing keys, a PKI validates signatures, and the adversary cannot forge.
// We realize this with HMAC-SHA256 under per-process keys held by a Pki
// object that is trusted *by the harness* (not by the protocol): a process
// can only obtain a `Signer` for its own id, so Byzantine processes may
// sign arbitrary *content* but can never produce a signature attributed to
// an honest process. This is the standard construction for deterministic
// protocol simulators and preserves everything the paper's measures depend
// on (message counts and O(kappa) signature sizes).
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/assert.h"
#include "common/rng.h"
#include "common/types.h"
#include "crypto/hmac.h"
#include "crypto/sha256.h"

namespace lumiere::crypto {

/// A signature by one process over a message digest. Wire size is modeled
/// as kappa bytes (Section 2) regardless of internal representation.
struct Signature {
  ProcessId signer = kNoProcess;
  Digest mac;

  bool operator==(const Signature&) const = default;

  /// Modeled wire size: kappa for the MAC plus the 4-byte signer id.
  [[nodiscard]] static constexpr std::size_t wire_size() noexcept { return kKappaBytes + 4; }
};

class Pki;
struct ThresholdSig;
[[nodiscard]] bool verify_threshold(const Pki& pki, const ThresholdSig& sig,
                                    std::uint32_t min_signers);

/// A signing capability for exactly one process id. Handed out by the Pki;
/// possession of a Signer is what it means to "be" that process in the
/// simulation.
class Signer {
 public:
  [[nodiscard]] ProcessId id() const noexcept { return id_; }

  /// Signs a message digest.
  [[nodiscard]] Signature sign(const Digest& message) const;

 private:
  friend class Pki;
  Signer(const Pki* pki, ProcessId id) noexcept : pki_(pki), id_(id) {}

  const Pki* pki_;
  ProcessId id_;
};

/// The trusted key registry for a cluster of n processes.
class Pki {
 public:
  /// Generates n independent keys deterministically from `seed`.
  Pki(std::uint32_t n, std::uint64_t seed);

  [[nodiscard]] std::uint32_t n() const noexcept { return static_cast<std::uint32_t>(keys_.size()); }

  /// Returns the signing capability for process `id`. The harness calls
  /// this once per process at cluster construction.
  [[nodiscard]] Signer signer_for(ProcessId id) const {
    LUMIERE_ASSERT(id < n());
    return Signer(this, id);
  }

  /// Verifies that `sig` is a valid signature by `sig.signer` over
  /// `message`. Returns false (not an error) on mismatch: invalid
  /// signatures are an expected runtime condition under Byzantine faults.
  [[nodiscard]] bool verify(const Digest& message, const Signature& sig) const;

 private:
  friend class Signer;
  // verify_threshold must recompute share MACs from keys; it is the only
  // non-Signer code with key access (capability hygiene: protocol and
  // adversary code can verify but never forge).
  friend bool verify_threshold(const Pki& pki, const ThresholdSig& sig,
                               std::uint32_t min_signers);
  [[nodiscard]] Digest mac_for(ProcessId id, const Digest& message) const;

  std::vector<SecretKey> keys_;
};

}  // namespace lumiere::crypto
