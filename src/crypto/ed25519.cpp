#include "crypto/ed25519.h"

#include <cstring>

#include "common/rng.h"

namespace lumiere::crypto {
namespace {

// ---------------------------------------------------------------------
// Field arithmetic mod p = 2^255 - 19, five 51-bit limbs.
// ---------------------------------------------------------------------

using u64 = std::uint64_t;
using u128 = unsigned __int128;

constexpr u64 kMask51 = (u64{1} << 51) - 1;

struct Fe {
  u64 v[5];
};

constexpr Fe fe_zero() { return {{0, 0, 0, 0, 0}}; }
constexpr Fe fe_one() { return {{1, 0, 0, 0, 0}}; }
constexpr Fe fe_small(u64 x) { return {{x, 0, 0, 0, 0}}; }

void fe_carry(Fe& f) {
  u64 c;
  c = f.v[0] >> 51; f.v[0] &= kMask51; f.v[1] += c;
  c = f.v[1] >> 51; f.v[1] &= kMask51; f.v[2] += c;
  c = f.v[2] >> 51; f.v[2] &= kMask51; f.v[3] += c;
  c = f.v[3] >> 51; f.v[3] &= kMask51; f.v[4] += c;
  c = f.v[4] >> 51; f.v[4] &= kMask51; f.v[0] += 19 * c;
  c = f.v[0] >> 51; f.v[0] &= kMask51; f.v[1] += c;
}

Fe fe_add(const Fe& a, const Fe& b) {
  Fe r;
  for (int i = 0; i < 5; ++i) r.v[i] = a.v[i] + b.v[i];
  fe_carry(r);
  return r;
}

// a - b, offset by 2p so limbs never underflow (inputs are carried).
Fe fe_sub(const Fe& a, const Fe& b) {
  Fe r;
  r.v[0] = a.v[0] + 0xFFFFFFFFFFFDAULL - b.v[0];
  r.v[1] = a.v[1] + 0xFFFFFFFFFFFFEULL - b.v[1];
  r.v[2] = a.v[2] + 0xFFFFFFFFFFFFEULL - b.v[2];
  r.v[3] = a.v[3] + 0xFFFFFFFFFFFFEULL - b.v[3];
  r.v[4] = a.v[4] + 0xFFFFFFFFFFFFEULL - b.v[4];
  fe_carry(r);
  return r;
}

Fe fe_neg(const Fe& a) { return fe_sub(fe_zero(), a); }

Fe fe_mul(const Fe& a, const Fe& b) {
  const u128 f0 = a.v[0], f1 = a.v[1], f2 = a.v[2], f3 = a.v[3], f4 = a.v[4];
  const u64 g0 = b.v[0], g1 = b.v[1], g2 = b.v[2], g3 = b.v[3], g4 = b.v[4];
  const u64 g1_19 = 19 * g1, g2_19 = 19 * g2, g3_19 = 19 * g3, g4_19 = 19 * g4;

  u128 r0 = f0 * g0 + f1 * g4_19 + f2 * g3_19 + f3 * g2_19 + f4 * g1_19;
  u128 r1 = f0 * g1 + f1 * g0 + f2 * g4_19 + f3 * g3_19 + f4 * g2_19;
  u128 r2 = f0 * g2 + f1 * g1 + f2 * g0 + f3 * g4_19 + f4 * g3_19;
  u128 r3 = f0 * g3 + f1 * g2 + f2 * g1 + f3 * g0 + f4 * g4_19;
  u128 r4 = f0 * g4 + f1 * g3 + f2 * g2 + f3 * g1 + f4 * g0;

  Fe out;
  u64 c;
  c = static_cast<u64>(r0 >> 51); out.v[0] = static_cast<u64>(r0) & kMask51; r1 += c;
  c = static_cast<u64>(r1 >> 51); out.v[1] = static_cast<u64>(r1) & kMask51; r2 += c;
  c = static_cast<u64>(r2 >> 51); out.v[2] = static_cast<u64>(r2) & kMask51; r3 += c;
  c = static_cast<u64>(r3 >> 51); out.v[3] = static_cast<u64>(r3) & kMask51; r4 += c;
  c = static_cast<u64>(r4 >> 51); out.v[4] = static_cast<u64>(r4) & kMask51;
  const u128 fold = static_cast<u128>(19) * c + out.v[0];  // 19*c can top 64 bits
  out.v[0] = static_cast<u64>(fold) & kMask51;
  out.v[1] += static_cast<u64>(fold >> 51);
  return out;
}

Fe fe_sq(const Fe& a) { return fe_mul(a, a); }

u64 load64_le(const std::uint8_t* p) {
  u64 r = 0;
  for (int i = 0; i < 8; ++i) r |= static_cast<u64>(p[i]) << (8 * i);
  return r;
}

void store64_le(std::uint8_t* p, u64 v) {
  for (int i = 0; i < 8; ++i) p[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

Fe fe_frombytes(const std::uint8_t s[32]) {
  Fe f;
  f.v[0] = load64_le(s) & kMask51;
  f.v[1] = (load64_le(s + 6) >> 3) & kMask51;
  f.v[2] = (load64_le(s + 12) >> 6) & kMask51;
  f.v[3] = (load64_le(s + 19) >> 1) & kMask51;
  f.v[4] = (load64_le(s + 24) >> 12) & kMask51;
  return f;
}

void fe_tobytes(std::uint8_t out[32], const Fe& f) {
  Fe t = f;
  fe_carry(t);
  fe_carry(t);
  // Canonical reduction: q = 1 iff t >= p, then fold q*19 back in.
  u64 q = (t.v[0] + 19) >> 51;
  q = (t.v[1] + q) >> 51;
  q = (t.v[2] + q) >> 51;
  q = (t.v[3] + q) >> 51;
  q = (t.v[4] + q) >> 51;
  t.v[0] += 19 * q;
  u64 c;
  c = t.v[0] >> 51; t.v[0] &= kMask51; t.v[1] += c;
  c = t.v[1] >> 51; t.v[1] &= kMask51; t.v[2] += c;
  c = t.v[2] >> 51; t.v[2] &= kMask51; t.v[3] += c;
  c = t.v[3] >> 51; t.v[3] &= kMask51; t.v[4] += c;
  t.v[4] &= kMask51;
  store64_le(out, t.v[0] | (t.v[1] << 51));
  store64_le(out + 8, (t.v[1] >> 13) | (t.v[2] << 38));
  store64_le(out + 16, (t.v[2] >> 26) | (t.v[3] << 25));
  store64_le(out + 24, (t.v[3] >> 39) | (t.v[4] << 12));
}

bool fe_eq(const Fe& a, const Fe& b) {
  std::uint8_t ab[32];
  std::uint8_t bb[32];
  fe_tobytes(ab, a);
  fe_tobytes(bb, b);
  return std::memcmp(ab, bb, 32) == 0;
}

// Square-and-multiply with a little-endian 32-byte exponent.
Fe fe_pow(const Fe& base, const std::uint8_t exp[32]) {
  Fe result = fe_one();
  for (int i = 254; i >= 0; --i) {
    result = fe_sq(result);
    if ((exp[i >> 3] >> (i & 7)) & 1) result = fe_mul(result, base);
  }
  return result;
}

constexpr std::uint8_t kExpPMinus2[32] = {  // p - 2, for inversion
    0xeb, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff,
    0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff,
    0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f};
constexpr std::uint8_t kExpP38[32] = {  // (p + 3) / 8, for square roots
    0xfe, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff,
    0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff,
    0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x0f};
constexpr std::uint8_t kExpP14[32] = {  // (p - 1) / 4; sqrt(-1) = 2^this
    0xfb, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff,
    0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff,
    0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x1f};

Fe fe_invert(const Fe& a) { return fe_pow(a, kExpPMinus2); }

const Fe& fe_d() {  // d = -121665/121666
  static const Fe d = fe_mul(fe_neg(fe_small(121665)), fe_invert(fe_small(121666)));
  return d;
}

const Fe& fe_2d() {
  static const Fe d2 = fe_add(fe_d(), fe_d());
  return d2;
}

const Fe& fe_sqrt_m1() {
  static const Fe s = fe_pow(fe_small(2), kExpP14);
  return s;
}

// ---------------------------------------------------------------------
// Group arithmetic: extended coordinates (X:Y:Z:T), x = X/Z, y = Y/Z,
// T = XY/Z, on -x^2 + y^2 = 1 + d x^2 y^2.
// ---------------------------------------------------------------------

struct Point {
  Fe X, Y, Z, T;
};

Point point_identity() { return {fe_zero(), fe_one(), fe_one(), fe_zero()}; }

// dbl-2008-hwcd (a = -1).
Point point_dbl(const Point& p) {
  const Fe A = fe_sq(p.X);
  const Fe B = fe_sq(p.Y);
  const Fe zz = fe_sq(p.Z);
  const Fe C = fe_add(zz, zz);
  const Fe D = fe_neg(A);
  const Fe E = fe_sub(fe_sub(fe_sq(fe_add(p.X, p.Y)), A), B);
  const Fe G = fe_add(D, B);
  const Fe F = fe_sub(G, C);
  const Fe H = fe_sub(D, B);
  return {fe_mul(E, F), fe_mul(G, H), fe_mul(F, G), fe_mul(E, H)};
}

// add-2008-hwcd-3 (a = -1, strongly unified).
Point point_add(const Point& p, const Point& q) {
  const Fe A = fe_mul(fe_sub(p.Y, p.X), fe_sub(q.Y, q.X));
  const Fe B = fe_mul(fe_add(p.Y, p.X), fe_add(q.Y, q.X));
  const Fe C = fe_mul(fe_mul(p.T, fe_2d()), q.T);
  const Fe D = fe_mul(fe_add(p.Z, p.Z), q.Z);
  const Fe E = fe_sub(B, A);
  const Fe F = fe_sub(D, C);
  const Fe G = fe_add(D, C);
  const Fe H = fe_add(B, A);
  return {fe_mul(E, F), fe_mul(G, H), fe_mul(F, G), fe_mul(E, H)};
}

// Plain double-and-add over a 256-bit little-endian scalar. Deliberately
// unoptimized: the scheme's point is honest (and measurable) verify cost.
Point point_mul(const std::uint8_t scalar[32], const Point& p) {
  Point r = point_identity();
  for (int i = 255; i >= 0; --i) {
    r = point_dbl(r);
    if ((scalar[i >> 3] >> (i & 7)) & 1) r = point_add(r, p);
  }
  return r;
}

void point_compress(std::uint8_t out[32], const Point& p) {
  const Fe zinv = fe_invert(p.Z);
  const Fe x = fe_mul(p.X, zinv);
  const Fe y = fe_mul(p.Y, zinv);
  fe_tobytes(out, y);
  std::uint8_t xb[32];
  fe_tobytes(xb, x);
  out[31] |= static_cast<std::uint8_t>((xb[0] & 1) << 7);
}

bool point_decompress(Point& out, const std::uint8_t in[32]) {
  const Fe y = fe_frombytes(in);
  const std::uint8_t sign = in[31] >> 7;
  const Fe y2 = fe_sq(y);
  const Fe u = fe_sub(y2, fe_one());
  const Fe v = fe_add(fe_mul(fe_d(), y2), fe_one());
  const Fe r = fe_mul(u, fe_invert(v));  // x^2
  Fe x = fe_pow(r, kExpP38);
  if (!fe_eq(fe_sq(x), r)) {
    x = fe_mul(x, fe_sqrt_m1());
    if (!fe_eq(fe_sq(x), r)) return false;  // not a curve point
  }
  std::uint8_t xb[32];
  fe_tobytes(xb, x);
  if ((xb[0] & 1) != sign) x = fe_neg(x);
  out = {x, y, fe_one(), fe_mul(x, y)};
  return true;
}

bool point_eq(const Point& a, const Point& b) {
  return fe_eq(fe_mul(a.X, b.Z), fe_mul(b.X, a.Z)) &&
         fe_eq(fe_mul(a.Y, b.Z), fe_mul(b.Y, a.Z));
}

const Point& base_point() {  // y = 4/5, even x
  static const Point B = [] {
    std::uint8_t yb[32];
    fe_tobytes(yb, fe_mul(fe_small(4), fe_invert(fe_small(5))));
    Point p;
    const bool ok = point_decompress(p, yb);
    LUMIERE_ASSERT(ok);
    return p;
  }();
  return B;
}

// ---------------------------------------------------------------------
// Scalar arithmetic mod the group order
// L = 2^252 + 27742317777372353535851937790883648493.
// ---------------------------------------------------------------------

using U256 = std::array<u64, 4>;  // little-endian words
using U512 = std::array<u64, 8>;

constexpr U256 kL = {0x5812631a5cf5d3edULL, 0x14def9dea2f79cd6ULL, 0ULL,
                     0x1000000000000000ULL};

bool words_geq(const u64* a, const u64* b, int n) {
  for (int i = n - 1; i >= 0; --i) {
    if (a[i] != b[i]) return a[i] > b[i];
  }
  return true;
}

void words_sub(u64* a, const u64* b, int n) {  // a -= b (a >= b)
  u64 borrow = 0;
  for (int i = 0; i < n; ++i) {
    const u128 d = static_cast<u128>(a[i]) - b[i] - borrow;
    a[i] = static_cast<u64>(d);
    borrow = (d >> 64) != 0 ? 1 : 0;
  }
}

U512 shl512(const U256& a, int s) {
  U512 r{};
  const int word = s / 64;
  const int bit = s % 64;
  for (int i = 0; i < 4; ++i) {
    r[i + word] |= bit == 0 ? a[i] : (a[i] << bit);
    if (bit != 0 && i + word + 1 < 8) r[i + word + 1] |= a[i] >> (64 - bit);
  }
  return r;
}

// Shift-subtract reduction; pace is irrelevant next to the point math.
// x < 2^512 <= L << 260, so 259 is the highest shift that can ever
// subtract — and the highest whose shifted L still fits in 512 bits.
U256 mod_l(U512 x) {
  for (int s = 259; s >= 0; --s) {
    const U512 ls = shl512(kL, s);
    if (words_geq(x.data(), ls.data(), 8)) words_sub(x.data(), ls.data(), 8);
  }
  return {x[0], x[1], x[2], x[3]};
}

U256 sc_frombytes(const std::uint8_t s[32]) {
  U512 wide{};
  for (int i = 0; i < 4; ++i) wide[i] = load64_le(s + 8 * i);
  return mod_l(wide);
}

void sc_tobytes(std::uint8_t out[32], const U256& a) {
  for (int i = 0; i < 4; ++i) store64_le(out + 8 * i, a[i]);
}

bool sc_is_zero(const U256& a) { return a[0] == 0 && a[1] == 0 && a[2] == 0 && a[3] == 0; }

bool sc_canonical(const U256& a) { return !words_geq(a.data(), kL.data(), 4); }

U256 sc_add(const U256& a, const U256& b) {
  U256 r;
  u64 carry = 0;
  for (int i = 0; i < 4; ++i) {
    const u128 t = static_cast<u128>(a[i]) + b[i] + carry;
    r[i] = static_cast<u64>(t);
    carry = static_cast<u64>(t >> 64);
  }
  if (carry != 0 || words_geq(r.data(), kL.data(), 4)) words_sub(r.data(), kL.data(), 4);
  return r;
}

U256 sc_mul(const U256& a, const U256& b) {
  U512 r{};
  for (int i = 0; i < 4; ++i) {
    u128 carry = 0;
    for (int j = 0; j < 4; ++j) {
      carry += static_cast<u128>(a[i]) * b[j] + r[i + j];
      r[i + j] = static_cast<u64>(carry);
      carry >>= 64;
    }
    int k = i + 4;
    while (carry != 0 && k < 8) {
      carry += r[k];
      r[k] = static_cast<u64>(carry);
      carry >>= 64;
      ++k;
    }
  }
  return mod_l(r);
}

U256 sc_from_hash(const Digest& d) {
  U256 r = sc_frombytes(d.bytes().data());
  if (sc_is_zero(r)) r[0] = 1;  // keep nonces/keys invertible-by-convention
  return r;
}

Point sc_mul_point(const U256& s, const Point& p) {
  std::uint8_t bytes[32];
  sc_tobytes(bytes, s);
  return point_mul(bytes, p);
}

Digest challenge(const std::uint8_t r_compressed[32], const std::uint8_t pub_compressed[32],
                 const Digest& message) {
  Sha256 h;
  h.update("lumiere.ed25519.chal");
  h.update(std::span<const std::uint8_t>(r_compressed, 32));
  h.update(std::span<const std::uint8_t>(pub_compressed, 32));
  h.update(message.as_span());
  return h.finish();
}

}  // namespace

struct Ed25519Authenticator::Keys {
  std::vector<U256> secret;
  std::vector<Point> pub;
  std::vector<std::array<std::uint8_t, 32>> pub_bytes;
};

Ed25519Authenticator::Ed25519Authenticator(std::uint32_t n, std::uint64_t seed)
    : Authenticator(n), keys_(std::make_unique<Keys>()) {
  Rng rng(seed ^ 0x71c9a3f0e5d24b87ULL);
  keys_->secret.reserve(n);
  keys_->pub.reserve(n);
  keys_->pub_bytes.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    std::uint8_t raw[32];
    for (int w = 0; w < 4; ++w) store64_le(raw + 8 * w, rng.next());
    U256 a = sc_frombytes(raw);
    if (sc_is_zero(a)) a[0] = 1;
    const Point A = sc_mul_point(a, base_point());
    std::array<std::uint8_t, 32> ab{};
    point_compress(ab.data(), A);
    keys_->secret.push_back(a);
    keys_->pub.push_back(A);
    keys_->pub_bytes.push_back(ab);
  }
}

Ed25519Authenticator::~Ed25519Authenticator() = default;

SigBytes Ed25519Authenticator::sign_blob(ProcessId id, const Digest& message) const {
  LUMIERE_ASSERT(id < n());
  const U256& a = keys_->secret[id];
  std::uint8_t a_bytes[32];
  sc_tobytes(a_bytes, a);

  Sha256 h;  // deterministic nonce: no randomness enters the experiment
  h.update("lumiere.ed25519.nonce");
  h.update(std::span<const std::uint8_t>(a_bytes, 32));
  h.update(message.as_span());
  const U256 r = sc_from_hash(h.finish());

  const Point R = sc_mul_point(r, base_point());
  std::uint8_t sig[64];
  point_compress(sig, R);
  const U256 e = sc_from_hash(challenge(sig, keys_->pub_bytes[id].data(), message));
  const U256 s = sc_add(r, sc_mul(e, a));
  sc_tobytes(sig + 32, s);
  return SigBytes(std::span<const std::uint8_t>(sig, 64));
}

bool Ed25519Authenticator::check_signature(ProcessId id, const Digest& message,
                                           const SigBytes& sig) const {
  if (sig.size() != 64 || id >= n()) return false;
  const std::uint8_t* bytes = sig.data();
  U512 s_wide{};
  for (int i = 0; i < 4; ++i) s_wide[i] = load64_le(bytes + 32 + 8 * i);
  const U256 s = {s_wide[0], s_wide[1], s_wide[2], s_wide[3]};
  if (!sc_canonical(s)) return false;
  Point R;
  if (!point_decompress(R, bytes)) return false;
  const U256 e = sc_from_hash(challenge(bytes, keys_->pub_bytes[id].data(), message));
  const Point lhs = sc_mul_point(s, base_point());
  const Point rhs = point_add(R, sc_mul_point(e, keys_->pub[id]));
  return point_eq(lhs, rhs);
}

// Half-aggregation: concatenated nonce commitments (sorted by signer)
// plus one summed response. 32 + 32m tag bytes for m signers.
SigBytes Ed25519Authenticator::aggregate_tag(
    const Digest& message, const std::vector<PartialSig>& sorted_shares) const {
  (void)message;
  SigBytes tag = SigBytes::zeros(32 * sorted_shares.size() + 32);
  U256 s_agg = {0, 0, 0, 0};
  std::size_t offset = 0;
  for (const PartialSig& share : sorted_shares) {
    LUMIERE_ASSERT(share.sig.size() == 64);
    std::memcpy(tag.data() + offset, share.sig.data(), 32);
    offset += 32;
    const U256 s = sc_frombytes(share.sig.data() + 32);
    s_agg = sc_add(s_agg, s);
  }
  sc_tobytes(tag.data() + offset, s_agg);
  return tag;
}

bool Ed25519Authenticator::check_aggregate_tag(const ThresholdSig& sig) const {
  const std::uint32_t m = sig.signers.count();
  if (sig.tag.size() != 32 * static_cast<std::size_t>(m) + 32) return false;
  const Digest statement = share_statement(sig.message);
  const std::uint8_t* tag = sig.tag.data();

  U256 s_agg;
  for (int i = 0; i < 4; ++i) s_agg[i] = load64_le(tag + 32 * m + 8 * i);
  if (!sc_canonical(s_agg)) return false;

  Point rhs = point_identity();
  std::size_t index = 0;
  for (const ProcessId id : sig.signers.members()) {
    const std::uint8_t* rc = tag + 32 * index;
    ++index;
    Point R;
    if (!point_decompress(R, rc)) return false;
    const U256 e = sc_from_hash(challenge(rc, keys_->pub_bytes[id].data(), statement));
    rhs = point_add(rhs, point_add(R, sc_mul_point(e, keys_->pub[id])));
  }
  const Point lhs = sc_mul_point(s_agg, base_point());
  return point_eq(lhs, rhs);
}

}  // namespace lumiere::crypto
