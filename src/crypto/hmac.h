// HMAC-SHA256 (RFC 2104).
//
// Used as the MAC underlying the default "hmac" authenticator scheme: the
// paper assumes perfect signatures, and in a closed simulation a keyed MAC
// whose key is held by the trusted key registry gives exactly that
// (unforgeable by any process that does not hold the key). Verified
// against RFC 4231 vectors.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string_view>

#include "crypto/sha256.h"

namespace lumiere::crypto {

/// A 32-byte symmetric key.
using SecretKey = std::array<std::uint8_t, 32>;

/// One-shot HMAC-SHA256.
[[nodiscard]] Digest hmac_sha256(std::span<const std::uint8_t> key,
                                 std::span<const std::uint8_t> message) noexcept;

[[nodiscard]] inline Digest hmac_sha256(const SecretKey& key,
                                        std::span<const std::uint8_t> message) noexcept {
  return hmac_sha256(std::span<const std::uint8_t>(key.data(), key.size()), message);
}

[[nodiscard]] inline Digest hmac_sha256(const SecretKey& key, std::string_view message) noexcept {
  return hmac_sha256(key, std::span<const std::uint8_t>(
                              reinterpret_cast<const std::uint8_t*>(message.data()),
                              message.size()));
}

}  // namespace lumiere::crypto
