// m-of-n threshold signatures (Section 2).
//
// The paper uses threshold signatures (Boneh-Lynn-Shacham / Shoup style)
// to compress m signatures into one O(kappa)-sized certificate, with
// m = f+1 (VC, TC) or m = 2f+1 (QC, EC). We model the aggregate as the
// set of contributing signers (a bitmap) plus an aggregation tag that is
// deterministically derived from the share MACs — unforgeable in the
// simulation for the same reason individual signatures are. The *wire
// size* charged for an aggregate is O(kappa), independent of m and n,
// exactly as the paper assumes; the bitmap is treated as part of the
// O(kappa) envelope (real systems ship the bitmap too — it is n bits,
// dwarfed by kappa for the n considered here, and the paper's complexity
// accounting counts messages of length O(kappa)).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/signer_set.h"
#include "common/types.h"
#include "crypto/pki.h"
#include "crypto/sha256.h"

namespace lumiere::crypto {

/// A share contributed by one signer toward a threshold signature.
/// Identical wire shape to Signature; separate type so call sites cannot
/// confuse a share with a standalone signature.
struct PartialSig {
  ProcessId signer = kNoProcess;
  Digest mac;

  bool operator==(const PartialSig&) const = default;
  [[nodiscard]] static constexpr std::size_t wire_size() noexcept { return kKappaBytes + 4; }
};

/// An aggregated m-of-n threshold signature over one message digest.
struct ThresholdSig {
  Digest message;    ///< digest of the signed statement
  SignerSet signers; ///< which processes contributed
  Digest tag;        ///< aggregation tag binding shares together

  bool operator==(const ThresholdSig&) const = default;

  /// Modeled wire size: O(kappa) (Section 2 — "does not depend on m or n").
  [[nodiscard]] static constexpr std::size_t wire_size() noexcept { return 2 * kKappaBytes; }

  [[nodiscard]] std::uint32_t signer_count() const noexcept { return signers.count(); }
};

/// Produces a share for `signer` over `message`.
[[nodiscard]] PartialSig threshold_share(const Signer& signer, const Digest& message);

/// Collects shares for one message until a threshold m is reached.
///
/// Duplicate shares from the same signer and shares whose MAC fails
/// verification are rejected (returning false), never fatal: Byzantine
/// processes are free to send garbage.
class ThresholdAggregator {
 public:
  /// `m` is the threshold (f+1 or 2f+1); `n` the universe size.
  ThresholdAggregator(const Pki* pki, Digest message, std::uint32_t m, std::uint32_t n);

  /// Adds a share. Returns true if the share was fresh and valid.
  bool add(const PartialSig& share);

  [[nodiscard]] std::uint32_t count() const noexcept { return signers_.count(); }
  [[nodiscard]] bool complete() const noexcept { return signers_.count() >= m_; }
  [[nodiscard]] const Digest& message() const noexcept { return message_; }

  /// Builds the aggregate once `complete()`. Must not be called before.
  [[nodiscard]] ThresholdSig aggregate() const;

 private:
  const Pki* pki_;
  Digest message_;
  std::uint32_t m_;
  SignerSet signers_;
  std::vector<PartialSig> shares_;  // kept sorted by signer id
};

/// Verifies an aggregate: every claimed signer must have a valid share
/// binding, and the tag must match the recomputed aggregation.
/// `min_signers` enforces the threshold (f+1 or 2f+1).
[[nodiscard]] bool verify_threshold(const Pki& pki, const ThresholdSig& sig,
                                    std::uint32_t min_signers);

}  // namespace lumiere::crypto
