#include "crypto/pki.h"

namespace lumiere::crypto {

Pki::Pki(std::uint32_t n, std::uint64_t seed) {
  keys_.reserve(n);
  Rng rng(seed ^ 0x9d2c5680cafef00dULL);
  for (std::uint32_t i = 0; i < n; ++i) {
    SecretKey key{};
    for (std::size_t w = 0; w < key.size(); w += 8) {
      const std::uint64_t word = rng.next();
      for (std::size_t b = 0; b < 8; ++b) {
        key[w + b] = static_cast<std::uint8_t>(word >> (8 * b));
      }
    }
    keys_.push_back(key);
  }
}

Digest Pki::mac_for(ProcessId id, const Digest& message) const {
  LUMIERE_ASSERT(id < n());
  return hmac_sha256(keys_[id], message.as_span());
}

bool Pki::verify(const Digest& message, const Signature& sig) const {
  if (sig.signer >= n()) return false;
  return mac_for(sig.signer, message) == sig.mac;
}

Signature Signer::sign(const Digest& message) const {
  return Signature{id_, pki_->mac_for(id_, message)};
}

}  // namespace lumiere::crypto
