#include "crypto/threshold.h"

#include <algorithm>

#include "common/assert.h"

namespace lumiere::crypto {

namespace {

/// Domain separation: threshold shares sign H("lumiere.ts" || message) so a
/// share can never be replayed as a standalone signature or vice versa.
Digest share_statement(const Digest& message) {
  Sha256 h;
  h.update("lumiere.ts");
  h.update(message.as_span());
  return h.finish();
}

/// Aggregation tag: binds the message, the ordered signer set, and the
/// ordered share MACs.
Digest aggregation_tag(const Digest& message, const std::vector<PartialSig>& sorted_shares) {
  Sha256 h;
  h.update("lumiere.agg");
  h.update(message.as_span());
  for (const auto& share : sorted_shares) {
    const std::uint8_t id_bytes[4] = {
        static_cast<std::uint8_t>(share.signer),
        static_cast<std::uint8_t>(share.signer >> 8),
        static_cast<std::uint8_t>(share.signer >> 16),
        static_cast<std::uint8_t>(share.signer >> 24),
    };
    h.update(std::span<const std::uint8_t>(id_bytes, 4));
    h.update(share.mac.as_span());
  }
  return h.finish();
}

}  // namespace

PartialSig threshold_share(const Signer& signer, const Digest& message) {
  const Signature sig = signer.sign(share_statement(message));
  return PartialSig{sig.signer, sig.mac};
}

ThresholdAggregator::ThresholdAggregator(const Pki* pki, Digest message, std::uint32_t m,
                                         std::uint32_t n)
    : pki_(pki), message_(message), m_(m), signers_(n) {
  LUMIERE_ASSERT(pki != nullptr);
  LUMIERE_ASSERT(m >= 1 && m <= n);
}

bool ThresholdAggregator::add(const PartialSig& share) {
  if (share.signer >= signers_.universe_size()) return false;
  if (signers_.contains(share.signer)) return false;
  if (!pki_->verify(share_statement(message_), Signature{share.signer, share.mac})) {
    return false;
  }
  signers_.add(share.signer);
  const auto pos = std::lower_bound(
      shares_.begin(), shares_.end(), share,
      [](const PartialSig& a, const PartialSig& b) { return a.signer < b.signer; });
  shares_.insert(pos, share);
  return true;
}

ThresholdSig ThresholdAggregator::aggregate() const {
  LUMIERE_ASSERT_MSG(complete(), "aggregate() before threshold reached");
  return ThresholdSig{message_, signers_, aggregation_tag(message_, shares_)};
}

bool verify_threshold(const Pki& pki, const ThresholdSig& sig, std::uint32_t min_signers) {
  if (sig.signers.count() < min_signers) return false;
  if (sig.signers.universe_size() != pki.n()) return false;
  const Digest statement = share_statement(sig.message);
  std::vector<PartialSig> shares;
  shares.reserve(sig.signers.count());
  for (const ProcessId id : sig.signers.members()) {
    shares.push_back(PartialSig{id, pki.mac_for(id, statement)});
  }
  return aggregation_tag(sig.message, shares) == sig.tag;
}

}  // namespace lumiere::crypto
