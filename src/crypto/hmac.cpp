#include "crypto/hmac.h"

#include <cstring>

namespace lumiere::crypto {

Digest hmac_sha256(std::span<const std::uint8_t> key,
                   std::span<const std::uint8_t> message) noexcept {
  constexpr std::size_t kBlock = 64;
  std::uint8_t key_block[kBlock] = {};
  if (key.size() > kBlock) {
    const Digest kd = Sha256::hash(key);
    std::memcpy(key_block, kd.bytes().data(), Digest::kSize);
  } else {
    std::memcpy(key_block, key.data(), key.size());
  }

  std::uint8_t ipad[kBlock];
  std::uint8_t opad[kBlock];
  for (std::size_t i = 0; i < kBlock; ++i) {
    ipad[i] = static_cast<std::uint8_t>(key_block[i] ^ 0x36);
    opad[i] = static_cast<std::uint8_t>(key_block[i] ^ 0x5c);
  }

  Sha256 inner;
  inner.update(std::span<const std::uint8_t>(ipad, kBlock));
  inner.update(message);
  const Digest inner_digest = inner.finish();

  Sha256 outer;
  outer.update(std::span<const std::uint8_t>(opad, kBlock));
  outer.update(inner_digest.as_span());
  return outer.finish();
}

}  // namespace lumiere::crypto
