// Per-node authenticator-operation counters (the observability layer's
// crypto instrumentation seam).
//
// Every Signer and AuthView can carry a pointer to one AuthOpCounters;
// when set, each primitive operation bumps the matching counter. The
// counts are *semantic* (one verify_share call = one share-verify, even
// when the VerifyMemo answers it), so sim and TCP runs of the same
// scenario report identical numbers — the tracer attributes protocol
// cost, not scheme microarchitecture. Atomics with relaxed ordering keep
// the counters safe to bump from TCP driver threads and to snapshot from
// a status-endpoint thread; on the single-threaded simulator they cost a
// plain increment.
#pragma once

#include <atomic>
#include <cstdint>

namespace lumiere::crypto {

/// A plain value snapshot of the counters, safe to copy and subtract.
struct AuthOpSnapshot {
  std::uint64_t signs = 0;              ///< Signer::sign
  std::uint64_t shares = 0;             ///< Signer::share (threshold shares)
  std::uint64_t verifies = 0;           ///< AuthView::verify (standalone sigs)
  std::uint64_t share_verifies = 0;     ///< AuthView::verify_share
  std::uint64_t aggregate_verifies = 0; ///< AuthView::verify_aggregate
  std::uint64_t aggregates_built = 0;   ///< QuorumAggregator::aggregate

  [[nodiscard]] std::uint64_t total() const noexcept {
    return signs + shares + verifies + share_verifies + aggregate_verifies +
           aggregates_built;
  }

  friend AuthOpSnapshot operator-(const AuthOpSnapshot& a, const AuthOpSnapshot& b) {
    AuthOpSnapshot d;
    d.signs = a.signs - b.signs;
    d.shares = a.shares - b.shares;
    d.verifies = a.verifies - b.verifies;
    d.share_verifies = a.share_verifies - b.share_verifies;
    d.aggregate_verifies = a.aggregate_verifies - b.aggregate_verifies;
    d.aggregates_built = a.aggregates_built - b.aggregates_built;
    return d;
  }

  friend AuthOpSnapshot operator+(const AuthOpSnapshot& a, const AuthOpSnapshot& b) {
    AuthOpSnapshot s;
    s.signs = a.signs + b.signs;
    s.shares = a.shares + b.shares;
    s.verifies = a.verifies + b.verifies;
    s.share_verifies = a.share_verifies + b.share_verifies;
    s.aggregate_verifies = a.aggregate_verifies + b.aggregate_verifies;
    s.aggregates_built = a.aggregates_built + b.aggregates_built;
    return s;
  }

  bool operator==(const AuthOpSnapshot&) const = default;
};

/// The live counters one node owns. Never reset mid-run: consumers take
/// snapshots and subtract (runtime/obs attribute per-span deltas that way).
class AuthOpCounters {
 public:
  void count_sign() noexcept { bump(signs_); }
  void count_share() noexcept { bump(shares_); }
  void count_verify() noexcept { bump(verifies_); }
  void count_share_verify() noexcept { bump(share_verifies_); }
  void count_aggregate_verify() noexcept { bump(aggregate_verifies_); }
  void count_aggregate_built() noexcept { bump(aggregates_built_); }

  [[nodiscard]] AuthOpSnapshot snapshot() const noexcept {
    AuthOpSnapshot s;
    s.signs = signs_.load(std::memory_order_relaxed);
    s.shares = shares_.load(std::memory_order_relaxed);
    s.verifies = verifies_.load(std::memory_order_relaxed);
    s.share_verifies = share_verifies_.load(std::memory_order_relaxed);
    s.aggregate_verifies = aggregate_verifies_.load(std::memory_order_relaxed);
    s.aggregates_built = aggregates_built_.load(std::memory_order_relaxed);
    return s;
  }

 private:
  static void bump(std::atomic<std::uint64_t>& c) noexcept {
    c.fetch_add(1, std::memory_order_relaxed);
  }

  std::atomic<std::uint64_t> signs_{0};
  std::atomic<std::uint64_t> shares_{0};
  std::atomic<std::uint64_t> verifies_{0};
  std::atomic<std::uint64_t> share_verifies_{0};
  std::atomic<std::uint64_t> aggregate_verifies_{0};
  std::atomic<std::uint64_t> aggregates_built_{0};
};

}  // namespace lumiere::crypto
