// The pluggable authenticator suite (Section 2's "signatures and
// threshold signatures", made scheme-agnostic).
//
// The paper assumes perfect signatures of O(kappa) bytes and m-of-n
// threshold certificates that verify in one step. This header is the one
// seam through which the rest of the library touches cryptography:
//
//   * `Authenticator` — a per-cluster scheme instance (key registry +
//     sign/verify/aggregate primitives). Two schemes are in-tree: the
//     zero-cost HMAC scheme the deterministic simulator defaults to, and
//     an ed25519-style scheme with real group arithmetic whose verify
//     cost is honest (see crypto/ed25519.h). Schemes are selected by
//     registry name via make_authenticator(); nothing outside src/crypto/
//     names a concrete scheme.
//   * `Signer` — the signing capability for exactly one process id,
//     handed out by the Authenticator. Possession of a Signer is what it
//     means to "be" that process: Byzantine processes may sign arbitrary
//     content but can never forge an honest process's signature.
//   * `QuorumAggregator` — collects verified shares for one statement
//     until a threshold m is reached and emits the scheme's aggregate.
//   * `AuthView` — the per-node verification facade: scheme plus an
//     optional `VerifyMemo` of signatures a pipeline worker pool already
//     checked off-thread (runtime/pipeline.h), so the single-threaded
//     consensus core skips re-verification without changing its
//     accept/reject semantics.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/assert.h"
#include "common/signer_set.h"
#include "common/types.h"
#include "crypto/auth_counters.h"
#include "crypto/sha256.h"
#include "crypto/sig_bytes.h"
#include "crypto/sig_wire.h"

namespace lumiere::crypto {

/// A signature by one process over a message digest. The blob length is
/// scheme-reported (SigWireSpec::sig_bytes); wire_size() is therefore an
/// instance property now, not a constant.
struct Signature {
  ProcessId signer = kNoProcess;
  SigBytes sig;

  bool operator==(const Signature&) const = default;

  /// Modeled wire size: the scheme's blob plus the 4-byte signer id.
  [[nodiscard]] std::size_t wire_size() const noexcept { return sig.size() + 4; }
};

/// A share contributed by one signer toward a threshold aggregate.
/// Identical wire shape to Signature; separate type so call sites cannot
/// confuse a share with a standalone signature.
struct PartialSig {
  ProcessId signer = kNoProcess;
  SigBytes sig;

  bool operator==(const PartialSig&) const = default;
  [[nodiscard]] std::size_t wire_size() const noexcept { return sig.size() + 4; }
};

/// An aggregated m-of-n threshold signature over one message digest. The
/// default tag is kappa zero bytes so a default-constructed (genesis)
/// aggregate serializes identically under every scheme.
struct ThresholdSig {
  Digest message;     ///< digest of the signed statement
  SignerSet signers;  ///< which processes contributed
  SigBytes tag = SigBytes::zeros(kKappaBytes);  ///< scheme aggregation tag

  bool operator==(const ThresholdSig&) const = default;

  /// Modeled wire size: the statement digest plus the scheme tag. For the
  /// HMAC sim scheme this is the paper's 2*kappa; schemes with
  /// half-aggregation grow linearly in the signer count.
  [[nodiscard]] std::size_t wire_size() const noexcept { return kKappaBytes + tag.size(); }

  [[nodiscard]] std::uint32_t signer_count() const noexcept { return signers.count(); }
};

/// Domain separation: threshold shares sign H("lumiere.ts" || message) so
/// a share can never be replayed as a standalone signature or vice versa.
/// Shared by every scheme (the statement is hashed before the scheme sees
/// it, so aggregation stays scheme-agnostic).
[[nodiscard]] Digest share_statement(const Digest& message);

class Authenticator;

/// A signing capability for exactly one process id.
class Signer {
 public:
  [[nodiscard]] ProcessId id() const noexcept { return id_; }

  /// Signs a message digest.
  [[nodiscard]] Signature sign(const Digest& message) const;

  /// Produces this signer's share toward an aggregate over `message`.
  [[nodiscard]] PartialSig share(const Digest& message) const;

  /// Attaches an op counter (observability). Copies of the signer made
  /// after this call inherit the pointer, which is how the counters reach
  /// the pacemaker/core without those layers knowing about them.
  void set_op_counters(AuthOpCounters* ops) noexcept { ops_ = ops; }

 private:
  friend class Authenticator;
  Signer(const Authenticator* auth, ProcessId id) noexcept : auth_(auth), id_(id) {}

  const Authenticator* auth_;
  ProcessId id_;
  AuthOpCounters* ops_ = nullptr;
};

/// Produces a share for `signer` over `message` (= signer.share).
[[nodiscard]] PartialSig threshold_share(const Signer& signer, const Digest& message);

/// A per-cluster authenticator scheme: the trusted key registry plus the
/// scheme's sign/verify/aggregate primitives. Instances are immutable
/// after construction and safe to share across threads.
class Authenticator {
 public:
  virtual ~Authenticator() = default;

  Authenticator(const Authenticator&) = delete;
  Authenticator& operator=(const Authenticator&) = delete;

  [[nodiscard]] std::uint32_t n() const noexcept { return n_; }

  /// The registry name of this scheme (e.g. for bench labels).
  [[nodiscard]] virtual const char* scheme_name() const noexcept = 0;

  /// The wire geometry deserializers need (ser/serializer.h).
  [[nodiscard]] virtual SigWireSpec wire_spec() const noexcept = 0;

  /// Returns the signing capability for process `id`. The harness calls
  /// this once per process at cluster construction.
  [[nodiscard]] Signer signer_for(ProcessId id) const {
    LUMIERE_ASSERT(id < n_);
    return Signer(this, id);
  }

  /// Verifies a standalone signature. Returns false (not an error) on
  /// mismatch: invalid signatures are an expected runtime condition under
  /// Byzantine faults.
  [[nodiscard]] bool verify(const Digest& message, const Signature& sig) const;

  /// Full validity check of one share over `message` (bounds + crypto).
  /// Used directly by pipeline workers; protocol code goes through the
  /// memo-aware AuthView.
  [[nodiscard]] bool check_share(const Digest& message, const PartialSig& share) const;

  /// Full cryptographic validity of an aggregate (universe + tag); the
  /// threshold itself (min signers) is the caller's check.
  [[nodiscard]] bool check_aggregate(const ThresholdSig& sig) const;

 protected:
  explicit Authenticator(std::uint32_t n) : n_(n) { LUMIERE_ASSERT(n >= 1); }

  // -- scheme primitives -------------------------------------------------
  [[nodiscard]] virtual SigBytes sign_blob(ProcessId id, const Digest& message) const = 0;
  [[nodiscard]] virtual bool check_signature(ProcessId id, const Digest& message,
                                             const SigBytes& sig) const = 0;
  /// Builds the aggregate tag from verified shares sorted by signer id.
  [[nodiscard]] virtual SigBytes aggregate_tag(
      const Digest& message, const std::vector<PartialSig>& sorted_shares) const = 0;
  /// Verifies the tag of an aggregate whose universe already matched.
  [[nodiscard]] virtual bool check_aggregate_tag(const ThresholdSig& sig) const = 0;

 private:
  friend class Signer;
  friend class QuorumAggregator;

  std::uint32_t n_;
};

/// Fingerprint of one verified share claim, for the VerifyMemo. Binds the
/// statement, the signer and the signature bytes.
[[nodiscard]] Digest share_fingerprint(const Digest& message, const PartialSig& share);

/// Fingerprint of one verified aggregate claim.
[[nodiscard]] Digest aggregate_fingerprint(const ThresholdSig& sig);

/// Signatures a pipeline worker pool already verified for one node.
///
/// Single-writer: only the node's driver thread inserts (after popping a
/// worker result from the verified queue) and only that thread's protocol
/// code reads, so no locking is needed. Bounded: when full, the set is
/// cleared — a memo miss only costs a re-verification, never correctness.
class VerifyMemo {
 public:
  explicit VerifyMemo(std::size_t max_entries = 1 << 16) : max_entries_(max_entries) {}

  void remember(const Digest& fingerprint) {
    if (seen_.size() >= max_entries_) seen_.clear();
    seen_.insert(fingerprint);
  }
  [[nodiscard]] bool contains(const Digest& fingerprint) const {
    return seen_.find(fingerprint) != seen_.end();
  }
  [[nodiscard]] std::size_t size() const noexcept { return seen_.size(); }

 private:
  std::size_t max_entries_;
  std::unordered_set<Digest> seen_;
};

/// The per-node verification facade protocol code holds: the cluster's
/// scheme plus (on the TCP pipeline) the node's memo of pre-verified
/// signatures. Copyable value; null memo means every check is done inline.
class AuthView {
 public:
  AuthView() = default;
  explicit AuthView(const Authenticator* auth, const VerifyMemo* memo = nullptr,
                    AuthOpCounters* ops = nullptr) noexcept
      : auth_(auth), memo_(memo), ops_(ops) {}

  [[nodiscard]] const Authenticator* scheme() const noexcept { return auth_; }
  [[nodiscard]] std::uint32_t n() const noexcept { return auth_->n(); }
  [[nodiscard]] SigWireSpec wire_spec() const noexcept { return auth_->wire_spec(); }
  [[nodiscard]] Signer signer_for(ProcessId id) const { return auth_->signer_for(id); }
  explicit operator bool() const noexcept { return auth_ != nullptr; }

  [[nodiscard]] bool verify(const Digest& message, const Signature& sig) const {
    if (ops_ != nullptr) ops_->count_verify();
    return auth_->verify(message, sig);
  }

  /// Share validity, consulting the memo before the scheme.
  [[nodiscard]] bool verify_share(const Digest& message, const PartialSig& share) const;

  /// Aggregate validity: threshold + universe first (always inline —
  /// they are cheap and min_signers is call-site-specific), then memo or
  /// scheme for the cryptographic tag.
  [[nodiscard]] bool verify_aggregate(const ThresholdSig& sig, std::uint32_t min_signers) const;

  /// The attached op counters (null when observability is off).
  [[nodiscard]] AuthOpCounters* op_counters() const noexcept { return ops_; }

 private:
  const Authenticator* auth_ = nullptr;
  const VerifyMemo* memo_ = nullptr;
  AuthOpCounters* ops_ = nullptr;
};

/// Collects shares for one message until a threshold m is reached.
///
/// Duplicate shares from the same signer and shares that fail
/// verification are rejected (returning false), never fatal: Byzantine
/// processes are free to send garbage.
class QuorumAggregator {
 public:
  /// `m` is the threshold (f+1 or 2f+1); the universe is auth.n().
  QuorumAggregator(AuthView auth, Digest message, std::uint32_t m);

  /// Adds a share. Returns true if the share was fresh and valid.
  bool add(const PartialSig& share);

  [[nodiscard]] std::uint32_t count() const noexcept { return signers_.count(); }
  [[nodiscard]] bool complete() const noexcept { return signers_.count() >= m_; }
  [[nodiscard]] const Digest& message() const noexcept { return message_; }

  /// Builds the aggregate once `complete()`. Must not be called before.
  [[nodiscard]] ThresholdSig aggregate() const;

 private:
  AuthView auth_;
  Digest message_;
  std::uint32_t m_;
  SignerSet signers_;
  std::vector<PartialSig> shares_;  // kept sorted by signer id
};

// -- scheme registry -----------------------------------------------------

/// The scheme the deterministic simulator defaults to (all goldens pin
/// its bytes).
inline constexpr const char* kDefaultScheme = "hmac";

/// Builds a scheme instance by registry name; keys derive
/// deterministically from `seed`. Throws std::invalid_argument naming the
/// unknown scheme and listing the registered ones.
[[nodiscard]] std::unique_ptr<Authenticator> make_authenticator(const std::string& scheme,
                                                                std::uint32_t n,
                                                                std::uint64_t seed);

[[nodiscard]] bool has_scheme(const std::string& scheme);

/// Registered scheme names, sorted — stable for parameterized tests and
/// benches (which enumerate schemes instead of naming them).
[[nodiscard]] std::vector<std::string> scheme_names();

}  // namespace lumiere::crypto
