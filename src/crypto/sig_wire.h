// Scheme-reported wire geometry.
//
// Deserializers need to know how many bytes a signature blob or an
// aggregation tag occupies before they can cut it out of a frame; that
// length is a property of the authenticator scheme, not of the message.
// Every ser::Reader carries a SigWireSpec (defaulting to the HMAC sim
// scheme, which keeps all legacy byte streams decodable), and the codec
// of a cluster running another scheme installs that scheme's spec.
#pragma once

#include <cstddef>
#include <cstdint>

#include "common/types.h"

namespace lumiere::crypto {

struct SigWireSpec {
  /// Bytes of one Signature / PartialSig blob (excluding the signer id).
  std::uint32_t sig_bytes = static_cast<std::uint32_t>(kKappaBytes);
  /// Aggregate-tag bytes independent of the signer count.
  std::uint32_t agg_fixed = static_cast<std::uint32_t>(kKappaBytes);
  /// Additional aggregate-tag bytes per contributing signer.
  std::uint32_t agg_per_signer = 0;

  /// Tag length of an aggregate carrying `signers` contributions.
  [[nodiscard]] constexpr std::size_t tag_bytes(std::uint32_t signers) const noexcept {
    return agg_fixed + static_cast<std::size_t>(agg_per_signer) * signers;
  }

  bool operator==(const SigWireSpec&) const = default;
};

}  // namespace lumiere::crypto
