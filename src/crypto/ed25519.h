// An ed25519-style signature scheme with real group arithmetic, so
// verification cost is honest.
//
// Construction: Schnorr signatures over the twisted Edwards curve
// -x^2 + y^2 = 1 + d x^2 y^2 (curve25519's Edwards form, the ed25519
// group) with deterministic nonces. It is *ed25519-style*, not RFC 8032
// interoperable: the challenge hash is the in-tree SHA-256 (the build is
// offline and carries no SHA-512), keys derive from the deterministic
// experiment seed, and scalar multiplication is a straightforward
// double-and-add — honest asymptotics and realistic per-verify cost,
// which is exactly what the staged pipeline and the bench knee need.
// Self-consistency (round-trip, tamper rejection, aggregation) is pinned
// by tests/crypto/authenticator_test.cpp.
//
// Quorum certificates use half-aggregation: the tag carries each
// contributor's nonce commitment R_i (32 bytes, sorted by signer id)
// plus the single summed response S = sum S_i mod L, verified in one
// multi-term equation S*B == sum R_i + sum e_i*A_i. The tag is therefore
// 32 + 32m bytes (SigWireSpec{64, 32, 32}) — the honest cost of a
// certificate that does not assume a pairing-based scheme.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "crypto/authenticator.h"

namespace lumiere::crypto {

class Ed25519Authenticator final : public Authenticator {
 public:
  /// Derives n keypairs deterministically from `seed`.
  Ed25519Authenticator(std::uint32_t n, std::uint64_t seed);
  ~Ed25519Authenticator() override;

  [[nodiscard]] const char* scheme_name() const noexcept override { return "ed25519"; }
  [[nodiscard]] SigWireSpec wire_spec() const noexcept override { return SigWireSpec{64, 32, 32}; }

 protected:
  [[nodiscard]] SigBytes sign_blob(ProcessId id, const Digest& message) const override;
  [[nodiscard]] bool check_signature(ProcessId id, const Digest& message,
                                     const SigBytes& sig) const override;
  [[nodiscard]] SigBytes aggregate_tag(
      const Digest& message, const std::vector<PartialSig>& sorted_shares) const override;
  [[nodiscard]] bool check_aggregate_tag(const ThresholdSig& sig) const override;

 private:
  struct Keys;  // curve types stay out of the public header
  std::unique_ptr<Keys> keys_;
};

}  // namespace lumiere::crypto
