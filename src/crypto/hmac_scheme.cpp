#include "crypto/hmac_scheme.h"

#include "common/rng.h"

namespace lumiere::crypto {

HmacAuthenticator::HmacAuthenticator(std::uint32_t n, std::uint64_t seed) : Authenticator(n) {
  keys_.reserve(n);
  Rng rng(seed ^ 0x9d2c5680cafef00dULL);
  for (std::uint32_t i = 0; i < n; ++i) {
    SecretKey key{};
    for (std::size_t w = 0; w < key.size(); w += 8) {
      const std::uint64_t word = rng.next();
      for (std::size_t b = 0; b < 8; ++b) {
        key[w + b] = static_cast<std::uint8_t>(word >> (8 * b));
      }
    }
    keys_.push_back(key);
  }
}

Digest HmacAuthenticator::mac_for(ProcessId id, const Digest& message) const {
  LUMIERE_ASSERT(id < n());
  return hmac_sha256(keys_[id], message.as_span());
}

SigBytes HmacAuthenticator::sign_blob(ProcessId id, const Digest& message) const {
  return SigBytes(mac_for(id, message).as_span());
}

bool HmacAuthenticator::check_signature(ProcessId id, const Digest& message,
                                        const SigBytes& sig) const {
  const Digest mac = mac_for(id, message);
  return sig.size() == Digest::kSize && sig == SigBytes(mac.as_span());
}

/// Aggregation tag: binds the message, the ordered signer set, and the
/// ordered share MACs. Byte-identical to the pre-redesign construction
/// (the goldens pin it).
SigBytes HmacAuthenticator::aggregate_tag(const Digest& message,
                                          const std::vector<PartialSig>& sorted_shares) const {
  Sha256 h;
  h.update("lumiere.agg");
  h.update(message.as_span());
  for (const auto& share : sorted_shares) {
    const std::uint8_t id_bytes[4] = {
        static_cast<std::uint8_t>(share.signer),
        static_cast<std::uint8_t>(share.signer >> 8),
        static_cast<std::uint8_t>(share.signer >> 16),
        static_cast<std::uint8_t>(share.signer >> 24),
    };
    h.update(std::span<const std::uint8_t>(id_bytes, 4));
    h.update(share.sig.span());
  }
  return SigBytes(h.finish().as_span());
}

bool HmacAuthenticator::check_aggregate_tag(const ThresholdSig& sig) const {
  const Digest statement = share_statement(sig.message);
  std::vector<PartialSig> shares;
  shares.reserve(sig.signers.count());
  for (const ProcessId id : sig.signers.members()) {
    shares.push_back(PartialSig{id, sign_blob(id, statement)});
  }
  return aggregate_tag(sig.message, shares) == sig.tag;
}

}  // namespace lumiere::crypto
