// SHA-256 (FIPS 180-4).
//
// Self-contained implementation: the build environment is offline and the
// paper's crypto assumption only requires a collision-resistant hash for
// digests/commitments. Verified against the FIPS test vectors in
// tests/crypto/sha256_test.cpp.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>

namespace lumiere::crypto {

/// A 32-byte digest value with value semantics.
class Digest {
 public:
  static constexpr std::size_t kSize = 32;

  constexpr Digest() noexcept : bytes_{} {}
  constexpr explicit Digest(const std::array<std::uint8_t, kSize>& bytes) noexcept
      : bytes_(bytes) {}

  [[nodiscard]] const std::array<std::uint8_t, kSize>& bytes() const noexcept { return bytes_; }
  [[nodiscard]] std::span<const std::uint8_t> as_span() const noexcept {
    return {bytes_.data(), bytes_.size()};
  }

  /// Lowercase hex rendering, e.g. for logs and goldens.
  [[nodiscard]] std::string hex() const;

  /// First 8 bytes interpreted big-endian — convenient short identity for
  /// hash maps and trace output. Not a substitute for full comparison.
  [[nodiscard]] std::uint64_t prefix64() const noexcept {
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v = (v << 8) | bytes_[static_cast<std::size_t>(i)];
    return v;
  }

  [[nodiscard]] bool is_zero() const noexcept {
    for (auto b : bytes_) {
      if (b != 0) return false;
    }
    return true;
  }

  auto operator<=>(const Digest&) const noexcept = default;

 private:
  std::array<std::uint8_t, kSize> bytes_;
};

/// Incremental SHA-256 hasher.
class Sha256 {
 public:
  Sha256() noexcept { reset(); }

  void reset() noexcept;
  void update(std::span<const std::uint8_t> data) noexcept;
  void update(std::string_view data) noexcept {
    update(std::span<const std::uint8_t>(reinterpret_cast<const std::uint8_t*>(data.data()),
                                         data.size()));
  }
  /// Finishes the hash. The hasher must be reset() before reuse.
  [[nodiscard]] Digest finish() noexcept;

  /// One-shot convenience.
  static Digest hash(std::span<const std::uint8_t> data) noexcept {
    Sha256 h;
    h.update(data);
    return h.finish();
  }
  static Digest hash(std::string_view data) noexcept {
    Sha256 h;
    h.update(data);
    return h.finish();
  }

 private:
  void process_block(const std::uint8_t* block) noexcept;

  std::uint32_t state_[8] = {};
  std::uint8_t buffer_[64] = {};
  std::size_t buffer_len_ = 0;
  std::uint64_t total_len_ = 0;
};

}  // namespace lumiere::crypto

// Digest hashing support for unordered containers.
template <>
struct std::hash<lumiere::crypto::Digest> {
  std::size_t operator()(const lumiere::crypto::Digest& d) const noexcept {
    return static_cast<std::size_t>(d.prefix64());
  }
};
