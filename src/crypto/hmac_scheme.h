// The zero-cost simulation scheme: HMAC-SHA256 under per-process keys
// held by the trusted harness.
//
// The paper (Section 2) assumes *perfect* cryptography; in a closed
// simulation a keyed MAC whose key is held by the trusted Authenticator
// gives exactly that (unforgeable by any process that does not hold the
// key) at negligible cost, which keeps deterministic experiments fast.
// Aggregates are modeled as the signer bitmap plus a SHA-256 tag binding
// the ordered share MACs; the modeled wire size stays the paper's
// O(kappa). Every golden digest in the test suite pins this scheme's
// bytes, so its key derivation and tag construction must never change.
#pragma once

#include <cstdint>
#include <vector>

#include "crypto/authenticator.h"
#include "crypto/hmac.h"

namespace lumiere::crypto {

class HmacAuthenticator final : public Authenticator {
 public:
  /// Generates n independent keys deterministically from `seed`.
  HmacAuthenticator(std::uint32_t n, std::uint64_t seed);

  [[nodiscard]] const char* scheme_name() const noexcept override { return "hmac"; }
  [[nodiscard]] SigWireSpec wire_spec() const noexcept override {
    return SigWireSpec{static_cast<std::uint32_t>(kKappaBytes),
                       static_cast<std::uint32_t>(kKappaBytes), 0};
  }

 protected:
  [[nodiscard]] SigBytes sign_blob(ProcessId id, const Digest& message) const override;
  [[nodiscard]] bool check_signature(ProcessId id, const Digest& message,
                                     const SigBytes& sig) const override;
  [[nodiscard]] SigBytes aggregate_tag(
      const Digest& message, const std::vector<PartialSig>& sorted_shares) const override;
  [[nodiscard]] bool check_aggregate_tag(const ThresholdSig& sig) const override;

 private:
  [[nodiscard]] Digest mac_for(ProcessId id, const Digest& message) const;

  std::vector<SecretKey> keys_;
};

}  // namespace lumiere::crypto
