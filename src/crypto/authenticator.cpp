#include "crypto/authenticator.h"

#include <algorithm>
#include <stdexcept>

#include "crypto/ed25519.h"
#include "crypto/hmac_scheme.h"

namespace lumiere::crypto {

Digest share_statement(const Digest& message) {
  Sha256 h;
  h.update("lumiere.ts");
  h.update(message.as_span());
  return h.finish();
}

Signature Signer::sign(const Digest& message) const {
  if (ops_ != nullptr) ops_->count_sign();
  return Signature{id_, auth_->sign_blob(id_, message)};
}

PartialSig Signer::share(const Digest& message) const {
  if (ops_ != nullptr) ops_->count_share();
  return PartialSig{id_, auth_->sign_blob(id_, share_statement(message))};
}

PartialSig threshold_share(const Signer& signer, const Digest& message) {
  return signer.share(message);
}

bool Authenticator::verify(const Digest& message, const Signature& sig) const {
  if (sig.signer >= n_) return false;
  return check_signature(sig.signer, message, sig.sig);
}

bool Authenticator::check_share(const Digest& message, const PartialSig& share) const {
  if (share.signer >= n_) return false;
  return check_signature(share.signer, share_statement(message), share.sig);
}

bool Authenticator::check_aggregate(const ThresholdSig& sig) const {
  if (sig.signers.universe_size() != n_) return false;
  if (sig.signers.count() == 0) return false;
  return check_aggregate_tag(sig);
}

namespace {

void update_u32(Sha256& h, std::uint32_t v) {
  const std::uint8_t bytes[4] = {
      static_cast<std::uint8_t>(v),
      static_cast<std::uint8_t>(v >> 8),
      static_cast<std::uint8_t>(v >> 16),
      static_cast<std::uint8_t>(v >> 24),
  };
  h.update(std::span<const std::uint8_t>(bytes, 4));
}

}  // namespace

Digest share_fingerprint(const Digest& message, const PartialSig& share) {
  Sha256 h;
  h.update("lumiere.memo.share");
  h.update(message.as_span());
  update_u32(h, share.signer);
  h.update(share.sig.span());
  return h.finish();
}

Digest aggregate_fingerprint(const ThresholdSig& sig) {
  Sha256 h;
  h.update("lumiere.memo.agg");
  h.update(sig.message.as_span());
  update_u32(h, sig.signers.universe_size());
  for (const ProcessId id : sig.signers.members()) update_u32(h, id);
  h.update(sig.tag.span());
  return h.finish();
}

bool AuthView::verify_share(const Digest& message, const PartialSig& share) const {
  // Counted before the memo lookup: the count is semantic (one protocol
  // verification), identical whether the pipeline pre-answered it or not.
  if (ops_ != nullptr) ops_->count_share_verify();
  if (memo_ != nullptr && memo_->contains(share_fingerprint(message, share))) return true;
  return auth_->check_share(message, share);
}

bool AuthView::verify_aggregate(const ThresholdSig& sig, std::uint32_t min_signers) const {
  if (ops_ != nullptr) ops_->count_aggregate_verify();
  if (sig.signers.count() < min_signers) return false;
  if (sig.signers.universe_size() != auth_->n()) return false;
  if (memo_ != nullptr && memo_->contains(aggregate_fingerprint(sig))) return true;
  return auth_->check_aggregate(sig);
}

QuorumAggregator::QuorumAggregator(AuthView auth, Digest message, std::uint32_t m)
    : auth_(auth), message_(message), m_(m), signers_(auth.n()) {
  LUMIERE_ASSERT(auth_.scheme() != nullptr);
  LUMIERE_ASSERT(m >= 1 && m <= auth_.n());
}

bool QuorumAggregator::add(const PartialSig& share) {
  if (share.signer >= signers_.universe_size()) return false;
  if (signers_.contains(share.signer)) return false;
  if (!auth_.verify_share(message_, share)) return false;
  signers_.add(share.signer);
  const auto pos = std::lower_bound(
      shares_.begin(), shares_.end(), share,
      [](const PartialSig& a, const PartialSig& b) { return a.signer < b.signer; });
  shares_.insert(pos, share);
  return true;
}

ThresholdSig QuorumAggregator::aggregate() const {
  LUMIERE_ASSERT_MSG(complete(), "aggregate() before threshold reached");
  if (auth_.op_counters() != nullptr) auth_.op_counters()->count_aggregate_built();
  return ThresholdSig{message_, signers_, auth_.scheme()->aggregate_tag(message_, shares_)};
}

std::unique_ptr<Authenticator> make_authenticator(const std::string& scheme, std::uint32_t n,
                                                  std::uint64_t seed) {
  if (scheme == "hmac") return std::make_unique<HmacAuthenticator>(n, seed);
  if (scheme == "ed25519") return std::make_unique<Ed25519Authenticator>(n, seed);
  std::string message = "unknown authenticator scheme \"" + scheme + "\"; registered:";
  for (const std::string& name : scheme_names()) message += " " + name;
  throw std::invalid_argument(message);
}

bool has_scheme(const std::string& scheme) {
  return scheme == "hmac" || scheme == "ed25519";
}

std::vector<std::string> scheme_names() { return {"ed25519", "hmac"}; }

}  // namespace lumiere::crypto
