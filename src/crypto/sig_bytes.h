// Scheme-agnostic signature byte container.
//
// Signature and aggregation-tag lengths are scheme properties (HMAC macs
// are 32 bytes, ed25519-style signatures 64, half-aggregated quorum tags
// grow with the signer count), so the shared structs carry an opaque byte
// string instead of a fixed Digest. The container keeps up to 64 bytes
// inline — every per-share signature of every in-tree scheme — so the
// simulator hot path stays allocation-free; longer values (aggregate
// tags) spill to the heap off the critical path.
#pragma once

#include <array>
#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

namespace lumiere::crypto {

class SigBytes {
 public:
  static constexpr std::size_t kInlineCapacity = 64;

  SigBytes() noexcept = default;
  explicit SigBytes(std::span<const std::uint8_t> bytes) { assign(bytes); }

  /// A zero-filled value of `count` bytes (e.g. the placeholder tag of a
  /// default-constructed aggregate, serialized for genesis certificates).
  [[nodiscard]] static SigBytes zeros(std::size_t count) {
    SigBytes b;
    b.resize(count);
    return b;
  }

  void assign(std::span<const std::uint8_t> bytes) {
    resize(bytes.size());
    if (!bytes.empty()) std::memcpy(data(), bytes.data(), bytes.size());
  }

  /// Resizes to `count` zero-filled bytes (previous contents discarded).
  void resize(std::size_t count) {
    if (count <= kInlineCapacity) {
      spill_.clear();
      inline_.fill(0);
    } else {
      spill_.assign(count, 0);
    }
    size_ = count;
  }

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] const std::uint8_t* data() const noexcept {
    return size_ <= kInlineCapacity ? inline_.data() : spill_.data();
  }
  [[nodiscard]] std::uint8_t* data() noexcept {
    return size_ <= kInlineCapacity ? inline_.data() : spill_.data();
  }
  [[nodiscard]] std::span<const std::uint8_t> span() const noexcept {
    return {data(), size_};
  }

  bool operator==(const SigBytes& other) const noexcept {
    return size_ == other.size_ &&
           (size_ == 0 || std::memcmp(data(), other.data(), size_) == 0);
  }

 private:
  std::size_t size_ = 0;
  std::array<std::uint8_t, kInlineCapacity> inline_{};
  std::vector<std::uint8_t> spill_;
};

}  // namespace lumiere::crypto
