// Cluster: builds and runs a full n-processor deployment from a resolved
// Scenario (runtime/scenario.h). This is the library's main entry point
// for examples, tests and benchmarks — construct one via ScenarioBuilder.
//
// Two transports behind the same MessageTransport seam:
//   * TransportKind::kSim — every node shares one deterministic Simulator
//     and one adversary-controlled sim::Network (metrics, traces and the
//     partial-synchrony envelope all live here);
//   * TransportKind::kTcp — every node gets a private Simulator paced
//     against the wall clock on its own thread, exchanging real framed
//     bytes over localhost TCP. Protocol objects are identical; the
//     shared MetricsCollector runs in threaded mode (full protocol
//     metrics on both transports), while traces and delay adversaries
//     remain simulator-only. With Scenario::pipeline enabled each node
//     additionally runs a decode+verify worker pool (runtime/pipeline.h).
#pragma once

#include <memory>
#include <vector>

#include "adversary/behaviors.h"
#include "core/honest_gap_tracker.h"
#include "crypto/authenticator.h"
#include "obs/admin.h"
#include "obs/status.h"
#include "obs/status_server.h"
#include "obs/tracer.h"
#include "runtime/metrics.h"
#include "runtime/node.h"
#include "runtime/pipeline.h"
#include "runtime/scenario.h"
#include "sim/delay_policy.h"
#include "sim/network.h"
#include "sim/simulator.h"
#include "sim/trace.h"
#include "transport/realtime.h"
#include "workload/engine.h"
#include "workload/report.h"

namespace lumiere::runtime {

class Cluster {
 public:
  /// Builds every node from `scenario` (normally produced by
  /// ScenarioBuilder::scenario(), which validates first).
  explicit Cluster(Scenario scenario);
  /// Convenience: validate + resolve + build in one step.
  explicit Cluster(const ScenarioBuilder& builder) : Cluster(builder.scenario()) {}

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  /// Starts every node (idempotent guard inside) — run_* call it lazily.
  void start();

  /// Advances the deployment by `d`: simulated time on the sim transport,
  /// wall-clock time (1 simulated us = 1 real us) on the TCP transport.
  void run_for(Duration d);
  void run_until(TimePoint t);

  [[nodiscard]] TransportKind transport() const noexcept { return scenario_.transport; }
  /// The shared simulator (sim transport only).
  [[nodiscard]] sim::Simulator& sim() noexcept { return sim_; }
  /// The adversary-controlled network (sim transport only; aborts on a
  /// TCP cluster rather than dereferencing null).
  [[nodiscard]] sim::Network& network() noexcept {
    LUMIERE_ASSERT_MSG(network_ != nullptr, "Cluster::network() is sim-transport-only");
    return *network_;
  }
  [[nodiscard]] MetricsCollector& metrics() noexcept { return *metrics_; }
  [[nodiscard]] const MetricsCollector& metrics() const noexcept { return *metrics_; }
  [[nodiscard]] Node& node(ProcessId id) { return *nodes_.at(id); }
  [[nodiscard]] const Node& node(ProcessId id) const { return *nodes_.at(id); }
  [[nodiscard]] std::uint32_t n() const noexcept { return scenario_.params.n; }
  [[nodiscard]] const Scenario& scenario() const noexcept { return scenario_; }
  /// The cluster's authenticator scheme instance (key registry +
  /// sign/verify primitives), selected by Scenario::auth_scheme.
  [[nodiscard]] const crypto::Authenticator& auth() const noexcept { return *auth_; }
  /// Node `id`'s staged verification pipeline; nullptr unless the
  /// scenario enabled one (TCP transport).
  [[nodiscard]] VerifyPipeline* pipeline(ProcessId id) {
    return id < pipelines_.size() ? pipelines_[id].get() : nullptr;
  }

  [[nodiscard]] std::vector<ProcessId> honest_ids() const;
  [[nodiscard]] std::vector<bool> byzantine_mask() const;

  /// Honest-gap instrumentation over the honest processors' clocks.
  [[nodiscard]] core::HonestGapTracker honest_gap_tracker() const;

  /// Structured event trace (view entries, decisions, commits).
  [[nodiscard]] const sim::TraceLog& trace() const noexcept { return trace_; }
  [[nodiscard]] sim::TraceLog& trace() noexcept { return trace_; }

  /// The view-sync span tracer (obs/tracer.h); nullptr when the scenario
  /// disabled it via ObsSpec::tracer = false. Works on both transports.
  /// TCP: query between run_for slices or accept point-in-time reads.
  [[nodiscard]] obs::SyncTracer* sync_tracer() noexcept { return tracer_.get(); }
  [[nodiscard]] const obs::SyncTracer* sync_tracer() const noexcept { return tracer_.get(); }

  /// Point-in-time status snapshot for node `id` — the same record the
  /// TCP status endpoint serves (obs/status.h). Works on both transports.
  [[nodiscard]] obs::NodeStatus node_status(ProcessId id) const;

  /// The TCP port node `id`'s status endpoint listens on; 0 when status
  /// endpoints are not enabled (ObsSpec::status_base_port == 0).
  [[nodiscard]] std::uint16_t status_port(ProcessId id) const noexcept {
    return id < status_servers_.size() && status_servers_[id] != nullptr
               ? status_servers_[id]->port()
               : 0;
  }

  /// Smallest current view among honest processors (progress probe).
  [[nodiscard]] View min_honest_view() const;
  /// Largest current view among honest processors.
  [[nodiscard]] View max_honest_view() const;

  /// One node's workload engine (nullptr when that node runs no
  /// client-driven workload). Works on both transports.
  [[nodiscard]] workload::NodeWorkload* node_workload(ProcessId id) {
    return workloads_.at(id).get();
  }
  [[nodiscard]] const workload::NodeWorkload* node_workload(ProcessId id) const {
    return workloads_.at(id).get();
  }
  /// Merged client-side accounting across every node. TCP transport:
  /// call between run_for slices (driver threads are joined), never
  /// concurrently with one.
  [[nodiscard]] workload::Report workload_report() const;

 private:
  void build_sim_cluster(std::vector<std::unique_ptr<adversary::Behavior>> behaviors);
  void build_tcp_cluster(std::vector<std::unique_ptr<adversary::Behavior>> behaviors);
  /// Schedules the fault script on the shared simulator (sim transport).
  void schedule_faults_sim();
  /// Best-effort realtime analogue: schedules partition/crash/churn
  /// transitions on every node's private simulator (TCP transport).
  void schedule_faults_tcp();
  void apply_fault_tcp(ProcessId id, const sim::FaultEvent& event);
  /// Applies one admin command (obs/admin.h) to node `id`. Runs on the
  /// node's own driver thread — the AdminGate pump drains into this.
  /// Returns the reply line(s) for the status session. CRASH always
  /// answers "ERR crash disabled" here: an in-process cluster must never
  /// _exit the harness (the standalone lumiere_node enables it).
  [[nodiscard]] std::string apply_admin(ProcessId id, const obs::AdminCommand& command);
  /// Resolves node `id`'s NodeConfig, including the dissemination layer's
  /// mempool/delivery hooks when the scenario enables it. `feed_metrics`
  /// additionally wires the disseminator's cert-latency / certified-depth
  /// samples into the shared MetricsCollector.
  [[nodiscard]] NodeConfig config_for(ProcessId id, bool feed_metrics);
  /// Instantiates node `id`'s workload engine on `sim` (the shared
  /// simulator, or the node's private one on TCP). `feed_metrics` wires
  /// the engine into the shared MetricsCollector (threaded mode on TCP).
  void build_workload(ProcessId id, sim::Simulator* sim, bool feed_metrics);

  Scenario scenario_;
  sim::Simulator sim_;  ///< shared simulator (sim transport).
  std::unique_ptr<crypto::Authenticator> auth_;
  std::unique_ptr<sim::Network> network_;
  std::unique_ptr<MetricsCollector> metrics_;
  std::vector<std::unique_ptr<Node>> nodes_;
  /// Byzantine-for-accounting mask: initially non-honest nodes plus every
  /// target of a scheduled non-honest behavior change, plus runtime admin
  /// BEHAVIOR flips. uint8_t, not vector<bool>: admin flips write one
  /// node's slot from that node's driver thread while others run — packed
  /// bits would make adjacent slots a data race. Harness reads happen
  /// between run_for slices (driver threads joined).
  std::vector<std::uint8_t> ever_byzantine_;
  /// One engine per workload-driven node (index = node id, else null).
  std::vector<std::unique_ptr<workload::NodeWorkload>> workloads_;
  sim::TraceLog trace_;
  bool started_ = false;

  /// TCP transport: one private simulator + adapter + wall-clock driver
  /// per node (each driven on its own thread during run_for).
  std::vector<std::unique_ptr<sim::Simulator>> node_sims_;
  std::vector<std::unique_ptr<transport::TcpTransportAdapter>> adapters_;
  std::vector<std::unique_ptr<transport::RealtimeDriver>> drivers_;
  /// One staged decode+verify worker pool per node (TCP + pipeline(on)).
  std::vector<std::unique_ptr<VerifyPipeline>> pipelines_;

  /// Observability (obs/): span tracer + live status. Declared after the
  /// nodes/drivers they observe; status_servers_ last so its serving
  /// threads stop before anything they snapshot is torn down.
  std::unique_ptr<obs::SyncTracer> tracer_;
  std::unique_ptr<obs::StatusBoard> status_board_;
  /// One admin hand-off gate per node (TCP + admin_token only): status
  /// sessions submit, the node's driver pump drains into apply_admin.
  std::vector<std::unique_ptr<obs::AdminGate>> admin_gates_;
  std::vector<std::unique_ptr<obs::StatusServer>> status_servers_;
};

}  // namespace lumiere::runtime
