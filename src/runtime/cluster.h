// Cluster: builds and runs a full n-processor deployment in the
// deterministic simulator. This is the library's main entry point for
// examples, tests and benchmarks.
#pragma once

#include <memory>
#include <vector>

#include "adversary/behaviors.h"
#include "core/honest_gap_tracker.h"
#include "crypto/pki.h"
#include "runtime/metrics.h"
#include "runtime/node.h"
#include "sim/delay_policy.h"
#include "sim/trace.h"
#include "sim/network.h"
#include "sim/simulator.h"

namespace lumiere::runtime {

struct ClusterOptions {
  ProtocolParams params = ProtocolParams::for_n(4, Duration::millis(10));
  PacemakerKind pacemaker = PacemakerKind::kLumiere;
  CoreKind core = CoreKind::kSimpleView;

  /// Global Stabilization Time: before it the adversary's proposed delays
  /// apply unclamped up to GST + Delta; after it every message obeys the
  /// Delta bound.
  TimePoint gst = TimePoint::origin();

  /// The adversary's delay policy (nullptr = worst permitted: every
  /// message arrives exactly at max(GST, t) + Delta).
  std::shared_ptr<sim::DelayPolicy> delay;

  /// Everything-determining seed (leader schedules, keys, delay draws).
  std::uint64_t seed = 1;

  /// Gamma override (zero = protocol default).
  Duration gamma = Duration::zero();

  /// Processors join (lc = 0) at uniform random times in
  /// [origin, join_stagger] — the paper's arbitrary pre-GST
  /// desynchronization. Zero = synchronized start (required by Fever).
  Duration join_stagger = Duration::zero();

  /// Bounded clock drift (the paper's Section 2/4 remark): each processor
  /// gets a deterministic rate skew uniform in [-drift_ppm_max,
  /// +drift_ppm_max] parts-per-million. Zero = perfect clocks.
  std::int64_t drift_ppm_max = 0;

  /// Behavior assignment; default all-honest.
  adversary::BehaviorFactory behavior_for;

  /// Lumiere ablation switches.
  bool lumiere_enforce_qc_deadline = true;
  bool lumiere_delta_wait = true;

  /// RoundRobin/Cogsworth view timeout override (zero = (x+2)*Delta).
  Duration view_timeout = Duration::zero();

  /// Fever leader tenure (Section 3.3 "Reducing Gamma").
  std::uint32_t fever_tenure = 2;

  /// Client workload: payload for the block a node proposes in `view`
  /// (same function cluster-wide; providers can vary output by view).
  /// Null = empty payloads (pure view-synchronization measurements).
  std::function<std::vector<std::uint8_t>(View)> workload;
};

class Cluster {
 public:
  explicit Cluster(ClusterOptions options);

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  /// Starts every node (idempotent guard inside) — run_* call it lazily.
  void start();

  void run_for(Duration d);
  void run_until(TimePoint t);

  [[nodiscard]] sim::Simulator& sim() noexcept { return sim_; }
  [[nodiscard]] sim::Network& network() noexcept { return *network_; }
  [[nodiscard]] MetricsCollector& metrics() noexcept { return *metrics_; }
  [[nodiscard]] const MetricsCollector& metrics() const noexcept { return *metrics_; }
  [[nodiscard]] Node& node(ProcessId id) { return *nodes_.at(id); }
  [[nodiscard]] const Node& node(ProcessId id) const { return *nodes_.at(id); }
  [[nodiscard]] std::uint32_t n() const noexcept { return options_.params.n; }
  [[nodiscard]] const ClusterOptions& options() const noexcept { return options_; }
  [[nodiscard]] const crypto::Pki& pki() const noexcept { return *pki_; }

  [[nodiscard]] std::vector<ProcessId> honest_ids() const;
  [[nodiscard]] std::vector<bool> byzantine_mask() const;

  /// Honest-gap instrumentation over the honest processors' clocks.
  [[nodiscard]] core::HonestGapTracker honest_gap_tracker() const;

  /// Structured event trace (view entries, decisions, commits).
  [[nodiscard]] const sim::TraceLog& trace() const noexcept { return trace_; }
  [[nodiscard]] sim::TraceLog& trace() noexcept { return trace_; }

  /// Smallest current view among honest processors (progress probe).
  [[nodiscard]] View min_honest_view() const;
  /// Largest current view among honest processors.
  [[nodiscard]] View max_honest_view() const;

 private:
  ClusterOptions options_;
  sim::Simulator sim_;
  std::unique_ptr<crypto::Pki> pki_;
  std::unique_ptr<sim::Network> network_;
  std::unique_ptr<MetricsCollector> metrics_;
  std::vector<std::unique_ptr<Node>> nodes_;
  sim::TraceLog trace_;
  bool started_ = false;
};

}  // namespace lumiere::runtime
