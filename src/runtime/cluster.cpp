#include "runtime/cluster.h"

#include <algorithm>

namespace lumiere::runtime {

Cluster::Cluster(ClusterOptions options) : options_(std::move(options)) {
  options_.params.validate();
  const std::uint32_t n = options_.params.n;
  pki_ = std::make_unique<crypto::Pki>(n, options_.seed);
  network_ = std::make_unique<sim::Network>(&sim_, n, options_.gst, options_.params.delta_cap,
                                            options_.delay, options_.seed);

  if (!options_.behavior_for) options_.behavior_for = adversary::honest_cluster();

  // Behaviors first, so the metrics collector knows who is Byzantine.
  std::vector<std::unique_ptr<adversary::Behavior>> behaviors;
  std::vector<bool> byz(n, false);
  behaviors.reserve(n);
  for (ProcessId id = 0; id < n; ++id) {
    behaviors.push_back(options_.behavior_for(id));
    byz[id] = std::strcmp(behaviors.back()->name(), "honest") != 0;
  }
  metrics_ = std::make_unique<MetricsCollector>(n, byz);
  network_->set_observer(metrics_.get());

  Rng join_rng(options_.seed ^ 0x4a4f494eULL);
  Rng drift_rng(options_.seed ^ 0x44524946ULL);
  NodeObservers observers;
  observers.on_qc_formed = [this](TimePoint at, View view, ProcessId node) {
    metrics_->record_qc_formed(at, view, node);
    trace_.record(at, sim::TraceKind::kQcFormed, node, view);
  };
  observers.on_view_entered = [this](TimePoint at, View view, ProcessId node) {
    trace_.record(at, sim::TraceKind::kViewEntered, node, view);
  };
  observers.on_commit = [this](TimePoint at, const consensus::Block& block, ProcessId node) {
    trace_.record(at, sim::TraceKind::kCommitted, node, block.view());
  };

  nodes_.reserve(n);
  for (ProcessId id = 0; id < n; ++id) {
    NodeOptions node_options;
    node_options.pacemaker = options_.pacemaker;
    node_options.core = options_.core;
    node_options.gamma = options_.gamma;
    node_options.shared_seed = options_.seed;
    node_options.lumiere_enforce_qc_deadline = options_.lumiere_enforce_qc_deadline;
    node_options.lumiere_delta_wait = options_.lumiere_delta_wait;
    node_options.view_timeout = options_.view_timeout;
    node_options.fever_tenure = options_.fever_tenure;
    node_options.payload_provider = options_.workload;
    node_options.join_time =
        options_.join_stagger > Duration::zero()
            ? TimePoint(join_rng.next_in(0, options_.join_stagger.ticks()))
            : TimePoint::origin();
    node_options.clock_drift_ppm =
        options_.drift_ppm_max > 0
            ? drift_rng.next_in(-options_.drift_ppm_max, options_.drift_ppm_max)
            : 0;
    nodes_.push_back(std::make_unique<Node>(options_.params, id, &sim_, network_.get(),
                                            pki_.get(), node_options, observers,
                                            std::move(behaviors[id])));
  }
}

void Cluster::start() {
  if (started_) return;
  started_ = true;
  for (auto& node : nodes_) node->start();
}

void Cluster::run_for(Duration d) {
  start();
  sim_.run_for(d);
}

void Cluster::run_until(TimePoint t) {
  start();
  sim_.run_until(t);
}

std::vector<ProcessId> Cluster::honest_ids() const {
  std::vector<ProcessId> out;
  for (const auto& node : nodes_) {
    if (!node->is_byzantine()) out.push_back(node->id());
  }
  return out;
}

std::vector<bool> Cluster::byzantine_mask() const {
  std::vector<bool> mask(nodes_.size(), false);
  for (const auto& node : nodes_) mask[node->id()] = node->is_byzantine();
  return mask;
}

core::HonestGapTracker Cluster::honest_gap_tracker() const {
  std::vector<const sim::LocalClock*> clocks;
  for (const auto& node : nodes_) {
    if (!node->is_byzantine()) clocks.push_back(&node->local_clock());
  }
  return core::HonestGapTracker(std::move(clocks));
}

View Cluster::min_honest_view() const {
  View lo = std::numeric_limits<View>::max();
  for (const auto& node : nodes_) {
    if (!node->is_byzantine()) lo = std::min(lo, node->current_view());
  }
  return lo;
}

View Cluster::max_honest_view() const {
  View hi = -1;
  for (const auto& node : nodes_) {
    if (!node->is_byzantine()) hi = std::max(hi, node->current_view());
  }
  return hi;
}

}  // namespace lumiere::runtime
