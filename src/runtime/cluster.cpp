#include "runtime/cluster.h"

#include <algorithm>
#include <cstring>
#include <thread>

#include "consensus/messages.h"
#include "dissem/messages.h"
#include "pacemaker/messages.h"
#include "runtime/spec_io.h"
#include "sync/messages.h"

namespace lumiere::runtime {

Cluster::Cluster(Scenario scenario)
    : scenario_(std::move(scenario)), trace_(scenario_.obs.trace_capacity) {
  scenario_.params.validate();
  const std::uint32_t n = scenario_.params.n;
  LUMIERE_ASSERT_MSG(scenario_.nodes.size() == n, "Scenario must carry one NodeSpec per node");
  auth_ = crypto::make_authenticator(scenario_.auth_scheme, n, scenario_.seed);

  // Behaviors first, so the metrics collector knows who is Byzantine.
  std::vector<std::unique_ptr<adversary::Behavior>> behaviors;
  std::vector<bool> byz(n, false);
  behaviors.reserve(n);
  for (ProcessId id = 0; id < n; ++id) {
    const BehaviorThunk& make = scenario_.nodes[id].behavior;
    behaviors.push_back(make ? make() : std::make_unique<adversary::HonestBehavior>());
    byz[id] = std::strcmp(behaviors.back()->name(), "honest") != 0;
  }
  // A node scheduled to turn Byzantine mid-run counts Byzantine for the
  // whole run: its QCs are never decisions and the honest accounting
  // never includes it (conservative, and fixed before the run starts).
  for (const sim::FaultEvent& event : scenario_.schedule.events) {
    if (event.kind == sim::FaultKind::kBehaviorChange && event.node < n &&
        event.behavior != "honest") {
      byz[event.node] = true;
    }
  }
  ever_byzantine_.assign(byz.begin(), byz.end());
  metrics_ = std::make_unique<MetricsCollector>(n, byz);

  // Observability first: config_for installs the tracer's op counters
  // into each node, so the tracer must exist before any node is built.
  if (scenario_.obs.tracer) {
    tracer_ = std::make_unique<obs::SyncTracer>(n, scenario_.obs.max_spans);
  }
  if (scenario_.obs.status_base_port != 0) {
    status_board_ = std::make_unique<obs::StatusBoard>(n);
    for (ProcessId id = 0; id < n; ++id) {
      if (byz[id]) status_board_->set_ever_byzantine(id);
    }
  }

  if (scenario_.transport == TransportKind::kSim) {
    build_sim_cluster(std::move(behaviors));
  } else {
    build_tcp_cluster(std::move(behaviors));
  }

  // Status endpoints last: their serving threads snapshot the nodes and
  // boards built above (validate() restricted them to the TCP transport).
  if (status_board_ != nullptr) {
    status_servers_.reserve(n);
    for (ProcessId id = 0; id < n; ++id) {
      const auto port = static_cast<std::uint16_t>(scenario_.obs.status_base_port + id);
      auto snapshot = [this, id] { return node_status(id); };
      if (id < admin_gates_.size() && admin_gates_[id] != nullptr) {
        obs::StatusServer::AdminHooks hooks;
        hooks.token = scenario_.obs.admin_token;
        hooks.submit = [gate = admin_gates_[id].get()](const obs::AdminCommand& command) {
          // Bounded: the driver only drains between run_for slices, so a
          // session issued while the cluster is paused must time out
          // rather than pin its server thread.
          return gate->submit(command, Duration::millis(2000));
        };
        status_servers_.push_back(
            std::make_unique<obs::StatusServer>(port, snapshot, std::move(hooks)));
      } else {
        status_servers_.push_back(std::make_unique<obs::StatusServer>(port, snapshot));
      }
    }
  }
}

NodeConfig Cluster::config_for(ProcessId id, bool feed_metrics) {
  const NodeSpec& spec = scenario_.nodes[id];
  NodeConfig config;
  config.protocol = spec.protocol;
  config.join_time = spec.join_time;
  config.clock_drift_ppm = spec.clock_drift_ppm;
  config.payload_provider = spec.payload_provider;
  if (tracer_ != nullptr) config.auth_ops = &tracer_->auth_counters(id);
  if (workloads_[id] != nullptr && scenario_.dissem.has_value()) {
    // Dissemination interposes between mempool and consensus: batches
    // lease to the disseminator (which certifies availability and hands
    // consensus fixed-size references) and committed references deliver
    // back into the workload's client accounting.
    workload::NodeWorkload* w = workloads_[id].get();
    config.dissem = scenario_.dissem;
    config.dissem_hooks.lease_batch = [w](std::vector<std::uint8_t>& payload) {
      return w->lease_dissem_batch(payload);
    };
    config.dissem_hooks.ack_batch = [w](std::uint64_t token) { w->ack_dissem_batch(token); };
    config.dissem_hooks.deliver = [w](TimePoint at, const std::vector<std::uint8_t>& payload) {
      w->on_dissem_delivery(at, payload);
    };
    if (feed_metrics) {
      config.dissem_hooks.on_batch_certified = [this](TimePoint at, Duration latency) {
        metrics_->record_batch_certified(at, latency);
      };
      config.dissem_hooks.on_certified_depth = [this, id](TimePoint at, std::size_t depth) {
        metrics_->record_certified_depth(at, id, depth);
      };
    }
  } else if (workloads_[id] != nullptr) {
    // The workload engine supplies the proposals: leased batches from the
    // node's bounded mempool, fed by this node's client drivers.
    config.payload_provider = [w = workloads_[id].get()](View v) { return w->make_batch(v); };
  }
  return config;
}

void Cluster::build_workload(ProcessId id, sim::Simulator* sim, bool feed_metrics) {
  const NodeSpec& spec = scenario_.nodes[id];
  if (!spec.workload) return;
  workload::NodeWorkload::Hooks hooks;
  if (feed_metrics) {
    hooks.on_request_committed = [this, id](TimePoint at, Duration latency) {
      metrics_->record_request_committed(at, latency);
      if (status_board_ != nullptr) status_board_->add_request_committed(id);
    };
    hooks.on_queue_depth = [this, id](TimePoint at, std::size_t depth) {
      metrics_->record_queue_depth(at, id, depth);
      if (status_board_ != nullptr) status_board_->set_mempool_depth(id, depth);
    };
  }
  workloads_[id] = std::make_unique<workload::NodeWorkload>(sim, id, *spec.workload,
                                                            scenario_.seed, std::move(hooks));
}

void Cluster::build_sim_cluster(std::vector<std::unique_ptr<adversary::Behavior>> behaviors) {
  const std::uint32_t n = scenario_.params.n;
  network_ = std::make_unique<sim::Network>(&sim_, n, scenario_.gst, scenario_.params.delta_cap,
                                            scenario_.delay, scenario_.seed);
  network_->set_observer(metrics_.get());

  NodeObservers observers;
  observers.on_qc_formed = [this](TimePoint at, View view, ProcessId node) {
    metrics_->record_qc_formed(at, view, node);
    trace_.record(at, sim::TraceKind::kQcFormed, node, view);
  };
  observers.on_view_entered = [this](TimePoint at, View view, ProcessId node) {
    trace_.record(at, sim::TraceKind::kViewEntered, node, view);
    if (tracer_ != nullptr && tracer_->on_view_entered(node, at, view).has_value()) {
      trace_.record(at, sim::TraceKind::kSyncCompleted, node, view);
    }
  };
  if (tracer_ != nullptr) {
    observers.on_sync_started = [this](TimePoint at, View current, View target, ProcessId node) {
      tracer_->on_sync_started(node, at, current, target);
      trace_.record(at, sim::TraceKind::kSyncStarted, node, target);
    };
    observers.on_sent = [tracer = tracer_.get()](ProcessId node, std::size_t bytes) {
      tracer->note_sent(node, bytes);
    };
  }
  observers.on_commit = [this](TimePoint at, const consensus::Block& block, ProcessId node) {
    trace_.record(at, sim::TraceKind::kCommitted, node, block.view());
    // With dissemination on, the Node's commit path routes the payload
    // through its disseminator, which invokes the workload `deliver`
    // hook itself — feeding on_commit here too would double-count.
    if (workloads_[node] != nullptr && !scenario_.dissem.has_value()) {
      workloads_[node]->on_commit(at, block.view(), block.payload());
    }
  };

  nodes_.reserve(n);
  workloads_.resize(n);
  for (ProcessId id = 0; id < n; ++id) build_workload(id, &sim_, /*feed_metrics=*/true);
  for (ProcessId id = 0; id < n; ++id) {
    nodes_.push_back(std::make_unique<Node>(scenario_.params, id, &sim_, network_.get(),
                                            auth_.get(), config_for(id, /*feed_metrics=*/true),
                                            observers, std::move(behaviors[id])));
  }
  schedule_faults_sim();
}

void Cluster::schedule_faults_sim() {
  // Scheduled at construction, before any node start()/join events, so a
  // fault scripted at an instant fires before same-instant protocol
  // activity (the event queue is FIFO within one timestamp).
  for (const sim::FaultEvent& event : scenario_.schedule.events) {
    sim_.schedule_at(event.at, [this, event] {
      if (event.kind == sim::FaultKind::kBehaviorChange) {
        // Behavior lives on the node, not the network. validate()
        // rejected unknown names and out-of-range nodes; a hand-built
        // Scenario that skipped it fails loudly here.
        auto behavior = adversary::make_behavior(event.behavior);
        LUMIERE_ASSERT_MSG(event.node < nodes_.size() && behavior != nullptr,
                           "behavior-change event references an unknown node or behavior");
        nodes_[event.node]->set_behavior(std::move(behavior));
      } else {
        network_->apply(event);
      }
      const std::string note = sim::FaultSchedule::describe(event);
      trace_.record(event.at, sim::TraceKind::kCustom, event.node, -1, note);
      metrics_->mark_regime(event.at, note);
    });
  }
}

void Cluster::apply_fault_tcp(ProcessId id, const sim::FaultEvent& event) {
  transport::TcpTransportAdapter& adapter = *adapters_[id];
  switch (event.kind) {
    case sim::FaultKind::kPartition: {
      // Same group/cut rule as sim::Network (sim/fault_schedule.h), so
      // the two transports cannot disagree on what a cut means.
      const std::vector<std::uint32_t> group =
          sim::partition_group_of(event.groups, scenario_.params.n);
      for (ProcessId peer = 0; peer < scenario_.params.n; ++peer) {
        adapter.set_partition_cut(peer, sim::partition_cuts(group, id, peer));
      }
      break;
    }
    case sim::FaultKind::kHeal:
      adapter.clear_partition();
      break;
    case sim::FaultKind::kCrash:
    case sim::FaultKind::kLeave:
      if (id == event.node) {
        adapter.set_self_down(true);
        // A crashed process's worker pool dies with it: join the workers
        // and discard in-flight frames (runs on this node's own driver
        // thread, so no submit() races the stop).
        if (pipelines_[id] != nullptr) pipelines_[id]->stop();
      } else {
        adapter.set_peer_down(event.node, true);
      }
      break;
    case sim::FaultKind::kRecover:
    case sim::FaultKind::kRejoin:
      if (id == event.node) {
        adapter.set_self_down(false);
        if (pipelines_[id] != nullptr) pipelines_[id]->start();
      } else {
        adapter.set_peer_down(event.node, false);
      }
      break;
    case sim::FaultKind::kAsymPartition: {
      // Receiver-side gate: nodes in the to-group drop frames arriving
      // from the from-group (the senders' outbound half keeps flowing the
      // other way, matching the sim's one-way semantics). Set for every
      // peer so a new asym cut replaces the previous one.
      const std::uint32_t n = scenario_.params.n;
      std::vector<bool> in_from(n, false);
      for (const ProcessId sender : event.groups[0]) {
        if (sender < n) in_from[sender] = true;
      }
      bool receiver = false;
      for (const ProcessId target : event.groups[1]) receiver = receiver || target == id;
      for (ProcessId peer = 0; peer < n; ++peer) {
        adapter.set_inbound_cut(peer, receiver && in_from[peer]);
      }
      break;
    }
    case sim::FaultKind::kBehaviorChange:
      // Only the target node swaps, on its own driver thread (its private
      // simulator runs this callback) — the Node is thread-confined there.
      if (id == event.node) {
        nodes_[id]->set_behavior(adversary::make_behavior(event.behavior));
      }
      break;
    case sim::FaultKind::kDelayChange:
    case sim::FaultKind::kLinkDelay:
      break;  // simulator-only; ScenarioBuilder::validate() rejects these
  }
}

void Cluster::schedule_faults_tcp() {
  // Each node applies the transition on its own private simulator (and
  // thus its own driver thread) when its wall clock reaches the event
  // instant — best-effort: the nodes cut the link within one another's
  // pacing jitter rather than atomically.
  for (const sim::FaultEvent& event : scenario_.schedule.events) {
    for (ProcessId id = 0; id < scenario_.params.n; ++id) {
      node_sims_[id]->schedule_at(event.at, [this, id, event] {
        apply_fault_tcp(id, event);
        // One regime boundary per event, not one per node: node 0's
        // driver thread stamps it (the collector is in threaded mode).
        if (id == 0) metrics_->mark_regime(event.at, sim::FaultSchedule::describe(event));
      });
    }
  }
}

void Cluster::build_tcp_cluster(std::vector<std::unique_ptr<adversary::Behavior>> behaviors) {
  const std::uint32_t n = scenario_.params.n;
  // Driver threads record concurrently; queries merge between run_for
  // slices (runtime/metrics.h). The trace log stays sim-only — it has no
  // threaded mode, so TCP observers feed metrics but never the trace.
  metrics_->enable_threaded();
  nodes_.reserve(n);
  node_sims_.reserve(n);
  adapters_.reserve(n);
  drivers_.reserve(n);
  pipelines_.reserve(n);
  workloads_.resize(n);
  const auto make_codec = [this] {
    MessageCodec codec;
    consensus::register_consensus_messages(codec);
    pacemaker::register_pacemaker_messages(codec);
    dissem::register_dissem_messages(codec);
    sync::register_sync_messages(codec);
    // Frames carry the selected scheme's signature geometry; decoders
    // need it to slice signature bytes out of the stream.
    codec.set_sig_wire(auth_->wire_spec());
    return codec;
  };
  const bool admin_enabled = status_board_ != nullptr && !scenario_.obs.admin_token.empty();
  if (admin_enabled) {
    admin_gates_.reserve(n);
    for (ProcessId id = 0; id < n; ++id) {
      admin_gates_.push_back(std::make_unique<obs::AdminGate>());
    }
  }
  for (ProcessId id = 0; id < n; ++id) {
    node_sims_.push_back(std::make_unique<sim::Simulator>());
    adapters_.push_back(std::make_unique<transport::TcpTransportAdapter>(
        id, n, scenario_.tcp_base_port, make_codec()));
    adapters_.back()->set_observer(metrics_.get(), node_sims_.back().get());
    // Deterministic per-node jitter/drop streams: both derive from the
    // scenario seed, so a replayed scenario shapes traffic identically.
    adapters_.back()->endpoint().set_reconnect_backoff(
        transport::BackoffPolicy{}, scenario_.seed ^ (0x9e3779b97f4a7c15ULL * (id + 1)));
    adapters_.back()->set_shaping(node_sims_.back().get(),
                                  scenario_.seed ^ (0xd3833e804f4c574bULL * (id + 1)));
    // The workload engine lives on the node's private simulator — every
    // touch (submission, drain, commit) happens on the node's own driver
    // thread; the shared MetricsCollector is in threaded mode.
    build_workload(id, node_sims_.back().get(), /*feed_metrics=*/true);
    NodeObservers observers;
    observers.on_qc_formed = [this](TimePoint at, View view, ProcessId node) {
      metrics_->record_qc_formed(at, view, node);
    };
    // The trace log stays sim-only, but the span tracer and status board
    // are thread-safe: node id's driver thread is the sole writer of its
    // slots (obs/tracer.h threading note).
    if (tracer_ != nullptr || status_board_ != nullptr) {
      observers.on_view_entered = [this](TimePoint at, View view, ProcessId node) {
        if (tracer_ != nullptr) tracer_->on_view_entered(node, at, view);
        if (status_board_ != nullptr) status_board_->set_view(node, view);
      };
    }
    if (tracer_ != nullptr) {
      observers.on_sync_started = [tracer = tracer_.get()](TimePoint at, View current,
                                                          View target, ProcessId node) {
        tracer->on_sync_started(node, at, current, target);
      };
      observers.on_sent = [tracer = tracer_.get()](ProcessId node, std::size_t bytes) {
        tracer->note_sent(node, bytes);
      };
    }
    const bool feed_workload = workloads_[id] != nullptr && !scenario_.dissem.has_value();
    if (feed_workload || status_board_ != nullptr) {
      observers.on_commit = [this, id, feed_workload](TimePoint at,
                                                      const consensus::Block& block, ProcessId) {
        if (status_board_ != nullptr) {
          status_board_->add_commit(id);
          status_board_->set_last_commit(id, static_cast<std::uint64_t>(block.view()));
        }
        if (feed_workload) workloads_[id]->on_commit(at, block.view(), block.payload());
      };
    }
    nodes_.push_back(std::make_unique<Node>(
        scenario_.params, id, node_sims_.back().get(), adapters_.back().get(), auth_.get(),
        config_for(id, /*feed_metrics=*/true), std::move(observers), std::move(behaviors[id])));
    drivers_.push_back(std::make_unique<transport::RealtimeDriver>(
        node_sims_.back().get(), &adapters_.back()->endpoint()));
    obs::AdminGate* gate = admin_enabled ? admin_gates_[id].get() : nullptr;
    if (scenario_.pipeline.enabled) {
      // Staged receive path: the endpoint hands raw frames to the worker
      // pool; the driver drains verified results back on the node's own
      // thread, seeding the memo before delivery so the consensus core
      // skips re-verification (runtime/pipeline.h).
      pipelines_.push_back(
          std::make_unique<VerifyPipeline>(auth_.get(), make_codec(), scenario_.pipeline));
      VerifyPipeline* pipeline = pipelines_.back().get();
      Node* node = nodes_.back().get();
      transport::TcpTransportAdapter* adapter = adapters_.back().get();
      adapter->endpoint().set_raw_sink(
          [pipeline](ProcessId from, std::span<const std::uint8_t> payload) {
            return pipeline->submit(from, payload);
          });
      drivers_.back()->set_pump([this, id, pipeline, node, adapter, gate] {
        pipeline->drain([&](VerifyPipeline::Result&& result) {
          for (const crypto::Digest& fp : result.fingerprints) {
            node->verify_memo().remember(fp);
          }
          adapter->deliver_decoded(result.from, result.msg);
        });
        if (gate != nullptr) {
          gate->drain(
              [this, id](const obs::AdminCommand& command) { return apply_admin(id, command); });
        }
      });
      pipeline->start();
    } else {
      pipelines_.push_back(nullptr);
      if (gate != nullptr) {
        // Admin commands apply on the node's driver thread: the pump is
        // the only place that thread surfaces between simulator slices.
        drivers_.back()->set_pump([this, id, gate] {
          gate->drain(
              [this, id](const obs::AdminCommand& command) { return apply_admin(id, command); });
        });
      }
    }
  }
  schedule_faults_tcp();
}

std::string Cluster::apply_admin(ProcessId id, const obs::AdminCommand& command) {
  transport::TcpTransportAdapter& adapter = *adapters_[id];
  switch (command.kind) {
    case obs::AdminKind::kBehavior: {
      auto behavior = adversary::make_behavior(command.behavior);
      if (behavior == nullptr) return "ERR unknown behavior '" + command.behavior + "'";
      const bool byzantine = command.behavior != "honest";
      nodes_[id]->set_behavior(std::move(behavior));
      if (byzantine) {
        // Sticky, like scheduled behavior changes: an ever-Byzantine node
        // never re-enters the honest accounting.
        ever_byzantine_[id] = 1;
        if (status_board_ != nullptr) status_board_->set_ever_byzantine(id);
      }
      return "OK";
    }
    case obs::AdminKind::kDrop:
      if (command.peer >= scenario_.params.n) return "ERR peer out of range";
      adapter.set_link_drop(command.peer, command.probability);
      return "OK";
    case obs::AdminKind::kDelay:
      if (command.peer >= scenario_.params.n) return "ERR peer out of range";
      adapter.set_link_delay(command.peer, command.delay);
      return "OK";
    case obs::AdminKind::kIsolate:
      adapter.set_isolated(true);
      return "OK";
    case obs::AdminKind::kHeal:
      adapter.clear_shaping();
      adapter.clear_partition();
      return "OK";
    case obs::AdminKind::kCrash:
      return "ERR crash disabled";
    case obs::AdminKind::kLedger:
      return render_ledger(nodes_[id]->ledger());
  }
  return "ERR unhandled";
}

void Cluster::start() {
  if (started_) return;
  started_ = true;
  for (auto& workload : workloads_) {
    if (workload) workload->start();
  }
  for (auto& node : nodes_) node->start();
}

obs::NodeStatus Cluster::node_status(ProcessId id) const {
  LUMIERE_ASSERT_MSG(id < nodes_.size(), "node_status: unknown node");
  obs::NodeStatus status;
  status.node = id;
  if (status_board_ != nullptr) {
    // TCP: the node itself is owned by its driver thread — serve the
    // board's relaxed counters instead of touching protocol state.
    status.view = status_board_->view(id);
    status.height = status_board_->height(id);
    status.last_commit_height = status_board_->last_commit(id);
    status.ever_byzantine = status_board_->ever_byzantine(id);
    status.mempool_depth = status_board_->mempool_depth(id);
    status.requests_committed = status_board_->requests_committed(id);
  } else {
    status.view = nodes_[id]->current_view();
    status.height = nodes_[id]->ledger().size();
    if (!nodes_[id]->ledger().empty()) {
      status.last_commit_height =
          static_cast<std::uint64_t>(nodes_[id]->ledger().entries().back().view);
    }
    status.ever_byzantine = ever_byzantine_[id] != 0;
    if (workloads_[id] != nullptr) {
      status.mempool_depth = workloads_[id]->mempool().pending();
      status.requests_committed = workloads_[id]->stats().committed;
    }
  }
  if (id < pipelines_.size() && pipelines_[id] != nullptr) {
    const VerifyPipeline::Stats stats = pipelines_[id]->stats();
    status.pipeline_queue_depth = stats.frames_in - stats.frames_out;
  }
  if (tracer_ != nullptr) {
    status.msgs_sent = tracer_->msgs_sent(id);
    status.bytes_sent = tracer_->bytes_sent(id);
    status.auth_ops = tracer_->auth_snapshot(id).total();
    // Sim runs own the one true clock; a TCP status thread has no safe
    // clock, so the open span's duration reads 0 there (costs are live).
    const TimePoint now =
        scenario_.transport == TransportKind::kSim ? sim_.now() : TimePoint::origin();
    status.current_sync = tracer_->open_span(id, now);
    status.last_sync = tracer_->last_span(id);
  }
  return status;
}

workload::Report Cluster::workload_report() const {
  workload::Report report;
  for (const auto& workload : workloads_) {
    if (workload) report.merge(*workload);
  }
  return report;
}

void Cluster::run_for(Duration d) {
  start();
  if (scenario_.transport == TransportKind::kSim) {
    sim_.run_for(d);
    return;
  }
  if (d <= Duration::zero()) return;
  // TCP: one wall-clock driver thread per node (1 simulated us = 1 us);
  // sub-millisecond remainders round up rather than silently vanish.
  const auto wall = std::chrono::milliseconds((d.ticks() + 999) / 1000);
  metrics_->begin_recording_window();
  std::vector<std::thread> threads;
  threads.reserve(drivers_.size());
  for (auto& driver : drivers_) {
    threads.emplace_back([&driver, wall] { driver->run_for(wall); });
  }
  for (auto& thread : threads) thread.join();
  metrics_->end_recording_window();
}

void Cluster::run_until(TimePoint t) {
  if (scenario_.transport == TransportKind::kSim) {
    start();
    sim_.run_until(t);
    return;
  }
  // Already-passed targets no-op, matching Simulator::run_until.
  run_for(t - (node_sims_.empty() ? TimePoint::origin() : node_sims_.front()->now()));
}

std::vector<ProcessId> Cluster::honest_ids() const {
  std::vector<ProcessId> out;
  for (const auto& node : nodes_) {
    if (!ever_byzantine_[node->id()]) out.push_back(node->id());
  }
  return out;
}

std::vector<bool> Cluster::byzantine_mask() const {
  return {ever_byzantine_.begin(), ever_byzantine_.end()};
}

core::HonestGapTracker Cluster::honest_gap_tracker() const {
  std::vector<const sim::LocalClock*> clocks;
  for (const auto& node : nodes_) {
    if (!ever_byzantine_[node->id()]) clocks.push_back(&node->local_clock());
  }
  return core::HonestGapTracker(std::move(clocks));
}

View Cluster::min_honest_view() const {
  View lo = std::numeric_limits<View>::max();
  for (const auto& node : nodes_) {
    if (!ever_byzantine_[node->id()]) lo = std::min(lo, node->current_view());
  }
  return lo;
}

View Cluster::max_honest_view() const {
  View hi = -1;
  for (const auto& node : nodes_) {
    if (!ever_byzantine_[node->id()]) hi = std::max(hi, node->current_view());
  }
  return hi;
}

}  // namespace lumiere::runtime
