// Text formats for the multi-process soak cluster (tools/soak,
// tools/lumiere_node):
//
//   * ClusterSpec — the serialized scenario every replica process rebuilds
//     identically. One "key value" line per knob, behaviors one line per
//     non-honest node, terminated by "end". The orchestrator writes one
//     spec file; each lumiere_node reads it plus its own --id, so every
//     process derives byte-identical protocol stacks (same seed, same
//     leader schedules, same keys) without any runtime coordination.
//
//   * Ledger dump — the admin LEDGER reply (obs/admin.h): one line per
//     committed entry carrying view, block hash and payload bytes, enough
//     for the data-form oracles (fuzz/oracles.h) to check safety and
//     exactly-once across processes that share no address space.
//
// Both formats are line-oriented ASCII: debuggable with nc(1), diffable,
// and versioned by their header line.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/types.h"
#include "consensus/ledger.h"
#include "runtime/scenario.h"

namespace lumiere::runtime {

/// Everything a replica process needs to rebuild its slice of the
/// cluster. Mirrors the ScenarioBuilder knobs the soak harness exercises;
/// deliberately NOT the full Scenario (no sim-only adversary state —
/// validate() rejects those on TCP anyway).
struct ClusterSpec {
  std::uint32_t n = 4;
  std::int64_t delta_us = 10'000;
  std::uint32_t x = 3;
  std::string pacemaker = "lumiere";
  std::string core = "simple-view";
  std::uint64_t seed = 1;
  std::string auth_scheme = "hmac";
  std::uint16_t tcp_base_port = 0;
  std::uint16_t status_base_port = 0;
  std::string admin_token;

  bool pipeline = false;
  std::uint32_t pipeline_workers = 4;
  std::uint32_t pipeline_queue = 1024;

  bool dissem = false;

  /// Block-sync subsystem (src/sync/): wedged commit walks fetch missing
  /// ancestors from peers instead of stalling forever.
  bool block_sync = false;

  /// Client-driven workload on every node (the soak cluster always runs
  /// one — liveness oracles need committed requests to count).
  std::string arrival = "closed-loop";
  std::uint32_t clients_per_node = 2;
  double rate_per_client = 100.0;
  std::uint32_t in_flight = 4;
  std::uint64_t request_bytes = 64;

  /// Initial non-honest behaviors, node -> adversary::make_behavior name.
  std::map<ProcessId, std::string> behaviors;
};

/// Serializes to the "lumiere-scenario v1" line format.
[[nodiscard]] std::string serialize(const ClusterSpec& spec);

/// Parses a serialized spec. Returns nullopt with `error` set on a
/// malformed or unknown-versioned input.
[[nodiscard]] std::optional<ClusterSpec> parse_cluster_spec(const std::string& text,
                                                            std::string& error);

/// Expands the spec into a ready-to-validate builder for the full n-node
/// cluster (TCP transport). The in-process tests build a whole Cluster
/// from it; lumiere_node builds the same builder and runs one node.
[[nodiscard]] ScenarioBuilder to_builder(const ClusterSpec& spec);

/// One committed entry as carried by the LEDGER dump (the cross-process
/// form of consensus::CommittedEntry — no commit timestamp: wall clocks
/// are not comparable across processes).
struct LedgerRecord {
  View view = -1;
  crypto::Digest hash;
  std::vector<std::uint8_t> payload;
};

/// Renders "ledger v1 <count>" + one "entry <view> <hash> <payload-hex>"
/// line per committed block + "END".
[[nodiscard]] std::string render_ledger(const consensus::Ledger& ledger);

/// Parses a LEDGER dump. Returns nullopt with `error` set on malformed
/// input (truncated dump, bad hex, count mismatch).
[[nodiscard]] std::optional<std::vector<LedgerRecord>> parse_ledger(const std::string& text,
                                                                    std::string& error);

}  // namespace lumiere::runtime
