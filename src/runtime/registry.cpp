#include "runtime/registry.h"

#include <sstream>
#include <stdexcept>

#include "consensus/chained_hotstuff.h"
#include "consensus/hotstuff2.h"
#include "consensus/simple_view_core.h"
#include "core/basic_lumiere.h"
#include "core/lumiere.h"
#include "pacemaker/cogsworth.h"
#include "pacemaker/fever.h"
#include "pacemaker/leader_schedule.h"
#include "pacemaker/lp22.h"
#include "pacemaker/naor_keidar.h"
#include "pacemaker/raresync.h"
#include "pacemaker/round_robin.h"

namespace lumiere::runtime {
namespace {

/// The (x+2)*Delta default shared by the timeout-driven pacemakers, with
/// the ProtocolConfig override applied.
Duration resolve_view_timeout(const PacemakerContext& ctx) {
  if (ctx.config.timeout.view_timeout > Duration::zero()) {
    return ctx.config.timeout.view_timeout;
  }
  return ctx.params.delta_cap * (ctx.params.x + 2);
}

Duration resolve_relay_timeout(const PacemakerContext& ctx) {
  if (ctx.config.timeout.relay_timeout > Duration::zero()) {
    return ctx.config.timeout.relay_timeout;
  }
  return ctx.params.delta_cap * 2;
}

void register_builtin_pacemakers(ProtocolRegistry& registry) {
  registry.register_pacemaker("round-robin", [](PacemakerContext&& ctx) {
    pacemaker::RoundRobinPacemaker::Options opt;
    opt.base_timeout = resolve_view_timeout(ctx);
    return std::make_unique<pacemaker::RoundRobinPacemaker>(ctx.params, ctx.self, ctx.signer,
                                                            std::move(ctx.wiring), opt);
  });
  registry.register_pacemaker("cogsworth", [](PacemakerContext&& ctx) {
    pacemaker::CogsworthPacemaker::Options opt;
    opt.view_timeout = resolve_view_timeout(ctx);
    opt.relay_timeout = resolve_relay_timeout(ctx);
    return std::make_unique<pacemaker::CogsworthPacemaker>(
        ctx.params, ctx.self, ctx.signer, std::move(ctx.wiring), opt,
        std::make_unique<pacemaker::RoundRobinSchedule>(ctx.params.n, 1));
  });
  registry.register_pacemaker("nk20", [](PacemakerContext&& ctx) {
    pacemaker::CogsworthPacemaker::Options opt;
    opt.view_timeout = resolve_view_timeout(ctx);
    opt.relay_timeout = resolve_relay_timeout(ctx);
    return std::make_unique<pacemaker::NaorKeidarPacemaker>(
        ctx.params, ctx.self, ctx.signer, std::move(ctx.wiring), opt, ctx.config.shared_seed);
  });
  registry.register_pacemaker("raresync", [](PacemakerContext&& ctx) {
    pacemaker::RareSyncPacemaker::Options opt;
    opt.gamma = ctx.config.gamma;
    return std::make_unique<pacemaker::RareSyncPacemaker>(ctx.params, ctx.self, ctx.signer,
                                                          std::move(ctx.wiring), opt);
  });
  registry.register_pacemaker("lp22", [](PacemakerContext&& ctx) {
    pacemaker::Lp22Pacemaker::Options opt;
    opt.gamma = ctx.config.gamma;
    return std::make_unique<pacemaker::Lp22Pacemaker>(ctx.params, ctx.self, ctx.signer,
                                                      std::move(ctx.wiring), opt);
  });
  registry.register_pacemaker("fever", [](PacemakerContext&& ctx) {
    pacemaker::FeverPacemaker::Options opt;
    opt.gamma = ctx.config.gamma;
    opt.tenure = ctx.config.fever.tenure;
    return std::make_unique<pacemaker::FeverPacemaker>(ctx.params, ctx.self, ctx.signer,
                                                       std::move(ctx.wiring), opt);
  });
  registry.register_pacemaker("basic-lumiere", [](PacemakerContext&& ctx) {
    core::BasicLumierePacemaker::Options opt;
    opt.gamma = ctx.config.gamma;
    return std::make_unique<core::BasicLumierePacemaker>(ctx.params, ctx.self, ctx.signer,
                                                         std::move(ctx.wiring), opt);
  });
  registry.register_pacemaker("lumiere", [](PacemakerContext&& ctx) {
    core::LumierePacemaker::Options opt;
    opt.gamma = ctx.config.gamma;
    opt.schedule_seed = ctx.config.shared_seed;
    opt.enforce_qc_deadline = ctx.config.lumiere.enforce_qc_deadline;
    opt.delta_wait_before_epoch_msg = ctx.config.lumiere.delta_wait;
    return std::make_unique<core::LumierePacemaker>(ctx.params, ctx.self, ctx.signer,
                                                    std::move(ctx.wiring), opt);
  });
}

void register_builtin_cores(ProtocolRegistry& registry) {
  registry.register_core("simple-view", [](CoreContext&& ctx) {
    return std::make_unique<consensus::SimpleViewCore>(ctx.params, ctx.auth, ctx.signer,
                                                       std::move(ctx.callbacks),
                                                       std::move(ctx.hooks),
                                                       std::move(ctx.payload_provider));
  });
  registry.register_core("chained-hotstuff", [](CoreContext&& ctx) {
    auto core = std::make_unique<consensus::ChainedHotStuff>(ctx.params, ctx.auth, ctx.signer,
                                                             std::move(ctx.callbacks),
                                                             std::move(ctx.hooks),
                                                             std::move(ctx.payload_provider));
    core->set_checkpoint_adoption(ctx.config.checkpoint_adoption);
    return core;
  });
  registry.register_core("hotstuff-2", [](CoreContext&& ctx) {
    auto core = std::make_unique<consensus::HotStuff2>(ctx.params, ctx.auth, ctx.signer,
                                                       std::move(ctx.callbacks),
                                                       std::move(ctx.hooks),
                                                       std::move(ctx.payload_provider));
    core->set_checkpoint_adoption(ctx.config.checkpoint_adoption);
    return core;
  });
}

std::string unknown_name_message(const char* kind, const std::string& name,
                                 const std::vector<std::string>& known) {
  std::ostringstream out;
  out << "unknown " << kind << " \"" << name << "\" (registered: ";
  for (std::size_t i = 0; i < known.size(); ++i) {
    if (i > 0) out << ", ";
    out << known[i];
  }
  out << ")";
  return out.str();
}

}  // namespace

ProtocolRegistry& ProtocolRegistry::instance() {
  static ProtocolRegistry* registry = [] {
    auto* r = new ProtocolRegistry();
    register_builtin_pacemakers(*r);
    register_builtin_cores(*r);
    return r;
  }();
  return *registry;
}

void ProtocolRegistry::register_pacemaker(std::string name, PacemakerFactory factory) {
  LUMIERE_ASSERT_MSG(!name.empty() && factory != nullptr, "bad pacemaker registration");
  const bool inserted = pacemakers_.emplace(std::move(name), std::move(factory)).second;
  LUMIERE_ASSERT_MSG(inserted, "pacemaker name already registered");
}

void ProtocolRegistry::register_core(std::string name, CoreFactory factory) {
  LUMIERE_ASSERT_MSG(!name.empty() && factory != nullptr, "bad core registration");
  const bool inserted = cores_.emplace(std::move(name), std::move(factory)).second;
  LUMIERE_ASSERT_MSG(inserted, "core name already registered");
}

bool ProtocolRegistry::has_pacemaker(const std::string& name) const {
  return pacemakers_.count(name) > 0;
}

bool ProtocolRegistry::has_core(const std::string& name) const { return cores_.count(name) > 0; }

std::vector<std::string> ProtocolRegistry::pacemaker_names() const {
  std::vector<std::string> names;
  names.reserve(pacemakers_.size());
  for (const auto& [name, factory] : pacemakers_) names.push_back(name);
  return names;
}

std::vector<std::string> ProtocolRegistry::core_names() const {
  std::vector<std::string> names;
  names.reserve(cores_.size());
  for (const auto& [name, factory] : cores_) names.push_back(name);
  return names;
}

std::string ProtocolRegistry::unknown_pacemaker_message(const std::string& name) const {
  return unknown_name_message("pacemaker", name, pacemaker_names());
}

std::string ProtocolRegistry::unknown_core_message(const std::string& name) const {
  return unknown_name_message("core", name, core_names());
}

std::unique_ptr<pacemaker::Pacemaker> ProtocolRegistry::make_pacemaker(
    const std::string& name, PacemakerContext&& context) const {
  const auto it = pacemakers_.find(name);
  if (it == pacemakers_.end()) {
    throw std::invalid_argument(unknown_pacemaker_message(name));
  }
  return it->second(std::move(context));
}

std::unique_ptr<consensus::ConsensusCore> ProtocolRegistry::make_core(
    const std::string& name, CoreContext&& context) const {
  const auto it = cores_.find(name);
  if (it == cores_.end()) {
    throw std::invalid_argument(unknown_core_message(name));
  }
  return it->second(std::move(context));
}

}  // namespace lumiere::runtime
