#include "runtime/experiment.h"

#include <cinttypes>
#include <cstdio>
#include <set>

#include "pacemaker/messages.h"

namespace lumiere::runtime {

RunMeasures run_experiment(const ExperimentConfig& config) {
  Cluster cluster(config.scenario.scenario());
  const TimePoint gst = cluster.scenario().gst;

  // Count epoch-view messages sent before GST so the after-GST component
  // can be isolated.
  cluster.start();
  cluster.run_until(gst);
  const std::uint64_t epoch_msgs_pre_gst =
      cluster.metrics().count_for_type(pacemaker::kEpochViewMsg);

  cluster.run_until(gst + config.run_for);

  const MetricsCollector& metrics = cluster.metrics();

  RunMeasures out;
  // Label with every distinct pacemaker, first-seen order (heterogeneous
  // scenarios would otherwise report node 0's protocol for the whole row).
  std::set<std::string> seen;
  for (const auto& spec : cluster.scenario().nodes) {
    if (!seen.insert(spec.protocol.pacemaker).second) continue;
    if (!out.protocol.empty()) out.protocol += "+";
    out.protocol += spec.protocol.pacemaker;
  }
  out.n = cluster.n();
  out.f_actual = 0;
  for (const bool b : cluster.byzantine_mask()) out.f_actual += b ? 1 : 0;

  out.decisions_after_gst =
      metrics.decisions().size() - metrics.first_decision_index_after(gst) > 0
          ? metrics.decisions().size() - metrics.first_decision_index_after(gst)
          : 0;
  out.latency_first = metrics.latency_to_first_decision(gst);
  out.latency_eventual = metrics.max_decision_gap(gst, config.warmup_decisions);
  out.comm_first = metrics.msgs_to_first_decision(gst);
  out.comm_eventual = metrics.max_msg_gap(gst, config.warmup_decisions);
  out.epoch_view_msgs_after_gst =
      metrics.count_for_type(pacemaker::kEpochViewMsg) - epoch_msgs_pre_gst;
  out.total_honest_msgs = metrics.total_honest_msgs();
  return out;
}

std::string in_delta_units(std::optional<Duration> d, Duration delta_cap) {
  if (!d) return "-";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.1f",
                static_cast<double>(d->ticks()) / static_cast<double>(delta_cap.ticks()));
  return std::string(buf) + " D";
}

}  // namespace lumiere::runtime
