// A Node: one processor's full protocol stack, wired together.
//
//          +-----------------------------------------------+
//          |                    Node                        |
//          |  LocalClock <---- Pacemaker ----> enter_view   |
//          |                     ^  |              |        |
//          |        QCs observed |  | leader_of,   v        |
//          |                     |  | deadlines  ConsensusCore
//          |                     +--+---------------+       |
//          |        outbound (via Behavior filter)  |       |
//          +----------------------|-----------------|-------+
//                                 v                 v
//                          MessageTransport (sim or TCP)
//
// The pacemaker and consensus core are looked up by name in the
// ProtocolRegistry; most callers construct nodes indirectly through
// runtime::ScenarioBuilder (runtime/scenario.h).
#pragma once

#include <memory>
#include <optional>

#include "adversary/behaviors.h"
#include "common/params.h"
#include "consensus/core.h"
#include "consensus/ledger.h"
#include "dissem/disseminator.h"
#include "dissem/spec.h"
#include "pacemaker/pacemaker.h"
#include "runtime/registry.h"
#include "sim/local_clock.h"
#include "sim/transport_iface.h"
#include "sync/block_sync.h"

namespace lumiere::runtime {

/// Per-node construction config: which protocols to run (by registry
/// name, with their typed knobs) plus this processor's local conditions.
struct NodeConfig {
  ProtocolConfig protocol;
  /// When this processor joins (its lc reads 0 at this instant).
  TimePoint join_time = TimePoint::origin();
  /// Rate skew of this processor's local clock in parts-per-million (the
  /// paper's bounded-drift remark); 0 = perfect rate.
  std::int64_t clock_drift_ppm = 0;
  /// Block payload source consulted when this node proposes (the client
  /// workload); null = empty payloads. Ignored when `dissem` is set — the
  /// disseminator becomes the payload source (certified references).
  PayloadProvider payload_provider;
  /// Data-dissemination layer: when set, the node runs a Disseminator
  /// wired between its mempool (via `dissem_hooks`) and its consensus
  /// core (payload provider, vote gate, commit resolution).
  std::optional<dissem::DissemSpec> dissem;
  /// Harness-side disseminator callbacks (lease_batch/ack_batch/deliver
  /// plus optional metrics hooks). The transport-side callbacks (send,
  /// broadcast, schedule, now) are filled in by the Node itself.
  dissem::DisseminatorCallbacks dissem_hooks;
  /// Observability: when set, the node installs these counters into its
  /// Signer and AuthView so every authenticator op it performs is
  /// attributed to it (crypto/auth_counters.h). Owned by the harness
  /// (the cluster's SyncTracer); null = no counting.
  crypto::AuthOpCounters* auth_ops = nullptr;
};

/// Events the node reports to the harness (metrics, tests).
struct NodeObservers {
  /// This node, as leader, produced a QC for `view` (a consensus
  /// decision in the paper's accounting when the node is honest).
  std::function<void(TimePoint at, View view, ProcessId node)> on_qc_formed;
  /// This node entered `view`.
  std::function<void(TimePoint at, View view, ProcessId node)> on_view_entered;
  /// This node committed a block (chained HotStuff only).
  std::function<void(TimePoint at, const consensus::Block& block, ProcessId node)> on_commit;
  /// This node's pacemaker began a view-sync episode: it is in view
  /// `current` and started spending resources aiming for `target`.
  std::function<void(TimePoint at, View current, View target, ProcessId node)> on_sync_started;
  /// This node put one protocol message of `bytes` wire bytes on the
  /// transport (self-delivery excluded — it costs no network resources).
  /// Called on the hot send path: keep implementations cheap.
  std::function<void(ProcessId node, std::size_t bytes)> on_sent;
};

class Node {
 public:
  /// Builds the stack named by `config.protocol` via the registry; throws
  /// std::invalid_argument on unknown protocol names (ScenarioBuilder
  /// validates earlier and produces friendlier per-node errors).
  Node(const ProtocolParams& params, ProcessId id, sim::Simulator* sim, MessageTransport* network,
       const crypto::Authenticator* auth, NodeConfig config, NodeObservers observers,
       std::unique_ptr<adversary::Behavior> behavior);

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  /// Registers the network endpoint and schedules protocol start at the
  /// join time. Call exactly once.
  void start();

  [[nodiscard]] ProcessId id() const noexcept { return id_; }
  /// True if this node ever ran a non-honest behavior (sticky: a
  /// scripted behavior change back to "honest" does not clear it — the
  /// node's earlier deviations remain in the execution).
  [[nodiscard]] bool is_byzantine() const noexcept;

  /// Swaps the node's outbound behavior from now on (the fault-schedule
  /// kBehaviorChange executor). The Byzantine flag is sticky.
  void set_behavior(std::unique_ptr<adversary::Behavior> behavior);
  [[nodiscard]] const sim::LocalClock& local_clock() const noexcept { return *clock_; }
  [[nodiscard]] sim::LocalClock& local_clock() noexcept { return *clock_; }
  [[nodiscard]] pacemaker::Pacemaker& pacemaker() noexcept { return *pacemaker_; }
  [[nodiscard]] const pacemaker::Pacemaker& pacemaker() const noexcept { return *pacemaker_; }
  [[nodiscard]] consensus::ConsensusCore& core() noexcept { return *core_; }
  [[nodiscard]] const consensus::Ledger& ledger() const noexcept { return ledger_; }
  [[nodiscard]] consensus::Ledger& ledger() noexcept { return ledger_; }
  [[nodiscard]] View current_view() const { return pacemaker_->current_view(); }
  /// The registry names this node was built from.
  [[nodiscard]] const ProtocolConfig& protocol() const noexcept { return protocol_; }
  /// The node's dissemination engine; nullptr unless NodeConfig::dissem
  /// was set.
  [[nodiscard]] const dissem::Disseminator* disseminator() const noexcept {
    return dissem_.get();
  }
  [[nodiscard]] dissem::Disseminator* disseminator() noexcept { return dissem_.get(); }
  /// The node's block-sync engine; nullptr unless
  /// ProtocolConfig::block_sync was set.
  [[nodiscard]] const sync::BlockSynchronizer* synchronizer() const noexcept {
    return sync_.get();
  }
  /// The memo of signatures the verify pipeline already checked for
  /// this node. Written only by the node's driver thread (TCP).
  [[nodiscard]] crypto::VerifyMemo& verify_memo() noexcept { return memo_; }
  /// The verification facade this node's protocol layers use.
  [[nodiscard]] crypto::AuthView auth_view() const noexcept { return auth_view_; }

 private:
  void build_pacemaker(const NodeConfig& config);
  void build_dissem(const NodeConfig& config);
  void build_core(const NodeConfig& config);
  void build_sync(const NodeConfig& config);
  void route_inbound(ProcessId from, const MessagePtr& msg);
  void outbound(ProcessId to, MessagePtr msg);
  void outbound_broadcast(const MessagePtr& msg);
  [[nodiscard]] adversary::Toolkit toolkit();

  ProtocolParams params_;
  ProcessId id_;
  sim::Simulator* sim_;
  MessageTransport* network_;
  crypto::VerifyMemo memo_;
  crypto::AuthView auth_view_;
  crypto::Signer signer_;
  NodeObservers observers_;
  std::unique_ptr<adversary::Behavior> behavior_;
  TimePoint join_time_;
  ProtocolConfig protocol_;

  std::unique_ptr<sim::LocalClock> clock_;
  std::unique_ptr<pacemaker::Pacemaker> pacemaker_;
  std::unique_ptr<dissem::Disseminator> dissem_;
  std::unique_ptr<consensus::ConsensusCore> core_;
  std::unique_ptr<sync::BlockSynchronizer> sync_;
  consensus::Ledger ledger_;
  bool ever_byzantine_ = false;
  bool started_ = false;
  bool protocol_running_ = false;
  std::vector<std::pair<ProcessId, MessagePtr>> pre_join_inbox_;
};

}  // namespace lumiere::runtime
