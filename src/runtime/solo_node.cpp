#include "runtime/solo_node.h"

#include <unistd.h>

#include <stdexcept>
#include <utility>

#include "consensus/messages.h"
#include "dissem/messages.h"
#include "pacemaker/messages.h"
#include "sync/messages.h"

namespace lumiere::runtime {

SoloNodeRuntime::SoloNodeRuntime(const ClusterSpec& spec, ProcessId id, Options options)
    : spec_(spec), id_(id), options_(options) {
  // Resolve through the same builder path as Cluster so every process —
  // and the in-process tests — derive identical per-node stacks.
  const Scenario scenario = to_builder(spec_).scenario();
  const std::uint32_t n = scenario.params.n;
  if (id_ >= n) throw std::invalid_argument("solo node: id out of range");
  const NodeSpec& node_spec = scenario.nodes[id_];

  auth_ = crypto::make_authenticator(scenario.auth_scheme, n, scenario.seed);
  if (scenario.obs.tracer) {
    tracer_ = std::make_unique<obs::SyncTracer>(n, scenario.obs.max_spans);
  }
  board_ = std::make_unique<obs::StatusBoard>(n);

  const auto make_codec = [&] {
    MessageCodec codec;
    consensus::register_consensus_messages(codec);
    pacemaker::register_pacemaker_messages(codec);
    dissem::register_dissem_messages(codec);
    sync::register_sync_messages(codec);
    codec.set_sig_wire(auth_->wire_spec());
    return codec;
  };

  sim_ = std::make_unique<sim::Simulator>();
  adapter_ = std::make_unique<transport::TcpTransportAdapter>(id_, n, scenario.tcp_base_port,
                                                              make_codec());
  // Same deterministic per-node streams as Cluster::build_tcp_cluster.
  adapter_->endpoint().set_reconnect_backoff(
      transport::BackoffPolicy{}, scenario.seed ^ (0x9e3779b97f4a7c15ULL * (id_ + 1)));
  adapter_->set_shaping(sim_.get(), scenario.seed ^ (0xd3833e804f4c574bULL * (id_ + 1)));

  if (node_spec.workload.has_value()) {
    workload::NodeWorkload::Hooks hooks;
    hooks.on_request_committed = [this](TimePoint, Duration) {
      board_->add_request_committed(id_);
    };
    hooks.on_queue_depth = [this](TimePoint, std::size_t depth) {
      board_->set_mempool_depth(id_, depth);
    };
    workload_ = std::make_unique<workload::NodeWorkload>(sim_.get(), id_, *node_spec.workload,
                                                         scenario.seed, std::move(hooks));
  }

  NodeConfig config;
  config.protocol = node_spec.protocol;
  // Standalone processes lose all state on kill -9; without checkpoint
  // adoption a restarted replica could never reconnect its commit walk
  // to genesis and would stall forever. In-process clusters keep this
  // off (full history, full-prefix ledgers).
  config.protocol.checkpoint_adoption = true;
  config.join_time = node_spec.join_time;
  config.clock_drift_ppm = node_spec.clock_drift_ppm;
  config.payload_provider = node_spec.payload_provider;
  if (tracer_ != nullptr) config.auth_ops = &tracer_->auth_counters(id_);
  if (workload_ != nullptr && scenario.dissem.has_value()) {
    workload::NodeWorkload* w = workload_.get();
    config.dissem = scenario.dissem;
    config.dissem_hooks.lease_batch = [w](std::vector<std::uint8_t>& payload) {
      return w->lease_dissem_batch(payload);
    };
    config.dissem_hooks.ack_batch = [w](std::uint64_t token) { w->ack_dissem_batch(token); };
    config.dissem_hooks.deliver = [w](TimePoint at, const std::vector<std::uint8_t>& payload) {
      w->on_dissem_delivery(at, payload);
    };
  } else if (workload_ != nullptr) {
    config.payload_provider = [w = workload_.get()](View v) { return w->make_batch(v); };
  }

  NodeObservers observers;
  observers.on_view_entered = [this](TimePoint at, View view, ProcessId node) {
    if (tracer_ != nullptr) tracer_->on_view_entered(node, at, view);
    board_->set_view(node, view);
  };
  if (tracer_ != nullptr) {
    observers.on_sync_started = [tracer = tracer_.get()](TimePoint at, View current, View target,
                                                         ProcessId node) {
      tracer->on_sync_started(node, at, current, target);
    };
    observers.on_sent = [tracer = tracer_.get()](ProcessId node, std::size_t bytes) {
      tracer->note_sent(node, bytes);
    };
  }
  const bool feed_workload = workload_ != nullptr && !scenario.dissem.has_value();
  observers.on_commit = [this, feed_workload](TimePoint at, const consensus::Block& block,
                                              ProcessId) {
    board_->add_commit(id_);
    board_->set_last_commit(id_, static_cast<std::uint64_t>(block.view()));
    if (feed_workload) workload_->on_commit(at, block.view(), block.payload());
  };

  auto behavior = node_spec.behavior ? node_spec.behavior()
                                     : std::make_unique<adversary::HonestBehavior>();
  if (behavior != nullptr && std::string(behavior->name()) != "honest") {
    board_->set_ever_byzantine(id_);
  }
  node_ = std::make_unique<Node>(scenario.params, id_, sim_.get(), adapter_.get(), auth_.get(),
                                 std::move(config), std::move(observers), std::move(behavior));
  driver_ = std::make_unique<transport::RealtimeDriver>(sim_.get(), &adapter_->endpoint());

  admin_gate_ = std::make_unique<obs::AdminGate>();
  obs::AdminGate* gate = admin_gate_.get();
  if (scenario.pipeline.enabled) {
    pipeline_ = std::make_unique<VerifyPipeline>(auth_.get(), make_codec(), scenario.pipeline);
    VerifyPipeline* pipeline = pipeline_.get();
    Node* node = node_.get();
    transport::TcpTransportAdapter* adapter = adapter_.get();
    adapter_->endpoint().set_raw_sink(
        [pipeline](ProcessId from, std::span<const std::uint8_t> payload) {
          return pipeline->submit(from, payload);
        });
    driver_->set_pump([this, pipeline, node, adapter, gate] {
      pipeline->drain([&](VerifyPipeline::Result&& result) {
        for (const crypto::Digest& fp : result.fingerprints) {
          node->verify_memo().remember(fp);
        }
        adapter->deliver_decoded(result.from, result.msg);
      });
      gate->drain([this](const obs::AdminCommand& command) { return apply_admin(command); });
    });
    pipeline_->start();
  } else {
    driver_->set_pump([this, gate] {
      gate->drain([this](const obs::AdminCommand& command) { return apply_admin(command); });
    });
  }

  if (scenario.obs.status_base_port != 0) {
    const auto port = static_cast<std::uint16_t>(scenario.obs.status_base_port + id_);
    auto snapshot = [this] { return status(); };
    if (!scenario.obs.admin_token.empty()) {
      obs::StatusServer::AdminHooks hooks;
      hooks.token = scenario.obs.admin_token;
      hooks.submit = [gate](const obs::AdminCommand& command) {
        return gate->submit(command, Duration::millis(2000));
      };
      status_server_ = std::make_unique<obs::StatusServer>(port, snapshot, std::move(hooks));
    } else {
      status_server_ = std::make_unique<obs::StatusServer>(port, snapshot);
    }
  }
}

SoloNodeRuntime::~SoloNodeRuntime() {
  // Kill the status endpoint first: its session threads snapshot the
  // tracer/board and submit into the gate, all destroyed below.
  status_server_.reset();
  if (pipeline_ != nullptr) pipeline_->stop();
}

void SoloNodeRuntime::start() {
  if (started_) return;
  started_ = true;
  if (workload_ != nullptr) workload_->start();
  node_->start();
}

void SoloNodeRuntime::run_for(std::chrono::milliseconds wall) {
  start();
  driver_->run_for(wall);
}

obs::NodeStatus SoloNodeRuntime::status() const {
  obs::NodeStatus status;
  status.node = id_;
  status.view = board_->view(id_);
  status.height = board_->height(id_);
  status.last_commit_height = board_->last_commit(id_);
  status.ever_byzantine = board_->ever_byzantine(id_);
  status.mempool_depth = board_->mempool_depth(id_);
  status.requests_committed = board_->requests_committed(id_);
  if (pipeline_ != nullptr) {
    const VerifyPipeline::Stats stats = pipeline_->stats();
    status.pipeline_queue_depth = stats.frames_in - stats.frames_out;
  }
  if (tracer_ != nullptr) {
    status.msgs_sent = tracer_->msgs_sent(id_);
    status.bytes_sent = tracer_->bytes_sent(id_);
    status.auth_ops = tracer_->auth_snapshot(id_).total();
    status.current_sync = tracer_->open_span(id_, TimePoint::origin());
    status.last_sync = tracer_->last_span(id_);
  }
  return status;
}

std::string SoloNodeRuntime::apply_admin(const obs::AdminCommand& command) {
  switch (command.kind) {
    case obs::AdminKind::kBehavior: {
      auto behavior = adversary::make_behavior(command.behavior);
      if (behavior == nullptr) return "ERR unknown behavior '" + command.behavior + "'";
      const bool byzantine = command.behavior != "honest";
      node_->set_behavior(std::move(behavior));
      if (byzantine) board_->set_ever_byzantine(id_);
      return "OK";
    }
    case obs::AdminKind::kDrop:
      if (command.peer >= spec_.n) return "ERR peer out of range";
      adapter_->set_link_drop(command.peer, command.probability);
      return "OK";
    case obs::AdminKind::kDelay:
      if (command.peer >= spec_.n) return "ERR peer out of range";
      adapter_->set_link_delay(command.peer, command.delay);
      return "OK";
    case obs::AdminKind::kIsolate:
      adapter_->set_isolated(true);
      return "OK";
    case obs::AdminKind::kHeal:
      adapter_->clear_shaping();
      adapter_->clear_partition();
      return "OK";
    case obs::AdminKind::kCrash:
      if (!options_.allow_crash) return "ERR crash disabled";
      // Abrupt, destructor-free exit — the crash the soak's recovery
      // oracle is about. The admin session never gets a reply; the
      // orchestrator treats the dropped connection as success.
      ::_exit(137);
    case obs::AdminKind::kLedger:
      return render_ledger(node_->ledger());
  }
  return "ERR unhandled";
}

}  // namespace lumiere::runtime
