// Staged node pipeline: off-thread decode + batch signature verification.
//
// On the TCP transport a node's critical thread (its RealtimeDriver) does
// everything: socket pumping, frame decode, signature checks, consensus,
// execution. With a real signature scheme (anything beyond the
// zero-cost sim default) the checks dominate. This module splits the receive path into stages:
//
//   socket read -> [bounded ingress queue] -> worker pool: decode +
//   verify every signature the frame carries -> [egress queue] ->
//   driver thread: seed the node's VerifyMemo, deliver to consensus
//
// The consensus core stays single-threaded and deterministic: workers
// never touch protocol state, they only pre-answer the cryptographic
// yes/no questions the core would ask later (via crypto::AuthView's memo
// path). A claim that fails off-thread is simply not memoized — the core
// re-checks inline and rejects exactly as it would have, so Byzantine
// garbage cannot change accept/reject semantics, only cost.
//
// Frames from different peers may reorder across workers; the protocol
// already tolerates arbitrary network reordering, and the deterministic
// simulator (which pins the golden digests) never runs a pipeline.
//
// Backpressure: the ingress queue is bounded; submit() blocks the socket
// thread when full, which in turn fills the kernel socket buffers and
// stalls the senders — load sheds at the edge instead of ballooning
// memory. stop() unblocks any blocked submitter.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <thread>
#include <vector>

#include "crypto/authenticator.h"
#include "ser/message.h"

namespace lumiere::runtime {

/// ScenarioBuilder::pipeline() knob: staged verification on the TCP
/// transport. Default-constructed = disabled (the sim transport and all
/// golden digests pin the inline path).
struct PipelineSpec {
  bool enabled = false;
  /// Verification worker threads per node.
  std::uint32_t workers = 4;
  /// Ingress queue bound (frames); submit() blocks when full.
  std::size_t queue_capacity = 1024;
};

/// One node's decode+verify worker pool. Thread roles:
///   * the node's driver thread calls submit() (from the socket read
///     path), drain() (each pump iteration) and start()/stop() (fault
///     schedule);
///   * workers only read the shared Authenticator/MessageCodec (both
///     immutable after construction) and the queues.
class VerifyPipeline {
 public:
  struct Result {
    ProcessId from = kNoProcess;
    MessagePtr msg;
    /// Fingerprints of the claims that verified (crypto/authenticator.h);
    /// the driver thread inserts them into the node's VerifyMemo.
    std::vector<crypto::Digest> fingerprints;
  };

  struct Stats {
    std::uint64_t frames_in = 0;        ///< frames accepted by submit()
    std::uint64_t frames_out = 0;       ///< results handed to drain()
    std::uint64_t decode_failures = 0;  ///< malformed frames dropped
    std::uint64_t claims_checked = 0;   ///< signatures/aggregates verified
    std::uint64_t claims_passed = 0;
    std::uint64_t submit_blocks = 0;    ///< times submit() hit backpressure
  };

  VerifyPipeline(const crypto::Authenticator* auth, MessageCodec codec, PipelineSpec spec);
  ~VerifyPipeline();

  VerifyPipeline(const VerifyPipeline&) = delete;
  VerifyPipeline& operator=(const VerifyPipeline&) = delete;

  /// Spawns the workers (idempotent; restart after stop() is supported —
  /// the fault schedule stops a crashed node's pool and restarts it on
  /// recovery).
  void start();

  /// Joins the workers. Frames still in flight are discarded (a crashed
  /// process loses its unprocessed input). Unblocks pending submit().
  void stop();

  [[nodiscard]] bool running() const;

  /// Queues one raw frame payload for decode+verify. Blocks while the
  /// ingress queue is full and the pipeline is running. Returns false
  /// (payload untouched) when stopped — the caller falls back to inline
  /// handling.
  bool submit(ProcessId from, std::span<const std::uint8_t> payload);

  /// Non-blocking submit: false when full or stopped.
  bool try_submit(ProcessId from, std::span<const std::uint8_t> payload);

  /// Drains every completed result into `fn` on the caller's thread.
  /// Returns the number of results delivered.
  template <typename Fn>
  std::size_t drain(Fn&& fn) {
    std::vector<Result> batch;
    {
      std::lock_guard<std::mutex> lock(egress_mu_);
      batch.swap(egress_);
    }
    for (Result& r : batch) fn(std::move(r));
    return batch.size();
  }

  [[nodiscard]] Stats stats() const;
  [[nodiscard]] const PipelineSpec& spec() const noexcept { return spec_; }

 private:
  struct Frame {
    ProcessId from = kNoProcess;
    std::vector<std::uint8_t> payload;
  };

  void worker_loop();
  void process(Frame frame);

  const crypto::Authenticator* auth_;
  MessageCodec codec_;
  PipelineSpec spec_;

  mutable std::mutex ingress_mu_;
  std::condition_variable ingress_cv_;  ///< signaled: frame available or stop
  std::condition_variable space_cv_;    ///< signaled: queue has room
  std::deque<Frame> ingress_;
  bool running_ = false;

  std::mutex egress_mu_;
  std::vector<Result> egress_;

  std::vector<std::thread> workers_;

  mutable std::mutex stats_mu_;
  Stats stats_;
};

}  // namespace lumiere::runtime
