// Experiment harness: runs a configured cluster and extracts the paper's
// measures (Section 2 / Table 1).
#pragma once

#include <optional>
#include <string>

#include "runtime/cluster.h"

namespace lumiere::runtime {

/// One run's extracted measures.
struct RunMeasures {
  std::string protocol;
  std::uint32_t n = 0;
  std::uint32_t f_actual = 0;

  /// Honest-leader QCs after GST.
  std::uint64_t decisions_after_gst = 0;

  /// Worst-case latency sample: GST to first decision.
  std::optional<Duration> latency_first;
  /// Eventual worst-case latency sample: max inter-decision gap after the
  /// warmup prefix.
  std::optional<Duration> latency_eventual;

  /// Worst-case communication sample: honest msgs from GST to first
  /// decision.
  std::optional<std::uint64_t> comm_first;
  /// Eventual worst-case communication: max honest msgs between
  /// consecutive decisions after warmup.
  std::optional<std::uint64_t> comm_eventual;

  /// Heavy synchronization traffic after GST: honest epoch-view messages
  /// (the Theta(n^2) component Lumiere's success criterion removes).
  std::uint64_t epoch_view_msgs_after_gst = 0;

  std::uint64_t total_honest_msgs = 0;
};

struct ExperimentConfig {
  /// The deployment under measurement (sim transport; the adversary is
  /// only controllable there).
  ScenarioBuilder scenario;
  /// Total simulated run time.
  Duration run_for = Duration::seconds(60);
  /// Decisions to skip after GST before "eventual" measures begin
  /// (the paper's lim sup discards any finite warmup; we skip a prefix).
  std::size_t warmup_decisions = 8;
};

/// Builds, runs, measures. Deterministic in the scenario seed.
[[nodiscard]] RunMeasures run_experiment(const ExperimentConfig& config);

/// Formats a duration as a multiple of Delta (e.g. "12.3 Delta") — the
/// unit the paper's bounds are stated in.
[[nodiscard]] std::string in_delta_units(std::optional<Duration> d, Duration delta_cap);

}  // namespace lumiere::runtime
