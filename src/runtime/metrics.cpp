#include "runtime/metrics.h"

#include <algorithm>
#include <thread>

#include "common/stats.h"
#include "dissem/messages.h"

namespace lumiere::runtime {

void MetricsCollector::charge_sends(TimePoint at, const Message& msg, std::uint64_t copies) {
  charge_sends_raw(at, msg.type_id(), msg.msg_class(), msg.wire_size(), copies);
}

void MetricsCollector::charge_sends_raw(TimePoint at, std::uint32_t type_id, MsgClass msg_class,
                                        std::uint64_t wire, std::uint64_t copies) {
  total_msgs_ += copies;
  total_bytes_ += copies * wire;
  by_type_[type_id] += copies;
  switch (msg_class) {
    case MsgClass::kPacemaker:
      pacemaker_msgs_ += copies;
      break;
    case MsgClass::kDissem:
      dissem_msgs_ += copies;
      dissem_bytes_ += copies * wire;
      if (type_id == dissem::kBatchAck) batch_acks_ += copies;
      dissem_send_log_.emplace_back(at, dissem_bytes_);
      break;
    case MsgClass::kConsensus:
      consensus_msgs_ += copies;
      break;
    case MsgClass::kSync:
      sync_msgs_ += copies;
      break;
  }
  // One checkpoint carrying the post-charge total: copies of a broadcast
  // share one instant, so msgs_between() reads identically to per-copy
  // entries (only the last entry at a given time matters).
  send_log_.emplace_back(at, total_msgs_);
}

void MetricsCollector::capture(Event event) {
  event.seq = seq_.fetch_add(1, std::memory_order_relaxed);
  Shard& shard =
      shards_[std::hash<std::thread::id>{}(std::this_thread::get_id()) % kShards];
  std::lock_guard<std::mutex> lock(shard.mu);
  shard.events.push_back(std::move(event));
}

const MetricsCollector& MetricsCollector::base() const {
  if (!threaded_) return *this;
  // Every query funnels through here: catching a mid-slice query catches
  // both the data race and the dangling-reference footgun at its source.
  LUMIERE_ASSERT_MSG(!recording_live_.load(std::memory_order_relaxed),
                     "MetricsCollector queried during a live TCP run_for slice; "
                     "query between slices and re-fetch log references after each");
  std::lock_guard<std::mutex> lock(merge_mu_);
  const std::uint64_t upto = seq_.load(std::memory_order_relaxed);
  if (merged_ != nullptr && merged_upto_ == upto) return *merged_;
  // Rebuild from scratch: events from different driver threads interleave
  // with slightly skewed node clocks, so an incremental append could land
  // out of order in the sorted logs the window queries binary-search.
  std::vector<Event> events;
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> shard_lock(shard.mu);
    events.insert(events.end(), shard.events.begin(), shard.events.end());
  }
  std::sort(events.begin(), events.end(), [](const Event& a, const Event& b) {
    if (a.at != b.at) return a.at < b.at;
    return a.seq < b.seq;
  });
  merged_ = std::make_unique<MetricsCollector>(n_, byzantine_);
  for (const Event& e : events) {
    switch (e.kind) {
      case Event::Kind::kSend:
        merged_->charge_sends_raw(e.at, e.type_id, e.msg_class, e.wire, e.copies);
        break;
      case Event::Kind::kQcFormed:
        merged_->record_qc_formed(e.at, e.view, e.node);
        break;
      case Event::Kind::kRegime:
        merged_->mark_regime(e.at, e.label);
        break;
      case Event::Kind::kRequestCommitted:
        merged_->record_request_committed(e.at, e.latency);
        break;
      case Event::Kind::kQueueDepth:
        merged_->record_queue_depth(e.at, e.node, e.depth);
        break;
      case Event::Kind::kBatchCertified:
        merged_->record_batch_certified(e.at, e.latency);
        break;
      case Event::Kind::kCertifiedDepth:
        merged_->record_certified_depth(e.at, e.node, e.depth);
        break;
    }
  }
  merged_upto_ = upto;
  return *merged_;
}

void MetricsCollector::on_send(TimePoint at, ProcessId from, ProcessId to, const Message& msg) {
  if (from >= n_ || byzantine_[from]) return;  // paper counts correct senders only
  if (from == to) return;                      // self-delivery is not network traffic
  if (threaded_) {
    Event e;
    e.kind = Event::Kind::kSend;
    e.at = at;
    e.type_id = msg.type_id();
    e.msg_class = msg.msg_class();
    e.wire = msg.wire_size();
    e.copies = 1;
    capture(std::move(e));
    return;
  }
  charge_sends(at, msg, 1);
}

void MetricsCollector::on_broadcast(TimePoint at, ProcessId from, const Message& msg,
                                    std::uint32_t n) {
  if (from >= n_ || byzantine_[from]) return;  // paper counts correct senders only
  if (n <= 1) return;                          // self-delivery is not network traffic
  if (threaded_) {
    Event e;
    e.kind = Event::Kind::kSend;
    e.at = at;
    e.type_id = msg.type_id();
    e.msg_class = msg.msg_class();
    e.wire = msg.wire_size();
    e.copies = n - 1;
    capture(std::move(e));
    return;
  }
  charge_sends(at, msg, n - 1);
}

void MetricsCollector::record_qc_formed(TimePoint at, View view, ProcessId leader) {
  if (leader >= n_ || byzantine_[leader]) return;
  if (threaded_) {
    Event e;
    e.kind = Event::Kind::kQcFormed;
    e.at = at;
    e.view = view;
    e.node = leader;
    capture(std::move(e));
    return;
  }
  decisions_.push_back(Decision{at, view, leader, total_msgs_});
}

std::size_t MetricsCollector::first_decision_index_after(TimePoint from) const {
  if (threaded_) return base().first_decision_index_after(from);
  const auto it = std::lower_bound(
      decisions_.begin(), decisions_.end(), from,
      [](const Decision& d, TimePoint t) { return d.at < t; });
  return static_cast<std::size_t>(it - decisions_.begin());
}

std::optional<Duration> MetricsCollector::latency_to_first_decision(TimePoint gst) const {
  if (threaded_) return base().latency_to_first_decision(gst);
  const std::size_t i = first_decision_index_after(gst);
  if (i >= decisions_.size()) return std::nullopt;
  return decisions_[i].at - gst;
}

std::optional<Duration> MetricsCollector::max_decision_gap(TimePoint from,
                                                           std::size_t warmup) const {
  if (threaded_) return base().max_decision_gap(from, warmup);
  const std::size_t start = first_decision_index_after(from) + warmup;
  if (start + 1 >= decisions_.size()) return std::nullopt;
  Duration worst = Duration::zero();
  for (std::size_t i = start + 1; i < decisions_.size(); ++i) {
    worst = std::max(worst, decisions_[i].at - decisions_[i - 1].at);
  }
  return worst;
}

std::optional<std::uint64_t> MetricsCollector::max_msg_gap(TimePoint from,
                                                           std::size_t warmup) const {
  if (threaded_) return base().max_msg_gap(from, warmup);
  const std::size_t start = first_decision_index_after(from) + warmup;
  if (start + 1 >= decisions_.size()) return std::nullopt;
  std::uint64_t worst = 0;
  for (std::size_t i = start + 1; i < decisions_.size(); ++i) {
    worst = std::max(worst, decisions_[i].msgs_before - decisions_[i - 1].msgs_before);
  }
  return worst;
}

std::optional<std::uint64_t> MetricsCollector::msgs_to_first_decision(TimePoint gst) const {
  if (threaded_) return base().msgs_to_first_decision(gst);
  const std::size_t i = first_decision_index_after(gst);
  if (i >= decisions_.size()) return std::nullopt;
  return decisions_[i].msgs_before - msgs_between(TimePoint::origin(), gst);
}

void MetricsCollector::mark_regime(TimePoint at, std::string label) {
  if (threaded_) {
    Event e;
    e.kind = Event::Kind::kRegime;
    e.at = at;
    e.label = std::move(label);
    capture(std::move(e));
    return;
  }
  regime_marks_.emplace_back(at, std::move(label));
}

std::uint64_t MetricsCollector::decisions_between(TimePoint from, TimePoint to) const {
  if (threaded_) return base().decisions_between(from, to);
  const std::size_t lo = first_decision_index_after(from);
  const std::size_t hi = first_decision_index_after(to);
  return hi - lo;
}

std::optional<Duration> MetricsCollector::max_decision_gap_between(TimePoint from,
                                                                   TimePoint to) const {
  if (threaded_) return base().max_decision_gap_between(from, to);
  const std::size_t lo = first_decision_index_after(from);
  const std::size_t hi = first_decision_index_after(to);
  if (lo + 1 >= hi) return std::nullopt;
  Duration worst = Duration::zero();
  for (std::size_t i = lo + 1; i < hi; ++i) {
    worst = std::max(worst, decisions_[i].at - decisions_[i - 1].at);
  }
  return worst;
}

void MetricsCollector::record_request_committed(TimePoint at, Duration latency) {
  if (threaded_) {
    Event e;
    e.kind = Event::Kind::kRequestCommitted;
    e.at = at;
    e.latency = latency;
    capture(std::move(e));
    return;
  }
  request_log_.emplace_back(at, latency);
}

void MetricsCollector::record_queue_depth(TimePoint at, ProcessId node, std::size_t depth) {
  if (threaded_) {
    Event e;
    e.kind = Event::Kind::kQueueDepth;
    e.at = at;
    e.node = node;
    e.depth = depth;
    capture(std::move(e));
    return;
  }
  queue_depth_log_.push_back(QueueDepthSample{at, node, depth});
  max_queue_depth_ = std::max(max_queue_depth_, depth);
}

std::uint64_t MetricsCollector::requests_between(TimePoint from, TimePoint to) const {
  if (threaded_) return base().requests_between(from, to);
  // Commit callbacks fire in simulated-time order, so the log is sorted.
  const auto lo = std::lower_bound(
      request_log_.begin(), request_log_.end(), from,
      [](const std::pair<TimePoint, Duration>& e, TimePoint t) { return e.first < t; });
  const auto hi = std::lower_bound(
      request_log_.begin(), request_log_.end(), to,
      [](const std::pair<TimePoint, Duration>& e, TimePoint t) { return e.first < t; });
  return static_cast<std::uint64_t>(hi - lo);
}

std::optional<Duration> MetricsCollector::request_latency_percentile(double p) const {
  return request_latency_percentile_between(p, TimePoint::origin(), TimePoint::max());
}

std::optional<Duration> MetricsCollector::request_latency_percentile_between(
    double p, TimePoint from, TimePoint to) const {
  if (threaded_) return base().request_latency_percentile_between(p, from, to);
  std::vector<Duration> samples;
  for (const auto& [at, latency] : request_log_) {
    if (at >= from && at < to) samples.push_back(latency);
  }
  return nearest_rank_percentile(std::move(samples), p);
}

void MetricsCollector::record_batch_certified(TimePoint at, Duration latency) {
  if (threaded_) {
    Event e;
    e.kind = Event::Kind::kBatchCertified;
    e.at = at;
    e.latency = latency;
    capture(std::move(e));
    return;
  }
  cert_log_.emplace_back(at, latency);
}

void MetricsCollector::record_certified_depth(TimePoint at, ProcessId node, std::size_t depth) {
  if (threaded_) {
    Event e;
    e.kind = Event::Kind::kCertifiedDepth;
    e.at = at;
    e.node = node;
    e.depth = depth;
    capture(std::move(e));
    return;
  }
  certified_depth_log_.push_back(QueueDepthSample{at, node, depth});
  max_certified_depth_ = std::max(max_certified_depth_, depth);
}

std::uint64_t MetricsCollector::batches_certified_between(TimePoint from, TimePoint to) const {
  if (threaded_) return base().batches_certified_between(from, to);
  // Certification callbacks fire in simulated-time order; the log sorts.
  const auto lo = std::lower_bound(
      cert_log_.begin(), cert_log_.end(), from,
      [](const std::pair<TimePoint, Duration>& e, TimePoint t) { return e.first < t; });
  const auto hi = std::lower_bound(
      cert_log_.begin(), cert_log_.end(), to,
      [](const std::pair<TimePoint, Duration>& e, TimePoint t) { return e.first < t; });
  return static_cast<std::uint64_t>(hi - lo);
}

std::optional<Duration> MetricsCollector::batch_cert_latency_percentile(double p) const {
  return batch_cert_latency_percentile_between(p, TimePoint::origin(), TimePoint::max());
}

std::optional<Duration> MetricsCollector::batch_cert_latency_percentile_between(
    double p, TimePoint from, TimePoint to) const {
  if (threaded_) return base().batch_cert_latency_percentile_between(p, from, to);
  std::vector<Duration> samples;
  for (const auto& [at, latency] : cert_log_) {
    if (at >= from && at < to) samples.push_back(latency);
  }
  return nearest_rank_percentile(std::move(samples), p);
}

std::uint64_t MetricsCollector::dissem_bytes_between(TimePoint from, TimePoint to) const {
  if (threaded_) return base().dissem_bytes_between(from, to);
  const auto count_until = [this](TimePoint t) -> std::uint64_t {
    const auto it = std::lower_bound(
        dissem_send_log_.begin(), dissem_send_log_.end(), t,
        [](const std::pair<TimePoint, std::uint64_t>& e, TimePoint tp) { return e.first < tp; });
    if (it == dissem_send_log_.begin()) return 0;
    return std::prev(it)->second;
  };
  return count_until(to) - count_until(from);
}

std::uint64_t MetricsCollector::msgs_between(TimePoint from, TimePoint to) const {
  if (threaded_) return base().msgs_between(from, to);
  const auto count_until = [this](TimePoint t) -> std::uint64_t {
    // Largest cumulative count with send time < t.
    const auto it = std::lower_bound(
        send_log_.begin(), send_log_.end(), t,
        [](const std::pair<TimePoint, std::uint64_t>& e, TimePoint tp) { return e.first < tp; });
    if (it == send_log_.begin()) return 0;
    return std::prev(it)->second;
  };
  const std::uint64_t upto = count_until(to);
  const std::uint64_t before = count_until(from);
  return upto - before;
}

}  // namespace lumiere::runtime
