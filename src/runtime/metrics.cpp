#include "runtime/metrics.h"

#include <algorithm>

#include "common/stats.h"
#include "dissem/messages.h"

namespace lumiere::runtime {

void MetricsCollector::charge_sends(TimePoint at, const Message& msg, std::uint64_t copies) {
  total_msgs_ += copies;
  total_bytes_ += copies * msg.wire_size();
  by_type_[msg.type_id()] += copies;
  switch (msg.msg_class()) {
    case MsgClass::kPacemaker:
      pacemaker_msgs_ += copies;
      break;
    case MsgClass::kDissem:
      dissem_msgs_ += copies;
      dissem_bytes_ += copies * msg.wire_size();
      if (msg.type_id() == dissem::kBatchAck) batch_acks_ += copies;
      dissem_send_log_.emplace_back(at, dissem_bytes_);
      break;
    case MsgClass::kConsensus:
      consensus_msgs_ += copies;
      break;
  }
  // One checkpoint carrying the post-charge total: copies of a broadcast
  // share one instant, so msgs_between() reads identically to per-copy
  // entries (only the last entry at a given time matters).
  send_log_.emplace_back(at, total_msgs_);
}

void MetricsCollector::on_send(TimePoint at, ProcessId from, ProcessId to, const Message& msg) {
  if (from >= n_ || byzantine_[from]) return;  // paper counts correct senders only
  if (from == to) return;                      // self-delivery is not network traffic
  charge_sends(at, msg, 1);
}

void MetricsCollector::on_broadcast(TimePoint at, ProcessId from, const Message& msg,
                                    std::uint32_t n) {
  if (from >= n_ || byzantine_[from]) return;  // paper counts correct senders only
  if (n <= 1) return;                          // self-delivery is not network traffic
  charge_sends(at, msg, n - 1);
}

void MetricsCollector::record_qc_formed(TimePoint at, View view, ProcessId leader) {
  if (leader >= n_ || byzantine_[leader]) return;
  decisions_.push_back(Decision{at, view, leader, total_msgs_});
}

std::size_t MetricsCollector::first_decision_index_after(TimePoint from) const {
  const auto it = std::lower_bound(
      decisions_.begin(), decisions_.end(), from,
      [](const Decision& d, TimePoint t) { return d.at < t; });
  return static_cast<std::size_t>(it - decisions_.begin());
}

std::optional<Duration> MetricsCollector::latency_to_first_decision(TimePoint gst) const {
  const std::size_t i = first_decision_index_after(gst);
  if (i >= decisions_.size()) return std::nullopt;
  return decisions_[i].at - gst;
}

std::optional<Duration> MetricsCollector::max_decision_gap(TimePoint from,
                                                           std::size_t warmup) const {
  const std::size_t start = first_decision_index_after(from) + warmup;
  if (start + 1 >= decisions_.size()) return std::nullopt;
  Duration worst = Duration::zero();
  for (std::size_t i = start + 1; i < decisions_.size(); ++i) {
    worst = std::max(worst, decisions_[i].at - decisions_[i - 1].at);
  }
  return worst;
}

std::optional<std::uint64_t> MetricsCollector::max_msg_gap(TimePoint from,
                                                           std::size_t warmup) const {
  const std::size_t start = first_decision_index_after(from) + warmup;
  if (start + 1 >= decisions_.size()) return std::nullopt;
  std::uint64_t worst = 0;
  for (std::size_t i = start + 1; i < decisions_.size(); ++i) {
    worst = std::max(worst, decisions_[i].msgs_before - decisions_[i - 1].msgs_before);
  }
  return worst;
}

std::optional<std::uint64_t> MetricsCollector::msgs_to_first_decision(TimePoint gst) const {
  const std::size_t i = first_decision_index_after(gst);
  if (i >= decisions_.size()) return std::nullopt;
  return decisions_[i].msgs_before - msgs_between(TimePoint::origin(), gst);
}

void MetricsCollector::mark_regime(TimePoint at, std::string label) {
  regime_marks_.emplace_back(at, std::move(label));
}

std::uint64_t MetricsCollector::decisions_between(TimePoint from, TimePoint to) const {
  const std::size_t lo = first_decision_index_after(from);
  const std::size_t hi = first_decision_index_after(to);
  return hi - lo;
}

std::optional<Duration> MetricsCollector::max_decision_gap_between(TimePoint from,
                                                                   TimePoint to) const {
  const std::size_t lo = first_decision_index_after(from);
  const std::size_t hi = first_decision_index_after(to);
  if (lo + 1 >= hi) return std::nullopt;
  Duration worst = Duration::zero();
  for (std::size_t i = lo + 1; i < hi; ++i) {
    worst = std::max(worst, decisions_[i].at - decisions_[i - 1].at);
  }
  return worst;
}

void MetricsCollector::record_request_committed(TimePoint at, Duration latency) {
  request_log_.emplace_back(at, latency);
}

void MetricsCollector::record_queue_depth(TimePoint at, ProcessId node, std::size_t depth) {
  queue_depth_log_.push_back(QueueDepthSample{at, node, depth});
  max_queue_depth_ = std::max(max_queue_depth_, depth);
}

std::uint64_t MetricsCollector::requests_between(TimePoint from, TimePoint to) const {
  // Commit callbacks fire in simulated-time order, so the log is sorted.
  const auto lo = std::lower_bound(
      request_log_.begin(), request_log_.end(), from,
      [](const std::pair<TimePoint, Duration>& e, TimePoint t) { return e.first < t; });
  const auto hi = std::lower_bound(
      request_log_.begin(), request_log_.end(), to,
      [](const std::pair<TimePoint, Duration>& e, TimePoint t) { return e.first < t; });
  return static_cast<std::uint64_t>(hi - lo);
}

std::optional<Duration> MetricsCollector::request_latency_percentile(double p) const {
  return request_latency_percentile_between(p, TimePoint::origin(), TimePoint::max());
}

std::optional<Duration> MetricsCollector::request_latency_percentile_between(
    double p, TimePoint from, TimePoint to) const {
  std::vector<Duration> samples;
  for (const auto& [at, latency] : request_log_) {
    if (at >= from && at < to) samples.push_back(latency);
  }
  return nearest_rank_percentile(std::move(samples), p);
}

void MetricsCollector::record_batch_certified(TimePoint at, Duration latency) {
  cert_log_.emplace_back(at, latency);
}

void MetricsCollector::record_certified_depth(TimePoint at, ProcessId node, std::size_t depth) {
  certified_depth_log_.push_back(QueueDepthSample{at, node, depth});
  max_certified_depth_ = std::max(max_certified_depth_, depth);
}

std::uint64_t MetricsCollector::batches_certified_between(TimePoint from, TimePoint to) const {
  // Certification callbacks fire in simulated-time order; the log sorts.
  const auto lo = std::lower_bound(
      cert_log_.begin(), cert_log_.end(), from,
      [](const std::pair<TimePoint, Duration>& e, TimePoint t) { return e.first < t; });
  const auto hi = std::lower_bound(
      cert_log_.begin(), cert_log_.end(), to,
      [](const std::pair<TimePoint, Duration>& e, TimePoint t) { return e.first < t; });
  return static_cast<std::uint64_t>(hi - lo);
}

std::optional<Duration> MetricsCollector::batch_cert_latency_percentile(double p) const {
  return batch_cert_latency_percentile_between(p, TimePoint::origin(), TimePoint::max());
}

std::optional<Duration> MetricsCollector::batch_cert_latency_percentile_between(
    double p, TimePoint from, TimePoint to) const {
  std::vector<Duration> samples;
  for (const auto& [at, latency] : cert_log_) {
    if (at >= from && at < to) samples.push_back(latency);
  }
  return nearest_rank_percentile(std::move(samples), p);
}

std::uint64_t MetricsCollector::dissem_bytes_between(TimePoint from, TimePoint to) const {
  const auto count_until = [this](TimePoint t) -> std::uint64_t {
    const auto it = std::lower_bound(
        dissem_send_log_.begin(), dissem_send_log_.end(), t,
        [](const std::pair<TimePoint, std::uint64_t>& e, TimePoint tp) { return e.first < tp; });
    if (it == dissem_send_log_.begin()) return 0;
    return std::prev(it)->second;
  };
  return count_until(to) - count_until(from);
}

std::uint64_t MetricsCollector::msgs_between(TimePoint from, TimePoint to) const {
  const auto count_until = [this](TimePoint t) -> std::uint64_t {
    // Largest cumulative count with send time < t.
    const auto it = std::lower_bound(
        send_log_.begin(), send_log_.end(), t,
        [](const std::pair<TimePoint, std::uint64_t>& e, TimePoint tp) { return e.first < tp; });
    if (it == send_log_.begin()) return 0;
    return std::prev(it)->second;
  };
  const std::uint64_t upto = count_until(to);
  const std::uint64_t before = count_until(from);
  return upto - before;
}

}  // namespace lumiere::runtime
