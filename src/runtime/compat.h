// DEPRECATED construction shim — new code should use ScenarioBuilder
// (runtime/scenario.h) and registry names (runtime/registry.h) directly.
//
// This header preserves the original flat ClusterOptions surface (with its
// PacemakerKind/CoreKind enums) for downstream code written against the
// pre-registry API. It is a thin forwarding layer: to_builder() maps every
// legacy field onto the ScenarioBuilder equivalent, so the two construction
// paths cannot drift apart. Nothing else in the library references these
// types.
#pragma once

#include "runtime/scenario.h"

namespace lumiere::runtime {

/// Legacy protocol selectors. The registry names (to_string) are the
/// canonical identifiers now.
enum class PacemakerKind {
  kRoundRobin,
  kCogsworth,
  kNaorKeidar,
  kRareSync,
  kLp22,
  kFever,
  kBasicLumiere,
  kLumiere,
};

/// The ProtocolRegistry name for `kind`.
[[nodiscard]] const char* to_string(PacemakerKind kind);

enum class CoreKind { kSimpleView, kChainedHotStuff, kHotStuff2 };

[[nodiscard]] const char* to_string(CoreKind kind);

/// The original flat, homogeneous-cluster options struct.
struct [[deprecated("use runtime::ScenarioBuilder")]] ClusterOptions {
  ProtocolParams params = ProtocolParams::for_n(4, Duration::millis(10));
  PacemakerKind pacemaker = PacemakerKind::kLumiere;
  CoreKind core = CoreKind::kSimpleView;
  TimePoint gst = TimePoint::origin();
  std::shared_ptr<sim::DelayPolicy> delay;
  std::uint64_t seed = 1;
  Duration gamma = Duration::zero();
  Duration join_stagger = Duration::zero();
  std::int64_t drift_ppm_max = 0;
  adversary::BehaviorFactory behavior_for;
  bool lumiere_enforce_qc_deadline = true;
  bool lumiere_delta_wait = true;
  Duration view_timeout = Duration::zero();
  std::uint32_t fever_tenure = 2;
  PayloadProvider workload;
};

#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
/// Forwards the legacy options into the one construction API; build a
/// cluster with `Cluster cluster(to_builder(options))`.
[[nodiscard]] ScenarioBuilder to_builder(const ClusterOptions& options);
#pragma GCC diagnostic pop

}  // namespace lumiere::runtime
