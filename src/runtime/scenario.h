// ScenarioBuilder: one construction API for every deployment shape.
//
// A scenario = protocol params + an adversary (delays, GST, behaviors) +
// one protocol stack per node + a transport. The builder composes
// cluster-wide defaults with per-node overrides, so heterogeneous
// deployments (mixed pacemakers, per-node drift / join time / behavior)
// and sim-vs-TCP parity are expressed through the same few lines:
//
//   ScenarioBuilder builder;
//   builder.params(ProtocolParams::for_n(4, Duration::millis(10)))
//       .pacemaker("lumiere")
//       .core("chained-hotstuff")
//       .seed(7);
//   builder.node(2).pacemaker("fever").drift_ppm(200);   // override node 2
//   Cluster cluster(builder.scenario());                 // or builder.build()
//   cluster.run_for(Duration::seconds(10));
//
// Protocol names resolve through the ProtocolRegistry (runtime/registry.h);
// validate() reports every configuration error with the node it applies to.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "adversary/behaviors.h"
#include "dissem/spec.h"
#include "obs/spec.h"
#include "runtime/pipeline.h"
#include "runtime/registry.h"
#include "sim/delay_policy.h"
#include "sim/fault_schedule.h"
#include "sim/topology.h"
#include "workload/spec.h"

namespace lumiere::runtime {

class Cluster;

/// Behavior is move-only, so specs carry a thunk instead of an instance.
using BehaviorThunk = std::function<std::unique_ptr<adversary::Behavior>()>;

/// Which MessageTransport implementation carries the cluster's traffic.
enum class TransportKind {
  kSim,  ///< sim::Network — deterministic, adversary-controlled (default).
  kTcp,  ///< transport::TcpTransportAdapter — real frames over localhost,
         ///< one thread per node, wall-clock timers.
};

[[nodiscard]] const char* to_string(TransportKind kind);

/// One node's fully resolved construction spec.
struct NodeSpec {
  ProtocolConfig protocol;
  TimePoint join_time = TimePoint::origin();
  std::int64_t clock_drift_ppm = 0;
  PayloadProvider payload_provider;
  /// Client-driven workload for this node (cluster default unless
  /// overridden); a per-node payload override disables it instead.
  std::optional<workload::WorkloadSpec> workload;
  BehaviorThunk behavior;  ///< never null after ScenarioBuilder::scenario().
};

/// A fully resolved deployment description (ScenarioBuilder's output and
/// Cluster's input). `nodes.size() == params.n`.
struct Scenario {
  ProtocolParams params = ProtocolParams::for_n(4, Duration::millis(10));
  /// Everything-determining seed (leader schedules, keys, delay draws).
  std::uint64_t seed = 1;
  TransportKind transport = TransportKind::kSim;

  /// Authenticator scheme registry name (crypto/authenticator.h). The
  /// default is the zero-cost sim scheme every golden digest pins;
  /// schemes with real verify cost pair naturally with `pipeline`.
  std::string auth_scheme = crypto::kDefaultScheme;

  /// Staged decode+verify worker pool per node (TCP transport only;
  /// default off — the deterministic sim path never runs one).
  PipelineSpec pipeline;

  /// Global Stabilization Time (sim transport only): before it the
  /// adversary's proposed delays apply unclamped up to GST + Delta; after
  /// it every message obeys the Delta bound.
  TimePoint gst = TimePoint::origin();
  /// The adversary's delay policy (sim transport only; nullptr = worst
  /// permitted: every message arrives exactly at max(GST, t) + Delta).
  std::shared_ptr<sim::DelayPolicy> delay;

  /// First localhost port (TCP transport only); node i listens on
  /// tcp_base_port + i.
  std::uint16_t tcp_base_port = 0;

  /// Scripted network/membership events, sorted by time (stable: events
  /// declared at the same instant fire in declaration order). Executed by
  /// the sim event loop; partitions and crashes also have a best-effort
  /// realtime analogue on the TCP transport.
  sim::FaultSchedule schedule;
  /// The topology preset `delay` was resolved from (empty = none); kept
  /// for display.
  std::string topology;

  /// Data-dissemination layer (src/dissem/): when set, every workload
  /// node runs a Disseminator and proposals order certified batch
  /// references instead of inline payloads. Requires the client-driven
  /// workload. Absent = legacy inline batches (the default; all goldens
  /// pin this mode).
  std::optional<dissem::DissemSpec> dissem;

  /// Observability (src/obs/): the view-sync span tracer (default-on —
  /// passive, golden digests are byte-identical either way), completed-
  /// span/trace-log capacities, and the per-node status endpoints
  /// (status_base_port, TCP transport only).
  obs::ObsSpec obs;

  std::vector<NodeSpec> nodes;
};

class ScenarioBuilder {
 public:
  /// Per-node override block, obtained from ScenarioBuilder::node(id).
  /// Unset fields inherit the cluster-wide defaults.
  class NodeTweak {
   public:
    NodeTweak& pacemaker(std::string name);
    NodeTweak& core(std::string name);
    NodeTweak& gamma(Duration gamma);
    NodeTweak& lumiere(LumiereOptions options);
    NodeTweak& fever(FeverOptions options);
    NodeTweak& view_timeout(Duration timeout);
    NodeTweak& join_time(TimePoint at);
    NodeTweak& drift_ppm(std::int64_t ppm);
    NodeTweak& behavior(BehaviorThunk make);
    NodeTweak& payload(PayloadProvider provider);
    NodeTweak& workload(workload::WorkloadSpec spec);

   private:
    friend class ScenarioBuilder;
    std::optional<std::string> pacemaker_;
    std::optional<std::string> core_;
    std::optional<Duration> gamma_;
    std::optional<LumiereOptions> lumiere_;
    std::optional<FeverOptions> fever_;
    std::optional<Duration> view_timeout_;
    std::optional<TimePoint> join_time_;
    std::optional<std::int64_t> drift_ppm_;
    BehaviorThunk behavior_;
    PayloadProvider payload_;
    std::optional<workload::WorkloadSpec> workload_;
  };

  ScenarioBuilder() = default;

  // ---- cluster-wide defaults (every node inherits unless overridden) ----
  ScenarioBuilder& params(ProtocolParams params);
  ScenarioBuilder& pacemaker(std::string name);
  ScenarioBuilder& core(std::string name);
  ScenarioBuilder& gamma(Duration gamma);
  ScenarioBuilder& lumiere(LumiereOptions options);
  ScenarioBuilder& fever(FeverOptions options);
  ScenarioBuilder& view_timeout(Duration timeout);
  ScenarioBuilder& relay_timeout(Duration timeout);
  ScenarioBuilder& seed(std::uint64_t seed);
  /// Selects the authenticator scheme by registry name
  /// (crypto::scheme_names()); validate() rejects unknown names.
  ScenarioBuilder& auth_scheme(std::string name);
  /// Enables the per-node staged verification pipeline (runtime/pipeline.h).
  /// TCP transport only — the sim transport is single-threaded by design.
  ScenarioBuilder& pipeline(PipelineSpec spec);
  ScenarioBuilder& workload(PayloadProvider provider);
  /// Client-driven workload (src/workload/): drivers, bounded mempools
  /// and end-to-end latency accounting on every node. Mutually exclusive
  /// with the raw PayloadProvider form above.
  ScenarioBuilder& workload(workload::WorkloadSpec spec);
  /// Enables the data-dissemination layer (src/dissem/): batches stream
  /// and certify beneath consensus, proposals carry (batch_id, cert)
  /// references, committed references resolve (fetch-on-miss) before
  /// delivery. Requires the client-driven workload form above.
  ScenarioBuilder& dissemination(dissem::DissemSpec spec = {});
  /// Enables block sync (src/sync/): a commit walk that wedges on a
  /// missing ancestor fetches it from peers by hash and resumes instead
  /// of stalling (equivocation victims, restarted replicas). Default
  /// off — goldens pin the no-sync execution byte-identically.
  ScenarioBuilder& block_sync(bool on = true);
  /// Observability knobs (src/obs/): span tracer on/off + capacities and
  /// the per-node status endpoints. The tracer defaults on even without
  /// this call; status endpoints need the TCP transport.
  ScenarioBuilder& observability(obs::ObsSpec spec);
  /// Behavior assignment; default all-honest.
  ScenarioBuilder& behaviors(adversary::BehaviorFactory factory);

  // ---- the adversary's environment (sim transport) ----
  ScenarioBuilder& gst(TimePoint gst);
  ScenarioBuilder& delay(std::shared_ptr<sim::DelayPolicy> policy);
  /// Processors join (lc = 0) at uniform random times in [origin,
  /// stagger] — the paper's arbitrary pre-GST desynchronization. Zero =
  /// synchronized start. A per-node join_time override wins.
  ScenarioBuilder& join_stagger(Duration stagger);
  /// Bounded clock drift: each processor gets a deterministic rate skew
  /// uniform in [-max, +max] ppm. Zero = perfect clocks.
  ScenarioBuilder& drift_ppm_max(std::int64_t max);

  // ---- the fault schedule (scripted network/membership events) ----
  // Events must be declared in timeline order (non-decreasing times);
  // validate() rejects out-of-order scripts so a scenario reads
  // top-to-bottom as a timeline. Multiple events may share one instant
  // (they fire in declaration order).

  /// From `at`, links between distinct `groups` are cut; cross-cut
  /// traffic parks until heal(). Nodes in no group keep all their links.
  ScenarioBuilder& partition(std::vector<std::vector<ProcessId>> groups, TimePoint at);
  /// From `at`, the directed links from any node in `from` to any node in
  /// `to` are cut ONE-WAY (that traffic parks until heal(); the reverse
  /// direction flows). Independent of the symmetric partition layer; a
  /// node may appear on both sides (isolating its outbound half).
  ScenarioBuilder& asym_partition(std::vector<ProcessId> from, std::vector<ProcessId> to,
                                  TimePoint at);
  /// Removes the active partitions (symmetric and asymmetric) at `at` and
  /// releases parked traffic. Healing with no active partition is a
  /// deterministic no-op.
  ScenarioBuilder& heal(TimePoint at);
  /// From `at`, `node` runs the behavior named `behavior`
  /// (adversary::make_behavior; "honest" scripts a repentant node). The
  /// node counts against the Byzantine budget for the whole run — metrics
  /// and honest_ids() treat ever-Byzantine as Byzantine.
  ScenarioBuilder& behavior_change(ProcessId node, std::string behavior, TimePoint at);
  /// From `at`, `node`'s traffic is cut both ways and lost (the process
  /// is down; local state persists — see sim/fault_schedule.h).
  ScenarioBuilder& crash(ProcessId node, TimePoint at);
  /// Readmits a crashed `node` at `at`; it catches up through the
  /// protocol.
  ScenarioBuilder& recover(ProcessId node, TimePoint at);
  /// Churn: `node` leaves the cluster at `leave_at` and rejoins at
  /// `rejoin_at` (crash/recover semantics, recorded distinctly in traces).
  ScenarioBuilder& churn(ProcessId node, TimePoint leave_at, TimePoint rejoin_at);
  /// Swaps the adversary's global delay policy at `at` (sim only;
  /// nullptr = worst permitted).
  ScenarioBuilder& delay_change(std::shared_ptr<sim::DelayPolicy> policy, TimePoint at);
  /// Overrides the directed link from->to with `policy` at `at` (sim
  /// only; nullptr restores the global policy for that link).
  ScenarioBuilder& link_delay(ProcessId from, ProcessId to,
                              std::shared_ptr<sim::DelayPolicy> policy, TimePoint at);
  /// Named WAN topology preset ("lan", "wan3", "wan5"): per-link delays
  /// from a region map (sim only; mutually exclusive with delay()).
  ScenarioBuilder& topology(std::string preset);

  // ---- transport selection ----
  ScenarioBuilder& transport_sim();
  ScenarioBuilder& transport_tcp(std::uint16_t base_port);

  // ---- per-node overrides ----
  NodeTweak& node(ProcessId id);

  /// Every configuration error, one actionable message each; empty =
  /// valid. scenario()/build() call this and throw on the first failure.
  [[nodiscard]] std::vector<std::string> validate() const;

  /// Resolves defaults + overrides into the final per-node specs. Throws
  /// std::invalid_argument listing every validate() error.
  [[nodiscard]] Scenario scenario() const;

  /// Convenience: Cluster construction in one call.
  [[nodiscard]] std::unique_ptr<Cluster> build() const;

 private:
  ProtocolParams params_ = ProtocolParams::for_n(4, Duration::millis(10));
  ProtocolConfig protocol_;
  std::uint64_t seed_ = 1;
  TimePoint gst_ = TimePoint::origin();
  std::shared_ptr<sim::DelayPolicy> delay_;
  Duration join_stagger_ = Duration::zero();
  std::int64_t drift_ppm_max_ = 0;
  adversary::BehaviorFactory behavior_for_;
  PayloadProvider workload_;
  std::optional<workload::WorkloadSpec> workload_spec_;
  std::optional<dissem::DissemSpec> dissem_;
  obs::ObsSpec obs_;
  std::string auth_scheme_ = crypto::kDefaultScheme;
  PipelineSpec pipeline_;
  TransportKind transport_ = TransportKind::kSim;
  std::uint16_t tcp_base_port_ = 0;
  std::map<ProcessId, NodeTweak> tweaks_;

  void push_event(sim::FaultEvent event, TimePoint declared_at);
  sim::FaultSchedule schedule_;
  /// One (time, description) per builder call, in call order — the
  /// timeline validate() checks for monotonicity (churn spans a window,
  /// so its rejoin event is exempt from the declaration-order rule).
  std::vector<std::pair<TimePoint, std::string>> declared_;
  std::string topology_;
};

}  // namespace lumiere::runtime
