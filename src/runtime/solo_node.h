// SoloNodeRuntime: ONE replica process's slice of a TCP cluster.
//
// The in-process Cluster (runtime/cluster.h) owns all n nodes and drives
// them on n threads — ideal for tests, but every node still dies with the
// harness. The soak harness (tools/soak) instead runs n separate
// lumiere_node processes, each hosting exactly one node; kill -9 then
// restart is then a *real* crash-recovery: the process loses all state
// and must rejoin over the wire, re-sync views and resume committing.
//
// Construction resolves the shared ClusterSpec (runtime/spec_io.h)
// through the same ScenarioBuilder path as Cluster, then builds only
// nodes[id]'s stack: private Simulator, TcpTransportAdapter (with
// reconnect backoff + runtime shaping), workload engine, optional verify
// pipeline, span tracer, status board and the status/admin endpoint.
// Because every process resolves the same spec, seeds, keys and leader
// schedules agree byte-for-byte with no runtime coordination.
#pragma once

#include <atomic>
#include <memory>

#include "crypto/authenticator.h"
#include "obs/admin.h"
#include "obs/status.h"
#include "obs/status_server.h"
#include "obs/tracer.h"
#include "runtime/node.h"
#include "runtime/pipeline.h"
#include "runtime/spec_io.h"
#include "sim/simulator.h"
#include "transport/realtime.h"
#include "workload/engine.h"

namespace lumiere::runtime {

class SoloNodeRuntime {
 public:
  struct Options {
    /// Admin CRASH performs ::_exit (abrupt, no destructors — the point
    /// of the soak's crash-recovery probe). Default off so an in-process
    /// test cluster of SoloNodeRuntimes can never kill its harness.
    bool allow_crash = false;
  };

  /// Builds node `id`'s stack from the cluster-wide spec. Throws
  /// std::invalid_argument (bad spec) or std::runtime_error (ports).
  SoloNodeRuntime(const ClusterSpec& spec, ProcessId id, Options options);
  SoloNodeRuntime(const ClusterSpec& spec, ProcessId id)
      : SoloNodeRuntime(spec, id, Options()) {}
  ~SoloNodeRuntime();

  SoloNodeRuntime(const SoloNodeRuntime&) = delete;
  SoloNodeRuntime& operator=(const SoloNodeRuntime&) = delete;

  /// Starts the workload + protocol (idempotent); run_for calls it lazily.
  void start();

  /// Drives the node for `wall` milliseconds of real time on the calling
  /// thread (1 simulated microsecond = 1 wall microsecond). Admin
  /// commands submitted by status sessions apply inside this call, on
  /// this thread.
  void run_for(std::chrono::milliseconds wall);

  [[nodiscard]] ProcessId id() const noexcept { return id_; }
  [[nodiscard]] Node& node() noexcept { return *node_; }
  [[nodiscard]] const Node& node() const noexcept { return *node_; }
  [[nodiscard]] std::uint16_t status_port() const noexcept {
    return status_server_ != nullptr ? status_server_->port() : 0;
  }
  /// The same snapshot the status endpoint serves.
  [[nodiscard]] obs::NodeStatus status() const;

 private:
  [[nodiscard]] std::string apply_admin(const obs::AdminCommand& command);

  ClusterSpec spec_;
  ProcessId id_;
  Options options_;
  bool started_ = false;

  std::unique_ptr<crypto::Authenticator> auth_;
  std::unique_ptr<obs::SyncTracer> tracer_;
  std::unique_ptr<obs::StatusBoard> board_;
  std::unique_ptr<sim::Simulator> sim_;
  std::unique_ptr<transport::TcpTransportAdapter> adapter_;
  std::unique_ptr<workload::NodeWorkload> workload_;
  std::unique_ptr<Node> node_;
  std::unique_ptr<transport::RealtimeDriver> driver_;
  std::unique_ptr<VerifyPipeline> pipeline_;
  std::unique_ptr<obs::AdminGate> admin_gate_;
  /// Last: its session threads snapshot everything above.
  std::unique_ptr<obs::StatusServer> status_server_;
};

}  // namespace lumiere::runtime
