#include "runtime/pipeline.h"

#include <utility>

#include "common/assert.h"

namespace lumiere::runtime {

namespace {

/// Runs every claim a message reports through the scheme and keeps the
/// fingerprints of the ones that passed. Failures are dropped silently:
/// the consensus core re-checks inline and rejects them itself.
class ClaimChecker final : public AuthClaimSink {
 public:
  ClaimChecker(const crypto::Authenticator& auth, std::vector<crypto::Digest>& out)
      : auth_(auth), out_(out) {}

  void share(const crypto::Digest& message, const crypto::PartialSig& share) override {
    ++checked_;
    if (auth_.check_share(message, share)) {
      ++passed_;
      out_.push_back(crypto::share_fingerprint(message, share));
    }
  }

  void aggregate(const crypto::ThresholdSig& sig) override {
    ++checked_;
    if (auth_.check_aggregate(sig)) {
      ++passed_;
      out_.push_back(crypto::aggregate_fingerprint(sig));
    }
  }

  [[nodiscard]] std::uint64_t checked() const noexcept { return checked_; }
  [[nodiscard]] std::uint64_t passed() const noexcept { return passed_; }

 private:
  const crypto::Authenticator& auth_;
  std::vector<crypto::Digest>& out_;
  std::uint64_t checked_ = 0;
  std::uint64_t passed_ = 0;
};

}  // namespace

VerifyPipeline::VerifyPipeline(const crypto::Authenticator* auth, MessageCodec codec,
                               PipelineSpec spec)
    : auth_(auth), codec_(std::move(codec)), spec_(spec) {
  LUMIERE_ASSERT(auth != nullptr);
  LUMIERE_ASSERT(spec_.workers >= 1);
  LUMIERE_ASSERT(spec_.queue_capacity >= 1);
}

VerifyPipeline::~VerifyPipeline() { stop(); }

void VerifyPipeline::start() {
  {
    std::lock_guard<std::mutex> lock(ingress_mu_);
    if (running_) return;
    running_ = true;
  }
  workers_.reserve(spec_.workers);
  for (std::uint32_t i = 0; i < spec_.workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

void VerifyPipeline::stop() {
  {
    std::lock_guard<std::mutex> lock(ingress_mu_);
    if (!running_ && workers_.empty()) return;
    running_ = false;
    ingress_.clear();  // a crashed process loses its unprocessed input
  }
  ingress_cv_.notify_all();
  space_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
  workers_.clear();
}

bool VerifyPipeline::running() const {
  std::lock_guard<std::mutex> lock(ingress_mu_);
  return running_;
}

bool VerifyPipeline::submit(ProcessId from, std::span<const std::uint8_t> payload) {
  std::unique_lock<std::mutex> lock(ingress_mu_);
  if (!running_) return false;
  if (ingress_.size() >= spec_.queue_capacity) {
    {
      std::lock_guard<std::mutex> slock(stats_mu_);
      ++stats_.submit_blocks;
    }
    space_cv_.wait(lock,
                   [this] { return !running_ || ingress_.size() < spec_.queue_capacity; });
    if (!running_) return false;
  }
  ingress_.push_back(Frame{from, std::vector<std::uint8_t>(payload.begin(), payload.end())});
  {
    std::lock_guard<std::mutex> slock(stats_mu_);
    ++stats_.frames_in;
  }
  lock.unlock();
  ingress_cv_.notify_one();
  return true;
}

bool VerifyPipeline::try_submit(ProcessId from, std::span<const std::uint8_t> payload) {
  {
    std::lock_guard<std::mutex> lock(ingress_mu_);
    if (!running_ || ingress_.size() >= spec_.queue_capacity) return false;
    ingress_.push_back(Frame{from, std::vector<std::uint8_t>(payload.begin(), payload.end())});
  }
  {
    std::lock_guard<std::mutex> slock(stats_mu_);
    ++stats_.frames_in;
  }
  ingress_cv_.notify_one();
  return true;
}

void VerifyPipeline::worker_loop() {
  while (true) {
    Frame frame;
    {
      std::unique_lock<std::mutex> lock(ingress_mu_);
      ingress_cv_.wait(lock, [this] { return !running_ || !ingress_.empty(); });
      if (!running_) return;
      frame = std::move(ingress_.front());
      ingress_.pop_front();
    }
    space_cv_.notify_one();
    process(std::move(frame));
  }
}

void VerifyPipeline::process(Frame frame) {
  const MessagePtr msg = codec_.decode(frame.payload);
  if (msg == nullptr) {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.decode_failures;
    return;
  }
  Result result;
  result.from = frame.from;
  result.msg = msg;
  ClaimChecker checker(*auth_, result.fingerprints);
  msg->collect_auth(checker);
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats_.claims_checked += checker.checked();
    stats_.claims_passed += checker.passed();
    ++stats_.frames_out;
  }
  std::lock_guard<std::mutex> lock(egress_mu_);
  egress_.push_back(std::move(result));
}

VerifyPipeline::Stats VerifyPipeline::stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return stats_;
}

}  // namespace lumiere::runtime
