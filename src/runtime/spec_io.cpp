#include "runtime/spec_io.h"

#include <algorithm>
#include <array>
#include <span>
#include <sstream>

#include "adversary/behaviors.h"

namespace lumiere::runtime {

namespace {

constexpr const char* kSpecHeader = "lumiere-scenario v1";
constexpr const char* kLedgerHeader = "ledger v1";

std::string hex_encode(std::span<const std::uint8_t> bytes) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out;
  out.reserve(bytes.size() * 2);
  for (const std::uint8_t b : bytes) {
    out.push_back(kDigits[b >> 4]);
    out.push_back(kDigits[b & 0xF]);
  }
  return out;
}

int hex_nibble(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

bool hex_decode(const std::string& text, std::vector<std::uint8_t>& out) {
  if (text.size() % 2 != 0) return false;
  out.clear();
  out.reserve(text.size() / 2);
  for (std::size_t i = 0; i < text.size(); i += 2) {
    const int hi = hex_nibble(text[i]);
    const int lo = hex_nibble(text[i + 1]);
    if (hi < 0 || lo < 0) return false;
    out.push_back(static_cast<std::uint8_t>((hi << 4) | lo));
  }
  return true;
}

std::optional<workload::Arrival> parse_arrival(const std::string& name) {
  if (name == "closed-loop") return workload::Arrival::kClosedLoop;
  if (name == "constant") return workload::Arrival::kConstant;
  if (name == "poisson") return workload::Arrival::kPoisson;
  if (name == "bursty") return workload::Arrival::kBursty;
  return std::nullopt;
}

}  // namespace

std::string serialize(const ClusterSpec& spec) {
  std::ostringstream out;
  out << kSpecHeader << "\n";
  out << "n " << spec.n << "\n";
  out << "delta_us " << spec.delta_us << "\n";
  out << "x " << spec.x << "\n";
  out << "pacemaker " << spec.pacemaker << "\n";
  out << "core " << spec.core << "\n";
  out << "seed " << spec.seed << "\n";
  out << "auth_scheme " << spec.auth_scheme << "\n";
  out << "tcp_base_port " << spec.tcp_base_port << "\n";
  out << "status_base_port " << spec.status_base_port << "\n";
  if (!spec.admin_token.empty()) out << "admin_token " << spec.admin_token << "\n";
  out << "pipeline " << (spec.pipeline ? 1 : 0) << "\n";
  out << "pipeline_workers " << spec.pipeline_workers << "\n";
  out << "pipeline_queue " << spec.pipeline_queue << "\n";
  out << "dissem " << (spec.dissem ? 1 : 0) << "\n";
  out << "block_sync " << (spec.block_sync ? 1 : 0) << "\n";
  out << "arrival " << spec.arrival << "\n";
  out << "clients_per_node " << spec.clients_per_node << "\n";
  out << "rate_per_client " << spec.rate_per_client << "\n";
  out << "in_flight " << spec.in_flight << "\n";
  out << "request_bytes " << spec.request_bytes << "\n";
  for (const auto& [node, name] : spec.behaviors) {
    out << "behavior " << node << " " << name << "\n";
  }
  out << "end\n";
  return out.str();
}

std::optional<ClusterSpec> parse_cluster_spec(const std::string& text, std::string& error) {
  std::istringstream in(text);
  std::string line;
  if (!std::getline(in, line) || line != kSpecHeader) {
    error = "spec: missing header '" + std::string(kSpecHeader) + "'";
    return std::nullopt;
  }
  ClusterSpec spec;
  bool terminated = false;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    if (line == "end") {
      terminated = true;
      break;
    }
    std::istringstream fields(line);
    std::string key;
    fields >> key;
    bool ok = true;
    if (key == "n") {
      ok = static_cast<bool>(fields >> spec.n);
    } else if (key == "delta_us") {
      ok = static_cast<bool>(fields >> spec.delta_us) && spec.delta_us > 0;
    } else if (key == "x") {
      ok = static_cast<bool>(fields >> spec.x);
    } else if (key == "pacemaker") {
      ok = static_cast<bool>(fields >> spec.pacemaker);
    } else if (key == "core") {
      ok = static_cast<bool>(fields >> spec.core);
    } else if (key == "seed") {
      ok = static_cast<bool>(fields >> spec.seed);
    } else if (key == "auth_scheme") {
      ok = static_cast<bool>(fields >> spec.auth_scheme);
    } else if (key == "tcp_base_port") {
      ok = static_cast<bool>(fields >> spec.tcp_base_port);
    } else if (key == "status_base_port") {
      ok = static_cast<bool>(fields >> spec.status_base_port);
    } else if (key == "admin_token") {
      ok = static_cast<bool>(fields >> spec.admin_token);
    } else if (key == "pipeline") {
      int v = 0;
      ok = static_cast<bool>(fields >> v);
      spec.pipeline = v != 0;
    } else if (key == "pipeline_workers") {
      ok = static_cast<bool>(fields >> spec.pipeline_workers);
    } else if (key == "pipeline_queue") {
      ok = static_cast<bool>(fields >> spec.pipeline_queue);
    } else if (key == "dissem") {
      int v = 0;
      ok = static_cast<bool>(fields >> v);
      spec.dissem = v != 0;
    } else if (key == "block_sync") {
      int v = 0;
      ok = static_cast<bool>(fields >> v);
      spec.block_sync = v != 0;
    } else if (key == "arrival") {
      ok = static_cast<bool>(fields >> spec.arrival) &&
           parse_arrival(spec.arrival).has_value();
    } else if (key == "clients_per_node") {
      ok = static_cast<bool>(fields >> spec.clients_per_node);
    } else if (key == "rate_per_client") {
      ok = static_cast<bool>(fields >> spec.rate_per_client);
    } else if (key == "in_flight") {
      ok = static_cast<bool>(fields >> spec.in_flight);
    } else if (key == "request_bytes") {
      ok = static_cast<bool>(fields >> spec.request_bytes);
    } else if (key == "behavior") {
      ProcessId node = kNoProcess;
      std::string name;
      ok = static_cast<bool>(fields >> node >> name) && adversary::has_behavior(name);
      if (ok) spec.behaviors[node] = name;
    } else {
      error = "spec: unknown key '" + key + "'";
      return std::nullopt;
    }
    if (!ok) {
      error = "spec: bad value for '" + key + "'";
      return std::nullopt;
    }
  }
  if (!terminated) {
    error = "spec: missing 'end' terminator (truncated?)";
    return std::nullopt;
  }
  for (const auto& [node, name] : spec.behaviors) {
    if (node >= spec.n) {
      error = "spec: behavior node " + std::to_string(node) + " out of range";
      return std::nullopt;
    }
  }
  return spec;
}

ScenarioBuilder to_builder(const ClusterSpec& spec) {
  ScenarioBuilder builder;
  builder.params(ProtocolParams::for_n(spec.n, Duration(spec.delta_us), spec.x))
      .pacemaker(spec.pacemaker)
      .core(spec.core)
      .seed(spec.seed)
      .auth_scheme(spec.auth_scheme)
      .transport_tcp(spec.tcp_base_port);
  if (spec.pipeline) {
    PipelineSpec pipeline;
    pipeline.enabled = true;
    pipeline.workers = spec.pipeline_workers;
    pipeline.queue_capacity = spec.pipeline_queue;
    builder.pipeline(pipeline);
  }
  workload::WorkloadSpec workload;
  workload.arrival = *parse_arrival(spec.arrival);
  workload.clients_per_node = spec.clients_per_node;
  workload.rate_per_client = spec.rate_per_client;
  workload.in_flight = spec.in_flight;
  workload.request_bytes = spec.request_bytes;
  builder.workload(workload);
  if (spec.dissem) builder.dissemination();
  if (spec.block_sync) builder.block_sync();
  if (spec.status_base_port != 0) {
    obs::ObsSpec obs;
    obs.status_base_port = spec.status_base_port;
    obs.admin_token = spec.admin_token;
    builder.observability(obs);
  }
  for (const auto& [node, name] : spec.behaviors) {
    builder.node(node).behavior([name] { return adversary::make_behavior(name); });
  }
  return builder;
}

std::string render_ledger(const consensus::Ledger& ledger) {
  std::ostringstream out;
  out << kLedgerHeader << " " << ledger.size() << "\n";
  for (const consensus::CommittedEntry& entry : ledger.entries()) {
    out << "entry " << entry.view << " " << entry.hash.hex() << " "
        << hex_encode(entry.payload) << "\n";
  }
  out << "END\n";
  return out.str();
}

std::optional<std::vector<LedgerRecord>> parse_ledger(const std::string& text,
                                                      std::string& error) {
  std::istringstream in(text);
  std::string word;
  std::size_t count = 0;
  {
    std::string header_tag, header_version;
    if (!(in >> header_tag >> header_version >> count) || header_tag != "ledger" ||
        header_version != "v1") {
      error = "ledger: missing '" + std::string(kLedgerHeader) + " <count>' header";
      return std::nullopt;
    }
  }
  std::vector<LedgerRecord> records;
  records.reserve(count);
  bool terminated = false;
  while (in >> word) {
    if (word == "END") {
      terminated = true;
      break;
    }
    if (word != "entry") {
      error = "ledger: expected 'entry' or 'END', got '" + word + "'";
      return std::nullopt;
    }
    LedgerRecord record;
    std::string hash_hex, payload_hex;
    if (!(in >> record.view >> hash_hex)) {
      error = "ledger: truncated entry";
      return std::nullopt;
    }
    // The payload may be empty, in which case the line ends after the
    // hash — operator>> would swallow the next line's "entry". Read the
    // remainder of the line instead.
    std::string rest;
    std::getline(in, rest);
    std::istringstream rest_in(rest);
    rest_in >> payload_hex;
    std::vector<std::uint8_t> hash_bytes;
    if (!hex_decode(hash_hex, hash_bytes) || hash_bytes.size() != crypto::Digest::kSize) {
      error = "ledger: bad hash hex";
      return std::nullopt;
    }
    std::array<std::uint8_t, crypto::Digest::kSize> hash_array{};
    std::copy(hash_bytes.begin(), hash_bytes.end(), hash_array.begin());
    record.hash = crypto::Digest(hash_array);
    if (!payload_hex.empty() && !hex_decode(payload_hex, record.payload)) {
      error = "ledger: bad payload hex";
      return std::nullopt;
    }
    records.push_back(std::move(record));
  }
  if (!terminated) {
    error = "ledger: missing END terminator (truncated?)";
    return std::nullopt;
  }
  if (records.size() != count) {
    error = "ledger: header count " + std::to_string(count) + " != " +
            std::to_string(records.size()) + " entries";
    return std::nullopt;
  }
  return records;
}

}  // namespace lumiere::runtime
