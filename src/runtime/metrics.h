// Communication and latency accounting, matching Section 2's measures.
//
// The paper counts messages *sent by correct processors* and defines
// decision points t*_T as moments when some honest lead(v) produces a QC
// for view v. This collector:
//   * counts every honest-to-other send (self-delivery is not traffic),
//     bucketed by message type and by MsgClass;
//   * logs decisions (honest-leader QC formations) with the cumulative
//     message count at that instant, so any inter-decision window's cost
//     is a subtraction;
//   * derives the four Table 1 measures over a run.
//
// Threading: on the sim transport everything runs on one thread and the
// collector records directly (byte-identical to before threading
// existed). The TCP transport calls enable_threaded() — recording then
// appends raw events to sharded (mutex + vector) logs stamped with a
// global sequence number, and every query first replays the events,
// sorted by (time, seq), into an internal plain collector. Record from
// any driver thread; query between run_for slices.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/time.h"
#include "common/types.h"
#include "sim/network.h"

namespace lumiere::runtime {

class MetricsCollector final : public sim::NetworkObserver {
 public:
  MetricsCollector(std::uint32_t n, std::vector<bool> byzantine)
      : n_(n), byzantine_(std::move(byzantine)) {
    LUMIERE_ASSERT(byzantine_.size() == n_);
  }

  /// Switches to thread-safe capture (sharded event logs, merged on
  /// read). Call once, before any recording; the TCP Cluster does this at
  /// construction. Queries afterwards replay the sorted event stream into
  /// an internal plain collector, so derived measures are computed by
  /// exactly the same code as the single-threaded path.
  ///
  /// Lifetime footgun, by design-and-asserted: references returned by the
  /// log accessors (decisions(), queue_depth_log(), regime_marks(),
  /// certified_depth_log(), ...) point into the replayed merge and are
  /// invalidated by the next query that observes new events — hold them
  /// only between run_for slices, and re-fetch after each slice. Querying
  /// *during* a slice is asserted against: the Cluster brackets its TCP
  /// driver threads with begin/end_recording_window(), and every query
  /// (they all funnel through base()) aborts while the window is open.
  void enable_threaded() { threaded_ = true; }
  [[nodiscard]] bool threaded() const noexcept { return threaded_; }

  /// Driver threads are live from here to end_recording_window():
  /// recording is safe, querying is not (asserted in base()).
  void begin_recording_window() noexcept {
    recording_live_.store(true, std::memory_order_relaxed);
  }
  void end_recording_window() noexcept {
    recording_live_.store(false, std::memory_order_relaxed);
  }
  [[nodiscard]] bool recording_window_open() const noexcept {
    return recording_live_.load(std::memory_order_relaxed);
  }

  // -- NetworkObserver -------------------------------------------------
  void on_send(TimePoint at, ProcessId from, ProcessId to, const Message& msg) override;
  void on_deliver(TimePoint, ProcessId, ProcessId, const Message&) override {}
  /// Bulk variant: one wire-size/type computation and one send-log
  /// checkpoint for all n-1 copies of a broadcast payload. Totals are
  /// identical to n-1 on_send calls.
  void on_broadcast(TimePoint at, ProcessId from, const Message& msg, std::uint32_t n) override;

  // -- decision log ------------------------------------------------------
  /// Called when node `leader` (as leader) produced a QC for `view`.
  /// Byzantine nodes' QCs are not decisions in the paper's sense.
  void record_qc_formed(TimePoint at, View view, ProcessId leader);

  struct Decision {
    TimePoint at;
    View view = -1;
    ProcessId leader = kNoProcess;
    std::uint64_t msgs_before = 0;  ///< cumulative honest sends at `at`
  };

  [[nodiscard]] const std::vector<Decision>& decisions() const { return base().decisions_; }
  [[nodiscard]] std::uint64_t total_honest_msgs() const { return base().total_msgs_; }
  [[nodiscard]] std::uint64_t total_honest_bytes() const { return base().total_bytes_; }
  [[nodiscard]] std::uint64_t count_for_type(std::uint32_t type_id) const {
    const auto& by_type = base().by_type_;
    const auto it = by_type.find(type_id);
    return it == by_type.end() ? 0 : it->second;
  }
  [[nodiscard]] std::uint64_t pacemaker_msgs() const { return base().pacemaker_msgs_; }
  [[nodiscard]] std::uint64_t consensus_msgs() const { return base().consensus_msgs_; }
  [[nodiscard]] std::uint64_t dissem_msgs() const { return base().dissem_msgs_; }
  [[nodiscard]] std::uint64_t dissem_bytes() const { return base().dissem_bytes_; }
  /// Honest block-sync messages sent (fetches + chain responses).
  [[nodiscard]] std::uint64_t sync_msgs() const { return base().sync_msgs_; }
  /// Honest availability acks sent (BatchAck copies).
  [[nodiscard]] std::uint64_t batch_acks() const { return base().batch_acks_; }
  /// Honest dissemination-layer bytes sent in [from, to) — attributable
  /// per regime window like msgs_between.
  [[nodiscard]] std::uint64_t dissem_bytes_between(TimePoint from, TimePoint to) const;

  // -- derived measures ----------------------------------------------------
  /// Decisions at or after `from` (index into decisions()).
  [[nodiscard]] std::size_t first_decision_index_after(TimePoint from) const;

  /// Time from `gst` to the first decision after it (worst-case latency
  /// sample); nullopt if none.
  [[nodiscard]] std::optional<Duration> latency_to_first_decision(TimePoint gst) const;

  /// Max time between consecutive decisions, over decisions after `from`,
  /// skipping the first `warmup` gaps (eventual worst-case latency
  /// sample). nullopt if fewer than warmup+2 decisions.
  [[nodiscard]] std::optional<Duration> max_decision_gap(TimePoint from,
                                                         std::size_t warmup = 0) const;

  /// Max honest messages between consecutive decisions after `from`,
  /// skipping `warmup` gaps (communication-per-decision sample).
  [[nodiscard]] std::optional<std::uint64_t> max_msg_gap(TimePoint from,
                                                         std::size_t warmup = 0) const;

  /// Honest messages sent from `gst` until the first decision after it
  /// (worst-case communication sample).
  [[nodiscard]] std::optional<std::uint64_t> msgs_to_first_decision(TimePoint gst) const;

  /// Honest messages sent in [from, to).
  [[nodiscard]] std::uint64_t msgs_between(TimePoint from, TimePoint to) const;

  // -- regime windows ------------------------------------------------------
  // The fault-schedule executor marks each scripted event here, so a
  // run's measures can be attributed to the network regime they occurred
  // under (before / during / after a partition, per delay era, ...).

  /// Records a regime boundary (a fault-schedule event) at `at`.
  void mark_regime(TimePoint at, std::string label);
  /// All boundaries in time order: (instant, event description).
  [[nodiscard]] const std::vector<std::pair<TimePoint, std::string>>& regime_marks() const {
    return base().regime_marks_;
  }

  /// Decisions with `from <= at < to`.
  [[nodiscard]] std::uint64_t decisions_between(TimePoint from, TimePoint to) const;
  /// Max gap between consecutive decisions that both fall in [from, to);
  /// nullopt with fewer than two decisions in the window.
  [[nodiscard]] std::optional<Duration> max_decision_gap_between(TimePoint from,
                                                                 TimePoint to) const;

  // -- client workload -----------------------------------------------------
  // End-to-end request accounting (src/workload/), fed by the Cluster on
  // the sim transport so request throughput and client latency attribute
  // to the same regime windows as the protocol measures. The TCP
  // transport aggregates per node instead (Cluster::workload_report).

  /// A tagged client request committed at `at`, `latency` after submit.
  void record_request_committed(TimePoint at, Duration latency);
  /// A proposer drained its mempool at depth `depth` (requests waiting).
  void record_queue_depth(TimePoint at, ProcessId node, std::size_t depth);

  [[nodiscard]] std::uint64_t requests_committed() const {
    return base().request_log_.size();
  }
  /// Committed requests with `from <= at < to`.
  [[nodiscard]] std::uint64_t requests_between(TimePoint from, TimePoint to) const;
  /// Nearest-rank submit -> commit latency percentile, p in (0, 1];
  /// nullopt when no request committed (in the window).
  [[nodiscard]] std::optional<Duration> request_latency_percentile(double p) const;
  [[nodiscard]] std::optional<Duration> request_latency_percentile_between(double p,
                                                                           TimePoint from,
                                                                           TimePoint to) const;
  [[nodiscard]] std::size_t max_queue_depth() const { return base().max_queue_depth_; }
  /// (instant, proposer, pending depth) per batch drain, in time order.
  struct QueueDepthSample {
    TimePoint at;
    ProcessId node = kNoProcess;
    std::size_t depth = 0;
  };
  [[nodiscard]] const std::vector<QueueDepthSample>& queue_depth_log() const {
    return base().queue_depth_log_;
  }

  // -- data dissemination --------------------------------------------------
  // Batch-availability accounting (src/dissem/), fed by the Cluster on
  // the sim transport: proof-of-availability latency at each origin plus
  // the certified-but-unordered backlog alongside queue_depth_log.

  /// A batch gathered its availability cert at `at`, `latency` after its
  /// first push.
  void record_batch_certified(TimePoint at, Duration latency);
  /// One node's certified-but-unordered reference depth sample.
  void record_certified_depth(TimePoint at, ProcessId node, std::size_t depth);

  [[nodiscard]] std::uint64_t batches_certified() const { return base().cert_log_.size(); }
  /// Certified batches with `from <= at < to`.
  [[nodiscard]] std::uint64_t batches_certified_between(TimePoint from, TimePoint to) const;
  /// Nearest-rank push -> cert latency percentile, p in (0, 1]; nullopt
  /// when no batch certified (in the window).
  [[nodiscard]] std::optional<Duration> batch_cert_latency_percentile(double p) const;
  [[nodiscard]] std::optional<Duration> batch_cert_latency_percentile_between(
      double p, TimePoint from, TimePoint to) const;
  /// (instant, node, certified-unordered depth) samples, in time order.
  [[nodiscard]] const std::vector<QueueDepthSample>& certified_depth_log() const {
    return base().certified_depth_log_;
  }
  [[nodiscard]] std::size_t max_certified_depth() const { return base().max_certified_depth_; }

 private:
  /// The shared accounting body of on_send / on_broadcast: charges
  /// `copies` identical sends of `msg` at `at`.
  void charge_sends(TimePoint at, const Message& msg, std::uint64_t copies);
  /// charge_sends with the message's properties already extracted — the
  /// form threaded replay uses (events store properties, not Message&).
  void charge_sends_raw(TimePoint at, std::uint32_t type_id, MsgClass msg_class,
                        std::uint64_t wire, std::uint64_t copies);

  /// One captured recording call (threaded mode); replayed in (at, seq)
  /// order to rebuild the exact single-threaded collector state.
  struct Event {
    enum class Kind : std::uint8_t {
      kSend,
      kQcFormed,
      kRegime,
      kRequestCommitted,
      kQueueDepth,
      kBatchCertified,
      kCertifiedDepth,
    };
    Kind kind = Kind::kSend;
    std::uint64_t seq = 0;
    TimePoint at;
    std::uint32_t type_id = 0;             // kSend
    MsgClass msg_class = MsgClass::kConsensus;
    std::uint64_t wire = 0;                // kSend: bytes per copy
    std::uint64_t copies = 0;              // kSend
    View view = -1;                        // kQcFormed
    ProcessId node = kNoProcess;           // kQcFormed leader / depth node
    std::size_t depth = 0;                 // k*Depth
    Duration latency = Duration::zero();   // kRequestCommitted / kBatchCertified
    std::string label;                     // kRegime
  };

  /// Appends one event to the calling thread's shard with a fresh global
  /// sequence number.
  void capture(Event event);
  /// The collector queries actually read: *this when single-threaded,
  /// else the replayed merge (rebuilt only when new events arrived).
  [[nodiscard]] const MetricsCollector& base() const;

  std::uint32_t n_;
  std::vector<bool> byzantine_;

  // -- threaded capture --------------------------------------------------
  bool threaded_ = false;
  std::atomic<bool> recording_live_{false};
  static constexpr std::size_t kShards = 16;
  struct Shard {
    std::mutex mu;
    std::vector<Event> events;
  };
  mutable std::array<Shard, kShards> shards_;
  std::atomic<std::uint64_t> seq_{0};
  mutable std::mutex merge_mu_;
  mutable std::unique_ptr<MetricsCollector> merged_;
  mutable std::uint64_t merged_upto_ = 0;
  std::uint64_t total_msgs_ = 0;
  std::uint64_t total_bytes_ = 0;
  std::uint64_t pacemaker_msgs_ = 0;
  std::uint64_t consensus_msgs_ = 0;
  std::uint64_t dissem_msgs_ = 0;
  std::uint64_t dissem_bytes_ = 0;
  std::uint64_t sync_msgs_ = 0;
  std::uint64_t batch_acks_ = 0;
  std::map<std::uint32_t, std::uint64_t> by_type_;
  std::vector<Decision> decisions_;
  /// (time, cumulative count) checkpoints for msgs_between; one entry per
  /// send keeps memory bounded via coarse bucketing.
  std::vector<std::pair<TimePoint, std::uint64_t>> send_log_;
  std::vector<std::pair<TimePoint, std::string>> regime_marks_;
  /// (commit instant, submit -> commit latency) per committed request.
  std::vector<std::pair<TimePoint, Duration>> request_log_;
  std::vector<QueueDepthSample> queue_depth_log_;
  std::size_t max_queue_depth_ = 0;
  /// (time, cumulative dissemination bytes) checkpoints, one per charge.
  std::vector<std::pair<TimePoint, std::uint64_t>> dissem_send_log_;
  /// (cert instant, push -> cert latency) per certified batch.
  std::vector<std::pair<TimePoint, Duration>> cert_log_;
  std::vector<QueueDepthSample> certified_depth_log_;
  std::size_t max_certified_depth_ = 0;
};

}  // namespace lumiere::runtime
