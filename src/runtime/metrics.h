// Communication and latency accounting, matching Section 2's measures.
//
// The paper counts messages *sent by correct processors* and defines
// decision points t*_T as moments when some honest lead(v) produces a QC
// for view v. This collector:
//   * counts every honest-to-other send (self-delivery is not traffic),
//     bucketed by message type and by MsgClass;
//   * logs decisions (honest-leader QC formations) with the cumulative
//     message count at that instant, so any inter-decision window's cost
//     is a subtraction;
//   * derives the four Table 1 measures over a run.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/time.h"
#include "common/types.h"
#include "sim/network.h"

namespace lumiere::runtime {

class MetricsCollector final : public sim::NetworkObserver {
 public:
  MetricsCollector(std::uint32_t n, std::vector<bool> byzantine)
      : n_(n), byzantine_(std::move(byzantine)) {
    LUMIERE_ASSERT(byzantine_.size() == n_);
  }

  // -- NetworkObserver -------------------------------------------------
  void on_send(TimePoint at, ProcessId from, ProcessId to, const Message& msg) override;
  void on_deliver(TimePoint, ProcessId, ProcessId, const Message&) override {}
  /// Bulk variant: one wire-size/type computation and one send-log
  /// checkpoint for all n-1 copies of a broadcast payload. Totals are
  /// identical to n-1 on_send calls.
  void on_broadcast(TimePoint at, ProcessId from, const Message& msg, std::uint32_t n) override;

  // -- decision log ------------------------------------------------------
  /// Called when node `leader` (as leader) produced a QC for `view`.
  /// Byzantine nodes' QCs are not decisions in the paper's sense.
  void record_qc_formed(TimePoint at, View view, ProcessId leader);

  struct Decision {
    TimePoint at;
    View view = -1;
    ProcessId leader = kNoProcess;
    std::uint64_t msgs_before = 0;  ///< cumulative honest sends at `at`
  };

  [[nodiscard]] const std::vector<Decision>& decisions() const noexcept { return decisions_; }
  [[nodiscard]] std::uint64_t total_honest_msgs() const noexcept { return total_msgs_; }
  [[nodiscard]] std::uint64_t total_honest_bytes() const noexcept { return total_bytes_; }
  [[nodiscard]] std::uint64_t count_for_type(std::uint32_t type_id) const {
    const auto it = by_type_.find(type_id);
    return it == by_type_.end() ? 0 : it->second;
  }
  [[nodiscard]] std::uint64_t pacemaker_msgs() const noexcept { return pacemaker_msgs_; }
  [[nodiscard]] std::uint64_t consensus_msgs() const noexcept { return consensus_msgs_; }
  [[nodiscard]] std::uint64_t dissem_msgs() const noexcept { return dissem_msgs_; }
  [[nodiscard]] std::uint64_t dissem_bytes() const noexcept { return dissem_bytes_; }
  /// Honest availability acks sent (BatchAck copies).
  [[nodiscard]] std::uint64_t batch_acks() const noexcept { return batch_acks_; }
  /// Honest dissemination-layer bytes sent in [from, to) — attributable
  /// per regime window like msgs_between.
  [[nodiscard]] std::uint64_t dissem_bytes_between(TimePoint from, TimePoint to) const;

  // -- derived measures ----------------------------------------------------
  /// Decisions at or after `from` (index into decisions()).
  [[nodiscard]] std::size_t first_decision_index_after(TimePoint from) const;

  /// Time from `gst` to the first decision after it (worst-case latency
  /// sample); nullopt if none.
  [[nodiscard]] std::optional<Duration> latency_to_first_decision(TimePoint gst) const;

  /// Max time between consecutive decisions, over decisions after `from`,
  /// skipping the first `warmup` gaps (eventual worst-case latency
  /// sample). nullopt if fewer than warmup+2 decisions.
  [[nodiscard]] std::optional<Duration> max_decision_gap(TimePoint from,
                                                         std::size_t warmup = 0) const;

  /// Max honest messages between consecutive decisions after `from`,
  /// skipping `warmup` gaps (communication-per-decision sample).
  [[nodiscard]] std::optional<std::uint64_t> max_msg_gap(TimePoint from,
                                                         std::size_t warmup = 0) const;

  /// Honest messages sent from `gst` until the first decision after it
  /// (worst-case communication sample).
  [[nodiscard]] std::optional<std::uint64_t> msgs_to_first_decision(TimePoint gst) const;

  /// Honest messages sent in [from, to).
  [[nodiscard]] std::uint64_t msgs_between(TimePoint from, TimePoint to) const;

  // -- regime windows ------------------------------------------------------
  // The fault-schedule executor marks each scripted event here, so a
  // run's measures can be attributed to the network regime they occurred
  // under (before / during / after a partition, per delay era, ...).

  /// Records a regime boundary (a fault-schedule event) at `at`.
  void mark_regime(TimePoint at, std::string label);
  /// All boundaries in time order: (instant, event description).
  [[nodiscard]] const std::vector<std::pair<TimePoint, std::string>>& regime_marks()
      const noexcept {
    return regime_marks_;
  }

  /// Decisions with `from <= at < to`.
  [[nodiscard]] std::uint64_t decisions_between(TimePoint from, TimePoint to) const;
  /// Max gap between consecutive decisions that both fall in [from, to);
  /// nullopt with fewer than two decisions in the window.
  [[nodiscard]] std::optional<Duration> max_decision_gap_between(TimePoint from,
                                                                 TimePoint to) const;

  // -- client workload -----------------------------------------------------
  // End-to-end request accounting (src/workload/), fed by the Cluster on
  // the sim transport so request throughput and client latency attribute
  // to the same regime windows as the protocol measures. The TCP
  // transport aggregates per node instead (Cluster::workload_report).

  /// A tagged client request committed at `at`, `latency` after submit.
  void record_request_committed(TimePoint at, Duration latency);
  /// A proposer drained its mempool at depth `depth` (requests waiting).
  void record_queue_depth(TimePoint at, ProcessId node, std::size_t depth);

  [[nodiscard]] std::uint64_t requests_committed() const noexcept {
    return request_log_.size();
  }
  /// Committed requests with `from <= at < to`.
  [[nodiscard]] std::uint64_t requests_between(TimePoint from, TimePoint to) const;
  /// Nearest-rank submit -> commit latency percentile, p in (0, 1];
  /// nullopt when no request committed (in the window).
  [[nodiscard]] std::optional<Duration> request_latency_percentile(double p) const;
  [[nodiscard]] std::optional<Duration> request_latency_percentile_between(double p,
                                                                           TimePoint from,
                                                                           TimePoint to) const;
  [[nodiscard]] std::size_t max_queue_depth() const noexcept { return max_queue_depth_; }
  /// (instant, proposer, pending depth) per batch drain, in time order.
  struct QueueDepthSample {
    TimePoint at;
    ProcessId node = kNoProcess;
    std::size_t depth = 0;
  };
  [[nodiscard]] const std::vector<QueueDepthSample>& queue_depth_log() const noexcept {
    return queue_depth_log_;
  }

  // -- data dissemination --------------------------------------------------
  // Batch-availability accounting (src/dissem/), fed by the Cluster on
  // the sim transport: proof-of-availability latency at each origin plus
  // the certified-but-unordered backlog alongside queue_depth_log.

  /// A batch gathered its availability cert at `at`, `latency` after its
  /// first push.
  void record_batch_certified(TimePoint at, Duration latency);
  /// One node's certified-but-unordered reference depth sample.
  void record_certified_depth(TimePoint at, ProcessId node, std::size_t depth);

  [[nodiscard]] std::uint64_t batches_certified() const noexcept { return cert_log_.size(); }
  /// Certified batches with `from <= at < to`.
  [[nodiscard]] std::uint64_t batches_certified_between(TimePoint from, TimePoint to) const;
  /// Nearest-rank push -> cert latency percentile, p in (0, 1]; nullopt
  /// when no batch certified (in the window).
  [[nodiscard]] std::optional<Duration> batch_cert_latency_percentile(double p) const;
  [[nodiscard]] std::optional<Duration> batch_cert_latency_percentile_between(
      double p, TimePoint from, TimePoint to) const;
  /// (instant, node, certified-unordered depth) samples, in time order.
  [[nodiscard]] const std::vector<QueueDepthSample>& certified_depth_log() const noexcept {
    return certified_depth_log_;
  }
  [[nodiscard]] std::size_t max_certified_depth() const noexcept { return max_certified_depth_; }

 private:
  /// The shared accounting body of on_send / on_broadcast: charges
  /// `copies` identical sends of `msg` at `at`.
  void charge_sends(TimePoint at, const Message& msg, std::uint64_t copies);

  std::uint32_t n_;
  std::vector<bool> byzantine_;
  std::uint64_t total_msgs_ = 0;
  std::uint64_t total_bytes_ = 0;
  std::uint64_t pacemaker_msgs_ = 0;
  std::uint64_t consensus_msgs_ = 0;
  std::uint64_t dissem_msgs_ = 0;
  std::uint64_t dissem_bytes_ = 0;
  std::uint64_t batch_acks_ = 0;
  std::map<std::uint32_t, std::uint64_t> by_type_;
  std::vector<Decision> decisions_;
  /// (time, cumulative count) checkpoints for msgs_between; one entry per
  /// send keeps memory bounded via coarse bucketing.
  std::vector<std::pair<TimePoint, std::uint64_t>> send_log_;
  std::vector<std::pair<TimePoint, std::string>> regime_marks_;
  /// (commit instant, submit -> commit latency) per committed request.
  std::vector<std::pair<TimePoint, Duration>> request_log_;
  std::vector<QueueDepthSample> queue_depth_log_;
  std::size_t max_queue_depth_ = 0;
  /// (time, cumulative dissemination bytes) checkpoints, one per charge.
  std::vector<std::pair<TimePoint, std::uint64_t>> dissem_send_log_;
  /// (cert instant, push -> cert latency) per certified batch.
  std::vector<std::pair<TimePoint, Duration>> cert_log_;
  std::vector<QueueDepthSample> certified_depth_log_;
  std::size_t max_certified_depth_ = 0;
};

}  // namespace lumiere::runtime
