#include "runtime/node.h"

#include <cstring>

#include "consensus/messages.h"

namespace lumiere::runtime {

Node::Node(const ProtocolParams& params, ProcessId id, sim::Simulator* sim,
           MessageTransport* network, const crypto::Authenticator* auth, NodeConfig config,
           NodeObservers observers, std::unique_ptr<adversary::Behavior> behavior)
    : params_(params),
      id_(id),
      sim_(sim),
      network_(network),
      auth_view_(auth, &memo_, config.auth_ops),
      signer_(auth->signer_for(id)),
      observers_(std::move(observers)),
      behavior_(std::move(behavior)),
      join_time_(config.join_time),
      protocol_(config.protocol) {
  LUMIERE_ASSERT(sim != nullptr && network != nullptr && auth != nullptr);
  LUMIERE_ASSERT(behavior_ != nullptr);
  ever_byzantine_ = std::strcmp(behavior_->name(), "honest") != 0;
  // Before build_* so the pacemaker/dissem/core Signer copies inherit it.
  signer_.set_op_counters(config.auth_ops);
  clock_ = std::make_unique<sim::LocalClock>(sim_, config.join_time, config.clock_drift_ppm);
  build_pacemaker(config);
  build_dissem(config);
  build_core(config);
  build_sync(config);
}

bool Node::is_byzantine() const noexcept { return ever_byzantine_; }

void Node::set_behavior(std::unique_ptr<adversary::Behavior> behavior) {
  LUMIERE_ASSERT(behavior != nullptr);
  behavior_ = std::move(behavior);
  ever_byzantine_ = ever_byzantine_ || std::strcmp(behavior_->name(), "honest") != 0;
}

adversary::Toolkit Node::toolkit() {
  adversary::Toolkit tk;
  tk.self = id_;
  tk.params = &params_;
  tk.auth = auth_view_;
  tk.signer = &signer_;
  tk.leader_of = [this](View v) { return pacemaker_->leader_of(v); };
  tk.high_qc = [this]() -> const consensus::QuorumCert& { return core_->high_qc(); };
  tk.raw_send = [this](ProcessId to, MessagePtr msg) { network_->send(id_, to, std::move(msg)); };
  return tk;
}

void Node::build_pacemaker(const NodeConfig& config) {
  pacemaker::PacemakerWiring wiring;
  wiring.sim = sim_;
  wiring.clock = clock_.get();
  wiring.auth = auth_view_;
  wiring.send = [this](ProcessId to, MessagePtr msg) { outbound(to, std::move(msg)); };
  wiring.broadcast = [this](MessagePtr msg) { outbound_broadcast(msg); };
  wiring.enter_view = [this](View v) {
    if (core_) core_->on_enter_view(v);
    if (observers_.on_view_entered) observers_.on_view_entered(sim_->now(), v, id_);
    behavior_->on_view_entered(sim_->now(), v, toolkit());
  };
  wiring.propose_poke = [this](View v) {
    if (core_) core_->on_propose_allowed(v);
  };
  if (observers_.on_sync_started) {
    wiring.sync_started = [this](View target) {
      observers_.on_sync_started(sim_->now(), pacemaker_->current_view(), target, id_);
    };
  }

  pacemaker_ = ProtocolRegistry::instance().make_pacemaker(
      config.protocol.pacemaker,
      PacemakerContext{params_, id_, signer_, std::move(wiring), config.protocol});
}

void Node::build_dissem(const NodeConfig& config) {
  if (!config.dissem.has_value()) return;
  // Harness hooks (mempool lease/ack, delivery, metrics) come from the
  // config; the transport-facing quartet is this node's own plumbing so
  // dissemination traffic obeys the same Behavior filter and simulated
  // clock as consensus traffic.
  dissem::DisseminatorCallbacks cb = config.dissem_hooks;
  cb.send = [this](ProcessId to, MessagePtr msg) { outbound(to, std::move(msg)); };
  cb.broadcast = [this](MessagePtr msg) { outbound_broadcast(msg); };
  cb.schedule = [this](Duration delay, std::function<void()> fn) {
    sim_->schedule_after(delay, std::move(fn));
  };
  cb.now = [this] { return sim_->now(); };
  dissem_ = std::make_unique<dissem::Disseminator>(params_, auth_view_, signer_, *config.dissem,
                                                   std::move(cb));
}

void Node::build_core(const NodeConfig& config) {
  consensus::CoreCallbacks callbacks;
  callbacks.send = [this](ProcessId to, MessagePtr msg) { outbound(to, std::move(msg)); };
  callbacks.broadcast = [this](MessagePtr msg) { outbound_broadcast(msg); };
  callbacks.qc_formed = [this](const consensus::QuorumCert& qc) {
    pacemaker_->on_local_qc_formed(qc);
    if (observers_.on_qc_formed) observers_.on_qc_formed(sim_->now(), qc.view(), id_);
  };
  callbacks.qc_seen = [this](const consensus::QuorumCert& qc) { pacemaker_->on_qc(qc); };
  callbacks.adopt_base = [this](const consensus::Block& base) {
    // Checkpoint adoption (crash recovery): the first decided block will
    // extend `base`'s parent rather than genesis.
    ledger_.adopt_base(base.parent());
  };
  callbacks.decided = [this](const consensus::Block& block) {
    ledger_.commit(block, sim_->now());
    // Resolve committed references into delivered batches (the dissem
    // layer invokes the harness `deliver` hook, exactly once per batch).
    if (dissem_) {
      dissem_->on_committed_payload(
          std::span<const std::uint8_t>(block.payload().data(), block.payload().size()));
    }
    if (observers_.on_commit) observers_.on_commit(sim_->now(), block, id_);
  };
  callbacks.schedule = [this](Duration delay, std::function<void()> fn) {
    sim_->schedule_after(delay, std::move(fn));
  };
  if (config.protocol.block_sync) {
    // The commit walk hit a never-arriving missing ancestor: hand the
    // hash to the synchronizer (built right after the core).
    callbacks.fetch_missing = [this](const crypto::Digest& hash) {
      if (sync_) sync_->on_missing(hash);
    };
  }

  PayloadProvider provider = config.payload_provider;
  if (dissem_) {
    // Proposals order certified references, not payload bytes.
    provider = [this](View v) { return dissem_->make_proposal_payload(v); };
    callbacks.payload_ok = [this](const consensus::Block& block) {
      return dissem_->refs_payload_ok(
          std::span<const std::uint8_t>(block.payload().data(), block.payload().size()));
    };
  }

  consensus::PacemakerHooks hooks;
  hooks.leader_of = [this](View v) { return pacemaker_->leader_of(v); };
  hooks.may_form_qc = [this](View v) { return pacemaker_->may_form_qc(v); };
  hooks.may_propose = [this](View v) { return pacemaker_->may_propose(v); };

  core_ = ProtocolRegistry::instance().make_core(
      config.protocol.core,
      CoreContext{params_, id_, auth_view_, signer_, std::move(callbacks), std::move(hooks),
                  std::move(provider), config.protocol});
}

void Node::build_sync(const NodeConfig& config) {
  if (!config.protocol.block_sync) return;
  // Serve and verify against the core's content-addressed store. Fetched
  // blocks re-enter through ConsensusCore::on_synced_block, whose commit
  // path runs the same `decided` callback as live blocks — so a fetched
  // block's dissem batch refs still resolve via on_committed_payload.
  sync::SyncCallbacks cb;
  cb.send = [this](ProcessId to, MessagePtr msg) { outbound(to, std::move(msg)); };
  cb.schedule = [this](Duration delay, std::function<void()> fn) {
    sim_->schedule_after(delay, std::move(fn));
  };
  cb.lookup = [this](const crypto::Digest& hash) { return core_->block_for_sync(hash); };
  cb.accept = [this](const consensus::Block& block) { core_->on_synced_block(block); };
  // Retry cadence: a fetch plus its response fit in 2*Delta post-GST, so
  // rotate peers no faster than that.
  sync_ = std::make_unique<sync::BlockSynchronizer>(
      id_, params_.n, Duration(params_.delta_cap.ticks() * 2), std::move(cb));
}

void Node::start() {
  LUMIERE_ASSERT_MSG(!started_, "Node::start called twice");
  started_ = true;
  network_->register_endpoint(id_,
                              [this](ProcessId from, const MessagePtr& msg) {
                                route_inbound(from, msg);
                              });
  sim_->schedule_at(join_time_, [this] {
    protocol_running_ = true;
    pacemaker_->start();
    if (dissem_) dissem_->start();
    for (auto& [from, msg] : pre_join_inbox_) route_inbound(from, msg);
    pre_join_inbox_.clear();
  });
}

void Node::route_inbound(ProcessId from, const MessagePtr& msg) {
  if (!protocol_running_) {
    pre_join_inbox_.emplace_back(from, msg);
    return;
  }
  if (msg->msg_class() == MsgClass::kConsensus) {
    // Every received proposal's references are in flight somewhere: note
    // them so this node's own next proposal doesn't re-order duplicates
    // (a reinsert timer restores any reference whose proposal dies).
    if (dissem_ && msg->type_id() == consensus::kProposal) {
      const auto& payload = static_cast<const consensus::ProposalMsg&>(*msg).block().payload();
      dissem_->on_refs_proposed(std::span<const std::uint8_t>(payload.data(), payload.size()));
    }
    core_->on_message(from, msg);
  } else if (msg->msg_class() == MsgClass::kDissem) {
    if (dissem_) dissem_->on_message(from, msg);
  } else if (msg->msg_class() == MsgClass::kSync) {
    if (sync_) sync_->on_message(from, msg);
  } else {
    pacemaker_->on_message(from, msg);
  }
}

void Node::outbound(ProcessId to, MessagePtr msg) {
  if (!behavior_->allow_send(sim_->now(), to, *msg)) return;
  if (observers_.on_sent && to != id_) observers_.on_sent(id_, msg->wire_size());
  network_->send(id_, to, std::move(msg));
}

void Node::outbound_broadcast(const MessagePtr& msg) {
  // Per-recipient so the Byzantine filter can act per destination; the
  // paper's broadcast convention (include self) is preserved.
  for (ProcessId to = 0; to < params_.n; ++to) outbound(to, msg);
}

}  // namespace lumiere::runtime
