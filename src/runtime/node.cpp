#include "runtime/node.h"

#include <cstring>

#include "core/basic_lumiere.h"
#include "core/lumiere.h"
#include "pacemaker/cogsworth.h"
#include "pacemaker/fever.h"
#include "pacemaker/lp22.h"
#include "pacemaker/naor_keidar.h"
#include "pacemaker/raresync.h"
#include "pacemaker/round_robin.h"

namespace lumiere::runtime {

const char* to_string(PacemakerKind kind) {
  switch (kind) {
    case PacemakerKind::kRoundRobin:
      return "round-robin";
    case PacemakerKind::kCogsworth:
      return "cogsworth";
    case PacemakerKind::kNaorKeidar:
      return "nk20";
    case PacemakerKind::kRareSync:
      return "raresync";
    case PacemakerKind::kLp22:
      return "lp22";
    case PacemakerKind::kFever:
      return "fever";
    case PacemakerKind::kBasicLumiere:
      return "basic-lumiere";
    case PacemakerKind::kLumiere:
      return "lumiere";
  }
  return "?";
}

const char* to_string(CoreKind kind) {
  switch (kind) {
    case CoreKind::kSimpleView:
      return "simple-view";
    case CoreKind::kChainedHotStuff:
      return "chained-hotstuff";
    case CoreKind::kHotStuff2:
      return "hotstuff-2";
  }
  return "?";
}

Node::Node(const ProtocolParams& params, ProcessId id, sim::Simulator* sim,
           MessageTransport* network, const crypto::Pki* pki, NodeOptions options,
           NodeObservers observers, std::unique_ptr<adversary::Behavior> behavior)
    : params_(params),
      id_(id),
      sim_(sim),
      network_(network),
      pki_(pki),
      signer_(pki->signer_for(id)),
      observers_(std::move(observers)),
      behavior_(std::move(behavior)),
      join_time_(options.join_time) {
  LUMIERE_ASSERT(sim != nullptr && network != nullptr && pki != nullptr);
  LUMIERE_ASSERT(behavior_ != nullptr);
  clock_ = std::make_unique<sim::LocalClock>(sim_, options.join_time, options.clock_drift_ppm);
  build_pacemaker(options);
  build_core(options);
}

bool Node::is_byzantine() const noexcept {
  return std::strcmp(behavior_->name(), "honest") != 0;
}

adversary::Toolkit Node::toolkit() {
  adversary::Toolkit tk;
  tk.self = id_;
  tk.params = &params_;
  tk.pki = pki_;
  tk.signer = &signer_;
  tk.leader_of = [this](View v) { return pacemaker_->leader_of(v); };
  tk.high_qc = [this]() -> const consensus::QuorumCert& { return core_->high_qc(); };
  tk.raw_send = [this](ProcessId to, MessagePtr msg) { network_->send(id_, to, std::move(msg)); };
  return tk;
}

void Node::build_pacemaker(const NodeOptions& options) {
  pacemaker::PacemakerWiring wiring;
  wiring.sim = sim_;
  wiring.clock = clock_.get();
  wiring.pki = pki_;
  wiring.send = [this](ProcessId to, MessagePtr msg) { outbound(to, std::move(msg)); };
  wiring.broadcast = [this](MessagePtr msg) { outbound_broadcast(msg); };
  wiring.enter_view = [this](View v) {
    if (core_) core_->on_enter_view(v);
    if (observers_.on_view_entered) observers_.on_view_entered(sim_->now(), v, id_);
    behavior_->on_view_entered(sim_->now(), v, toolkit());
  };
  wiring.propose_poke = [this](View v) {
    if (core_) core_->on_propose_allowed(v);
  };

  const Duration default_timeout = params_.delta_cap * (params_.x + 2);
  const Duration timeout =
      options.view_timeout > Duration::zero() ? options.view_timeout : default_timeout;

  switch (options.pacemaker) {
    case PacemakerKind::kRoundRobin: {
      pacemaker::RoundRobinPacemaker::Options opt;
      opt.base_timeout = timeout;
      pacemaker_ = std::make_unique<pacemaker::RoundRobinPacemaker>(params_, id_, signer_,
                                                                    std::move(wiring), opt);
      break;
    }
    case PacemakerKind::kCogsworth: {
      pacemaker::CogsworthPacemaker::Options opt;
      opt.view_timeout = timeout;
      opt.relay_timeout = params_.delta_cap * 2;
      pacemaker_ = std::make_unique<pacemaker::CogsworthPacemaker>(
          params_, id_, signer_, std::move(wiring), opt,
          std::make_unique<pacemaker::RoundRobinSchedule>(params_.n, 1));
      break;
    }
    case PacemakerKind::kNaorKeidar: {
      pacemaker::CogsworthPacemaker::Options opt;
      opt.view_timeout = timeout;
      opt.relay_timeout = params_.delta_cap * 2;
      pacemaker_ = std::make_unique<pacemaker::NaorKeidarPacemaker>(
          params_, id_, signer_, std::move(wiring), opt, options.shared_seed);
      break;
    }
    case PacemakerKind::kRareSync: {
      pacemaker::RareSyncPacemaker::Options opt;
      opt.gamma = options.gamma;
      pacemaker_ = std::make_unique<pacemaker::RareSyncPacemaker>(params_, id_, signer_,
                                                                  std::move(wiring), opt);
      break;
    }
    case PacemakerKind::kLp22: {
      pacemaker::Lp22Pacemaker::Options opt;
      opt.gamma = options.gamma;
      pacemaker_ = std::make_unique<pacemaker::Lp22Pacemaker>(params_, id_, signer_,
                                                              std::move(wiring), opt);
      break;
    }
    case PacemakerKind::kFever: {
      pacemaker::FeverPacemaker::Options opt;
      opt.gamma = options.gamma;
      opt.tenure = options.fever_tenure;
      pacemaker_ = std::make_unique<pacemaker::FeverPacemaker>(params_, id_, signer_,
                                                               std::move(wiring), opt);
      break;
    }
    case PacemakerKind::kBasicLumiere: {
      core::BasicLumierePacemaker::Options opt;
      opt.gamma = options.gamma;
      pacemaker_ = std::make_unique<core::BasicLumierePacemaker>(params_, id_, signer_,
                                                                 std::move(wiring), opt);
      break;
    }
    case PacemakerKind::kLumiere: {
      core::LumierePacemaker::Options opt;
      opt.gamma = options.gamma;
      opt.schedule_seed = options.shared_seed;
      opt.enforce_qc_deadline = options.lumiere_enforce_qc_deadline;
      opt.delta_wait_before_epoch_msg = options.lumiere_delta_wait;
      pacemaker_ = std::make_unique<core::LumierePacemaker>(params_, id_, signer_,
                                                            std::move(wiring), opt);
      break;
    }
  }
}

void Node::build_core(const NodeOptions& options) {
  consensus::CoreCallbacks callbacks;
  callbacks.send = [this](ProcessId to, MessagePtr msg) { outbound(to, std::move(msg)); };
  callbacks.broadcast = [this](MessagePtr msg) { outbound_broadcast(msg); };
  callbacks.qc_formed = [this](const consensus::QuorumCert& qc) {
    pacemaker_->on_local_qc_formed(qc);
    if (observers_.on_qc_formed) observers_.on_qc_formed(sim_->now(), qc.view(), id_);
  };
  callbacks.qc_seen = [this](const consensus::QuorumCert& qc) { pacemaker_->on_qc(qc); };
  callbacks.decided = [this](const consensus::Block& block) {
    ledger_.commit(block, sim_->now());
    if (observers_.on_commit) observers_.on_commit(sim_->now(), block, id_);
  };
  callbacks.schedule = [this](Duration delay, std::function<void()> fn) {
    sim_->schedule_after(delay, std::move(fn));
  };

  consensus::PacemakerHooks hooks;
  hooks.leader_of = [this](View v) { return pacemaker_->leader_of(v); };
  hooks.may_form_qc = [this](View v) { return pacemaker_->may_form_qc(v); };
  hooks.may_propose = [this](View v) { return pacemaker_->may_propose(v); };

  switch (options.core) {
    case CoreKind::kSimpleView:
      core_ = std::make_unique<consensus::SimpleViewCore>(params_, pki_, signer_,
                                                          std::move(callbacks), std::move(hooks),
                                                          options.payload_provider);
      break;
    case CoreKind::kChainedHotStuff:
      core_ = std::make_unique<consensus::ChainedHotStuff>(params_, pki_, signer_,
                                                           std::move(callbacks), std::move(hooks),
                                                           options.payload_provider);
      break;
    case CoreKind::kHotStuff2:
      core_ = std::make_unique<consensus::HotStuff2>(params_, pki_, signer_,
                                                     std::move(callbacks), std::move(hooks),
                                                     options.payload_provider);
      break;
  }
}

void Node::start() {
  LUMIERE_ASSERT_MSG(!started_, "Node::start called twice");
  started_ = true;
  network_->register_endpoint(id_,
                              [this](ProcessId from, const MessagePtr& msg) {
                                route_inbound(from, msg);
                              });
  sim_->schedule_at(join_time_, [this] {
    protocol_running_ = true;
    pacemaker_->start();
    for (auto& [from, msg] : pre_join_inbox_) route_inbound(from, msg);
    pre_join_inbox_.clear();
  });
}

void Node::route_inbound(ProcessId from, const MessagePtr& msg) {
  if (!protocol_running_) {
    pre_join_inbox_.emplace_back(from, msg);
    return;
  }
  if (msg->msg_class() == MsgClass::kConsensus) {
    core_->on_message(from, msg);
  } else {
    pacemaker_->on_message(from, msg);
  }
}

void Node::outbound(ProcessId to, MessagePtr msg) {
  if (!behavior_->allow_send(sim_->now(), to, *msg)) return;
  network_->send(id_, to, std::move(msg));
}

void Node::outbound_broadcast(const MessagePtr& msg) {
  // Per-recipient so the Byzantine filter can act per destination; the
  // paper's broadcast convention (include self) is preserved.
  for (ProcessId to = 0; to < params_.n; ++to) outbound(to, msg);
}

}  // namespace lumiere::runtime
