// ProtocolRegistry: string-keyed construction of pacemakers and consensus
// cores.
//
// The paper's experiments compare view-synchronization protocols (Lumiere,
// LP22, Fever, Cogsworth, NK20, RareSync, round-robin) over interchangeable
// underlying protocols (SimpleView, chained HotStuff, HotStuff-2). The
// registry makes that comparison surface data-driven: every protocol is a
// named factory, experiments select protocols by name ("lumiere",
// "fever", ...), and per-protocol knobs live in typed sub-structs instead of
// being flattened into one options grab-bag.
//
// Built-in protocols register themselves when the registry singleton is
// first touched; tests and downstream users may register additional ones
// under fresh names (see ProtocolRegistry::register_pacemaker).
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/params.h"
#include "common/time.h"
#include "common/types.h"
#include "consensus/core.h"
#include "crypto/authenticator.h"
#include "pacemaker/pacemaker.h"

namespace lumiere::runtime {

/// Block payload source consulted when a node proposes in a view (the
/// client workload); null = empty payloads.
using PayloadProvider = std::function<std::vector<std::uint8_t>(View)>;

/// Lumiere ablation switches (Section 4 / Section 5.5 of the paper).
struct LumiereOptions {
  /// Enforce the leader's QC-production deadline (Gamma/2 - 2*Delta).
  bool enforce_qc_deadline = true;
  /// Delta-wait before sending the epoch message (Algorithm 1, line 12).
  bool delta_wait = true;
};

/// Fever-specific knobs (Section 3.3 "Reducing Gamma" remark).
struct FeverOptions {
  /// Consecutive views each leader keeps (leader tenure).
  std::uint32_t tenure = 2;
};

/// Timeout knobs for the timeout-driven pacemakers (round-robin,
/// Cogsworth, NK20).
struct TimeoutOptions {
  /// Per-view timeout; zero = the protocol default (x+2)*Delta.
  Duration view_timeout = Duration::zero();
  /// Cogsworth/NK20 relay timeout; zero = the default 2*Delta.
  Duration relay_timeout = Duration::zero();
};

/// Everything that selects and parameterizes one node's protocol stack —
/// the single home of the per-protocol knobs.
struct ProtocolConfig {
  /// Registry name of the view synchronizer (see ProtocolRegistry).
  std::string pacemaker = "lumiere";
  /// Registry name of the underlying consensus protocol.
  std::string core = "simple-view";
  /// Gamma override for the epoch-based pacemakers (zero = protocol
  /// default).
  Duration gamma = Duration::zero();
  /// Leader-schedule / randomness seed. Must be identical cluster-wide or
  /// honest nodes will disagree on lead(v).
  std::uint64_t shared_seed = 1;
  /// Crash recovery for standalone replica processes: a committing core
  /// that has never committed may adopt a certified block with missing
  /// ancestry as its commit checkpoint (ledger becomes a committed
  /// suffix) instead of stalling on the unfillable pre-restart prefix.
  /// Keep off for simulated clusters — they retain full history and the
  /// harness asserts full-prefix ledgers.
  bool checkpoint_adoption = false;
  /// Block sync (src/sync/): when the commit walk hits a missing
  /// ancestor that will never arrive on its own — an equivocation
  /// victim's dropped winner, or a restarted replica's pre-crash
  /// history — fetch it from peers by hash and resume the walk instead
  /// of wedging. Preferred over checkpoint_adoption when both are on
  /// (full-history backfill instead of a committed suffix). Default off:
  /// golden-digest runs stay byte-identical.
  bool block_sync = false;
  LumiereOptions lumiere;
  FeverOptions fever;
  TimeoutOptions timeout;
};

/// Everything a pacemaker factory needs to build one instance.
struct PacemakerContext {
  const ProtocolParams& params;
  ProcessId self;
  crypto::Signer signer;
  pacemaker::PacemakerWiring wiring;
  const ProtocolConfig& config;
};

/// Everything a consensus-core factory needs to build one instance.
struct CoreContext {
  const ProtocolParams& params;
  ProcessId self;
  crypto::AuthView auth;
  crypto::Signer signer;
  consensus::CoreCallbacks callbacks;
  consensus::PacemakerHooks hooks;
  PayloadProvider payload_provider;
  const ProtocolConfig& config;
};

class ProtocolRegistry {
 public:
  using PacemakerFactory =
      std::function<std::unique_ptr<pacemaker::Pacemaker>(PacemakerContext&&)>;
  using CoreFactory =
      std::function<std::unique_ptr<consensus::ConsensusCore>(CoreContext&&)>;

  /// The process-wide registry, with every built-in protocol registered.
  [[nodiscard]] static ProtocolRegistry& instance();

  /// Registers a factory under `name`. Registering an already-taken name
  /// aborts (a wiring bug, not a runtime condition).
  void register_pacemaker(std::string name, PacemakerFactory factory);
  void register_core(std::string name, CoreFactory factory);

  [[nodiscard]] bool has_pacemaker(const std::string& name) const;
  [[nodiscard]] bool has_core(const std::string& name) const;

  /// Registered names, sorted (the map order) — stable for parameterized
  /// tests and error messages.
  [[nodiscard]] std::vector<std::string> pacemaker_names() const;
  [[nodiscard]] std::vector<std::string> core_names() const;

  /// The diagnostic used whenever `name` is not registered: names the
  /// unknown protocol and lists the registered ones. Shared by
  /// make_pacemaker/make_core and ScenarioBuilder::validate() so the two
  /// error surfaces cannot drift apart.
  [[nodiscard]] std::string unknown_pacemaker_message(const std::string& name) const;
  [[nodiscard]] std::string unknown_core_message(const std::string& name) const;

  /// Builds a protocol instance. Throws std::invalid_argument naming the
  /// unknown protocol and listing the registered ones.
  [[nodiscard]] std::unique_ptr<pacemaker::Pacemaker> make_pacemaker(
      const std::string& name, PacemakerContext&& context) const;
  [[nodiscard]] std::unique_ptr<consensus::ConsensusCore> make_core(
      const std::string& name, CoreContext&& context) const;

 private:
  ProtocolRegistry() = default;

  std::map<std::string, PacemakerFactory> pacemakers_;
  std::map<std::string, CoreFactory> cores_;
};

}  // namespace lumiere::runtime
