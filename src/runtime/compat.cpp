#include "runtime/compat.h"

namespace lumiere::runtime {

const char* to_string(PacemakerKind kind) {
  switch (kind) {
    case PacemakerKind::kRoundRobin:
      return "round-robin";
    case PacemakerKind::kCogsworth:
      return "cogsworth";
    case PacemakerKind::kNaorKeidar:
      return "nk20";
    case PacemakerKind::kRareSync:
      return "raresync";
    case PacemakerKind::kLp22:
      return "lp22";
    case PacemakerKind::kFever:
      return "fever";
    case PacemakerKind::kBasicLumiere:
      return "basic-lumiere";
    case PacemakerKind::kLumiere:
      return "lumiere";
  }
  return "?";
}

const char* to_string(CoreKind kind) {
  switch (kind) {
    case CoreKind::kSimpleView:
      return "simple-view";
    case CoreKind::kChainedHotStuff:
      return "chained-hotstuff";
    case CoreKind::kHotStuff2:
      return "hotstuff-2";
  }
  return "?";
}

#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
ScenarioBuilder to_builder(const ClusterOptions& options) {
  ScenarioBuilder builder;
  builder.params(options.params)
      .pacemaker(to_string(options.pacemaker))
      .core(to_string(options.core))
      .gst(options.gst)
      .delay(options.delay)
      .seed(options.seed)
      .gamma(options.gamma)
      .join_stagger(options.join_stagger)
      .drift_ppm_max(options.drift_ppm_max)
      .lumiere(LumiereOptions{options.lumiere_enforce_qc_deadline, options.lumiere_delta_wait})
      .fever(FeverOptions{options.fever_tenure})
      .view_timeout(options.view_timeout)
      .workload(options.workload);
  if (options.behavior_for) builder.behaviors(options.behavior_for);
  return builder;
}
#pragma GCC diagnostic pop

}  // namespace lumiere::runtime
