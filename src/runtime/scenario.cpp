#include "runtime/scenario.h"

#include <sstream>
#include <stdexcept>

#include "common/rng.h"
#include "runtime/cluster.h"

namespace lumiere::runtime {

const char* to_string(TransportKind kind) {
  switch (kind) {
    case TransportKind::kSim:
      return "sim";
    case TransportKind::kTcp:
      return "tcp";
  }
  return "?";
}

// ---------------------------------------------------------------- NodeTweak

ScenarioBuilder::NodeTweak& ScenarioBuilder::NodeTweak::pacemaker(std::string name) {
  pacemaker_ = std::move(name);
  return *this;
}

ScenarioBuilder::NodeTweak& ScenarioBuilder::NodeTweak::core(std::string name) {
  core_ = std::move(name);
  return *this;
}

ScenarioBuilder::NodeTweak& ScenarioBuilder::NodeTweak::gamma(Duration gamma) {
  gamma_ = gamma;
  return *this;
}

ScenarioBuilder::NodeTweak& ScenarioBuilder::NodeTweak::lumiere(LumiereOptions options) {
  lumiere_ = options;
  return *this;
}

ScenarioBuilder::NodeTweak& ScenarioBuilder::NodeTweak::fever(FeverOptions options) {
  fever_ = options;
  return *this;
}

ScenarioBuilder::NodeTweak& ScenarioBuilder::NodeTweak::view_timeout(Duration timeout) {
  view_timeout_ = timeout;
  return *this;
}

ScenarioBuilder::NodeTweak& ScenarioBuilder::NodeTweak::join_time(TimePoint at) {
  join_time_ = at;
  return *this;
}

ScenarioBuilder::NodeTweak& ScenarioBuilder::NodeTweak::drift_ppm(std::int64_t ppm) {
  drift_ppm_ = ppm;
  return *this;
}

ScenarioBuilder::NodeTweak& ScenarioBuilder::NodeTweak::behavior(BehaviorThunk make) {
  behavior_ = std::move(make);
  return *this;
}

ScenarioBuilder::NodeTweak& ScenarioBuilder::NodeTweak::payload(PayloadProvider provider) {
  payload_ = std::move(provider);
  return *this;
}

// ----------------------------------------------------------- ScenarioBuilder

ScenarioBuilder& ScenarioBuilder::params(ProtocolParams params) {
  params_ = params;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::pacemaker(std::string name) {
  protocol_.pacemaker = std::move(name);
  return *this;
}

ScenarioBuilder& ScenarioBuilder::core(std::string name) {
  protocol_.core = std::move(name);
  return *this;
}

ScenarioBuilder& ScenarioBuilder::gamma(Duration gamma) {
  protocol_.gamma = gamma;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::lumiere(LumiereOptions options) {
  protocol_.lumiere = options;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::fever(FeverOptions options) {
  protocol_.fever = options;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::view_timeout(Duration timeout) {
  protocol_.timeout.view_timeout = timeout;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::relay_timeout(Duration timeout) {
  protocol_.timeout.relay_timeout = timeout;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::seed(std::uint64_t seed) {
  seed_ = seed;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::workload(PayloadProvider provider) {
  workload_ = std::move(provider);
  return *this;
}

ScenarioBuilder& ScenarioBuilder::behaviors(adversary::BehaviorFactory factory) {
  behavior_for_ = std::move(factory);
  return *this;
}

ScenarioBuilder& ScenarioBuilder::gst(TimePoint gst) {
  gst_ = gst;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::delay(std::shared_ptr<sim::DelayPolicy> policy) {
  delay_ = std::move(policy);
  return *this;
}

ScenarioBuilder& ScenarioBuilder::join_stagger(Duration stagger) {
  join_stagger_ = stagger;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::drift_ppm_max(std::int64_t max) {
  drift_ppm_max_ = max;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::transport_sim() {
  transport_ = TransportKind::kSim;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::transport_tcp(std::uint16_t base_port) {
  transport_ = TransportKind::kTcp;
  tcp_base_port_ = base_port;
  return *this;
}

ScenarioBuilder::NodeTweak& ScenarioBuilder::node(ProcessId id) { return tweaks_[id]; }

std::vector<std::string> ScenarioBuilder::validate() const {
  std::vector<std::string> errors;
  const auto& registry = ProtocolRegistry::instance();

  if (params_.n != 3 * params_.f + 1) {
    errors.push_back("params: n must equal 3f + 1 (n = " + std::to_string(params_.n) +
                     ", f = " + std::to_string(params_.f) + ")");
  }
  if (params_.delta_cap <= Duration::zero()) {
    errors.push_back("params: delta_cap (Delta) must be positive");
  }
  if (params_.x < 2) {
    errors.push_back("params: view-completion constant x must be >= 2");
  }
  if (protocol_.gamma < Duration::zero()) {
    errors.push_back("gamma must be non-negative (zero selects the protocol default)");
  }
  if (drift_ppm_max_ < 0) {
    errors.push_back("drift_ppm_max must be non-negative");
  }
  if (join_stagger_ < Duration::zero()) {
    errors.push_back("join_stagger must be non-negative");
  }

  auto check_names = [&](const std::string& where, const std::string& pm,
                         const std::string& core) {
    if (!registry.has_pacemaker(pm)) {
      errors.push_back(where + ": " + registry.unknown_pacemaker_message(pm));
    }
    if (!registry.has_core(core)) {
      errors.push_back(where + ": " + registry.unknown_core_message(core));
    }
  };
  check_names("defaults", protocol_.pacemaker, protocol_.core);

  for (const auto& [id, tweak] : tweaks_) {
    const std::string where = "node " + std::to_string(id);
    if (id >= params_.n) {
      errors.push_back(where + ": override targets a node outside 0.." +
                       std::to_string(params_.n - 1));
      continue;
    }
    check_names(where, tweak.pacemaker_.value_or(protocol_.pacemaker),
                tweak.core_.value_or(protocol_.core));
    if (tweak.gamma_ && *tweak.gamma_ < Duration::zero()) {
      errors.push_back(where + ": gamma must be non-negative");
    }
  }

  if (transport_ == TransportKind::kTcp) {
    if (tcp_base_port_ == 0) {
      errors.push_back("tcp transport: transport_tcp(base_port) requires a non-zero port");
    } else if (static_cast<std::uint32_t>(tcp_base_port_) + params_.n - 1 > 65535) {
      errors.push_back("tcp transport: ports " + std::to_string(tcp_base_port_) + ".." +
                       std::to_string(tcp_base_port_ + params_.n - 1) + " exceed 65535");
    }
    if (delay_ != nullptr) {
      errors.push_back(
          "tcp transport: delay policies are simulator-only (the real network cannot be "
          "adversary-controlled); use transport_sim() for delay experiments");
    }
    if (gst_ != TimePoint::origin()) {
      errors.push_back(
          "tcp transport: GST is simulator-only (wall-clock runs have no synchrony switch); "
          "use transport_sim() for partial-synchrony experiments");
    }
  }
  return errors;
}

Scenario ScenarioBuilder::scenario() const {
  const std::vector<std::string> errors = validate();
  if (!errors.empty()) {
    std::ostringstream out;
    out << "invalid scenario (" << errors.size() << " error" << (errors.size() == 1 ? "" : "s")
        << "):";
    for (const auto& error : errors) out << "\n  - " << error;
    throw std::invalid_argument(out.str());
  }

  Scenario scenario;
  scenario.params = params_;
  scenario.seed = seed_;
  scenario.transport = transport_;
  scenario.gst = gst_;
  scenario.delay = delay_;
  scenario.tcp_base_port = tcp_base_port_;

  Rng join_rng(seed_ ^ 0x4a4f494eULL);
  Rng drift_rng(seed_ ^ 0x44524946ULL);
  scenario.nodes.reserve(params_.n);
  for (ProcessId id = 0; id < params_.n; ++id) {
    NodeSpec spec;
    spec.protocol = protocol_;
    spec.protocol.shared_seed = seed_;
    spec.payload_provider = workload_;
    // The random draws are consumed for every node, override or not, so
    // an override on node k never shifts the other nodes' draws.
    const TimePoint drawn_join = join_stagger_ > Duration::zero()
                                     ? TimePoint(join_rng.next_in(0, join_stagger_.ticks()))
                                     : TimePoint::origin();
    const std::int64_t drawn_drift =
        drift_ppm_max_ > 0 ? drift_rng.next_in(-drift_ppm_max_, drift_ppm_max_) : 0;
    spec.join_time = drawn_join;
    spec.clock_drift_ppm = drawn_drift;
    if (behavior_for_) {
      spec.behavior = [factory = behavior_for_, id] { return factory(id); };
    } else {
      spec.behavior = [] { return std::make_unique<adversary::HonestBehavior>(); };
    }

    const auto it = tweaks_.find(id);
    if (it != tweaks_.end()) {
      const NodeTweak& tweak = it->second;
      if (tweak.pacemaker_) spec.protocol.pacemaker = *tweak.pacemaker_;
      if (tweak.core_) spec.protocol.core = *tweak.core_;
      if (tweak.gamma_) spec.protocol.gamma = *tweak.gamma_;
      if (tweak.lumiere_) spec.protocol.lumiere = *tweak.lumiere_;
      if (tweak.fever_) spec.protocol.fever = *tweak.fever_;
      if (tweak.view_timeout_) spec.protocol.timeout.view_timeout = *tweak.view_timeout_;
      if (tweak.join_time_) spec.join_time = *tweak.join_time_;
      if (tweak.drift_ppm_) spec.clock_drift_ppm = *tweak.drift_ppm_;
      if (tweak.behavior_) spec.behavior = tweak.behavior_;
      if (tweak.payload_) spec.payload_provider = tweak.payload_;
    }
    scenario.nodes.push_back(std::move(spec));
  }
  return scenario;
}

std::unique_ptr<Cluster> ScenarioBuilder::build() const {
  return std::make_unique<Cluster>(scenario());
}

}  // namespace lumiere::runtime
