#include "runtime/scenario.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "common/rng.h"
#include "runtime/cluster.h"
#include "workload/request.h"

namespace lumiere::runtime {

const char* to_string(TransportKind kind) {
  switch (kind) {
    case TransportKind::kSim:
      return "sim";
    case TransportKind::kTcp:
      return "tcp";
  }
  return "?";
}

// ---------------------------------------------------------------- NodeTweak

ScenarioBuilder::NodeTweak& ScenarioBuilder::NodeTweak::pacemaker(std::string name) {
  pacemaker_ = std::move(name);
  return *this;
}

ScenarioBuilder::NodeTweak& ScenarioBuilder::NodeTweak::core(std::string name) {
  core_ = std::move(name);
  return *this;
}

ScenarioBuilder::NodeTweak& ScenarioBuilder::NodeTweak::gamma(Duration gamma) {
  gamma_ = gamma;
  return *this;
}

ScenarioBuilder::NodeTweak& ScenarioBuilder::NodeTweak::lumiere(LumiereOptions options) {
  lumiere_ = options;
  return *this;
}

ScenarioBuilder::NodeTweak& ScenarioBuilder::NodeTweak::fever(FeverOptions options) {
  fever_ = options;
  return *this;
}

ScenarioBuilder::NodeTweak& ScenarioBuilder::NodeTweak::view_timeout(Duration timeout) {
  view_timeout_ = timeout;
  return *this;
}

ScenarioBuilder::NodeTweak& ScenarioBuilder::NodeTweak::join_time(TimePoint at) {
  join_time_ = at;
  return *this;
}

ScenarioBuilder::NodeTweak& ScenarioBuilder::NodeTweak::drift_ppm(std::int64_t ppm) {
  drift_ppm_ = ppm;
  return *this;
}

ScenarioBuilder::NodeTweak& ScenarioBuilder::NodeTweak::behavior(BehaviorThunk make) {
  behavior_ = std::move(make);
  return *this;
}

ScenarioBuilder::NodeTweak& ScenarioBuilder::NodeTweak::payload(PayloadProvider provider) {
  payload_ = std::move(provider);
  return *this;
}

ScenarioBuilder::NodeTweak& ScenarioBuilder::NodeTweak::workload(workload::WorkloadSpec spec) {
  workload_ = std::move(spec);
  return *this;
}

// ----------------------------------------------------------- ScenarioBuilder

ScenarioBuilder& ScenarioBuilder::params(ProtocolParams params) {
  params_ = params;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::pacemaker(std::string name) {
  protocol_.pacemaker = std::move(name);
  return *this;
}

ScenarioBuilder& ScenarioBuilder::core(std::string name) {
  protocol_.core = std::move(name);
  return *this;
}

ScenarioBuilder& ScenarioBuilder::gamma(Duration gamma) {
  protocol_.gamma = gamma;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::lumiere(LumiereOptions options) {
  protocol_.lumiere = options;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::fever(FeverOptions options) {
  protocol_.fever = options;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::view_timeout(Duration timeout) {
  protocol_.timeout.view_timeout = timeout;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::relay_timeout(Duration timeout) {
  protocol_.timeout.relay_timeout = timeout;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::seed(std::uint64_t seed) {
  seed_ = seed;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::auth_scheme(std::string name) {
  auth_scheme_ = std::move(name);
  return *this;
}

ScenarioBuilder& ScenarioBuilder::pipeline(PipelineSpec spec) {
  pipeline_ = spec;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::workload(PayloadProvider provider) {
  workload_ = std::move(provider);
  return *this;
}

ScenarioBuilder& ScenarioBuilder::workload(workload::WorkloadSpec spec) {
  workload_spec_ = std::move(spec);
  return *this;
}

ScenarioBuilder& ScenarioBuilder::dissemination(dissem::DissemSpec spec) {
  dissem_ = spec;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::block_sync(bool on) {
  protocol_.block_sync = on;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::observability(obs::ObsSpec spec) {
  obs_ = spec;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::behaviors(adversary::BehaviorFactory factory) {
  behavior_for_ = std::move(factory);
  return *this;
}

ScenarioBuilder& ScenarioBuilder::gst(TimePoint gst) {
  gst_ = gst;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::delay(std::shared_ptr<sim::DelayPolicy> policy) {
  delay_ = std::move(policy);
  return *this;
}

ScenarioBuilder& ScenarioBuilder::join_stagger(Duration stagger) {
  join_stagger_ = stagger;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::drift_ppm_max(std::int64_t max) {
  drift_ppm_max_ = max;
  return *this;
}

void ScenarioBuilder::push_event(sim::FaultEvent event, TimePoint declared_at) {
  declared_.emplace_back(declared_at, sim::FaultSchedule::describe(event));
  schedule_.events.push_back(std::move(event));
}

ScenarioBuilder& ScenarioBuilder::partition(std::vector<std::vector<ProcessId>> groups,
                                            TimePoint at) {
  sim::FaultEvent event;
  event.at = at;
  event.kind = sim::FaultKind::kPartition;
  event.groups = std::move(groups);
  push_event(std::move(event), at);
  return *this;
}

ScenarioBuilder& ScenarioBuilder::asym_partition(std::vector<ProcessId> from,
                                                 std::vector<ProcessId> to, TimePoint at) {
  sim::FaultEvent event;
  event.at = at;
  event.kind = sim::FaultKind::kAsymPartition;
  event.groups = {std::move(from), std::move(to)};
  push_event(std::move(event), at);
  return *this;
}

ScenarioBuilder& ScenarioBuilder::behavior_change(ProcessId node, std::string behavior,
                                                  TimePoint at) {
  sim::FaultEvent event;
  event.at = at;
  event.kind = sim::FaultKind::kBehaviorChange;
  event.node = node;
  event.behavior = std::move(behavior);
  push_event(std::move(event), at);
  return *this;
}

ScenarioBuilder& ScenarioBuilder::heal(TimePoint at) {
  sim::FaultEvent event;
  event.at = at;
  event.kind = sim::FaultKind::kHeal;
  push_event(std::move(event), at);
  return *this;
}

ScenarioBuilder& ScenarioBuilder::crash(ProcessId node, TimePoint at) {
  sim::FaultEvent event;
  event.at = at;
  event.kind = sim::FaultKind::kCrash;
  event.node = node;
  push_event(std::move(event), at);
  return *this;
}

ScenarioBuilder& ScenarioBuilder::recover(ProcessId node, TimePoint at) {
  sim::FaultEvent event;
  event.at = at;
  event.kind = sim::FaultKind::kRecover;
  event.node = node;
  push_event(std::move(event), at);
  return *this;
}

ScenarioBuilder& ScenarioBuilder::churn(ProcessId node, TimePoint leave_at,
                                        TimePoint rejoin_at) {
  sim::FaultEvent leave;
  leave.at = leave_at;
  leave.kind = sim::FaultKind::kLeave;
  leave.node = node;
  push_event(std::move(leave), leave_at);
  // The rejoin rides on the same declaration: it is checked against its
  // own leave (rejoin_at > leave_at) rather than the declaration order,
  // so a churn window may span later-declared events.
  sim::FaultEvent rejoin;
  rejoin.at = rejoin_at;
  rejoin.kind = sim::FaultKind::kRejoin;
  rejoin.node = node;
  schedule_.events.push_back(std::move(rejoin));
  return *this;
}

ScenarioBuilder& ScenarioBuilder::delay_change(std::shared_ptr<sim::DelayPolicy> policy,
                                               TimePoint at) {
  sim::FaultEvent event;
  event.at = at;
  event.kind = sim::FaultKind::kDelayChange;
  event.delay = std::move(policy);
  push_event(std::move(event), at);
  return *this;
}

ScenarioBuilder& ScenarioBuilder::link_delay(ProcessId from, ProcessId to,
                                             std::shared_ptr<sim::DelayPolicy> policy,
                                             TimePoint at) {
  sim::FaultEvent event;
  event.at = at;
  event.kind = sim::FaultKind::kLinkDelay;
  event.node = from;
  event.peer = to;
  event.delay = std::move(policy);
  push_event(std::move(event), at);
  return *this;
}

ScenarioBuilder& ScenarioBuilder::topology(std::string preset) {
  topology_ = std::move(preset);
  return *this;
}

ScenarioBuilder& ScenarioBuilder::transport_sim() {
  transport_ = TransportKind::kSim;
  return *this;
}

ScenarioBuilder& ScenarioBuilder::transport_tcp(std::uint16_t base_port) {
  transport_ = TransportKind::kTcp;
  tcp_base_port_ = base_port;
  return *this;
}

ScenarioBuilder::NodeTweak& ScenarioBuilder::node(ProcessId id) { return tweaks_[id]; }

std::vector<std::string> ScenarioBuilder::validate() const {
  std::vector<std::string> errors;
  const auto& registry = ProtocolRegistry::instance();

  if (params_.n < 3 * params_.f + 1 || params_.f < 1) {
    errors.push_back("params: n must be at least 3f + 1 with f >= 1 (n = " +
                     std::to_string(params_.n) + ", f = " + std::to_string(params_.f) + ")");
  }
  if (params_.delta_cap <= Duration::zero()) {
    errors.push_back("params: delta_cap (Delta) must be positive");
  }
  if (params_.x < 2) {
    errors.push_back("params: view-completion constant x must be >= 2");
  }
  if (protocol_.gamma < Duration::zero()) {
    errors.push_back("gamma must be non-negative (zero selects the protocol default)");
  }
  if (drift_ppm_max_ < 0) {
    errors.push_back("drift_ppm_max must be non-negative");
  }
  if (join_stagger_ < Duration::zero()) {
    errors.push_back("join_stagger must be non-negative");
  }
  if (!crypto::has_scheme(auth_scheme_)) {
    std::string known;
    for (const auto& name : crypto::scheme_names()) known += " " + name;
    errors.push_back("auth_scheme: unknown scheme \"" + auth_scheme_ +
                     "\"; known schemes:" + known);
  }
  if (pipeline_.enabled) {
    if (transport_ != TransportKind::kTcp) {
      errors.push_back(
          "pipeline: the staged verification pipeline is TCP-transport-only (the "
          "deterministic simulator is single-threaded by design); use transport_tcp()");
    }
    if (pipeline_.workers == 0) {
      errors.push_back("pipeline: workers must be >= 1");
    }
    if (pipeline_.queue_capacity == 0) {
      errors.push_back("pipeline: queue_capacity must be >= 1");
    }
  }

  if (obs_.status_base_port != 0) {
    if (transport_ != TransportKind::kTcp) {
      errors.push_back(
          "observability: status endpoints are TCP-transport-only (a simulated cluster "
          "has no live sockets to serve); use transport_tcp()");
    } else if (static_cast<std::uint32_t>(obs_.status_base_port) + params_.n - 1 > 65535) {
      errors.push_back("observability: status ports " + std::to_string(obs_.status_base_port) +
                       ".." + std::to_string(obs_.status_base_port + params_.n - 1) +
                       " exceed 65535");
    } else if (transport_ == TransportKind::kTcp && tcp_base_port_ != 0 &&
               obs_.status_base_port < tcp_base_port_ + params_.n &&
               tcp_base_port_ < obs_.status_base_port + params_.n) {
      errors.push_back("observability: status ports " + std::to_string(obs_.status_base_port) +
                       ".." + std::to_string(obs_.status_base_port + params_.n - 1) +
                       " overlap the transport ports " + std::to_string(tcp_base_port_) + ".." +
                       std::to_string(tcp_base_port_ + params_.n - 1));
    }
    if (!obs_.tracer) {
      errors.push_back(
          "observability: status endpoints report sync spans — enable the tracer "
          "(ObsSpec::tracer) alongside status_base_port");
    }
  }
  if (!obs_.admin_token.empty() && obs_.status_base_port == 0) {
    errors.push_back(
        "observability: admin_token requires status endpoints (set "
        "ObsSpec::status_base_port)");
  }

  auto check_names = [&](const std::string& where, const std::string& pm,
                         const std::string& core) {
    if (!registry.has_pacemaker(pm)) {
      errors.push_back(where + ": " + registry.unknown_pacemaker_message(pm));
    }
    if (!registry.has_core(core)) {
      errors.push_back(where + ": " + registry.unknown_core_message(core));
    }
  };
  check_names("defaults", protocol_.pacemaker, protocol_.core);

  for (const auto& [id, tweak] : tweaks_) {
    const std::string where = "node " + std::to_string(id);
    if (id >= params_.n) {
      errors.push_back(where + ": override targets a node outside 0.." +
                       std::to_string(params_.n - 1));
      continue;
    }
    check_names(where, tweak.pacemaker_.value_or(protocol_.pacemaker),
                tweak.core_.value_or(protocol_.core));
    if (tweak.gamma_ && *tweak.gamma_ < Duration::zero()) {
      errors.push_back(where + ": gamma must be non-negative");
    }
  }

  // ---- workload ---------------------------------------------------------
  const auto check_workload = [&](const std::string& where, const workload::WorkloadSpec& spec,
                                  const std::string& core_name) {
    if (spec.clients_per_node >= workload::kClientsPerNodeStride) {
      errors.push_back(where + ": workload clients_per_node must be below " +
                       std::to_string(workload::kClientsPerNodeStride) +
                       " (client ids encode the node in the high bits)");
    }
    if (spec.clients_per_node == 0) return;  // workload disabled on this node
    const bool open_loop = spec.arrival != workload::Arrival::kClosedLoop;
    if (open_loop && !(spec.rate_per_client > 0)) {
      errors.push_back(where + ": open-loop workload needs rate_per_client > 0");
    }
    if (!open_loop && spec.in_flight == 0) {
      errors.push_back(where + ": closed-loop workload needs in_flight >= 1");
    }
    if (spec.arrival == workload::Arrival::kBursty) {
      if (spec.burst_factor < 1.0) {
        errors.push_back(where + ": bursty workload needs burst_factor >= 1");
      }
      if (spec.burst_period <= Duration::zero()) {
        errors.push_back(where + ": bursty workload needs burst_period > 0");
      }
      if (!(spec.burst_duty > 0.0 && spec.burst_duty <= 1.0)) {
        errors.push_back(where + ": bursty workload needs burst_duty in (0, 1]");
      }
    }
    if (spec.stop <= spec.start) {
      errors.push_back(where + ": workload stop must be after start");
    }
    if (!spec.body && spec.request_bytes < workload::kRequestHeaderBytes) {
      errors.push_back(where + ": workload request_bytes must be at least the " +
                       std::to_string(workload::kRequestHeaderBytes) + "-byte request header");
    }
    if (spec.mempool.max_batch_count == 0) {
      errors.push_back(where + ": workload mempool max_batch_count must be >= 1");
    }
    if (!spec.body && spec.request_bytes + 4 > spec.mempool.max_batch_bytes) {
      errors.push_back(where +
                       ": workload request_bytes + 4 (framing) exceeds the mempool's "
                       "max_batch_bytes — every request would be rejected as oversized");
    }
    if (core_name == "simple-view") {
      errors.push_back(where +
                       ": a workload needs a committing core (chained-hotstuff or "
                       "hotstuff-2); simple-view never commits, so no request would ever "
                       "complete");
    }
  };
  if (workload_spec_ && workload_) {
    errors.push_back(
        "workload: a WorkloadSpec and a raw PayloadProvider are mutually exclusive at the "
        "cluster level (per-node payload overrides still win over the cluster workload)");
  }
  if (dissem_) {
    if (!workload_spec_) {
      errors.push_back(
          "dissemination: requires the client-driven workload (WorkloadSpec form) — batches "
          "to certify come from the per-node mempools");
    }
    if (workload_) {
      errors.push_back(
          "dissemination: incompatible with a raw PayloadProvider (proposals must carry "
          "certified batch references, not arbitrary bytes)");
    }
    if (dissem_->push_interval <= Duration::zero() ||
        dissem_->retry_interval <= Duration::zero() ||
        dissem_->reinsert_timeout <= Duration::zero()) {
      errors.push_back("dissemination: push/retry/reinsert intervals must be positive");
    }
    if (dissem_->max_refs_per_proposal == 0 || dissem_->max_batches_per_tick == 0 ||
        dissem_->max_uncertified == 0) {
      errors.push_back("dissemination: max_refs_per_proposal, max_batches_per_tick and "
                       "max_uncertified must be >= 1");
    }
    for (const auto& [id, tweak] : tweaks_) {
      if (tweak.payload_) {
        errors.push_back("node " + std::to_string(id) +
                         ": a raw payload override is incompatible with dissemination");
      }
    }
  }
  if (workload_spec_) check_workload("defaults", *workload_spec_, protocol_.core);
  for (const auto& [id, tweak] : tweaks_) {
    if (id >= params_.n) continue;  // reported above
    const std::string where = "node " + std::to_string(id);
    if (tweak.workload_ && tweak.payload_) {
      errors.push_back(where + ": workload and payload overrides are mutually exclusive");
      continue;
    }
    if (tweak.workload_) {
      check_workload(where, *tweak.workload_, tweak.core_.value_or(protocol_.core));
    } else if (workload_spec_ && !tweak.payload_ && tweak.core_) {
      // The cluster workload lands on this node with an overridden core.
      check_workload(where, *workload_spec_, *tweak.core_);
    }
  }

  // ---- fault schedule ---------------------------------------------------
  const auto check_node_id = [&](const std::string& where, ProcessId id) {
    if (id >= params_.n) {
      errors.push_back(where + ": references node id " + std::to_string(id) +
                       " but the cluster has nodes 0.." + std::to_string(params_.n - 1));
      return false;
    }
    return true;
  };
  for (std::size_t i = 1; i < declared_.size(); ++i) {
    if (declared_[i].first < declared_[i - 1].first) {
      errors.push_back("fault schedule: \"" + declared_[i].second +
                       "\" is declared after \"" + declared_[i - 1].second +
                       "\" but happens earlier; declare events in timeline order");
    }
  }
  for (const sim::FaultEvent& event : schedule_.events) {
    const std::string where = "fault schedule: " + sim::FaultSchedule::describe(event);
    if (event.at < TimePoint::origin()) {
      errors.push_back(where + ": event time must not precede the origin");
    }
    switch (event.kind) {
      case sim::FaultKind::kPartition: {
        std::vector<bool> seen(params_.n, false);
        for (const auto& group : event.groups) {
          if (group.empty()) {
            errors.push_back(where + ": partition groups must be non-empty");
          }
          for (const ProcessId id : group) {
            if (!check_node_id(where, id)) continue;
            if (seen[id]) {
              errors.push_back(where + ": node " + std::to_string(id) +
                               " appears in more than one group");
            }
            seen[id] = true;
          }
        }
        break;
      }
      case sim::FaultKind::kAsymPartition: {
        if (event.groups.size() != 2) {
          errors.push_back(where + ": an asymmetric partition needs exactly two groups "
                           "(senders, then receivers of the one-way cut)");
          break;
        }
        for (std::size_t side = 0; side < 2; ++side) {
          const char* const label = side == 0 ? "sender" : "receiver";
          if (event.groups[side].empty()) {
            errors.push_back(where + ": the " + label + " group must be non-empty");
          }
          std::vector<bool> seen(params_.n, false);
          for (const ProcessId id : event.groups[side]) {
            if (!check_node_id(where, id)) continue;
            if (seen[id]) {
              errors.push_back(where + ": node " + std::to_string(id) +
                               " appears twice in the " + label + " group");
            }
            seen[id] = true;
          }
        }
        break;
      }
      case sim::FaultKind::kBehaviorChange:
        check_node_id(where, event.node);
        if (!adversary::has_behavior(event.behavior)) {
          std::string known;
          for (const auto& name : adversary::behavior_names()) known += " " + name;
          errors.push_back(where + ": unknown behavior \"" + event.behavior +
                           "\"; known behaviors:" + known);
        }
        break;
      case sim::FaultKind::kCrash:
      case sim::FaultKind::kRecover:
      case sim::FaultKind::kLeave:
      case sim::FaultKind::kRejoin:
        check_node_id(where, event.node);
        break;
      case sim::FaultKind::kLinkDelay:
        check_node_id(where, event.node);
        check_node_id(where, event.peer);
        break;
      case sim::FaultKind::kHeal:
      case sim::FaultKind::kDelayChange:
        break;
    }
  }
  // A behavior change targets the node's running protocol stack: swapping
  // the behavior of a processor that is down at that instant is a scripted
  // contradiction (the process isn't executing anything to deviate from).
  {
    std::vector<sim::FaultEvent> timeline = schedule_.events;
    std::stable_sort(timeline.begin(), timeline.end(),
                     [](const sim::FaultEvent& a, const sim::FaultEvent& b) { return a.at < b.at; });
    std::vector<bool> down(params_.n, false);
    for (const sim::FaultEvent& event : timeline) {
      if (event.node >= params_.n) continue;  // out-of-range: reported above
      switch (event.kind) {
        case sim::FaultKind::kCrash:
        case sim::FaultKind::kLeave:
          down[event.node] = true;
          break;
        case sim::FaultKind::kRecover:
        case sim::FaultKind::kRejoin:
          down[event.node] = false;
          break;
        case sim::FaultKind::kBehaviorChange:
          if (down[event.node]) {
            errors.push_back("fault schedule: " + sim::FaultSchedule::describe(event) +
                             ": targets a node that is crashed at that instant; recover it "
                             "first (or move the change)");
          }
          break;
        default:
          break;
      }
    }
  }
  // Churn windows: each rejoin must follow its leave. Leave/rejoin events
  // are emitted pairwise by churn(), in order, per node.
  {
    std::map<ProcessId, TimePoint> leave_at;
    for (const sim::FaultEvent& event : schedule_.events) {
      if (event.kind == sim::FaultKind::kLeave) leave_at[event.node] = event.at;
      if (event.kind == sim::FaultKind::kRejoin && leave_at.count(event.node) &&
          event.at <= leave_at[event.node]) {
        errors.push_back("fault schedule: churn of node " + std::to_string(event.node) +
                         " must rejoin strictly after it leaves");
      }
    }
  }

  // ---- topology preset --------------------------------------------------
  if (!topology_.empty()) {
    if (!sim::has_topology_preset(topology_)) {
      errors.push_back("topology: " + sim::unknown_topology_message(topology_));
    } else {
      const sim::TopologyPreset& preset = sim::topology_preset(topology_);
      if (preset.max_delay() > params_.delta_cap) {
        errors.push_back(
            "topology \"" + topology_ + "\": worst link delay (" +
            std::to_string(preset.max_delay().ticks() / 1000) + "ms) exceeds Delta (" +
            std::to_string(params_.delta_cap.ticks() / 1000) +
            "ms); the model would clamp it — raise params delta_cap above the preset's "
            "max_delay()");
      }
      if (delay_ != nullptr) {
        errors.push_back(
            "topology \"" + topology_ +
            "\" and delay() are mutually exclusive (the preset is the delay policy); use "
            "delay_change() to switch policies mid-run");
      }
    }
  }

  if (transport_ == TransportKind::kTcp) {
    if (tcp_base_port_ == 0) {
      errors.push_back("tcp transport: transport_tcp(base_port) requires a non-zero port");
    } else if (static_cast<std::uint32_t>(tcp_base_port_) + params_.n - 1 > 65535) {
      errors.push_back("tcp transport: ports " + std::to_string(tcp_base_port_) + ".." +
                       std::to_string(tcp_base_port_ + params_.n - 1) + " exceed 65535");
    }
    if (delay_ != nullptr) {
      errors.push_back(
          "tcp transport: delay policies are simulator-only (the real network cannot be "
          "adversary-controlled); use transport_sim() for delay experiments");
    }
    if (gst_ != TimePoint::origin()) {
      errors.push_back(
          "tcp transport: GST is simulator-only (wall-clock runs have no synchrony switch); "
          "use transport_sim() for partial-synchrony experiments");
    }
    if (!topology_.empty()) {
      errors.push_back(
          "tcp transport: topology presets are simulator-only (the real network's delays "
          "cannot be scripted); use transport_sim() for WAN experiments");
    }
    for (const sim::FaultEvent& event : schedule_.events) {
      if (event.kind == sim::FaultKind::kDelayChange ||
          event.kind == sim::FaultKind::kLinkDelay) {
        errors.push_back("tcp transport: " + sim::FaultSchedule::describe(event) +
                         " is simulator-only (delays cannot be scripted on real sockets); "
                         "partitions, crashes and churn do have a best-effort TCP analogue");
      }
    }
  }
  return errors;
}

Scenario ScenarioBuilder::scenario() const {
  const std::vector<std::string> errors = validate();
  if (!errors.empty()) {
    std::ostringstream out;
    out << "invalid scenario (" << errors.size() << " error" << (errors.size() == 1 ? "" : "s")
        << "):";
    for (const auto& error : errors) out << "\n  - " << error;
    throw std::invalid_argument(out.str());
  }

  Scenario scenario;
  scenario.params = params_;
  scenario.seed = seed_;
  scenario.transport = transport_;
  scenario.auth_scheme = auth_scheme_;
  scenario.pipeline = pipeline_;
  scenario.gst = gst_;
  scenario.delay = delay_;
  scenario.tcp_base_port = tcp_base_port_;
  scenario.schedule = schedule_;
  scenario.topology = topology_;
  scenario.dissem = dissem_;
  scenario.obs = obs_;
  if (!topology_.empty()) {
    scenario.delay = sim::make_topology_delay(topology_, params_.n);
  }
  // Events executed in time order; the stable sort keeps same-instant
  // events in declaration order (the determinism tests rely on it).
  std::stable_sort(scenario.schedule.events.begin(), scenario.schedule.events.end(),
                   [](const sim::FaultEvent& a, const sim::FaultEvent& b) { return a.at < b.at; });

  Rng join_rng(seed_ ^ 0x4a4f494eULL);
  Rng drift_rng(seed_ ^ 0x44524946ULL);
  scenario.nodes.reserve(params_.n);
  for (ProcessId id = 0; id < params_.n; ++id) {
    NodeSpec spec;
    spec.protocol = protocol_;
    spec.protocol.shared_seed = seed_;
    spec.payload_provider = workload_;
    spec.workload = workload_spec_;
    // The random draws are consumed for every node, override or not, so
    // an override on node k never shifts the other nodes' draws.
    const TimePoint drawn_join = join_stagger_ > Duration::zero()
                                     ? TimePoint(join_rng.next_in(0, join_stagger_.ticks()))
                                     : TimePoint::origin();
    const std::int64_t drawn_drift =
        drift_ppm_max_ > 0 ? drift_rng.next_in(-drift_ppm_max_, drift_ppm_max_) : 0;
    spec.join_time = drawn_join;
    spec.clock_drift_ppm = drawn_drift;
    if (behavior_for_) {
      spec.behavior = [factory = behavior_for_, id] { return factory(id); };
    } else {
      spec.behavior = [] { return std::make_unique<adversary::HonestBehavior>(); };
    }

    const auto it = tweaks_.find(id);
    if (it != tweaks_.end()) {
      const NodeTweak& tweak = it->second;
      if (tweak.pacemaker_) spec.protocol.pacemaker = *tweak.pacemaker_;
      if (tweak.core_) spec.protocol.core = *tweak.core_;
      if (tweak.gamma_) spec.protocol.gamma = *tweak.gamma_;
      if (tweak.lumiere_) spec.protocol.lumiere = *tweak.lumiere_;
      if (tweak.fever_) spec.protocol.fever = *tweak.fever_;
      if (tweak.view_timeout_) spec.protocol.timeout.view_timeout = *tweak.view_timeout_;
      if (tweak.join_time_) spec.join_time = *tweak.join_time_;
      if (tweak.drift_ppm_) spec.clock_drift_ppm = *tweak.drift_ppm_;
      if (tweak.behavior_) spec.behavior = tweak.behavior_;
      if (tweak.payload_) {
        spec.payload_provider = tweak.payload_;
        spec.workload.reset();  // a raw payload override displaces the workload
      }
      if (tweak.workload_) spec.workload = tweak.workload_;
    }
    if (spec.workload && spec.workload->clients_per_node == 0) spec.workload.reset();
    scenario.nodes.push_back(std::move(spec));
  }
  return scenario;
}

std::unique_ptr<Cluster> ScenarioBuilder::build() const {
  return std::make_unique<Cluster>(scenario());
}

}  // namespace lumiere::runtime
