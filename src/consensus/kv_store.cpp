#include "consensus/kv_store.h"

#include "consensus/mempool.h"
#include "ser/serializer.h"

namespace lumiere::consensus {

namespace {

constexpr std::uint8_t kOpSet = 1;
constexpr std::uint8_t kOpDel = 2;

}  // namespace

std::vector<std::uint8_t> KvStore::set_command(std::string_view key, std::string_view value) {
  ser::Writer w;
  w.u8(kOpSet);
  w.str(key);
  w.str(value);
  return std::move(w).take();
}

std::vector<std::uint8_t> KvStore::del_command(std::string_view key) {
  ser::Writer w;
  w.u8(kOpDel);
  w.str(key);
  return std::move(w).take();
}

bool KvStore::apply_command(std::span<const std::uint8_t> command) {
  if (!apply_one_span(command)) return false;
  ++applied_;
  return true;
}

bool KvStore::apply_one(const std::vector<std::uint8_t>& command) {
  return apply_one_span(std::span<const std::uint8_t>(command.data(), command.size()));
}

bool KvStore::apply_one_span(std::span<const std::uint8_t> command) {
  ser::Reader r(command);
  std::uint8_t op = 0;
  std::string key;
  if (!r.u8(op) || !r.str(key)) return false;
  switch (op) {
    case kOpSet: {
      std::string value;
      if (!r.str(value) || !r.exhausted()) return false;
      data_[key] = std::move(value);
      return true;
    }
    case kOpDel:
      if (!r.exhausted()) return false;
      data_.erase(key);
      return true;
    default:
      return false;
  }
}

std::size_t KvStore::apply(const std::vector<std::uint8_t>& payload) {
  std::size_t applied_now = 0;
  for (const auto& command : Mempool::split_batch(payload)) {
    if (apply_one(command)) ++applied_now;
  }
  applied_ += applied_now;
  return applied_now;
}

std::optional<std::string> KvStore::get(const std::string& key) const {
  const auto it = data_.find(key);
  if (it == data_.end()) return std::nullopt;
  return it->second;
}

crypto::Digest KvStore::state_digest() const {
  crypto::Sha256 hasher;
  hasher.update("lumiere.kv");
  for (const auto& [key, value] : data_) {
    ser::Writer w;
    w.str(key);
    w.str(value);
    hasher.update(std::span<const std::uint8_t>(w.data().data(), w.size()));
  }
  return hasher.finish();
}

}  // namespace lumiere::consensus
