// SimpleViewCore: the minimal underlying protocol of Section 2.
//
// One propose/vote/QC exchange per view:
//
//   leader enters v  --proposal-->  replicas in v  --votes-->  leader
//   leader aggregates 2f+1 votes --QC broadcast--> everyone
//
// This satisfies (diamond-1) with x = 3 (proposal delta + votes delta +
// QC dissemination delta) and (diamond-2) because a QC needs 2f+1
// view-v vote shares. It is the core used by all BVS benchmarks: it
// isolates view-synchronization cost exactly as the paper's model does.
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <set>
#include <vector>

#include "consensus/core.h"
#include "consensus/messages.h"
#include "crypto/authenticator.h"

namespace lumiere::consensus {

class SimpleViewCore final : public ConsensusCore {
 public:
  /// Optional payload source consulted when this node proposes.
  using PayloadProvider = std::function<std::vector<std::uint8_t>(View)>;

  SimpleViewCore(const ProtocolParams& params, crypto::AuthView auth, crypto::Signer signer,
                 CoreCallbacks callbacks, PacemakerHooks hooks,
                 PayloadProvider payload_provider = nullptr);

  [[nodiscard]] std::uint32_t x() const override { return 3; }
  void on_enter_view(View v) override;
  void on_message(ProcessId from, const MessagePtr& msg) override;
  void on_propose_allowed(View v) override;
  [[nodiscard]] const QuorumCert& high_qc() const override { return high_qc_; }

  [[nodiscard]] View current_view() const noexcept { return cur_view_; }
  [[nodiscard]] View last_voted_view() const noexcept { return last_voted_view_; }

 private:
  void maybe_propose(View v);
  void maybe_vote(View v);
  void handle_proposal(ProcessId from, const ProposalMsg& msg);
  void handle_vote(ProcessId from, const VoteMsg& msg);
  void handle_qc(const QcMsg& msg);

  ProtocolParams params_;
  crypto::AuthView auth_;
  crypto::Signer signer_;
  CoreCallbacks cb_;
  PacemakerHooks hooks_;
  PayloadProvider payload_provider_;

  View cur_view_ = -1;
  View last_voted_view_ = -1;
  QuorumCert high_qc_;

  /// First valid proposal seen per view (buffered until we enter the view).
  std::map<View, Block> proposals_;
  /// Views in which this node has already broadcast its own proposal.
  std::set<View> proposed_;
  /// Hash this node proposed per view (votes must match it).
  std::map<View, crypto::Digest> my_proposal_hash_;
  /// Vote aggregation for views this node leads.
  std::map<View, crypto::QuorumAggregator> aggregators_;
  /// Views for which this node's QC formation is finished (formed) or
  /// forfeited (missed the pacemaker's production deadline).
  std::set<View> closed_views_;
  /// Views for which some QC has already been observed (dedupe).
  std::set<View> seen_qc_views_;
  /// Hot-path memos: per-(view, block) vote statements and fingerprints
  /// of QCs that already passed full verification.
  StatementCache statements_;
  QcVerifyCache verified_;
};

}  // namespace lumiere::consensus
