// Chained HotStuff (Yin et al., PODC 2019) as the full SMR layer.
//
// One block per view, pipelined phases, 3-chain commit rule with
// consecutive views. The pacemaker is external (that is the whole point
// of this repository); this core only:
//
//   * sends NewView(high_qc) to lead(v) on entering view v,
//   * as leader: proposes once 2f+1 NewView messages arrive, extending
//     the highest reported QC,
//   * votes under the safeNode rule (extends locked block, or justify
//     newer than lock),
//   * aggregates votes into QCs, broadcasts them,
//   * locks on 2-chains and commits on 3-chains with consecutive views.
//
// x = 4 for (diamond-1): new-view + proposal + vote + QC dissemination.
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <set>
#include <vector>

#include "consensus/block.h"
#include "consensus/core.h"
#include "consensus/messages.h"
#include "crypto/authenticator.h"

namespace lumiere::consensus {

class ChainedHotStuff final : public ConsensusCore {
 public:
  using PayloadProvider = std::function<std::vector<std::uint8_t>(View)>;

  ChainedHotStuff(const ProtocolParams& params, crypto::AuthView auth, crypto::Signer signer,
                  CoreCallbacks callbacks, PacemakerHooks hooks,
                  PayloadProvider payload_provider = nullptr);

  [[nodiscard]] std::uint32_t x() const override { return 4; }
  void on_enter_view(View v) override;
  void on_message(ProcessId from, const MessagePtr& msg) override;
  void on_propose_allowed(View v) override;
  [[nodiscard]] const QuorumCert& high_qc() const override { return high_qc_; }
  void on_synced_block(const Block& block) override;
  [[nodiscard]] std::shared_ptr<const Block> block_for_sync(
      const crypto::Digest& hash) const override {
    return store_.get(hash);
  }

  [[nodiscard]] View current_view() const noexcept { return cur_view_; }
  [[nodiscard]] const QuorumCert& locked_qc() const noexcept { return locked_qc_; }
  [[nodiscard]] const BlockStore& block_store() const noexcept { return store_; }
  [[nodiscard]] View last_committed_view() const noexcept { return last_committed_view_; }

  /// Crash recovery (restarted replica processes): allow a core that has
  /// never committed to adopt a certified block with a missing ancestry
  /// as its commit checkpoint instead of stalling forever on the
  /// unfillable pre-restart prefix. Off by default — simulated clusters
  /// retain full history and must keep full-prefix ledgers.
  void set_checkpoint_adoption(bool on) noexcept { checkpoint_adoption_ = on; }

 private:
  void handle_new_view(ProcessId from, const NewViewMsg& msg);
  void handle_proposal(ProcessId from, const ProposalMsg& msg);
  void handle_vote(ProcessId from, const VoteMsg& msg);
  void handle_qc_msg(const QcMsg& msg);
  void maybe_propose();
  void maybe_vote();
  /// Chain bookkeeping for any newly observed QC: high-qc update, 2-chain
  /// lock, 3-chain commit.
  void process_qc(const QuorumCert& qc);
  void commit_chain(const Block& tip);
  [[nodiscard]] bool safe_to_vote(const Block& block) const;

  ProtocolParams params_;
  crypto::AuthView auth_;
  crypto::Signer signer_;
  CoreCallbacks cb_;
  PacemakerHooks hooks_;
  PayloadProvider payload_provider_;

  View cur_view_ = -1;
  View last_voted_view_ = -1;
  QuorumCert high_qc_;
  QuorumCert locked_qc_;
  View last_committed_view_ = -1;
  crypto::Digest last_committed_hash_;
  bool checkpoint_adoption_ = false;
  /// Block-sync state: the commit-walk tip that wedged on a missing
  /// ancestor and the hash handed to CoreCallbacks::fetch_missing; the
  /// walk resumes from the tip when that exact block is synced in.
  bool sync_pending_ = false;
  crypto::Digest sync_tip_;
  crypto::Digest sync_missing_;

  BlockStore store_;
  /// NewView bookkeeping for the view this node currently leads:
  /// distinct senders seen and the highest valid QC they reported.
  std::map<View, SignerSet> new_view_senders_;
  /// Distinct late blocks admitted per stale view, capped — bounds what
  /// an ex-leader can stuff into the store while still admitting both
  /// variants of an equivocated view (keying on view alone let the
  /// losing variant occupy the slot and dropped the certified winner).
  static constexpr std::uint32_t kMaxStaleBlocksPerView = 4;
  std::map<View, std::uint32_t> stale_stored_;
  std::set<View> proposed_;
  std::map<View, crypto::Digest> my_proposal_hash_;
  std::map<View, crypto::QuorumAggregator> aggregators_;
  std::set<View> closed_views_;
  std::map<View, Block> pending_proposals_;
  std::set<View> seen_qc_views_;
  /// Hot-path memos: per-(view, block) vote statements and fingerprints
  /// of QCs that already passed full verification.
  StatementCache statements_;
  QcVerifyCache verified_;
};

}  // namespace lumiere::consensus
