#include "consensus/simple_view_core.h"

#include "common/log.h"

namespace lumiere::consensus {

SimpleViewCore::SimpleViewCore(const ProtocolParams& params, crypto::AuthView auth,
                               crypto::Signer signer, CoreCallbacks callbacks,
                               PacemakerHooks hooks, PayloadProvider payload_provider)
    : params_(params),
      auth_(auth),
      signer_(signer),
      cb_(std::move(callbacks)),
      hooks_(std::move(hooks)),
      payload_provider_(std::move(payload_provider)),
      high_qc_(QuorumCert::genesis(Block::genesis().hash())) {
  LUMIERE_ASSERT(auth);
  params_.validate();
}

void SimpleViewCore::on_enter_view(View v) {
  if (v <= cur_view_) return;  // monotone; duplicate notifications are no-ops
  cur_view_ = v;
  // Old buffered proposals can never be voted again.
  proposals_.erase(proposals_.begin(), proposals_.lower_bound(v));
  maybe_propose(v);
  maybe_vote(v);
}

void SimpleViewCore::on_propose_allowed(View v) {
  if (v == cur_view_) maybe_propose(v);
}

void SimpleViewCore::maybe_propose(View v) {
  if (hooks_.leader_of(v) != signer_.id()) return;
  if (proposed_.contains(v)) return;
  if (hooks_.may_propose && !hooks_.may_propose(v)) return;
  proposed_.insert(v);
  std::vector<std::uint8_t> payload;
  if (payload_provider_) payload = payload_provider_(v);
  Block block(high_qc_.block_hash(), v, std::move(payload), high_qc_);
  my_proposal_hash_[v] = block.hash();
  LOG_TRACE("p" << signer_.id() << " proposes view " << v);
  cb_.broadcast(std::make_shared<ProposalMsg>(std::move(block)));
}

void SimpleViewCore::maybe_vote(View v) {
  if (v != cur_view_ || v <= last_voted_view_) return;
  const auto it = proposals_.find(v);
  if (it == proposals_.end()) return;
  const Block& block = it->second;
  if (cb_.payload_ok && !cb_.payload_ok(block)) return;
  last_voted_view_ = v;
  const crypto::Digest statement = statements_.get(v, block.hash());
  cb_.send(hooks_.leader_of(v),
           std::make_shared<VoteMsg>(v, block.hash(), crypto::threshold_share(signer_, statement)));
}

void SimpleViewCore::on_message(ProcessId from, const MessagePtr& msg) {
  switch (msg->type_id()) {
    case kProposal:
      handle_proposal(from, static_cast<const ProposalMsg&>(*msg));
      break;
    case kVote:
      handle_vote(from, static_cast<const VoteMsg&>(*msg));
      break;
    case kQcAnnounce:
      handle_qc(static_cast<const QcMsg&>(*msg));
      break;
    default:
      break;  // not a consensus message; the Node routes, but be tolerant
  }
}

void SimpleViewCore::handle_proposal(ProcessId from, const ProposalMsg& msg) {
  const View v = msg.block().view();
  if (v < cur_view_) return;
  if (hooks_.leader_of(v) != from) return;  // not the legitimate proposer
  // Keep only the first proposal per view; an equivocating leader simply
  // fails to gather a quorum on either copy.
  if (!proposals_.contains(v)) proposals_.emplace(v, msg.block());
  maybe_vote(v);
}

void SimpleViewCore::handle_vote(ProcessId /*from*/, const VoteMsg& msg) {
  const View v = msg.view();
  if (hooks_.leader_of(v) != signer_.id()) return;  // not our view to lead
  // A leader that moved past v no longer assembles its QC. Without this,
  // votes cast by processors passing through v at *disjoint* times could
  // combine into a QC, violating the spirit of (diamond-2) — which
  // requires 2f+1 processors acting in view v over a non-empty interval.
  if (v < cur_view_) return;
  if (closed_views_.contains(v)) return;
  const auto proposed = my_proposal_hash_.find(v);
  if (proposed == my_proposal_hash_.end()) return;       // haven't proposed yet
  if (proposed->second != msg.block_hash()) return;      // vote for foreign block
  auto [it, inserted] = aggregators_.try_emplace(
      v, auth_, statements_.get(v, msg.block_hash()), params_.quorum());
  (void)inserted;
  if (!it->second.add(msg.share())) return;
  if (!it->second.complete()) return;

  closed_views_.insert(v);
  if (hooks_.may_form_qc && !hooks_.may_form_qc(v)) {
    // Production deadline missed (Section 4): the view is forfeited.
    LOG_TRACE("p" << signer_.id() << " forfeits QC for view " << v << " (deadline)");
    aggregators_.erase(v);
    return;
  }
  QuorumCert qc(v, msg.block_hash(), it->second.aggregate());
  aggregators_.erase(v);
  if (cb_.qc_formed) cb_.qc_formed(qc);
  LOG_TRACE("p" << signer_.id() << " forms QC for view " << v);
  cb_.broadcast(std::make_shared<QcMsg>(std::move(qc)));
}

void SimpleViewCore::handle_qc(const QcMsg& msg) {
  const QuorumCert& qc = msg.qc();
  if (seen_qc_views_.contains(qc.view())) return;
  if (!qc.verify(auth_, params_, &verified_)) return;
  seen_qc_views_.insert(qc.view());
  if (qc.view() > high_qc_.view()) high_qc_ = qc;
  if (cb_.qc_seen) cb_.qc_seen(qc);
}

}  // namespace lumiere::consensus
