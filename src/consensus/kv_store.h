// A deterministic key-value state machine executing committed payloads.
//
// The canonical SMR application: commands are "SET key value" / "DEL key"
// strings batched by the Mempool framing. Replicas that execute the same
// committed prefix reach byte-identical states; `state_digest()` gives a
// cheap cross-replica equality check (used by tests and examples).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "crypto/sha256.h"

namespace lumiere::consensus {

class KvStore {
 public:
  /// Command encodings (the examples' client side).
  [[nodiscard]] static std::vector<std::uint8_t> set_command(std::string_view key,
                                                             std::string_view value);
  [[nodiscard]] static std::vector<std::uint8_t> del_command(std::string_view key);

  /// Executes one committed block payload (a Mempool batch). Malformed
  /// commands are skipped deterministically (all replicas skip the same
  /// ones); returns the number of commands applied.
  std::size_t apply(const std::vector<std::uint8_t>& payload);

  /// Executes a single command (the body of a workload request, already
  /// unwrapped from the batch framing). Returns false on a malformed
  /// command — skipped, deterministically, on every replica.
  bool apply_command(std::span<const std::uint8_t> command);

  [[nodiscard]] std::optional<std::string> get(const std::string& key) const;
  [[nodiscard]] std::size_t size() const noexcept { return data_.size(); }
  [[nodiscard]] std::uint64_t applied_commands() const noexcept { return applied_; }

  /// Digest over the full sorted state: replicas agree iff equal.
  [[nodiscard]] crypto::Digest state_digest() const;

  [[nodiscard]] const std::map<std::string, std::string>& data() const noexcept { return data_; }

 private:
  bool apply_one(const std::vector<std::uint8_t>& command);
  bool apply_one_span(std::span<const std::uint8_t> command);

  std::map<std::string, std::string> data_;
  std::uint64_t applied_ = 0;
};

}  // namespace lumiere::consensus
