#include "consensus/ledger.h"

namespace lumiere::consensus {

void Ledger::commit(const Block& block, TimePoint at) {
  if (!entries_.empty()) {
    const CommittedEntry& prev = entries_.back();
    LUMIERE_ASSERT_MSG(block.view() > prev.view, "ledger: commit views must increase");
    LUMIERE_ASSERT_MSG(block.parent() == prev.hash,
                       "ledger: committed chain broken (safety violation)");
  } else {
    LUMIERE_ASSERT_MSG(block.parent() == Block::genesis().hash(),
                       "ledger: first commit must extend genesis");
  }
  entries_.push_back(
      CommittedEntry{block.view(), block.hash(), block.parent(), block.payload(), at});
}

bool Ledger::prefix_consistent_with(const Ledger& other) const {
  const std::size_t common = std::min(entries_.size(), other.entries_.size());
  for (std::size_t i = 0; i < common; ++i) {
    if (entries_[i].hash != other.entries_[i].hash) return false;
  }
  return true;
}

}  // namespace lumiere::consensus
