#include "consensus/ledger.h"

namespace lumiere::consensus {

void Ledger::commit(const Block& block, TimePoint at) {
  if (!entries_.empty()) {
    const CommittedEntry& prev = entries_.back();
    LUMIERE_ASSERT_MSG(block.view() > prev.view, "ledger: commit views must increase");
    LUMIERE_ASSERT_MSG(block.parent() == prev.hash,
                       "ledger: committed chain broken (safety violation)");
  } else {
    LUMIERE_ASSERT_MSG(block.parent() == base_parent_,
                       "ledger: first commit must extend its base "
                       "(genesis, or the adopted checkpoint)");
  }
  entries_.push_back(
      CommittedEntry{block.view(), block.hash(), block.parent(), block.payload(), at});
}

void Ledger::adopt_base(const crypto::Digest& parent) {
  LUMIERE_ASSERT_MSG(entries_.empty(), "ledger: adopt_base on a non-empty ledger");
  base_parent_ = parent;
  adopted_ = true;
}

bool Ledger::prefix_consistent_with(const Ledger& other) const {
  const std::size_t common = std::min(entries_.size(), other.entries_.size());
  for (std::size_t i = 0; i < common; ++i) {
    if (entries_[i].hash != other.entries_[i].hash) return false;
  }
  return true;
}

}  // namespace lumiere::consensus
