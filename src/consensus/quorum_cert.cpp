#include "consensus/quorum_cert.h"

namespace lumiere::consensus {

crypto::Digest QuorumCert::statement(View view, const crypto::Digest& block_hash) {
  // Byte-identical to the ser::Writer encoding this replaced
  // (u32-length-prefixed "lumiere.qc", LE i64 view, raw digest) but built
  // in a stack buffer: this runs once per vote on the leader's hot path
  // and must not allocate.
  constexpr std::string_view kDomain = "lumiere.qc";
  std::array<std::uint8_t, 4 + kDomain.size() + 8 + crypto::Digest::kSize> buf{};
  std::size_t pos = 0;
  const auto le = [&](std::uint64_t v, std::size_t bytes) {
    for (std::size_t i = 0; i < bytes; ++i) buf[pos++] = static_cast<std::uint8_t>(v >> (8 * i));
  };
  le(kDomain.size(), 4);
  for (const char c : kDomain) buf[pos++] = static_cast<std::uint8_t>(c);
  le(static_cast<std::uint64_t>(view), 8);
  for (const std::uint8_t b : block_hash.bytes()) buf[pos++] = b;
  return crypto::Sha256::hash(std::span<const std::uint8_t>(buf.data(), buf.size()));
}

QuorumCert QuorumCert::genesis(const crypto::Digest& genesis_hash) {
  QuorumCert qc;
  qc.view_ = -1;
  qc.block_hash_ = genesis_hash;
  return qc;
}

bool QuorumCert::verify(crypto::AuthView auth, const ProtocolParams& params,
                        QcVerifyCache* cache) const {
  if (is_genesis()) return true;
  crypto::Digest key;
  if (cache != nullptr) {
    key = cache->fingerprint(*this);
    if (cache->known_good(key)) return true;
  }
  if (sig_.message != statement(view_, block_hash_)) return false;
  if (!auth.verify_aggregate(sig_, params.quorum())) return false;
  if (cache != nullptr) cache->remember(key);
  return true;
}

void QuorumCert::serialize(ser::Writer& w) const {
  w.view(view_);
  w.digest(block_hash_);
  w.threshold_sig(sig_);
}

std::optional<QuorumCert> QuorumCert::deserialize(ser::Reader& r) {
  QuorumCert qc;
  if (!r.view(qc.view_)) return std::nullopt;
  if (!r.digest(qc.block_hash_)) return std::nullopt;
  if (!r.threshold_sig(qc.sig_)) return std::nullopt;
  return qc;
}

}  // namespace lumiere::consensus
