#include "consensus/quorum_cert.h"

namespace lumiere::consensus {

crypto::Digest QuorumCert::statement(View view, const crypto::Digest& block_hash) {
  ser::Writer w;
  w.str("lumiere.qc");
  w.view(view);
  w.digest(block_hash);
  return crypto::Sha256::hash(std::span<const std::uint8_t>(w.data().data(), w.size()));
}

QuorumCert QuorumCert::genesis(const crypto::Digest& genesis_hash) {
  QuorumCert qc;
  qc.view_ = -1;
  qc.block_hash_ = genesis_hash;
  return qc;
}

bool QuorumCert::verify(const crypto::Pki& pki, const ProtocolParams& params) const {
  if (is_genesis()) return true;
  if (sig_.message != statement(view_, block_hash_)) return false;
  return crypto::verify_threshold(pki, sig_, params.quorum());
}

void QuorumCert::serialize(ser::Writer& w) const {
  w.view(view_);
  w.digest(block_hash_);
  w.digest(sig_.message);
  w.signer_set(sig_.signers);
  w.digest(sig_.tag);
}

std::optional<QuorumCert> QuorumCert::deserialize(ser::Reader& r) {
  QuorumCert qc;
  if (!r.view(qc.view_)) return std::nullopt;
  if (!r.digest(qc.block_hash_)) return std::nullopt;
  if (!r.digest(qc.sig_.message)) return std::nullopt;
  if (!r.signer_set(qc.sig_.signers)) return std::nullopt;
  if (!r.digest(qc.sig_.tag)) return std::nullopt;
  return qc;
}

}  // namespace lumiere::consensus
