// The committed log (SMR output).
#pragma once

#include <cstdint>
#include <vector>

#include "common/assert.h"
#include "common/time.h"
#include "consensus/block.h"

namespace lumiere::consensus {

/// One committed block, in commit order.
struct CommittedEntry {
  View view = -1;
  crypto::Digest hash;
  crypto::Digest parent;
  std::vector<std::uint8_t> payload;
  TimePoint committed_at;
};

/// An append-only commit log with basic integrity checks. Cross-node
/// prefix consistency (the SMR safety property) is checked by tests via
/// `prefix_consistent_with`.
class Ledger {
 public:
  /// Appends a committed block. Asserts view monotonicity and parent-hash
  /// continuity — a violation here is a consensus-safety bug.
  void commit(const Block& block, TimePoint at);

  [[nodiscard]] const std::vector<CommittedEntry>& entries() const noexcept { return entries_; }
  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }
  [[nodiscard]] bool empty() const noexcept { return entries_.empty(); }

  /// True if one log is a prefix of the other (by block hash).
  [[nodiscard]] bool prefix_consistent_with(const Ledger& other) const;

 private:
  std::vector<CommittedEntry> entries_;
};

}  // namespace lumiere::consensus
