// The committed log (SMR output).
#pragma once

#include <cstdint>
#include <vector>

#include "common/assert.h"
#include "common/time.h"
#include "consensus/block.h"

namespace lumiere::consensus {

/// One committed block, in commit order.
struct CommittedEntry {
  View view = -1;
  crypto::Digest hash;
  crypto::Digest parent;
  std::vector<std::uint8_t> payload;
  TimePoint committed_at;
};

/// An append-only commit log with basic integrity checks. Cross-node
/// prefix consistency (the SMR safety property) is checked by tests via
/// `prefix_consistent_with`.
class Ledger {
 public:
  /// Appends a committed block. Asserts view monotonicity and parent-hash
  /// continuity — a violation here is a consensus-safety bug.
  void commit(const Block& block, TimePoint at);

  /// Crash recovery: declares that this (still empty) ledger's first
  /// commit extends `parent` — a certified checkpoint adopted by the
  /// consensus core — instead of genesis. The ledger then records a
  /// committed *suffix* of the cluster's chain, not a full prefix.
  void adopt_base(const crypto::Digest& parent);
  [[nodiscard]] bool checkpoint_adopted() const noexcept { return adopted_; }
  /// Hash the first committed entry must extend (genesis, or the adopted
  /// checkpoint's parent).
  [[nodiscard]] const crypto::Digest& base_parent() const noexcept { return base_parent_; }

  [[nodiscard]] const std::vector<CommittedEntry>& entries() const noexcept { return entries_; }
  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }
  [[nodiscard]] bool empty() const noexcept { return entries_.empty(); }

  /// True if one log is a prefix of the other (by block hash).
  [[nodiscard]] bool prefix_consistent_with(const Ledger& other) const;

 private:
  std::vector<CommittedEntry> entries_;
  crypto::Digest base_parent_ = Block::genesis().hash();
  bool adopted_ = false;
};

}  // namespace lumiere::consensus
