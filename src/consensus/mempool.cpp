#include "consensus/mempool.h"

#include <string_view>

#include "ser/serializer.h"

namespace lumiere::consensus {

void Mempool::add(std::vector<std::uint8_t> command) { queue_.push_back(std::move(command)); }

void Mempool::add(std::string_view command) {
  queue_.emplace_back(command.begin(), command.end());
}

std::vector<std::uint8_t> Mempool::next_batch() {
  ser::Writer w;
  std::size_t used = 0;
  while (!queue_.empty()) {
    const auto& cmd = queue_.front();
    const std::size_t cost = cmd.size() + 4;
    if (used > 0 && used + cost > max_batch_bytes_) break;
    w.bytes(std::span<const std::uint8_t>(cmd.data(), cmd.size()));
    used += cost;
    queue_.pop_front();
  }
  return std::move(w).take();
}

std::vector<std::vector<std::uint8_t>> Mempool::split_batch(
    const std::vector<std::uint8_t>& payload) {
  std::vector<std::vector<std::uint8_t>> out;
  ser::Reader r(std::span<const std::uint8_t>(payload.data(), payload.size()));
  std::vector<std::uint8_t> cmd;
  while (!r.exhausted() && r.bytes(cmd)) {
    out.push_back(cmd);
  }
  return out;
}

}  // namespace lumiere::consensus
