#include "consensus/mempool.h"

#include <algorithm>
#include <string_view>

#include "common/assert.h"
#include "ser/serializer.h"

namespace lumiere::consensus {

const char* to_string(Admission admission) {
  switch (admission) {
    case Admission::kAccepted:
      return "accepted";
    case Admission::kFull:
      return "full";
    case Admission::kOversized:
      return "oversized";
    case Admission::kDuplicate:
      return "duplicate";
  }
  return "?";
}

Mempool::Mempool(MempoolLimits limits) : limits_(limits) {
  LUMIERE_ASSERT_MSG(limits_.max_batch_bytes > 4, "max_batch_bytes cannot fit any command");
  LUMIERE_ASSERT_MSG(limits_.max_batch_count > 0, "max_batch_count must be positive");
}

bool Mempool::has_capacity(std::size_t command_bytes) const noexcept {
  return queue_.size() < limits_.max_pending_count &&
         pending_bytes_ + command_bytes <= limits_.max_pending_bytes;
}

Admission Mempool::add(std::vector<std::uint8_t> command) {
  if (batch_cost(command) > limits_.max_batch_bytes) {
    ++rejected_oversized_;
    return Admission::kOversized;
  }
  if (!has_capacity(command.size())) {
    ++rejected_full_;
    starving_ = true;
    return Admission::kFull;
  }
  if (limits_.suppress_duplicates) {
    const crypto::Digest digest = crypto::Sha256::hash(
        std::span<const std::uint8_t>(command.data(), command.size()));
    if (!live_.insert(digest).second) {
      ++rejected_duplicate_;
      return Admission::kDuplicate;
    }
  }
  pending_bytes_ += command.size();
  queue_.push_back(std::move(command));
  ++admitted_;
  return Admission::kAccepted;
}

Admission Mempool::add(std::string_view command) {
  return add(std::vector<std::uint8_t>(command.begin(), command.end()));
}

std::vector<std::vector<std::uint8_t>> Mempool::drain_batch(std::vector<std::uint8_t>& payload) {
  ser::Writer w;
  std::size_t used = 0;
  std::vector<std::vector<std::uint8_t>> drained;
  while (!queue_.empty() && drained.size() < limits_.max_batch_count) {
    auto& cmd = queue_.front();
    const std::size_t cost = batch_cost(cmd);
    if (used + cost > limits_.max_batch_bytes) break;
    w.bytes(std::span<const std::uint8_t>(cmd.data(), cmd.size()));
    used += cost;
    pending_bytes_ -= cmd.size();
    drained.push_back(std::move(cmd));
    queue_.pop_front();
  }
  payload = std::move(w).take();
  return drained;
}

std::vector<std::uint8_t> Mempool::next_batch() {
  std::vector<std::uint8_t> payload;
  for (const auto& cmd : drain_batch(payload)) {
    // Drained for good: release the duplicate-suppression hold.
    if (limits_.suppress_duplicates) {
      live_.erase(crypto::Sha256::hash(std::span<const std::uint8_t>(cmd.data(), cmd.size())));
    }
  }
  maybe_signal_space();
  return payload;
}

std::vector<std::uint8_t> Mempool::next_batch(View view) {
  std::vector<std::uint8_t> payload;
  std::vector<std::vector<std::uint8_t>> drained = drain_batch(payload);
  if (!drained.empty()) {
    in_flight_count_ += drained.size();
    auto& slot = leases_[view];
    for (auto& cmd : drained) {
      const crypto::Digest digest =
          crypto::Sha256::hash(std::span<const std::uint8_t>(cmd.data(), cmd.size()));
      slot.push_back(LeasedCommand{digest, std::move(cmd)});
    }
  }
  maybe_signal_space();
  return payload;
}

std::uint64_t Mempool::lease_batch(std::vector<std::uint8_t>& payload) {
  payload.clear();
  std::vector<std::vector<std::uint8_t>> drained = drain_batch(payload);
  if (drained.empty()) return 0;
  in_flight_count_ += drained.size();
  const std::uint64_t token = ++next_token_;
  auto& slot = token_leases_[token];
  slot.reserve(drained.size());
  for (auto& cmd : drained) {
    const crypto::Digest digest =
        crypto::Sha256::hash(std::span<const std::uint8_t>(cmd.data(), cmd.size()));
    slot.push_back(LeasedCommand{digest, std::move(cmd)});
  }
  maybe_signal_space();
  return token;
}

void Mempool::ack_batch(std::uint64_t token) {
  const auto it = token_leases_.find(token);
  if (it == token_leases_.end()) return;
  acked_ += it->second.size();
  in_flight_count_ -= it->second.size();
  for (const LeasedCommand& leased : it->second) live_.erase(leased.digest);
  token_leases_.erase(it);
  maybe_signal_space();
}

void Mempool::requeue_batch(std::uint64_t token) {
  const auto it = token_leases_.find(token);
  if (it == token_leases_.end()) return;
  requeued_ += it->second.size();
  in_flight_count_ -= it->second.size();
  for (auto rit = it->second.rbegin(); rit != it->second.rend(); ++rit) {
    pending_bytes_ += rit->command.size();
    queue_.push_front(std::move(rit->command));
  }
  token_leases_.erase(it);
  maybe_signal_space();
}

void Mempool::on_commit(View view, const std::vector<std::uint8_t>& payload) {
  if (leases_.empty()) return;
  // Ack: a leased command can only ever appear in the block of the view
  // it was drained into (no other node holds our commands), so the match
  // runs against that one lease — commits of other leaders' blocks skip
  // the payload hashing entirely. Counted, not set-membership: with
  // duplicate suppression off, byte-identical copies may sit in several
  // leases, and one committed instance must ack exactly one of them —
  // the rest stay leased (and requeue if abandoned) so no admitted copy
  // is lost.
  const auto slot = leases_.find(view);
  if (slot != leases_.end()) {
    std::map<crypto::Digest, std::size_t> committed;
    for (const auto& cmd : split_batch(payload)) {
      ++committed[crypto::Sha256::hash(std::span<const std::uint8_t>(cmd.data(), cmd.size()))];
    }
    auto& batch = slot->second;
    const std::size_t before = batch.size();
    batch.erase(std::remove_if(batch.begin(), batch.end(),
                               [&](const LeasedCommand& leased) {
                                 const auto hit = committed.find(leased.digest);
                                 if (hit == committed.end() || hit->second == 0) return false;
                                 --hit->second;
                                 live_.erase(leased.digest);
                                 return true;
                               }),
                batch.end());
    acked_ += before - batch.size();
    in_flight_count_ -= before - batch.size();
    if (batch.empty()) leases_.erase(slot);
  }
  // Requeue: commits arrive in view order, so a lease at a view at or
  // below the committed one whose commands were not in the chain belongs
  // to a forever-abandoned proposal. Back to the front, oldest first —
  // requeued commands bypass the capacity check (they were admitted).
  std::vector<std::vector<std::uint8_t>> back;
  for (auto it = leases_.begin(); it != leases_.end() && it->first <= view;) {
    for (auto& leased : it->second) back.push_back(std::move(leased.command));
    it = leases_.erase(it);
  }
  if (!back.empty()) {
    requeued_ += back.size();
    in_flight_count_ -= back.size();
    for (auto rit = back.rbegin(); rit != back.rend(); ++rit) {
      pending_bytes_ += rit->size();
      queue_.push_front(std::move(*rit));
    }
  }
  maybe_signal_space();
}

void Mempool::maybe_signal_space() {
  if (!starving_ || !has_capacity(0)) return;
  starving_ = false;
  if (space_available_) space_available_();
}

std::vector<std::vector<std::uint8_t>> Mempool::split_batch(
    std::span<const std::uint8_t> payload) {
  std::vector<std::vector<std::uint8_t>> out;
  ser::Reader r(payload);
  std::vector<std::uint8_t> cmd;
  while (!r.exhausted() && r.bytes(cmd)) {
    out.push_back(cmd);
  }
  return out;
}

}  // namespace lumiere::consensus
