// Quorum certificates (Section 2, "The underlying protocol").
//
// A QC for view v is a threshold signature by 2f+1 distinct processors
// testifying that they completed the instructions for view v on a given
// block. Its wire size is O(kappa), independent of n.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <unordered_set>

#include "common/params.h"
#include "common/types.h"
#include "crypto/authenticator.h"
#include "crypto/sha256.h"
#include "ser/serializer.h"

namespace lumiere::consensus {

class QcVerifyCache;

class QuorumCert {
 public:
  QuorumCert() = default;
  QuorumCert(View view, crypto::Digest block_hash, crypto::ThresholdSig sig)
      : view_(view), block_hash_(block_hash), sig_(std::move(sig)) {}

  /// The statement that vote shares sign: binds view and block.
  static crypto::Digest statement(View view, const crypto::Digest& block_hash);

  /// The genesis QC: certifies the genesis block at view -1. Trusted by
  /// construction (all processors are initialized with it), never
  /// verified cryptographically.
  static QuorumCert genesis(const crypto::Digest& genesis_hash);

  [[nodiscard]] View view() const noexcept { return view_; }
  [[nodiscard]] const crypto::Digest& block_hash() const noexcept { return block_hash_; }
  [[nodiscard]] const crypto::ThresholdSig& sig() const noexcept { return sig_; }
  [[nodiscard]] bool is_genesis() const noexcept { return view_ == -1; }

  /// Full verification: 2f+1 distinct valid signers over the right
  /// statement. Genesis QCs verify trivially. With a cache, a QC whose
  /// exact bytes already verified is accepted by fingerprint lookup
  /// (one SHA-256) instead of re-checking the aggregate.
  [[nodiscard]] bool verify(crypto::AuthView auth, const ProtocolParams& params,
                            QcVerifyCache* cache = nullptr) const;

  void serialize(ser::Writer& w) const;
  [[nodiscard]] static std::optional<QuorumCert> deserialize(ser::Reader& r);

  bool operator==(const QuorumCert&) const = default;

 private:
  View view_ = -1;
  crypto::Digest block_hash_;
  crypto::ThresholdSig sig_;
};

/// Memo for QuorumCert::statement. A leader aggregating n votes — and a
/// replica checking n QC-bearing messages — keeps asking for the digest
/// of the same (view, block_hash) pair; this answers repeats without
/// re-running SHA-256. Direct-mapped by view (votes for view v and
/// proposals for v+1 land in different slots), so lookups are O(1) with
/// no allocation ever.
class StatementCache {
 public:
  // By value on purpose: a reference into a direct-mapped slot would be
  // silently invalidated by the next colliding get().
  [[nodiscard]] crypto::Digest get(View view, const crypto::Digest& block_hash) {
    Entry& entry = entries_[static_cast<std::size_t>(static_cast<std::uint64_t>(view) %
                                                     entries_.size())];
    if (!entry.valid || entry.view != view || entry.block_hash != block_hash) {
      entry.view = view;
      entry.block_hash = block_hash;
      entry.statement = QuorumCert::statement(view, block_hash);
      entry.valid = true;
    }
    return entry.statement;
  }

 private:
  struct Entry {
    View view = -1;
    crypto::Digest block_hash;
    crypto::Digest statement;
    bool valid = false;
  };
  std::array<Entry, 8> entries_{};
};

/// Remembers the fingerprints (SHA-256 over the full serialized form, so
/// no two distinct QCs share a key) of QCs that passed full
/// verification. Re-verifying one costs a single hash instead of 2f+1
/// MAC checks — the common case, since every proposal re-carries its
/// justify QC and every replica reports its high QC each view.
class QcVerifyCache {
 public:
  [[nodiscard]] crypto::Digest fingerprint(const QuorumCert& qc) {
    scratch_.clear();
    ser::Writer w(std::move(scratch_));
    qc.serialize(w);
    scratch_ = std::move(w).take();
    return crypto::Sha256::hash(
        std::span<const std::uint8_t>(scratch_.data(), scratch_.size()));
  }
  [[nodiscard]] bool known_good(const crypto::Digest& key) const {
    return good_.contains(key);
  }
  void remember(const crypto::Digest& key) {
    // Entries accrue one per distinct QC (≈ one per view); cap so an
    // adversary spraying junk certificates cannot grow this unboundedly.
    if (good_.size() >= kMaxEntries) good_.clear();
    good_.insert(key);
  }

 private:
  static constexpr std::size_t kMaxEntries = 4096;
  std::unordered_set<crypto::Digest> good_;
  std::vector<std::uint8_t> scratch_;
};

}  // namespace lumiere::consensus
