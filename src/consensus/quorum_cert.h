// Quorum certificates (Section 2, "The underlying protocol").
//
// A QC for view v is a threshold signature by 2f+1 distinct processors
// testifying that they completed the instructions for view v on a given
// block. Its wire size is O(kappa), independent of n.
#pragma once

#include <cstdint>
#include <optional>

#include "common/params.h"
#include "common/types.h"
#include "crypto/sha256.h"
#include "crypto/threshold.h"
#include "ser/serializer.h"

namespace lumiere::consensus {

class QuorumCert {
 public:
  QuorumCert() = default;
  QuorumCert(View view, crypto::Digest block_hash, crypto::ThresholdSig sig)
      : view_(view), block_hash_(block_hash), sig_(std::move(sig)) {}

  /// The statement that vote shares sign: binds view and block.
  static crypto::Digest statement(View view, const crypto::Digest& block_hash);

  /// The genesis QC: certifies the genesis block at view -1. Trusted by
  /// construction (all processors are initialized with it), never
  /// verified cryptographically.
  static QuorumCert genesis(const crypto::Digest& genesis_hash);

  [[nodiscard]] View view() const noexcept { return view_; }
  [[nodiscard]] const crypto::Digest& block_hash() const noexcept { return block_hash_; }
  [[nodiscard]] const crypto::ThresholdSig& sig() const noexcept { return sig_; }
  [[nodiscard]] bool is_genesis() const noexcept { return view_ == -1; }

  /// Full verification: 2f+1 distinct valid signers over the right
  /// statement. Genesis QCs verify trivially.
  [[nodiscard]] bool verify(const crypto::Pki& pki, const ProtocolParams& params) const;

  void serialize(ser::Writer& w) const;
  [[nodiscard]] static std::optional<QuorumCert> deserialize(ser::Reader& r);

  bool operator==(const QuorumCert&) const = default;

 private:
  View view_ = -1;
  crypto::Digest block_hash_;
  crypto::ThresholdSig sig_;
};

}  // namespace lumiere::consensus
