#include "consensus/chained_hotstuff.h"

#include "common/log.h"

namespace lumiere::consensus {

ChainedHotStuff::ChainedHotStuff(const ProtocolParams& params, crypto::AuthView auth,
                                 crypto::Signer signer, CoreCallbacks callbacks,
                                 PacemakerHooks hooks, PayloadProvider payload_provider)
    : params_(params),
      auth_(auth),
      signer_(signer),
      cb_(std::move(callbacks)),
      hooks_(std::move(hooks)),
      payload_provider_(std::move(payload_provider)),
      high_qc_(QuorumCert::genesis(Block::genesis().hash())),
      locked_qc_(high_qc_),
      last_committed_hash_(Block::genesis().hash()) {
  LUMIERE_ASSERT(auth);
  params_.validate();
}

void ChainedHotStuff::on_enter_view(View v) {
  if (v <= cur_view_) return;
  cur_view_ = v;
  pending_proposals_.erase(pending_proposals_.begin(), pending_proposals_.lower_bound(v));
  // Report the highest QC to the new leader so its proposal extends at
  // least one QC held by every 2f+1 quorum (liveness after view change).
  cb_.send(hooks_.leader_of(v), std::make_shared<NewViewMsg>(v, high_qc_));
  maybe_propose();
  maybe_vote();
}

void ChainedHotStuff::handle_new_view(ProcessId from, const NewViewMsg& msg) {
  const View v = msg.view();
  if (hooks_.leader_of(v) != signer_.id()) return;
  if (v < cur_view_) return;  // stale
  if (msg.high_qc().verify(auth_, params_, &verified_)) {
    process_qc(msg.high_qc());
  }
  auto [it, inserted] = new_view_senders_.try_emplace(v, SignerSet(params_.n));
  (void)inserted;
  it->second.add(from);
  maybe_propose();
}

void ChainedHotStuff::on_propose_allowed(View /*v*/) { maybe_propose(); }

void ChainedHotStuff::maybe_propose() {
  const View v = cur_view_;
  if (v < 0) return;
  if (hooks_.leader_of(v) != signer_.id()) return;
  if (proposed_.contains(v)) return;
  if (hooks_.may_propose && !hooks_.may_propose(v)) return;
  const auto it = new_view_senders_.find(v);
  if (it == new_view_senders_.end() || it->second.count() < params_.quorum()) return;

  proposed_.insert(v);
  std::vector<std::uint8_t> payload;
  if (payload_provider_) payload = payload_provider_(v);
  Block block(high_qc_.block_hash(), v, std::move(payload), high_qc_);
  my_proposal_hash_[v] = block.hash();
  store_.insert(block);
  LOG_TRACE("p" << signer_.id() << " HS-proposes view " << v);
  cb_.broadcast(std::make_shared<ProposalMsg>(std::move(block)));
}

bool ChainedHotStuff::safe_to_vote(const Block& block) const {
  if (block.view() <= last_voted_view_) return false;
  // safeNode: extends the locked block, or carries a newer justify than
  // our lock (the standard HotStuff disjunction).
  if (block.justify().view() > locked_qc_.view()) return true;
  return store_.extends(block.hash(), locked_qc_.block_hash());
}

void ChainedHotStuff::maybe_vote() {
  const auto it = pending_proposals_.find(cur_view_);
  if (it == pending_proposals_.end()) return;
  const Block& block = it->second;
  if (!safe_to_vote(block)) return;
  if (cb_.payload_ok && !cb_.payload_ok(block)) return;
  last_voted_view_ = block.view();
  const crypto::Digest statement = statements_.get(block.view(), block.hash());
  cb_.send(hooks_.leader_of(block.view()),
           std::make_shared<VoteMsg>(block.view(), block.hash(),
                                     crypto::threshold_share(signer_, statement)));
}

void ChainedHotStuff::handle_proposal(ProcessId from, const ProposalMsg& msg) {
  const Block& block = msg.block();
  const View v = block.view();
  if (hooks_.leader_of(v) != from) return;
  // Commit horizon: the commit walk never crosses below the committed
  // block, so blocks at or under it are dead weight — and dropping them
  // bounds what a past leader can stuff into the store.
  if (v <= last_committed_view_) return;
  if (!block.justify().verify(auth_, params_, &verified_)) return;
  // Store even when the view has passed: commit_chain refuses to commit
  // across a missing ancestor, so a verified block that arrives late
  // (real networks reorder across senders) must still enter the store or
  // this node's ledger stalls forever. Voting stays view-gated below.
  // The late-admission cap counts DISTINCT blocks per view (re-delivery
  // of a stored block is free): an equivocating ex-leader has two
  // variants in flight, and the certified winner must not be dropped
  // because the losing variant claimed the view's only slot first.
  if (v < cur_view_ && !store_.contains(block.hash())) {
    std::uint32_t& admitted = stale_stored_[v];
    if (admitted >= kMaxStaleBlocksPerView) return;
    ++admitted;
  }
  store_.insert(block);
  process_qc(block.justify());  // a proposal piggybacks the QC it extends
  if (v < cur_view_) return;    // too late to vote
  if (!pending_proposals_.contains(v)) pending_proposals_.emplace(v, block);
  maybe_vote();
}

void ChainedHotStuff::handle_vote(ProcessId /*from*/, const VoteMsg& msg) {
  const View v = msg.view();
  if (hooks_.leader_of(v) != signer_.id()) return;
  // Leaders that moved past v stop assembling its QC — see (diamond-2):
  // a QC must come from 2f+1 processors in view v over a shared interval,
  // not from stragglers passing through v at disjoint times.
  if (v < cur_view_) return;
  if (closed_views_.contains(v)) return;
  const auto proposed = my_proposal_hash_.find(v);
  if (proposed == my_proposal_hash_.end() || proposed->second != msg.block_hash()) return;
  auto [it, inserted] = aggregators_.try_emplace(
      v, auth_, statements_.get(v, msg.block_hash()), params_.quorum());
  (void)inserted;
  if (!it->second.add(msg.share())) return;
  if (!it->second.complete()) return;

  closed_views_.insert(v);
  if (hooks_.may_form_qc && !hooks_.may_form_qc(v)) {
    aggregators_.erase(v);
    return;
  }
  QuorumCert qc(v, msg.block_hash(), it->second.aggregate());
  aggregators_.erase(v);
  if (cb_.qc_formed) cb_.qc_formed(qc);
  cb_.broadcast(std::make_shared<QcMsg>(std::move(qc)));
}

void ChainedHotStuff::handle_qc_msg(const QcMsg& msg) {
  if (!msg.qc().verify(auth_, params_, &verified_)) return;
  process_qc(msg.qc());
}

void ChainedHotStuff::process_qc(const QuorumCert& qc) {
  if (qc.view() > high_qc_.view()) high_qc_ = qc;
  const bool fresh = !seen_qc_views_.contains(qc.view());
  if (fresh) {
    seen_qc_views_.insert(qc.view());
    if (cb_.qc_seen) cb_.qc_seen(qc);
  }

  // Chain rules. b0 is the block this QC certifies.
  const auto b0 = store_.get(qc.block_hash());
  if (b0 == nullptr) return;
  const QuorumCert& qc1 = b0->justify();
  // 2-chain lock: qc -> b0 --parent--> b1 certified by qc1.
  if (b0->parent() != qc1.block_hash()) return;
  if (qc1.view() > locked_qc_.view()) locked_qc_ = qc1;

  const auto b1 = store_.get(qc1.block_hash());
  if (b1 == nullptr) return;
  const QuorumCert& qc2 = b1->justify();
  if (b1->parent() != qc2.block_hash()) return;
  // 3-chain commit with consecutive views.
  if (qc.view() == qc1.view() + 1 && qc1.view() == qc2.view() + 1) {
    const auto b2 = store_.get(qc2.block_hash());
    if (b2 != nullptr && b2->view() > last_committed_view_) commit_chain(*b2);
  }
}

void ChainedHotStuff::commit_chain(const Block& tip) {
  // Commit every uncommitted ancestor of `tip` (inclusive), oldest first.
  std::vector<std::shared_ptr<const Block>> chain;
  auto current = store_.get(tip.hash());
  while (current != nullptr && current->view() > last_committed_view_) {
    chain.push_back(current);
    current = store_.get(current->parent());
  }
  // The chain must reconnect to the last committed block. A hash
  // mismatch means a fork — commit nothing. A missing ancestor used to
  // mean either a late block that will still arrive or a permanent wedge
  // (an equivocation victim holding the losing variant, or a restarted
  // process whose pre-crash history is gone — peers only stream new
  // proposals). `tip` satisfies the commit rule, so every block
  // collected above is already committed cluster-wide. With block sync
  // wired (cb_.fetch_missing), the missing ancestor is fetched from
  // peers and the walk resumes in on_synced_block — full-history
  // backfill, preferred over checkpoint adoption's suffix-only recovery.
  // Without it, checkpoint adoption lets a never-committed core adopt
  // the deepest block it holds as a certified checkpoint.
  if (current == nullptr || current->hash() != last_committed_hash_) {
    if (current == nullptr && !chain.empty() && cb_.fetch_missing) {
      sync_pending_ = true;
      sync_tip_ = tip.hash();
      sync_missing_ = chain.back()->parent();
      cb_.fetch_missing(sync_missing_);
      return;
    }
    const bool adoptable = checkpoint_adoption_ && current == nullptr && !chain.empty() &&
                           last_committed_view_ == Block::genesis().view();
    if (!adoptable) return;
    if (cb_.adopt_base) cb_.adopt_base(*chain.back());
  }
  sync_pending_ = false;
  for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
    last_committed_view_ = (*it)->view();
    last_committed_hash_ = (*it)->hash();
    stale_stored_.erase(stale_stored_.begin(),
                        stale_stored_.upper_bound(last_committed_view_));
    if (cb_.decided) cb_.decided(**it);
  }
}

void ChainedHotStuff::on_synced_block(const Block& block) {
  store_.insert(block);
  // Resume only when the exact gap the walk reported is filled: the sync
  // layer delivers a response segment deepest-first, so the requested
  // block lands last and the walk crosses the whole segment in one pass
  // (re-wedging on the next gap re-arms sync_pending_ and fetches on).
  if (!sync_pending_ || block.hash() != sync_missing_) return;
  sync_pending_ = false;
  const auto tip = store_.get(sync_tip_);
  if (tip != nullptr && tip->view() > last_committed_view_) commit_chain(*tip);
}

void ChainedHotStuff::on_message(ProcessId from, const MessagePtr& msg) {
  switch (msg->type_id()) {
    case kNewView:
      handle_new_view(from, static_cast<const NewViewMsg&>(*msg));
      break;
    case kProposal:
      handle_proposal(from, static_cast<const ProposalMsg&>(*msg));
      break;
    case kVote:
      handle_vote(from, static_cast<const VoteMsg&>(*msg));
      break;
    case kQcAnnounce:
      handle_qc_msg(static_cast<const QcMsg&>(*msg));
      break;
    default:
      break;
  }
}

}  // namespace lumiere::consensus
