#include "consensus/block.h"

namespace lumiere::consensus {

Block::Block(crypto::Digest parent, View view, std::vector<std::uint8_t> payload,
             QuorumCert justify)
    : parent_(parent), view_(view), payload_(std::move(payload)), justify_(std::move(justify)) {
  compute_hash();
}

void Block::compute_hash() {
  ser::Writer w;
  w.str("lumiere.block");
  w.digest(parent_);
  w.view(view_);
  w.bytes(std::span<const std::uint8_t>(payload_.data(), payload_.size()));
  w.view(justify_.view());
  w.digest(justify_.block_hash());
  hash_ = crypto::Sha256::hash(std::span<const std::uint8_t>(w.data().data(), w.size()));
}

const Block& Block::genesis() {
  static const Block g = [] {
    Block b;
    b.parent_ = crypto::Digest{};
    b.view_ = -1;
    b.justify_ = QuorumCert();  // overwritten below to self-certify
    b.compute_hash();
    Block with_qc;
    with_qc.parent_ = b.parent_;
    with_qc.view_ = b.view_;
    with_qc.justify_ = QuorumCert::genesis(b.hash());
    with_qc.hash_ = b.hash();  // genesis identity excludes its own QC
    return with_qc;
  }();
  return g;
}

void Block::serialize(ser::Writer& w) const {
  w.digest(parent_);
  w.view(view_);
  w.bytes(std::span<const std::uint8_t>(payload_.data(), payload_.size()));
  justify_.serialize(w);
}

std::optional<Block> Block::deserialize(ser::Reader& r) {
  Block b;
  if (!r.digest(b.parent_)) return std::nullopt;
  if (!r.view(b.view_)) return std::nullopt;
  if (!r.bytes(b.payload_)) return std::nullopt;
  auto justify = QuorumCert::deserialize(r);
  if (!justify) return std::nullopt;
  b.justify_ = std::move(*justify);
  b.compute_hash();
  return b;
}

BlockStore::BlockStore() {
  auto g = std::make_shared<const Block>(Block::genesis());
  blocks_.emplace(g->hash(), std::move(g));
}

std::shared_ptr<const Block> BlockStore::insert(Block block) {
  const auto it = blocks_.find(block.hash());
  if (it != blocks_.end()) return it->second;
  auto ptr = std::make_shared<const Block>(std::move(block));
  blocks_.emplace(ptr->hash(), ptr);
  return ptr;
}

std::shared_ptr<const Block> BlockStore::get(const crypto::Digest& hash) const {
  const auto it = blocks_.find(hash);
  return it == blocks_.end() ? nullptr : it->second;
}

bool BlockStore::contains(const crypto::Digest& hash) const {
  return blocks_.find(hash) != blocks_.end();
}

std::shared_ptr<const Block> BlockStore::ancestor(const crypto::Digest& hash,
                                                  std::uint32_t steps) const {
  auto current = get(hash);
  for (std::uint32_t i = 0; i < steps && current != nullptr; ++i) {
    current = get(current->parent());
  }
  return current;
}

bool BlockStore::extends(const crypto::Digest& descendant, const crypto::Digest& ancestor) const {
  auto current = get(descendant);
  while (current != nullptr) {
    if (current->hash() == ancestor) return true;
    if (current->view() <= Block::genesis().view()) break;
    current = get(current->parent());
  }
  return current != nullptr && current->hash() == ancestor;
}

}  // namespace lumiere::consensus
