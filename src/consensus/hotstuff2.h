// HotStuff-2 (Malkhi & Nayak, 2023 — reference [14] of the paper) as a
// chained two-phase SMR core.
//
// Identical pipeline shape to ChainedHotStuff (one block per view, votes
// to the leader, QC broadcast), but with the two-phase rules:
//
//   * LOCK on a 1-chain: observing a QC for block b locks b's QC when it
//     is newer than the current lock;
//   * COMMIT on a 2-chain with consecutive views: a QC for view v whose
//     block's justify certifies the parent at view v-1 commits the parent;
//   * VOTE rule: a proposal is safe when it extends its own justify and
//     its justify is at least as new as the local lock.
//
// The phase the classic 3-phase protocol spends "confirming the lock" is
// replaced by HotStuff-2's dual proposal path:
//
//   * RESPONSIVE: a leader holding a QC for view v-1 proposes at once —
//     that QC proves no conflicting lock can be newer;
//   * FALLBACK: otherwise the leader waits Delta after entering the view
//     before proposing, long enough (post-GST) to have received every
//     honest replica's NewView(high_qc), so its proposal carries a
//     justify no honest lock exceeds.
//
// x = 4 for (diamond-1), as for ChainedHotStuff: the fallback Delta-wait
// plus proposal + vote + QC dissemination fits 4 message delays when
// delta = Delta, which is all the pacemakers assume when sizing Gamma.
// Within a synchronized run, views entered via QCs always take the
// responsive path, so decisions land one round earlier than with the
// 3-chain rule — HotStuff-2's headline saving.
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <set>
#include <vector>

#include "consensus/block.h"
#include "consensus/core.h"
#include "consensus/messages.h"
#include "crypto/authenticator.h"

namespace lumiere::consensus {

class HotStuff2 final : public ConsensusCore {
 public:
  using PayloadProvider = std::function<std::vector<std::uint8_t>(View)>;

  HotStuff2(const ProtocolParams& params, crypto::AuthView auth, crypto::Signer signer,
            CoreCallbacks callbacks, PacemakerHooks hooks,
            PayloadProvider payload_provider = nullptr);

  [[nodiscard]] std::uint32_t x() const override { return 4; }
  void on_enter_view(View v) override;
  void on_message(ProcessId from, const MessagePtr& msg) override;
  void on_propose_allowed(View v) override;
  [[nodiscard]] const QuorumCert& high_qc() const override { return high_qc_; }
  void on_synced_block(const Block& block) override;
  [[nodiscard]] std::shared_ptr<const Block> block_for_sync(
      const crypto::Digest& hash) const override {
    return store_.get(hash);
  }

  [[nodiscard]] View current_view() const noexcept { return cur_view_; }
  [[nodiscard]] const QuorumCert& locked_qc() const noexcept { return locked_qc_; }
  [[nodiscard]] const BlockStore& block_store() const noexcept { return store_; }
  [[nodiscard]] View last_committed_view() const noexcept { return last_committed_view_; }
  /// Views this node proposed in via the responsive path (no Delta-wait).
  [[nodiscard]] std::uint64_t responsive_proposals() const noexcept {
    return responsive_proposals_;
  }
  /// Views this node proposed in only after the Delta fallback elapsed.
  [[nodiscard]] std::uint64_t fallback_proposals() const noexcept { return fallback_proposals_; }

  /// Crash recovery (restarted replica processes): allow a core that has
  /// never committed to adopt a certified block with a missing ancestry
  /// as its commit checkpoint instead of stalling forever on the
  /// unfillable pre-restart prefix. Off by default — simulated clusters
  /// retain full history and must keep full-prefix ledgers.
  void set_checkpoint_adoption(bool on) noexcept { checkpoint_adoption_ = on; }

 private:
  void handle_new_view(ProcessId from, const NewViewMsg& msg);
  void handle_proposal(ProcessId from, const ProposalMsg& msg);
  void handle_vote(ProcessId from, const VoteMsg& msg);
  void handle_qc_msg(const QcMsg& msg);
  void maybe_propose();
  void maybe_vote();
  /// 1-chain lock + 2-chain consecutive commit bookkeeping.
  void process_qc(const QuorumCert& qc);
  void commit_chain(const Block& tip);
  [[nodiscard]] bool safe_to_vote(const Block& block) const;

  ProtocolParams params_;
  crypto::AuthView auth_;
  crypto::Signer signer_;
  CoreCallbacks cb_;
  PacemakerHooks hooks_;
  PayloadProvider payload_provider_;

  View cur_view_ = -1;
  View last_voted_view_ = -1;
  QuorumCert high_qc_;
  QuorumCert locked_qc_;
  View last_committed_view_ = -1;
  crypto::Digest last_committed_hash_;
  bool checkpoint_adoption_ = false;
  /// Block-sync state: the commit-walk tip that wedged on a missing
  /// ancestor and the hash handed to CoreCallbacks::fetch_missing; the
  /// walk resumes from the tip when that exact block is synced in.
  bool sync_pending_ = false;
  crypto::Digest sync_tip_;
  crypto::Digest sync_missing_;

  BlockStore store_;
  /// Views whose Delta fallback timer has expired while this node led them.
  std::set<View> fallback_elapsed_;
  /// Distinct late blocks admitted per stale view, capped — bounds what
  /// an ex-leader can stuff into the store while still admitting both
  /// variants of an equivocated view (keying on view alone let the
  /// losing variant occupy the slot and dropped the certified winner).
  static constexpr std::uint32_t kMaxStaleBlocksPerView = 4;
  std::map<View, std::uint32_t> stale_stored_;
  std::set<View> proposed_;
  std::map<View, crypto::Digest> my_proposal_hash_;
  std::map<View, crypto::QuorumAggregator> aggregators_;
  std::set<View> closed_views_;
  std::map<View, Block> pending_proposals_;
  std::set<View> seen_qc_views_;
  std::uint64_t responsive_proposals_ = 0;
  std::uint64_t fallback_proposals_ = 0;
  /// Hot-path memos: per-(view, block) vote statements and fingerprints
  /// of QCs that already passed full verification.
  StatementCache statements_;
  QcVerifyCache verified_;
};

}  // namespace lumiere::consensus
