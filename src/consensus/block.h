// Blocks: the units the underlying SMR protocol chains and commits.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "consensus/quorum_cert.h"
#include "crypto/sha256.h"
#include "ser/serializer.h"

namespace lumiere::consensus {

/// An immutable proposed block. `justify` is the QC the proposer extends
/// (chained-HotStuff style); SimpleViewCore also carries it so that every
/// block is self-certifying about its parent's quorum.
class Block {
 public:
  Block(crypto::Digest parent, View view, std::vector<std::uint8_t> payload, QuorumCert justify);

  /// The deterministic genesis block (view -1, no payload).
  static const Block& genesis();

  [[nodiscard]] const crypto::Digest& hash() const noexcept { return hash_; }
  [[nodiscard]] const crypto::Digest& parent() const noexcept { return parent_; }
  [[nodiscard]] View view() const noexcept { return view_; }
  [[nodiscard]] const std::vector<std::uint8_t>& payload() const noexcept { return payload_; }
  [[nodiscard]] const QuorumCert& justify() const noexcept { return justify_; }

  void serialize(ser::Writer& w) const;
  [[nodiscard]] static std::optional<Block> deserialize(ser::Reader& r);

  bool operator==(const Block& other) const noexcept { return hash_ == other.hash_; }

 private:
  Block() = default;
  void compute_hash();

  crypto::Digest parent_;
  View view_ = -1;
  std::vector<std::uint8_t> payload_;
  QuorumCert justify_;
  crypto::Digest hash_;
};

/// Content-addressed block storage per node. Blocks are kept by shared
/// pointer so different indices share one allocation.
class BlockStore {
 public:
  BlockStore();

  /// Inserts a block (idempotent); returns the stored pointer.
  std::shared_ptr<const Block> insert(Block block);

  [[nodiscard]] std::shared_ptr<const Block> get(const crypto::Digest& hash) const;
  [[nodiscard]] bool contains(const crypto::Digest& hash) const;

  /// Walks the parent chain: returns the ancestor `steps` levels above, or
  /// nullptr if the chain is not locally complete.
  [[nodiscard]] std::shared_ptr<const Block> ancestor(const crypto::Digest& hash,
                                                      std::uint32_t steps) const;

  /// True if `descendant` extends (or equals) `ancestor` within the
  /// locally known chain.
  [[nodiscard]] bool extends(const crypto::Digest& descendant, const crypto::Digest& ancestor) const;

  [[nodiscard]] std::size_t size() const noexcept { return blocks_.size(); }

 private:
  std::unordered_map<crypto::Digest, std::shared_ptr<const Block>> blocks_;
};

}  // namespace lumiere::consensus
