// The abstract "underlying protocol" of Section 2.
//
// A ConsensusCore is the view-scoped consensus logic the pacemaker
// synchronizes. The contract mirrors the paper's assumptions:
//
//  (diamond-1) There is a known x >= 2 such that, post-GST, if lead(v) is
//      honest and 2f+1 honest processors stay in view v, all honest
//      processors receive a QC for v within x * delta.
//  (diamond-2) No view produces a QC unless 2f+1 processors act as if
//      honest and in the view over a non-empty interval.
//
// Each implementation documents its x. The pacemaker is consulted through
// `PacemakerHooks` before a leader finalizes a QC (Lumiere's
// Gamma/2 - 2*Delta production deadline, Section 4).
#pragma once

#include <functional>
#include <memory>

#include "common/params.h"
#include "common/time.h"
#include "common/types.h"
#include "consensus/quorum_cert.h"
#include "ser/message.h"

namespace lumiere::consensus {

class Block;

/// Callbacks a ConsensusCore uses to reach the outside world. Provided by
/// the runtime Node; plain std::function so tests can wire cores directly.
struct CoreCallbacks {
  std::function<void(ProcessId to, MessagePtr msg)> send;
  std::function<void(MessagePtr msg)> broadcast;
  /// Fired when *this node*, as leader, forms a QC (before broadcasting).
  std::function<void(const QuorumCert& qc)> qc_formed;
  /// Fired when any valid QC is observed (own or received); the pacemaker
  /// consumes these to bump clocks / advance views.
  std::function<void(const QuorumCert& qc)> qc_seen;
  /// SMR commit (chained HotStuff / HotStuff-2).
  std::function<void(const Block& block)> decided;
  /// Crash recovery (ProtocolConfig::checkpoint_adoption): the core is
  /// about to make `base` its first decided block even though base's
  /// parent is outside this node's history — base is a certified
  /// checkpoint, the ledger becomes a committed suffix of the chain.
  /// Fired once, immediately before decided(base).
  std::function<void(const Block& base)> adopt_base;
  /// Vote gate over a proposal's payload. Null means every payload is
  /// acceptable (the legacy inline-batch mode); with the dissemination
  /// layer active it verifies that the payload is a well-formed list of
  /// certified batch references, so a Byzantine leader proposing bogus
  /// references collects no honest votes.
  std::function<bool(const Block& block)> payload_ok;
  /// Runs `fn` after `delay` of real (simulated) time. Cores that need
  /// timers (HotStuff-2's Delta-wait before a non-responsive proposal)
  /// use this; may be null for cores that never schedule.
  std::function<void(Duration delay, std::function<void()> fn)> schedule;
  /// Block sync (ProtocolConfig::block_sync): the commit walk hit an
  /// ancestor missing from the local store that no peer will re-send on
  /// its own — an equivocation victim's dropped winner, or a restarted
  /// replica's pre-crash history. The sync subsystem fetches the block
  /// by hash from peers and feeds it back via
  /// ConsensusCore::on_synced_block. Null when block sync is off.
  std::function<void(const crypto::Digest& hash)> fetch_missing;
};

/// The pacemaker-side hooks consulted by cores.
struct PacemakerHooks {
  /// Leader schedule: lead(v).
  std::function<ProcessId(View)> leader_of;
  /// May this node, as lead(v), produce a QC for v right now? Lumiere
  /// enforces its production deadline here; other pacemakers say yes.
  std::function<bool(View v)> may_form_qc;
  /// May this node, as lead(v), broadcast its proposal for v right now?
  /// Lumiere holds initial-view proposals until the leader has sent the
  /// VC for v, which anchors the QC-production deadline (Section 4); the
  /// pacemaker later calls ConsensusCore::on_propose_allowed(v).
  std::function<bool(View v)> may_propose;
};

class ConsensusCore {
 public:
  virtual ~ConsensusCore() = default;

  /// The view-completion constant x of (diamond-1) for this core.
  [[nodiscard]] virtual std::uint32_t x() const = 0;

  /// The pacemaker moved this node into view v (monotonically increasing).
  virtual void on_enter_view(View v) = 0;

  /// A message arrived from `from` (possibly Byzantine — validate).
  virtual void on_message(ProcessId from, const MessagePtr& msg) = 0;

  /// The pacemaker lifted a may_propose() gate for view v (see
  /// PacemakerHooks::may_propose). Default: retry proposing.
  virtual void on_propose_allowed(View v) = 0;

  /// Highest QC this node knows (for proposals and new-view reporting).
  [[nodiscard]] virtual const QuorumCert& high_qc() const = 0;

  /// Block sync delivered a verified block (content-addressed and
  /// parent-linked to a hash this core reported via
  /// CoreCallbacks::fetch_missing). Committing cores store it and resume
  /// the stalled commit walk; the default no-op suits cores that never
  /// commit (simple-view).
  virtual void on_synced_block(const Block& block) { (void)block; }

  /// Serve a block-sync fetch from this core's store (nullptr = unknown).
  [[nodiscard]] virtual std::shared_ptr<const Block> block_for_sync(
      const crypto::Digest& hash) const {
    (void)hash;
    return nullptr;
  }
};

}  // namespace lumiere::consensus
