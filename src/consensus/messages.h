// Wire messages of the underlying protocol.
#pragma once

#include <memory>
#include <optional>
#include <utility>

#include "consensus/block.h"
#include "consensus/quorum_cert.h"
#include "ser/message.h"

namespace lumiere::consensus {

/// Message type tags (0x1000 range — see Message::type_id()).
enum MsgType : std::uint32_t {
  kProposal = 0x1001,
  kVote = 0x1002,
  kQcAnnounce = 0x1003,
  kNewView = 0x1004,
};

/// Leader's proposal for a view.
class ProposalMsg final : public Message {
 public:
  explicit ProposalMsg(Block block) : block_(std::move(block)) {}

  [[nodiscard]] const Block& block() const noexcept { return block_; }

  std::uint32_t type_id() const override { return kProposal; }
  const char* type_name() const override { return "proposal"; }
  MsgClass msg_class() const override { return MsgClass::kConsensus; }
  std::size_t wire_size() const override {
    // parent digest + view + payload + justify QC envelope.
    return crypto::Digest::kSize + 8 + block_.payload().size() +
           block_.justify().sig().wire_size();
  }
  void serialize(ser::Writer& w) const override { block_.serialize(w); }
  void collect_auth(AuthClaimSink& sink) const override {
    if (!block_.justify().is_genesis()) sink.aggregate(block_.justify().sig());
  }
  static MessagePtr deserialize(ser::Reader& r) {
    auto block = Block::deserialize(r);
    if (!block) return nullptr;
    return std::make_shared<ProposalMsg>(std::move(*block));
  }

 private:
  Block block_;
};

/// A replica's vote: a threshold share over the QC statement for
/// (view, block).
class VoteMsg final : public Message {
 public:
  VoteMsg(View view, crypto::Digest block_hash, crypto::PartialSig share)
      : view_(view), block_hash_(block_hash), share_(share) {}

  [[nodiscard]] View view() const noexcept { return view_; }
  [[nodiscard]] const crypto::Digest& block_hash() const noexcept { return block_hash_; }
  [[nodiscard]] const crypto::PartialSig& share() const noexcept { return share_; }

  std::uint32_t type_id() const override { return kVote; }
  const char* type_name() const override { return "vote"; }
  MsgClass msg_class() const override { return MsgClass::kConsensus; }
  std::size_t wire_size() const override {
    return 8 + crypto::Digest::kSize + share_.wire_size();
  }
  void serialize(ser::Writer& w) const override {
    w.view(view_);
    w.digest(block_hash_);
    w.partial_sig(share_);
  }
  void collect_auth(AuthClaimSink& sink) const override {
    sink.share(QuorumCert::statement(view_, block_hash_), share_);
  }
  static MessagePtr deserialize(ser::Reader& r) {
    View view = -1;
    crypto::Digest hash;
    crypto::PartialSig share;
    if (!r.view(view) || !r.digest(hash) || !r.partial_sig(share)) {
      return nullptr;
    }
    return std::make_shared<VoteMsg>(view, hash, share);
  }

 private:
  View view_;
  crypto::Digest block_hash_;
  crypto::PartialSig share_;
};

/// QC dissemination: "the successful completion of a view v is marked by
/// all processors receiving a QC for view v" (Section 2).
class QcMsg final : public Message {
 public:
  explicit QcMsg(QuorumCert qc) : qc_(std::move(qc)) {}

  [[nodiscard]] const QuorumCert& qc() const noexcept { return qc_; }

  std::uint32_t type_id() const override { return kQcAnnounce; }
  const char* type_name() const override { return "qc"; }
  MsgClass msg_class() const override { return MsgClass::kConsensus; }
  std::size_t wire_size() const override { return 8 + qc_.sig().wire_size(); }
  void serialize(ser::Writer& w) const override { qc_.serialize(w); }
  void collect_auth(AuthClaimSink& sink) const override {
    if (!qc_.is_genesis()) sink.aggregate(qc_.sig());
  }
  static MessagePtr deserialize(ser::Reader& r) {
    auto qc = QuorumCert::deserialize(r);
    if (!qc) return nullptr;
    return std::make_shared<QcMsg>(std::move(*qc));
  }

 private:
  QuorumCert qc_;
};

/// Chained HotStuff: replica reports its highest QC to the new leader.
class NewViewMsg final : public Message {
 public:
  NewViewMsg(View view, QuorumCert high_qc) : view_(view), high_qc_(std::move(high_qc)) {}

  [[nodiscard]] View view() const noexcept { return view_; }
  [[nodiscard]] const QuorumCert& high_qc() const noexcept { return high_qc_; }

  std::uint32_t type_id() const override { return kNewView; }
  const char* type_name() const override { return "new-view"; }
  MsgClass msg_class() const override { return MsgClass::kConsensus; }
  std::size_t wire_size() const override { return 8 + high_qc_.sig().wire_size(); }
  void serialize(ser::Writer& w) const override {
    w.view(view_);
    high_qc_.serialize(w);
  }
  void collect_auth(AuthClaimSink& sink) const override {
    if (!high_qc_.is_genesis()) sink.aggregate(high_qc_.sig());
  }
  static MessagePtr deserialize(ser::Reader& r) {
    View view = -1;
    if (!r.view(view)) return nullptr;
    auto qc = QuorumCert::deserialize(r);
    if (!qc) return nullptr;
    return std::make_shared<NewViewMsg>(view, std::move(*qc));
  }

 private:
  View view_;
  QuorumCert high_qc_;
};

/// Registers all consensus message types with a codec (for the TCP
/// transport).
inline void register_consensus_messages(MessageCodec& codec) {
  codec.register_type(kProposal, &ProposalMsg::deserialize);
  codec.register_type(kVote, &VoteMsg::deserialize);
  codec.register_type(kQcAnnounce, &QcMsg::deserialize);
  codec.register_type(kNewView, &NewViewMsg::deserialize);
}

}  // namespace lumiere::consensus
