// The client-command pool feeding block payloads.
//
// Upgraded for the workload engine (src/workload/): the pool is bounded
// (bytes and count), admission-controlled, duplicate-suppressing, and —
// via view-tagged leases — loss-free for admitted commands: a command
// drained into a proposal that never commits is requeued the moment a
// commit proves the proposal abandoned, so "admitted" means "will commit
// (exactly once) as long as this node keeps proposing".
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <limits>
#include <map>
#include <set>
#include <span>
#include <string_view>
#include <vector>

#include "common/types.h"
#include "crypto/sha256.h"

namespace lumiere::consensus {

/// Outcome of Mempool::add — the admission/backpressure signal clients
/// react to.
enum class Admission : std::uint8_t {
  kAccepted,
  kFull,       ///< pending capacity (bytes or count) exhausted; retry after
               ///< the pool signals space (see set_space_available)
  kOversized,  ///< the command can never fit in one batch — a permanent
               ///< rejection, not a backpressure condition
  kDuplicate,  ///< a byte-identical command is already pending or in flight
};

[[nodiscard]] const char* to_string(Admission admission);

/// Capacity and batching knobs. The defaults keep the pre-workload
/// behavior (4 KiB batches, effectively unbounded pool).
struct MempoolLimits {
  static constexpr std::size_t kUnlimited = std::numeric_limits<std::size_t>::max();

  /// Per-batch byte budget (command bytes + 4-byte length prefix each).
  std::size_t max_batch_bytes = 4096;
  /// Per-batch command-count budget.
  std::size_t max_batch_count = kUnlimited;
  /// Pending-queue byte bound; add() returns kFull beyond it. Leased
  /// (in-flight) commands do not count — they are bounded by the batch
  /// size times the commit pipeline depth.
  std::size_t max_pending_bytes = kUnlimited;
  /// Pending-queue count bound.
  std::size_t max_pending_count = kUnlimited;
  /// Reject byte-identical commands while the original is pending or in
  /// flight (a client retry must not commit twice). Off by default so
  /// legacy callers keep add-anything semantics (and pay no hashing at
  /// admission); the workload engine opts in (workload/spec.h).
  bool suppress_duplicates = false;
};

/// FIFO command pool. Commands are opaque byte strings; `next_batch`
/// drains up to the batch limits into one payload (length-prefixed
/// concatenation so applications can split them back out).
class Mempool {
 public:
  explicit Mempool(std::size_t max_batch_bytes = 4096)
      : Mempool(MempoolLimits{.max_batch_bytes = max_batch_bytes}) {}
  explicit Mempool(MempoolLimits limits);

  /// Admits a command, or explains why not. An accepted command is owned
  /// by the pool until it is drained (legacy next_batch) or committed
  /// (leased next_batch + on_commit).
  Admission add(std::vector<std::uint8_t> command);
  Admission add(std::string_view command);

  /// Legacy drain: builds the next payload, removing the included
  /// commands for good (no lease — callers that never observe commits).
  [[nodiscard]] std::vector<std::uint8_t> next_batch();

  /// Leased drain for a proposal at `view`: the included commands move to
  /// an in-flight ledger until a commit acks them (on_commit) or proves
  /// the proposal abandoned, which requeues them at the front.
  [[nodiscard]] std::vector<std::uint8_t> next_batch(View view);

  /// Observes a committed payload at `view` (every replica commit, any
  /// leader). Commands of ours inside the payload are acked; leases at
  /// views <= `view` still holding unacked commands are requeued — the
  /// chain commits views in order, so a proposal below an already
  /// committed view can never commit.
  void on_commit(View view, const std::vector<std::uint8_t>& payload);

  /// Token-keyed lease for the dissemination layer: drains the next batch
  /// into `payload` and returns an opaque token (0 when nothing pending).
  /// Certification and ordering of disseminated batches are not
  /// view-monotone, so the view-keyed requeue logic above cannot apply;
  /// a token lease stays out until it is explicitly acked (the batch was
  /// ordered and delivered) or requeued.
  [[nodiscard]] std::uint64_t lease_batch(std::vector<std::uint8_t>& payload);
  /// Acks a token lease: its commands committed exactly once.
  void ack_batch(std::uint64_t token);
  /// Returns a token lease's commands to the queue front (admitted
  /// commands bypass the capacity check).
  void requeue_batch(std::uint64_t token);

  /// Splits a payload built by next_batch back into commands.
  [[nodiscard]] static std::vector<std::vector<std::uint8_t>> split_batch(
      std::span<const std::uint8_t> payload);

  /// Invoked whenever capacity frees up after an add() was rejected with
  /// kFull — the backpressure release edge closed-loop clients wait on.
  void set_space_available(std::function<void()> fn) { space_available_ = std::move(fn); }

  [[nodiscard]] std::size_t pending() const noexcept { return queue_.size(); }
  [[nodiscard]] std::size_t pending_bytes() const noexcept { return pending_bytes_; }
  [[nodiscard]] std::size_t in_flight() const noexcept { return in_flight_count_; }
  [[nodiscard]] bool has_capacity(std::size_t command_bytes) const noexcept;
  [[nodiscard]] const MempoolLimits& limits() const noexcept { return limits_; }

  // Lifetime counters (admission accounting for the workload report).
  [[nodiscard]] std::uint64_t admitted() const noexcept { return admitted_; }
  [[nodiscard]] std::uint64_t rejected_full() const noexcept { return rejected_full_; }
  [[nodiscard]] std::uint64_t rejected_oversized() const noexcept { return rejected_oversized_; }
  [[nodiscard]] std::uint64_t rejected_duplicate() const noexcept { return rejected_duplicate_; }
  [[nodiscard]] std::uint64_t acked() const noexcept { return acked_; }
  [[nodiscard]] std::uint64_t requeued() const noexcept { return requeued_; }

 private:
  /// One leased command: digest cached at lease time so observing a
  /// commit never re-hashes the in-flight set.
  struct LeasedCommand {
    crypto::Digest digest;
    std::vector<std::uint8_t> command;
  };

  [[nodiscard]] static std::size_t batch_cost(const std::vector<std::uint8_t>& cmd) noexcept {
    return cmd.size() + 4;  // u32 length prefix
  }
  /// The one drain loop both next_batch overloads share: moves up to the
  /// batch limits (bytes and count) of commands off the queue front and
  /// serializes them into `payload`.
  [[nodiscard]] std::vector<std::vector<std::uint8_t>> drain_batch(
      std::vector<std::uint8_t>& payload);
  void maybe_signal_space();

  MempoolLimits limits_;
  std::deque<std::vector<std::uint8_t>> queue_;
  std::size_t pending_bytes_ = 0;
  /// Digests of every live (pending or in-flight) command, for duplicate
  /// suppression. std::set for deterministic behavior everywhere.
  std::set<crypto::Digest> live_;
  /// Leased batches by proposing view (a view can lease at most once per
  /// proposal, but the map tolerates several).
  std::map<View, std::vector<LeasedCommand>> leases_;
  /// Token-keyed leases (dissemination path); tokens are never reused.
  std::map<std::uint64_t, std::vector<LeasedCommand>> token_leases_;
  std::uint64_t next_token_ = 0;
  std::size_t in_flight_count_ = 0;
  std::function<void()> space_available_;
  bool starving_ = false;  ///< an add() bounced with kFull since the last signal

  std::uint64_t admitted_ = 0;
  std::uint64_t rejected_full_ = 0;
  std::uint64_t rejected_oversized_ = 0;
  std::uint64_t rejected_duplicate_ = 0;
  std::uint64_t acked_ = 0;
  std::uint64_t requeued_ = 0;
};

}  // namespace lumiere::consensus
