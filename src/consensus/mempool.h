// A minimal client-command pool feeding block payloads.
#pragma once

#include <cstdint>
#include <deque>
#include <string_view>
#include <vector>

namespace lumiere::consensus {

/// FIFO command pool. Commands are opaque byte strings; `next_batch`
/// drains up to `max_batch_bytes` worth into one payload (length-prefixed
/// concatenation so the examples can split them back out).
class Mempool {
 public:
  explicit Mempool(std::size_t max_batch_bytes = 4096) : max_batch_bytes_(max_batch_bytes) {}

  void add(std::vector<std::uint8_t> command);
  void add(std::string_view command);

  /// Builds the next payload, removing the included commands.
  [[nodiscard]] std::vector<std::uint8_t> next_batch();

  /// Splits a payload built by next_batch back into commands.
  [[nodiscard]] static std::vector<std::vector<std::uint8_t>> split_batch(
      const std::vector<std::uint8_t>& payload);

  [[nodiscard]] std::size_t pending() const noexcept { return queue_.size(); }

 private:
  std::size_t max_batch_bytes_;
  std::deque<std::vector<std::uint8_t>> queue_;
};

}  // namespace lumiere::consensus
