// Adversarial delay policies (the network half of the adversary).
#pragma once

#include <vector>

#include "sim/delay_policy.h"

namespace lumiere::adversary {

/// Every message takes the maximum the model permits: delivery exactly at
/// max(GST, t) + Delta. (Propose Duration::max(); the network clamps.)
/// The worst permissible network.
class WorstCaseDelay final : public sim::DelayPolicy {
 public:
  Duration propose_delay(ProcessId, ProcessId, const Message&, TimePoint, Rng&) override {
    return Duration::max();
  }
};

/// Messages touching a victim set crawl at the model bound; all other
/// traffic moves at `fast`. Models targeted link degradation, which the
/// partial-synchrony adversary is free to do.
class TargetedSlowDelay final : public sim::DelayPolicy {
 public:
  TargetedSlowDelay(std::vector<ProcessId> victims, Duration fast)
      : victims_(std::move(victims)), fast_(fast) {}

  Duration propose_delay(ProcessId from, ProcessId to, const Message&, TimePoint,
                         Rng&) override {
    const bool slow = is_victim(from) || is_victim(to);
    return slow ? Duration::max() : fast_;
  }

 private:
  [[nodiscard]] bool is_victim(ProcessId id) const {
    for (const ProcessId v : victims_) {
      if (v == id) return true;
    }
    return false;
  }

  std::vector<ProcessId> victims_;
  Duration fast_;
};

/// The Figure 1 network: uniformly fast (delta << Delta), so that QCs
/// race far ahead of local clocks and LP22's missing clock bumps are
/// maximally visible.
class UniformFastDelay final : public sim::DelayPolicy {
 public:
  explicit UniformFastDelay(Duration delta_actual) : delta_(delta_actual) {}
  Duration propose_delay(ProcessId, ProcessId, const Message&, TimePoint, Rng&) override {
    return delta_;
  }

 private:
  Duration delta_;
};

}  // namespace lumiere::adversary
