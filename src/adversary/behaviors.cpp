#include "adversary/behaviors.h"

#include <algorithm>

#include "consensus/messages.h"
#include "pacemaker/messages.h"

namespace lumiere::adversary {

namespace {

/// Leader-role message types: what a leader owes the cluster.
bool is_leader_duty(std::uint32_t type_id) {
  return type_id == consensus::kProposal || type_id == consensus::kQcAnnounce ||
         type_id == pacemaker::kVcMsg || type_id == pacemaker::kEcMsg ||
         type_id == pacemaker::kWishCertMsg;
}

}  // namespace

bool SilentLeaderBehavior::allow_send(TimePoint /*now*/, ProcessId /*to*/, const Message& msg) {
  return !is_leader_duty(msg.type_id());
}

bool QcWithholderBehavior::allow_send(TimePoint /*now*/, ProcessId /*to*/, const Message& msg) {
  return msg.type_id() != consensus::kQcAnnounce;
}

bool SelectiveQcBehavior::allow_send(TimePoint /*now*/, ProcessId to, const Message& msg) {
  const bool bump_carrier =
      msg.type_id() == consensus::kQcAnnounce || msg.type_id() == pacemaker::kVcMsg;
  if (!bump_carrier) return true;
  return to < favored_count_;
}

bool EquivocatorBehavior::allow_send(TimePoint /*now*/, ProcessId /*to*/, const Message& msg) {
  // Suppress the node's own honest proposal; on_view_entered substitutes
  // the two conflicting ones.
  return msg.type_id() != consensus::kProposal;
}

void EquivocatorBehavior::on_view_entered(TimePoint /*now*/, View v, const Toolkit& toolkit) {
  if (toolkit.leader_of(v) != toolkit.self) return;
  const consensus::QuorumCert& high = toolkit.high_qc();
  const std::vector<std::uint8_t> payload_a = {0xAA};
  const std::vector<std::uint8_t> payload_b = {0xBB};
  auto block_a = std::make_shared<consensus::ProposalMsg>(
      consensus::Block(high.block_hash(), v, payload_a, high));
  auto block_b = std::make_shared<consensus::ProposalMsg>(
      consensus::Block(high.block_hash(), v, payload_b, high));
  const std::uint32_t n = toolkit.params->n;
  for (ProcessId to = 0; to < n; ++to) {
    toolkit.raw_send(to, to < n / 2 ? block_a : block_b);
  }
}

void EpochStormBehavior::on_view_entered(TimePoint /*now*/, View v, const Toolkit& toolkit) {
  // Target the next epoch boundary above the current view.
  const View target = ((v / views_per_epoch_) + 1) * views_per_epoch_;
  if (target == last_stormed_) return;
  last_stormed_ = target;
  auto msg = std::make_shared<pacemaker::EpochViewMsg>(
      target, crypto::threshold_share(*toolkit.signer, pacemaker::epoch_msg_statement(target)));
  for (ProcessId to = 0; to < toolkit.params->n; ++to) toolkit.raw_send(to, msg);
}

std::unique_ptr<Behavior> make_behavior(const std::string& name) {
  if (name == "honest") return std::make_unique<HonestBehavior>();
  if (name == "mute") return std::make_unique<MuteBehavior>();
  if (name == "silent-leader") return std::make_unique<SilentLeaderBehavior>();
  if (name == "qc-withholder") return std::make_unique<QcWithholderBehavior>();
  if (name == "equivocator") return std::make_unique<EquivocatorBehavior>();
  return nullptr;
}

bool has_behavior(const std::string& name) { return make_behavior(name) != nullptr; }

std::vector<std::string> behavior_names() {
  return {"equivocator", "honest", "mute", "qc-withholder", "silent-leader"};
}

BehaviorFactory honest_cluster() {
  return [](ProcessId) { return std::make_unique<HonestBehavior>(); };
}

BehaviorFactory byzantine_set(std::vector<ProcessId> chosen,
                              std::function<std::unique_ptr<Behavior>(ProcessId)> make) {
  return [chosen = std::move(chosen), make = std::move(make)](ProcessId id)
             -> std::unique_ptr<Behavior> {
    if (std::find(chosen.begin(), chosen.end(), id) != chosen.end()) return make(id);
    return std::make_unique<HonestBehavior>();
  };
}

}  // namespace lumiere::adversary
