// Byzantine process behaviors.
//
// A Behavior wraps a node's *outbound* channel (every protocol message
// passes through filter_outbound) and may inject arbitrary traffic via
// the active hooks. Byzantine nodes run the normal protocol stack
// underneath — the standard "Byzantine = arbitrary deviation" is
// approximated by composable deviations that target the view-sync layer:
// crashing, going silent as leader, withholding QCs, equivocating,
// storming epoch changes. Message *delays* are the network adversary's
// job (delay_adversary.h).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/params.h"
#include "common/time.h"
#include "common/types.h"
#include "consensus/quorum_cert.h"
#include "crypto/authenticator.h"
#include "ser/message.h"

namespace lumiere::adversary {

/// Capabilities handed to active behaviors (crafting custom traffic).
struct Toolkit {
  ProcessId self = kNoProcess;
  const ProtocolParams* params = nullptr;
  crypto::AuthView auth;
  const crypto::Signer* signer = nullptr;
  std::function<ProcessId(View)> leader_of;
  std::function<const consensus::QuorumCert&()> high_qc;
  /// Sends bypassing the filter (the behavior *is* the adversary).
  std::function<void(ProcessId to, MessagePtr msg)> raw_send;
};

class Behavior {
 public:
  virtual ~Behavior() = default;

  /// Called for every outbound message; return false to drop it.
  [[nodiscard]] virtual bool allow_send(TimePoint now, ProcessId to, const Message& msg) {
    (void)now;
    (void)to;
    (void)msg;
    return true;
  }

  /// Called when the node's pacemaker enters a view.
  virtual void on_view_entered(TimePoint now, View v, const Toolkit& toolkit) {
    (void)now;
    (void)v;
    (void)toolkit;
  }

  [[nodiscard]] virtual const char* name() const = 0;
};

/// The identity behavior (honest node).
class HonestBehavior final : public Behavior {
 public:
  [[nodiscard]] const char* name() const override { return "honest"; }
};

/// Crash-stop at a given time: nothing is sent from `at` onward.
class CrashBehavior final : public Behavior {
 public:
  explicit CrashBehavior(TimePoint at) : at_(at) {}
  [[nodiscard]] bool allow_send(TimePoint now, ProcessId, const Message&) override {
    return now < at_;
  }
  [[nodiscard]] const char* name() const override { return "crash"; }

 private:
  TimePoint at_;
};

/// Never sends anything (crashed from the start; the classic f_a fault
/// for latency experiments).
class MuteBehavior final : public Behavior {
 public:
  [[nodiscard]] bool allow_send(TimePoint, ProcessId, const Message&) override { return false; }
  [[nodiscard]] const char* name() const override { return "mute"; }
};

/// Performs replica duties (votes, view/epoch messages, wishes) but
/// shirks all *leader* duties: proposals, QC broadcasts, VCs and
/// certificates are dropped. Views this process leads fail while quorums
/// stay intact — the canonical faulty-leader adversary for BVS (the
/// Figure 1 scenario).
class SilentLeaderBehavior final : public Behavior {
 public:
  [[nodiscard]] bool allow_send(TimePoint now, ProcessId to, const Message& msg) override;
  [[nodiscard]] const char* name() const override { return "silent-leader"; }
};

/// Collects votes and forms QCs as leader but never announces them —
/// honest processors see the view hang even though it "completed".
class QcWithholderBehavior final : public Behavior {
 public:
  [[nodiscard]] bool allow_send(TimePoint now, ProcessId to, const Message& msg) override;
  [[nodiscard]] const char* name() const override { return "qc-withholder"; }
};

/// Suppresses the node's own proposals and instead sends two conflicting
/// blocks to the two halves of the cluster whenever it leads a view
/// (safety stress for the underlying protocol).
class EquivocatorBehavior final : public Behavior {
 public:
  [[nodiscard]] bool allow_send(TimePoint now, ProcessId to, const Message& msg) override;
  void on_view_entered(TimePoint now, View v, const Toolkit& toolkit) override;
  [[nodiscard]] const char* name() const override { return "equivocator"; }
};

/// The Section 3.5 gap-widening attack: performs all leader duties
/// (proposes to everyone, collects votes, forms QCs — feeding the success
/// criterion) but announces QCs and VCs only to a favored subset of
/// processors. Favored processors bump their clocks; the rest stall,
/// widening the honest gap while epochs still "look successful". Lumiere
/// counters with the 2f+1-leaders success criterion plus the honest
/// QC-production deadline (Lemma 5.12's gap shrinking).
class SelectiveQcBehavior final : public Behavior {
 public:
  /// QCs/VCs are delivered only to ids < `favored_count` (and to other
  /// Byzantine processes via the caller's set choice).
  explicit SelectiveQcBehavior(std::uint32_t favored_count) : favored_count_(favored_count) {}
  [[nodiscard]] bool allow_send(TimePoint now, ProcessId to, const Message& msg) override;
  [[nodiscard]] const char* name() const override { return "selective-qc"; }

 private:
  std::uint32_t favored_count_;
};

/// Broadcasts epoch-view messages for the *next* epoch boundary the
/// moment it enters any view — trying to force spurious heavy
/// synchronizations. Since TC formation needs f+1 distinct signers, f
/// such processes must fail alone (tested).
class EpochStormBehavior final : public Behavior {
 public:
  /// `views_per_epoch` of the target protocol (storm target boundaries).
  explicit EpochStormBehavior(std::int64_t views_per_epoch)
      : views_per_epoch_(views_per_epoch) {}
  void on_view_entered(TimePoint now, View v, const Toolkit& toolkit) override;
  [[nodiscard]] const char* name() const override { return "epoch-storm"; }

 private:
  std::int64_t views_per_epoch_;
  View last_stormed_ = -1;
};

/// Builds a behavior from its registry name — the serializable form used
/// by scripted behavior-change events and the scenario fuzzer. Covers the
/// parameterless behaviors: "honest", "mute", "silent-leader",
/// "qc-withholder", "equivocator". Returns nullptr for unknown names
/// (ScenarioBuilder::validate() reports them with the event).
[[nodiscard]] std::unique_ptr<Behavior> make_behavior(const std::string& name);

/// True when `name` resolves through make_behavior.
[[nodiscard]] bool has_behavior(const std::string& name);

/// The make_behavior names, sorted — for error messages and fuzz sampling.
[[nodiscard]] std::vector<std::string> behavior_names();

/// Convenience factory type used by the cluster builder.
using BehaviorFactory = std::function<std::unique_ptr<Behavior>(ProcessId)>;

/// All-honest factory.
[[nodiscard]] BehaviorFactory honest_cluster();

/// The first `count` processors of `chosen` get `make(id)`; everyone else
/// is honest.
[[nodiscard]] BehaviorFactory byzantine_set(std::vector<ProcessId> chosen,
                                            std::function<std::unique_ptr<Behavior>(ProcessId)> make);

}  // namespace lumiere::adversary
