#include "fuzz/oracles.h"

#include <map>
#include <set>
#include <sstream>
#include <utility>
#include <vector>

#include "consensus/mempool.h"
#include "dissem/batch.h"
#include "runtime/cluster.h"
#include "workload/request.h"

namespace lumiere::fuzz {

std::optional<std::string> check_safety(const runtime::Cluster& cluster) {
  const std::vector<ProcessId> honest = cluster.honest_ids();
  for (std::size_t i = 0; i < honest.size(); ++i) {
    for (std::size_t j = i + 1; j < honest.size(); ++j) {
      const consensus::Ledger& a = cluster.node(honest[i]).ledger();
      const consensus::Ledger& b = cluster.node(honest[j]).ledger();
      if (!a.prefix_consistent_with(b)) {
        std::ostringstream out;
        out << "safety: ledger fork between honest nodes " << honest[i] << " ("
            << a.size() << " blocks) and " << honest[j] << " (" << b.size() << " blocks)";
        return out.str();
      }
    }
  }
  return std::nullopt;
}

std::optional<std::string> check_view_monotonicity(const runtime::Cluster& cluster) {
  std::map<ProcessId, View> last;
  for (const sim::TraceEvent& event : cluster.trace().events()) {
    if (event.kind != sim::TraceKind::kViewEntered) continue;
    const auto it = last.find(event.node);
    if (it != last.end() && event.view < it->second) {
      std::ostringstream out;
      out << "view monotonicity: node " << event.node << " regressed from view "
          << it->second << " to " << event.view << " at " << event.at;
      return out.str();
    }
    last[event.node] = event.view;
  }
  return std::nullopt;
}

std::optional<std::string> check_decision_liveness(const runtime::Cluster& cluster,
                                                   TimePoint from, Duration bound,
                                                   std::size_t min_decisions) {
  const TimePoint deadline = from + bound;
  std::size_t count = 0;
  for (const auto& decision : cluster.metrics().decisions()) {
    if (decision.at > from && decision.at <= deadline) ++count;
  }
  if (count >= min_decisions) return std::nullopt;
  std::ostringstream out;
  out << "liveness: only " << count << " decision" << (count == 1 ? "" : "s") << " in ("
      << from << ", " << deadline << "] — expected at least " << min_decisions;
  return out.str();
}

std::optional<std::string> check_commit_liveness(const runtime::Cluster& cluster,
                                                 TimePoint from, Duration bound,
                                                 std::size_t min_commits) {
  const TimePoint deadline = from + bound;
  std::size_t best = 0;
  for (const ProcessId id : cluster.honest_ids()) {
    std::size_t count = 0;
    for (const auto& entry : cluster.node(id).ledger().entries()) {
      if (entry.committed_at > from && entry.committed_at <= deadline) ++count;
    }
    best = std::max(best, count);
  }
  if (best >= min_commits) return std::nullopt;
  std::ostringstream out;
  out << "liveness: best honest ledger committed " << best << " block"
      << (best == 1 ? "" : "s") << " in (" << from << ", " << deadline
      << "] — expected at least " << min_commits;
  return out.str();
}

std::optional<std::string> check_exactly_once(const runtime::Cluster& cluster) {
  // (1) No honest node delivers the same tagged request twice — the
  // mempool's duplicate suppression and view-leased batches must hold
  // under every composition of faults. With dissemination, a ledger
  // entry carries certified references: each BatchId delivers once per
  // node (re-ordering the same reference in a later block is legal and
  // deduplicated), its bytes resolved through the node's disseminator —
  // an unresolved committed reference at run end is itself a violation.
  for (const ProcessId id : cluster.honest_ids()) {
    std::map<std::pair<std::uint32_t, std::uint64_t>, std::size_t> seen;
    std::set<dissem::BatchId> delivered;
    std::size_t block_index = 0;
    for (const auto& entry : cluster.node(id).ledger().entries()) {
      std::vector<std::span<const std::uint8_t>> batches;
      const auto payload_span =
          std::span<const std::uint8_t>(entry.payload.data(), entry.payload.size());
      if (dissem::is_refs_payload(payload_span)) {
        const auto refs = dissem::decode_refs(payload_span);
        if (!refs) {
          std::ostringstream out;
          out << "exactly-once: node " << id << " committed a malformed refs payload (block "
              << block_index << ")";
          return out.str();
        }
        const dissem::Disseminator* engine = cluster.node(id).disseminator();
        for (const dissem::BatchCert& cert : *refs) {
          if (!delivered.insert(cert.id()).second) continue;  // delivers once
          const std::vector<std::uint8_t>* bytes =
              engine == nullptr ? nullptr : engine->payload_of(cert.id());
          if (bytes == nullptr) {
            std::ostringstream out;
            out << "exactly-once: node " << id << " committed a batch reference (origin "
                << cert.id().origin << ", seq " << cert.id().seq
                << ") it never resolved (block " << block_index << ")";
            return out.str();
          }
          batches.emplace_back(bytes->data(), bytes->size());
        }
      } else {
        batches.push_back(payload_span);
      }
      for (const auto& batch : batches) {
        for (const auto& command : consensus::Mempool::split_batch(batch)) {
          const auto request = workload::Request::decode(command);
          if (!request) continue;  // not a tagged workload request
          const auto key = std::make_pair(request->client, request->seq);
          const auto [it, inserted] = seen.emplace(key, block_index);
          if (!inserted) {
            std::ostringstream out;
            out << "exactly-once: node " << id << " committed request (client "
                << request->client << ", seq " << request->seq << ") twice (blocks "
                << it->second << " and " << block_index << ")";
            return out.str();
          }
        }
      }
      ++block_index;
    }
  }
  // (2) Every commit the client side observed matches a submission it
  // made — a committed request materializing from nowhere means the
  // engine's accounting (or the ledger) is corrupt.
  const workload::Report report = cluster.workload_report();
  if (report.commit_misses != 0) {
    std::ostringstream out;
    out << "exactly-once: " << report.commit_misses
        << " committed request(s) matched no submission";
    return out.str();
  }
  return std::nullopt;
}

}  // namespace lumiere::fuzz
