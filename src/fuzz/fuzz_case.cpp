#include "fuzz/fuzz_case.h"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>

#include "adversary/behaviors.h"
#include "common/rng.h"

namespace lumiere::fuzz {
namespace {

// Every instant in a case scales with Delta so WAN cases (Delta up to
// 200ms) get proportionally longer windows than LAN cases: `scaled(ms)`
// is `ms` milliseconds at the baseline Delta of 10ms.
constexpr std::int64_t kBaselineDeltaUs = 10'000;

/// The non-honest behaviors the sampler assigns (adversary::make_behavior
/// names).
const char* const kByzFlavors[] = {"mute", "silent-leader", "qc-withholder", "equivocator"};

struct Sampler {
  Rng rng;
  FuzzCase& c;
  std::int64_t scale = 1;  ///< delta_cap / baseline (>= 1)

  [[nodiscard]] std::int64_t scaled_ms(std::int64_t ms) const { return ms * 1000 * scale; }

  [[nodiscard]] std::int64_t in_range(std::int64_t lo, std::int64_t hi) {
    return rng.next_in(lo, hi);
  }

  template <typename T, std::size_t N>
  [[nodiscard]] const T& pick(const T (&options)[N]) {
    return options[rng.next_below(N)];
  }
};

void sample_protocol(Sampler& s) {
  const char* const pacemakers[] = {"lumiere",  "basic-lumiere", "lp22",
                                    "fever",    "raresync",      "cogsworth",
                                    "nk20",     "round-robin"};
  s.c.pacemaker = s.pick(pacemakers);
  const std::uint64_t core_die = s.rng.next_below(10);
  s.c.core = core_die < 5 ? "chained-hotstuff" : (core_die < 8 ? "hotstuff-2" : "simple-view");

  const std::uint64_t n_die = s.rng.next_below(10);
  s.c.n = n_die < 6 ? 4 : (n_die < 9 ? 7 : 10);
}

void sample_network(Sampler& s) {
  FuzzCase& c = s.c;
  const std::uint64_t topo_die = s.rng.next_below(10);
  if (topo_die < 7) {
    c.topology.clear();
    c.delta_cap_us = kBaselineDeltaUs;
  } else if (topo_die == 7) {
    c.topology = "lan";
    c.delta_cap_us = kBaselineDeltaUs;
  } else if (topo_die == 8) {
    c.topology = "wan3";
    c.delta_cap_us = 100'000;  // preset worst one-way 65ms < Delta
  } else {
    c.topology = "wan5";
    c.delta_cap_us = 200'000;  // preset worst one-way 155ms < Delta
  }
  s.scale = c.delta_cap_us / kBaselineDeltaUs;

  c.gst_us = s.rng.next_bool(0.5) ? 0 : s.in_range(0, s.scaled_ms(600));
  c.join_stagger_us =
      (c.pacemaker == "fever" || s.rng.next_bool(0.5)) ? 0 : s.in_range(0, s.scaled_ms(300));
  c.drift_ppm_max = s.rng.next_bool(0.5) ? 0 : s.in_range(10, 200);

  if (!c.topology.empty()) {
    c.delay = nullptr;  // the preset is the policy (resolved by the builder)
    c.delay_desc = "topology:" + c.topology;
    return;
  }
  const Duration delta(c.delta_cap_us);
  const std::uint64_t die = s.rng.next_below(10);
  std::ostringstream desc;
  if (die < 2 && !c.committing_core()) {
    // Worst permitted: every message at exactly max(GST, t) + Delta.
    // Simple-view only: when every hop sits on the bound forever, the
    // chained cores' consecutive-view commit rule starves (QCs form in
    // every view but never in adjacent ones), so commit liveness is not a
    // theorem there — decision liveness (what simple-view is checked on)
    // is.
    c.delay = nullptr;
    desc << "worst";
  } else if (die < 5) {
    const Duration d(s.in_range(delta.ticks() / 20, delta.ticks() / 2));
    c.delay = std::make_shared<sim::FixedDelay>(d);
    desc << "fixed(" << d.ticks() << "us)";
  } else if (die < 8 || c.gst_us == 0) {
    const Duration lo(s.in_range(0, delta.ticks() / 10));
    const Duration hi(s.in_range(lo.ticks() + 1, delta.ticks() / 2));
    c.delay = std::make_shared<sim::UniformDelay>(lo, hi);
    desc << "uniform(" << lo.ticks() << "us," << hi.ticks() << "us)";
  } else {
    const Duration lo(s.in_range(0, delta.ticks() / 20));
    const Duration hi(s.in_range(lo.ticks() + 1, delta.ticks() / 2));
    const Duration chaos(delta.ticks() * 10);
    c.delay = std::make_shared<sim::PreGstChaosDelay>(TimePoint(c.gst_us), lo, hi, chaos);
    desc << "pre-gst-chaos(" << lo.ticks() << "us," << hi.ticks() << "us)";
  }
  c.delay_desc = desc.str();
}

/// Splits a random subset of the cluster into `groups` non-empty groups
/// (nodes outside the subset stay ungrouped = fully connected).
std::vector<std::vector<ProcessId>> sample_groups(Sampler& s, std::uint32_t groups) {
  const std::uint32_t n = s.c.n;
  std::vector<std::uint32_t> perm = s.rng.permutation(n);
  // Grouping everyone 70% of the time; otherwise leave a random tail out.
  std::uint32_t m = n;
  if (s.rng.next_bool(0.3) && n > groups) {
    m = static_cast<std::uint32_t>(s.in_range(groups, n));
  }
  std::vector<std::vector<ProcessId>> out(groups);
  // First one member each (non-empty), then the rest uniformly.
  for (std::uint32_t g = 0; g < groups; ++g) out[g].push_back(perm[g]);
  for (std::uint32_t i = groups; i < m; ++i) {
    out[s.rng.next_below(groups)].push_back(perm[i]);
  }
  for (auto& group : out) std::sort(group.begin(), group.end());
  return out;
}

/// A delay policy for scripted delay_change / link_delay episodes. For
/// committing cores the ceiling stays at Delta/2 — a permanent regime at
/// the exact Delta bound starves the consecutive-view commit rule (see
/// sample_network); simple-view runs get the full adversarial range.
std::shared_ptr<sim::DelayPolicy> sample_episode_policy(Sampler& s) {
  const Duration delta(s.c.delta_cap_us);
  const std::int64_t cap = s.c.committing_core() ? delta.ticks() / 2 : delta.ticks();
  switch (s.rng.next_below(3)) {
    case 0:
      if (!s.c.committing_core()) return nullptr;  // worst permitted
      return std::make_shared<sim::FixedDelay>(Duration(cap));
    case 1:
      return std::make_shared<sim::FixedDelay>(
          Duration(s.in_range(delta.ticks() / 10, cap)));
    default: {
      const Duration lo(s.in_range(0, delta.ticks() / 4));
      return std::make_shared<sim::UniformDelay>(
          lo, Duration(s.in_range(lo.ticks() + 1, std::max<std::int64_t>(cap, lo.ticks() + 2))));
    }
  }
}

sim::FaultEvent make_event(sim::FaultKind kind, std::int64_t at_us) {
  sim::FaultEvent event;
  event.at = TimePoint(at_us);
  event.kind = kind;
  return event;
}

void sample_faults_and_behaviors(Sampler& s) {
  FuzzCase& c = s.c;
  const std::uint32_t f = (c.n - 1) / 3;

  // Fault budget: the ever-faulty set — Byzantine assignments, scheduled
  // flip-ins AND crash/churn victims (a down processor LOSES inbound
  // messages, which breaks the reliable-channel assumption exactly like a
  // fault) — never exceeds f, so at least 2f+1 processors stay correct
  // for the whole run and post-disruption liveness is a theorem. A random
  // prefix of a node permutation keeps assignments distinct.
  const std::vector<std::uint32_t> byz_perm = s.rng.permutation(c.n);
  const auto initial = static_cast<std::uint32_t>(s.in_range(0, f));
  const auto reserve = static_cast<std::uint32_t>(s.in_range(0, f - initial));
  std::set<ProcessId> faulted;
  for (std::uint32_t i = 0; i < initial; ++i) {
    c.behaviors.push_back(BehaviorAssignment{byz_perm[i], s.pick(kByzFlavors)});
    faulted.insert(byz_perm[i]);
  }
  std::vector<ProcessId> flip_candidates;  // honest now, may turn Byzantine
  for (std::uint32_t i = initial; i < initial + reserve; ++i) {
    flip_candidates.push_back(byz_perm[i]);
    faulted.insert(byz_perm[i]);
  }
  // Crash/churn victims come from here: a fresh node while the budget
  // lasts, an already-faulty one afterwards (re-crashing a Byzantine or
  // previously crashed node costs nothing extra).
  const auto pick_faultable = [&s, &faulted, f]() -> ProcessId {
    if (faulted.size() < f) {
      const auto node = static_cast<ProcessId>(s.rng.next_below(s.c.n));
      faulted.insert(node);
      return node;
    }
    const std::vector<ProcessId> pool(faulted.begin(), faulted.end());
    return pool[s.rng.next_below(pool.size())];
  };

  // Episodes occupy disjoint slots so a behavior change never lands on a
  // node that is down at that instant and every window closes before the
  // next opens. All times scale with Delta.
  const std::int64_t lead = s.scaled_ms(500);
  const std::int64_t slot = s.scaled_ms(1'500);
  const auto episodes = static_cast<std::int64_t>(s.rng.next_below(4));  // 0..3
  for (std::int64_t e = 0; e < episodes; ++e) {
    const std::int64_t start = lead + e * slot;
    const std::int64_t end = start + s.in_range(s.scaled_ms(900), s.scaled_ms(1'200));
    std::uint64_t die = s.rng.next_below(20);
    // Behavior-change episodes need a target; fall back to a crash window.
    const bool can_flip = !flip_candidates.empty() || !c.behaviors.empty();
    if (die >= 17 && !can_flip) die = 9;
    if (die < 4) {  // symmetric partition window
      auto cut = make_event(sim::FaultKind::kPartition, start);
      cut.groups = sample_groups(s, c.n >= 6 && s.rng.next_bool(0.3) ? 3 : 2);
      c.schedule.events.push_back(std::move(cut));
      c.schedule.events.push_back(make_event(sim::FaultKind::kHeal, end));
    } else if (die < 8) {  // asymmetric one-way cut window
      auto groups = sample_groups(s, 2);
      auto cut = make_event(sim::FaultKind::kAsymPartition, start);
      cut.groups = std::move(groups);
      c.schedule.events.push_back(std::move(cut));
      c.schedule.events.push_back(make_event(sim::FaultKind::kHeal, end));
    } else if (die < 11) {  // crash window
      auto crash = make_event(sim::FaultKind::kCrash, start);
      crash.node = pick_faultable();
      auto recover = make_event(sim::FaultKind::kRecover, end);
      recover.node = crash.node;
      c.schedule.events.push_back(std::move(crash));
      c.schedule.events.push_back(std::move(recover));
    } else if (die < 13) {  // churn window
      auto leave = make_event(sim::FaultKind::kLeave, start);
      leave.node = pick_faultable();
      auto rejoin = make_event(sim::FaultKind::kRejoin, end);
      rejoin.node = leave.node;
      c.schedule.events.push_back(std::move(leave));
      c.schedule.events.push_back(std::move(rejoin));
    } else if (die < 15) {  // global delay-policy change (permanent)
      auto change = make_event(sim::FaultKind::kDelayChange, start);
      change.delay = sample_episode_policy(s);
      c.schedule.events.push_back(std::move(change));
    } else if (die < 17) {  // one directed link degraded, then restored
      auto slow = make_event(sim::FaultKind::kLinkDelay, start);
      slow.node = static_cast<ProcessId>(s.rng.next_below(c.n));
      do {
        slow.peer = static_cast<ProcessId>(s.rng.next_below(c.n));
      } while (slow.peer == slow.node);
      auto restore = make_event(sim::FaultKind::kLinkDelay, end);
      restore.node = slow.node;
      restore.peer = slow.peer;
      restore.delay = nullptr;  // back to the global policy
      slow.delay = sample_episode_policy(s);
      if (slow.delay == nullptr) {
        // For kLinkDelay a null policy means "restore", not "worst" —
        // spell the worst case out so the degradation actually happens.
        slow.delay = std::make_shared<sim::FixedDelay>(Duration(c.delta_cap_us));
      }
      c.schedule.events.push_back(std::move(slow));
      c.schedule.events.push_back(std::move(restore));
    } else {  // scheduled behavior change
      auto change = make_event(sim::FaultKind::kBehaviorChange, start);
      const bool flip_new = !flip_candidates.empty() &&
                            (c.behaviors.empty() || s.rng.next_bool(0.5));
      if (flip_new) {
        change.node = flip_candidates.back();
        flip_candidates.pop_back();
        change.behavior = s.pick(kByzFlavors);
      } else {
        // Re-script an already-Byzantine node: new flavor or repentance.
        const auto& victim = c.behaviors[s.rng.next_below(c.behaviors.size())];
        change.node = victim.node;
        change.behavior = s.rng.next_bool(0.3) ? "honest" : s.pick(kByzFlavors);
      }
      c.schedule.events.push_back(std::move(change));
    }
  }

  c.disruption_end_us = std::max(lead + episodes * slot, c.gst_us);
  c.liveness_bound_us = s.scaled_ms(30'000);
}

void sample_workload(Sampler& s) {
  FuzzCase& c = s.c;
  if (!c.committing_core() || s.rng.next_bool(0.5)) return;  // no workload
  c.workload.clients = static_cast<std::uint32_t>(s.in_range(1, 2));
  c.workload.request_bytes = static_cast<std::size_t>(s.in_range(32, 96));
  const std::uint64_t die = s.rng.next_below(10);
  if (die < 6) {
    c.workload.arrival = workload::Arrival::kClosedLoop;
    c.workload.in_flight = static_cast<std::uint32_t>(s.in_range(1, 4));
  } else {
    c.workload.arrival =
        die < 8 ? workload::Arrival::kConstant : workload::Arrival::kPoisson;
    c.workload.rate_per_client = static_cast<double>(s.in_range(20, 80)) / s.scale;
  }
}

}  // namespace

FuzzCase sample_case(std::uint64_t seed) {
  FuzzCase c;
  c.seed = seed;
  Sampler s{Rng(seed ^ 0x46555a5aULL), c};  // "FUZZ"
  sample_protocol(s);
  sample_network(s);
  sample_faults_and_behaviors(s);
  sample_workload(s);
  // Sampled last so earlier seeds' draw sequences (and thus their
  // replayed cases) are unchanged by the dissemination dimension; the
  // block-sync draw rides after it for the same reason.
  if (c.workload.clients > 0) c.dissem = s.rng.next_bool(0.5);
  if (c.committing_core()) c.block_sync = s.rng.next_bool(0.5);
  return c;
}

runtime::ScenarioBuilder to_builder(const FuzzCase& c) {
  runtime::ScenarioBuilder builder;
  builder.params(ProtocolParams::for_n(c.n, Duration(c.delta_cap_us)));
  builder.pacemaker(c.pacemaker);
  builder.core(c.core);
  builder.seed(c.seed);
  builder.gst(TimePoint(c.gst_us));
  if (!c.topology.empty()) {
    builder.topology(c.topology);
  } else {
    builder.delay(c.delay);
  }
  if (c.join_stagger_us > 0) builder.join_stagger(Duration(c.join_stagger_us));
  if (c.drift_ppm_max > 0) builder.drift_ppm_max(c.drift_ppm_max);

  if (!c.behaviors.empty()) {
    std::vector<ProcessId> chosen;
    std::map<ProcessId, std::string> flavor;
    for (const BehaviorAssignment& assignment : c.behaviors) {
      chosen.push_back(assignment.node);
      flavor[assignment.node] = assignment.behavior;
    }
    builder.behaviors(adversary::byzantine_set(
        std::move(chosen), [flavor](ProcessId id) { return adversary::make_behavior(flavor.at(id)); }));
  }

  if (c.workload.clients > 0) {
    workload::WorkloadSpec spec;
    spec.arrival = c.workload.arrival;
    spec.clients_per_node = c.workload.clients;
    spec.rate_per_client = c.workload.rate_per_client;
    spec.in_flight = c.workload.in_flight;
    spec.request_bytes = c.workload.request_bytes;
    spec.stop = TimePoint(c.disruption_end_us);
    builder.workload(spec);
    if (c.dissem) builder.dissemination();
  }
  if (c.block_sync) builder.block_sync();

  // Replay the schedule through the builder API. Leave/rejoin pairs are
  // re-expressed as churn() (the builder's one churn declaration emits
  // both events); a rejoin consumed this way is skipped when reached.
  std::vector<bool> consumed(c.schedule.events.size(), false);
  for (std::size_t i = 0; i < c.schedule.events.size(); ++i) {
    if (consumed[i]) continue;
    const sim::FaultEvent& event = c.schedule.events[i];
    switch (event.kind) {
      case sim::FaultKind::kPartition:
        builder.partition(event.groups, event.at);
        break;
      case sim::FaultKind::kAsymPartition:
        builder.asym_partition(event.groups[0], event.groups[1], event.at);
        break;
      case sim::FaultKind::kHeal:
        builder.heal(event.at);
        break;
      case sim::FaultKind::kCrash:
        builder.crash(event.node, event.at);
        break;
      case sim::FaultKind::kRecover:
        builder.recover(event.node, event.at);
        break;
      case sim::FaultKind::kLeave: {
        std::size_t rejoin = i;
        for (std::size_t j = i + 1; j < c.schedule.events.size(); ++j) {
          if (c.schedule.events[j].kind == sim::FaultKind::kRejoin &&
              c.schedule.events[j].node == event.node && !consumed[j]) {
            rejoin = j;
            break;
          }
        }
        if (rejoin != i) {
          consumed[rejoin] = true;
          builder.churn(event.node, event.at, c.schedule.events[rejoin].at);
        } else {
          builder.crash(event.node, event.at);  // shrunk away its rejoin
        }
        break;
      }
      case sim::FaultKind::kRejoin:
        builder.recover(event.node, event.at);  // lone rejoin (shrunk leave)
        break;
      case sim::FaultKind::kDelayChange:
        builder.delay_change(event.delay, event.at);
        break;
      case sim::FaultKind::kLinkDelay:
        builder.link_delay(event.node, event.peer, event.delay, event.at);
        break;
      case sim::FaultKind::kBehaviorChange:
        builder.behavior_change(event.node, event.behavior, event.at);
        break;
    }
  }
  return builder;
}

std::string describe(const FuzzCase& c) {
  std::ostringstream out;
  out << "seed=" << c.seed << " n=" << c.n << " " << c.protocol_combo()
      << " delay=" << c.delay_desc << " delta=" << c.delta_cap_us << "us gst=" << c.gst_us
      << "us stagger=" << c.join_stagger_us << "us drift=" << c.drift_ppm_max << "ppm";
  if (c.workload.clients > 0) {
    out << " workload=" << workload::to_string(c.workload.arrival) << "x" << c.workload.clients;
  }
  out << " dissem=" << (c.dissem ? "on" : "off");
  out << " sync=" << (c.block_sync ? "on" : "off");
  out << " behaviors=[";
  for (std::size_t i = 0; i < c.behaviors.size(); ++i) {
    if (i > 0) out << ", ";
    out << "p" << c.behaviors[i].node << ":" << c.behaviors[i].behavior;
  }
  out << "] events=[";
  for (std::size_t i = 0; i < c.schedule.events.size(); ++i) {
    if (i > 0) out << ", ";
    out << sim::FaultSchedule::describe(c.schedule.events[i]);
  }
  out << "]";
  return out.str();
}

}  // namespace lumiere::fuzz
