// FuzzCase: one fully sampled scenario-fuzz experiment, as plain data.
//
// A single 64-bit seed deterministically expands into a complete
// experiment: protocol combination (registry pacemaker x core), cluster
// size, topology/delay regime, clock drift, join stagger, a fault
// schedule (symmetric and asymmetric partitions, crashes, churn, delay
// changes, scheduled behavior changes), an assignment of Byzantine
// behaviors (at most f ever-Byzantine nodes), and an optional client
// workload. The case is *data*, not code: the shrinker (fuzz/engine.h)
// mutates it (dropping events, behaviors, or nodes) and replays, and the
// fuzz_repro tool rebuilds the exact case from the seed plus the recorded
// deltas.
//
// The generator keeps every case inside the envelope where the protocols
// *guarantee* recovery: all partitions heal and all crashed processors
// recover by `disruption_end`, at most f nodes are ever Byzantine, and
// delays (however adversarial) obey the partial-synchrony clamp — so the
// liveness oracle's "commit progress resumes within `liveness_bound` of
// the last disruption" is a theorem the implementation must uphold, not a
// hope.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "runtime/scenario.h"
#include "sim/fault_schedule.h"

namespace lumiere::fuzz {

/// One initially Byzantine node.
struct BehaviorAssignment {
  ProcessId node = kNoProcess;
  std::string behavior;  ///< adversary::make_behavior name
};

/// Client-workload shape (enabled iff clients > 0; committing cores only).
struct WorkloadChoice {
  std::uint32_t clients = 0;
  workload::Arrival arrival = workload::Arrival::kClosedLoop;
  double rate_per_client = 0.0;   ///< open-loop arrivals/s
  std::uint32_t in_flight = 0;    ///< closed-loop window
  std::size_t request_bytes = 64;
};

struct FuzzCase {
  std::uint64_t seed = 0;
  std::uint32_t n = 4;
  std::string pacemaker = "lumiere";
  std::string core = "chained-hotstuff";
  /// Topology preset name; empty = a sampled DelayPolicy instead.
  std::string topology;
  /// The adversary's delay choice when no topology preset is active
  /// (nullptr = the worst permitted: every message at max(GST, t) + Delta).
  std::shared_ptr<sim::DelayPolicy> delay;
  std::string delay_desc = "worst";  ///< for describe()
  std::int64_t delta_cap_us = 10'000;
  std::int64_t gst_us = 0;
  std::int64_t join_stagger_us = 0;
  std::int64_t drift_ppm_max = 0;

  std::vector<BehaviorAssignment> behaviors;
  /// Time-ordered scripted events (includes kAsymPartition and
  /// kBehaviorChange compositions).
  sim::FaultSchedule schedule;
  WorkloadChoice workload;
  /// Run the data-dissemination layer (src/dissem/): proposals order
  /// certified batch references. Only sampled when a workload is on.
  bool dissem = false;
  /// Run the block-sync subsystem (src/sync/): wedged commit walks fetch
  /// missing ancestors from peers. Only sampled for committing cores —
  /// with it on, an equivocation victim's liveness becomes checkable.
  bool block_sync = false;

  /// Every partition is healed and every crashed processor recovered by
  /// this instant; the liveness oracle's window starts here.
  std::int64_t disruption_end_us = 0;
  /// Progress must resume within this bound of disruption_end.
  std::int64_t liveness_bound_us = 0;

  [[nodiscard]] bool committing_core() const { return core != "simple-view"; }
  [[nodiscard]] std::string protocol_combo() const { return pacemaker + "/" + core; }
};

/// Expands `seed` into a full experiment. Pure: same seed, same case.
[[nodiscard]] FuzzCase sample_case(std::uint64_t seed);

/// Rebuilds the ScenarioBuilder for a (possibly shrunken) case.
[[nodiscard]] runtime::ScenarioBuilder to_builder(const FuzzCase& c);

/// One-line human description (protocol, size, regime, events, behaviors).
[[nodiscard]] std::string describe(const FuzzCase& c);

}  // namespace lumiere::fuzz
