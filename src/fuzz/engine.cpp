#include "fuzz/engine.h"

#include <algorithm>
#include <set>
#include <sstream>

#include "fuzz/oracles.h"
#include "runtime/cluster.h"

namespace lumiere::fuzz {
namespace {

crypto::Digest run_digest(const runtime::Cluster& cluster) {
  crypto::Sha256 hasher;
  const auto fold = [&hasher](std::uint64_t v) {
    std::uint8_t bytes[8];
    for (int i = 0; i < 8; ++i) bytes[i] = static_cast<std::uint8_t>(v >> (8 * i));
    hasher.update(std::span<const std::uint8_t>(bytes, 8));
  };
  for (const sim::TraceEvent& event : cluster.trace().events()) {
    fold(static_cast<std::uint64_t>(event.at.ticks()));
    fold(static_cast<std::uint64_t>(event.kind));
    fold(event.node);
    fold(static_cast<std::uint64_t>(event.view));
  }
  for (ProcessId id = 0; id < cluster.n(); ++id) {
    const consensus::Ledger& ledger = cluster.node(id).ledger();
    fold(ledger.size());
    for (const auto& entry : ledger.entries()) {
      fold(static_cast<std::uint64_t>(entry.view));
      hasher.update(entry.hash.as_span());
    }
  }
  fold(cluster.metrics().total_honest_msgs());
  return hasher.finish();
}

}  // namespace

RunResult run_case(const FuzzCase& c) {
  runtime::Cluster cluster(to_builder(c).scenario());
  const TimePoint disruption_end(c.disruption_end_us);
  const Duration bound(c.liveness_bound_us);
  const TimePoint deadline = disruption_end + bound;
  // The applicable liveness form: committed blocks for committing cores,
  // decisions (honest-leader QCs) for simple-view.
  const auto liveness = [&]() {
    return c.committing_core()
               ? check_commit_liveness(cluster, disruption_end, bound, 1)
               : check_decision_liveness(cluster, disruption_end, bound, 2);
  };

  cluster.run_until(disruption_end);
  // Probe in slices and stop as soon as progress resumed — a passing case
  // costs ~one slice past the last disruption, a failing one the full
  // bound. Slice boundaries are a pure function of the case, so the
  // execution (and its digest) replays byte-identically.
  const Duration slice(std::max<std::int64_t>(c.liveness_bound_us / 60, 1));
  while (cluster.sim().now() < deadline && liveness().has_value()) {
    cluster.run_until(std::min(deadline, cluster.sim().now() + slice));
  }

  RunResult result;
  const auto add = [&result](std::optional<std::string> violation) {
    if (violation) result.violations.push_back(std::move(*violation));
  };
  add(check_safety(cluster));
  add(check_view_monotonicity(cluster));
  add(liveness());
  if (c.workload.clients > 0) add(check_exactly_once(cluster));
  result.digest = run_digest(cluster);
  return result;
}

RunResult run_case_tcp(const FuzzCase& c, std::uint16_t tcp_base_port) {
  // Strip what real sockets cannot express; everything else (fault
  // schedule, behaviors, workload, dissemination, protocol combo) rides
  // through the same builder path as the sim run.
  FuzzCase t = c;
  t.topology.clear();
  t.delay = nullptr;
  t.delay_desc = "tcp";
  t.gst_us = 0;
  std::erase_if(t.schedule.events, [](const sim::FaultEvent& event) {
    return event.kind == sim::FaultKind::kDelayChange ||
           event.kind == sim::FaultKind::kLinkDelay;
  });

  runtime::ScenarioBuilder builder = to_builder(t);
  builder.transport_tcp(tcp_base_port);
  runtime::Cluster cluster(builder.scenario());

  const TimePoint disruption_end(t.disruption_end_us);
  const Duration bound(t.liveness_bound_us);
  const TimePoint deadline = disruption_end + bound;
  const auto liveness = [&]() {
    return t.committing_core()
               ? check_commit_liveness(cluster, disruption_end, bound, 1)
               : check_decision_liveness(cluster, disruption_end, bound, 2);
  };

  cluster.run_until(disruption_end);
  // Probe in wall-clock slices (the shared sim clock does not exist on
  // TCP; ledgers and metrics may only be read between run_for calls).
  // Coarser slices than the sim run: each one costs real milliseconds.
  const Duration slice(std::max<std::int64_t>(t.liveness_bound_us / 20, 1000));
  TimePoint now = disruption_end;
  while (now < deadline && liveness().has_value()) {
    const Duration step = std::min(slice, deadline - now);
    cluster.run_for(step);
    now = now + step;
  }

  RunResult result;
  const auto add = [&result](std::optional<std::string> violation) {
    if (violation) result.violations.push_back(std::move(*violation));
  };
  add(check_safety(cluster));
  add(check_view_monotonicity(cluster));  // vacuous on TCP (empty trace)
  add(liveness());
  if (t.workload.clients > 0) add(check_exactly_once(cluster));
  result.digest = run_digest(cluster);
  return result;
}

std::vector<std::vector<std::size_t>> event_episodes(const FuzzCase& c) {
  const auto& events = c.schedule.events;
  std::vector<bool> grouped(events.size(), false);
  std::vector<std::vector<std::size_t>> episodes;
  const auto pair_with = [&](std::size_t i, auto&& matches) {
    for (std::size_t j = i + 1; j < events.size(); ++j) {
      if (!grouped[j] && matches(events[j])) return j;
    }
    return i;
  };
  for (std::size_t i = 0; i < events.size(); ++i) {
    if (grouped[i]) continue;
    const sim::FaultEvent& event = events[i];
    std::size_t partner = i;
    switch (event.kind) {
      case sim::FaultKind::kPartition:
      case sim::FaultKind::kAsymPartition:
        partner = pair_with(
            i, [](const sim::FaultEvent& e) { return e.kind == sim::FaultKind::kHeal; });
        break;
      case sim::FaultKind::kCrash:
        partner = pair_with(i, [&event](const sim::FaultEvent& e) {
          return e.kind == sim::FaultKind::kRecover && e.node == event.node;
        });
        break;
      case sim::FaultKind::kLeave:
        partner = pair_with(i, [&event](const sim::FaultEvent& e) {
          return e.kind == sim::FaultKind::kRejoin && e.node == event.node;
        });
        break;
      case sim::FaultKind::kLinkDelay:
        if (event.delay != nullptr) {
          partner = pair_with(i, [&event](const sim::FaultEvent& e) {
            return e.kind == sim::FaultKind::kLinkDelay && e.node == event.node &&
                   e.peer == event.peer && e.delay == nullptr;
          });
        }
        break;
      default:
        break;
    }
    grouped[i] = true;
    std::vector<std::size_t> episode{i};
    if (partner != i) {
      grouped[partner] = true;
      episode.push_back(partner);
    }
    episodes.push_back(std::move(episode));
  }
  return episodes;
}

FuzzCase apply_deltas(const FuzzCase& base, const CaseDeltas& deltas) {
  FuzzCase c = base;
  if (deltas.drop_workload) c.workload = WorkloadChoice{};
  // Dissemination rides on the workload: dropping either switches it off.
  if (deltas.drop_dissem || deltas.drop_workload) c.dissem = false;
  if (deltas.drop_block_sync) c.block_sync = false;

  std::vector<bool> drop_event(c.schedule.events.size(), false);
  for (const std::size_t index : deltas.drop_events) {
    if (index < drop_event.size()) drop_event[index] = true;
  }
  std::vector<bool> drop_behavior(c.behaviors.size(), false);
  for (const std::size_t index : deltas.drop_behaviors) {
    if (index < drop_behavior.size()) drop_behavior[index] = true;
  }

  if (deltas.n != 0 && deltas.n < c.n) {
    c.n = deltas.n;
    const std::uint32_t f = (c.n - 1) / 3;
    // Behaviors and events referencing dropped nodes go; the surviving
    // ever-FAULTY set — Byzantine assignments, scheduled flip-ins AND
    // crash/churn victims, exactly the budget the sampler enforces — is
    // re-capped at the smaller f in first-seen order, so a shrunken case
    // never leaves the guaranteed-recovery envelope and fails for a
    // reason the original never exhibited.
    std::set<ProcessId> faulty;
    for (std::size_t i = 0; i < c.behaviors.size(); ++i) {
      if (drop_behavior[i]) continue;
      const ProcessId node = c.behaviors[i].node;
      if (node >= c.n || (!faulty.count(node) && faulty.size() >= f)) {
        drop_behavior[i] = true;
      } else {
        faulty.insert(node);
      }
    }
    // A budget-dropped crash/leave takes its recover/rejoin with it.
    const auto drop_partner = [&](std::size_t i, sim::FaultKind partner_kind) {
      for (std::size_t j = i + 1; j < c.schedule.events.size(); ++j) {
        if (!drop_event[j] && c.schedule.events[j].kind == partner_kind &&
            c.schedule.events[j].node == c.schedule.events[i].node) {
          drop_event[j] = true;
          return;
        }
      }
    };
    for (std::size_t i = 0; i < c.schedule.events.size(); ++i) {
      if (drop_event[i]) continue;
      sim::FaultEvent& event = c.schedule.events[i];
      switch (event.kind) {
        case sim::FaultKind::kPartition:
        case sim::FaultKind::kAsymPartition: {
          for (auto& group : event.groups) {
            std::erase_if(group, [&c](ProcessId id) { return id >= c.n; });
          }
          if (event.kind == sim::FaultKind::kAsymPartition) {
            if (event.groups[0].empty() || event.groups[1].empty()) drop_event[i] = true;
          } else {
            std::erase_if(event.groups, [](const auto& group) { return group.empty(); });
            if (event.groups.size() < 2) drop_event[i] = true;
          }
          break;
        }
        case sim::FaultKind::kCrash:
        case sim::FaultKind::kLeave:
          if (event.node >= c.n ||
              (!faulty.count(event.node) && faulty.size() >= f)) {
            drop_event[i] = true;
            drop_partner(i, event.kind == sim::FaultKind::kCrash
                                ? sim::FaultKind::kRecover
                                : sim::FaultKind::kRejoin);
          } else {
            faulty.insert(event.node);
          }
          break;
        case sim::FaultKind::kRecover:
        case sim::FaultKind::kRejoin:
          if (event.node >= c.n) drop_event[i] = true;
          break;
        case sim::FaultKind::kLinkDelay:
          if (event.node >= c.n || event.peer >= c.n) drop_event[i] = true;
          break;
        case sim::FaultKind::kBehaviorChange:
          if (event.node >= c.n) {
            drop_event[i] = true;
          } else if (event.behavior != "honest" && !faulty.count(event.node)) {
            if (faulty.size() >= f) {
              drop_event[i] = true;  // over the shrunken fault budget
            } else {
              faulty.insert(event.node);
            }
          }
          break;
        case sim::FaultKind::kHeal:
        case sim::FaultKind::kDelayChange:
          break;
      }
    }
  }

  sim::FaultSchedule kept;
  for (std::size_t i = 0; i < c.schedule.events.size(); ++i) {
    if (!drop_event[i]) kept.events.push_back(std::move(c.schedule.events[i]));
  }
  c.schedule = std::move(kept);
  std::vector<BehaviorAssignment> kept_behaviors;
  for (std::size_t i = 0; i < c.behaviors.size(); ++i) {
    if (!drop_behavior[i]) kept_behaviors.push_back(std::move(c.behaviors[i]));
  }
  c.behaviors = std::move(kept_behaviors);
  return c;
}

ShrinkResult shrink(std::uint64_t seed,
                    const std::function<bool(const FuzzCase&)>& still_fails,
                    std::size_t max_attempts) {
  const FuzzCase base = sample_case(seed);
  ShrinkResult result;
  result.attempts = 1;
  if (!still_fails(base)) {
    // Nothing to shrink: the caller's failure did not reproduce.
    result.minimal = base;
    return result;
  }

  CaseDeltas deltas;
  const auto fails_with = [&](const CaseDeltas& candidate) {
    if (result.attempts >= max_attempts) return false;
    ++result.attempts;
    return still_fails(apply_deltas(base, candidate));
  };
  const auto dropped = [&](std::size_t index) {
    return std::find(deltas.drop_events.begin(), deltas.drop_events.end(), index) !=
           deltas.drop_events.end();
  };

  const std::vector<std::vector<std::size_t>> episodes = event_episodes(base);
  bool changed = true;
  while (changed && result.attempts < max_attempts) {
    changed = false;
    // Dissemination first: a failure that survives without the dissem
    // layer is a plain consensus/workload bug, and the smaller repro
    // should say so before the workload itself is attacked.
    if (base.dissem && !deltas.drop_dissem && !deltas.drop_workload) {
      CaseDeltas candidate = deltas;
      candidate.drop_dissem = true;
      if (fails_with(candidate)) {
        deltas = candidate;
        changed = true;
      }
    }
    // Block sync next, for the same reason: a failure that survives
    // without it is not a sync bug, and the repro should say so.
    if (base.block_sync && !deltas.drop_block_sync) {
      CaseDeltas candidate = deltas;
      candidate.drop_block_sync = true;
      if (fails_with(candidate)) {
        deltas = candidate;
        changed = true;
      }
    }
    if (base.workload.clients > 0 && !deltas.drop_workload) {
      CaseDeltas candidate = deltas;
      candidate.drop_workload = true;
      if (fails_with(candidate)) {
        deltas = candidate;
        changed = true;
      }
    }
    // Whole episodes only: a partition without its heal (or a crash
    // without its recover) would leave the end state disrupted and fail
    // the liveness oracle for a reason the original case never exhibited.
    for (const auto& episode : episodes) {
      if (dropped(episode.front())) continue;
      CaseDeltas candidate = deltas;
      candidate.drop_events.insert(candidate.drop_events.end(), episode.begin(), episode.end());
      if (fails_with(candidate)) {
        deltas = candidate;
        changed = true;
      }
    }
    for (std::size_t i = 0; i < base.behaviors.size(); ++i) {
      if (std::find(deltas.drop_behaviors.begin(), deltas.drop_behaviors.end(), i) !=
          deltas.drop_behaviors.end()) {
        continue;
      }
      CaseDeltas candidate = deltas;
      candidate.drop_behaviors.push_back(i);
      if (fails_with(candidate)) {
        deltas = candidate;
        changed = true;
      }
    }
    const std::uint32_t current_n = deltas.n != 0 ? deltas.n : base.n;
    if (current_n > 4) {
      CaseDeltas candidate = deltas;
      candidate.n = 3 * ((current_n - 1) / 3 - 1) + 1;  // 10 -> 7 -> 4
      if (fails_with(candidate)) {
        deltas = candidate;
        changed = true;
      }
    }
  }

  std::sort(deltas.drop_events.begin(), deltas.drop_events.end());
  std::sort(deltas.drop_behaviors.begin(), deltas.drop_behaviors.end());
  result.deltas = deltas;
  result.minimal = apply_deltas(base, deltas);
  return result;
}

std::string repro_line(std::uint64_t seed, const CaseDeltas& deltas) {
  std::ostringstream out;
  out << "fuzz_repro --seed " << seed;
  const auto list = [&out](const char* flag, const std::vector<std::size_t>& indices) {
    if (indices.empty()) return;
    out << " " << flag << " ";
    for (std::size_t i = 0; i < indices.size(); ++i) {
      if (i > 0) out << ",";
      out << indices[i];
    }
  };
  list("--drop-events", deltas.drop_events);
  list("--drop-behaviors", deltas.drop_behaviors);
  if (deltas.n != 0) out << " --n " << deltas.n;
  if (deltas.drop_workload) out << " --no-workload";
  if (deltas.drop_dissem) out << " --no-dissem";
  if (deltas.drop_block_sync) out << " --no-sync";
  return out.str();
}

}  // namespace lumiere::fuzz
