// Correctness oracles: reusable pass/fail checks over a finished Cluster
// run.
//
// Hand-written scenarios and the scenario fuzzer (fuzz/engine.h) assert
// the same properties; this library is the single home of those checks so
// the two cannot drift apart:
//   * safety           — no two honest ledgers conflict (pairwise prefix
//                        consistency by block hash);
//   * view monotonicity — condition (1) of the view-synchronization task,
//                        checked event-wise over the structured trace;
//   * liveness         — honest decision/commit progress resumes within a
//                        bound of a given instant (GST, or the last
//                        scripted disruption);
//   * exactly-once     — an admitted workload request commits at most
//                        once, and every observed commit matches a
//                        submission.
//
// Every oracle returns std::nullopt when satisfied and a self-contained
// violation description otherwise (what failed, where, and the observed
// numbers) — the string a fuzz repro or a test failure message prints
// verbatim.
#pragma once

#include <optional>
#include <string>

#include "common/time.h"

namespace lumiere::runtime {
class Cluster;
}

namespace lumiere::fuzz {

/// SAFETY: every pair of honest ledgers is prefix-consistent (one is a
/// hash-prefix of the other). Byzantine nodes — including nodes scheduled
/// to turn Byzantine mid-run — are excluded; their ledgers carry no
/// guarantee. Works on both transports.
[[nodiscard]] std::optional<std::string> check_safety(const runtime::Cluster& cluster);

/// VIEW MONOTONICITY: per node, the trace's view-entered events never
/// decrease. Sim transport only (the TCP trace is empty and passes
/// vacuously).
[[nodiscard]] std::optional<std::string> check_view_monotonicity(
    const runtime::Cluster& cluster);

/// DECISION LIVENESS: at least `min_decisions` decisions (honest-leader QC
/// formations, the paper's decision points) happened in
/// (from, from + bound]. The cluster must already have run past
/// from + bound. Works for every core, including the never-committing
/// simple-view.
[[nodiscard]] std::optional<std::string> check_decision_liveness(
    const runtime::Cluster& cluster, TimePoint from, Duration bound,
    std::size_t min_decisions = 1);

/// COMMIT LIVENESS: some honest ledger committed at least `min_commits`
/// blocks in (from, from + bound] — the SMR-output form of progress
/// (chained cores only; simple-view never commits). Works on both
/// transports (it reads ledgers, not the metrics collector).
[[nodiscard]] std::optional<std::string> check_commit_liveness(
    const runtime::Cluster& cluster, TimePoint from, Duration bound,
    std::size_t min_commits = 1);

/// EXACTLY-ONCE: no honest ledger commits the same workload request
/// (client, seq) twice, and the merged client-side accounting observed no
/// commit without a matching submission. Vacuously true for runs without
/// a client workload.
[[nodiscard]] std::optional<std::string> check_exactly_once(const runtime::Cluster& cluster);

}  // namespace lumiere::fuzz
