// Data-form correctness oracles: the PR 5 checks (fuzz/oracles.h)
// recast over *downloaded* ledger dumps instead of a live in-process
// Cluster. The soak orchestrator (tools/soak) kills and restarts real
// replica processes, then pulls each survivor's commit log through the
// status endpoint's LEDGER command — at that point there is no Cluster
// object to ask, only n parsed dumps.
//
// Two consequences shape the checks:
//   * A restarted replica resumes through checkpoint adoption
//     (consensus/ledger.h adopt_base), so its dump is a committed
//     *suffix* of the cluster's chain, not a full prefix. Safety is
//     therefore checked over the view-overlap of each pair, not by
//     index-aligned prefixes.
//   * A restarted replica's workload clients restart their sequence
//     numbers, legitimately re-submitting (client, seq) tags that
//     committed before the crash. Exactly-once forgives duplicates whose
//     client belongs to a node marked `restarted`.
//
// Like fuzz/oracles.h, every check returns std::nullopt when satisfied
// and a self-contained violation string otherwise.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "common/types.h"
#include "runtime/spec_io.h"

namespace lumiere::fuzz {

/// One node's downloaded commit log plus what the orchestrator knows
/// about the process that produced it.
struct NodeLedgerData {
  ProcessId node = kNoProcess;
  /// Reported ever_byzantine (STATUS) or known from the disruption
  /// schedule — excluded from every guarantee.
  bool ever_byzantine = false;
  /// The process was killed and restarted: its dump is a suffix window
  /// and its workload clients re-use sequence numbers.
  bool restarted = false;
  std::vector<runtime::LedgerRecord> records;
};

/// SAFETY: for every pair of honest dumps, the entries inside the pair's
/// common view range are identical (same views, same block hashes, in
/// the same order). Suffix windows with disjoint view ranges have
/// nothing to compare and pass vacuously.
[[nodiscard]] std::optional<std::string> check_safety_data(
    const std::vector<NodeLedgerData>& nodes);

/// VIEW MONOTONICITY (commit-order form): within each honest dump,
/// committed views strictly increase.
[[nodiscard]] std::optional<std::string> check_view_monotonicity_data(
    const std::vector<NodeLedgerData>& nodes);

/// EXACTLY-ONCE: no honest dump carries the same workload request
/// (client, seq) twice — except tags owned by a restarted node's
/// clients, which legitimately re-submit after the crash. Dumps whose
/// payloads are dissemination references (certified batch refs, not
/// request bytes) are skipped: raw dumps cannot resolve them.
[[nodiscard]] std::optional<std::string> check_exactly_once_data(
    const std::vector<NodeLedgerData>& nodes);

/// LIVENESS (progress form): the dump of `node` extends beyond
/// `min_view` — its newest committed view is strictly greater. The
/// orchestrator uses this to prove a restarted replica committed *new*
/// entries after rejoining (min_view = the cluster's max committed view
/// observed at restart time).
[[nodiscard]] std::optional<std::string> check_commit_progress_data(
    const std::vector<NodeLedgerData>& nodes, ProcessId node, View min_view);

}  // namespace lumiere::fuzz
