// The scenario-fuzz engine: run one sampled case against the oracle
// library, and shrink failures to minimal repros.
//
// run_case() expands a FuzzCase into a sim-transport Cluster, runs it
// past the last scripted disruption plus the liveness bound (with early
// exit once progress is observed — passing cases stay cheap), and checks
// every applicable oracle (fuzz/oracles.h). The result carries a SHA-256
// digest folded over the structured trace, every ledger and the message
// totals: two runs of the same case are byte-identical iff their digests
// match, which is how the determinism tests and fuzz_repro assert
// reproducibility.
//
// A failure shrinks greedily (shrink()): whole fault episodes (a
// partition and its heal travel together — dropping half would manufacture
// an un-healed network the oracles rightly reject), then behavior
// assignments, then cluster size (n -> the next smaller 3f' + 1, keeping
// only events and behaviors that still fit), re-running the predicate
// after every candidate drop and keeping it only while the case still
// fails. The minimal case is expressed as CaseDeltas — drops relative to
// sample_case(seed) — so one line
//   fuzz_repro --seed N [--drop-events i,j] [--drop-behaviors k] [--n M]
// rebuilds and replays it byte-identically.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "crypto/sha256.h"
#include "fuzz/fuzz_case.h"

namespace lumiere::fuzz {

struct RunResult {
  /// One self-contained description per violated oracle; empty = pass.
  std::vector<std::string> violations;
  /// SHA-256 over trace + ledgers + message totals: the run's identity.
  crypto::Digest digest;

  [[nodiscard]] bool ok() const { return violations.empty(); }
};

/// Builds and runs `c` on the sim transport, then applies every oracle
/// that applies to the case (safety and view monotonicity always;
/// commit- or decision-liveness depending on the core; exactly-once when
/// a workload ran).
[[nodiscard]] RunResult run_case(const FuzzCase& c);

/// Builds and runs `c` on the REAL TCP transport (localhost sockets,
/// wall-clock pacing). Simulator-only elements are stripped first:
/// topology presets, adversarial delay policies, GST and scripted delay
/// events cannot exist on real sockets, while partitions, crashes, churn
/// and behavior changes replay through their best-effort TCP analogues.
/// The digest is NOT comparable with run_case's (no structured trace,
/// wall-clock commit stamps, real scheduling); the *verdict* — which
/// oracles pass — is, and fuzz_repro --transport=tcp asserts exactly
/// that.
[[nodiscard]] RunResult run_case_tcp(const FuzzCase& c, std::uint16_t tcp_base_port);

/// A shrunken case, expressed as drops relative to sample_case(seed).
struct CaseDeltas {
  /// Indices into sample_case(seed).schedule.events to remove.
  std::vector<std::size_t> drop_events;
  /// Indices into sample_case(seed).behaviors to remove.
  std::vector<std::size_t> drop_behaviors;
  /// Shrunken cluster size (0 = keep the sampled n). Events and
  /// behaviors referencing nodes >= n are dropped; partition groups lose
  /// their out-of-range members (degenerate partitions are dropped).
  std::uint32_t n = 0;
  /// Disable the sampled client workload.
  bool drop_workload = false;
  /// Disable the sampled dissemination layer (keeping the workload).
  bool drop_dissem = false;
  /// Disable the sampled block-sync subsystem.
  bool drop_block_sync = false;

  [[nodiscard]] bool empty() const {
    return drop_events.empty() && drop_behaviors.empty() && n == 0 && !drop_workload &&
           !drop_dissem && !drop_block_sync;
  }
};

/// Applies `deltas` to a freshly sampled case (pure; used by the
/// shrinker and by fuzz_repro's command line).
[[nodiscard]] FuzzCase apply_deltas(const FuzzCase& base, const CaseDeltas& deltas);

struct ShrinkResult {
  CaseDeltas deltas;
  FuzzCase minimal;       ///< apply_deltas(sample_case(seed), deltas)
  std::size_t attempts = 0;  ///< candidate cases executed while shrinking
};

/// Greedily minimizes the failing case sampled from `seed`:
/// `still_fails` must return true for the unshrunk case (and for any
/// candidate that preserves the failure). The default predicate is
/// !run_case(candidate).ok(). Deterministic; bounded by `max_attempts`
/// candidate runs.
[[nodiscard]] ShrinkResult shrink(
    std::uint64_t seed, const std::function<bool(const FuzzCase&)>& still_fails,
    std::size_t max_attempts = 200);

/// The one-line replay command for a shrunken case.
[[nodiscard]] std::string repro_line(std::uint64_t seed, const CaseDeltas& deltas);

/// Fault episodes: groups of schedule indices that must be dropped
/// together (partition+heal, crash+recover, leave+rejoin, a link-delay
/// override and its restore). Singleton events form their own group.
/// Exposed for the shrinker tests.
[[nodiscard]] std::vector<std::vector<std::size_t>> event_episodes(const FuzzCase& c);

}  // namespace lumiere::fuzz
