#include "fuzz/ledger_oracles.h"

#include <algorithm>
#include <map>
#include <set>
#include <span>
#include <sstream>
#include <utility>

#include "consensus/mempool.h"
#include "dissem/batch.h"
#include "workload/request.h"

namespace lumiere::fuzz {

namespace {

/// The entries of `records` whose view lies in [lo, hi], as a span of
/// indices (records are view-sorted per check_view_monotonicity_data).
std::pair<std::size_t, std::size_t> view_range_slice(
    const std::vector<runtime::LedgerRecord>& records, View lo, View hi) {
  const auto first = std::lower_bound(
      records.begin(), records.end(), lo,
      [](const runtime::LedgerRecord& r, View v) { return r.view < v; });
  const auto last = std::upper_bound(
      records.begin(), records.end(), hi,
      [](View v, const runtime::LedgerRecord& r) { return v < r.view; });
  return {static_cast<std::size_t>(first - records.begin()),
          static_cast<std::size_t>(last - records.begin())};
}

}  // namespace

std::optional<std::string> check_safety_data(const std::vector<NodeLedgerData>& nodes) {
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    if (nodes[i].ever_byzantine || nodes[i].records.empty()) continue;
    for (std::size_t j = i + 1; j < nodes.size(); ++j) {
      if (nodes[j].ever_byzantine || nodes[j].records.empty()) continue;
      const auto& a = nodes[i].records;
      const auto& b = nodes[j].records;
      // The committed chain is one sequence; each honest dump is a
      // contiguous window of it (full prefix, or a checkpoint-adopted
      // suffix). Inside the common view range the two windows must list
      // exactly the same blocks.
      const View lo = std::max(a.front().view, b.front().view);
      const View hi = std::min(a.back().view, b.back().view);
      if (lo > hi) continue;  // disjoint windows: nothing to compare
      const auto [ai, ae] = view_range_slice(a, lo, hi);
      const auto [bi, be] = view_range_slice(b, lo, hi);
      if (ae - ai != be - bi) {
        std::ostringstream out;
        out << "safety: nodes " << nodes[i].node << " and " << nodes[j].node
            << " committed different block counts (" << (ae - ai) << " vs " << (be - bi)
            << ") over their common view range [" << lo << ", " << hi << "]";
        return out.str();
      }
      for (std::size_t k = 0; k < ae - ai; ++k) {
        const runtime::LedgerRecord& ra = a[ai + k];
        const runtime::LedgerRecord& rb = b[bi + k];
        if (ra.view != rb.view || ra.hash != rb.hash) {
          std::ostringstream out;
          out << "safety: ledger fork between honest nodes " << nodes[i].node << " and "
              << nodes[j].node << " in their common view range [" << lo << ", " << hi
              << "]: entry " << k << " is view " << ra.view << " (" << ra.hash.hex().substr(0, 12)
              << ") vs view " << rb.view << " (" << rb.hash.hex().substr(0, 12) << ")";
          return out.str();
        }
      }
    }
  }
  return std::nullopt;
}

std::optional<std::string> check_view_monotonicity_data(
    const std::vector<NodeLedgerData>& nodes) {
  for (const NodeLedgerData& node : nodes) {
    if (node.ever_byzantine) continue;
    for (std::size_t k = 1; k < node.records.size(); ++k) {
      if (node.records[k].view <= node.records[k - 1].view) {
        std::ostringstream out;
        out << "view monotonicity: node " << node.node << " committed view "
            << node.records[k].view << " after view " << node.records[k - 1].view << " (entries "
            << (k - 1) << ", " << k << ")";
        return out.str();
      }
    }
  }
  return std::nullopt;
}

std::optional<std::string> check_exactly_once_data(const std::vector<NodeLedgerData>& nodes) {
  std::set<std::uint32_t> restarted_nodes;
  for (const NodeLedgerData& node : nodes) {
    if (node.restarted) restarted_nodes.insert(node.node);
  }
  for (const NodeLedgerData& node : nodes) {
    if (node.ever_byzantine) continue;
    std::map<std::pair<std::uint32_t, std::uint64_t>, std::size_t> seen;
    std::size_t index = 0;
    for (const runtime::LedgerRecord& record : node.records) {
      const auto payload =
          std::span<const std::uint8_t>(record.payload.data(), record.payload.size());
      // Dissemination mode commits certified references; the raw dump
      // cannot resolve them to request bytes — skip (the in-process
      // oracle covers that composition).
      if (dissem::is_refs_payload(payload)) {
        ++index;
        continue;
      }
      for (const auto& command : consensus::Mempool::split_batch(payload)) {
        const auto request = workload::Request::decode(command);
        if (!request) continue;  // not a tagged workload request
        // A restarted replica's clients restart their sequence numbers,
        // so their pre-crash tags legitimately commit a second time.
        if (restarted_nodes.contains(workload::client_node(request->client))) continue;
        const auto key = std::make_pair(request->client, request->seq);
        const auto [it, inserted] = seen.emplace(key, index);
        if (!inserted) {
          std::ostringstream out;
          out << "exactly-once: node " << node.node << " committed request (client "
              << request->client << ", seq " << request->seq << ") twice (entries " << it->second
              << " and " << index << ")";
          return out.str();
        }
      }
      ++index;
    }
  }
  return std::nullopt;
}

std::optional<std::string> check_commit_progress_data(const std::vector<NodeLedgerData>& nodes,
                                                      ProcessId node, View min_view) {
  for (const NodeLedgerData& data : nodes) {
    if (data.node != node) continue;
    if (!data.records.empty() && data.records.back().view > min_view) return std::nullopt;
    std::ostringstream out;
    out << "progress: node " << node << " newest committed view is "
        << (data.records.empty() ? View{-1} : data.records.back().view)
        << " — expected beyond view " << min_view;
    return out.str();
  }
  std::ostringstream out;
  out << "progress: no ledger dump for node " << node;
  return out.str();
}

}  // namespace lumiere::fuzz
