#include "transport/realtime.h"

#include <algorithm>

#include "common/assert.h"

namespace lumiere::transport {

TcpTransportAdapter::TcpTransportAdapter(ProcessId self, std::uint32_t n,
                                         std::uint16_t base_port, MessageCodec codec)
    : self_(self),
      n_(n),
      partition_cut_(n, false),
      inbound_cut_(n, false),
      peer_down_(n, false),
      link_drop_(n, 0.0),
      link_delay_(n, Duration::zero()) {
  endpoint_ = std::make_unique<TcpEndpoint>(
      self, n, base_port, std::move(codec),
      [this](ProcessId from, const MessagePtr& msg) {
        if (from < n_ && from != self_ && (blocked(from) || inbound_cut_[from])) return;
        if (deliver_) deliver_(from, msg);
      });
}

void TcpTransportAdapter::register_endpoint(ProcessId id, DeliverFn fn) {
  LUMIERE_ASSERT_MSG(id == self_, "adapter hosts exactly one processor");
  deliver_ = std::move(fn);
}

void TcpTransportAdapter::send(ProcessId from, ProcessId to, MessagePtr msg) {
  LUMIERE_ASSERT(from == self_);
  LUMIERE_ASSERT(to < n_);
  if (self_down_) return;  // even self-delivery: process is down
  // Charged before the link-cut filter, matching the sim network: the
  // send is real traffic by a correct process whether or not the
  // adversary cuts the wire.
  if (observer_ != nullptr && to != self_) {
    observer_->on_send(observer_clock_->now(), from, to, *msg);
  }
  if (to != self_ && blocked(to)) return;  // cut link: the frame is lost
  shaped_send(to, msg);
}

void TcpTransportAdapter::broadcast(ProcessId from, const MessagePtr& msg) {
  LUMIERE_ASSERT(from == self_);
  if (self_down_) return;
  // One bulk charge for the fan-out (identical totals to per-peer
  // on_send, matching sim::Network::broadcast), then per-recipient
  // delivery so cut links filter individually.
  if (observer_ != nullptr) observer_->on_broadcast(observer_clock_->now(), from, *msg, n_);
  for (ProcessId to = 0; to < n_; ++to) {
    if (to != self_ && blocked(to)) continue;
    shaped_send(to, msg);
  }
}

void TcpTransportAdapter::shaped_send(ProcessId to, const MessagePtr& msg) {
  if (to != self_) {
    if (link_drop_[to] > 0.0 && shaping_rng_ != nullptr &&
        shaping_rng_->next_bool(link_drop_[to])) {
      return;  // shaped away — indistinguishable from a lossy wire
    }
    if (link_delay_[to] > Duration::zero() && shaping_sim_ != nullptr) {
      // Park the frame on the node's private simulator; the driver fires
      // it once the wall clock passes the delayed instant. The MessagePtr
      // copy keeps the payload alive until then.
      shaping_sim_->schedule_after(link_delay_[to], [this, to, msg] {
        if (!blocked(to)) endpoint_->send(to, *msg);
      });
      return;
    }
  }
  endpoint_->send(to, *msg);
}

void TcpTransportAdapter::set_observer(sim::NetworkObserver* observer, sim::Simulator* clock) {
  LUMIERE_ASSERT(observer == nullptr || clock != nullptr);
  observer_ = observer;
  observer_clock_ = clock;
}

void TcpTransportAdapter::deliver_decoded(ProcessId from, const MessagePtr& msg) {
  if (from < n_ && from != self_ && (blocked(from) || inbound_cut_[from])) return;
  if (deliver_) deliver_(from, msg);
}

void TcpTransportAdapter::set_partition_cut(ProcessId peer, bool cut) {
  LUMIERE_ASSERT(peer < n_);
  partition_cut_[peer] = cut;
}

void TcpTransportAdapter::set_inbound_cut(ProcessId peer, bool cut) {
  LUMIERE_ASSERT(peer < n_);
  inbound_cut_[peer] = cut;
}

void TcpTransportAdapter::clear_partition() {
  std::fill(partition_cut_.begin(), partition_cut_.end(), false);
  std::fill(inbound_cut_.begin(), inbound_cut_.end(), false);
}

void TcpTransportAdapter::set_peer_down(ProcessId peer, bool down) {
  LUMIERE_ASSERT(peer < n_);
  peer_down_[peer] = down;
}

void TcpTransportAdapter::set_self_down(bool down) { self_down_ = down; }

void TcpTransportAdapter::set_shaping(sim::Simulator* sim, std::uint64_t seed) {
  shaping_sim_ = sim;
  shaping_rng_ = std::make_unique<Rng>(seed);
}

void TcpTransportAdapter::set_link_drop(ProcessId peer, double probability) {
  LUMIERE_ASSERT(peer < n_);
  link_drop_[peer] = probability;
}

void TcpTransportAdapter::set_link_delay(ProcessId peer, Duration delay) {
  LUMIERE_ASSERT(peer < n_);
  link_delay_[peer] = delay;
}

void TcpTransportAdapter::set_isolated(bool isolated) { isolated_ = isolated; }

void TcpTransportAdapter::clear_shaping() {
  isolated_ = false;
  std::fill(link_drop_.begin(), link_drop_.end(), 0.0);
  std::fill(link_delay_.begin(), link_delay_.end(), Duration::zero());
}

RealtimeDriver::RealtimeDriver(sim::Simulator* sim, TcpEndpoint* endpoint)
    : sim_(sim), endpoint_(endpoint) {
  LUMIERE_ASSERT(sim != nullptr && endpoint != nullptr);
}

void RealtimeDriver::run_for(std::chrono::milliseconds wall) {
  using Clock = std::chrono::steady_clock;
  if (!anchored_) {
    // First run: the simulator's current instant corresponds to "now" on
    // the wall. Subsequent runs continue the same mapping so LocalClock
    // readings stay continuous across calls.
    sim_anchor_ = sim_->now();
    wall_anchor_ = Clock::now();
    anchored_ = true;
  }
  const auto wall_deadline = Clock::now() + wall;
  while (Clock::now() < wall_deadline) {
    const auto elapsed = std::chrono::duration_cast<std::chrono::microseconds>(
        Clock::now() - wall_anchor_);
    const TimePoint sim_target = sim_anchor_ + Duration(elapsed.count());
    // Fire everything whose simulated instant the wall clock has passed.
    sim_->run_until(sim_target);
    // Pump the socket until the next simulator event is due (capped at
    // 1ms so new inbound frames keep latency low and the wall deadline
    // stays honored).
    int timeout_ms = 1;
    if (!sim_->idle()) {
      const Duration until_next = sim_->next_event_time() - sim_target;
      timeout_ms = static_cast<int>(
          std::clamp<std::int64_t>(until_next.ticks() / 1000, 0, 1));
    }
    endpoint_->poll_once(timeout_ms);
    if (pump_) pump_();
  }
}

}  // namespace lumiere::transport
