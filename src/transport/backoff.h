// ReconnectBackoff — the pure policy behind TcpEndpoint's peer reconnect
// gating.
//
// A restarted peer's port stays dead for an unknown stretch; hammering
// connect() on every send burns syscalls and (on a real network) traffic.
// The endpoint instead spaces attempts exponentially: after the k-th
// consecutive failure the next attempt waits
//
//   min(base * 2^(k-1), cap) + jitter,   jitter uniform in [0, d/4)
//
// where d is the pre-jitter delay. Jitter draws come from the library's
// deterministic Rng, so two endpoints seeded identically produce the same
// delay sequence — unit-testable without a clock (tests/transport).
// The policy is plain data + arithmetic; the endpoint owns the deadline
// bookkeeping (steady_clock) and calls on_failure()/on_success().
#pragma once

#include <algorithm>
#include <cstdint>

#include "common/rng.h"
#include "common/time.h"

namespace lumiere::transport {

struct BackoffPolicy {
  /// Delay after the first failure. Zero disables backoff entirely (every
  /// send retries connect() — the pre-soak behavior).
  Duration base = Duration::millis(2);
  /// Upper bound on the pre-jitter delay, however many failures accrue.
  Duration cap = Duration::millis(200);
};

class ReconnectBackoff {
 public:
  ReconnectBackoff() : ReconnectBackoff(BackoffPolicy{}, 0) {}
  ReconnectBackoff(BackoffPolicy policy, std::uint64_t jitter_seed)
      : policy_(policy), rng_(jitter_seed) {}

  /// Records one failed connect attempt and returns how long to wait
  /// before the next one.
  [[nodiscard]] Duration on_failure() {
    ++failures_;
    if (policy_.base <= Duration::zero()) return Duration::zero();
    // Doubling with a shift, saturated well below overflow: past the cap
    // every delay is the cap, so the exponent never needs to exceed ~40.
    const std::uint32_t exponent = std::min<std::uint64_t>(failures_ - 1, 40);
    const std::int64_t raw = policy_.base.ticks() << exponent;
    const std::int64_t capped =
        std::min<std::int64_t>(raw > 0 ? raw : policy_.cap.ticks(), policy_.cap.ticks());
    const std::int64_t jitter_bound = capped / 4;
    const std::int64_t jitter =
        jitter_bound > 0
            ? static_cast<std::int64_t>(rng_.next_below(static_cast<std::uint64_t>(jitter_bound)))
            : 0;
    return Duration(capped + jitter);
  }

  /// A connect succeeded: the next failure starts the schedule over.
  void on_success() { failures_ = 0; }

  [[nodiscard]] std::uint64_t failures() const noexcept { return failures_; }
  [[nodiscard]] const BackoffPolicy& policy() const noexcept { return policy_; }

 private:
  BackoffPolicy policy_;
  Rng rng_;
  std::uint64_t failures_ = 0;
};

}  // namespace lumiere::transport
