// Running the full protocol stack over real sockets in real time.
//
// The deterministic simulator is the primary harness — it is the only way
// to control the partial-synchrony adversary. But a pacemaker that only
// ever ran under a simulated clock would leave the paper's "Practical"
// claim untested. This module closes the loop:
//
//   * TcpTransportAdapter — a MessageTransport whose sends travel as
//     length-prefixed frames over localhost TCP (transport/tcp_transport);
//   * RealtimeDriver — paces a node's private Simulator against the wall
//     clock (1 simulated microsecond = 1 real microsecond) while pumping
//     the socket, so LocalClock alarms, pacemaker timers and the Delta
//     bound all refer to real time.
//
// One thread per node; the PKI is shared read-only. See
// examples/tcp_lumiere.cpp and tests/transport/realtime_test.cpp.
#pragma once

#include <chrono>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "sim/network.h"
#include "sim/simulator.h"
#include "sim/transport_iface.h"
#include "transport/tcp_transport.h"

namespace lumiere::transport {

/// Adapts one process's TcpEndpoint to the MessageTransport seam a Node
/// expects. Hosts exactly one processor (`self`); `send` must originate
/// from it.
class TcpTransportAdapter final : public MessageTransport {
 public:
  TcpTransportAdapter(ProcessId self, std::uint32_t n, std::uint16_t base_port,
                      MessageCodec codec);

  void register_endpoint(ProcessId id, DeliverFn fn) override;
  void send(ProcessId from, ProcessId to, MessagePtr msg) override;
  void broadcast(ProcessId from, const MessagePtr& msg) override;

  /// Wires send/broadcast accounting into `observer`, timestamped from
  /// `clock` (the node's private simulator, so charges carry the node's
  /// own sim instant). The observer must be thread-safe — every node's
  /// driver thread charges the same collector concurrently.
  void set_observer(sim::NetworkObserver* observer, sim::Simulator* clock);

  /// Delivers an already-decoded message through the same inbound gate as
  /// the socket path (partition/down filters). The verification pipeline's
  /// drain step calls this from the node's driver thread.
  void deliver_decoded(ProcessId from, const MessagePtr& msg);

  // Best-effort fault-schedule analogue (runtime/cluster.cpp schedules
  // these on the node's private simulator, so all calls happen on the
  // node's own driver thread). Unlike the sim network, cut frames are
  // LOST, not parked — a real network drops partitioned traffic.
  /// Cuts (or restores) the link to `peer` for an active partition.
  void set_partition_cut(ProcessId peer, bool cut);
  /// Drops (or accepts) inbound frames from `peer` only — the receiving
  /// half of an asymmetric one-way cut (this node's sends still flow).
  void set_inbound_cut(ProcessId peer, bool cut);
  /// Restores every link cut by set_partition_cut / set_inbound_cut
  /// (heal).
  void clear_partition();
  /// Marks a remote peer down (its frames are dropped both ways).
  void set_peer_down(ProcessId peer, bool down);
  /// Takes this node itself down (every frame dropped) / back up.
  void set_self_down(bool down);

  // Runtime traffic shaping — the TCP analogue of the sim adversary's
  // per-link delays, driven by admin commands (obs/admin.h). All calls
  // happen on the node's own driver thread, like the fault methods above.
  /// Enables shaping: `sim` (the node's private simulator) schedules
  /// delayed sends; `seed` feeds the drop-decision RNG.
  void set_shaping(sim::Simulator* sim, std::uint64_t seed);
  /// Drops outbound frames to `peer` with the given probability.
  void set_link_drop(ProcessId peer, double probability);
  /// Delays outbound frames to `peer` by `delay` (zero = undelayed).
  void set_link_delay(ProcessId peer, Duration delay);
  /// Cuts this node off from every peer, both directions, while its own
  /// protocol loop (and self-delivery) keeps running — unlike
  /// set_self_down, an isolated node still times out, syncs and serves
  /// its status endpoint meaningfully.
  void set_isolated(bool isolated);
  /// Clears isolation and every per-link drop/delay (admin HEAL; the
  /// caller typically also clear_partition()s).
  void clear_shaping();

  [[nodiscard]] TcpEndpoint& endpoint() noexcept { return *endpoint_; }

 private:
  [[nodiscard]] bool blocked(ProcessId peer) const {
    return self_down_ || isolated_ || partition_cut_[peer] || peer_down_[peer];
  }
  /// Applies drop/delay shaping and forwards to the endpoint. Returns
  /// immediately when the frame is shaped away.
  void shaped_send(ProcessId to, const MessagePtr& msg);

  ProcessId self_;
  std::uint32_t n_;
  DeliverFn deliver_;
  sim::NetworkObserver* observer_ = nullptr;
  sim::Simulator* observer_clock_ = nullptr;
  std::vector<bool> partition_cut_;
  std::vector<bool> inbound_cut_;
  std::vector<bool> peer_down_;
  bool self_down_ = false;
  bool isolated_ = false;
  sim::Simulator* shaping_sim_ = nullptr;
  std::unique_ptr<Rng> shaping_rng_;
  std::vector<double> link_drop_;
  std::vector<Duration> link_delay_;
  std::unique_ptr<TcpEndpoint> endpoint_;
};

/// Paces a Simulator against the wall clock while pumping a TcpEndpoint.
class RealtimeDriver {
 public:
  RealtimeDriver(sim::Simulator* sim, TcpEndpoint* endpoint);

  /// Runs for `wall` of real time: simulator events fire when the wall
  /// clock reaches their simulated instant; inbound frames dispatch as
  /// they arrive.
  void run_for(std::chrono::milliseconds wall);

  /// Installs a hook invoked once per pacing iteration, after the socket
  /// pump — the verification pipeline drains its egress queue here, on
  /// this driver's thread.
  void set_pump(std::function<void()> pump) { pump_ = std::move(pump); }

 private:
  sim::Simulator* sim_;
  TcpEndpoint* endpoint_;
  std::function<void()> pump_;
  TimePoint sim_anchor_;  ///< sim time corresponding to wall_anchor_
  std::chrono::steady_clock::time_point wall_anchor_;
  bool anchored_ = false;
};

}  // namespace lumiere::transport
