#include "transport/tcp_transport.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

#include "common/assert.h"

namespace lumiere::transport {

namespace {

/// Largest frame payload a peer may announce. Protocol messages are
/// O(kappa) plus block payloads; 1 MiB leaves generous headroom while
/// bounding what one hostile connection can make us buffer.
constexpr std::uint32_t kMaxFrameBytes = 1u << 20;

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  (void)::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

void append_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

std::uint32_t read_u32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) | (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) | (static_cast<std::uint32_t>(p[3]) << 24);
}

}  // namespace

TcpEndpoint::TcpEndpoint(ProcessId self, std::uint32_t n, std::uint16_t base_port,
                         MessageCodec codec, ReceiveFn on_receive)
    : self_(self),
      n_(n),
      base_port_(base_port),
      codec_(std::move(codec)),
      on_receive_(std::move(on_receive)) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) throw std::runtime_error("socket() failed");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(base_port_ + self_));
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(listen_fd_);
    throw std::runtime_error("bind() failed (port in use?)");
  }
  // Backlog beyond n: reconnecting peers and (on a real network) strangers
  // may queue faster than one poll cycle accepts them.
  if (::listen(listen_fd_, static_cast<int>(n_) + 16) != 0) {
    ::close(listen_fd_);
    throw std::runtime_error("listen() failed");
  }
  set_nonblocking(listen_fd_);
}

TcpEndpoint::~TcpEndpoint() {
  if (listen_fd_ >= 0) ::close(listen_fd_);
  for (auto& [peer, conn] : outgoing_) {
    if (conn.fd >= 0) ::close(conn.fd);
  }
  for (auto& conn : incoming_) {
    if (conn.fd >= 0) ::close(conn.fd);
  }
}

void TcpEndpoint::set_reconnect_backoff(BackoffPolicy policy, std::uint64_t jitter_seed) {
  backoff_policy_ = policy;
  backoff_seed_ = jitter_seed;
  reconnect_.clear();  // existing per-peer schedules restart under the new policy
}

std::uint64_t TcpEndpoint::connect_failures(ProcessId to) const {
  const auto it = reconnect_.find(to);
  return it == reconnect_.end() ? 0 : it->second.backoff.failures();
}

TcpEndpoint::Conn* TcpEndpoint::connection_to(ProcessId to) {
  auto it = outgoing_.find(to);
  if (it != outgoing_.end() && it->second.fd >= 0) return &it->second;

  // Reconnect gate: a peer that refused recently is not retried until its
  // backoff delay elapses — a dead process's port would fail every send,
  // and a restarting one needs breathing room to rebind.
  auto state_it = reconnect_.find(to);
  if (state_it == reconnect_.end()) {
    state_it = reconnect_
                   .emplace(to, ReconnectState{ReconnectBackoff(backoff_policy_,
                                                                backoff_seed_ ^ to),
                                               std::chrono::steady_clock::time_point::min()})
                   .first;
  }
  ReconnectState& state = state_it->second;
  if (std::chrono::steady_clock::now() < state.next_attempt) return nullptr;

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return nullptr;
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(base_port_ + to));
  // Blocking connect keeps the demo simple; peers are local, so a dead
  // port answers ECONNREFUSED immediately rather than hanging.
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    const Duration delay = state.backoff.on_failure();
    state.next_attempt =
        std::chrono::steady_clock::now() + std::chrono::microseconds(delay.ticks());
    return nullptr;
  }
  state.backoff.on_success();
  state.next_attempt = std::chrono::steady_clock::time_point::min();
  set_nonblocking(fd);
  Conn conn;
  conn.fd = fd;
  conn.peer = to;
  return &(outgoing_[to] = std::move(conn));
}

std::vector<std::uint8_t> TcpEndpoint::acquire_buffer() {
  if (buffer_pool_.empty()) return {};
  std::vector<std::uint8_t> buffer = std::move(buffer_pool_.back());
  buffer_pool_.pop_back();
  return buffer;
}

void TcpEndpoint::release_buffer(std::vector<std::uint8_t> buffer) {
  if (buffer_pool_.size() < 8) buffer_pool_.push_back(std::move(buffer));
}

void TcpEndpoint::enqueue_frame(Conn& conn, std::span<const std::uint8_t> payload) {
  append_u32(conn.outbox, static_cast<std::uint32_t>(payload.size()));
  append_u32(conn.outbox, self_);
  conn.outbox.insert(conn.outbox.end(), payload.begin(), payload.end());
  ++frames_sent_;
}

void TcpEndpoint::dispatch_self(std::span<const std::uint8_t> payload) {
  // Self-delivery mirrors the simulator's convention: immediate.
  const MessagePtr decoded = codec_.decode(payload);
  if (decoded != nullptr) {
    ++frames_sent_;
    ++frames_received_;
    on_receive_(self_, decoded);
  }
}

void TcpEndpoint::send(ProcessId to, const Message& msg) {
  Conn* conn = nullptr;
  if (to != self_) {
    conn = connection_to(to);
    if (conn == nullptr) return;  // peer unreachable — drop before paying the encode
  }
  std::vector<std::uint8_t> payload = acquire_buffer();
  MessageCodec::encode_into(msg, payload);
  if (to == self_) {
    dispatch_self(payload);
  } else {
    enqueue_frame(*conn, payload);
    flush(*conn);
  }
  release_buffer(std::move(payload));
}

void TcpEndpoint::broadcast(const Message& msg) {
  // One encode for the whole fan-out; every peer's frame shares the
  // payload bytes (the per-peer header is 8 bytes into each outbox).
  std::vector<std::uint8_t> payload = acquire_buffer();
  MessageCodec::encode_into(msg, payload);
  for (ProcessId to = 0; to < n_; ++to) {
    if (to == self_) {
      // dispatch_self may reenter send()/broadcast(); those acquire
      // their own scratch buffers, so `payload` stays intact.
      dispatch_self(payload);
    } else if (Conn* conn = connection_to(to); conn != nullptr) {
      enqueue_frame(*conn, payload);
      flush(*conn);
    }
  }
  release_buffer(std::move(payload));
}

void TcpEndpoint::flush(Conn& conn) {
  while (!conn.outbox.empty()) {
    const ssize_t sent = ::send(conn.fd, conn.outbox.data(), conn.outbox.size(), MSG_NOSIGNAL);
    if (sent <= 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      close_conn(conn);
      return;
    }
    conn.outbox.erase(conn.outbox.begin(), conn.outbox.begin() + sent);
  }
}

void TcpEndpoint::close_conn(Conn& conn) {
  if (conn.fd >= 0) ::close(conn.fd);
  conn.fd = -1;
  conn.inbox.clear();
  conn.outbox.clear();
}

void TcpEndpoint::accept_pending() {
  while (true) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) return;
    set_nonblocking(fd);
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    Conn conn;
    conn.fd = fd;
    incoming_.push_back(std::move(conn));
  }
}

void TcpEndpoint::read_and_dispatch(Conn& conn) {
  std::uint8_t buf[4096];
  while (true) {
    const ssize_t got = ::recv(conn.fd, buf, sizeof(buf), 0);
    if (got == 0) {
      close_conn(conn);
      return;
    }
    if (got < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      close_conn(conn);
      return;
    }
    conn.inbox.insert(conn.inbox.end(), buf, buf + got);
  }
  // Dispatch complete frames.
  std::size_t offset = 0;
  while (conn.inbox.size() - offset >= 8) {
    const std::uint32_t len = read_u32(conn.inbox.data() + offset);
    // No protocol message approaches this size; a larger announced frame
    // is an attack (or corruption) and would otherwise make us buffer
    // unboundedly toward it. Drop the connection instead.
    if (len > kMaxFrameBytes) {
      close_conn(conn);
      return;
    }
    if (conn.inbox.size() - offset - 8 < len) break;
    const ProcessId from = read_u32(conn.inbox.data() + offset + 4);
    const std::span<const std::uint8_t> payload(conn.inbox.data() + offset + 8, len);
    offset += 8 + len;
    if (from >= n_) continue;
    conn.peer = from;
    if (raw_sink_ && raw_sink_(from, payload)) {
      ++frames_received_;
      continue;
    }
    const MessagePtr msg = codec_.decode(payload);
    if (msg != nullptr) {
      ++frames_received_;
      on_receive_(from, msg);
    }
  }
  if (offset > 0) {
    conn.inbox.erase(conn.inbox.begin(),
                     conn.inbox.begin() + static_cast<std::ptrdiff_t>(offset));
  }
}

std::size_t TcpEndpoint::poll_once(int timeout_ms) {
  accept_pending();

  std::vector<pollfd> fds;
  std::vector<Conn*> conns;
  fds.push_back(pollfd{listen_fd_, POLLIN, 0});
  conns.push_back(nullptr);
  for (auto& [peer, conn] : outgoing_) {
    if (conn.fd < 0) continue;
    short events = POLLIN;
    if (!conn.outbox.empty()) events |= POLLOUT;
    fds.push_back(pollfd{conn.fd, events, 0});
    conns.push_back(&conn);
  }
  for (auto& conn : incoming_) {
    if (conn.fd < 0) continue;
    fds.push_back(pollfd{conn.fd, POLLIN, 0});
    conns.push_back(&conn);
  }

  const std::uint64_t before = frames_received_;
  if (::poll(fds.data(), fds.size(), timeout_ms) <= 0) return 0;

  if ((fds[0].revents & POLLIN) != 0) accept_pending();
  for (std::size_t i = 1; i < fds.size(); ++i) {
    if (conns[i] == nullptr || conns[i]->fd < 0) continue;
    if ((fds[i].revents & POLLOUT) != 0) flush(*conns[i]);
    if ((fds[i].revents & (POLLIN | POLLHUP)) != 0) read_and_dispatch(*conns[i]);
  }
  return frames_received_ - before;
}

}  // namespace lumiere::transport
