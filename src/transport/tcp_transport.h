// A minimal real-network transport: length-prefixed frames over localhost
// TCP, single-threaded, poll(2)-driven.
//
// The protocol stack in this repository is transport-agnostic — nodes
// talk through std::function send/broadcast closures. The deterministic
// simulator is the primary harness (it is the only way to control the
// partial-synchrony adversary); this transport exists to demonstrate the
// same message types flowing over real sockets (examples/tcp_cluster) and
// to keep the serialization layer honest end-to-end.
//
// Frame format: [u32 payload_len][u32 sender_id][payload bytes], where
// payload = MessageCodec::encode(msg) = [u32 type_id][body].
#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <span>
#include <vector>

#include "common/types.h"
#include "ser/message.h"
#include "transport/backoff.h"

namespace lumiere::transport {

/// One process's socket endpoint within a statically known cluster of n
/// peers on 127.0.0.1 ports [base_port, base_port + n).
class TcpEndpoint {
 public:
  using ReceiveFn = std::function<void(ProcessId from, const MessagePtr& msg)>;
  /// Raw-frame intercept for the staged verification pipeline
  /// (runtime/pipeline.h): gets each complete inbound frame payload
  /// before decode. Return true to consume it (the pipeline decodes and
  /// delivers later); false to fall back to the inline decode+dispatch
  /// path (e.g. the pipeline is stopped).
  using RawSinkFn = std::function<bool(ProcessId from, std::span<const std::uint8_t> payload)>;

  /// Binds and listens on base_port + self. Throws std::runtime_error on
  /// socket failures (configuration errors, not protocol conditions).
  TcpEndpoint(ProcessId self, std::uint32_t n, std::uint16_t base_port, MessageCodec codec,
              ReceiveFn on_receive);
  ~TcpEndpoint();

  TcpEndpoint(const TcpEndpoint&) = delete;
  TcpEndpoint& operator=(const TcpEndpoint&) = delete;

  /// Queues a message to `to`; connects lazily on first use. Send to self
  /// dispatches synchronously.
  void send(ProcessId to, const Message& msg);
  void broadcast(const Message& msg);

  /// Pumps the socket set once: accepts, flushes queued writes, reads and
  /// dispatches complete frames. Returns the number of frames dispatched.
  std::size_t poll_once(int timeout_ms);

  /// Installs (or clears, with nullptr) the raw-frame intercept. Frames a
  /// processor sends to itself bypass it — self-delivery needs no
  /// signature pre-verification and stays immediate.
  void set_raw_sink(RawSinkFn sink) { raw_sink_ = std::move(sink); }

  /// Replaces the per-peer reconnect backoff policy (transport/backoff.h).
  /// Jitter streams derive from `jitter_seed ^ peer`, so two endpoints
  /// seeded identically draw identical delay sequences. A zero-base
  /// policy disables the gating (every send retries connect()).
  void set_reconnect_backoff(BackoffPolicy policy, std::uint64_t jitter_seed);

  /// Consecutive failed connect attempts toward `to` since the last
  /// success (diagnostics / tests).
  [[nodiscard]] std::uint64_t connect_failures(ProcessId to) const;

  [[nodiscard]] ProcessId self() const noexcept { return self_; }
  [[nodiscard]] std::uint64_t frames_sent() const noexcept { return frames_sent_; }
  [[nodiscard]] std::uint64_t frames_received() const noexcept { return frames_received_; }

 private:
  struct Conn {
    int fd = -1;
    std::vector<std::uint8_t> inbox;   // partial frame reassembly
    std::vector<std::uint8_t> outbox;  // unflushed bytes
    ProcessId peer = kNoProcess;       // known after hello / connect
  };

  /// Per-peer reconnect gate: while the wall clock sits before
  /// `next_attempt`, sends to that peer drop without a connect() try.
  struct ReconnectState {
    ReconnectBackoff backoff;
    std::chrono::steady_clock::time_point next_attempt =
        std::chrono::steady_clock::time_point::min();
  };

  void accept_pending();
  [[nodiscard]] Conn* connection_to(ProcessId to);
  void flush(Conn& conn);
  void read_and_dispatch(Conn& conn);
  void close_conn(Conn& conn);
  void enqueue_frame(Conn& conn, std::span<const std::uint8_t> payload);
  /// Decodes `payload` and dispatches it as a frame from this endpoint
  /// to itself (the simulator's immediate self-delivery convention).
  void dispatch_self(std::span<const std::uint8_t> payload);
  /// Scratch-buffer pool for encoded payloads. Reentrancy-safe (an
  /// on_receive_ handler may send again mid-broadcast) and
  /// allocation-free once warm.
  [[nodiscard]] std::vector<std::uint8_t> acquire_buffer();
  void release_buffer(std::vector<std::uint8_t> buffer);

  ProcessId self_;
  std::uint32_t n_;
  std::uint16_t base_port_;
  MessageCodec codec_;
  ReceiveFn on_receive_;
  RawSinkFn raw_sink_;
  int listen_fd_ = -1;
  BackoffPolicy backoff_policy_;
  std::uint64_t backoff_seed_ = 0;
  std::map<ProcessId, Conn> outgoing_;  // keyed by destination
  std::map<ProcessId, ReconnectState> reconnect_;
  // deque, not vector: poll_once holds Conn* across an accept_pending()
  // push_back, which must not invalidate references to existing elements.
  std::deque<Conn> incoming_;           // accepted connections
  std::vector<std::vector<std::uint8_t>> buffer_pool_;
  std::uint64_t frames_sent_ = 0;
  std::uint64_t frames_received_ = 0;
};

}  // namespace lumiere::transport
