// Block sync: fetch-on-miss state transfer for the commit walk.
//
// Two wedge states motivate this subsystem (ROADMAP "Block sync for
// rejoining and equivocation-victim replicas"):
//
//   * EQUIVOCATION VICTIM: an honest replica stored the losing variant of
//     an equivocated block; when the certified winner's descendants
//     commit, the walk hits a parent hash the replica never stored and no
//     peer will ever re-send — a permanent stall.
//   * REJOINER: a killed-and-restarted process lost its whole store;
//     peers only stream new proposals, so its pre-crash history is
//     unreachable (checkpoint adoption commits a suffix, never backfills).
//
// The core's commit walk reports the missing hash (CoreCallbacks::
// fetch_missing); the synchronizer asks one peer at a time for the block
// plus up to kMaxBlocksPerResponse - 1 of its ancestors, rotating to the
// next peer on a retry timer until the block arrives (at most f peers can
// stay silent or lie, so rotation terminates post-GST). Verification is
// purely structural, leaning on content addressing: in a response, the
// first block must hash to the requested digest and each further block
// must hash to its predecessor's parent. The requested digest itself came
// out of a chain under a committing QC, so every block that passes the
// link check is exactly the committed chain's content — no signature
// checks needed, and a forged or unlinked response is rejected by
// construction.
//
// Single-threaded like every protocol engine here: driven entirely by
// on_missing()/on_message() calls and the injected scheduler, so sim runs
// stay deterministic.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>

#include "common/time.h"
#include "common/types.h"
#include "consensus/block.h"
#include "sync/messages.h"

namespace lumiere::sync {

/// How the synchronizer reaches the outside world. Provided by the
/// runtime Node; plain std::function so tests can drive one directly.
struct SyncCallbacks {
  std::function<void(ProcessId to, MessagePtr msg)> send;
  /// Runs `fn` after `delay` (simulated or real time) — the retry timer.
  /// May be null: then a lost fetch is only re-issued when the commit
  /// walk re-reports the miss.
  std::function<void(Duration delay, std::function<void()> fn)> schedule;
  /// Serve a fetch from the local store (nullptr = unknown block).
  std::function<std::shared_ptr<const consensus::Block>(const crypto::Digest&)> lookup;
  /// A fetched block passed the link check — hand it to the core (store
  /// insert + resume the stalled commit walk).
  std::function<void(const consensus::Block&)> accept;
};

class BlockSynchronizer {
 public:
  BlockSynchronizer(ProcessId self, std::uint32_t n, Duration retry_interval,
                    SyncCallbacks callbacks);

  /// The commit walk hit a locally missing ancestor: fetch `hash` from a
  /// peer. Idempotent while the request is outstanding.
  void on_missing(const crypto::Digest& hash);

  /// Inbound sync traffic (BlockFetchMsg served, BlockRespMsg verified).
  void on_message(ProcessId from, const MessagePtr& msg);

  /// Fetch requests this node sent (including per-peer retries).
  [[nodiscard]] std::uint64_t fetches_sent() const noexcept { return fetches_sent_; }
  /// Fetch requests this node answered with a non-empty chain.
  [[nodiscard]] std::uint64_t fetches_served() const noexcept { return fetches_served_; }
  /// Blocks that passed the link check and were handed to the core.
  [[nodiscard]] std::uint64_t blocks_accepted() const noexcept { return blocks_accepted_; }
  /// Responses dropped: unsolicited, empty, or failing the link check at
  /// the requested block itself.
  [[nodiscard]] std::uint64_t responses_rejected() const noexcept {
    return responses_rejected_;
  }
  /// Requests currently outstanding.
  [[nodiscard]] std::size_t pending() const noexcept { return pending_.size(); }

 private:
  void handle_fetch(ProcessId from, const BlockFetchMsg& msg);
  void handle_response(ProcessId from, const BlockRespMsg& msg);
  void send_fetch(const crypto::Digest& hash, std::uint64_t attempt);
  [[nodiscard]] ProcessId next_peer();

  ProcessId self_;
  std::uint32_t n_;
  Duration retry_interval_;
  SyncCallbacks cb_;

  /// Outstanding requests: hash -> attempt counter. The counter makes
  /// stale retry timers harmless — a timer re-sends only when it still
  /// matches the entry it armed for.
  std::map<crypto::Digest, std::uint64_t> pending_;
  ProcessId rotor_ = 0;

  std::uint64_t fetches_sent_ = 0;
  std::uint64_t fetches_served_ = 0;
  std::uint64_t blocks_accepted_ = 0;
  std::uint64_t responses_rejected_ = 0;
};

}  // namespace lumiere::sync
