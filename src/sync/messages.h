// Wire messages of the block-sync/state-transfer subsystem (0x5000
// range).
//
// A replica whose commit walk hits a missing ancestor that will never
// arrive on its own — an equivocation victim holding the losing variant,
// or a restarted process wanting its pre-crash history — asks a peer for
// the block by hash (BlockFetchMsg) and gets back a parent-linked chain
// segment (BlockRespMsg). Neither message carries signatures: blocks are
// content-addressed (Block::deserialize recomputes the hash), so the
// requester verifies a response purely structurally — the first block
// must hash to the requested digest and each further block must hash to
// its predecessor's parent. A forged or unlinked response fails that
// check by construction; see sync/block_sync.h.
#pragma once

#include <memory>
#include <utility>
#include <vector>

#include "consensus/block.h"
#include "ser/message.h"

namespace lumiere::sync {

/// Message type tags (0x5000 range — see Message::type_id()).
enum MsgType : std::uint32_t {
  kBlockFetch = 0x5001,
  kBlockResp = 0x5002,
};

/// "Send me the block with this hash (and up to max_blocks - 1 of its
/// ancestors, deepest last)."
class BlockFetchMsg final : public Message {
 public:
  BlockFetchMsg(crypto::Digest hash, std::uint32_t max_blocks)
      : hash_(hash), max_blocks_(max_blocks) {}

  [[nodiscard]] const crypto::Digest& hash() const noexcept { return hash_; }
  [[nodiscard]] std::uint32_t max_blocks() const noexcept { return max_blocks_; }

  std::uint32_t type_id() const override { return kBlockFetch; }
  const char* type_name() const override { return "block-fetch"; }
  MsgClass msg_class() const override { return MsgClass::kSync; }
  std::size_t wire_size() const override { return crypto::Digest::kSize + 4; }
  void serialize(ser::Writer& w) const override {
    w.digest(hash_);
    w.u32(max_blocks_);
  }
  static MessagePtr deserialize(ser::Reader& r) {
    crypto::Digest hash;
    std::uint32_t max_blocks = 0;
    if (!r.digest(hash) || !r.u32(max_blocks)) return nullptr;
    return std::make_shared<BlockFetchMsg>(hash, max_blocks);
  }

 private:
  crypto::Digest hash_;
  std::uint32_t max_blocks_ = 0;
};

/// A chain segment answering a fetch: blocks[0] is the requested block,
/// blocks[i+1] its parent, and so on toward genesis. May be empty when
/// the responder does not hold the requested block.
class BlockRespMsg final : public Message {
 public:
  BlockRespMsg(crypto::Digest requested, std::vector<consensus::Block> blocks)
      : requested_(requested), blocks_(std::move(blocks)) {}

  [[nodiscard]] const crypto::Digest& requested() const noexcept { return requested_; }
  [[nodiscard]] const std::vector<consensus::Block>& blocks() const noexcept { return blocks_; }

  std::uint32_t type_id() const override { return kBlockResp; }
  const char* type_name() const override { return "block-resp"; }
  MsgClass msg_class() const override { return MsgClass::kSync; }
  std::size_t wire_size() const override {
    // Requested digest + per-block the same O(kappa) model as ProposalMsg:
    // parent digest + view + payload + justify QC envelope.
    std::size_t size = crypto::Digest::kSize;
    for (const consensus::Block& block : blocks_) {
      size += crypto::Digest::kSize + 8 + block.payload().size() +
              block.justify().sig().wire_size();
    }
    return size;
  }
  void serialize(ser::Writer& w) const override {
    w.digest(requested_);
    w.u32(static_cast<std::uint32_t>(blocks_.size()));
    for (const consensus::Block& block : blocks_) block.serialize(w);
  }
  void collect_auth(AuthClaimSink& sink) const override {
    for (const consensus::Block& block : blocks_) {
      if (!block.justify().is_genesis()) sink.aggregate(block.justify().sig());
    }
  }
  static MessagePtr deserialize(ser::Reader& r) {
    crypto::Digest requested;
    std::uint32_t count = 0;
    if (!r.digest(requested) || !r.u32(count)) return nullptr;
    // A count bound keeps a malformed frame from forcing a giant
    // allocation before the per-block deserialization fails anyway.
    if (count > kMaxBlocksPerResponse) return nullptr;
    std::vector<consensus::Block> blocks;
    blocks.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i) {
      auto block = consensus::Block::deserialize(r);
      if (!block) return nullptr;
      blocks.push_back(std::move(*block));
    }
    return std::make_shared<BlockRespMsg>(requested, std::move(blocks));
  }

  /// Upper bound on blocks per response, enforced on both sides.
  static constexpr std::uint32_t kMaxBlocksPerResponse = 64;

 private:
  crypto::Digest requested_;
  std::vector<consensus::Block> blocks_;
};

/// Registers all block-sync message types with a codec (for the TCP
/// transport).
inline void register_sync_messages(MessageCodec& codec) {
  codec.register_type(kBlockFetch, &BlockFetchMsg::deserialize);
  codec.register_type(kBlockResp, &BlockRespMsg::deserialize);
}

}  // namespace lumiere::sync
