#include "sync/block_sync.h"

#include <utility>
#include <vector>

#include "common/assert.h"
#include "common/log.h"

namespace lumiere::sync {

BlockSynchronizer::BlockSynchronizer(ProcessId self, std::uint32_t n, Duration retry_interval,
                                     SyncCallbacks callbacks)
    : self_(self), n_(n), retry_interval_(retry_interval), cb_(std::move(callbacks)) {
  LUMIERE_ASSERT(n_ >= 2);
  rotor_ = (self_ + 1) % n_;
}

ProcessId BlockSynchronizer::next_peer() {
  const ProcessId peer = rotor_;
  rotor_ = (rotor_ + 1) % n_;
  if (rotor_ == self_) rotor_ = (rotor_ + 1) % n_;
  return peer;
}

void BlockSynchronizer::on_missing(const crypto::Digest& hash) {
  if (pending_.contains(hash)) return;  // already in flight
  pending_[hash] = 0;
  send_fetch(hash, 0);
}

void BlockSynchronizer::send_fetch(const crypto::Digest& hash, std::uint64_t attempt) {
  const auto it = pending_.find(hash);
  if (it == pending_.end() || it->second != attempt) return;  // resolved or superseded
  ++fetches_sent_;
  cb_.send(next_peer(),
           std::make_shared<BlockFetchMsg>(hash, BlockRespMsg::kMaxBlocksPerResponse));
  if (cb_.schedule == nullptr) return;
  // Rotate to the next peer if nothing acceptable arrives in time: the
  // chosen peer may be down, partitioned, Byzantine-silent, or itself
  // missing the block.
  it->second = attempt + 1;
  cb_.schedule(retry_interval_, [this, hash, next = attempt + 1] { send_fetch(hash, next); });
}

void BlockSynchronizer::handle_fetch(ProcessId from, const BlockFetchMsg& msg) {
  if (from == self_ || cb_.lookup == nullptr) return;
  const std::uint32_t limit =
      std::min(msg.max_blocks(), BlockRespMsg::kMaxBlocksPerResponse);
  std::vector<consensus::Block> blocks;
  auto current = cb_.lookup(msg.hash());
  while (current != nullptr && blocks.size() < limit &&
         current->view() > consensus::Block::genesis().view()) {
    blocks.push_back(*current);
    current = cb_.lookup(current->parent());
  }
  // Nothing useful to say (we don't hold the block either): stay silent
  // and let the requester's retry rotate onward.
  if (blocks.empty()) return;
  ++fetches_served_;
  cb_.send(from, std::make_shared<BlockRespMsg>(msg.hash(), std::move(blocks)));
}

void BlockSynchronizer::handle_response(ProcessId from, const BlockRespMsg& msg) {
  (void)from;  // any peer may answer; the content check is the authority
  const auto it = pending_.find(msg.requested());
  if (it == pending_.end() || msg.blocks().empty()) {
    ++responses_rejected_;  // unsolicited, duplicate, or empty
    return;
  }
  // Structural verification (content addressing does the heavy lifting):
  // blocks[0] must BE the requested block, and each further block must BE
  // the previous one's parent. Block::deserialize recomputed every hash,
  // so a forged body cannot claim a hash it doesn't have.
  if (msg.blocks().front().hash() != msg.requested()) {
    ++responses_rejected_;
    return;
  }
  std::size_t linked = 1;
  while (linked < msg.blocks().size() &&
         msg.blocks()[linked].hash() == msg.blocks()[linked - 1].parent()) {
    ++linked;
  }
  pending_.erase(it);
  LOG_TRACE("p" << self_ << " block-sync accepted " << linked << " block(s) for "
                << msg.requested().hex().substr(0, 8));
  // Deepest first, so by the time the requested block lands the store
  // already holds the segment beneath it and the resumed commit walk
  // crosses it in one go (accept() may re-enter on_missing for the next
  // gap below the segment).
  for (std::size_t i = linked; i-- > 0;) {
    ++blocks_accepted_;
    cb_.accept(msg.blocks()[i]);
  }
}

void BlockSynchronizer::on_message(ProcessId from, const MessagePtr& msg) {
  switch (msg->type_id()) {
    case kBlockFetch:
      handle_fetch(from, static_cast<const BlockFetchMsg&>(*msg));
      break;
    case kBlockResp:
      handle_response(from, static_cast<const BlockRespMsg&>(*msg));
      break;
    default:
      break;
  }
}

}  // namespace lumiere::sync
