#include "workload/request.h"

#include "common/rng.h"
#include "ser/serializer.h"

namespace lumiere::workload {

std::vector<std::uint8_t> Request::encode(std::uint32_t client, std::uint64_t seq,
                                          std::span<const std::uint8_t> body) {
  ser::Writer w(kRequestHeaderBytes + body.size());
  w.u8(kRequestMagic);
  w.u32(client);
  w.u64(seq);
  for (const std::uint8_t b : body) w.u8(b);
  return std::move(w).take();
}

std::optional<Request> Request::decode(std::span<const std::uint8_t> command) {
  ser::Reader r(command);
  std::uint8_t magic = 0;
  Request request;
  if (!r.u8(magic) || magic != kRequestMagic) return std::nullopt;
  if (!r.u32(request.client) || !r.u64(request.seq)) return std::nullopt;
  request.body.assign(command.begin() + kRequestHeaderBytes, command.end());
  return request;
}

std::vector<std::uint8_t> padding_body(std::uint32_t client, std::uint64_t seq,
                                       std::size_t bytes) {
  std::vector<std::uint8_t> body(bytes);
  std::uint64_t state = (static_cast<std::uint64_t>(client) << 32) ^ seq ^ 0x574c4f4144ULL;
  std::uint64_t word = 0;
  for (std::size_t i = 0; i < bytes; ++i) {
    if (i % 8 == 0) word = splitmix64(state);
    body[i] = static_cast<std::uint8_t>(word >> (8 * (i % 8)));
  }
  return body;
}

}  // namespace lumiere::workload
