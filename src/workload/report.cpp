#include "workload/report.h"

#include <algorithm>

#include "common/stats.h"
#include "workload/engine.h"

namespace lumiere::workload {

void Report::merge(const NodeWorkload& node) {
  const NodeWorkloadStats& stats = node.stats();
  const consensus::Mempool& pool = node.mempool();
  submitted += stats.submitted;
  shed += stats.shed;
  committed += stats.committed;
  commit_misses += stats.commit_misses;
  admitted += pool.admitted();
  rejected_full += pool.rejected_full();
  rejected_oversized += pool.rejected_oversized();
  rejected_duplicate += pool.rejected_duplicate();
  requeued += pool.requeued();
  outstanding += node.outstanding();
  max_queue_depth = std::max(max_queue_depth, stats.max_queue_depth);
  // Each node's samples arrive in commit order; merging sorted runs keeps
  // the whole vector time-ordered without re-sorting it per node.
  const auto mid = latencies.insert(latencies.end(), stats.latencies.begin(),
                                    stats.latencies.end());
  std::inplace_merge(latencies.begin(), mid, latencies.end(),
                     [](const auto& a, const auto& b) { return a.first < b.first; });
}

std::optional<Duration> Report::latency_percentile(double p) const {
  std::vector<Duration> samples;
  samples.reserve(latencies.size());
  for (const auto& [at, latency] : latencies) samples.push_back(latency);
  return nearest_rank_percentile(std::move(samples), p);
}

std::optional<Duration> Report::latency_percentile_between(double p, TimePoint from,
                                                           TimePoint to) const {
  std::vector<Duration> samples;
  for (const auto& [at, latency] : latencies) {
    if (at >= from && at < to) samples.push_back(latency);
  }
  return nearest_rank_percentile(std::move(samples), p);
}

std::uint64_t Report::committed_between(TimePoint from, TimePoint to) const {
  std::uint64_t count = 0;
  for (const auto& [at, latency] : latencies) {
    if (at >= from && at < to) ++count;
  }
  return count;
}

double Report::committed_per_sec(TimePoint from, TimePoint to) const {
  const double seconds = (to - from).to_seconds();
  if (seconds <= 0) return 0.0;
  return static_cast<double>(committed_between(from, to)) / seconds;
}

}  // namespace lumiere::workload
