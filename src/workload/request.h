// The tagged client request: the unit the workload engine submits,
// batches, commits and measures.
//
// A request is one mempool command: a fixed header identifying the
// issuing client and its sequence number, followed by an opaque body the
// application executes (filler padding by default; KV commands in the
// client-driven KV demo). The (client, seq) tag is what lets the engine
// match a committed command back to its submission instant and charge the
// submit -> commit latency to the right client.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

namespace lumiere::workload {

/// First byte of every workload request, so application payloads that
/// are not workload-driven cannot be mistaken for tagged requests.
inline constexpr std::uint8_t kRequestMagic = 0xC7;

/// Header: magic (u8) + client (u32) + seq (u64).
inline constexpr std::size_t kRequestHeaderBytes = 1 + 4 + 8;

/// Client ids encode the submitting node: client = (node << 16) | k, so a
/// replica observing a commit knows whether the request is one of its own
/// without any shared state (the TCP transport has none).
inline constexpr std::uint32_t kClientsPerNodeStride = 1u << 16;

[[nodiscard]] constexpr std::uint32_t client_id(std::uint32_t node, std::uint32_t k) noexcept {
  return node * kClientsPerNodeStride + k;
}
[[nodiscard]] constexpr std::uint32_t client_node(std::uint32_t client) noexcept {
  return client / kClientsPerNodeStride;
}

struct Request {
  std::uint32_t client = 0;
  std::uint64_t seq = 0;
  std::vector<std::uint8_t> body;

  /// Serializes header + body into one mempool command.
  [[nodiscard]] static std::vector<std::uint8_t> encode(std::uint32_t client, std::uint64_t seq,
                                                        std::span<const std::uint8_t> body);

  /// Parses a mempool command; nullopt when it is not a workload request
  /// (wrong magic or truncated header).
  [[nodiscard]] static std::optional<Request> decode(std::span<const std::uint8_t> command);
};

/// Deterministic filler body: `bytes` pseudo-random bytes derived from
/// (client, seq) alone — two runs of the same scenario generate
/// byte-identical requests.
[[nodiscard]] std::vector<std::uint8_t> padding_body(std::uint32_t client, std::uint64_t seq,
                                                     std::size_t bytes);

}  // namespace lumiere::workload
