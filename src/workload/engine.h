// The workload engine: client drivers feeding one node's bounded mempool,
// with per-request submit -> commit latency accounting.
//
//    ClientDriver --add()--> Mempool --next_batch(view)--> proposals
//         ^                     |                             |
//         | backpressure        | on_commit (ack/requeue)     v
//         +---- release --------+<------- committed blocks ---+
//
// One NodeWorkload per node, living entirely on that node's simulator
// (the shared deterministic one, or the node's private wall-clock-paced
// one on the TCP transport) — submissions, batch drains and commit
// observations all happen on one logical thread, so the engine needs no
// locks and behaves identically on both transports.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "common/time.h"
#include "common/types.h"
#include "consensus/mempool.h"
#include "crypto/sha256.h"
#include "sim/simulator.h"
#include "workload/request.h"
#include "workload/spec.h"

namespace lumiere::workload {

class NodeWorkload;

/// One client: an arrival process generating tagged requests against its
/// node's mempool. Owned by NodeWorkload; not constructed directly.
class ClientDriver {
 public:
  ClientDriver(NodeWorkload* owner, std::uint32_t client, Rng rng);

  /// Schedules this client's first activity at spec.start.
  void start();
  /// A request of this client committed (closed loop refills its window).
  void on_own_commit();
  /// The mempool freed capacity after rejecting us (closed loop retries).
  void on_space_available();

  [[nodiscard]] std::uint32_t client() const noexcept { return client_; }
  [[nodiscard]] std::uint64_t next_seq() const noexcept { return next_seq_; }

 private:
  enum class Submit {
    kAdmitted,    ///< request accepted; it will eventually commit
    kRetryLater,  ///< pool full and not shedding — same seq retried on release
    kSkipped,     ///< consumed the seq without admitting (shed / oversized /
                  ///< duplicate) — no commit will ever arrive for it
  };

  void open_loop_arrival();
  void closed_loop_pump();
  /// Builds and submits request `next_seq_`. Consumes the sequence number
  /// unless the pool is full and `shed_on_full` is false (closed loop
  /// retries the same request later).
  Submit submit_one(bool shed_on_full);
  [[nodiscard]] Duration open_loop_interval(TimePoint now);

  NodeWorkload* owner_;
  std::uint32_t client_;
  std::uint64_t next_seq_ = 0;
  std::uint32_t want_ = 0;  ///< closed loop: window slots awaiting a submission
  Rng rng_;
};

/// Client-side accounting for one node (admission counters live on the
/// node's Mempool; this adds the per-request latency view).
struct NodeWorkloadStats {
  std::uint64_t submitted = 0;       ///< requests generated (attempts)
  std::uint64_t shed = 0;            ///< open-loop requests dropped on kFull
  std::uint64_t committed = 0;       ///< own requests observed committing
  std::uint64_t commit_misses = 0;   ///< own client id committed with no
                                     ///< outstanding record (duplicate commit)
  std::size_t max_queue_depth = 0;
  /// (commit instant, submit -> commit latency), in commit order.
  std::vector<std::pair<TimePoint, Duration>> latencies;
  /// (drain instant, pending depth just before the drain), per proposal.
  std::vector<std::pair<TimePoint, std::size_t>> queue_depth;
};

class NodeWorkload {
 public:
  /// Events forwarded to harness-level collectors (the sim transport
  /// feeds runtime::MetricsCollector through these; TCP leaves them null
  /// and aggregates per node after the run).
  struct Hooks {
    std::function<void(TimePoint at, Duration latency)> on_request_committed;
    std::function<void(TimePoint at, std::size_t depth)> on_queue_depth;
  };

  NodeWorkload(sim::Simulator* sim, ProcessId node, WorkloadSpec spec, std::uint64_t seed,
               Hooks hooks = {});

  NodeWorkload(const NodeWorkload&) = delete;
  NodeWorkload& operator=(const NodeWorkload&) = delete;

  /// Schedules every client's first activity. Call exactly once, before
  /// the run starts.
  void start();

  /// The node's PayloadProvider: drains the next leased batch for a
  /// proposal at `view` and samples the queue depth.
  [[nodiscard]] std::vector<std::uint8_t> make_batch(View view);

  /// This node committed a block: ack/requeue the mempool leases and
  /// close the latency loop for our own requests inside the payload.
  void on_commit(TimePoint at, View view, const std::vector<std::uint8_t>& payload);

  // ---- dissemination-layer wiring (runtime::Cluster, dissem on) -------
  // Under dissemination the mempool's consumer is the disseminator, not
  // the proposer: batches lease by token (certification/ordering is not
  // view-monotone), and committed payloads arrive via delivery instead of
  // this node's own commit observation.

  /// Leases the next mempool batch into `payload`, sampling the queue
  /// depth; returns the lease token (0 = nothing pending).
  [[nodiscard]] std::uint64_t lease_dissem_batch(std::vector<std::uint8_t>& payload);
  /// A leased batch was ordered and delivered: release its requests.
  void ack_dissem_batch(std::uint64_t token);
  /// A committed batch's bytes (ours or another origin's): close the
  /// latency loop for our own requests inside it.
  void on_dissem_delivery(TimePoint at, const std::vector<std::uint8_t>& payload);

  [[nodiscard]] const WorkloadSpec& spec() const noexcept { return spec_; }
  [[nodiscard]] ProcessId node() const noexcept { return node_; }
  [[nodiscard]] consensus::Mempool& mempool() noexcept { return mempool_; }
  [[nodiscard]] const consensus::Mempool& mempool() const noexcept { return mempool_; }
  [[nodiscard]] const NodeWorkloadStats& stats() const noexcept { return stats_; }
  /// Requests admitted but not yet committed (pending + in flight).
  [[nodiscard]] std::size_t outstanding() const noexcept { return outstanding_.size(); }

  /// Rolling digest over every generated request, in generation order —
  /// two runs produced byte-identical request traces iff these agree.
  [[nodiscard]] crypto::Digest trace_digest() const;

 private:
  friend class ClientDriver;

  void record_generated(const std::vector<std::uint8_t>& request);
  void record_admitted(std::uint32_t client, std::uint64_t seq, TimePoint at);
  /// The commit-side accounting shared by on_commit and
  /// on_dissem_delivery: latency close-out for own requests in `payload`.
  void account_commands(TimePoint at, const std::vector<std::uint8_t>& payload);
  void note_starved();
  /// The mempool's space-available edge: schedules one deferred retry
  /// round across all drivers.
  void note_starved_release();

  sim::Simulator* sim_;
  ProcessId node_;
  WorkloadSpec spec_;
  Hooks hooks_;
  consensus::Mempool mempool_;
  std::vector<std::unique_ptr<ClientDriver>> drivers_;
  /// (client, seq) -> submission instant, for requests awaiting commit.
  std::map<std::pair<std::uint32_t, std::uint64_t>, TimePoint> outstanding_;
  NodeWorkloadStats stats_;
  crypto::Sha256 trace_hasher_;
  bool retry_scheduled_ = false;  ///< a backpressure-release retry event is queued
  bool started_ = false;
};

}  // namespace lumiere::workload
