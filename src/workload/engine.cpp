#include "workload/engine.h"

#include <algorithm>
#include <cmath>

#include "common/assert.h"

namespace lumiere::workload {

const char* to_string(Arrival arrival) {
  switch (arrival) {
    case Arrival::kClosedLoop:
      return "closed-loop";
    case Arrival::kConstant:
      return "constant";
    case Arrival::kPoisson:
      return "poisson";
    case Arrival::kBursty:
      return "bursty";
  }
  return "?";
}

// ------------------------------------------------------------ ClientDriver

ClientDriver::ClientDriver(NodeWorkload* owner, std::uint32_t client, Rng rng)
    : owner_(owner), client_(client), rng_(rng) {}

void ClientDriver::start() {
  const WorkloadSpec& spec = owner_->spec_;
  if (spec.arrival == Arrival::kClosedLoop) {
    owner_->sim_->schedule_at(spec.start, [this] {
      want_ = owner_->spec_.in_flight;
      closed_loop_pump();
    });
    return;
  }
  // Open loop: phase-spread the clients so n clients at rate r behave as
  // one arrival stream at n*r, not as lockstep herds; Poisson draws its
  // first gap (memorylessness makes the phase irrelevant).
  Duration first = Duration::zero();
  if (spec.arrival == Arrival::kPoisson) {
    first = open_loop_interval(spec.start);
  } else {
    const double rate = std::max(spec.rate_per_client, 1e-9);
    const auto interval = static_cast<std::int64_t>(1e6 / rate);
    const std::uint32_t k = client_ % kClientsPerNodeStride;
    first = Duration(std::max<std::int64_t>(
        1, interval * (k + 1) / std::max(1u, owner_->spec_.clients_per_node)));
  }
  owner_->sim_->schedule_at(spec.start + first, [this] { open_loop_arrival(); });
}

Duration ClientDriver::open_loop_interval(TimePoint now) {
  const WorkloadSpec& spec = owner_->spec_;
  double rate = std::max(spec.rate_per_client, 1e-9);
  switch (spec.arrival) {
    case Arrival::kConstant:
      break;
    case Arrival::kPoisson: {
      const double u = rng_.next_double();
      return Duration(std::max<std::int64_t>(
          1, static_cast<std::int64_t>(std::llround(-std::log1p(-u) * 1e6 / rate))));
    }
    case Arrival::kBursty: {
      const std::int64_t period = std::max<std::int64_t>(1, spec.burst_period.ticks());
      const std::int64_t phase = (now - spec.start).ticks() % period;
      const auto burst_ticks = static_cast<std::int64_t>(spec.burst_duty * period);
      if (phase < burst_ticks) rate *= spec.burst_factor;
      break;
    }
    case Arrival::kClosedLoop:
      LUMIERE_ASSERT_MSG(false, "closed loop has no arrival interval");
  }
  return Duration(std::max<std::int64_t>(1, static_cast<std::int64_t>(std::llround(1e6 / rate))));
}

void ClientDriver::open_loop_arrival() {
  const TimePoint now = owner_->sim_->now();
  if (now >= owner_->spec_.stop) return;
  (void)submit_one(/*shed_on_full=*/true);
  owner_->sim_->schedule_after(open_loop_interval(now), [this] { open_loop_arrival(); });
}

void ClientDriver::closed_loop_pump() {
  // Bounded attempts so a degenerate body fn (every request a duplicate
  // or oversized) stalls visibly in the counters instead of spinning the
  // event loop. A kSkipped request never commits, so it must not consume
  // a window slot — only admitted requests do.
  for (std::uint32_t attempts = 0; want_ > 0 && attempts < 64 + want_; ++attempts) {
    switch (submit_one(/*shed_on_full=*/false)) {
      case Submit::kAdmitted:
        --want_;
        break;
      case Submit::kRetryLater:
        owner_->note_starved();
        return;
      case Submit::kSkipped:
        break;  // try the next seq; the attempt bound caps the spin
    }
  }
}

void ClientDriver::on_own_commit() {
  if (owner_->spec_.arrival != Arrival::kClosedLoop) return;
  if (owner_->sim_->now() >= owner_->spec_.stop) return;
  ++want_;
  closed_loop_pump();
}

void ClientDriver::on_space_available() {
  if (owner_->spec_.arrival == Arrival::kClosedLoop && want_ > 0) closed_loop_pump();
}

ClientDriver::Submit ClientDriver::submit_one(bool shed_on_full) {
  const WorkloadSpec& spec = owner_->spec_;
  const std::uint64_t seq = next_seq_;
  std::vector<std::uint8_t> body =
      spec.body ? spec.body(client_, seq)
                : padding_body(client_, seq,
                               spec.request_bytes > kRequestHeaderBytes
                                   ? spec.request_bytes - kRequestHeaderBytes
                                   : 0);
  std::vector<std::uint8_t> request =
      Request::encode(client_, seq, std::span<const std::uint8_t>(body.data(), body.size()));
  owner_->record_generated(request);
  const TimePoint now = owner_->sim_->now();
  switch (owner_->mempool_.add(std::move(request))) {
    case consensus::Admission::kAccepted:
      ++next_seq_;
      owner_->record_admitted(client_, seq, now);
      return Submit::kAdmitted;
    case consensus::Admission::kFull:
      if (shed_on_full) {
        ++next_seq_;  // the open-loop request is gone; offered != admitted
        ++owner_->stats_.shed;
        return Submit::kSkipped;
      }
      return Submit::kRetryLater;  // closed loop retries this very seq on release
    case consensus::Admission::kOversized:
    case consensus::Admission::kDuplicate:
      ++next_seq_;  // never admissible; skip it (counted by the mempool)
      return Submit::kSkipped;
  }
  return Submit::kSkipped;
}

// ------------------------------------------------------------ NodeWorkload

NodeWorkload::NodeWorkload(sim::Simulator* sim, ProcessId node, WorkloadSpec spec,
                           std::uint64_t seed, Hooks hooks)
    : sim_(sim),
      node_(node),
      spec_(std::move(spec)),
      hooks_(std::move(hooks)),
      mempool_(spec_.mempool) {
  LUMIERE_ASSERT(sim_ != nullptr);
  LUMIERE_ASSERT_MSG(spec_.clients_per_node < kClientsPerNodeStride,
                     "client ids encode the node in the high bits");
  trace_hasher_.update("lumiere.workload.trace");
  // One independent stream per client, all derived from the scenario seed
  // and stable under per-node spec overrides elsewhere in the cluster.
  Rng root(seed ^ (0x574b4c44ULL + node));
  drivers_.reserve(spec_.clients_per_node);
  for (std::uint32_t k = 0; k < spec_.clients_per_node; ++k) {
    drivers_.push_back(std::make_unique<ClientDriver>(this, client_id(node_, k), root.fork()));
  }
  mempool_.set_space_available([this] { note_starved_release(); });
}

void NodeWorkload::start() {
  LUMIERE_ASSERT_MSG(!started_, "NodeWorkload::start called twice");
  started_ = true;
  for (auto& driver : drivers_) driver->start();
}

std::vector<std::uint8_t> NodeWorkload::make_batch(View view) {
  const std::size_t depth = mempool_.pending();
  stats_.queue_depth.emplace_back(sim_->now(), depth);
  stats_.max_queue_depth = std::max(stats_.max_queue_depth, depth);
  if (hooks_.on_queue_depth) hooks_.on_queue_depth(sim_->now(), depth);
  return mempool_.next_batch(view);
}

void NodeWorkload::on_commit(TimePoint at, View view,
                             const std::vector<std::uint8_t>& payload) {
  mempool_.on_commit(view, payload);
  account_commands(at, payload);
}

std::uint64_t NodeWorkload::lease_dissem_batch(std::vector<std::uint8_t>& payload) {
  const std::size_t depth = mempool_.pending();
  stats_.queue_depth.emplace_back(sim_->now(), depth);
  stats_.max_queue_depth = std::max(stats_.max_queue_depth, depth);
  if (hooks_.on_queue_depth) hooks_.on_queue_depth(sim_->now(), depth);
  return mempool_.lease_batch(payload);
}

void NodeWorkload::ack_dissem_batch(std::uint64_t token) { mempool_.ack_batch(token); }

void NodeWorkload::on_dissem_delivery(TimePoint at, const std::vector<std::uint8_t>& payload) {
  account_commands(at, payload);
}

void NodeWorkload::account_commands(TimePoint at, const std::vector<std::uint8_t>& payload) {
  for (const auto& command : consensus::Mempool::split_batch(payload)) {
    const auto request =
        Request::decode(std::span<const std::uint8_t>(command.data(), command.size()));
    if (!request || client_node(request->client) != node_) continue;
    const auto it = outstanding_.find({request->client, request->seq});
    if (it == outstanding_.end()) {
      ++stats_.commit_misses;  // committed twice, or never submitted here
      continue;
    }
    const Duration latency = at - it->second;
    outstanding_.erase(it);
    ++stats_.committed;
    stats_.latencies.emplace_back(at, latency);
    if (hooks_.on_request_committed) hooks_.on_request_committed(at, latency);
    const std::uint32_t k = request->client % kClientsPerNodeStride;
    if (k < drivers_.size()) drivers_[k]->on_own_commit();
  }
}

crypto::Digest NodeWorkload::trace_digest() const {
  crypto::Sha256 copy = trace_hasher_;  // finish() consumes; hash a copy
  return copy.finish();
}

void NodeWorkload::record_generated(const std::vector<std::uint8_t>& request) {
  ++stats_.submitted;
  trace_hasher_.update(std::span<const std::uint8_t>(request.data(), request.size()));
}

void NodeWorkload::record_admitted(std::uint32_t client, std::uint64_t seq, TimePoint at) {
  outstanding_.emplace(std::make_pair(client, seq), at);
}

void NodeWorkload::note_starved() {
  // Nothing to do eagerly: the mempool remembers it bounced someone and
  // fires the space-available callback on the release edge.
}

void NodeWorkload::note_starved_release() {
  if (retry_scheduled_) return;
  retry_scheduled_ = true;
  // Deferred one event so the retry runs outside the drain/commit path
  // that freed the space (same instant, FIFO order — still deterministic).
  sim_->schedule_after(Duration::zero(), [this] {
    retry_scheduled_ = false;
    for (auto& driver : drivers_) driver->on_space_available();
  });
}

}  // namespace lumiere::workload
