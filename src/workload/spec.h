// WorkloadSpec: how clients drive a node — the construction-time half of
// the workload engine (src/workload/engine.h is the runtime half).
//
// Open-loop drivers submit on an arrival process regardless of what the
// system absorbs (constant spacing, Poisson, or bursty on/off pacing) —
// the saturation probe. The closed-loop driver keeps a fixed window of
// requests in flight and only replaces committed ones — the
// coordination-bound probe that can never overload the pool. Both react
// to the mempool's admission signal: open-loop counts and sheds rejected
// requests (offered load is not admitted load), closed-loop waits for the
// backpressure release and retries, so an admitted request is never lost.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/time.h"
#include "consensus/mempool.h"

namespace lumiere::workload {

enum class Arrival : std::uint8_t {
  kClosedLoop,  ///< fixed in-flight window per client
  kConstant,    ///< open loop, evenly spaced arrivals
  kPoisson,     ///< open loop, exponential inter-arrival times
  kBursty,      ///< open loop, on/off: burst_factor x rate for burst_duty
                ///< of every burst_period, base rate otherwise
};

[[nodiscard]] const char* to_string(Arrival arrival);

/// Deterministic request-body generator (the application payload; e.g.
/// KV commands in examples/kv_client_demo). Must depend only on its
/// arguments — it runs on every transport and in replayed runs.
using BodyFn = std::function<std::vector<std::uint8_t>(std::uint32_t client, std::uint64_t seq)>;

struct WorkloadSpec {
  Arrival arrival = Arrival::kConstant;
  /// Clients attached to the node (0 disables the workload on that node).
  std::uint32_t clients_per_node = 1;
  /// Open-loop arrival rate per client, requests/second.
  double rate_per_client = 100.0;
  /// Closed-loop in-flight window per client.
  std::uint32_t in_flight = 4;
  /// Total request size (header + padding body) when `body` is unset.
  std::size_t request_bytes = 64;

  // Bursty shape (kBursty only).
  double burst_factor = 4.0;
  Duration burst_period = Duration::millis(500);
  double burst_duty = 0.25;

  /// Clients start submitting at `start` and stop at `stop` (closed-loop
  /// windows drain but are not refilled after `stop`).
  TimePoint start = TimePoint::origin();
  TimePoint stop = TimePoint::max();

  /// The node's mempool shape (capacity, batch limits, duplicate policy).
  /// Duplicate suppression defaults ON for workloads — a client retry of
  /// byte-identical bytes must not commit twice.
  consensus::MempoolLimits mempool{.suppress_duplicates = true};

  /// Application body per request; null = deterministic padding filling
  /// `request_bytes`.
  BodyFn body;
};

}  // namespace lumiere::workload
