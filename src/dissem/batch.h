// Batch identity and proof-of-availability certificates.
//
// A batch is an opaque mempool payload (length-prefixed commands, see
// consensus/mempool.h) named by its origin, a per-origin sequence number
// and the payload digest. An origin collects f+1 signed availability
// acks into a BatchCert: with at most f Byzantine processes, at least
// one honest replica stores the payload and will serve a fetch, so a
// certified reference can be ordered without its bytes (Autobahn's PoA,
// arXiv 2401.10369; threshold machinery from crypto/authenticator.h).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "common/params.h"
#include "common/types.h"
#include "crypto/sha256.h"
#include "crypto/authenticator.h"
#include "ser/serializer.h"

namespace lumiere::dissem {

/// Globally unique batch name. The digest binds the bytes; origin + seq
/// give replicas a compact per-origin stream to track.
struct BatchId {
  ProcessId origin = kNoProcess;
  std::uint64_t seq = 0;
  crypto::Digest digest;

  bool operator==(const BatchId&) const = default;
  auto operator<=>(const BatchId&) const = default;

  /// Modeled wire size: origin + seq + digest.
  [[nodiscard]] static constexpr std::size_t wire_size() noexcept {
    return 4 + 8 + crypto::Digest::kSize;
  }

  void serialize(ser::Writer& w) const {
    w.process(origin);
    w.u64(seq);
    w.digest(digest);
  }
  [[nodiscard]] static std::optional<BatchId> deserialize(ser::Reader& r) {
    BatchId id;
    if (!r.process(id.origin) || !r.u64(id.seq) || !r.digest(id.digest)) return std::nullopt;
    return id;
  }
};

/// The statement an availability ack signs: domain-separated binding of
/// the full batch identity. Built in a stack buffer (QuorumCert::statement
/// idiom) — this runs once per push on every replica.
[[nodiscard]] crypto::Digest batch_statement(const BatchId& id);

/// Proof of availability: an f+1 threshold signature over the batch
/// statement. f+1 signers guarantee at least one honest holder.
class BatchCert {
 public:
  BatchCert() = default;
  BatchCert(BatchId id, crypto::ThresholdSig sig) : id_(id), sig_(std::move(sig)) {}

  [[nodiscard]] const BatchId& id() const noexcept { return id_; }
  [[nodiscard]] const crypto::ThresholdSig& sig() const noexcept { return sig_; }

  /// Full verification: the aggregate covers this batch's statement with
  /// at least f+1 distinct valid signers.
  [[nodiscard]] bool verify(crypto::AuthView auth, const ProtocolParams& params) const;

  /// Modeled wire size: identity + the scheme's aggregate envelope.
  [[nodiscard]] std::size_t wire_size() const noexcept {
    return BatchId::wire_size() + sig_.wire_size();
  }

  void serialize(ser::Writer& w) const;
  [[nodiscard]] static std::optional<BatchCert> deserialize(ser::Reader& r);

  bool operator==(const BatchCert&) const = default;

 private:
  BatchId id_;
  crypto::ThresholdSig sig_;
};

/// Magic prefixing a references payload. Deliberately larger than any
/// plausible u32 command-length prefix (commands are bounded by the batch
/// byte budget), so a refs payload can never parse as a legacy inline
/// batch and vice versa.
inline constexpr std::uint32_t kRefsMagic = 0xBA7C4EF5;

/// Encodes an ordered list of certified references as a block payload:
/// [magic][count][count x BatchCert]. An empty list encodes to an empty
/// payload (an empty proposal stays empty on the wire).
[[nodiscard]] std::vector<std::uint8_t> encode_refs(const std::vector<BatchCert>& refs);

/// True iff `payload` starts with the refs magic.
[[nodiscard]] bool is_refs_payload(std::span<const std::uint8_t> payload);

/// Decodes a refs payload; nullopt when malformed or not magic-prefixed.
/// `sig_wire` is the authenticator scheme's wire geometry (the refs
/// embed threshold aggregates whose tag length is scheme-reported).
[[nodiscard]] std::optional<std::vector<BatchCert>> decode_refs(
    std::span<const std::uint8_t> payload, crypto::SigWireSpec sig_wire = {});

}  // namespace lumiere::dissem
