// Wire messages of the data-dissemination layer (0x4000 range).
//
// The dissemination traffic is deliberately off the ordering path:
// BatchPush carries the only payload bytes in the system once
// dissemination is on, BatchAck/BatchCert are O(kappa) control messages,
// and BatchFetch is the recovery path for a replica that committed a
// reference it never stored.
#pragma once

#include <memory>
#include <utility>
#include <vector>

#include "dissem/batch.h"
#include "ser/message.h"

namespace lumiere::dissem {

/// Message type tags (0x4000 range — see Message::type_id()).
enum MsgType : std::uint32_t {
  kBatchPush = 0x4001,
  kBatchAck = 0x4002,
  kBatchCertAnnounce = 0x4003,
  kBatchFetch = 0x4004,
};

/// Origin (or fetch responder) streams a batch's bytes to a replica.
class BatchPushMsg final : public Message {
 public:
  BatchPushMsg(BatchId id, std::vector<std::uint8_t> payload)
      : id_(id), payload_(std::move(payload)) {}

  [[nodiscard]] const BatchId& id() const noexcept { return id_; }
  [[nodiscard]] const std::vector<std::uint8_t>& payload() const noexcept { return payload_; }

  std::uint32_t type_id() const override { return kBatchPush; }
  const char* type_name() const override { return "batch-push"; }
  MsgClass msg_class() const override { return MsgClass::kDissem; }
  std::size_t wire_size() const override { return BatchId::wire_size() + payload_.size(); }
  void serialize(ser::Writer& w) const override {
    id_.serialize(w);
    w.bytes(std::span<const std::uint8_t>(payload_.data(), payload_.size()));
  }
  static MessagePtr deserialize(ser::Reader& r) {
    auto id = BatchId::deserialize(r);
    std::vector<std::uint8_t> payload;
    if (!id || !r.bytes(payload)) return nullptr;
    return std::make_shared<BatchPushMsg>(*id, std::move(payload));
  }

 private:
  BatchId id_;
  std::vector<std::uint8_t> payload_;
};

/// A replica's signed availability ack: "I stored this batch".
class BatchAckMsg final : public Message {
 public:
  BatchAckMsg(BatchId id, crypto::PartialSig share) : id_(id), share_(share) {}

  [[nodiscard]] const BatchId& id() const noexcept { return id_; }
  [[nodiscard]] const crypto::PartialSig& share() const noexcept { return share_; }

  std::uint32_t type_id() const override { return kBatchAck; }
  const char* type_name() const override { return "batch-ack"; }
  MsgClass msg_class() const override { return MsgClass::kDissem; }
  std::size_t wire_size() const override {
    return BatchId::wire_size() + share_.wire_size();
  }
  void serialize(ser::Writer& w) const override {
    id_.serialize(w);
    w.partial_sig(share_);
  }
  void collect_auth(AuthClaimSink& sink) const override {
    sink.share(batch_statement(id_), share_);
  }
  static MessagePtr deserialize(ser::Reader& r) {
    auto id = BatchId::deserialize(r);
    crypto::PartialSig share;
    if (!id || !r.partial_sig(share)) return nullptr;
    return std::make_shared<BatchAckMsg>(*id, share);
  }

 private:
  BatchId id_;
  crypto::PartialSig share_;
};

/// PoA dissemination: the origin announces a freshly aggregated cert so
/// every prospective leader can order the batch.
class BatchCertMsg final : public Message {
 public:
  explicit BatchCertMsg(BatchCert cert) : cert_(std::move(cert)) {}

  [[nodiscard]] const BatchCert& cert() const noexcept { return cert_; }

  std::uint32_t type_id() const override { return kBatchCertAnnounce; }
  const char* type_name() const override { return "batch-cert"; }
  MsgClass msg_class() const override { return MsgClass::kDissem; }
  std::size_t wire_size() const override { return cert_.wire_size(); }
  void serialize(ser::Writer& w) const override { cert_.serialize(w); }
  void collect_auth(AuthClaimSink& sink) const override { sink.aggregate(cert_.sig()); }
  static MessagePtr deserialize(ser::Reader& r) {
    auto cert = BatchCert::deserialize(r);
    if (!cert) return nullptr;
    return std::make_shared<BatchCertMsg>(std::move(*cert));
  }

 private:
  BatchCert cert_;
};

/// Fetch-on-miss: a replica that must apply a committed reference it
/// never stored asks a cert signer for the bytes.
class BatchFetchMsg final : public Message {
 public:
  explicit BatchFetchMsg(BatchId id) : id_(id) {}

  [[nodiscard]] const BatchId& id() const noexcept { return id_; }

  std::uint32_t type_id() const override { return kBatchFetch; }
  const char* type_name() const override { return "batch-fetch"; }
  MsgClass msg_class() const override { return MsgClass::kDissem; }
  std::size_t wire_size() const override { return BatchId::wire_size(); }
  void serialize(ser::Writer& w) const override { id_.serialize(w); }
  static MessagePtr deserialize(ser::Reader& r) {
    auto id = BatchId::deserialize(r);
    if (!id) return nullptr;
    return std::make_shared<BatchFetchMsg>(*id);
  }

 private:
  BatchId id_;
};

/// Registers all dissemination message types with a codec (for the TCP
/// transport).
inline void register_dissem_messages(MessageCodec& codec) {
  codec.register_type(kBatchPush, &BatchPushMsg::deserialize);
  codec.register_type(kBatchAck, &BatchAckMsg::deserialize);
  codec.register_type(kBatchCertAnnounce, &BatchCertMsg::deserialize);
  codec.register_type(kBatchFetch, &BatchFetchMsg::deserialize);
}

}  // namespace lumiere::dissem
