// Per-node data-dissemination engine (Autobahn-style, arXiv 2401.10369).
//
// Runs beneath the consensus core and off its critical path:
//
//   * as an origin, leases batches from the local mempool on a timer,
//     broadcasts their bytes (BatchPush), and aggregates f+1 signed
//     availability acks into a BatchCert (proof of availability);
//   * as a replica, stores pushed batches, acks them, and queues every
//     verified cert it sees — own or announced — as orderable;
//   * hands consensus fixed-size certified references: the proposal
//     payload becomes an encoded list of (batch_id, cert) entries, so
//     proposal wire size is independent of batch payload size;
//   * on commit, resolves references back to payload bytes, fetching
//     from cert signers (>= 1 of the f+1 is honest and stores the batch)
//     when this node never received the push.
//
// Everything is driven by the deterministic simulator clock through the
// injected schedule/now callbacks; the engine itself holds no threads
// and no wall-clock state, so runs replay bit-for-bit from the seed.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <set>
#include <span>
#include <unordered_set>
#include <vector>

#include "common/params.h"
#include "common/time.h"
#include "common/types.h"
#include "crypto/authenticator.h"
#include "dissem/batch.h"
#include "dissem/messages.h"
#include "dissem/spec.h"
#include "ser/message.h"

namespace lumiere::dissem {

/// Wiring into the node (transport + clock) and the harness (mempool
/// lease/ack, committed-batch delivery, metrics). Metrics hooks may be
/// null; the rest must be set.
struct DisseminatorCallbacks {
  std::function<void(ProcessId, MessagePtr)> send;
  std::function<void(MessagePtr)> broadcast;
  std::function<void(Duration, std::function<void()>)> schedule;
  std::function<TimePoint()> now;

  /// Leases the next mempool batch into `payload`; returns the lease
  /// token, 0 when nothing is pending.
  std::function<std::uint64_t(std::vector<std::uint8_t>&)> lease_batch;
  /// Acks a lease after its batch was ordered and delivered.
  std::function<void(std::uint64_t)> ack_batch;
  /// Delivers one committed batch's bytes (exactly once per BatchId on
  /// this node, in deterministic order).
  std::function<void(TimePoint, const std::vector<std::uint8_t>&)> deliver;

  std::function<void(TimePoint, Duration)> on_batch_certified;     ///< PoA latency at origin
  std::function<void(TimePoint, std::size_t)> on_certified_depth;  ///< certified-unordered depth
};

class Disseminator {
 public:
  Disseminator(const ProtocolParams& params, crypto::AuthView auth, crypto::Signer signer,
               DissemSpec spec, DisseminatorCallbacks cb);

  /// Starts the push/retry timers. Call when the node joins the protocol.
  void start();

  void on_message(ProcessId from, const MessagePtr& msg);

  // ---- consensus integration -----------------------------------------

  /// Drains up to max_refs_per_proposal certified references into an
  /// encoded refs payload for a proposal (empty when nothing certified).
  [[nodiscard]] std::vector<std::uint8_t> make_proposal_payload(View v);

  /// Vote gate: empty payloads and well-formed reference lists whose
  /// certs all verify are acceptable; anything else (raw bytes, bogus
  /// certs) must not attract this node's vote.
  [[nodiscard]] bool refs_payload_ok(std::span<const std::uint8_t> payload);

  /// Observes references carried by any received proposal: a reference
  /// already in flight under some proposal is withheld from this node's
  /// own next proposal (with a reinsert timer as the liveness net).
  void on_refs_proposed(std::span<const std::uint8_t> payload);

  /// Resolves a committed payload's references: delivers stored batches,
  /// fetches missing ones from cert signers, acks own mempool leases.
  void on_committed_payload(std::span<const std::uint8_t> payload);

  // ---- introspection (tests, oracles, benches) -----------------------

  /// The stored bytes for `id`, or nullptr if this node never got them.
  [[nodiscard]] const std::vector<std::uint8_t>* payload_of(const BatchId& id) const;
  /// Certified-but-unordered references currently queued.
  [[nodiscard]] std::size_t certified_depth() const noexcept { return queued_.size(); }
  /// Committed references still awaiting a fetched payload.
  [[nodiscard]] std::size_t unresolved_count() const noexcept { return unresolved_.size(); }

  [[nodiscard]] std::uint64_t batches_pushed() const noexcept { return pushed_; }
  [[nodiscard]] std::uint64_t batches_certified() const noexcept { return certified_; }
  [[nodiscard]] std::uint64_t batches_delivered() const noexcept { return delivered_; }
  [[nodiscard]] std::uint64_t fetches_served() const noexcept { return fetches_served_; }
  [[nodiscard]] std::uint64_t refs_reinserted() const noexcept { return reinserted_; }

 private:
  /// One own batch awaiting its f+1 acks.
  struct PendingCert {
    BatchId id;
    TimePoint pushed_at;
    crypto::QuorumAggregator agg;
  };

  void push_tick();
  void retry_tick();
  void handle_push(ProcessId from, const BatchPushMsg& msg);
  void handle_ack(const BatchAckMsg& msg);
  void handle_cert(const BatchCertMsg& msg);
  void handle_fetch(ProcessId from, const BatchFetchMsg& msg);
  void maybe_finalize(std::uint64_t seq);
  /// Queues a verified cert as orderable (no-op if ordered or queued).
  void accept_cert(const BatchCert& cert);
  /// Full cert verification with a fingerprint memo (every proposal
  /// re-carries its refs' certs; re-checking f+1 MACs each time would
  /// dominate the vote path).
  [[nodiscard]] bool verify_cert_cached(const BatchCert& cert);
  void schedule_reinsert(const BatchCert& cert);
  void deliver_one(const BatchId& id);
  void send_fetches(const BatchCert& cert);
  void sample_depth();

  ProtocolParams params_;
  crypto::AuthView auth_;
  crypto::Signer signer_;
  DissemSpec spec_;
  DisseminatorCallbacks cb_;
  ProcessId self_;
  bool running_ = false;

  std::uint64_t seq_ = 0;                         ///< own batch sequence
  std::map<std::uint64_t, PendingCert> pending_;  ///< own, awaiting acks (by seq)
  std::map<std::uint64_t, std::uint64_t> tokens_; ///< own seq -> mempool lease token
  std::map<BatchId, BatchCert> own_certs_;        ///< own, certified, not yet ordered

  std::map<BatchId, std::vector<std::uint8_t>> store_;  ///< all received batch bytes
  std::deque<BatchCert> queue_;   ///< certified references, FIFO (may hold stale copies)
  std::set<BatchId> queued_;      ///< source of truth for queue membership
  std::set<BatchId> ordered_;     ///< references already committed+deduped on this node
  std::map<BatchId, BatchCert> unresolved_;  ///< committed, payload still missing
  std::unordered_set<crypto::Digest> verified_certs_;  ///< serialized-cert fingerprints
  std::vector<std::uint8_t> scratch_;                  ///< fingerprint encode buffer

  std::uint64_t pushed_ = 0;
  std::uint64_t certified_ = 0;
  std::uint64_t delivered_ = 0;
  std::uint64_t fetches_served_ = 0;
  std::uint64_t reinserted_ = 0;
};

}  // namespace lumiere::dissem
