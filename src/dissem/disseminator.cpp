#include "dissem/disseminator.h"

#include "common/assert.h"
#include "dissem/messages.h"

namespace lumiere::dissem {

Disseminator::Disseminator(const ProtocolParams& params, crypto::AuthView auth,
                           crypto::Signer signer, DissemSpec spec, DisseminatorCallbacks cb)
    : params_(params),
      auth_(auth),
      signer_(signer),
      spec_(spec),
      cb_(std::move(cb)),
      self_(signer_.id()) {
  LUMIERE_ASSERT(auth);
  LUMIERE_ASSERT(cb_.send && cb_.broadcast && cb_.schedule && cb_.now);
  LUMIERE_ASSERT(cb_.lease_batch && cb_.ack_batch && cb_.deliver);
  LUMIERE_ASSERT(spec_.push_interval > Duration::zero());
  LUMIERE_ASSERT(spec_.retry_interval > Duration::zero());
  LUMIERE_ASSERT(spec_.max_refs_per_proposal > 0);
}

void Disseminator::start() {
  if (running_) return;
  running_ = true;
  cb_.schedule(spec_.push_interval, [this] { push_tick(); });
  cb_.schedule(spec_.retry_interval, [this] { retry_tick(); });
}

void Disseminator::push_tick() {
  for (std::uint32_t i = 0; i < spec_.max_batches_per_tick; ++i) {
    if (pending_.size() >= spec_.max_uncertified) break;
    std::vector<std::uint8_t> payload;
    const std::uint64_t token = cb_.lease_batch(payload);
    if (token == 0) break;
    const std::uint64_t seq = ++seq_;
    const BatchId id{self_, seq,
                     crypto::Sha256::hash(
                         std::span<const std::uint8_t>(payload.data(), payload.size()))};
    tokens_.emplace(seq, token);
    auto [it, inserted] = pending_.emplace(
        seq, PendingCert{id, cb_.now(),
                         crypto::QuorumAggregator(auth_, batch_statement(id),
                                                  params_.small_quorum())});
    LUMIERE_ASSERT(inserted);
    it->second.agg.add(crypto::threshold_share(signer_, batch_statement(id)));
    ++pushed_;
    auto msg = std::make_shared<BatchPushMsg>(id, payload);
    store_.emplace(id, std::move(payload));
    cb_.broadcast(std::move(msg));
    maybe_finalize(seq);
  }
  cb_.schedule(spec_.push_interval, [this] { push_tick(); });
}

void Disseminator::retry_tick() {
  const TimePoint now = cb_.now();
  // Re-push own batches still short of f+1 acks (pushes lost to drops or
  // a partition); acking is idempotent on the receiver side.
  for (const auto& [seq, pending] : pending_) {
    if (now - pending.pushed_at < spec_.retry_interval) continue;
    const auto stored = store_.find(pending.id);
    if (stored != store_.end()) {
      cb_.broadcast(std::make_shared<BatchPushMsg>(pending.id, stored->second));
    }
  }
  // Re-announce own certs nobody ordered yet — the path that floods a
  // healed partition's backlog back into the leaders' certified queues.
  for (const auto& [id, cert] : own_certs_) {
    cb_.broadcast(std::make_shared<BatchCertMsg>(cert));
  }
  // Re-fetch committed-but-missing payloads from their cert signers.
  for (const auto& [id, cert] : unresolved_) send_fetches(cert);
  cb_.schedule(spec_.retry_interval, [this] { retry_tick(); });
}

void Disseminator::on_message(ProcessId from, const MessagePtr& msg) {
  switch (msg->type_id()) {
    case kBatchPush:
      handle_push(from, static_cast<const BatchPushMsg&>(*msg));
      break;
    case kBatchAck:
      handle_ack(static_cast<const BatchAckMsg&>(*msg));
      break;
    case kBatchCertAnnounce:
      handle_cert(static_cast<const BatchCertMsg&>(*msg));
      break;
    case kBatchFetch:
      handle_fetch(from, static_cast<const BatchFetchMsg&>(*msg));
      break;
    default:
      break;
  }
}

void Disseminator::handle_push(ProcessId /*from*/, const BatchPushMsg& msg) {
  const BatchId& id = msg.id();
  // The digest in the id must bind the bytes, or an ack here would help
  // certify a batch whose content this node cannot actually serve.
  if (crypto::Sha256::hash(std::span<const std::uint8_t>(msg.payload().data(),
                                                         msg.payload().size())) != id.digest) {
    return;
  }
  store_.try_emplace(id, msg.payload());
  if (id.origin != self_ && id.origin < params_.n) {
    cb_.send(id.origin,
             std::make_shared<BatchAckMsg>(id, crypto::threshold_share(signer_,
                                                                       batch_statement(id))));
  }
  const auto missing = unresolved_.find(id);
  if (missing != unresolved_.end()) {
    unresolved_.erase(missing);
    deliver_one(id);
  }
}

void Disseminator::handle_ack(const BatchAckMsg& msg) {
  if (msg.id().origin != self_) return;
  const auto it = pending_.find(msg.id().seq);
  if (it == pending_.end() || it->second.id != msg.id()) return;
  if (!it->second.agg.add(msg.share())) return;
  maybe_finalize(msg.id().seq);
}

void Disseminator::maybe_finalize(std::uint64_t seq) {
  const auto it = pending_.find(seq);
  if (it == pending_.end() || !it->second.agg.complete()) return;
  BatchCert cert(it->second.id, it->second.agg.aggregate());
  const TimePoint now = cb_.now();
  if (cb_.on_batch_certified) cb_.on_batch_certified(now, now - it->second.pushed_at);
  pending_.erase(it);
  ++certified_;
  own_certs_.emplace(cert.id(), cert);
  cb_.broadcast(std::make_shared<BatchCertMsg>(cert));
  accept_cert(cert);
}

void Disseminator::handle_cert(const BatchCertMsg& msg) {
  if (!verify_cert_cached(msg.cert())) return;
  accept_cert(msg.cert());
}

void Disseminator::handle_fetch(ProcessId from, const BatchFetchMsg& msg) {
  if (from >= params_.n || from == self_) return;
  const auto it = store_.find(msg.id());
  if (it == store_.end()) return;
  ++fetches_served_;
  cb_.send(from, std::make_shared<BatchPushMsg>(msg.id(), it->second));
}

void Disseminator::accept_cert(const BatchCert& cert) {
  const BatchId& id = cert.id();
  if (ordered_.contains(id) || queued_.contains(id)) return;
  queue_.push_back(cert);
  queued_.insert(id);
  sample_depth();
}

bool Disseminator::verify_cert_cached(const BatchCert& cert) {
  ser::Writer w(std::move(scratch_));
  cert.serialize(w);
  scratch_ = std::move(w).take();
  const crypto::Digest key =
      crypto::Sha256::hash(std::span<const std::uint8_t>(scratch_.data(), scratch_.size()));
  if (verified_certs_.contains(key)) return true;
  if (!cert.verify(auth_, params_)) return false;
  // Cap as QcVerifyCache does: junk certs must not grow this unboundedly.
  if (verified_certs_.size() >= 4096) verified_certs_.clear();
  verified_certs_.insert(key);
  return true;
}

std::vector<std::uint8_t> Disseminator::make_proposal_payload(View /*v*/) {
  std::vector<BatchCert> refs;
  while (refs.size() < spec_.max_refs_per_proposal && !queue_.empty()) {
    BatchCert cert = std::move(queue_.front());
    queue_.pop_front();
    if (queued_.erase(cert.id()) == 0) continue;  // stale copy, superseded
    schedule_reinsert(cert);
    refs.push_back(std::move(cert));
  }
  if (refs.empty()) return {};
  sample_depth();
  return encode_refs(refs);
}

bool Disseminator::refs_payload_ok(std::span<const std::uint8_t> payload) {
  if (payload.empty()) return true;
  const auto refs = decode_refs(payload, auth_.wire_spec());
  if (!refs) return false;
  for (const BatchCert& cert : *refs) {
    if (!verify_cert_cached(cert)) return false;
  }
  return true;
}

void Disseminator::on_refs_proposed(std::span<const std::uint8_t> payload) {
  if (payload.empty() || !is_refs_payload(payload)) return;
  const auto refs = decode_refs(payload, auth_.wire_spec());
  if (!refs) return;
  bool changed = false;
  for (const BatchCert& cert : *refs) {
    // Withhold only references this node itself had queued (and hence
    // verified); an unknown cert in a Byzantine proposal must not enter
    // the reinsert path unvetted.
    if (queued_.erase(cert.id()) == 0) continue;
    schedule_reinsert(cert);
    changed = true;
  }
  if (changed) sample_depth();
}

void Disseminator::schedule_reinsert(const BatchCert& cert) {
  cb_.schedule(spec_.reinsert_timeout, [this, cert] {
    const BatchId& id = cert.id();
    if (ordered_.contains(id) || queued_.contains(id)) return;
    queue_.push_back(cert);
    queued_.insert(id);
    ++reinserted_;
    sample_depth();
  });
}

void Disseminator::on_committed_payload(std::span<const std::uint8_t> payload) {
  if (payload.empty()) return;
  const auto refs = decode_refs(payload, auth_.wire_spec());
  if (!refs) return;
  for (const BatchCert& cert : *refs) {
    const BatchId& id = cert.id();
    own_certs_.erase(id);
    // A reference can legitimately commit twice (reinsert + pipelined
    // chains); deliver the batch exactly once, on its first commit.
    if (!ordered_.insert(id).second) continue;
    queued_.erase(id);
    if (store_.contains(id)) {
      deliver_one(id);
    } else {
      unresolved_.emplace(id, cert);
      send_fetches(cert);
    }
  }
  sample_depth();
}

void Disseminator::deliver_one(const BatchId& id) {
  const auto it = store_.find(id);
  LUMIERE_ASSERT(it != store_.end());
  ++delivered_;
  cb_.deliver(cb_.now(), it->second);
  if (id.origin == self_) {
    const auto token = tokens_.find(id.seq);
    if (token != tokens_.end()) {
      cb_.ack_batch(token->second);
      tokens_.erase(token);
    }
  }
}

void Disseminator::send_fetches(const BatchCert& cert) {
  // At least one of the f+1 signers is honest and stores the batch.
  for (const ProcessId signer : cert.sig().signers.members()) {
    if (signer == self_ || signer >= params_.n) continue;
    cb_.send(signer, std::make_shared<BatchFetchMsg>(cert.id()));
  }
}

const std::vector<std::uint8_t>* Disseminator::payload_of(const BatchId& id) const {
  const auto it = store_.find(id);
  return it == store_.end() ? nullptr : &it->second;
}

void Disseminator::sample_depth() {
  if (cb_.on_certified_depth) cb_.on_certified_depth(cb_.now(), queued_.size());
}

}  // namespace lumiere::dissem
