// Configuration for the data-dissemination layer (Autobahn-style,
// arXiv 2401.10369): replicas stream mempool batches to each other and
// certify availability continuously, so consensus proposals order small
// certified references instead of payload bytes.
#pragma once

#include <cstdint>

#include "common/time.h"

namespace lumiere::dissem {

/// Knobs for one node's Disseminator. The defaults suit the simulated
/// sub-millisecond networks the benches script; all timers run on the
/// deterministic simulator clock.
struct DissemSpec {
  /// Origin cadence: how often a replica drains its mempool into fresh
  /// batches and pushes them to everyone.
  Duration push_interval = Duration::millis(2);
  /// Batches leased per push tick (each becomes one BatchPush broadcast).
  std::uint32_t max_batches_per_tick = 4;
  /// Flow control: stop leasing fresh batches while this many own batches
  /// are still awaiting certification (e.g. the node is cut off from a
  /// small quorum) — backpressure then propagates to the mempool.
  std::uint32_t max_uncertified = 32;
  /// Re-push unacked batches and re-fetch unresolved committed references
  /// at this cadence — the recovery path through partitions and drops.
  Duration retry_interval = Duration::millis(50);
  /// Cap on certified references drained into a single proposal.
  std::uint32_t max_refs_per_proposal = 64;
  /// A reference handed to consensus (drained locally or seen in a
  /// proposal) that is still unordered after this long re-enters the
  /// certified queue, so an abandoned proposal cannot lose batches.
  Duration reinsert_timeout = Duration::millis(100);

  bool operator==(const DissemSpec&) const = default;
};

}  // namespace lumiere::dissem
