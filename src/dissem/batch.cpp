#include "dissem/batch.h"

#include <array>
#include <string_view>

namespace lumiere::dissem {

crypto::Digest batch_statement(const BatchId& id) {
  constexpr std::string_view kDomain = "lumiere.batch";
  std::array<std::uint8_t, 4 + kDomain.size() + 4 + 8 + crypto::Digest::kSize> buf{};
  std::size_t pos = 0;
  const auto le = [&](std::uint64_t v, std::size_t bytes) {
    for (std::size_t i = 0; i < bytes; ++i) buf[pos++] = static_cast<std::uint8_t>(v >> (8 * i));
  };
  le(kDomain.size(), 4);
  for (const char c : kDomain) buf[pos++] = static_cast<std::uint8_t>(c);
  le(id.origin, 4);
  le(id.seq, 8);
  for (const std::uint8_t b : id.digest.bytes()) buf[pos++] = b;
  return crypto::Sha256::hash(std::span<const std::uint8_t>(buf.data(), buf.size()));
}

bool BatchCert::verify(crypto::AuthView auth, const ProtocolParams& params) const {
  if (sig_.message != batch_statement(id_)) return false;
  return auth.verify_aggregate(sig_, params.small_quorum());
}

void BatchCert::serialize(ser::Writer& w) const {
  id_.serialize(w);
  w.threshold_sig(sig_);
}

std::optional<BatchCert> BatchCert::deserialize(ser::Reader& r) {
  BatchCert cert;
  auto id = BatchId::deserialize(r);
  if (!id) return std::nullopt;
  cert.id_ = *id;
  if (!r.threshold_sig(cert.sig_)) return std::nullopt;
  return cert;
}

std::vector<std::uint8_t> encode_refs(const std::vector<BatchCert>& refs) {
  if (refs.empty()) return {};
  ser::Writer w;
  w.u32(kRefsMagic);
  w.u32(static_cast<std::uint32_t>(refs.size()));
  for (const BatchCert& cert : refs) cert.serialize(w);
  return std::move(w).take();
}

bool is_refs_payload(std::span<const std::uint8_t> payload) {
  ser::Reader r(payload);
  std::uint32_t magic = 0;
  return r.u32(magic) && magic == kRefsMagic;
}

std::optional<std::vector<BatchCert>> decode_refs(std::span<const std::uint8_t> payload,
                                                  crypto::SigWireSpec sig_wire) {
  ser::Reader r(payload, sig_wire);
  std::uint32_t magic = 0;
  if (!r.u32(magic) || magic != kRefsMagic) return std::nullopt;
  std::uint32_t count = 0;
  if (!r.u32(count)) return std::nullopt;
  // Each ref occupies well over 100 wire bytes; a count the remaining
  // bytes cannot cover is malformed (bounds the allocation below).
  if (count == 0 || count > r.remaining() / BatchId::wire_size()) return std::nullopt;
  std::vector<BatchCert> refs;
  refs.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    auto cert = BatchCert::deserialize(r);
    if (!cert) return std::nullopt;
    refs.push_back(std::move(*cert));
  }
  if (!r.exhausted()) return std::nullopt;
  return refs;
}

}  // namespace lumiere::dissem
