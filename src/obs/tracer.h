// SyncTracer — per-node view-synchronization span bracketing.
//
// The tracer owns one cumulative cost meter per node (messages sent,
// bytes sent, authenticator ops) and turns the pacemaker's sync-started
// signal plus the node's view entries into SyncSpans whose costs are
// counter deltas. It is *passive*: it never draws randomness, schedules
// events, or touches protocol state, so enabling it cannot perturb a
// deterministic run (the golden-digest tests pin this).
//
// Threading: on the sim transport everything runs on one thread. On TCP,
// node i's driver thread is the only writer of node i's state; status
// endpoint threads are concurrent readers. Per-node mutexes cover the
// span state, relaxed atomics cover the cumulative meters, and one
// cluster-wide mutex covers the completed-span ring.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "common/time.h"
#include "common/types.h"
#include "crypto/auth_counters.h"
#include "obs/span.h"

namespace lumiere::obs {

class SyncTracer {
 public:
  /// `max_spans` bounds the completed-span ring (0 = unbounded; benches
  /// that export every span use that).
  explicit SyncTracer(std::uint32_t n, std::size_t max_spans = 1 << 16);

  [[nodiscard]] std::uint32_t n() const noexcept {
    return static_cast<std::uint32_t>(nodes_.size());
  }

  // -- feeds (node `id`'s driver thread only) ------------------------------

  /// The op counters node `id` installs into its Signer/AuthView.
  [[nodiscard]] crypto::AuthOpCounters& auth_counters(ProcessId id) {
    return nodes_[id]->auth;
  }

  /// One protocol message of `bytes` wire bytes left node `id`.
  void note_sent(ProcessId id, std::uint64_t bytes) noexcept;

  /// Node `id`'s pacemaker began spending resources to leave `current`,
  /// aiming for `target`. First start wins while a span is open.
  void on_sync_started(ProcessId id, TimePoint at, View current, View target);

  /// Node `id` entered `view`. Closes the open span (if any) and returns
  /// the completed span; nullopt when no sync episode was in progress
  /// (e.g. the happy-path view entry at startup).
  std::optional<SyncSpan> on_view_entered(ProcessId id, TimePoint at, View view);

  // -- reads (any thread) --------------------------------------------------

  [[nodiscard]] std::uint64_t msgs_sent(ProcessId id) const noexcept;
  [[nodiscard]] std::uint64_t bytes_sent(ProcessId id) const noexcept;
  [[nodiscard]] crypto::AuthOpSnapshot auth_snapshot(ProcessId id) const noexcept {
    return nodes_[id]->auth.snapshot();
  }

  /// The open span on node `id` with costs accrued up to `now`, if any.
  [[nodiscard]] std::optional<SyncSpan> open_span(ProcessId id, TimePoint now) const;
  /// The most recently completed span on node `id`, if any.
  [[nodiscard]] std::optional<SyncSpan> last_span(ProcessId id) const;

  /// Snapshot of the completed-span ring, oldest first.
  [[nodiscard]] std::vector<SyncSpan> completed_spans() const;
  [[nodiscard]] std::size_t completed_count() const;
  /// Completed spans evicted from the ring because of max_spans.
  [[nodiscard]] std::uint64_t dropped_spans() const;

 private:
  struct PerNode {
    crypto::AuthOpCounters auth;
    std::atomic<std::uint64_t> msgs{0};
    std::atomic<std::uint64_t> bytes{0};

    mutable std::mutex mu;  // guards the span fields below
    bool open = false;
    SyncSpan span;  // identity + start fields while open
    std::uint64_t base_msgs = 0;
    std::uint64_t base_bytes = 0;
    crypto::AuthOpSnapshot base_auth;
    std::optional<SyncSpan> last;
  };

  // unique_ptr for stable addresses (atomics and mutexes don't move).
  std::vector<std::unique_ptr<PerNode>> nodes_;
  std::size_t max_spans_;

  mutable std::mutex completed_mu_;
  std::deque<SyncSpan> completed_;
  std::uint64_t dropped_ = 0;
};

}  // namespace lumiere::obs
