// The unit of view-synchronization cost attribution.
//
// A span brackets one sync episode on one node: it opens when the node's
// pacemaker first spends resources trying to leave its current view
// (wish/view-message/epoch-sync send — reported through
// PacemakerWiring::sync_started) and closes at the next view entry. The
// resources attributed to it are deltas of per-node cumulative counters
// (messages sent, bytes sent, authenticator ops), so attribution is exact
// regardless of transport: everything the node spent between the two
// instants belongs to the episode.
#pragma once

#include <cstdint>

#include "common/time.h"
#include "common/types.h"
#include "crypto/auth_counters.h"

namespace lumiere::obs {

struct SyncSpan {
  ProcessId node = kNoProcess;
  View from_view = 0;   ///< the view the node was in when sync started
  View target_view = 0; ///< the view the pacemaker first aimed for
  View entered_view = 0;///< the view actually entered (completed spans)
  TimePoint start;      ///< sync_started instant
  TimePoint end;        ///< view-entry instant (== start while open)
  std::uint64_t msgs_sent = 0;   ///< protocol messages sent inside the span
  std::uint64_t bytes_sent = 0;  ///< wire bytes of those messages
  crypto::AuthOpSnapshot auth;   ///< authenticator ops inside the span
  bool completed = false;

  [[nodiscard]] Duration duration() const noexcept { return end - start; }
  [[nodiscard]] std::uint64_t auth_ops() const noexcept { return auth.total(); }
};

}  // namespace lumiere::obs
