// Observability configuration, selected per scenario via
// ScenarioBuilder::observability(). See obs/tracer.h for what the spans
// mean and README "Observability" for the status-endpoint protocol.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace lumiere::obs {

struct ObsSpec {
  /// The view-sync span tracer. Default-on: it is passive (no RNG draws,
  /// no scheduled events), so golden digests are byte-identical either
  /// way — turning it off only saves the bookkeeping.
  bool tracer = true;

  /// Completed spans kept per cluster; older spans are dropped FIFO.
  /// Zero means unbounded (benches that export every span use that).
  std::size_t max_spans = 1 << 16;

  /// Capacity handed to the cluster's sim::TraceLog ring buffer.
  /// Zero keeps the TraceLog default.
  std::size_t trace_capacity = 0;

  /// When non-zero (TCP transport only), each node i serves the line
  /// protocol on status_base_port + i. Zero disables the endpoints.
  std::uint16_t status_base_port = 0;

  /// When non-empty, the status endpoints accept runtime admin commands
  /// (obs/admin.h) from sessions that first send "AUTH <admin_token>".
  /// Empty disables the admin control plane entirely — STATUS/PING only.
  /// Requires status_base_port != 0.
  std::string admin_token;
};

}  // namespace lumiere::obs
