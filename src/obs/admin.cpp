#include "obs/admin.h"

#include <chrono>
#include <sstream>

namespace lumiere::obs {

const char* to_string(AdminKind kind) {
  switch (kind) {
    case AdminKind::kBehavior:
      return "BEHAVIOR";
    case AdminKind::kDrop:
      return "DROP";
    case AdminKind::kDelay:
      return "DELAY";
    case AdminKind::kIsolate:
      return "ISOLATE";
    case AdminKind::kHeal:
      return "HEAL";
    case AdminKind::kCrash:
      return "CRASH";
    case AdminKind::kLedger:
      return "LEDGER";
  }
  return "?";
}

std::optional<AdminCommand> parse_admin(const std::string& line, std::string& error) {
  std::istringstream in(line);
  std::string verb;
  in >> verb;
  AdminCommand cmd;
  if (verb == "BEHAVIOR") {
    cmd.kind = AdminKind::kBehavior;
    if (!(in >> cmd.behavior)) {
      error = "BEHAVIOR needs a name";
      return std::nullopt;
    }
  } else if (verb == "DROP") {
    cmd.kind = AdminKind::kDrop;
    if (!(in >> cmd.peer >> cmd.probability)) {
      error = "DROP needs <peer> <probability>";
      return std::nullopt;
    }
    if (cmd.probability < 0.0 || cmd.probability > 1.0) {
      error = "DROP probability must be in [0, 1]";
      return std::nullopt;
    }
  } else if (verb == "DELAY") {
    cmd.kind = AdminKind::kDelay;
    std::int64_t ms = 0;
    if (!(in >> cmd.peer >> ms) || ms < 0) {
      error = "DELAY needs <peer> <nonnegative ms>";
      return std::nullopt;
    }
    cmd.delay = Duration::millis(ms);
  } else if (verb == "ISOLATE") {
    cmd.kind = AdminKind::kIsolate;
  } else if (verb == "HEAL") {
    cmd.kind = AdminKind::kHeal;
  } else if (verb == "CRASH") {
    cmd.kind = AdminKind::kCrash;
  } else if (verb == "LEDGER") {
    cmd.kind = AdminKind::kLedger;
  } else {
    error = "unknown admin command";
    return std::nullopt;
  }
  std::string extra;
  if (in >> extra) {
    error = "trailing arguments";
    return std::nullopt;
  }
  return cmd;
}

std::optional<std::string> AdminGate::submit(const AdminCommand& command, Duration timeout) {
  Pending pending;
  pending.command = command;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    queue_.push_back(&pending);
    queued_.fetch_add(1, std::memory_order_release);
  }
  std::unique_lock<std::mutex> lock(mutex_);
  const bool done = cv_.wait_for(lock, std::chrono::microseconds(timeout.ticks()),
                                 [&] { return pending.done; });
  if (done) return std::move(pending.reply);
  // Timed out: `pending` is about to leave scope, so drain() must never
  // see it again. If it is still queued, unlink it and report the timeout.
  for (auto it = queue_.begin(); it != queue_.end(); ++it) {
    if (*it == &pending) {
      queue_.erase(it);
      queued_.fetch_sub(1, std::memory_order_release);
      return std::nullopt;
    }
  }
  // Not queued and not done: drain() popped it and is applying right now.
  // It finishes under the mutex we hold, so completion is guaranteed.
  cv_.wait(lock, [&] { return pending.done; });
  return std::move(pending.reply);
}

void AdminGate::drain(const std::function<std::string(const AdminCommand&)>& apply) {
  if (queued_.load(std::memory_order_acquire) == applied_.load(std::memory_order_relaxed)) {
    return;
  }
  while (true) {
    Pending* pending = nullptr;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      if (queue_.empty()) return;
      pending = queue_.front();
      queue_.pop_front();
    }
    std::string reply = apply(pending->command);
    {
      std::unique_lock<std::mutex> lock(mutex_);
      pending->reply = std::move(reply);
      pending->done = true;
      applied_.fetch_add(1, std::memory_order_relaxed);
    }
    cv_.notify_all();
  }
}

}  // namespace lumiere::obs
