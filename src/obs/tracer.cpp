#include "obs/tracer.h"

namespace lumiere::obs {

SyncTracer::SyncTracer(std::uint32_t n, std::size_t max_spans) : max_spans_(max_spans) {
  nodes_.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) nodes_.push_back(std::make_unique<PerNode>());
}

void SyncTracer::note_sent(ProcessId id, std::uint64_t bytes) noexcept {
  PerNode& node = *nodes_[id];
  node.msgs.fetch_add(1, std::memory_order_relaxed);
  node.bytes.fetch_add(bytes, std::memory_order_relaxed);
}

std::uint64_t SyncTracer::msgs_sent(ProcessId id) const noexcept {
  return nodes_[id]->msgs.load(std::memory_order_relaxed);
}

std::uint64_t SyncTracer::bytes_sent(ProcessId id) const noexcept {
  return nodes_[id]->bytes.load(std::memory_order_relaxed);
}

void SyncTracer::on_sync_started(ProcessId id, TimePoint at, View current, View target) {
  PerNode& node = *nodes_[id];
  std::lock_guard<std::mutex> lock(node.mu);
  // First start wins: a pacemaker escalating its target mid-episode
  // (wish for v, then v+1 on timeout) is one episode — the cost of the
  // whole struggle to leave `current` belongs to one span.
  if (node.open) return;
  node.open = true;
  node.span = SyncSpan{};
  node.span.node = id;
  node.span.from_view = current;
  node.span.target_view = target;
  node.span.start = at;
  node.span.end = at;
  node.base_msgs = node.msgs.load(std::memory_order_relaxed);
  node.base_bytes = node.bytes.load(std::memory_order_relaxed);
  node.base_auth = node.auth.snapshot();
}

std::optional<SyncSpan> SyncTracer::on_view_entered(ProcessId id, TimePoint at, View view) {
  PerNode& node = *nodes_[id];
  SyncSpan done;
  {
    std::lock_guard<std::mutex> lock(node.mu);
    if (!node.open) return std::nullopt;
    node.open = false;
    done = node.span;
    done.entered_view = view;
    done.end = at;
    done.msgs_sent = node.msgs.load(std::memory_order_relaxed) - node.base_msgs;
    done.bytes_sent = node.bytes.load(std::memory_order_relaxed) - node.base_bytes;
    done.auth = node.auth.snapshot() - node.base_auth;
    done.completed = true;
    node.last = done;
  }
  {
    std::lock_guard<std::mutex> lock(completed_mu_);
    completed_.push_back(done);
    if (max_spans_ != 0 && completed_.size() > max_spans_) {
      completed_.pop_front();
      ++dropped_;
    }
  }
  return done;
}

std::optional<SyncSpan> SyncTracer::open_span(ProcessId id, TimePoint now) const {
  const PerNode& node = *nodes_[id];
  std::lock_guard<std::mutex> lock(node.mu);
  if (!node.open) return std::nullopt;
  SyncSpan span = node.span;
  // A caller with no safe clock (a TCP status thread) may pass origin;
  // clamp so the live span never reads a negative duration.
  span.end = now < span.start ? span.start : now;
  span.msgs_sent = node.msgs.load(std::memory_order_relaxed) - node.base_msgs;
  span.bytes_sent = node.bytes.load(std::memory_order_relaxed) - node.base_bytes;
  span.auth = node.auth.snapshot() - node.base_auth;
  return span;
}

std::optional<SyncSpan> SyncTracer::last_span(ProcessId id) const {
  const PerNode& node = *nodes_[id];
  std::lock_guard<std::mutex> lock(node.mu);
  return node.last;
}

std::vector<SyncSpan> SyncTracer::completed_spans() const {
  std::lock_guard<std::mutex> lock(completed_mu_);
  return std::vector<SyncSpan>(completed_.begin(), completed_.end());
}

std::size_t SyncTracer::completed_count() const {
  std::lock_guard<std::mutex> lock(completed_mu_);
  return completed_.size();
}

std::uint64_t SyncTracer::dropped_spans() const {
  std::lock_guard<std::mutex> lock(completed_mu_);
  return dropped_;
}

}  // namespace lumiere::obs
