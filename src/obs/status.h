// StatusBoard — lock-free per-node live counters feeding the status
// endpoints (obs/status_server.h).
//
// Writers are the node's own driver thread (cluster observers and
// workload hooks); readers are status-server threads and harness code.
// Everything is a relaxed atomic: a status reply is a point-in-time
// sample, not a linearizable snapshot.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/types.h"
#include "obs/span.h"

namespace lumiere::obs {

/// One node's point-in-time status, as served by the endpoint.
struct NodeStatus {
  ProcessId node = kNoProcess;
  View view = 0;
  std::uint64_t height = 0;             ///< blocks committed
  /// View of the most recently committed block. Unlike `height` (a
  /// process-local counter that restarts at zero), this survives a
  /// crash-restart as a monotone progress proxy — the soak orchestrator
  /// keys liveness on it.
  std::uint64_t last_commit_height = 0;
  bool ever_byzantine = false;          ///< node ever ran a non-honest behavior
  std::uint64_t mempool_depth = 0;      ///< pending requests (last sample)
  std::uint64_t pipeline_queue_depth = 0;///< verify-pipeline frames in flight
  std::uint64_t requests_committed = 0; ///< workload requests completed
  std::uint64_t msgs_sent = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t auth_ops = 0;
  std::optional<SyncSpan> current_sync; ///< open span, live costs
  std::optional<SyncSpan> last_sync;    ///< most recently completed span
};

/// Renders the line-protocol reply body for one STATUS request: one
/// "key value" pair per line, terminated by "END". Spans render as one
/// line each (see README "Observability").
[[nodiscard]] std::string render_status(const NodeStatus& status);

class StatusBoard {
 public:
  explicit StatusBoard(std::uint32_t n) {
    nodes_.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) nodes_.push_back(std::make_unique<PerNode>());
  }

  [[nodiscard]] std::uint32_t n() const noexcept {
    return static_cast<std::uint32_t>(nodes_.size());
  }

  void set_view(ProcessId id, View v) noexcept {
    nodes_[id]->view.store(v, std::memory_order_relaxed);
  }
  void add_commit(ProcessId id) noexcept {
    nodes_[id]->commits.fetch_add(1, std::memory_order_relaxed);
  }
  void set_last_commit(ProcessId id, std::uint64_t view) noexcept {
    nodes_[id]->last_commit.store(view, std::memory_order_relaxed);
  }
  void set_ever_byzantine(ProcessId id) noexcept {
    nodes_[id]->ever_byzantine.store(true, std::memory_order_relaxed);
  }
  void set_mempool_depth(ProcessId id, std::uint64_t depth) noexcept {
    nodes_[id]->mempool.store(depth, std::memory_order_relaxed);
  }
  void add_request_committed(ProcessId id) noexcept {
    nodes_[id]->requests.fetch_add(1, std::memory_order_relaxed);
  }

  [[nodiscard]] View view(ProcessId id) const noexcept {
    return nodes_[id]->view.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t height(ProcessId id) const noexcept {
    return nodes_[id]->commits.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t mempool_depth(ProcessId id) const noexcept {
    return nodes_[id]->mempool.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t requests_committed(ProcessId id) const noexcept {
    return nodes_[id]->requests.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t last_commit(ProcessId id) const noexcept {
    return nodes_[id]->last_commit.load(std::memory_order_relaxed);
  }
  [[nodiscard]] bool ever_byzantine(ProcessId id) const noexcept {
    return nodes_[id]->ever_byzantine.load(std::memory_order_relaxed);
  }

 private:
  struct PerNode {
    std::atomic<View> view{0};
    std::atomic<std::uint64_t> commits{0};
    std::atomic<std::uint64_t> last_commit{0};
    std::atomic<bool> ever_byzantine{false};
    std::atomic<std::uint64_t> mempool{0};
    std::atomic<std::uint64_t> requests{0};
  };
  std::vector<std::unique_ptr<PerNode>> nodes_;
};

}  // namespace lumiere::obs
