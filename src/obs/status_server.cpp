#include "obs/status_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <string>

namespace lumiere::obs {

StatusServer::StatusServer(std::uint16_t port, SnapshotFn snapshot)
    : port_(port), snapshot_(std::move(snapshot)) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) throw std::runtime_error("status endpoint: socket() failed");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port_);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("status endpoint: bind() failed on port " + std::to_string(port_) +
                             " (in use?)");
  }
  if (::listen(listen_fd_, 8) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("status endpoint: listen() failed");
  }
  thread_ = std::thread([this] { serve(); });
}

StatusServer::~StatusServer() {
  stop_.store(true, std::memory_order_relaxed);
  if (thread_.joinable()) thread_.join();
  if (listen_fd_ >= 0) ::close(listen_fd_);
}

void StatusServer::serve() {
  while (!stop_.load(std::memory_order_relaxed)) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, /*timeout_ms=*/50);
    if (ready <= 0) continue;  // timeout (re-check stop) or EINTR
    const int client = ::accept(listen_fd_, nullptr, nullptr);
    if (client < 0) continue;
    handle_client(client);
    ::close(client);
  }
}

namespace {

bool write_all(int fd, const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n <= 0) return false;
    off += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

void StatusServer::handle_client(int fd) {
  // One client at a time, blocking reads bounded by a poll: the endpoint
  // is a diagnostics port, not a data plane.
  std::string buffer;
  char chunk[512];
  while (!stop_.load(std::memory_order_relaxed)) {
    const std::size_t newline = buffer.find('\n');
    if (newline != std::string::npos) {
      std::string line = buffer.substr(0, newline);
      buffer.erase(0, newline + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (line == "STATUS") {
        if (!write_all(fd, render_status(snapshot_()))) return;
      } else if (line == "PING") {
        if (!write_all(fd, "PONG\n")) return;
      } else if (line == "QUIT") {
        return;
      } else {
        if (!write_all(fd, "ERR unknown command\n")) return;
      }
      continue;
    }
    pollfd pfd{fd, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, /*timeout_ms=*/50);
    if (ready < 0) return;
    if (ready == 0) continue;  // re-check stop
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) return;  // peer closed (or error)
    buffer.append(chunk, static_cast<std::size_t>(n));
    if (buffer.size() > 4096) return;  // a diagnostics client never needs more
  }
}

}  // namespace lumiere::obs
