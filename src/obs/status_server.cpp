#include "obs/status_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <string>

namespace lumiere::obs {

StatusServer::StatusServer(std::uint16_t port, SnapshotFn snapshot)
    : StatusServer(port, std::move(snapshot), AdminHooks{}) {
  admin_enabled_ = false;
}

StatusServer::StatusServer(std::uint16_t port, SnapshotFn snapshot, AdminHooks admin)
    : port_(port),
      snapshot_(std::move(snapshot)),
      admin_(std::move(admin)),
      admin_enabled_(admin_.submit != nullptr) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) throw std::runtime_error("status endpoint: socket() failed");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port_);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("status endpoint: bind() failed on port " + std::to_string(port_) +
                             " (in use?)");
  }
  if (::listen(listen_fd_, 8) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("status endpoint: listen() failed");
  }
  thread_ = std::thread([this] { serve(); });
}

StatusServer::~StatusServer() {
  stop_.store(true, std::memory_order_relaxed);
  if (thread_.joinable()) thread_.join();
  reap_sessions(/*all=*/true);
  if (listen_fd_ >= 0) ::close(listen_fd_);
}

void StatusServer::reap_sessions(bool all) {
  std::vector<std::unique_ptr<Session>> finished;
  {
    std::unique_lock<std::mutex> lock(sessions_mutex_);
    for (auto it = sessions_.begin(); it != sessions_.end();) {
      if (all || (*it)->done.load(std::memory_order_acquire)) {
        finished.push_back(std::move(*it));
        it = sessions_.erase(it);
      } else {
        ++it;
      }
    }
  }
  // Join outside the lock: a session marks itself done as its last act,
  // so a `done` thread finishes immediately; with `all` set, stop_ is
  // already true and every session exits within one 50ms poll tick.
  for (auto& session : finished) {
    if (session->thread.joinable()) session->thread.join();
  }
}

void StatusServer::serve() {
  while (!stop_.load(std::memory_order_relaxed)) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, /*timeout_ms=*/50);
    reap_sessions(/*all=*/false);
    if (ready <= 0) continue;  // timeout (re-check stop) or EINTR
    const int client = ::accept(listen_fd_, nullptr, nullptr);
    if (client < 0) continue;
    auto session = std::make_unique<Session>();
    Session* raw = session.get();
    {
      std::unique_lock<std::mutex> lock(sessions_mutex_);
      sessions_.push_back(std::move(session));
    }
    raw->thread = std::thread([this, raw, client] {
      handle_client(client);
      ::close(client);
      raw->done.store(true, std::memory_order_release);
    });
  }
}

namespace {

bool write_all(int fd, const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n <= 0) return false;
    off += static_cast<std::size_t>(n);
  }
  return true;
}

bool write_line(int fd, std::string data) {
  if (data.empty() || data.back() != '\n') data.push_back('\n');
  return write_all(fd, data);
}

}  // namespace

void StatusServer::handle_client(int fd) {
  std::string buffer;
  char chunk[512];
  bool authed = admin_.token.empty();  // no token configured -> no gate
  while (!stop_.load(std::memory_order_relaxed)) {
    const std::size_t newline = buffer.find('\n');
    if (newline != std::string::npos) {
      std::string line = buffer.substr(0, newline);
      buffer.erase(0, newline + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (line == "STATUS") {
        if (!write_all(fd, render_status(snapshot_()))) return;
      } else if (line == "PING") {
        if (!write_all(fd, "PONG\n")) return;
      } else if (line == "QUIT") {
        return;
      } else if (line.rfind("AUTH", 0) == 0) {
        if (!admin_enabled_) {
          if (!write_all(fd, "ERR admin disabled\n")) return;
        } else if (line == "AUTH " + admin_.token && !admin_.token.empty()) {
          authed = true;
          if (!write_all(fd, "OK\n")) return;
        } else {
          if (!write_all(fd, "ERR bad token\n")) return;
        }
      } else {
        std::string error;
        const std::optional<AdminCommand> cmd = parse_admin(line, error);
        if (!cmd.has_value()) {
          const bool known_verb = error != "unknown admin command";
          if (!write_all(fd, known_verb ? "ERR " + error + "\n" : "ERR unknown command\n")) {
            return;
          }
        } else if (!admin_enabled_) {
          if (!write_all(fd, "ERR admin disabled\n")) return;
        } else if (!authed) {
          if (!write_all(fd, "ERR auth required\n")) return;
        } else {
          const std::optional<std::string> reply = admin_.submit(*cmd);
          if (!write_line(fd, reply.value_or("ERR timeout"))) return;
        }
      }
      continue;
    }
    pollfd pfd{fd, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, /*timeout_ms=*/50);
    if (ready < 0) return;
    if (ready == 0) continue;  // re-check stop
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) return;  // peer closed (or error)
    buffer.append(chunk, static_cast<std::size_t>(n));
    if (buffer.size() > 4096) return;  // a diagnostics client never needs more
  }
}

}  // namespace lumiere::obs
