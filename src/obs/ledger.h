// ComplexityLedger — turns raw SyncSpans into the paper-facing numbers.
//
// Lumiere's headline claim is O(n) expected / O(n^2) worst-case view
// synchronization (Lewis-Pye's lower bound is the quadratic anchor). The
// ledger aggregates per-episode spans into distributions (mean/p50/p95/
// max of messages, bytes, authenticator ops, duration) and fits the
// growth exponent of cost against n with a least-squares log-log fit —
// the slope bench_sync_complexity reports next to the 1.0/2.0 theory
// lines.
//
// Exports: one-JSON-object-per-span JSONL (jq-friendly) and the Chrome
// trace-event format (open chrome://tracing or https://ui.perfetto.dev
// and load the file; pid = cluster, tid = node, one "X" slice per span).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "obs/span.h"

namespace lumiere::obs {

/// Distribution of one scalar cost over a set of spans.
struct CostDist {
  std::uint64_t count = 0;
  double mean = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double max = 0.0;
};

/// Per-sync cost distributions over a set of completed spans.
struct LedgerSummary {
  std::uint64_t spans = 0;
  CostDist msgs;
  CostDist bytes;
  CostDist auth_ops;
  CostDist duration_us;
};

class ComplexityLedger {
 public:
  /// Aggregates completed spans (open spans are skipped).
  [[nodiscard]] static LedgerSummary summarize(const std::vector<SyncSpan>& spans);

  /// Least-squares slope of log(cost) against log(n) over (n, cost)
  /// points — the measured growth exponent (1.0 = linear, 2.0 =
  /// quadratic). Points with n or cost <= 0 are skipped; returns 0 when
  /// fewer than two usable points remain.
  [[nodiscard]] static double fit_exponent(
      const std::vector<std::pair<double, double>>& n_vs_cost);

  /// One JSON object per completed span, `label` echoed into every line
  /// (bench rows stamp pacemaker/n here).
  static void write_jsonl(std::ostream& out, const std::string& label,
                          const std::vector<SyncSpan>& spans);

  /// Chrome trace-event JSON (one complete "X" event per span; ts/dur in
  /// microseconds, which is exactly one simulator tick).
  static void write_chrome_trace(std::ostream& out, const std::vector<SyncSpan>& spans);
};

}  // namespace lumiere::obs
