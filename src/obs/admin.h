// The runtime adversary control plane: admin commands over the status
// endpoint (obs/status_server.h), applied on the node's driver thread.
//
// A status-server session thread must never touch the Node or its
// transport adapter — both are thread-confined to the node's driver. The
// AdminGate is the hand-off: the session thread parses the command,
// submits it and blocks (bounded) for the reply; the driver drains the
// gate once per pacing iteration (RealtimeDriver::set_pump) and applies
// each command with full ownership of the protocol stack.
//
// Wire protocol (one line per command, after AUTH <token>):
//   BEHAVIOR <name>      flip the live node through adversary::make_behavior
//   DROP <peer> <p>      drop outbound frames to <peer> with probability p
//   DELAY <peer> <ms>    delay outbound frames to <peer> by ms milliseconds
//   ISOLATE              cut this node from every peer (it keeps running)
//   HEAL                 clear isolation, drops, delays and partition cuts
//   CRASH                abrupt _exit — standalone lumiere_node only
//   LEDGER               dump the committed ledger (runtime/spec_io.h format)
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <optional>
#include <string>

#include "common/time.h"
#include "common/types.h"

namespace lumiere::obs {

enum class AdminKind : std::uint8_t {
  kBehavior,
  kDrop,
  kDelay,
  kIsolate,
  kHeal,
  kCrash,
  kLedger,
};

[[nodiscard]] const char* to_string(AdminKind kind);

struct AdminCommand {
  AdminKind kind = AdminKind::kHeal;
  ProcessId peer = kNoProcess;   ///< kDrop / kDelay target link
  double probability = 0.0;      ///< kDrop
  Duration delay = Duration::zero();  ///< kDelay
  std::string behavior;          ///< kBehavior (adversary::make_behavior name)
};

/// Parses one admin line ("BEHAVIOR equivocator", "DROP 2 0.25", ...).
/// Returns nullopt with `error` set on malformed input; validation that
/// needs runtime state (peer range, known behavior names) happens at
/// apply time on the driver thread.
[[nodiscard]] std::optional<AdminCommand> parse_admin(const std::string& line,
                                                      std::string& error);

/// The session-thread -> driver-thread hand-off queue. Thread-safe.
class AdminGate {
 public:
  /// Submits `command` and blocks until the driver thread replies or
  /// `timeout` elapses (the node may be crashed or its driver paused
  /// between run_for slices — the session must not hang forever).
  /// Returns the reply line(s), or nullopt on timeout.
  [[nodiscard]] std::optional<std::string> submit(const AdminCommand& command,
                                                  Duration timeout);

  /// Driver thread: applies every queued command through `apply` (which
  /// returns the reply text) and wakes the waiting sessions. Cheap when
  /// the queue is empty (one relaxed load, no lock).
  void drain(const std::function<std::string(const AdminCommand&)>& apply);

  /// Commands applied so far (diagnostics / tests).
  [[nodiscard]] std::uint64_t applied() const noexcept {
    return applied_.load(std::memory_order_relaxed);
  }

 private:
  struct Pending {
    AdminCommand command;
    std::string reply;
    bool done = false;
  };

  std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<Pending*> queue_;
  std::atomic<std::uint64_t> queued_{0};
  std::atomic<std::uint64_t> applied_{0};
};

}  // namespace lumiere::obs
