#include "obs/status.h"

#include <sstream>

namespace lumiere::obs {

namespace {

void render_span(std::ostringstream& out, const char* key, const SyncSpan& span) {
  out << key << " from=" << span.from_view << " target=" << span.target_view
      << " entered=" << span.entered_view << " msgs=" << span.msgs_sent
      << " bytes=" << span.bytes_sent << " auth_ops=" << span.auth_ops()
      << " dur_us=" << span.duration().ticks() << "\n";
}

}  // namespace

std::string render_status(const NodeStatus& status) {
  std::ostringstream out;
  out << "node " << status.node << "\n";
  out << "view " << status.view << "\n";
  out << "height " << status.height << "\n";
  out << "last_commit_height " << status.last_commit_height << "\n";
  out << "ever_byzantine " << (status.ever_byzantine ? 1 : 0) << "\n";
  out << "mempool_depth " << status.mempool_depth << "\n";
  out << "pipeline_queue_depth " << status.pipeline_queue_depth << "\n";
  out << "requests_committed " << status.requests_committed << "\n";
  out << "msgs_sent " << status.msgs_sent << "\n";
  out << "bytes_sent " << status.bytes_sent << "\n";
  out << "auth_ops " << status.auth_ops << "\n";
  if (status.current_sync) render_span(out, "sync_current", *status.current_sync);
  if (status.last_sync) render_span(out, "sync_last", *status.last_sync);
  out << "END\n";
  return out.str();
}

}  // namespace lumiere::obs
