// StatusServer — one node's live status endpoint (TCP transport only).
//
// A tiny line-protocol server on 127.0.0.1:<port>, one background thread
// per node, deliberately independent of the protocol stack: it calls a
// snapshot closure and formats the reply, nothing more, so a wedged
// consensus core still answers STATUS.
//
// Protocol (newline-terminated, one command per line):
//   STATUS  -> "key value" lines (see obs/status.h), terminated by "END"
//   PING    -> "PONG"
//   QUIT    -> closes the connection
//   other   -> "ERR unknown command"
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <thread>

#include "obs/status.h"

namespace lumiere::obs {

class StatusServer {
 public:
  using SnapshotFn = std::function<NodeStatus()>;

  /// Binds 127.0.0.1:`port` and starts the serving thread. Throws
  /// std::runtime_error when the port is taken.
  StatusServer(std::uint16_t port, SnapshotFn snapshot);

  /// Joins the serving thread and closes the socket.
  ~StatusServer();

  StatusServer(const StatusServer&) = delete;
  StatusServer& operator=(const StatusServer&) = delete;

  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

 private:
  void serve();
  void handle_client(int fd);

  std::uint16_t port_;
  SnapshotFn snapshot_;
  int listen_fd_ = -1;
  std::atomic<bool> stop_{false};
  std::thread thread_;
};

}  // namespace lumiere::obs
