// StatusServer — one node's live status + admin endpoint (TCP transport
// only).
//
// A tiny line-protocol server on 127.0.0.1:<port>, deliberately
// independent of the protocol stack: it calls a snapshot closure and
// formats the reply, so a wedged consensus core still answers STATUS.
// Each accepted client gets its own session thread; sessions poll the
// stop flag, so a client that disconnects mid-line or holds its socket
// open across shutdown can neither leak a thread nor stall the server's
// destructor.
//
// Protocol (newline-terminated, one command per line):
//   STATUS        -> "key value" lines (see obs/status.h), ending "END"
//   PING          -> "PONG"
//   QUIT          -> closes the connection
//   AUTH <token>  -> "OK" (unlocks admin for this session) or "ERR ..."
//   admin verbs   -> see obs/admin.h; require AUTH when a token is set,
//                    answer "ERR admin disabled" when no hooks are wired
//   other         -> "ERR unknown command"
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "obs/admin.h"
#include "obs/status.h"

namespace lumiere::obs {

class StatusServer {
 public:
  using SnapshotFn = std::function<NodeStatus()>;

  /// Admin control plane wiring. `submit` hands a parsed command to the
  /// node's driver thread and blocks for the reply (see AdminGate);
  /// nullopt means the driver never answered (crashed / wedged) and the
  /// session reports "ERR timeout".
  struct AdminHooks {
    std::string token;  ///< required AUTH token; empty = no auth needed
    std::function<std::optional<std::string>(const AdminCommand&)> submit;
  };

  /// Binds 127.0.0.1:`port` and starts the accept thread. Throws
  /// std::runtime_error when the port is taken.
  StatusServer(std::uint16_t port, SnapshotFn snapshot);
  StatusServer(std::uint16_t port, SnapshotFn snapshot, AdminHooks admin);

  /// Joins the accept thread and every session thread, closes all fds.
  ~StatusServer();

  StatusServer(const StatusServer&) = delete;
  StatusServer& operator=(const StatusServer&) = delete;

  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

 private:
  struct Session {
    std::thread thread;
    std::atomic<bool> done{false};
  };

  void serve();
  void handle_client(int fd);
  /// Joins sessions whose threads have finished. Called from the accept
  /// loop so a long-lived server does not accumulate dead threads.
  void reap_sessions(bool all);

  std::uint16_t port_;
  SnapshotFn snapshot_;
  AdminHooks admin_;
  bool admin_enabled_ = false;
  int listen_fd_ = -1;
  std::atomic<bool> stop_{false};
  std::mutex sessions_mutex_;
  std::vector<std::unique_ptr<Session>> sessions_;
  std::thread thread_;
};

}  // namespace lumiere::obs
