#include "obs/ledger.h"

#include <algorithm>
#include <cmath>
#include <ostream>

namespace lumiere::obs {

namespace {

CostDist dist_of(std::vector<double> values) {
  CostDist d;
  d.count = values.size();
  if (values.empty()) return d;
  std::sort(values.begin(), values.end());
  double sum = 0.0;
  for (const double v : values) sum += v;
  d.mean = sum / static_cast<double>(values.size());
  const auto quantile = [&](double q) {
    const double pos = q * static_cast<double>(values.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(pos);
    const std::size_t hi = std::min(lo + 1, values.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    return values[lo] * (1.0 - frac) + values[hi] * frac;
  };
  d.p50 = quantile(0.50);
  d.p95 = quantile(0.95);
  d.max = values.back();
  return d;
}

}  // namespace

LedgerSummary ComplexityLedger::summarize(const std::vector<SyncSpan>& spans) {
  std::vector<double> msgs;
  std::vector<double> bytes;
  std::vector<double> auth;
  std::vector<double> duration;
  msgs.reserve(spans.size());
  bytes.reserve(spans.size());
  auth.reserve(spans.size());
  duration.reserve(spans.size());
  LedgerSummary summary;
  for (const SyncSpan& span : spans) {
    if (!span.completed) continue;
    ++summary.spans;
    msgs.push_back(static_cast<double>(span.msgs_sent));
    bytes.push_back(static_cast<double>(span.bytes_sent));
    auth.push_back(static_cast<double>(span.auth_ops()));
    duration.push_back(static_cast<double>(span.duration().ticks()));
  }
  summary.msgs = dist_of(std::move(msgs));
  summary.bytes = dist_of(std::move(bytes));
  summary.auth_ops = dist_of(std::move(auth));
  summary.duration_us = dist_of(std::move(duration));
  return summary;
}

double ComplexityLedger::fit_exponent(const std::vector<std::pair<double, double>>& n_vs_cost) {
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  std::size_t k = 0;
  for (const auto& [n, cost] : n_vs_cost) {
    if (!(n > 0.0) || !(cost > 0.0)) continue;
    const double x = std::log(n);
    const double y = std::log(cost);
    sx += x;
    sy += y;
    sxx += x * x;
    sxy += x * y;
    ++k;
  }
  if (k < 2) return 0.0;
  const double denom = static_cast<double>(k) * sxx - sx * sx;
  if (denom == 0.0) return 0.0;
  return (static_cast<double>(k) * sxy - sx * sy) / denom;
}

void ComplexityLedger::write_jsonl(std::ostream& out, const std::string& label,
                                   const std::vector<SyncSpan>& spans) {
  for (const SyncSpan& span : spans) {
    if (!span.completed) continue;
    out << "{\"label\":\"" << label << "\",\"node\":" << span.node
        << ",\"from_view\":" << span.from_view << ",\"target_view\":" << span.target_view
        << ",\"entered_view\":" << span.entered_view << ",\"start_us\":" << span.start.ticks()
        << ",\"end_us\":" << span.end.ticks() << ",\"msgs\":" << span.msgs_sent
        << ",\"bytes\":" << span.bytes_sent << ",\"signs\":" << span.auth.signs
        << ",\"shares\":" << span.auth.shares << ",\"verifies\":" << span.auth.verifies
        << ",\"share_verifies\":" << span.auth.share_verifies
        << ",\"aggregate_verifies\":" << span.auth.aggregate_verifies
        << ",\"aggregates_built\":" << span.auth.aggregates_built
        << ",\"auth_ops\":" << span.auth_ops() << "}\n";
  }
}

void ComplexityLedger::write_chrome_trace(std::ostream& out,
                                          const std::vector<SyncSpan>& spans) {
  out << "{\"traceEvents\":[";
  bool first = true;
  for (const SyncSpan& span : spans) {
    if (!span.completed) continue;
    if (!first) out << ",";
    first = false;
    // dur is clamped to >= 1 so zero-length spans stay visible slices.
    const std::int64_t dur = std::max<std::int64_t>(1, span.duration().ticks());
    out << "{\"name\":\"sync v" << span.from_view << "->" << span.entered_view
        << "\",\"cat\":\"view-sync\",\"ph\":\"X\",\"pid\":0,\"tid\":" << span.node
        << ",\"ts\":" << span.start.ticks() << ",\"dur\":" << dur << ",\"args\":{\"msgs\":"
        << span.msgs_sent << ",\"bytes\":" << span.bytes_sent << ",\"auth_ops\":"
        << span.auth_ops() << ",\"target_view\":" << span.target_view << "}}";
  }
  out << "],\"displayTimeUnit\":\"ms\"}\n";
}

}  // namespace lumiere::obs
