// Lumiere (Section 4 / Algorithm 1): the paper's contribution.
//
// Epochs of 10n views; leader pairs ordered by per-segment permutations
// with the last leader of each epoch bridging into the next
// (ReversePermutationSchedule). Within epochs, Fever-style light
// synchronization runs: initial (even) views are entered at lc == c_v and
// announced to the leader; f+1 view messages aggregate into a VC; QCs,
// VCs and certificates bump lagging clocks forward. Epoch boundaries are
// guarded by the success criterion: once 2f+1 leaders each produced all
// 10 of their QCs in an epoch, processors treat the next epoch view as a
// standard initial view and the Theta(n^2) epoch synchronization is
// skipped; otherwise they pause at the boundary, wait Delta, and launch
// the heavy exchange (epoch-view messages; f+1 observed = TC, 2f+1 = EC).
//
// Honest leaders only produce a QC within Gamma/2 - 2*Delta of sending
// the VC for the view (or the QC for the previous view) — the discipline
// that makes every post-GST honest QC *shrink* the (f+1)-st honest gap
// (Lemma 5.12). Gamma = 2(x+2)*Delta.
//
// Implementation notes (documented deviations / disambiguations):
//  * "Upon first seeing lc == c_v and <condition>" triggers are treated
//    as edge-triggered on the conjunction becoming true (e.g. the
//    success flag may flip while parked at the boundary).
//  * A processor sends its view-v message when it enters initial view v,
//    whatever the entry route (clock arrival, VC, QC bump landing,
//    success path, EC) — the uniform policy costs at most one O(kappa)
//    message per processor per initial view and guarantees the leader
//    can always form a VC (needed for the QC-production deadline anchor).
//  * The leader defers its proposal for an initial view until it has
//    sent the VC for that view, so the deadline anchor always exists
//    when votes complete (PacemakerHooks::may_propose).
//  * Catch-up view messages (Algorithm 1 lines 18/38/46) are capped at
//    the most recent 10n views; older VCs could no longer affect any of
//    the paper's within-epoch arguments.
//  * TCs and ECs are local observations of f+1 / 2f+1 broadcast
//    epoch-view messages (as in Algorithm 1), not separate certificate
//    messages.
#pragma once

#include <map>
#include <optional>
#include <set>

#include "core/epoch_math.h"
#include "core/reverse_permutation_schedule.h"
#include "core/success_tracker.h"
#include "crypto/authenticator.h"
#include "pacemaker/messages.h"
#include "pacemaker/pacemaker.h"

namespace lumiere::core {

class LumierePacemaker final : public pacemaker::Pacemaker {
 public:
  struct Options {
    /// Per-view budget Gamma; zero means the paper default 2(x+2)*Delta.
    Duration gamma = Duration::zero();
    /// Leader-schedule seed (shared by the whole cluster).
    std::uint64_t schedule_seed = 0;
    /// Disable the QC-production deadline (ablation only; the paper's
    /// protocol requires it for Lemma 5.12).
    bool enforce_qc_deadline = true;
    /// Disable the Delta-wait before epoch-view messages (ablation only).
    bool delta_wait_before_epoch_msg = true;
  };

  LumierePacemaker(const ProtocolParams& params, ProcessId self, crypto::Signer signer,
                   pacemaker::PacemakerWiring wiring, Options options);

  void start() override;
  void on_message(ProcessId from, const MessagePtr& msg) override;
  void on_qc(const consensus::QuorumCert& qc) override;
  void on_local_qc_formed(const consensus::QuorumCert& qc) override;
  [[nodiscard]] ProcessId leader_of(View v) const override { return schedule_.leader_of(v); }
  [[nodiscard]] bool may_form_qc(View v) const override;
  [[nodiscard]] bool may_propose(View v) const override;
  [[nodiscard]] View current_view() const override { return view_; }
  [[nodiscard]] const char* name() const override { return "lumiere"; }

  [[nodiscard]] Epoch current_epoch() const noexcept { return epoch_; }
  [[nodiscard]] Duration gamma() const noexcept { return math_.gamma(); }
  [[nodiscard]] const EpochMath& math() const noexcept { return math_; }
  [[nodiscard]] const SuccessTracker& success_tracker() const noexcept { return success_; }
  /// True while parked (clock paused) at an epoch boundary.
  [[nodiscard]] bool parked() const noexcept { return parked_view_.has_value(); }
  /// Number of epoch-view messages this processor has broadcast (heavy
  /// synchronizations it participated in) — the §3.5 savings metric.
  [[nodiscard]] std::uint64_t epoch_msgs_sent() const noexcept { return epoch_msg_sent_.size(); }

 private:
  // -- clock-driven entry ---------------------------------------------
  void process_clock();
  void arm_boundary_alarm();
  void handle_epoch_boundary(View w);
  void park_at(View w);
  void unpark();
  void enter_initial(View w);

  // -- state updates ---------------------------------------------------
  void set_view(View v, Epoch e);
  void send_view_msg(View v);
  void send_epoch_msg(View v);
  void catch_up_view_msgs(View below);

  // -- message handlers --------------------------------------------------
  void handle_view_share(ProcessId from, const pacemaker::ViewMsg& msg);
  void handle_vc(const pacemaker::VcMsg& msg);
  void handle_epoch_share(const pacemaker::EpochViewMsg& msg);
  void handle_tc(View v);  ///< f+1 epoch-view messages observed
  void handle_ec(View v);  ///< 2f+1 epoch-view messages observed
  void on_success_flip(Epoch e);

  Options options_;
  ReversePermutationSchedule schedule_;
  EpochMath math_;
  SuccessTracker success_;
  Duration qc_deadline_budget_;  // Gamma/2 - 2*Delta

  View view_ = -1;
  Epoch epoch_ = -1;
  sim::AlarmId boundary_alarm_ = 0;

  // Parking state at an epoch boundary (Algorithm 1 lines 9-11).
  std::optional<View> parked_view_;
  sim::EventHandle delta_wait_;

  // View-message dissemination and VC formation.
  std::set<View> view_msg_sent_;
  std::map<View, crypto::QuorumAggregator> view_aggs_;
  std::map<View, TimePoint> vc_sent_at_;

  // Epoch-view message dissemination; TC/EC are local count crossings.
  std::set<View> epoch_msg_sent_;
  std::map<View, crypto::QuorumAggregator> epoch_aggs_;
  std::set<View> tc_seen_;
  std::set<View> ec_seen_;

  // Deadline anchors for QCs this node produces as leader.
  std::map<View, TimePoint> local_qc_sent_at_;
};

}  // namespace lumiere::core
