#include "core/lumiere.h"

#include "common/log.h"

namespace lumiere::core {

using pacemaker::EpochViewMsg;
using pacemaker::SyncCert;
using pacemaker::VcMsg;
using pacemaker::ViewMsg;

LumierePacemaker::LumierePacemaker(const ProtocolParams& params, ProcessId self,
                                   crypto::Signer signer, pacemaker::PacemakerWiring wiring,
                                   Options options)
    : Pacemaker(params, self, signer, std::move(wiring)),
      options_(options),
      schedule_(params.n, options.schedule_seed),
      math_(params.n, options.gamma > Duration::zero()
                          ? options.gamma
                          : params.delta_cap * (2 * (params.x + 2))),
      success_(
          params, &math_, [this](View v) { return schedule_.leader_of(v); },
          [this](Epoch e) { on_success_flip(e); }),
      qc_deadline_budget_(math_.gamma() / 2 - params.delta_cap * 2) {
  LUMIERE_ASSERT_MSG(qc_deadline_budget_ > Duration::zero(),
                     "Gamma too small: Gamma/2 - 2*Delta must be positive");
}

void LumierePacemaker::start() { process_clock(); }

// ---------------------------------------------------------------------------
// Clock-driven entry
// ---------------------------------------------------------------------------

void LumierePacemaker::arm_boundary_alarm() {
  clock().cancel_alarm(boundary_alarm_);
  const Duration r = clock().reading();
  View next = math_.view_at(r) + 1;
  if (next % 2 != 0) ++next;  // only initial (even) views are clock-entered
  boundary_alarm_ = clock().set_alarm(math_.view_time(next), [this] { process_clock(); });
}

void LumierePacemaker::process_clock() {
  const Duration r = clock().reading();
  const View w = math_.view_at(r);
  if (math_.at_boundary(r) && EpochMath::is_initial(w) && w > view_) {
    if (math_.is_epoch_view(w)) {
      handle_epoch_boundary(w);
    } else if (epoch_ == math_.epoch_of(w)) {
      // Algorithm 1 line 28: "Upon lc(p) == c_v for v initial and
      // epoch(p) == E(v)".
      enter_initial(w);
    }
  }
  arm_boundary_alarm();
}

void LumierePacemaker::handle_epoch_boundary(View w) {
  const Epoch prev = math_.epoch_of(w) - 1;
  if (success_.success(prev)) {
    // Line 13: the previous epoch met the success criterion — treat V(e)
    // as a standard initial view; no heavy synchronization.
    set_view(w, math_.epoch_of(w));
    send_view_msg(w);
  } else {
    // Line 9: park (pause) and, Delta later, launch the heavy exchange.
    park_at(w);
  }
}

void LumierePacemaker::park_at(View w) {
  if (parked_view_ == w) return;
  parked_view_ = w;
  note_sync_started(w);
  clock().pause();
  delta_wait_.cancel();
  if (options_.delta_wait_before_epoch_msg) {
    // Line 11: "If local clock is still paused time Delta after pausing,
    // send an epoch view v message to all processors." The wait absorbs
    // the race where QCs from the tail of the previous epoch are still in
    // flight (final complexity of Section 3.5).
    delta_wait_ = sim().schedule_after(params_.delta_cap, [this, w] {
      if (parked_view_ == w) send_epoch_msg(w);
    });
  } else {
    send_epoch_msg(w);
  }
}

void LumierePacemaker::unpark() {
  if (!parked_view_) return;
  parked_view_.reset();
  delta_wait_.cancel();
  clock().unpause();
}

void LumierePacemaker::enter_initial(View w) {
  set_view(w, math_.epoch_of(w));
  send_view_msg(w);
}

// ---------------------------------------------------------------------------
// State updates
// ---------------------------------------------------------------------------

void LumierePacemaker::set_view(View v, Epoch e) {
  if (v <= view_) return;
  LUMIERE_ASSERT_MSG(e == math_.epoch_of(v), "Lemma 5.1 wiring: E(view) == epoch");
  const Epoch old_epoch = epoch_;
  view_ = v;
  epoch_ = e;
  if (e != old_epoch) {
    // Epoch changed: state keyed below the previous epoch can no longer
    // influence the protocol (certificates for it are stale).
    const View horizon = math_.epoch_first_view(e) - math_.views_per_epoch();
    view_aggs_.erase(view_aggs_.begin(), view_aggs_.lower_bound(horizon));
    vc_sent_at_.erase(vc_sent_at_.begin(), vc_sent_at_.lower_bound(horizon));
    local_qc_sent_at_.erase(local_qc_sent_at_.begin(), local_qc_sent_at_.lower_bound(horizon));
    epoch_aggs_.erase(epoch_aggs_.begin(), epoch_aggs_.lower_bound(horizon));
    while (!view_msg_sent_.empty() && *view_msg_sent_.begin() < horizon) {
      view_msg_sent_.erase(view_msg_sent_.begin());
    }
  }
  notify_enter_view(v);
}

void LumierePacemaker::send_view_msg(View v) {
  if (!EpochMath::is_initial(v)) return;
  if (view_msg_sent_.contains(v)) return;
  view_msg_sent_.insert(v);
  note_sync_started(v);
  send_to(leader_of(v),
          std::make_shared<ViewMsg>(
              v, crypto::threshold_share(signer_, pacemaker::view_msg_statement(v))));
}

void LumierePacemaker::send_epoch_msg(View v) {
  if (epoch_msg_sent_.contains(v)) return;
  epoch_msg_sent_.insert(v);
  broadcast(std::make_shared<EpochViewMsg>(
      v, crypto::threshold_share(signer_, pacemaker::epoch_msg_statement(v))));
}

void LumierePacemaker::catch_up_view_msgs(View below) {
  // Lines 18 / 38 / 46: "For each initial view v' with
  // view(p) <= v' < v send a view v' message to lead(v') if not already
  // sent." Capped at one epoch's worth of views — see header.
  View lo = std::max<View>(view_, 0);
  if (below - lo > math_.views_per_epoch()) lo = below - math_.views_per_epoch();
  if (lo % 2 != 0) ++lo;
  for (View v = lo; v < below; v += 2) send_view_msg(v);
}

// ---------------------------------------------------------------------------
// Message handlers
// ---------------------------------------------------------------------------

void LumierePacemaker::handle_view_share(ProcessId /*from*/, const ViewMsg& msg) {
  const View v = msg.view();
  // Line 32: "If p == lead(v) for initial view v >= view(p): upon first
  // seeing view v messages from f+1 distinct processors: form a VC for
  // view v and send to all."
  if (!EpochMath::is_initial(v) || leader_of(v) != self_) return;
  if (vc_sent_at_.contains(v) || v < view_) return;
  auto [it, inserted] = view_aggs_.try_emplace(v, auth(), pacemaker::view_msg_statement(v),
                                               params_.small_quorum());
  (void)inserted;
  if (!it->second.add(msg.share())) return;
  if (it->second.complete() && v >= view_) {
    vc_sent_at_.emplace(v, sim().now());
    broadcast(std::make_shared<VcMsg>(SyncCert(v, it->second.aggregate())));
    // The QC-production deadline for v is now anchored; the proposal gate
    // (may_propose) is open.
    poke_propose(v);
  }
}

void LumierePacemaker::handle_vc(const VcMsg& msg) {
  const SyncCert& cert = msg.cert();
  const View v = cert.view();
  // Line 36: "Upon first seeing a VC for initial view v > view(p)".
  if (!EpochMath::is_initial(v) || v <= view_) return;
  if (!cert.verify(auth(), params_.small_quorum(), &pacemaker::view_msg_statement)) return;
  // A VC for a view above ours releases an epoch-boundary pause
  // (the parked view is <= v here since view(p) < v).
  unpark();
  if (clock().reading() < math_.view_time(v)) {
    catch_up_view_msgs(v);                  // line 38
    clock().bump_to(math_.view_time(v));    // line 39
  }
  set_view(v, math_.epoch_of(v));           // line 40
  send_view_msg(v);
  process_clock();
}

void LumierePacemaker::handle_epoch_share(const EpochViewMsg& msg) {
  const View v = msg.view();
  if (!math_.is_epoch_view(v)) return;
  if (math_.epoch_of(v) < epoch_) return;  // stale epoch; cannot matter
  auto [it, inserted] = epoch_aggs_.try_emplace(v, auth(), pacemaker::epoch_msg_statement(v),
                                                params_.quorum());
  (void)inserted;
  if (!it->second.add(msg.share())) return;
  // TC = f+1 epoch-view messages observed; EC = 2f+1 (Section 4). Both
  // are local count crossings over the same broadcast stream.
  if (it->second.count() >= params_.small_quorum() && !tc_seen_.contains(v)) {
    tc_seen_.insert(v);
    handle_tc(v);
  }
  if (it->second.count() >= params_.quorum() && !ec_seen_.contains(v)) {
    ec_seen_.insert(v);
    handle_ec(v);
  }
}

void LumierePacemaker::handle_tc(View v) {
  // Line 16: "Upon first seeing a TC for epoch view v with
  // E(v) >= epoch(p)".
  if (math_.epoch_of(v) < epoch_) return;
  if (clock().reading() < math_.view_time(v)) {
    catch_up_view_msgs(v);  // line 18
    // A TC for a view *strictly above* the parked boundary releases the
    // pause (line 10); a TC for the parked view itself does not.
    if (parked_view_ && *parked_view_ < v) unpark();
    clock().bump_to(math_.view_time(v));  // line 19
    if (view_ < v - 1) set_view(v - 1, math_.epoch_of(v) - 1);  // line 20
    send_epoch_msg(v);  // line 21
    process_clock();    // exact landing runs the epoch-boundary logic
  } else {
    send_epoch_msg(v);  // line 21 (helping stragglers reach an EC)
  }
}

void LumierePacemaker::handle_ec(View v) {
  // Line 23: "Upon first seeing an EC for epoch view v with
  // E(v) > epoch(p): set view(p) := v and epoch(p) := E(v)."
  if (math_.epoch_of(v) <= epoch_) return;
  unpark();  // an EC for a view >= the parked boundary releases the pause
  clock().bump_to(math_.view_time(v));
  set_view(v, math_.epoch_of(v));
  send_view_msg(v);
  process_clock();
}

void LumierePacemaker::on_success_flip(Epoch e) {
  // Line 13's trigger can fire after the clock reached the boundary: the
  // success flag flips while parked at c_{V(e+1)} — unpark and enter.
  if (parked_view_ && math_.epoch_of(*parked_view_) - 1 == e) {
    const View w = *parked_view_;
    unpark();
    set_view(w, math_.epoch_of(w));
    send_view_msg(w);
    process_clock();
  }
}

void LumierePacemaker::on_message(ProcessId from, const MessagePtr& msg) {
  switch (msg->type_id()) {
    case pacemaker::kViewMsg:
      handle_view_share(from, static_cast<const ViewMsg&>(*msg));
      break;
    case pacemaker::kVcMsg:
      handle_vc(static_cast<const VcMsg&>(*msg));
      break;
    case pacemaker::kEpochViewMsg:
      handle_epoch_share(static_cast<const EpochViewMsg&>(*msg));
      break;
    default:
      break;
  }
}

void LumierePacemaker::on_qc(const consensus::QuorumCert& qc) {
  const View w = qc.view();
  // Success-criterion bookkeeping; may synchronously flip success and
  // enter the next epoch (state re-read below is deliberate).
  success_.record_qc(w);

  // Line 44: "Upon first seeing a QC for view v >= view(p)".
  if (w < view_) return;
  const View next = w + 1;
  if (clock().reading() < math_.view_time(next)) {
    catch_up_view_msgs(w);  // line 46
    // A QC for a view >= the parked boundary releases the pause.
    if (parked_view_ && *parked_view_ <= w) unpark();
    clock().bump_to(math_.view_time(next));  // line 47
    if (!math_.is_epoch_view(next)) {
      set_view(next, math_.epoch_of(next));  // line 48
      send_view_msg(next);                   // no-op unless `next` is initial
    } else if (view_ < w) {
      set_view(w, math_.epoch_of(w));  // line 49
    }
    process_clock();  // if `next` is an epoch view we just landed on it
  }
}

void LumierePacemaker::on_local_qc_formed(const consensus::QuorumCert& qc) {
  local_qc_sent_at_.emplace(qc.view(), sim().now());
}

bool LumierePacemaker::may_form_qc(View v) const {
  if (!options_.enforce_qc_deadline) return true;
  // "Honest leaders only produce a QC for view v if they can do it within
  // time Gamma/2 - 2*Delta of sending the VC for view v, or within that
  // time of sending the QC for the previous view if v is not initial."
  TimePoint anchor;
  if (EpochMath::is_initial(v)) {
    const auto it = vc_sent_at_.find(v);
    if (it == vc_sent_at_.end()) return false;
    anchor = it->second;
  } else {
    const auto it = local_qc_sent_at_.find(v - 1);
    if (it == local_qc_sent_at_.end()) return false;
    anchor = it->second;
  }
  return sim().now() - anchor <= qc_deadline_budget_;
}

bool LumierePacemaker::may_propose(View v) const {
  if (!options_.enforce_qc_deadline) return true;
  // Initial-view proposals wait for the VC (the deadline anchor);
  // non-initial views are anchored by our own previous QC, which exists
  // whenever we legitimately entered the view as its leader.
  if (EpochMath::is_initial(v)) return vc_sent_at_.contains(v);
  return true;
}

}  // namespace lumiere::core
