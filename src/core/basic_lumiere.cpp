#include "core/basic_lumiere.h"

#include "common/log.h"

namespace lumiere::core {

using pacemaker::EcMsg;
using pacemaker::EpochViewMsg;
using pacemaker::SyncCert;
using pacemaker::VcMsg;
using pacemaker::ViewMsg;

BasicLumierePacemaker::BasicLumierePacemaker(const ProtocolParams& params, ProcessId self,
                                             crypto::Signer signer,
                                             pacemaker::PacemakerWiring wiring, Options options)
    : Pacemaker(params, self, signer, std::move(wiring)),
      options_(options),
      schedule_(params.n, 2),
      gamma_(options.gamma > Duration::zero() ? options.gamma
                                              : params.delta_cap * (2 * (params.x + 1))) {}

void BasicLumierePacemaker::start() { process_clock(); }

void BasicLumierePacemaker::arm_boundary_alarm() {
  clock().cancel_alarm(boundary_alarm_);
  const Duration r = clock().reading();
  View next = r.ticks() / gamma_.ticks() + 1;
  if (next % 2 != 0) ++next;  // only initial (even) views are clock-entered
  boundary_alarm_ = clock().set_alarm(view_time(next), [this] { process_clock(); });
}

void BasicLumierePacemaker::process_clock() {
  const Duration r = clock().reading();
  const View w = r.ticks() / gamma_.ticks();
  if (r == view_time(w) && is_initial(w) && w > view_) {
    if (is_epoch_view(w)) {
      begin_epoch_sync(w);
    } else {
      enter_view(w);
      send_view_msg(w);
    }
  }
  arm_boundary_alarm();
}

void BasicLumierePacemaker::begin_epoch_sync(View epoch_view) {
  clock().pause();
  if (!epoch_msg_sent_.contains(epoch_view)) {
    epoch_msg_sent_.insert(epoch_view);
    note_sync_started(epoch_view);
    broadcast(std::make_shared<EpochViewMsg>(
        epoch_view,
        crypto::threshold_share(signer_, pacemaker::epoch_msg_statement(epoch_view))));
  }
}

void BasicLumierePacemaker::enter_view(View v) {
  if (v <= view_) return;
  view_ = v;
  notify_enter_view(v);
}

void BasicLumierePacemaker::send_view_msg(View v) {
  if (view_msg_sent_.contains(v)) return;
  view_msg_sent_.insert(v);
  note_sync_started(v);
  send_to(leader_of(v), std::make_shared<ViewMsg>(
                            v, crypto::threshold_share(signer_,
                                                       pacemaker::view_msg_statement(v))));
}

void BasicLumierePacemaker::handle_view_share(const ViewMsg& msg) {
  const View v = msg.view();
  // VCs exist only for initial non-epoch views (Section 3.4).
  if (!is_initial(v) || is_epoch_view(v) || leader_of(v) != self_) return;
  if (vc_sent_.contains(v) || v < view_) return;
  auto [it, inserted] = view_aggs_.try_emplace(v, auth(), pacemaker::view_msg_statement(v),
                                               params_.small_quorum());
  (void)inserted;
  if (!it->second.add(msg.share())) return;
  if (it->second.complete()) {
    vc_sent_.insert(v);
    broadcast(std::make_shared<VcMsg>(SyncCert(v, it->second.aggregate())));
  }
}

void BasicLumierePacemaker::handle_vc(const VcMsg& msg) {
  const SyncCert& cert = msg.cert();
  const View v = cert.view();
  if (!is_initial(v) || is_epoch_view(v) || v <= view_) return;
  if (!cert.verify(auth(), params_.small_quorum(), &pacemaker::view_msg_statement)) return;
  if (clock().reading() < view_time(v)) {
    clock().bump_to(view_time(v));
    process_clock();  // exact landing enters the view
  }
}

void BasicLumierePacemaker::handle_epoch_share(const EpochViewMsg& msg) {
  const View v = msg.view();
  if (!is_epoch_view(v)) return;
  if (v <= view_ || ec_sent_.contains(v)) return;
  auto [it, inserted] = epoch_aggs_.try_emplace(v, auth(), pacemaker::epoch_msg_statement(v),
                                                params_.quorum());
  (void)inserted;
  if (!it->second.add(msg.share())) return;
  if (it->second.complete()) {
    ec_sent_.insert(v);
    broadcast(std::make_shared<EcMsg>(SyncCert(v, it->second.aggregate())));
  }
}

void BasicLumierePacemaker::handle_ec(const EcMsg& msg) {
  const SyncCert& cert = msg.cert();
  const View v = cert.view();
  if (!is_epoch_view(v) || v <= view_) return;
  if (!cert.verify(auth(), params_.quorum(), &pacemaker::epoch_msg_statement)) return;
  clock().bump_to(view_time(v));
  clock().unpause();
  enter_view(v);
  process_clock();
}

void BasicLumierePacemaker::on_message(ProcessId /*from*/, const MessagePtr& msg) {
  switch (msg->type_id()) {
    case pacemaker::kViewMsg:
      handle_view_share(static_cast<const ViewMsg&>(*msg));
      break;
    case pacemaker::kVcMsg:
      handle_vc(static_cast<const VcMsg&>(*msg));
      break;
    case pacemaker::kEpochViewMsg:
      handle_epoch_share(static_cast<const EpochViewMsg&>(*msg));
      break;
    case pacemaker::kEcMsg:
      handle_ec(static_cast<const EcMsg&>(*msg));
      break;
    default:
      break;
  }
}

void BasicLumierePacemaker::on_qc(const consensus::QuorumCert& qc) {
  const View next = qc.view() + 1;
  // "if a correct processor p receives a QC for view v-1 ... and if
  // lc(p) < c_v, then p instantaneously bumps their local clock to c_v."
  // When v is an epoch view the landing triggers the heavy sync; when v
  // is initial non-epoch the landing enters the view; when v is
  // non-initial we also enter it directly.
  if (clock().reading() < view_time(next)) {
    clock().bump_to(view_time(next));
  }
  if (!is_initial(next) && next > view_) {
    enter_view(next);
  }
  process_clock();
}

}  // namespace lumiere::core
