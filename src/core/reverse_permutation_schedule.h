// Lumiere's leader schedule (Section 4).
//
// Leaders get two consecutive views. Each 2n-view segment is ordered by a
// permutation; the paper requires that the last leader of epoch e equal
// the first leader of epoch e+1 (so one honest leader can bridge the
// epoch change, Lemma 5.13). The paper phrases this with a random family
// (g_0, ..., g_{z-1}) where odd-indexed permutations are followed by
// their reverses; with 5 segments per epoch that stipulation does not
// land a reverse-pair on every epoch boundary, so we implement the
// footnote's *intent* directly: the first segment of each epoch e >= 1
// uses the reverse of the last segment of epoch e-1, and every other
// segment draws a fresh seeded random permutation. This satisfies
// exactly the property the proof uses. (Documented as a deviation in
// DESIGN.md.)
#pragma once

#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "core/epoch_math.h"
#include "pacemaker/leader_schedule.h"

namespace lumiere::core {

class ReversePermutationSchedule final : public pacemaker::LeaderSchedule {
 public:
  ReversePermutationSchedule(std::uint32_t n, std::uint64_t seed)
      : n_(n), seed_(seed) {
    LUMIERE_ASSERT(n > 0);
  }

  [[nodiscard]] ProcessId leader_of(View v) const override {
    if (v < 0) return 0;
    const auto segment = v / (2 * static_cast<std::int64_t>(n_));
    const auto slot = static_cast<std::uint32_t>((v / 2) % n_);
    return permutation_for(segment)[slot];
  }

  /// The permutation ordering leaders within `segment` (exposed for tests).
  [[nodiscard]] const std::vector<std::uint32_t>& permutation_for(std::int64_t segment) const {
    const auto it = cache_.find(segment);
    if (it != cache_.end()) return it->second;
    std::vector<std::uint32_t> perm;
    if (segment > 0 && segment % EpochMath::kSegmentsPerEpoch == 0) {
      // Epoch boundary: reverse of the previous segment's ordering, so
      // perm[0] == prev[n-1] (same leader bridges the boundary).
      const auto& prev = permutation_for(segment - 1);
      perm.assign(prev.rbegin(), prev.rend());
    } else {
      Rng rng(seed_ ^ (static_cast<std::uint64_t>(segment) * 0x9e3779b97f4a7c15ULL) ^
              0x1ead5c8edULL);
      perm = rng.permutation(n_);
    }
    return cache_.emplace(segment, std::move(perm)).first->second;
  }

 private:
  std::uint32_t n_;
  std::uint64_t seed_;
  mutable std::unordered_map<std::int64_t, std::vector<std::uint32_t>> cache_;
};

}  // namespace lumiere::core
