// Epoch/view arithmetic for Lumiere (Section 4).
//
// Epoch e consists of the 10n views [10n*e, 10n*(e+1)). Views come in
// leader pairs (tenure 2): even views are initial, odd views are
// non-initial grace periods. Each epoch is 5 "segments" of 2n views; one
// segment gives every processor exactly one pair of consecutive views, so
// each processor leads exactly 10 views per epoch.
#pragma once

#include <cstdint>

#include "common/assert.h"
#include "common/time.h"
#include "common/types.h"

namespace lumiere::core {

class EpochMath {
 public:
  /// Segments per epoch (the paper's factor 5: 10n views / 2n per segment).
  static constexpr std::int64_t kSegmentsPerEpoch = 5;
  /// Views each leader leads per epoch (the success criterion's "10 QCs").
  static constexpr std::int64_t kViewsPerLeaderPerEpoch = 2 * kSegmentsPerEpoch;

  EpochMath(std::uint32_t n, Duration gamma) : n_(n), gamma_(gamma) {
    LUMIERE_ASSERT(n > 0);
    LUMIERE_ASSERT(gamma > Duration::zero());
  }

  [[nodiscard]] std::int64_t views_per_epoch() const noexcept {
    return kSegmentsPerEpoch * 2 * static_cast<std::int64_t>(n_);
  }
  [[nodiscard]] std::int64_t views_per_segment() const noexcept {
    return 2 * static_cast<std::int64_t>(n_);
  }

  /// V(e): the first view (the epoch view) of epoch e.
  [[nodiscard]] View epoch_first_view(Epoch e) const noexcept { return e * views_per_epoch(); }

  /// E(v): the epoch view v belongs to (E(-1) = -1).
  [[nodiscard]] Epoch epoch_of(View v) const noexcept {
    if (v < 0) return -1;
    return v / views_per_epoch();
  }

  [[nodiscard]] bool is_epoch_view(View v) const noexcept {
    return v >= 0 && v % views_per_epoch() == 0;
  }
  [[nodiscard]] static bool is_initial(View v) noexcept { return v >= 0 && v % 2 == 0; }

  /// c_v = Gamma * v: the local-clock time corresponding to view v.
  [[nodiscard]] Duration view_time(View v) const noexcept { return gamma_ * v; }

  /// The view whose window contains clock value `r` (floor(r / Gamma)).
  [[nodiscard]] View view_at(Duration r) const noexcept { return r.ticks() / gamma_.ticks(); }

  /// True iff clock value `r` is exactly a view boundary c_v.
  [[nodiscard]] bool at_boundary(Duration r) const noexcept {
    return r.ticks() % gamma_.ticks() == 0;
  }

  /// Segment index of view v (permutation window for the leader schedule).
  [[nodiscard]] std::int64_t segment_of(View v) const noexcept {
    return v >= 0 ? v / views_per_segment() : -1;
  }

  [[nodiscard]] Duration gamma() const noexcept { return gamma_; }
  [[nodiscard]] std::uint32_t n() const noexcept { return n_; }

 private:
  std::uint32_t n_;
  Duration gamma_;
};

}  // namespace lumiere::core
