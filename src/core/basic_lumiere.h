// Basic Lumiere (Section 3.4): LP22's epochs + Fever's clock bumping.
//
// Epochs of 2(f+1) views (leader pairs). Every epoch starts with LP22's
// heavy all-to-all synchronization (pause at c_{V(e)}, broadcast
// epoch-view messages, EC admits). Within the epoch, Fever runs: even
// views are initial (view message to the leader, f+1 aggregate into a VC),
// odd views are grace periods entered on QCs, and QCs/VCs/ECs all bump
// lagging clocks forward.
//
// Result: O(n^2) worst-case communication (amortized over the epoch) and
// smooth optimistic responsiveness — each faulty leader costs at most
// Gamma. What it still lacks is the success criterion of Section 3.5:
// every epoch pays the Theta(n^2) synchronization forever, so eventual
// worst-case communication stays Theta(n^2). Gamma = 2(x+1)*Delta.
#pragma once

#include <map>
#include <set>

#include "crypto/authenticator.h"
#include "pacemaker/leader_schedule.h"
#include "pacemaker/messages.h"
#include "pacemaker/pacemaker.h"

namespace lumiere::core {

class BasicLumierePacemaker final : public pacemaker::Pacemaker {
 public:
  struct Options {
    /// Per-view budget Gamma; zero means the paper default 2(x+1)*Delta.
    Duration gamma = Duration::zero();
  };

  BasicLumierePacemaker(const ProtocolParams& params, ProcessId self, crypto::Signer signer,
                        pacemaker::PacemakerWiring wiring, Options options);

  void start() override;
  void on_message(ProcessId from, const MessagePtr& msg) override;
  void on_qc(const consensus::QuorumCert& qc) override;
  [[nodiscard]] ProcessId leader_of(View v) const override { return schedule_.leader_of(v); }
  [[nodiscard]] View current_view() const override { return view_; }
  [[nodiscard]] const char* name() const override { return "basic-lumiere"; }

  [[nodiscard]] Duration gamma() const noexcept { return gamma_; }
  [[nodiscard]] std::int64_t views_per_epoch() const noexcept {
    return 2 * static_cast<std::int64_t>(params_.f + 1);
  }
  [[nodiscard]] bool is_epoch_view(View v) const noexcept {
    return v >= 0 && v % views_per_epoch() == 0;
  }
  [[nodiscard]] static bool is_initial(View v) noexcept { return v >= 0 && v % 2 == 0; }
  [[nodiscard]] Duration view_time(View v) const noexcept { return gamma_ * v; }

 private:
  void process_clock();
  void arm_boundary_alarm();
  void enter_view(View v);
  void send_view_msg(View v);
  void begin_epoch_sync(View epoch_view);
  void handle_view_share(const pacemaker::ViewMsg& msg);
  void handle_vc(const pacemaker::VcMsg& msg);
  void handle_epoch_share(const pacemaker::EpochViewMsg& msg);
  void handle_ec(const pacemaker::EcMsg& msg);

  Options options_;
  pacemaker::RoundRobinSchedule schedule_;  // lead(v) = floor(v/2) mod n
  Duration gamma_;
  View view_ = -1;
  sim::AlarmId boundary_alarm_ = 0;

  std::set<View> view_msg_sent_;
  std::map<View, crypto::QuorumAggregator> view_aggs_;
  std::set<View> vc_sent_;

  std::set<View> epoch_msg_sent_;
  std::map<View, crypto::QuorumAggregator> epoch_aggs_;
  std::set<View> ec_sent_;
};

}  // namespace lumiere::core
