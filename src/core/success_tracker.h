// The success criterion of Section 4:
//
//   "Processor p sets success(e) := 1 upon seeing at least 2f+1 distinct
//    processors each produce 10 QCs for views in the epoch."
//
// A processor "produces" a QC when it is the leader of the view the QC
// certifies. Because each processor leads exactly 10 views per epoch, a
// leader counts toward the criterion only if *every* view it led
// produced a QC — Byzantine leaders cannot be over-represented (the §3.5
// discussion of why the criterion must be this strict).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <vector>

#include "common/params.h"
#include "common/types.h"
#include "core/epoch_math.h"

namespace lumiere::core {

class SuccessTracker {
 public:
  using LeaderFn = std::function<ProcessId(View)>;
  /// Invoked exactly once when success(e) flips 0 -> 1.
  using SuccessFn = std::function<void(Epoch e)>;

  SuccessTracker(const ProtocolParams& params, const EpochMath* math, LeaderFn leader_of,
                 SuccessFn on_success)
      : params_(params),
        math_(math),
        leader_of_(std::move(leader_of)),
        on_success_(std::move(on_success)) {
    LUMIERE_ASSERT(math != nullptr);
  }

  /// Records that a QC for view v has been observed. Idempotent per view.
  void record_qc(View v) {
    if (v < 0) return;
    const Epoch e = math_->epoch_of(v);
    if (succeeded_.contains(e)) return;
    if (!seen_views_.insert(v).second) return;
    auto& count = qc_counts_[e][leader_of_(v)];
    ++count;
    if (count == EpochMath::kViewsPerLeaderPerEpoch) {
      auto& done = leaders_done_[e];
      ++done;
      if (done >= params_.quorum()) {
        succeeded_.insert(e);
        qc_counts_.erase(e);
        if (on_success_) on_success_(e);
      }
    }
  }

  /// success(e) — initially 0 for every epoch, including e = -1.
  [[nodiscard]] bool success(Epoch e) const { return succeeded_.contains(e); }

  /// Number of distinct leaders with all 10 QCs so far in epoch e.
  [[nodiscard]] std::uint32_t leaders_done(Epoch e) const {
    const auto it = leaders_done_.find(e);
    return it == leaders_done_.end() ? 0 : it->second;
  }

 private:
  ProtocolParams params_;
  const EpochMath* math_;
  LeaderFn leader_of_;
  SuccessFn on_success_;
  std::set<View> seen_views_;
  std::map<Epoch, std::map<ProcessId, std::uint32_t>> qc_counts_;
  std::map<Epoch, std::uint32_t> leaders_done_;
  std::set<Epoch> succeeded_;
};

}  // namespace lumiere::core
