// Honest-gap instrumentation (Definition 3.1).
//
// hg_{i,t} is the difference between the most advanced honest local clock
// and the i-th most advanced at time t. Lumiere's analysis revolves
// around hg_{f+1} (Lemmas 5.9-5.15); this tracker lets tests and benches
// observe it directly. Pure observer — protocols never read it.
#pragma once

#include <algorithm>
#include <vector>

#include "common/assert.h"
#include "common/time.h"
#include "sim/local_clock.h"

namespace lumiere::core {

class HonestGapTracker {
 public:
  /// `clocks` are the honest processors' clocks (borrowed; must outlive).
  explicit HonestGapTracker(std::vector<const sim::LocalClock*> clocks)
      : clocks_(std::move(clocks)) {
    LUMIERE_ASSERT(!clocks_.empty());
  }

  /// Sorted clock readings, most advanced first.
  [[nodiscard]] std::vector<Duration> sorted_readings() const {
    std::vector<Duration> values;
    values.reserve(clocks_.size());
    for (const auto* clock : clocks_) values.push_back(clock->reading());
    std::sort(values.begin(), values.end(), std::greater<>());
    return values;
  }

  /// hg_{i}: gap between the most advanced and the i-th most advanced
  /// honest clock (1-based, per the paper; hg_1 == 0).
  [[nodiscard]] Duration gap(std::uint32_t i) const {
    const auto values = sorted_readings();
    LUMIERE_ASSERT(i >= 1 && i <= values.size());
    return values.front() - values[i - 1];
  }

  [[nodiscard]] std::size_t count() const noexcept { return clocks_.size(); }

 private:
  std::vector<const sim::LocalClock*> clocks_;
};

}  // namespace lumiere::core
