// End-to-end SMR throughput: chained HotStuff commits per second under
// each pacemaker, on a fast network, all honest and with f_a = f silent
// leaders. Not a paper artifact per se, but the practical consequence of
// Table 1's asymptotics: the pacemaker's synchronization overhead and
// fault-stalls translate directly into committed blocks per second.
#include <cstdio>

#include "bench_util.h"

namespace lumiere::bench {
namespace {

struct Throughput {
  double commits_per_sec = 0;
  double decisions_per_sec = 0;
  double honest_msgs_per_commit = 0;
};

Throughput measure(const std::string& pacemaker, std::uint32_t n, std::uint32_t f_a) {
  ScenarioBuilder builder = base_scenario(pacemaker, n, 5001);
  builder.params(ProtocolParams::for_n(n, bench_delta_cap(), /*x=*/4));
  builder.core("chained-hotstuff");
  builder.delay(std::make_shared<lumiere::sim::FixedDelay>(lumiere::Duration::micros(500)));
  with_silent_leaders(builder, f_a);
  Cluster cluster(builder);
  const auto seconds = lumiere::Duration::seconds(30);
  cluster.run_for(seconds);
  Throughput out;
  std::size_t commits = 0;
  for (const ProcessId id : cluster.honest_ids()) {
    commits = std::max(commits, cluster.node(id).ledger().size());
  }
  out.commits_per_sec = static_cast<double>(commits) / seconds.to_seconds();
  out.decisions_per_sec =
      static_cast<double>(cluster.metrics().decisions().size()) / seconds.to_seconds();
  if (commits > 0) {
    out.honest_msgs_per_commit =
        static_cast<double>(cluster.metrics().total_honest_msgs()) /
        static_cast<double>(commits);
  }
  return out;
}

}  // namespace
}  // namespace lumiere::bench

int main() {
  using namespace lumiere::bench;
  std::printf("bench_throughput: chained HotStuff commits/sec by pacemaker\n"
              "(delta = 0.5ms, Delta = 10ms, x = 4, 30s simulated)\n\n");
  for (const std::uint32_t n : {4U, 13U}) {
    const std::uint32_t f = (n - 1) / 3;
    std::printf("--- n = %u ---\n", n);
    std::printf("%-16s | %14s | %14s | %16s | %14s\n", "protocol", "commits/s fa=0",
                "commits/s fa=f", "decisions/s fa=0", "msgs/commit");
    for (const std::string& pacemaker : table1_protocols()) {
      const Throughput clean = measure(pacemaker, n, 0);
      const Throughput faulty = measure(pacemaker, n, f);
      std::printf("%-16s | %14.1f | %14.1f | %16.1f | %14.1f\n",
                  pacemaker.c_str(), clean.commits_per_sec,
                  faulty.commits_per_sec, clean.decisions_per_sec,
                  clean.honest_msgs_per_commit);
    }
    std::printf("\n");
  }
  std::printf("Reading guide: the responsive protocols (Fever/Basic/Lumiere) commit at\n"
              "network speed; RareSync is Gamma-paced (lowest clean throughput); LP22\n"
              "sits between (responsive within epochs only). Under faults the bumping\n"
              "protocols degrade gracefully; message cost per commit stays O(n).\n");
  return 0;
}
