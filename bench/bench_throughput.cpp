// End-to-end SMR throughput: chained HotStuff commits per second under
// each pacemaker, on a fast network, all honest and with f_a = f silent
// leaders. Not a paper artifact per se, but the practical consequence of
// Table 1's asymptotics: the pacemaker's synchronization overhead and
// fault-stalls translate directly into committed blocks — and, now that
// proposals are fed by the workload engine instead of hand-built
// payloads, into committed client requests per second with real
// submit -> commit latency.
//
//   ./build/bench_throughput [--quick] [--json BENCH_throughput.json]
#include <cstdio>

#include "bench_util.h"
#include "workload/engine.h"
#include "workload/report.h"

namespace lumiere::bench {
namespace {

struct Throughput {
  double commits_per_sec = 0;
  double requests_per_sec = 0;  ///< committed client requests
  std::optional<Duration> p50;
  std::optional<Duration> p99;
  double honest_msgs_per_commit = 0;
};

Throughput measure(const std::string& pacemaker, std::uint32_t n, std::uint32_t f_a,
                   Duration seconds) {
  ScenarioBuilder builder = base_scenario(pacemaker, n, 5001);
  builder.params(ProtocolParams::for_n(n, bench_delta_cap(), /*x=*/4));
  builder.core("chained-hotstuff");
  builder.delay(std::make_shared<lumiere::sim::FixedDelay>(lumiere::Duration::micros(500)));
  // A sub-saturation open-loop feed: every proposal carries real tagged
  // requests, so requests/sec and latency measure the request path, not
  // the arrival process.
  workload::WorkloadSpec spec;
  spec.arrival = workload::Arrival::kConstant;
  spec.clients_per_node = 2;
  spec.rate_per_client = 100.0;
  spec.request_bytes = 64;
  spec.mempool.max_pending_count = 1024;
  builder.workload(spec);
  with_silent_leaders(builder, f_a);
  Cluster cluster(builder);
  cluster.run_for(seconds);
  Throughput out;
  std::size_t commits = 0;
  for (const ProcessId id : cluster.honest_ids()) {
    commits = std::max(commits, cluster.node(id).ledger().size());
  }
  out.commits_per_sec = static_cast<double>(commits) / seconds.to_seconds();
  const workload::Report report = cluster.workload_report();
  out.requests_per_sec =
      report.committed_per_sec(TimePoint::origin(), TimePoint(seconds.ticks()));
  out.p50 = report.latency_percentile(0.50);
  out.p99 = report.latency_percentile(0.99);
  if (commits > 0) {
    out.honest_msgs_per_commit =
        static_cast<double>(cluster.metrics().total_honest_msgs()) /
        static_cast<double>(commits);
  }
  return out;
}

void run(const BenchArgs& args) {
  const Duration seconds = args.quick ? Duration::seconds(10) : Duration::seconds(30);
  const std::vector<std::uint32_t> sizes =
      args.quick ? std::vector<std::uint32_t>{4U} : std::vector<std::uint32_t>{4U, 13U};
  JsonRows json;
  for (const std::uint32_t n : sizes) {
    const std::uint32_t f = (n - 1) / 3;
    std::printf("--- n = %u ---\n", n);
    std::printf("%-16s | %14s | %14s | %12s | %9s | %9s | %12s\n", "protocol",
                "commits/s fa=0", "commits/s fa=f", "requests/s", "p50 (ms)", "p99 (ms)",
                "msgs/commit");
    for (const std::string& pacemaker : table1_protocols()) {
      const Throughput clean = measure(pacemaker, n, 0, seconds);
      const Throughput faulty = measure(pacemaker, n, f, seconds);
      std::printf("%-16s | %14.1f | %14.1f | %12.1f | %9s | %9s | %12.1f\n",
                  pacemaker.c_str(), clean.commits_per_sec, faulty.commits_per_sec,
                  clean.requests_per_sec, fmt_ms(clean.p50).c_str(),
                  fmt_ms(clean.p99).c_str(), clean.honest_msgs_per_commit);
      json.add_row()
          .set("protocol", pacemaker)
          .set("n", static_cast<std::uint64_t>(n))
          .set("commits_per_sec_clean", clean.commits_per_sec)
          .set("commits_per_sec_faulty", faulty.commits_per_sec)
          .set("requests_per_sec", clean.requests_per_sec)
          .set_ms("p50_ms", clean.p50)
          .set_ms("p99_ms", clean.p99)
          .set("msgs_per_commit", clean.honest_msgs_per_commit);
    }
    std::printf("\n");
  }
  std::printf("Reading guide: the responsive protocols (Fever/Basic/Lumiere) commit at\n"
              "network speed; RareSync is Gamma-paced (lowest clean throughput); LP22\n"
              "sits between (responsive within epochs only). Under faults the bumping\n"
              "protocols degrade gracefully; message cost per commit stays O(n). The\n"
              "requests/s and latency columns are the workload engine's end-to-end\n"
              "accounting at a fixed sub-saturation feed (800 req/s offered at n = 4).\n");
  if (!args.json_path.empty() && !json.write(args.json_path, "throughput")) {
    std::exit(1);
  }
}

}  // namespace
}  // namespace lumiere::bench

int main(int argc, char** argv) {
  const lumiere::bench::BenchArgs args = lumiere::bench::parse_bench_args(argc, argv);
  std::printf("bench_throughput: chained HotStuff commits/sec by pacemaker\n"
              "(delta = 0.5ms, Delta = 10ms, x = 4, workload-fed payloads)\n\n");
  lumiere::bench::run(args);
  return 0;
}
