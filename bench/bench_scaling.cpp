// Growth-order fits for Theorem 1.1: how the measured quantities scale
// with n. Empirical counterpart of the asymptotic columns of Table 1.
//
//   * worst-case communication: Cogsworth ~ n^3 vs LP22/Lumiere ~ n^2
//   * eventual communication at f_a = f: LP22 ~ n^2 (epoch syncs) vs
//     Lumiere ~ n (f_a * n per window, f_a proportional to n here, so
//     Lumiere's fitted slope lands near 2 as well — the separating
//     measure is eventual comm at fixed f_a, also printed)
//   * eventual latency at fixed f_a = 1: LP22 ~ n, Lumiere ~ 1.
//
// Sizes reach n = 64 (post hot-path overhaul; the sweep was previously
// capped at 19), and --quick appends a bounded n = 100 Lumiere point —
// the O(n^2) vote-traffic regime where per-message constants dominate.
// CI runs `bench_scaling --quick --json BENCH_scaling.json`.
#include <cstdio>

#include "bench_util.h"

namespace lumiere::bench {
namespace {

struct ScalingBudget {
  std::vector<std::uint32_t> sizes;
  Duration worst_run;     ///< worst-permitted-network run per point
  Duration eventual_run;  ///< fixed-delay run per eventual measure
  std::size_t warmup_windows;
};

ScalingBudget budget_for(bool quick) {
  ScalingBudget budget;
  if (quick) {
    // Bounded: fewer, larger sizes and shorter runs — the growth fit
    // needs the spread in n, not long tails per point.
    budget.sizes = {4, 13, 31, 64};
    budget.worst_run = Duration::seconds(60);
    budget.eventual_run = Duration::seconds(20);
    budget.warmup_windows = 10;
  } else {
    budget.sizes = {4, 7, 13, 19, 31, 64};
    budget.worst_run = Duration::seconds(240);
    budget.eventual_run = Duration::seconds(60);
    budget.warmup_windows = 25;
  }
  return budget;
}

struct SeriesPoint {
  std::uint32_t n;
  double worst_comm = 0;
  double ev_comm_full_faults = 0;   // f_a = f (grows with n)
  double ev_comm_one_fault = 0;     // f_a = 1 (fixed)
  double ev_lat_one_fault_ms = 0;   // f_a = 1 (fixed)
};

SeriesPoint measure(const std::string& pacemaker, std::uint32_t n, const ScalingBudget& budget) {
  SeriesPoint point;
  point.n = n;
  const std::uint32_t f = (n - 1) / 3;

  if (const WorstCaseSample sample = worst_case_sample(pacemaker, n, 2001, 10, budget.worst_run);
      sample.comm) {
    point.worst_comm = static_cast<double>(*sample.comm);
  }

  const auto eventual = [&](std::uint32_t f_a) {
    ScenarioBuilder builder = base_scenario(pacemaker, n, 2002);
    builder.delay(std::make_shared<sim::FixedDelay>(Duration::micros(500)));
    with_silent_leaders(builder, f_a);
    Cluster cluster(builder);
    cluster.run_for(budget.eventual_run);
    return std::make_pair(
        cluster.metrics().max_msg_gap(TimePoint::origin(), budget.warmup_windows),
        cluster.metrics().max_decision_gap(TimePoint::origin(), budget.warmup_windows));
  };
  if (const auto [comm, lat] = eventual(f); comm) {
    point.ev_comm_full_faults = static_cast<double>(*comm);
    (void)lat;
  }
  if (const auto [comm, lat] = eventual(1); comm && lat) {
    point.ev_comm_one_fault = static_cast<double>(*comm);
    point.ev_lat_one_fault_ms = static_cast<double>(lat->ticks()) / 1000.0;
  }
  return point;
}

void run_protocol(const std::string& pacemaker, const ScalingBudget& budget, JsonRows& json) {
  std::printf("\n--- %s ---\n", pacemaker.c_str());
  std::printf("%-5s | %12s | %16s | %15s | %15s\n", "n", "worst comm", "ev comm (fa=f)",
              "ev comm (fa=1)", "ev lat (fa=1) ms");
  std::vector<double> ns;
  std::vector<double> worst;
  std::vector<double> ev_full;
  std::vector<double> ev_one;
  std::vector<double> lat_one;
  for (const std::uint32_t n : budget.sizes) {
    const SeriesPoint p = measure(pacemaker, n, budget);
    std::printf("%-5u | %12.0f | %16.0f | %15.0f | %15.1f\n", p.n, p.worst_comm,
                p.ev_comm_full_faults, p.ev_comm_one_fault, p.ev_lat_one_fault_ms);
    json.add_row()
        .set("protocol", pacemaker)
        .set("n", static_cast<std::uint64_t>(p.n))
        .set("worst_comm", p.worst_comm)
        .set("ev_comm_fa_f", p.ev_comm_full_faults)
        .set("ev_comm_fa_1", p.ev_comm_one_fault)
        .set("ev_lat_fa_1_ms", p.ev_lat_one_fault_ms);
    ns.push_back(p.n);
    worst.push_back(p.worst_comm);
    ev_full.push_back(p.ev_comm_full_faults);
    ev_one.push_back(p.ev_comm_one_fault);
    lat_one.push_back(p.ev_lat_one_fault_ms);
  }
  const double worst_slope = loglog_slope(ns, worst);
  const double ev_full_slope = loglog_slope(ns, ev_full);
  const double ev_one_slope = loglog_slope(ns, ev_one);
  const double lat_slope = loglog_slope(ns, lat_one);
  std::printf("fitted n-exponents: worst comm %.2f | ev comm fa=f %.2f | ev comm fa=1 %.2f | "
              "ev lat fa=1 %.2f\n",
              worst_slope, ev_full_slope, ev_one_slope, lat_slope);
  json.add_row()
      .set("protocol", pacemaker)
      .set("fit_worst_comm", worst_slope)
      .set("fit_ev_comm_fa_f", ev_full_slope)
      .set("fit_ev_comm_fa_1", ev_one_slope)
      .set("fit_ev_lat_fa_1", lat_slope);
}

/// The bounded n = 100 point: Lumiere under one silent leader, eventual
/// regime only (a worst-permitted-network warmup at this size is a
/// different experiment — this point exists to prove the substrate
/// drives n ~ 100 O(n^2)-vote traffic inside a CI budget).
void run_hundred_point(JsonRows& json) {
  constexpr std::uint32_t kN = 100;
  ScenarioBuilder builder = base_scenario("lumiere", kN, 2003);
  builder.delay(std::make_shared<sim::FixedDelay>(Duration::micros(500)));
  with_silent_leaders(builder, 1);
  Cluster cluster(builder);
  cluster.run_for(Duration::seconds(15));
  const auto comm = cluster.metrics().max_msg_gap(TimePoint::origin(), 10);
  const auto lat = cluster.metrics().max_decision_gap(TimePoint::origin(), 10);
  std::printf("\n--- bounded n=100 point (lumiere, fa=1, 15 sim-s) ---\n");
  std::printf("decisions %zu | total honest msgs %llu | ev comm %s | ev lat %s ms\n",
              cluster.metrics().decisions().size(),
              static_cast<unsigned long long>(cluster.metrics().total_honest_msgs()),
              fmt_count(comm).c_str(), fmt_ms(lat).c_str());
  json.add_row()
      .set("protocol", "lumiere")
      .set("n", static_cast<std::uint64_t>(kN))
      .set("bounded", "fa=1 eventual only")
      .set_count("decisions", cluster.metrics().decisions().size())
      .set_count("ev_comm_fa_1", comm)
      .set_ms("ev_lat_fa_1_ms", lat);
}

}  // namespace
}  // namespace lumiere::bench

int main(int argc, char** argv) {
  using namespace lumiere::bench;
  const BenchArgs args = parse_bench_args(argc, argv);
  const ScalingBudget budget = budget_for(args.quick);
  std::printf("bench_scaling: empirical growth orders vs n (Theorem 1.1 shapes)%s\n",
              args.quick ? " [--quick]" : "");
  JsonRows json;
  for (const char* pacemaker : {"cogsworth", "lp22", "basic-lumiere", "lumiere"}) {
    run_protocol(pacemaker, budget, json);
  }
  if (args.quick) run_hundred_point(json);
  std::printf(
      "\nReading guide: Cogsworth's worst-comm exponent should exceed LP22's and\n"
      "Lumiere's (n^3 vs n^2); Lumiere's fa=1 columns should be ~flat in n\n"
      "(exponent near 0 up to noise) while LP22's eventual latency grows ~n.\n");
  if (!args.json_path.empty() && !json.write(args.json_path, "scaling")) return 1;
  return 0;
}
