// Growth-order fits for Theorem 1.1: how the measured quantities scale
// with n. Empirical counterpart of the asymptotic columns of Table 1.
//
//   * worst-case communication: Cogsworth ~ n^3 vs LP22/Lumiere ~ n^2
//   * eventual communication at f_a = f: LP22 ~ n^2 (epoch syncs) vs
//     Lumiere ~ n (f_a * n per window, f_a proportional to n here, so
//     Lumiere's fitted slope lands near 2 as well — the separating
//     measure is eventual comm at fixed f_a, also printed)
//   * eventual latency at fixed f_a = 1: LP22 ~ n, Lumiere ~ 1.
#include <cstdio>

#include "bench_util.h"

namespace lumiere::bench {
namespace {

const std::vector<std::uint32_t> kSizes = {4, 7, 13, 19};

struct SeriesPoint {
  std::uint32_t n;
  double worst_comm = 0;
  double ev_comm_full_faults = 0;   // f_a = f (grows with n)
  double ev_comm_one_fault = 0;     // f_a = 1 (fixed)
  double ev_lat_one_fault_ms = 0;   // f_a = 1 (fixed)
};

SeriesPoint measure(const std::string& pacemaker, std::uint32_t n) {
  SeriesPoint point;
  point.n = n;
  const std::uint32_t f = (n - 1) / 3;

  if (const WorstCaseSample sample = worst_case_sample(pacemaker, n, 2001); sample.comm) {
    point.worst_comm = static_cast<double>(*sample.comm);
  }

  const auto eventual = [&](std::uint32_t f_a) {
    ScenarioBuilder builder = base_scenario(pacemaker, n, 2002);
    builder.delay(std::make_shared<sim::FixedDelay>(Duration::micros(500)));
    with_silent_leaders(builder, f_a);
    Cluster cluster(builder);
    cluster.run_for(Duration::seconds(60));
    return std::make_pair(cluster.metrics().max_msg_gap(TimePoint::origin(), 25),
                          cluster.metrics().max_decision_gap(TimePoint::origin(), 25));
  };
  if (const auto [comm, lat] = eventual(f); comm) {
    point.ev_comm_full_faults = static_cast<double>(*comm);
    (void)lat;
  }
  if (const auto [comm, lat] = eventual(1); comm && lat) {
    point.ev_comm_one_fault = static_cast<double>(*comm);
    point.ev_lat_one_fault_ms = static_cast<double>(lat->ticks()) / 1000.0;
  }
  return point;
}

void run_protocol(const std::string& pacemaker) {
  std::printf("\n--- %s ---\n", pacemaker.c_str());
  std::printf("%-5s | %12s | %16s | %15s | %15s\n", "n", "worst comm", "ev comm (fa=f)",
              "ev comm (fa=1)", "ev lat (fa=1) ms");
  std::vector<double> ns;
  std::vector<double> worst;
  std::vector<double> ev_full;
  std::vector<double> ev_one;
  std::vector<double> lat_one;
  for (const std::uint32_t n : kSizes) {
    const SeriesPoint p = measure(pacemaker, n);
    std::printf("%-5u | %12.0f | %16.0f | %15.0f | %15.1f\n", p.n, p.worst_comm,
                p.ev_comm_full_faults, p.ev_comm_one_fault, p.ev_lat_one_fault_ms);
    ns.push_back(p.n);
    worst.push_back(p.worst_comm);
    ev_full.push_back(p.ev_comm_full_faults);
    ev_one.push_back(p.ev_comm_one_fault);
    lat_one.push_back(p.ev_lat_one_fault_ms);
  }
  std::printf("fitted n-exponents: worst comm %.2f | ev comm fa=f %.2f | ev comm fa=1 %.2f | "
              "ev lat fa=1 %.2f\n",
              loglog_slope(ns, worst), loglog_slope(ns, ev_full), loglog_slope(ns, ev_one),
              loglog_slope(ns, lat_one));
}

}  // namespace
}  // namespace lumiere::bench

int main() {
  using namespace lumiere::bench;
  std::printf("bench_scaling: empirical growth orders vs n (Theorem 1.1 shapes)\n");
  for (const char* pacemaker : {"cogsworth", "lp22", "basic-lumiere", "lumiere"}) {
    run_protocol(pacemaker);
  }
  std::printf(
      "\nReading guide: Cogsworth's worst-comm exponent should exceed LP22's and\n"
      "Lumiere's (n^3 vs n^2); Lumiere's fa=1 columns should be ~flat in n\n"
      "(exponent near 0 up to noise) while LP22's eventual latency grows ~n.\n");
  return 0;
}
