// Warmup to the steady state (Section 2, closing remark): "Lumiere
// achieves its eventual worst-case communication complexity and latency
// for T which is within expected O(n*Delta) time of GST."
//
// This bench measures, as a function of n:
//   * quiescence: time after GST of the *last* heavy epoch-view message
//     any honest processor sends (once quiescent, per-decision cost is
//     O(n*f_a + n) forever — Theorem 1.1 (4));
//   * first success: time after GST at which the first processor sees the
//     success criterion satisfied;
//   * first decision: the classic worst-case latency sample.
//
// The claim under test is the growth *order*: quiescence should scale
// (roughly) linearly in n — one epoch of 10n views plus the O(1) heavy
// exchanges around it — not quadratically.
#include <cstdio>

#include "core/lumiere.h"
#include "pacemaker/messages.h"

#include "bench_util.h"

namespace lumiere::bench {
namespace {

struct WarmupSample {
  double quiescence_ms = -1;   // last honest epoch-view send after GST
  double first_success_ms = -1;
  double first_decision_ms = -1;
};

WarmupSample measure(std::uint32_t n, std::uint64_t seed, bool worst_network) {
  const TimePoint gst(Duration::seconds(1).ticks());
  ScenarioBuilder builder = base_scenario("lumiere", n, seed);
  builder.gst(gst);
  builder.join_stagger(Duration::millis(300));
  if (worst_network) {
    builder.delay(nullptr);  // worst permitted: max(GST, t) + Delta
  } else {
    builder.delay(std::make_shared<sim::PreGstChaosDelay>(
        gst, Duration::micros(500), Duration::millis(2), Duration::seconds(2)));
  }
  Cluster cluster(builder);
  cluster.start();

  WarmupSample sample;
  std::uint64_t last_heavy = 0;
  bool success_seen = false;
  const Duration slice = Duration::millis(20);
  // Sample from the origin: the bootstrap heavy exchange is sent pre-GST
  // and still counts — quiescence is reported relative to GST (negative
  // means the last heavy message predates it).
  const TimePoint deadline = gst + Duration::seconds(240);
  while (cluster.sim().now() < deadline) {
    cluster.run_for(slice);
    const std::uint64_t heavy = cluster.metrics().count_for_type(pacemaker::kEpochViewMsg);
    if (heavy != last_heavy) {
      last_heavy = heavy;
      sample.quiescence_ms =
          static_cast<double>((cluster.sim().now() - gst).ticks()) / 1000.0;
    }
    if (!success_seen) {
      for (const ProcessId id : cluster.honest_ids()) {
        const auto& pm =
            static_cast<const core::LumierePacemaker&>(cluster.node(id).pacemaker());
        const Epoch e = pm.current_epoch();
        if (e >= 0 && pm.success_tracker().success(e)) {
          success_seen = true;
          sample.first_success_ms =
              static_cast<double>((cluster.sim().now() - gst).ticks()) / 1000.0;
          break;
        }
      }
    }
  }
  if (const auto first = cluster.metrics().latency_to_first_decision(gst)) {
    sample.first_decision_ms = static_cast<double>(first->ticks()) / 1000.0;
  }
  return sample;
}

void run_table(bool worst_network, std::vector<double>& ns, std::vector<double>& warmup) {
  std::printf("%-6s | %16s | %18s | %18s\n", "n", "quiescence (ms)", "first success (ms)",
              "first decision (ms)");
  for (const std::uint32_t n : {4U, 7U, 10U, 13U}) {
    const WarmupSample s = measure(n, 7000 + n, worst_network);
    std::printf("%-6u | %16.1f | %18.1f | %18.1f\n", n, s.quiescence_ms, s.first_success_ms,
                s.first_decision_ms);
    // The growth fit uses first-success: quiescence is usually a single
    // bootstrap exchange *before* GST (negative offset), which is the
    // strongest possible outcome but carries no n-dependence to fit.
    if (s.first_success_ms > 0) {
      ns.push_back(n);
      warmup.push_back(s.first_success_ms);
    }
  }
}

}  // namespace
}  // namespace lumiere::bench

int main() {
  using namespace lumiere::bench;
  std::printf("bench_warmup: time from GST to the steady state (Theorem 1.1 (4) warmup),\n"
              "staggered joins, pre-GST chaos, GST at t = 1s, Delta = 10ms.\n");

  std::printf("\n--- favorable network after GST (delta ~ 0.5-2ms) ---\n");
  std::vector<double> ns_fast;
  std::vector<double> q_fast;
  run_table(/*worst_network=*/false, ns_fast, q_fast);

  std::printf("\n--- worst permitted network (every message at the Delta bound) ---\n");
  std::vector<double> ns_worst;
  std::vector<double> q_worst;
  run_table(/*worst_network=*/true, ns_worst, q_worst);

  if (ns_worst.size() >= 3) {
    std::printf("\nfirst-success growth order vs n (worst network): n^%.2f\n",
                loglog_slope(ns_worst, q_worst));
  }
  if (ns_fast.size() >= 3) {
    std::printf("first-success growth order vs n (fast network):  n^%.2f\n",
                loglog_slope(ns_fast, q_fast));
  }
  std::printf(
      "(expected: first success within a small constant of one epoch — 10n\n"
      " views — so growth ~n^1, matching the paper's 'within expected O(n\n"
      " Delta) of GST'. A quadratic fit would falsify the claim. Quiescence\n"
      " is typically a lone bootstrap exchange sent *before* GST (negative\n"
      " offset): heavy traffic never appears after it. First decisions land\n"
      " orders of magnitude before first success: the protocol is useful\n"
      " long before the steady-state machinery has even engaged.)\n");
  return 0;
}
