// Smooth optimistic responsiveness (Theorem 1.1 (3)):
//   * at f_a = 0, steady-state latency tracks the *actual* delay delta,
//     not the conservative bound Delta (delta sweep);
//   * at fixed delta, eventual latency grows linearly in f_a with slope
//     ~Gamma (fault sweep) — O(Delta * f_a + delta).
#include <cstdio>

#include "pacemaker/messages.h"

#include "bench_util.h"

namespace lumiere::bench {
namespace {

double mean_gap_ms(const std::string& pacemaker, Duration delta_actual, std::uint32_t f_a,
                   std::uint32_t n) {
  ScenarioBuilder builder = base_scenario(pacemaker, n, 3001);
  builder.delay(std::make_shared<sim::FixedDelay>(delta_actual));
  with_silent_leaders(builder, f_a);
  Cluster cluster(builder);
  cluster.run_for(Duration::seconds(60));
  const auto& decisions = cluster.metrics().decisions();
  if (decisions.size() < 40) return -1.0;
  // Mean steady-state gap over the post-warmup suffix.
  const std::size_t start = 30;
  const Duration span = decisions.back().at - decisions[start].at;
  return static_cast<double>(span.ticks()) / 1000.0 /
         static_cast<double>(decisions.size() - 1 - start);
}

double worst_gap_ms(const std::string& pacemaker, Duration delta_actual, std::uint32_t f_a,
                    std::uint32_t n) {
  ScenarioBuilder builder = base_scenario(pacemaker, n, 3002);
  builder.delay(std::make_shared<sim::FixedDelay>(delta_actual));
  with_silent_leaders(builder, f_a);
  Cluster cluster(builder);
  cluster.run_for(Duration::seconds(90));
  const auto gap = cluster.metrics().max_decision_gap(TimePoint::origin(), 30);
  return gap ? static_cast<double>(gap->ticks()) / 1000.0 : -1.0;
}

}  // namespace
}  // namespace lumiere::bench

int main() {
  using namespace lumiere::bench;
  using lumiere::Duration;
  const std::uint32_t n = 7;
  std::printf("bench_responsiveness: smooth optimistic responsiveness, n = %u, Delta = 10ms\n",
              n);

  std::printf("\n--- delta sweep at f_a = 0: mean steady-state decision gap (ms) ---\n");
  std::printf("%-16s", "delta (ms)");
  const std::vector<Duration> deltas = {Duration::micros(100), Duration::micros(300),
                                        Duration::millis(1), Duration::millis(3),
                                        Duration::millis(10)};
  for (const Duration d : deltas) {
    std::printf(" | %8.1f", static_cast<double>(d.ticks()) / 1000.0);
  }
  std::printf("\n");
  for (const char* pacemaker : {"lp22", "fever", "basic-lumiere", "lumiere"}) {
    std::printf("%-16s", pacemaker);
    for (const Duration d : deltas) {
      std::printf(" | %8.2f", mean_gap_ms(pacemaker, d, 0, n));
    }
    std::printf("\n");
  }
  std::printf(
      "(expected: Fever/Basic-Lumiere/Lumiere columns scale with delta — ~2-4\n"
      " message delays per decision. LP22 pins at ~Gamma = 40ms regardless of\n"
      " delta: its epoch boundaries are clock-paced, so responsiveness holds\n"
      " only within an epoch — the Table 1 'eventual worst-case latency\n"
      " O(n Delta)' entry made visible.)\n");

  std::printf("\n--- f_a sweep at delta = 0.5ms: worst steady-state decision gap (ms) ---\n");
  std::printf("%-16s", "f_a");
  for (std::uint32_t f_a = 0; f_a <= 2; ++f_a) std::printf(" | %8u", f_a);
  std::printf("\n");
  for (const char* pacemaker : {"lp22", "fever", "basic-lumiere", "lumiere"}) {
    std::printf("%-16s", pacemaker);
    for (std::uint32_t f_a = 0; f_a <= 2; ++f_a) {
      std::printf(" | %8.1f", worst_gap_ms(pacemaker, Duration::micros(500), f_a, n));
    }
    std::printf("\n");
  }
  std::printf(
      "(expected: Fever/Basic-Lumiere grow linearly in f_a with slope ~2 Gamma\n"
      " [one leader tenure]; Lumiere's slope is ~4 Gamma because its bridged\n"
      " random schedule can place a faulty leader's tenures back-to-back across\n"
      " segment boundaries — still O(f_a * Delta), i.e. smooth. LP22's stalls\n"
      " are epoch-length-bound instead: Omega(n Delta) once f_a > 0.)\n");

  // --- Section 3.5 adversary: selective-QC (gap-widening) attack -------
  // f Byzantine leaders do all their duties but announce QCs/VCs only to
  // half the cluster, starving the rest of clock bumps while epochs still
  // "produce QCs". The success criterion (2f+1 leaders, all 10 QCs each)
  // plus the honest QC deadline must keep eventual latency O(f_a Gamma).
  std::printf("\n--- Section 3.5 selective-QC attack, n = 7, f = 2 attackers ---\n");
  std::printf("%-16s | %9s | %12s | %10s\n", "protocol", "decisions", "ev lat (ms)",
              "epoch msgs");
  for (const char* pacemaker : {"lp22", "fever", "basic-lumiere", "lumiere"}) {
    ScenarioBuilder builder = base_scenario(pacemaker, n, 3003);
    builder.delay(std::make_shared<lumiere::sim::FixedDelay>(Duration::micros(200)));
    builder.behaviors(lumiere::adversary::byzantine_set(
        {5, 6}, [](lumiere::ProcessId) {
          return std::make_unique<lumiere::adversary::SelectiveQcBehavior>(4);
        }));
    Cluster cluster(builder);
    cluster.run_for(Duration::seconds(90));
    std::printf("%-16s | %9zu | %12s | %10llu\n", pacemaker,
                cluster.metrics().decisions().size(),
                fmt_ms(cluster.metrics().max_decision_gap(lumiere::TimePoint::origin(),
                                                          30)).c_str(),
                static_cast<unsigned long long>(cluster.metrics().count_for_type(
                    lumiere::pacemaker::kEpochViewMsg)));
  }
  std::printf(
      "(expected: all four stay live — the attack cannot destroy liveness.\n"
      " LP22/Basic-Lumiere pay tens of thousands of heavy epoch-view messages\n"
      " because their quadratic boundary synchronization keeps running; full\n"
      " Lumiere pays only the bootstrap handful: withheld bumps cannot fake\n"
      " the success criterion, and honest QCs keep shrinking the gap per\n"
      " Lemma 5.12 — its stalls stay a small multiple of f_a * Gamma, never\n"
      " epoch-scale 10n * Gamma.)\n");
  return 0;
}
