// Reproduces Figure 1: "LP22: Epoch-synchronization and optimistically
// responsive QC generation."
//
// The figure's story: after the heavy all-to-all synchronization at an
// epoch's start, three good views produce QCs almost instantly (network
// speed, delta << Delta); the fourth view's leader is faulty; because
// LP22 never bumps local clocks on QCs, everyone then sits until their
// clock crawls to c_{V(e)+4} — almost 3 * Gamma of dead time.
//
// We run LP22 with one silent-leader Byzantine process on a fast network
// and print the decision timeline around the worst stall, then the same
// scenario under Basic Lumiere and Lumiere (whose clock bumps cap the
// stall at ~Gamma), plus a per-protocol summary of the ten worst stalls.
#include <algorithm>
#include <cstdio>

#include "bench_util.h"

namespace lumiere::bench {
namespace {

struct Timeline {
  std::string protocol;
  std::vector<runtime::MetricsCollector::Decision> decisions;
  Duration gamma{0};
};

Timeline run_scenario(const std::string& pacemaker, std::uint32_t n) {
  ScenarioBuilder builder = base_scenario(pacemaker, n, 7001);
  builder.delay(std::make_shared<adversary::UniformFastDelay>(Duration::micros(200)));
  builder.behaviors(adversary::byzantine_set(
      {3}, [](ProcessId) { return std::make_unique<adversary::SilentLeaderBehavior>(); }));
  Cluster cluster(builder);
  cluster.run_for(Duration::seconds(45));
  Timeline timeline;
  timeline.protocol = pacemaker;
  timeline.decisions = cluster.metrics().decisions();
  if (pacemaker == "lp22") {
    timeline.gamma = Duration::millis(40);  // (x+1) Delta
  } else if (pacemaker == "basic-lumiere") {
    timeline.gamma = Duration::millis(80);  // 2(x+1) Delta
  } else {
    timeline.gamma = Duration::millis(100);  // 2(x+2) Delta
  }
  return timeline;
}

void print_worst_window(const Timeline& timeline) {
  if (timeline.decisions.size() < 8) {
    std::printf("  (too few decisions)\n");
    return;
  }
  // Find the worst stall past warmup.
  std::size_t worst_index = 1;
  Duration worst = Duration::zero();
  for (std::size_t i = 11; i < timeline.decisions.size(); ++i) {
    const Duration gap = timeline.decisions[i].at - timeline.decisions[i - 1].at;
    if (gap > worst) {
      worst = gap;
      worst_index = i;
    }
  }
  std::printf("  worst stall: %.1f ms (= %.2f Gamma) before view %lld\n",
              static_cast<double>(worst.ticks()) / 1000.0,
              static_cast<double>(worst.ticks()) / static_cast<double>(timeline.gamma.ticks()),
              static_cast<long long>(timeline.decisions[worst_index].view));
  std::printf("  %-10s %-12s %-10s\n", "view", "decided(ms)", "gap(ms)");
  const std::size_t from = worst_index >= 4 ? worst_index - 4 : 0;
  const std::size_t to = std::min(worst_index + 3, timeline.decisions.size() - 1);
  for (std::size_t i = from; i <= to; ++i) {
    const Duration gap =
        i > 0 ? timeline.decisions[i].at - timeline.decisions[i - 1].at : Duration::zero();
    std::printf("  %-10lld %-12.2f %-10.2f%s\n",
                static_cast<long long>(timeline.decisions[i].view),
                static_cast<double>(timeline.decisions[i].at.ticks()) / 1000.0,
                static_cast<double>(gap.ticks()) / 1000.0, i == worst_index ? "   <== stall" : "");
  }
}

void print_top_stalls(const Timeline& timeline) {
  std::vector<Duration> gaps;
  for (std::size_t i = 11; i < timeline.decisions.size(); ++i) {
    gaps.push_back(timeline.decisions[i].at - timeline.decisions[i - 1].at);
  }
  std::sort(gaps.rbegin(), gaps.rend());
  std::printf("  top stalls (ms):");
  for (std::size_t i = 0; i < std::min<std::size_t>(10, gaps.size()); ++i) {
    std::printf(" %.1f", static_cast<double>(gaps[i].ticks()) / 1000.0);
  }
  std::printf("\n");
}

}  // namespace
}  // namespace lumiere::bench

int main() {
  using namespace lumiere::bench;
  std::printf(
      "bench_fig1: Figure 1 scenario — one silent Byzantine leader, fast network\n"
      "(delta = 0.2ms << Delta = 10ms), n = 16 (f = 5; LP22 epochs have f+1 = 6 views).\n");
  for (const char* pacemaker : {"lp22", "basic-lumiere", "lumiere"}) {
    const Timeline timeline = run_scenario(pacemaker, 16);
    std::printf("\n--- %s (Gamma = %.0f ms, %zu decisions) ---\n", timeline.protocol.c_str(),
                static_cast<double>(timeline.gamma.ticks()) / 1000.0,
                timeline.decisions.size());
    print_worst_window(timeline);
    print_top_stalls(timeline);
  }
  std::printf(
      "\nReading guide: LP22's worst stall approaches (f+1) * Gamma_LP22 = 240 ms\n"
      "(the Figure 1 'enter view V(e)+4 after no progress' effect, scaled to this\n"
      "epoch length); Basic Lumiere and Lumiere cap it near one leader tenure\n"
      "because QCs bump lagging clocks forward.\n");
  return 0;
}
