// Authenticator suite costs and the staged-verification payoff.
//
// Two artifacts in one binary:
//
//   * micro: per-scheme sign / verify / share / aggregate timings for
//     every registered authenticator scheme (crypto/authenticator.h).
//     This is the "what does a real signature cost relative to the sim
//     default" table that motivates the pipeline.
//   * stage-throughput: the VerifyPipeline itself (runtime/pipeline.h)
//     fed pre-encoded frames under the costliest scheme, sweeping the
//     worker count. The measured sustained frame rate IS the saturation
//     knee of the verification stage — the offered rate beyond which the
//     stage falls behind — and the claim under test is that it moves
//     strictly up from 1 worker to >= 4 workers.
//   * scaling: the end-to-end request path over TCP under the same
//     scheme, signature checks inline (pipeline off) vs staged
//     (pipeline(on), 1..N workers) across an offered-rate sweep. At
//     n = 4 with batching the consensus cadence, not verification,
//     bounds end-to-end throughput — these rows are the context that
//     the staged path costs nothing end to end.
//
//   ./build/bench_auth [--quick] [--json BENCH_auth.json]
#include <chrono>
#include <cstdio>
#include <thread>

#include "bench_util.h"
#include "crypto/authenticator.h"
#include "consensus/messages.h"
#include "pacemaker/messages.h"
#include "runtime/pipeline.h"
#include "workload/engine.h"
#include "workload/report.h"

namespace lumiere::bench {
namespace {

constexpr std::uint32_t kN = 4;
constexpr std::uint32_t kClientsPerNode = 2;

// ------------------------------------------------------------------ micro

double ns_per_op(const std::function<void()>& op, int iters) {
  // One untimed pass warms caches; the timed loop amortizes clock reads.
  op();
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < iters; ++i) op();
  const auto stop = std::chrono::steady_clock::now();
  return static_cast<double>(
             std::chrono::duration_cast<std::chrono::nanoseconds>(stop - start).count()) /
         iters;
}

struct MicroRow {
  std::string scheme;
  double sign_ns = 0;
  double verify_ns = 0;
  double share_verify_ns = 0;
  double aggregate_verify_ns = 0;
};

MicroRow measure_scheme(const std::string& scheme, bool quick) {
  const int iters = quick ? 200 : 2000;
  const auto auth = crypto::make_authenticator(scheme, kN, 42);
  const crypto::AuthView view(auth.get());
  const crypto::Digest msg = crypto::Sha256::hash("bench-auth statement");
  const crypto::Signer signer = auth->signer_for(0);
  const crypto::Signature sig = signer.sign(msg);
  const crypto::PartialSig share = crypto::threshold_share(signer, msg);
  crypto::QuorumAggregator agg(view, msg, 3);
  for (ProcessId id = 0; id < 3; ++id) {
    agg.add(crypto::threshold_share(auth->signer_for(id), msg));
  }
  const crypto::ThresholdSig aggregate = agg.aggregate();

  MicroRow row;
  row.scheme = scheme;
  row.sign_ns = ns_per_op([&] { (void)signer.sign(msg); }, iters);
  row.verify_ns = ns_per_op([&] { (void)auth->verify(msg, sig); }, iters);
  row.share_verify_ns = ns_per_op([&] { (void)auth->check_share(msg, share); }, iters);
  row.aggregate_verify_ns = ns_per_op([&] { (void)auth->check_aggregate(aggregate); }, iters);
  return row;
}

/// The costliest registered scheme by single-signature verify time: the
/// one whose checks most need to leave the critical thread.
std::string costliest_scheme(const std::vector<MicroRow>& micro) {
  const MicroRow* worst = &micro.front();
  for (const MicroRow& row : micro) {
    if (row.verify_ns > worst->verify_ns) worst = &row;
  }
  return worst->scheme;
}

// ------------------------------------------------------- stage throughput

struct StageRow {
  std::uint32_t workers = 0;
  double frames_per_sec = 0;  ///< sustained decode+verify rate = stage knee
  double claims_per_sec = 0;
};

/// Sustained decode+verify rate of one node's pool at `workers` threads:
/// submit a fixed batch of real encoded frames (one threshold-share claim
/// each) and time until every result drained. The pool is saturated the
/// whole run, so frames/elapsed is the rate beyond which the stage would
/// fall behind — its knee.
StageRow measure_stage(const std::string& scheme, std::uint32_t workers, int frames) {
  const auto auth = crypto::make_authenticator(scheme, kN, 11);
  MessageCodec codec;
  consensus::register_consensus_messages(codec);
  pacemaker::register_pacemaker_messages(codec);
  codec.set_sig_wire(auth->wire_spec());
  runtime::PipelineSpec spec;
  spec.enabled = true;
  spec.workers = workers;
  spec.queue_capacity = 256;
  runtime::VerifyPipeline pipeline(auth.get(), std::move(codec), spec);

  // Distinct statements so no scheme/memo layer can amortize the work.
  std::vector<std::vector<std::uint8_t>> encoded;
  encoded.reserve(frames);
  for (int i = 0; i < frames; ++i) {
    const View v = i;
    const pacemaker::ViewMsg msg(
        v, crypto::threshold_share(auth->signer_for(i % kN), pacemaker::view_msg_statement(v)));
    encoded.push_back(MessageCodec::encode(msg));
  }

  pipeline.start();
  std::size_t drained = 0;
  const auto start = std::chrono::steady_clock::now();
  for (const auto& frame : encoded) {
    pipeline.submit(1, frame);                  // blocks on backpressure
    drained += pipeline.drain([](auto&&) {});   // keep egress bounded too
  }
  while (drained < static_cast<std::size_t>(frames)) {
    drained += pipeline.drain([](auto&&) {});
    if (drained < static_cast<std::size_t>(frames)) std::this_thread::yield();
  }
  const auto stop = std::chrono::steady_clock::now();
  pipeline.stop();

  const double secs =
      std::chrono::duration_cast<std::chrono::duration<double>>(stop - start).count();
  StageRow row;
  row.workers = workers;
  row.frames_per_sec = frames / secs;
  row.claims_per_sec = static_cast<double>(pipeline.stats().claims_checked) / secs;
  return row;
}

double stage_fps(const std::vector<StageRow>& rows, std::uint32_t workers) {
  for (const StageRow& row : rows) {
    if (row.workers == workers) return row.frames_per_sec;
  }
  return 0;
}

// ---------------------------------------------------------------- scaling

struct ScalingRow {
  std::string scheme;
  std::string mode;  ///< "inline" or "staged"
  std::uint32_t workers = 0;
  double offered_rps = 0;
  double committed_rps = 0;
  std::optional<Duration> p50;
  std::optional<Duration> p99;
};

workload::WorkloadSpec load_spec(double rate_per_client) {
  workload::WorkloadSpec spec;
  spec.arrival = workload::Arrival::kConstant;  // steady pressure, no bursts
  spec.clients_per_node = kClientsPerNode;
  spec.rate_per_client = rate_per_client;
  spec.request_bytes = 64;
  spec.mempool.max_batch_bytes = 4096;
  spec.mempool.max_pending_count = 512;
  spec.mempool.max_pending_bytes = 64 * 1024;
  return spec;
}

ScalingRow measure_tcp(const std::string& scheme, std::uint32_t workers, double rate_per_client,
                       Duration run_for, std::uint16_t base_port) {
  ScenarioBuilder builder;
  builder.params(ProtocolParams::for_n(kN, bench_delta_cap(), /*x=*/4))
      .pacemaker("lumiere")
      .core("chained-hotstuff")
      .seed(9001)
      .auth_scheme(scheme)
      .workload(load_spec(rate_per_client))
      .transport_tcp(base_port);
  if (workers > 0) {
    runtime::PipelineSpec pipeline;
    pipeline.enabled = true;
    pipeline.workers = workers;
    pipeline.queue_capacity = 1024;
    builder.pipeline(pipeline);
  }
  Cluster cluster(builder);
  cluster.run_for(run_for);  // wall-clock

  const TimePoint from{run_for.ticks() / 4};  // skip the connect/boot quarter
  const TimePoint to{run_for.ticks()};
  const workload::Report report = cluster.workload_report();
  ScalingRow row;
  row.scheme = scheme;
  row.mode = workers > 0 ? "staged" : "inline";
  row.workers = workers;
  row.offered_rps = rate_per_client * kClientsPerNode * kN;
  row.committed_rps = report.committed_per_sec(from, to);
  row.p50 = report.latency_percentile_between(0.50, from, to);
  row.p99 = report.latency_percentile_between(0.99, from, to);
  return row;
}

/// First offered rate a configuration no longer absorbs (committed falls
/// under 90% of offered); 0 = unsaturated across the sweep.
double knee_of(const std::vector<ScalingRow>& rows, std::uint32_t workers) {
  for (const ScalingRow& row : rows) {
    if (row.workers != workers) continue;
    if (row.committed_rps < 0.9 * row.offered_rps) return row.offered_rps;
  }
  return 0;
}

/// Peak committed rate a configuration reached anywhere in the sweep.
double peak_of(const std::vector<ScalingRow>& rows, std::uint32_t workers) {
  double peak = 0;
  for (const ScalingRow& row : rows) {
    if (row.workers == workers) peak = std::max(peak, row.committed_rps);
  }
  return peak;
}

void run(const BenchArgs& args) {
  // -- micro ----------------------------------------------------------
  std::printf("\nPer-scheme primitive costs (ns/op):\n");
  std::printf("%-10s | %10s | %10s | %12s | %13s\n", "scheme", "sign", "verify", "share-verify",
              "agg-verify(3)");
  std::printf("-----------+------------+------------+--------------+--------------\n");
  std::vector<MicroRow> micro;
  for (const std::string& scheme : crypto::scheme_names()) {
    micro.push_back(measure_scheme(scheme, args.quick));
    const MicroRow& row = micro.back();
    std::printf("%-10s | %10.0f | %10.0f | %12.0f | %13.0f\n", row.scheme.c_str(), row.sign_ns,
                row.verify_ns, row.share_verify_ns, row.aggregate_verify_ns);
  }

  // -- stage throughput ----------------------------------------------
  const std::string scheme = costliest_scheme(micro);
  const int stage_frames = args.quick ? 1000 : 4000;
  std::printf("\nVerification-stage knee under \"%s\" (sustained decode+verify rate of one\n"
              "node's pool; the offered frame rate beyond which the stage falls behind):\n",
              scheme.c_str());
  std::printf("%7s | %12s | %12s\n", "workers", "frames/s", "claims/s");
  std::printf("--------+--------------+--------------\n");
  std::vector<StageRow> stage;
  for (const std::uint32_t workers : {1U, 2U, 4U, 8U}) {
    stage.push_back(measure_stage(scheme, workers, stage_frames));
    std::printf("%7u | %12.0f | %12.0f\n", stage.back().workers, stage.back().frames_per_sec,
                stage.back().claims_per_sec);
  }
  const double stage_knee_one = stage_fps(stage, 1);
  const double stage_knee_four = stage_fps(stage, 4);
  const unsigned host_cpus = std::max(1U, std::thread::hardware_concurrency());
  std::printf("> knee moved %.0f -> %.0f frames/s (%.2fx) from 1 to 4 workers on %u host cpus\n",
              stage_knee_one, stage_knee_four,
              stage_knee_one > 0 ? stage_knee_four / stage_knee_one : 0.0, host_cpus);
  if (host_cpus < 4) {
    std::printf("  (host has < 4 cpus: workers time-slice one core, so the curve is flat\n"
                "   here by construction — read the multi-core CI artifact for the claim)\n");
  }

  // -- scaling --------------------------------------------------------
  const std::vector<std::uint32_t> worker_configs =
      args.quick ? std::vector<std::uint32_t>{0, 1, 4} : std::vector<std::uint32_t>{0, 1, 2, 4, 8};
  const std::vector<double> rates =
      args.quick ? std::vector<double>{100, 400} : std::vector<double>{100, 400, 1000, 2000};
  const Duration tcp_run = args.quick ? Duration::millis(1200) : Duration::seconds(2);

  std::printf("\nTCP request path under \"%s\" (the costliest scheme), pipeline off vs on:\n",
              scheme.c_str());
  std::printf("%-7s | %7s | %9s | %11s | %9s | %9s\n", "mode", "workers", "offered/s",
              "committed/s", "p50 (ms)", "p99 (ms)");
  std::printf("--------+---------+-----------+-------------+-----------+-----------\n");
  std::vector<ScalingRow> scaling;
  std::uint16_t next_port = 27000;
  for (const std::uint32_t workers : worker_configs) {
    for (const double rate : rates) {
      scaling.push_back(measure_tcp(scheme, workers, rate, tcp_run, next_port));
      next_port = static_cast<std::uint16_t>(next_port + kN);
      const ScalingRow& row = scaling.back();
      std::printf("%-7s | %7u | %9.0f | %11.1f | %9s | %9s\n", row.mode.c_str(), row.workers,
                  row.offered_rps, row.committed_rps, fmt_ms(row.p50).c_str(),
                  fmt_ms(row.p99).c_str());
    }
  }

  const double knee_one = knee_of(scaling, 1);
  const double knee_four = knee_of(scaling, 4);
  const double peak_one = peak_of(scaling, 1);
  const double peak_four = peak_of(scaling, 4);
  std::printf("\n> 1 worker:  knee at offered %.0f req/s, peak committed %.1f req/s\n",
              knee_one, peak_one);
  std::printf("> 4 workers: knee at offered %.0f req/s, peak committed %.1f req/s\n",
              knee_four, peak_four);
  std::printf("(knee 0 = unsaturated across this sweep; the staged pool scales when the\n"
              " 4-worker knee/peak sits strictly above the 1-worker one)\n");

  // -- artifact -------------------------------------------------------
  JsonRows json;
  for (const MicroRow& row : micro) {
    json.add_row()
        .set("section", "micro")
        .set("scheme", row.scheme)
        .set("sign_ns", row.sign_ns)
        .set("verify_ns", row.verify_ns)
        .set("share_verify_ns", row.share_verify_ns)
        .set("aggregate_verify_ns", row.aggregate_verify_ns);
  }
  for (const StageRow& row : stage) {
    json.add_row()
        .set("section", "stage-throughput")
        .set("scheme", scheme)
        .set("workers", static_cast<std::uint64_t>(row.workers))
        .set("frames_per_sec", row.frames_per_sec)
        .set("claims_per_sec", row.claims_per_sec);
  }
  for (const ScalingRow& row : scaling) {
    json.add_row()
        .set("section", "scaling")
        .set("scheme", row.scheme)
        .set("mode", row.mode)
        .set("workers", static_cast<std::uint64_t>(row.workers))
        .set("offered_rps", row.offered_rps)
        .set("committed_rps", row.committed_rps)
        .set_ms("p50_ms", row.p50)
        .set_ms("p99_ms", row.p99);
  }
  json.add_row()
      .set("section", "summary")
      .set("scheme", scheme)
      .set("host_cpus", static_cast<std::uint64_t>(host_cpus))
      .set("verify_knee_fps_1_worker", stage_knee_one)
      .set("verify_knee_fps_4_workers", stage_knee_four)
      .set("verify_knee_scaling_x", stage_knee_one > 0 ? stage_knee_four / stage_knee_one : 0.0)
      .set("tcp_knee_rps_1_worker", knee_one)
      .set("tcp_knee_rps_4_workers", knee_four)
      .set("tcp_peak_rps_1_worker", peak_one)
      .set("tcp_peak_rps_4_workers", peak_four);
  if (!args.json_path.empty() && !json.write(args.json_path, "auth")) {
    std::exit(1);
  }
}

}  // namespace
}  // namespace lumiere::bench

int main(int argc, char** argv) {
  const lumiere::bench::BenchArgs args = lumiere::bench::parse_bench_args(argc, argv);
  std::printf("bench_auth: authenticator scheme costs and staged-verification scaling\n"
              "(all registered schemes; TCP sweep under the costliest one, n = %u)\n",
              4U);
  lumiere::bench::run(args);
  return 0;
}
