// End-to-end request path: arrival-rate sweep per pacemaker, locating
// saturation throughput and the latency knee.
//
// Open-loop Poisson clients (2 per node, n = 4) offer a fixed request
// rate against bounded mempools; the engine reports what actually
// committed (requests/sec) and what it cost each request (submit ->
// commit latency p50/p95/p99). Below saturation committed == offered and
// latency sits near the commit cadence; past it the pool fills, drivers
// shed, and the p99 walks away — the knee. The same sweep runs on the
// deterministic simulator and on the TCP transport (real frames,
// wall-clock pacing), so the sim numbers can be sanity-checked against
// real sockets.
//
//   ./build/bench_workload [--quick] [--json BENCH_workload.json]
#include <cstdio>

#include "bench_util.h"
#include "workload/engine.h"
#include "workload/report.h"

namespace lumiere::bench {
namespace {

constexpr std::uint32_t kN = 4;
constexpr std::uint32_t kClientsPerNode = 2;

struct WorkloadRow {
  std::string transport;
  std::string pacemaker;
  double offered_rps = 0;    ///< cluster-wide request arrival rate
  double committed_rps = 0;  ///< requests/sec actually committed
  std::optional<Duration> p50;
  std::optional<Duration> p95;
  std::optional<Duration> p99;
  std::uint64_t shed = 0;         ///< open-loop drops on backpressure
  std::uint64_t max_depth = 0;    ///< deepest mempool backlog observed
};

workload::WorkloadSpec spec_for(double rate_per_client) {
  workload::WorkloadSpec spec;
  spec.arrival = workload::Arrival::kPoisson;
  spec.clients_per_node = kClientsPerNode;
  spec.rate_per_client = rate_per_client;
  spec.request_bytes = 64;
  spec.mempool.max_batch_bytes = 4096;
  spec.mempool.max_pending_count = 512;
  spec.mempool.max_pending_bytes = 64 * 1024;
  return spec;
}

WorkloadRow measure_sim(const std::string& pacemaker, double rate_per_client,
                        Duration run_for, bool dissem) {
  ScenarioBuilder builder = base_scenario(pacemaker, kN, 7001);
  builder.params(ProtocolParams::for_n(kN, bench_delta_cap(), /*x=*/4));
  builder.core("chained-hotstuff");
  builder.delay(std::make_shared<lumiere::sim::FixedDelay>(Duration::micros(500)));
  builder.workload(spec_for(rate_per_client));
  if (dissem) builder.dissemination();
  Cluster cluster(builder);
  cluster.run_for(run_for);

  // Measure past the bootstrap (first second): epoch synchronization and
  // initial queue fill would otherwise pollute the steady-state numbers.
  const TimePoint from{Duration::seconds(1).ticks()};
  const TimePoint to{run_for.ticks()};
  const workload::Report report = cluster.workload_report();
  WorkloadRow row;
  row.transport = "sim";
  row.pacemaker = pacemaker;
  row.offered_rps = rate_per_client * kClientsPerNode * kN;
  row.committed_rps = report.committed_per_sec(from, to);
  row.p50 = report.latency_percentile_between(0.50, from, to);
  row.p95 = report.latency_percentile_between(0.95, from, to);
  row.p99 = report.latency_percentile_between(0.99, from, to);
  row.shed = report.shed;
  row.max_depth = report.max_queue_depth;
  return row;
}

WorkloadRow measure_tcp(const std::string& pacemaker, double rate_per_client,
                        Duration run_for, std::uint16_t base_port, bool dissem) {
  ScenarioBuilder builder;
  builder.params(ProtocolParams::for_n(kN, bench_delta_cap(), /*x=*/4))
      .pacemaker(pacemaker)
      .core("chained-hotstuff")
      .seed(7001)
      .workload(spec_for(rate_per_client))
      .transport_tcp(base_port);
  if (dissem) builder.dissemination();
  Cluster cluster(builder);
  cluster.run_for(run_for);  // wall-clock: 1 simulated us = 1 us

  const TimePoint from{run_for.ticks() / 4};  // skip the connect/boot quarter
  const TimePoint to{run_for.ticks()};
  const workload::Report report = cluster.workload_report();
  WorkloadRow row;
  row.transport = "tcp";
  row.pacemaker = pacemaker;
  row.offered_rps = rate_per_client * kClientsPerNode * kN;
  row.committed_rps = report.committed_per_sec(from, to);
  row.p50 = report.latency_percentile_between(0.50, from, to);
  row.p95 = report.latency_percentile_between(0.95, from, to);
  row.p99 = report.latency_percentile_between(0.99, from, to);
  row.shed = report.shed;
  row.max_depth = report.max_queue_depth;
  return row;
}

void print_row(const WorkloadRow& row) {
  std::printf("%-5s | %-14s | %9.0f | %11.1f | %9s | %9s | %9s | %7llu | %6llu\n",
              row.transport.c_str(), row.pacemaker.c_str(), row.offered_rps,
              row.committed_rps, fmt_ms(row.p50).c_str(), fmt_ms(row.p95).c_str(),
              fmt_ms(row.p99).c_str(), static_cast<unsigned long long>(row.shed),
              static_cast<unsigned long long>(row.max_depth));
}

void run(const BenchArgs& args) {
  const bool dissem = args.dissem.value_or(false);
  const std::vector<std::string> protocols =
      args.quick ? std::vector<std::string>{"lumiere", "cogsworth"}
                 : table1_protocols();
  // Per-client arrival rates; cluster-wide offered = rate x 8 clients.
  const std::vector<double> rates =
      args.quick ? std::vector<double>{25, 100, 400} : std::vector<double>{25, 100, 400, 1600};
  const Duration sim_run = args.quick ? Duration::seconds(5) : Duration::seconds(12);
  const Duration tcp_run = args.quick ? Duration::millis(1200) : Duration::seconds(2);

  std::printf("\n%-5s | %-14s | %9s | %11s | %9s | %9s | %9s | %7s | %6s\n", "xport",
              "protocol", "offered/s", "committed/s", "p50 (ms)", "p95 (ms)", "p99 (ms)",
              "shed", "depth");
  std::printf("------+----------------+-----------+-------------+-----------+-----------+------"
              "-----+---------+-------\n");

  JsonRows json;
  std::uint16_t next_port = 26000;
  std::vector<WorkloadRow> rows;
  for (const std::string& pacemaker : protocols) {
    for (const double rate : rates) {
      rows.push_back(measure_sim(pacemaker, rate, sim_run, dissem));
      print_row(rows.back());
    }
    for (const double rate : rates) {
      rows.push_back(measure_tcp(pacemaker, rate, tcp_run, next_port, dissem));
      next_port = static_cast<std::uint16_t>(next_port + kN);
      print_row(rows.back());
    }
    // Knee summary over the sim sweep: saturation = best committed rate;
    // the knee is the first offered rate the system no longer absorbs.
    double saturation = 0;
    double knee = 0;
    for (const WorkloadRow& row : rows) {
      if (row.pacemaker != pacemaker || row.transport != "sim") continue;
      saturation = std::max(saturation, row.committed_rps);
      if (knee == 0 && row.committed_rps < 0.9 * row.offered_rps) knee = row.offered_rps;
    }
    const std::string knee_note =
        knee > 0 ? " (knee at offered " + std::to_string(static_cast<int>(knee)) + " req/s)"
                 : ", unsaturated in this sweep";
    std::printf("      > %-14s saturation ~%.0f req/s%s\n", pacemaker.c_str(), saturation,
                knee_note.c_str());
  }

  for (const WorkloadRow& row : rows) {
    json.add_row()
        .set("transport", row.transport)
        .set("protocol", row.pacemaker)
        .set("dissem", dissem ? "on" : "off")
        .set("n", static_cast<std::uint64_t>(kN))
        .set("offered_rps", row.offered_rps)
        .set("committed_rps", row.committed_rps)
        .set_ms("p50_ms", row.p50)
        .set_ms("p95_ms", row.p95)
        .set_ms("p99_ms", row.p99)
        .set("shed", row.shed)
        .set("max_queue_depth", row.max_depth);
  }

  std::printf(
      "\nReading guide: below saturation committed/s tracks offered/s and p50 sits\n"
      "near the commit cadence; past the knee the bounded mempool fills, open-loop\n"
      "clients shed (offered != admitted), and p99 walks away from p50. The TCP rows\n"
      "run the identical scenario over real localhost frames with wall-clock pacing —\n"
      "shapes, not absolute values, are the comparison.\n");

  if (!args.json_path.empty() && !json.write(args.json_path, "workload")) {
    std::exit(1);
  }
}

}  // namespace
}  // namespace lumiere::bench

int main(int argc, char** argv) {
  const lumiere::bench::BenchArgs args = lumiere::bench::parse_bench_args(argc, argv);
  std::printf("bench_workload: client request throughput and latency vs arrival rate\n"
              "(open-loop Poisson, n = 4, 2 clients/node, 64B requests, bounded mempools,\n"
              "dissemination %s)\n",
              args.dissem.value_or(false) ? "on: proposals order certified batch references"
                                          : "off: legacy inline batches");
  lumiere::bench::run(args);
  return 0;
}
