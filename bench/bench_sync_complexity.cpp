// Measures per-view-sync cost growth against n, per pacemaker, from the
// observability layer's SyncSpans (src/obs/).
//
// Setup per (pacemaker, n): GST at the origin, the worst permitted
// network (every message takes max(GST, t) + Delta) and f silent-leader
// Byzantine processes — every faulty-leader view forces a view-sync
// episode, and the span tracer brackets each one per node. The table
// reports the honest per-sync distributions (messages, bytes,
// authenticator ops) next to normalized O(n) / O(n^2) theory curves and
// the fitted log-log growth exponent (obs/ledger.h).
//
// Expected shape (paper): Cogsworth/NK20's per-sync communication grows
// quadratically even in the benign steady state; RareSync/LP22 pay a
// quadratic all-to-all epoch sync; Fever and (Basic) Lumiere keep the
// common-case episode linear, with the quadratic reserved for the
// worst case — the Lewis-Pye lower bound says some quadratic episodes
// are unavoidable.
//
//   --quick              n in {4, 13, 31, 64, 100}; shorter runs (CI)
//   --json <path>        machine-readable rows (BENCH_sync_complexity.json)
//   --spans-jsonl <path> raw per-span JSONL export across every config
//   --chrome-trace <path> Chrome trace-event export of the largest
//                        lumiere config (chrome://tracing, ui.perfetto.dev)
#include <cstdio>
#include <cstring>
#include <fstream>

#include "bench_util.h"
#include "obs/ledger.h"

namespace lumiere::bench {
namespace {

struct SyncArgs {
  bool quick = false;
  std::string json_path;
  std::string spans_jsonl_path;
  std::string chrome_trace_path;
};

SyncArgs parse_args(int argc, char** argv) {
  SyncArgs args;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      args.quick = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      args.json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--spans-jsonl") == 0 && i + 1 < argc) {
      args.spans_jsonl_path = argv[++i];
    } else if (std::strcmp(argv[i], "--chrome-trace") == 0 && i + 1 < argc) {
      args.chrome_trace_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "%s: unknown argument \"%s\" (supported: --quick, --json <path>, "
                   "--spans-jsonl <path>, --chrome-trace <path>)\n",
                   argv[0], argv[i]);
    }
  }
  return args;
}

struct Sample {
  std::uint32_t n = 0;
  std::uint32_t f = 0;
  obs::LedgerSummary summary;
  std::vector<obs::SyncSpan> honest_spans;
};

/// Runs one (pacemaker, n) config until ~`episodes` sync episodes
/// completed cluster-wide (or the time cap), and aggregates the honest
/// nodes' spans.
Sample measure(const std::string& pacemaker, std::uint32_t n, bool quick) {
  Sample sample;
  sample.n = n;
  sample.f = (n - 1) / 3;
  ScenarioBuilder builder = base_scenario(pacemaker, n, 1700 + n);
  builder.gst(TimePoint::origin());
  builder.delay(nullptr);  // worst permitted: max(GST, t) + Delta
  with_silent_leaders(builder, sample.f);
  Cluster cluster(builder);
  // Slice the run and stop once enough episodes landed: one episode
  // completes ~n spans (one per node), and large n under the worst-case
  // network is expensive to simulate past the point of diminishing
  // returns.
  const std::size_t target_spans = static_cast<std::size_t>(quick ? 4 : 8) * n;
  const Duration cap = quick ? Duration::seconds(20) : Duration::seconds(60);
  const obs::SyncTracer* tracer = cluster.sync_tracer();
  for (Duration ran = Duration::zero(); ran < cap; ran = ran + Duration::seconds(2)) {
    cluster.run_for(Duration::seconds(2));
    if (tracer->completed_count() >= target_spans) break;
  }
  const std::vector<bool> byz = cluster.byzantine_mask();
  for (const obs::SyncSpan& span : tracer->completed_spans()) {
    if (span.node < byz.size() && !byz[span.node]) sample.honest_spans.push_back(span);
  }
  sample.summary = obs::ComplexityLedger::summarize(sample.honest_spans);
  return sample;
}

std::vector<std::uint32_t> sweep_sizes(bool quick) {
  if (quick) return {4, 13, 31, 64, 100};
  return {4, 13, 31, 64, 100, 151, 256};
}

void run_sweep(const SyncArgs& args, JsonRows* json) {
  std::ofstream spans_out;
  if (!args.spans_jsonl_path.empty()) {
    spans_out.open(args.spans_jsonl_path);
    if (!spans_out) {
      std::fprintf(stderr, "bench: cannot open %s for writing\n", args.spans_jsonl_path.c_str());
    }
  }

  for (const std::string& pacemaker : table1_protocols()) {
    std::printf("\n=== per-sync cost vs n: %s (f silent leaders, worst permitted network) ===\n",
                pacemaker.c_str());
    std::printf("%5s | %4s | %6s | %10s | %9s | %9s | %10s | %10s | %11s\n", "n", "f", "spans",
                "msgs/sync", "~O(n)", "~O(n^2)", "bytes/sync", "auth/sync", "dur p50 ms");
    std::printf("------+------+--------+------------+-----------+-----------+------------+--"
                "----------+------------\n");
    std::vector<std::pair<double, double>> n_vs_msgs;
    std::vector<std::pair<double, double>> n_vs_auth;
    double base_msgs = 0.0;
    double base_n = 0.0;
    for (const std::uint32_t n : sweep_sizes(args.quick)) {
      const Sample sample = measure(pacemaker, n, args.quick);
      const obs::LedgerSummary& s = sample.summary;
      if (base_n == 0.0 && s.msgs.mean > 0.0) {
        base_n = n;
        base_msgs = s.msgs.mean;
      }
      // Theory curves anchored at the smallest measured size: what the
      // mean would be if cost grew exactly linearly / quadratically.
      const double theory_n = base_n > 0 ? base_msgs * n / base_n : 0.0;
      const double theory_n2 = base_n > 0 ? base_msgs * n * n / (base_n * base_n) : 0.0;
      std::printf("%5u | %4u | %6llu | %10.1f | %9.1f | %9.1f | %10.1f | %10.1f | %11.2f\n", n,
                  sample.f, static_cast<unsigned long long>(s.spans), s.msgs.mean, theory_n,
                  theory_n2, s.bytes.mean, s.auth_ops.mean, s.duration_us.p50 / 1000.0);
      if (s.spans > 0) {
        n_vs_msgs.emplace_back(n, s.msgs.mean);
        n_vs_auth.emplace_back(n, s.auth_ops.mean);
      }
      if (json != nullptr) {
        json->add_row()
            .set("kind", "sample")
            .set("protocol", pacemaker)
            .set("n", static_cast<std::uint64_t>(n))
            .set("f", static_cast<std::uint64_t>(sample.f))
            .set("spans", s.spans)
            .set("msgs_mean", s.msgs.mean)
            .set("msgs_p95", s.msgs.p95)
            .set("bytes_mean", s.bytes.mean)
            .set("auth_mean", s.auth_ops.mean)
            .set("auth_p95", s.auth_ops.p95)
            .set("dur_p50_ms", s.duration_us.p50 / 1000.0)
            .set("theory_n", theory_n)
            .set("theory_n2", theory_n2);
      }
      if (spans_out.is_open()) {
        obs::ComplexityLedger::write_jsonl(spans_out, pacemaker + "/n=" + std::to_string(n),
                                           sample.honest_spans);
      }
      // The largest lumiere config doubles as the Chrome-trace showcase.
      if (!args.chrome_trace_path.empty() && pacemaker == "lumiere" &&
          n == sweep_sizes(args.quick).back()) {
        std::ofstream trace_out(args.chrome_trace_path);
        if (trace_out) {
          obs::ComplexityLedger::write_chrome_trace(trace_out, sample.honest_spans);
        } else {
          std::fprintf(stderr, "bench: cannot open %s for writing\n",
                       args.chrome_trace_path.c_str());
        }
      }
    }
    const double msgs_exp = obs::ComplexityLedger::fit_exponent(n_vs_msgs);
    const double auth_exp = obs::ComplexityLedger::fit_exponent(n_vs_auth);
    std::printf("fitted growth exponent: msgs/sync ~ n^%.2f, auth-ops/sync ~ n^%.2f "
                "(1.0 = linear, 2.0 = quadratic)\n",
                msgs_exp, auth_exp);
    if (json != nullptr) {
      json->add_row()
          .set("kind", "fit")
          .set("protocol", pacemaker)
          .set("msgs_exponent", msgs_exp)
          .set("auth_exponent", auth_exp);
    }
  }
}

}  // namespace
}  // namespace lumiere::bench

int main(int argc, char** argv) {
  using lumiere::bench::JsonRows;
  const lumiere::bench::SyncArgs args = lumiere::bench::parse_args(argc, argv);
  std::printf("bench_sync_complexity: per-view-sync cost growth from obs/ spans\n");
  JsonRows json;
  lumiere::bench::run_sweep(args, &json);
  if (!args.json_path.empty() && !json.write(args.json_path, "sync_complexity")) return 1;
  std::printf(
      "\nReading guide: the exponent column is the log-log slope of mean\n"
      "per-sync cost against n. Cogsworth-family episodes trend quadratic;\n"
      "Lumiere keeps the measured episode near-linear under f silent leaders,\n"
      "reserving the quadratic for worst-case epochs (the Lewis-Pye bound).\n");
  return 0;
}
