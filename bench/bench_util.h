// Shared helpers for the reproduction benches.
//
// Every bench binary runs argument-free, bounded-time, and prints the
// rows/series of the paper artifact it regenerates (Table 1, Figure 1)
// plus the supporting sweeps. Absolute values are simulator time; the
// claims under test are *shapes* (who wins, growth order, crossover) —
// see EXPERIMENTS.md.
#pragma once

#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "adversary/behaviors.h"
#include "adversary/delay_adversary.h"
#include "runtime/cluster.h"
#include "runtime/experiment.h"

namespace lumiere::bench {

using runtime::Cluster;
using runtime::ScenarioBuilder;

/// Common bench flags. Every bench still runs argument-free; CI passes
///   --quick          bound the iteration count / sweep size
///   --json <path>    additionally write the measured rows as JSON
///   --dissem={on,off}  ablate the data-dissemination layer (src/dissem/):
///                    on = proposals order certified batch references,
///                    off = legacy inline batches. Unset = each bench's
///                    default (off, matching the historical numbers).
struct BenchArgs {
  bool quick = false;
  std::string json_path;  ///< empty = no JSON artifact
  std::optional<bool> dissem;
};

inline BenchArgs parse_bench_args(int argc, char** argv) {
  BenchArgs args;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      args.quick = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      args.json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--dissem=on") == 0) {
      args.dissem = true;
    } else if (std::strcmp(argv[i], "--dissem=off") == 0) {
      args.dissem = false;
    } else {
      std::fprintf(stderr,
                   "%s: unknown argument \"%s\" (supported: --quick, --json <path>, "
                   "--dissem={on,off})\n",
                   argv[0], argv[i]);
    }
  }
  return args;
}

/// Machine-readable bench output: a flat array of row objects, written as
///   {"bench": "<name>", "rows": [{...}, ...]}
/// Values are numbers, strings, or null (from empty optionals), so the
/// perf trajectory can be diffed across CI runs without parsing tables.
class JsonRows {
 public:
  class Row {
   public:
    Row& set(const std::string& key, double value) {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%.6g", value);
      fields_.emplace_back(key, buf);
      return *this;
    }
    Row& set(const std::string& key, std::uint64_t value) {
      fields_.emplace_back(key, std::to_string(value));
      return *this;
    }
    Row& set(const std::string& key, const std::string& value) {
      // Built with append rather than operator+ chains: GCC 12's
      // -Wrestrict false-positives on the latter under -O2 (PR105651).
      std::string quoted;
      quoted.reserve(value.size() + 2);
      quoted.push_back('"');
      quoted.append(escape(value));
      quoted.push_back('"');
      fields_.emplace_back(key, std::move(quoted));
      return *this;
    }
    Row& set(const std::string& key, const char* value) {
      return set(key, std::string(value));
    }
    /// Optional duration in fractional milliseconds; empty -> null.
    Row& set_ms(const std::string& key, std::optional<Duration> value) {
      if (!value) {
        fields_.emplace_back(key, "null");
        return *this;
      }
      return set(key, static_cast<double>(value->ticks()) / 1000.0);
    }
    Row& set_count(const std::string& key, std::optional<std::uint64_t> value) {
      if (!value) {
        fields_.emplace_back(key, "null");
        return *this;
      }
      return set(key, *value);
    }

   private:
    friend class JsonRows;
    static std::string escape(const std::string& raw) {
      std::string out;
      for (const char c : raw) {
        if (c == '"' || c == '\\') out.push_back('\\');
        if (c == '\n') {
          out += "\\n";
          continue;
        }
        out.push_back(c);
      }
      return out;
    }
    std::vector<std::pair<std::string, std::string>> fields_;  // key -> encoded value
  };

  Row& add_row() {
    rows_.emplace_back();
    return rows_.back();
  }

  /// Writes the artifact; returns false (with a note on stderr) on I/O
  /// failure so CI fails visibly rather than uploading nothing.
  [[nodiscard]] bool write(const std::string& path, const std::string& bench) const {
    std::ofstream out(path);
    if (!out) {
      std::fprintf(stderr, "bench: cannot open %s for writing\n", path.c_str());
      return false;
    }
    out << "{\"bench\": \"" << Row::escape(bench) << "\", \"rows\": [";
    for (std::size_t r = 0; r < rows_.size(); ++r) {
      out << (r == 0 ? "\n" : ",\n") << "  {";
      const auto& fields = rows_[r].fields_;
      for (std::size_t i = 0; i < fields.size(); ++i) {
        if (i > 0) out << ", ";
        out << "\"" << Row::escape(fields[i].first) << "\": " << fields[i].second;
      }
      out << "}";
    }
    out << "\n]}\n";
    return out.good();
  }

 private:
  std::vector<Row> rows_;
};

/// The protocols compared in Table 1, plus RareSync (the other
/// quadratic-optimal synchronizer the paper discusses in §6), by
/// ProtocolRegistry name.
inline std::vector<std::string> table1_protocols() {
  return {"cogsworth", "nk20", "raresync", "lp22", "fever", "basic-lumiere", "lumiere"};
}

/// Known post-GST delivery bound used by all benches.
inline Duration bench_delta_cap() { return Duration::millis(10); }

/// First `count` process ids.
inline std::vector<ProcessId> first_ids(std::uint32_t count) {
  std::vector<ProcessId> ids;
  for (ProcessId id = 0; id < count; ++id) ids.push_back(id);
  return ids;
}

/// Baseline scenario for a protocol at size n.
inline ScenarioBuilder base_scenario(const std::string& pacemaker, std::uint32_t n,
                                     std::uint64_t seed) {
  ScenarioBuilder builder;
  builder.params(ProtocolParams::for_n(n, bench_delta_cap()))
      .pacemaker(pacemaker)
      .core("simple-view")
      .seed(seed);
  return builder;
}

/// Attaches f_a silent-leader Byzantine processes.
inline void with_silent_leaders(ScenarioBuilder& builder, std::uint32_t f_a) {
  if (f_a == 0) return;
  builder.behaviors(adversary::byzantine_set(first_ids(f_a), [](ProcessId) {
    return std::make_unique<adversary::SilentLeaderBehavior>();
  }));
}

/// Formats an optional duration in milliseconds.
inline std::string fmt_ms(std::optional<Duration> d) {
  if (!d) return "-";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f", static_cast<double>(d->ticks()) / 1000.0);
  return buf;
}

inline std::string fmt_count(std::optional<std::uint64_t> v) {
  if (!v) return "-";
  return std::to_string(*v);
}

/// Worst-case window measurement: with GST at the origin, a synchronized
/// start, the worst permitted network (every message at the Delta bound)
/// and f_a silent leaders, the costliest communication window between
/// consecutive decisions lies in the warmup (it contains the heavy epoch
/// synchronization and the longest faulty-leader stretches). Returns
/// {max messages in any of the first `windows` inter-decision windows
/// (including start -> first decision), max latency of those windows}.
struct WorstCaseSample {
  std::optional<std::uint64_t> comm;
  std::optional<Duration> latency;
};

inline WorstCaseSample worst_case_sample(const std::string& pacemaker, std::uint32_t n,
                                         std::uint64_t seed, std::size_t windows = 10,
                                         Duration run = Duration::seconds(240)) {
  const std::uint32_t f = (n - 1) / 3;
  ScenarioBuilder builder = base_scenario(pacemaker, n, seed);
  builder.gst(TimePoint::origin());
  builder.delay(nullptr);  // worst permitted: max(GST, t) + Delta
  with_silent_leaders(builder, f);
  Cluster cluster(builder);
  cluster.run_for(run);
  const auto& decisions = cluster.metrics().decisions();
  WorstCaseSample sample;
  if (decisions.empty()) return sample;
  std::uint64_t worst_comm = decisions.front().msgs_before;
  Duration worst_latency = decisions.front().at - TimePoint::origin();
  for (std::size_t i = 1; i < decisions.size() && i <= windows; ++i) {
    worst_comm = std::max(worst_comm, decisions[i].msgs_before - decisions[i - 1].msgs_before);
    worst_latency = std::max(worst_latency, decisions[i].at - decisions[i - 1].at);
  }
  sample.comm = worst_comm;
  sample.latency = worst_latency;
  return sample;
}

/// Least-squares slope of log(y) against log(x): the empirical growth
/// order of y(x) ~ x^slope.
inline double loglog_slope(const std::vector<double>& x, const std::vector<double>& y) {
  double sx = 0;
  double sy = 0;
  double sxx = 0;
  double sxy = 0;
  std::size_t count = 0;
  for (std::size_t i = 0; i < x.size() && i < y.size(); ++i) {
    if (x[i] <= 0 || y[i] <= 0) continue;
    const double lx = std::log(x[i]);
    const double ly = std::log(y[i]);
    sx += lx;
    sy += ly;
    sxx += lx * lx;
    sxy += lx * ly;
    ++count;
  }
  if (count < 2) return 0.0;
  const double denominator = static_cast<double>(count) * sxx - sx * sx;
  if (denominator == 0) return 0.0;
  return (static_cast<double>(count) * sxy - sx * sy) / denominator;
}

}  // namespace lumiere::bench
