// Reproduces Table 1: "Summary of the results for state-of-the-art
// optimistically responsive protocols."
//
// For each protocol, four measures (Section 2):
//   * worst-case communication    — honest messages from GST to the first
//     honest-leader decision, under the worst permitted network (every
//     message takes max(GST,t)+Delta), staggered joins, f silent-leader
//     Byzantine processes;
//   * eventual worst-case communication — max honest messages between
//     consecutive decisions in the steady state, with f_a = f faults
//     (and, as a bonus column, f_a = 0);
//   * worst-case latency          — GST to first decision in the same
//     worst-case run;
//   * eventual worst-case latency — max steady-state inter-decision gap.
//
// Expected shape (paper):            worst comm  ev. comm    worst lat  ev. lat
//   Cogsworth/NK20                   O(n^3)      O(n+n fa^2) O(n^2 D)   O(fa^2 D + d)
//   LP22                             O(n^2)      O(n^2)      O(n D)     O(n D)
//   Fever (bounded-clocks model)     O(n^2)      O(n fa + n) O(n D)*    O(fa D + d)
//   Lumiere                          O(n^2)      O(n fa + n) O(n D)     O(fa D + d)
// (*Fever's worst-case latency is O(fa D + d) in its own model; under a
//  desynchronized start it has no guarantee at all — which is the point.)
#include <cstdio>

#include "bench_util.h"

namespace lumiere::bench {
namespace {

struct Row {
  std::string protocol;
  std::optional<std::uint64_t> worst_comm;
  std::optional<std::uint64_t> ev_comm_faults;
  std::optional<std::uint64_t> ev_comm_clean;
  std::optional<Duration> worst_lat;
  std::optional<Duration> ev_lat_faults;
  std::optional<Duration> ev_lat_clean;
};

Row measure(const std::string& pacemaker, std::uint32_t n) {
  Row row;
  row.protocol = pacemaker;
  const std::uint32_t f = (n - 1) / 3;

  // ---- worst-case run: GST at origin, worst permitted network, f
  // silent leaders; the costliest warmup window is the sample (it
  // contains the heavy epoch synchronization and the longest runs of
  // faulty leaders). ----------------------------------------------------
  {
    const WorstCaseSample sample = worst_case_sample(pacemaker, n, 1001);
    row.worst_comm = sample.comm;
    row.worst_lat = sample.latency;
  }

  // ---- eventual runs: benign delta << Delta ---------------------------
  const auto eventual = [&](std::uint32_t f_a)
      -> std::pair<std::optional<std::uint64_t>, std::optional<Duration>> {
    ScenarioBuilder builder = base_scenario(pacemaker, n, 1002);
    builder.delay(std::make_shared<sim::FixedDelay>(Duration::micros(500)));
    with_silent_leaders(builder, f_a);
    Cluster cluster(builder);
    cluster.run_for(Duration::seconds(90));
    return {cluster.metrics().max_msg_gap(TimePoint::origin(), /*warmup=*/30),
            cluster.metrics().max_decision_gap(TimePoint::origin(), /*warmup=*/30)};
  };
  std::tie(row.ev_comm_faults, row.ev_lat_faults) = eventual(f);
  std::tie(row.ev_comm_clean, row.ev_lat_clean) = eventual(0);
  return row;
}

void run_table(std::uint32_t n, JsonRows* json) {
  const std::uint32_t f = (n - 1) / 3;
  std::printf("\n=== Table 1 (measured), n = %u, f = f_a = %u, Delta = 10ms, delta = 0.5ms ===\n",
              n, f);
  std::printf("%-14s | %11s | %13s | %13s | %10s | %13s | %13s\n", "protocol", "worst comm",
              "ev comm fa=f", "ev comm fa=0", "worst lat", "ev lat fa=f", "ev lat fa=0");
  std::printf("%-14s | %11s | %13s | %13s | %10s | %13s | %13s\n", "", "(msgs)", "(msgs/dec)",
              "(msgs/dec)", "(ms)", "(ms)", "(ms)");
  std::printf("---------------+-------------+---------------+---------------+------------+--"
              "-------------+--------------\n");
  for (const std::string& pacemaker : table1_protocols()) {
    const Row row = measure(pacemaker, n);
    std::printf("%-14s | %11s | %13s | %13s | %10s | %13s | %13s\n", row.protocol.c_str(),
                fmt_count(row.worst_comm).c_str(), fmt_count(row.ev_comm_faults).c_str(),
                fmt_count(row.ev_comm_clean).c_str(), fmt_ms(row.worst_lat).c_str(),
                fmt_ms(row.ev_lat_faults).c_str(), fmt_ms(row.ev_lat_clean).c_str());
    if (json != nullptr) {
      json->add_row()
          .set("protocol", row.protocol)
          .set("n", static_cast<std::uint64_t>(n))
          .set("f", static_cast<std::uint64_t>(f))
          .set_count("worst_comm_msgs", row.worst_comm)
          .set_count("ev_comm_fa_f_msgs", row.ev_comm_faults)
          .set_count("ev_comm_fa_0_msgs", row.ev_comm_clean)
          .set_ms("worst_lat_ms", row.worst_lat)
          .set_ms("ev_lat_fa_f_ms", row.ev_lat_faults)
          .set_ms("ev_lat_fa_0_ms", row.ev_lat_clean);
    }
  }
}

}  // namespace
}  // namespace lumiere::bench

int main(int argc, char** argv) {
  using lumiere::bench::BenchArgs;
  using lumiere::bench::JsonRows;
  const BenchArgs args = lumiere::bench::parse_bench_args(argc, argv);
  std::printf("bench_table1: reproduction of Table 1 (see EXPERIMENTS.md for the mapping)\n");
  JsonRows json;
  // --quick (CI): the n = 7 table alone bounds the run; the growth-order
  // story needs the second size and stays a local/full-run concern.
  lumiere::bench::run_table(7, &json);
  if (!args.quick) lumiere::bench::run_table(13, &json);
  if (!args.json_path.empty() && !json.write(args.json_path, "table1")) return 1;
  std::printf(
      "\nReading guide: Cogsworth/NK20's worst-case columns blow up fastest;\n"
      "LP22's eventual comm stays quadratic-ish (epoch syncs) and its eventual\n"
      "latency contains Omega(n Delta) stalls; Fever and Lumiere keep eventual\n"
      "cost linear in f_a — but Fever needed a synchronized start to get there.\n");
  return 0;
}
