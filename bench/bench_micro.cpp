// Micro-benchmarks (google-benchmark) for the substrate hot paths:
// crypto, serialization, the event queue, and the simulated network.
// These are sanity/perf regressions, not paper artifacts.
#include <benchmark/benchmark.h>

#include "consensus/quorum_cert.h"
#include "crypto/sha256.h"
#include "crypto/authenticator.h"
#include "pacemaker/messages.h"
#include "ser/serializer.h"
#include "sim/event_queue.h"
#include "sim/network.h"
#include "sim/simulator.h"

namespace lumiere {
namespace {

void BM_Sha256(benchmark::State& state) {
  std::vector<std::uint8_t> data(static_cast<std::size_t>(state.range(0)), 0xAB);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::Sha256::hash(std::span<const std::uint8_t>(data)));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(64)->Arg(1024)->Arg(65536);

void BM_DefaultSchemeSign(benchmark::State& state) {
  const auto auth = crypto::make_authenticator(crypto::kDefaultScheme, 4, 1);
  const auto signer = auth->signer_for(0);
  const auto digest = crypto::Sha256::hash("message");
  for (auto _ : state) {
    benchmark::DoNotOptimize(signer.sign(digest));
  }
}
BENCHMARK(BM_DefaultSchemeSign);

void BM_ThresholdAggregate(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const std::uint32_t m = 2 * ((n - 1) / 3) + 1;
  const auto auth = crypto::make_authenticator(crypto::kDefaultScheme, n, 1);
  const auto digest = crypto::Sha256::hash("statement");
  std::vector<crypto::PartialSig> shares;
  for (ProcessId id = 0; id < m; ++id) {
    shares.push_back(crypto::threshold_share(auth->signer_for(id), digest));
  }
  for (auto _ : state) {
    crypto::QuorumAggregator agg(crypto::AuthView(auth.get()), digest, m);
    for (const auto& share : shares) agg.add(share);
    benchmark::DoNotOptimize(agg.aggregate());
  }
}
BENCHMARK(BM_ThresholdAggregate)->Arg(4)->Arg(16)->Arg(64);

void BM_ThresholdVerify(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const std::uint32_t m = 2 * ((n - 1) / 3) + 1;
  const auto auth = crypto::make_authenticator(crypto::kDefaultScheme, n, 1);
  const auto digest = crypto::Sha256::hash("statement");
  crypto::QuorumAggregator agg(crypto::AuthView(auth.get()), digest, m);
  for (ProcessId id = 0; id < m; ++id) {
    agg.add(crypto::threshold_share(auth->signer_for(id), digest));
  }
  const auto sig = agg.aggregate();
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::AuthView(auth.get()).verify_aggregate(sig, m));
  }
}
BENCHMARK(BM_ThresholdVerify)->Arg(4)->Arg(16)->Arg(64);

void BM_QcVerify(benchmark::State& state) {
  // Full verification of one QC per iteration: statement recompute plus
  // 2f+1 share-MAC checks. The baseline the memo competes against.
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const ProtocolParams params = ProtocolParams::for_n(n, Duration::millis(10));
  const auto auth = crypto::make_authenticator(crypto::kDefaultScheme, n, 1);
  const auto hash = crypto::Sha256::hash("block");
  const auto statement = consensus::QuorumCert::statement(7, hash);
  crypto::QuorumAggregator agg(crypto::AuthView(auth.get()), statement, params.quorum());
  for (ProcessId id = 0; id < params.quorum(); ++id) {
    agg.add(crypto::threshold_share(auth->signer_for(id), statement));
  }
  const consensus::QuorumCert qc(7, hash, agg.aggregate());
  for (auto _ : state) {
    benchmark::DoNotOptimize(qc.verify(crypto::AuthView(auth.get()), params));
  }
}
BENCHMARK(BM_QcVerify)->Arg(4)->Arg(16)->Arg(64);

void BM_QcVerifyCached(benchmark::State& state) {
  // Re-verifying a known-good QC through the memo: one serialize + one
  // SHA-256, independent of the quorum size.
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const ProtocolParams params = ProtocolParams::for_n(n, Duration::millis(10));
  const auto auth = crypto::make_authenticator(crypto::kDefaultScheme, n, 1);
  const auto hash = crypto::Sha256::hash("block");
  const auto statement = consensus::QuorumCert::statement(7, hash);
  crypto::QuorumAggregator agg(crypto::AuthView(auth.get()), statement, params.quorum());
  for (ProcessId id = 0; id < params.quorum(); ++id) {
    agg.add(crypto::threshold_share(auth->signer_for(id), statement));
  }
  const consensus::QuorumCert qc(7, hash, agg.aggregate());
  consensus::QcVerifyCache cache;
  benchmark::DoNotOptimize(qc.verify(crypto::AuthView(auth.get()), params, &cache));  // warm the memo
  for (auto _ : state) {
    benchmark::DoNotOptimize(qc.verify(crypto::AuthView(auth.get()), params, &cache));
  }
}
BENCHMARK(BM_QcVerifyCached)->Arg(4)->Arg(16)->Arg(64);

void BM_StatementCached(benchmark::State& state) {
  // The n-votes-for-one-block shape a leader aggregates every view.
  consensus::StatementCache cache;
  const auto hash = crypto::Sha256::hash("block");
  View view = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.get(view, hash));
  }
}
BENCHMARK(BM_StatementCached);

void BM_EventQueueScheduleAndPop(benchmark::State& state) {
  for (auto _ : state) {
    sim::EventQueue queue;
    for (int i = 0; i < 1000; ++i) {
      queue.schedule(TimePoint(1000 - i), [] {});
    }
    TimePoint at;
    sim::EventFn fn;
    while (queue.pop(at, fn)) {
    }
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventQueueScheduleAndPop);

void BM_MessageRoundTrip(benchmark::State& state) {
  const auto auth = crypto::make_authenticator(crypto::kDefaultScheme, 4, 1);
  const pacemaker::ViewMsg msg(
      42, crypto::threshold_share(auth->signer_for(0), pacemaker::view_msg_statement(42)));
  MessageCodec codec;
  pacemaker::register_pacemaker_messages(codec);
  for (auto _ : state) {
    const auto frame = MessageCodec::encode(msg);
    benchmark::DoNotOptimize(codec.decode(frame));
  }
}
BENCHMARK(BM_MessageRoundTrip);

void BM_NetworkBroadcast(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  sim::Simulator sim;
  sim::Network network(&sim, n, TimePoint::origin(), Duration::millis(10),
                       std::make_shared<sim::FixedDelay>(Duration::micros(100)), 1);
  for (ProcessId id = 0; id < n; ++id) {
    network.register_endpoint(id, [](ProcessId, const MessagePtr&) {});
  }
  const auto auth = crypto::make_authenticator(crypto::kDefaultScheme, n, 1);
  const auto msg = std::make_shared<pacemaker::ViewMsg>(
      1, crypto::threshold_share(auth->signer_for(0), pacemaker::view_msg_statement(1)));
  for (auto _ : state) {
    network.broadcast(0, msg);
    sim.run_until_idle();
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_NetworkBroadcast)->Arg(4)->Arg(16)->Arg(64);

}  // namespace
}  // namespace lumiere

BENCHMARK_MAIN();
