// Seamlessness: what a scripted partition costs each protocol — the
// "clients pay for faults only when they actually happen" claim
// (PAPER.md Sections 1 and 6; the metric Autobahn calls seamlessness).
//
// Scenario, per protocol: n = 7 under a benign 0.5ms network; the fault
// schedule cuts the cluster into {0..3} | {4..6} (neither side holds a
// 2f+1 = 5 quorum, so decisions MUST stall), heals two seconds later,
// and the run continues. The partition parks cross-cut traffic (the
// partial-synchrony adversary delays, never destroys), so every protocol
// keeps its liveness assumptions; what differs is the bill:
//
//   recovery   heal -> first decision, and the worst gap afterwards —
//              every synchronizer here restores commit latency quickly
//              once the network returns (lumiere within one epoch step);
//   cut sync   honest messages sent WHILE the network was down: pure
//              synchronization spend, since nothing can commit. The
//              timeout-ladder protocols (cogsworth, nk20) keep timing
//              out, wishing and relaying for the whole cut — their spend
//              grows linearly with the cut and sits ~4x above lumiere /
//              fever, which park after one failed synchronization and
//              wait quietly (Theorem 1.1 (4): one heavy sync per
//              asynchronous interval, not a recurring tax).
//
// With --dissem={on,off} the binary instead runs the data-dissemination
// ablation (the Autobahn decoupling claim): n = 13 under client load, a
// QUORUM-PRESERVING partition {0..8} | {9..12} — the majority side keeps
// 2f+1 = 9, so consensus keeps committing through the cut — and the
// committed-request rate through the cut is the metric. With
// dissemination off, a request commits only when its own node leads a
// successful view and each proposal carries one leader-local batch, so
// throughput collapses to a fraction of the offered load; with it on,
// every certified batch from every connected origin is available to
// whichever leader proposes next, and proposals drain the whole
// majority's backlog as fixed-size references. Compare two runs
// (--dissem=on vs --dissem=off) on the cut_rps column.
//
//   ./build/bench_seamless [--quick] [--json BENCH_seamless.json]
//   ./build/bench_seamless --quick --dissem=on --json BENCH_dissem.json
#include <cstdio>

#include "bench_util.h"
#include "workload/engine.h"
#include "workload/report.h"

namespace lumiere::bench {
namespace {

constexpr std::uint32_t kN = 7;
const TimePoint kCutAt{Duration::seconds(4).ticks()};
const Duration kCutLen = Duration::seconds(2);
const TimePoint kHealAt = kCutAt + kCutLen;
const Duration kRunFor = Duration::seconds(12);
/// Steady-state window measured before the cut (skips bootstrap).
const TimePoint kPreFrom{Duration::seconds(1).ticks()};

struct SeamlessRow {
  std::string protocol;
  std::optional<Duration> pre_gap;     ///< worst gap in [1s, cut)
  std::uint64_t cut_decisions = 0;     ///< decisions in [cut + Delta, heal)
  std::uint64_t cut_sync_msgs = 0;     ///< honest msgs sent in [cut, heal)
  std::optional<Duration> recovery;    ///< heal -> first decision
  std::optional<Duration> post_gap;    ///< worst gap after recovery
};

SeamlessRow measure(const std::string& pacemaker, std::uint64_t seed) {
  ScenarioBuilder builder = base_scenario(pacemaker, kN, seed);
  builder.delay(std::make_shared<sim::FixedDelay>(Duration::micros(500)));
  builder.partition({{0, 1, 2, 3}, {4, 5, 6}}, kCutAt);
  builder.heal(kHealAt);
  Cluster cluster(builder);
  cluster.run_for(kRunFor);

  const runtime::MetricsCollector& metrics = cluster.metrics();
  SeamlessRow row;
  row.protocol = pacemaker;
  row.pre_gap = metrics.max_decision_gap_between(kPreFrom, kCutAt);
  // In-flight pre-cut messages may still complete one QC within Delta of
  // the cut; past that, a decision would mean the partition leaked.
  row.cut_decisions = metrics.decisions_between(kCutAt + bench_delta_cap(), kHealAt);
  row.cut_sync_msgs = metrics.msgs_between(kCutAt, kHealAt);
  row.recovery = metrics.latency_to_first_decision(kHealAt);
  if (row.recovery) {
    row.post_gap = metrics.max_decision_gap_between(kHealAt + *row.recovery + Duration::millis(200),
                                                    TimePoint(kRunFor.ticks()));
  }
  return row;
}

// ---- data-dissemination ablation (--dissem={on,off}) ----

/// n = 13: f = 4, quorum = 9 — the partitioned majority {0..8} is
/// exactly one quorum, so decisions ride through the cut.
constexpr std::uint32_t kDissemN = 13;
constexpr std::uint32_t kDissemClientsPerNode = 2;
/// Per-client Poisson rate: 13 x 2 x 400 = 10400 req/s offered, far past
/// what one leader-local 4 KiB batch per view can carry — the regime
/// where ordering pointers instead of payloads pays.
constexpr double kDissemRate = 400;

struct DissemRow {
  std::string protocol;
  double offered_rps = 0;
  double pre_rps = 0;        ///< committed req/s in [1s, cut)
  double cut_rps = 0;        ///< committed req/s in [cut + Delta, heal)
  double post_rps = 0;       ///< committed req/s in [heal + 200ms, end)
  std::uint64_t certs = 0;   ///< batches certified over the whole run
  std::optional<Duration> cert_p50;  ///< batch issue -> certified, p50
  std::uint64_t cut_dissem_bytes = 0;  ///< dissemination bytes in [cut, heal)
  std::uint64_t shed = 0;
  std::uint64_t commit_misses = 0;  ///< commits matching no submission (must be 0)
};

DissemRow measure_dissem(const std::string& pacemaker, bool dissem, bool quick,
                         std::uint64_t seed) {
  const TimePoint cut_at{Duration::seconds(quick ? 2 : 3).ticks()};
  const TimePoint heal_at = cut_at + Duration::seconds(2);
  const Duration run_for = Duration::seconds(quick ? 6 : 9);

  workload::WorkloadSpec spec;
  spec.arrival = workload::Arrival::kPoisson;
  spec.clients_per_node = kDissemClientsPerNode;
  spec.rate_per_client = kDissemRate;
  spec.request_bytes = 64;
  spec.mempool.max_batch_bytes = 4096;
  spec.mempool.max_pending_count = 512;
  spec.mempool.max_pending_bytes = 64 * 1024;

  ScenarioBuilder builder = base_scenario(pacemaker, kDissemN, seed);
  builder.params(ProtocolParams::for_n(kDissemN, bench_delta_cap(), /*x=*/4));
  builder.core("chained-hotstuff");
  builder.delay(std::make_shared<sim::FixedDelay>(Duration::micros(500)));
  builder.workload(spec);
  if (dissem) builder.dissemination();
  builder.partition({{0, 1, 2, 3, 4, 5, 6, 7, 8}, {9, 10, 11, 12}}, cut_at);
  builder.heal(heal_at);
  Cluster cluster(builder);
  cluster.run_for(run_for);

  const workload::Report report = cluster.workload_report();
  const runtime::MetricsCollector& metrics = cluster.metrics();
  DissemRow row;
  row.protocol = pacemaker;
  row.offered_rps = kDissemRate * kDissemClientsPerNode * kDissemN;
  row.pre_rps = report.committed_per_sec(TimePoint{Duration::seconds(1).ticks()}, cut_at);
  row.cut_rps = report.committed_per_sec(cut_at + bench_delta_cap(), heal_at);
  row.post_rps = report.committed_per_sec(heal_at + Duration::millis(200),
                                          TimePoint{run_for.ticks()});
  row.certs = metrics.batches_certified();
  row.cert_p50 = metrics.batch_cert_latency_percentile(0.50);
  row.cut_dissem_bytes = metrics.dissem_bytes_between(cut_at, heal_at);
  row.shed = report.shed;
  row.commit_misses = report.commit_misses;
  return row;
}

void run_dissem(const BenchArgs& args, bool dissem) {
  const std::vector<std::string> protocols =
      args.quick ? std::vector<std::string>{"lumiere"}
                 : std::vector<std::string>{"lumiere", "fever", "cogsworth"};

  std::printf("\n=== Dissemination ablation (%s): quorum-preserving partition "
              "{0-8}|{9-12}, n = %u, 2s cut, %.0f req/s offered ===\n",
              dissem ? "on" : "off", kDissemN,
              kDissemRate * kDissemClientsPerNode * kDissemN);
  std::printf("%-14s | %9s | %9s | %9s | %9s | %6s | %9s | %11s | %7s | %6s\n", "protocol",
              "offered/s", "pre req/s", "cut req/s", "post req/s", "certs", "cert p50",
              "cut dis KiB", "shed", "misses");
  std::printf("---------------+-----------+-----------+-----------+-----------+--------+------"
              "-----+-------------+---------+-------\n");

  JsonRows json;
  for (const std::string& protocol : protocols) {
    const DissemRow row = measure_dissem(protocol, dissem, args.quick, 9102);
    std::printf("%-14s | %9.0f | %9.1f | %9.1f | %9.1f | %6llu | %9s | %11.1f | %7llu | %6llu\n",
                row.protocol.c_str(), row.offered_rps, row.pre_rps, row.cut_rps, row.post_rps,
                static_cast<unsigned long long>(row.certs), fmt_ms(row.cert_p50).c_str(),
                static_cast<double>(row.cut_dissem_bytes) / 1024.0,
                static_cast<unsigned long long>(row.shed),
                static_cast<unsigned long long>(row.commit_misses));
    json.add_row()
        .set("protocol", row.protocol)
        .set("dissem", dissem ? "on" : "off")
        .set("n", static_cast<std::uint64_t>(kDissemN))
        .set("offered_rps", row.offered_rps)
        .set("pre_rps", row.pre_rps)
        .set("cut_rps", row.cut_rps)
        .set("post_rps", row.post_rps)
        .set("batches_certified", row.certs)
        .set_ms("cert_p50_ms", row.cert_p50)
        .set("cut_dissem_bytes", row.cut_dissem_bytes)
        .set("shed", row.shed)
        .set("commit_misses", row.commit_misses);
  }

  std::printf(
      "\nReading guide: the majority side holds a quorum, so commits ride through the\n"
      "cut either way — what differs is how many. Off: each successful view carries\n"
      "one leader-local <=4 KiB batch, so cut req/s is capped by view cadence and\n"
      "every other node's requests wait for their own leadership slot. On: every\n"
      "majority batch certifies (f+1 = 5 acks) and any leader orders it by\n"
      "reference, so cut req/s tracks the majority's offered load. \"misses\" must\n"
      "be 0: every committed request matches exactly one client submission.\n"
      "Compare --dissem=on vs --dissem=off runs on the cut req/s column.\n");

  if (!args.json_path.empty() && !json.write(args.json_path, "seamless_dissem")) {
    std::exit(1);
  }
}

void run(const BenchArgs& args) {
  if (args.dissem.has_value()) {
    run_dissem(args, *args.dissem);
    return;
  }
  const std::vector<std::string> protocols =
      args.quick ? std::vector<std::string>{"cogsworth", "nk20", "fever", "lumiere"}
                 : std::vector<std::string>{"cogsworth", "nk20",          "lp22",
                                            "fever",     "basic-lumiere", "lumiere"};

  std::printf("\n=== Seamlessness: %llds partition {0-3}|{4-6}, n = %u, delta = 0.5ms, "
              "cut at %.0fs ===\n",
              static_cast<long long>(kCutLen.ticks() / 1'000'000), kN, kCutAt.to_seconds());
  std::printf("%-14s | %12s | %8s | %13s | %12s | %13s | %12s\n", "protocol", "pre gap (ms)",
              "cut decs", "cut sync msgs", "vs lumiere", "recovery (ms)", "post gap (ms)");
  std::printf("---------------+--------------+----------+---------------+--------------+-----"
              "----------+-------------\n");

  std::vector<SeamlessRow> rows;
  rows.reserve(protocols.size());
  for (const std::string& protocol : protocols) rows.push_back(measure(protocol, 2024));

  std::uint64_t lumiere_sync = 0;
  for (const SeamlessRow& row : rows) {
    if (row.protocol == "lumiere") lumiere_sync = row.cut_sync_msgs;
  }

  JsonRows json;
  for (const SeamlessRow& row : rows) {
    const double penalty = lumiere_sync > 0 ? static_cast<double>(row.cut_sync_msgs) /
                                                  static_cast<double>(lumiere_sync)
                                            : 0.0;
    std::printf("%-14s | %12s | %8llu | %13llu | %11.1fx | %13s | %12s\n", row.protocol.c_str(),
                fmt_ms(row.pre_gap).c_str(),
                static_cast<unsigned long long>(row.cut_decisions),
                static_cast<unsigned long long>(row.cut_sync_msgs), penalty,
                fmt_ms(row.recovery).c_str(), fmt_ms(row.post_gap).c_str());
    json.add_row()
        .set("protocol", row.protocol)
        .set("n", static_cast<std::uint64_t>(kN))
        .set("cut_seconds", static_cast<double>(kCutLen.ticks()) / 1e6)
        .set_ms("pre_gap_ms", row.pre_gap)
        .set("cut_decisions", row.cut_decisions)
        .set("cut_sync_msgs", row.cut_sync_msgs)
        .set("penalty_vs_lumiere", penalty)
        .set_ms("recovery_ms", row.recovery)
        .set_ms("post_gap_ms", row.post_gap);
  }

  std::printf(
      "\nReading guide: \"cut decs\" must be 0 (no quorum exists inside the cut) and\n"
      "every protocol's recovery is fast once the network heals — the partition\n"
      "parks messages, preserving the reliable-channel assumption. The bill that\n"
      "differs is \"cut sync msgs\": lumiere and fever park after one failed\n"
      "synchronization and wait for the network, while cogsworth/nk20 burn a\n"
      "timeout-and-relay ladder for the whole cut — a ~4x spend that grows\n"
      "linearly with the cut length, paid exactly when bandwidth is scarcest.\n");

  if (!args.json_path.empty() && !json.write(args.json_path, "seamless")) {
    std::exit(1);
  }
}

}  // namespace
}  // namespace lumiere::bench

int main(int argc, char** argv) {
  const lumiere::bench::BenchArgs args = lumiere::bench::parse_bench_args(argc, argv);
  std::printf("bench_seamless: the cost of a scripted partition, per protocol "
              "(fault-schedule engine)\n");
  lumiere::bench::run(args);
  return 0;
}
