// Seamlessness: what a scripted partition costs each protocol — the
// "clients pay for faults only when they actually happen" claim
// (PAPER.md Sections 1 and 6; the metric Autobahn calls seamlessness).
//
// Scenario, per protocol: n = 7 under a benign 0.5ms network; the fault
// schedule cuts the cluster into {0..3} | {4..6} (neither side holds a
// 2f+1 = 5 quorum, so decisions MUST stall), heals two seconds later,
// and the run continues. The partition parks cross-cut traffic (the
// partial-synchrony adversary delays, never destroys), so every protocol
// keeps its liveness assumptions; what differs is the bill:
//
//   recovery   heal -> first decision, and the worst gap afterwards —
//              every synchronizer here restores commit latency quickly
//              once the network returns (lumiere within one epoch step);
//   cut sync   honest messages sent WHILE the network was down: pure
//              synchronization spend, since nothing can commit. The
//              timeout-ladder protocols (cogsworth, nk20) keep timing
//              out, wishing and relaying for the whole cut — their spend
//              grows linearly with the cut and sits ~4x above lumiere /
//              fever, which park after one failed synchronization and
//              wait quietly (Theorem 1.1 (4): one heavy sync per
//              asynchronous interval, not a recurring tax).
//
//   ./build/bench_seamless [--quick] [--json BENCH_seamless.json]
#include <cstdio>

#include "bench_util.h"

namespace lumiere::bench {
namespace {

constexpr std::uint32_t kN = 7;
const TimePoint kCutAt{Duration::seconds(4).ticks()};
const Duration kCutLen = Duration::seconds(2);
const TimePoint kHealAt = kCutAt + kCutLen;
const Duration kRunFor = Duration::seconds(12);
/// Steady-state window measured before the cut (skips bootstrap).
const TimePoint kPreFrom{Duration::seconds(1).ticks()};

struct SeamlessRow {
  std::string protocol;
  std::optional<Duration> pre_gap;     ///< worst gap in [1s, cut)
  std::uint64_t cut_decisions = 0;     ///< decisions in [cut + Delta, heal)
  std::uint64_t cut_sync_msgs = 0;     ///< honest msgs sent in [cut, heal)
  std::optional<Duration> recovery;    ///< heal -> first decision
  std::optional<Duration> post_gap;    ///< worst gap after recovery
};

SeamlessRow measure(const std::string& pacemaker, std::uint64_t seed) {
  ScenarioBuilder builder = base_scenario(pacemaker, kN, seed);
  builder.delay(std::make_shared<sim::FixedDelay>(Duration::micros(500)));
  builder.partition({{0, 1, 2, 3}, {4, 5, 6}}, kCutAt);
  builder.heal(kHealAt);
  Cluster cluster(builder);
  cluster.run_for(kRunFor);

  const runtime::MetricsCollector& metrics = cluster.metrics();
  SeamlessRow row;
  row.protocol = pacemaker;
  row.pre_gap = metrics.max_decision_gap_between(kPreFrom, kCutAt);
  // In-flight pre-cut messages may still complete one QC within Delta of
  // the cut; past that, a decision would mean the partition leaked.
  row.cut_decisions = metrics.decisions_between(kCutAt + bench_delta_cap(), kHealAt);
  row.cut_sync_msgs = metrics.msgs_between(kCutAt, kHealAt);
  row.recovery = metrics.latency_to_first_decision(kHealAt);
  if (row.recovery) {
    row.post_gap = metrics.max_decision_gap_between(kHealAt + *row.recovery + Duration::millis(200),
                                                    TimePoint(kRunFor.ticks()));
  }
  return row;
}

void run(const BenchArgs& args) {
  const std::vector<std::string> protocols =
      args.quick ? std::vector<std::string>{"cogsworth", "nk20", "fever", "lumiere"}
                 : std::vector<std::string>{"cogsworth", "nk20",          "lp22",
                                            "fever",     "basic-lumiere", "lumiere"};

  std::printf("\n=== Seamlessness: %llds partition {0-3}|{4-6}, n = %u, delta = 0.5ms, "
              "cut at %.0fs ===\n",
              static_cast<long long>(kCutLen.ticks() / 1'000'000), kN, kCutAt.to_seconds());
  std::printf("%-14s | %12s | %8s | %13s | %12s | %13s | %12s\n", "protocol", "pre gap (ms)",
              "cut decs", "cut sync msgs", "vs lumiere", "recovery (ms)", "post gap (ms)");
  std::printf("---------------+--------------+----------+---------------+--------------+-----"
              "----------+-------------\n");

  std::vector<SeamlessRow> rows;
  rows.reserve(protocols.size());
  for (const std::string& protocol : protocols) rows.push_back(measure(protocol, 2024));

  std::uint64_t lumiere_sync = 0;
  for (const SeamlessRow& row : rows) {
    if (row.protocol == "lumiere") lumiere_sync = row.cut_sync_msgs;
  }

  JsonRows json;
  for (const SeamlessRow& row : rows) {
    const double penalty = lumiere_sync > 0 ? static_cast<double>(row.cut_sync_msgs) /
                                                  static_cast<double>(lumiere_sync)
                                            : 0.0;
    std::printf("%-14s | %12s | %8llu | %13llu | %11.1fx | %13s | %12s\n", row.protocol.c_str(),
                fmt_ms(row.pre_gap).c_str(),
                static_cast<unsigned long long>(row.cut_decisions),
                static_cast<unsigned long long>(row.cut_sync_msgs), penalty,
                fmt_ms(row.recovery).c_str(), fmt_ms(row.post_gap).c_str());
    json.add_row()
        .set("protocol", row.protocol)
        .set("n", static_cast<std::uint64_t>(kN))
        .set("cut_seconds", static_cast<double>(kCutLen.ticks()) / 1e6)
        .set_ms("pre_gap_ms", row.pre_gap)
        .set("cut_decisions", row.cut_decisions)
        .set("cut_sync_msgs", row.cut_sync_msgs)
        .set("penalty_vs_lumiere", penalty)
        .set_ms("recovery_ms", row.recovery)
        .set_ms("post_gap_ms", row.post_gap);
  }

  std::printf(
      "\nReading guide: \"cut decs\" must be 0 (no quorum exists inside the cut) and\n"
      "every protocol's recovery is fast once the network heals — the partition\n"
      "parks messages, preserving the reliable-channel assumption. The bill that\n"
      "differs is \"cut sync msgs\": lumiere and fever park after one failed\n"
      "synchronization and wait for the network, while cogsworth/nk20 burn a\n"
      "timeout-and-relay ladder for the whole cut — a ~4x spend that grows\n"
      "linearly with the cut length, paid exactly when bandwidth is scarcest.\n");

  if (!args.json_path.empty() && !json.write(args.json_path, "seamless")) {
    std::exit(1);
  }
}

}  // namespace
}  // namespace lumiere::bench

int main(int argc, char** argv) {
  const lumiere::bench::BenchArgs args = lumiere::bench::parse_bench_args(argc, argv);
  std::printf("bench_seamless: the cost of a scripted partition, per protocol "
              "(fault-schedule engine)\n");
  lumiere::bench::run(args);
  return 0;
}
