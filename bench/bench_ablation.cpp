// Ablations of Lumiere's design choices (Section 3.5 / DESIGN.md):
//
//   1. Success criterion (full Lumiere) vs none (Basic Lumiere): heavy
//      epoch-synchronization traffic after GST, eventual communication.
//   2. QC-production deadline on/off: the deadline exists to *shrink* the
//      honest gap (Lemma 5.12); without it steady-state liveness is
//      unaffected in benign runs (it is a worst-case device).
//   3. Delta-wait before epoch-view messages on/off: without the wait,
//      in-flight tail QCs can trigger spurious heavy synchronizations.
//   4. Gamma multiplier sweep: larger Gamma = more slack, higher latency
//      under faults.
#include <cstdio>
#include <map>

#include "core/lumiere.h"
#include "pacemaker/fever.h"
#include "pacemaker/messages.h"

#include "bench_util.h"

namespace lumiere::bench {
namespace {

struct AblationResult {
  std::uint64_t epoch_msgs = 0;  // heavy-sync traffic by honest processes
  std::optional<std::uint64_t> ev_comm;
  std::optional<Duration> ev_lat;
  std::size_t decisions = 0;
};

AblationResult run_case(const std::string& pacemaker, bool deadline, bool delta_wait,
                        Duration gamma_override, std::uint32_t f_a) {
  ScenarioBuilder builder = base_scenario(pacemaker, 7, 4001);
  builder.delay(std::make_shared<sim::FixedDelay>(Duration::micros(500)));
  builder.lumiere(runtime::LumiereOptions{deadline, delta_wait});
  builder.gamma(gamma_override);
  with_silent_leaders(builder, f_a);
  Cluster cluster(builder);
  cluster.run_for(Duration::seconds(90));
  AblationResult result;
  result.epoch_msgs = cluster.metrics().count_for_type(pacemaker::kEpochViewMsg);
  result.ev_comm = cluster.metrics().max_msg_gap(TimePoint::origin(), 30);
  result.ev_lat = cluster.metrics().max_decision_gap(TimePoint::origin(), 30);
  result.decisions = cluster.metrics().decisions().size();
  return result;
}

void print_row(const char* label, const AblationResult& result) {
  std::printf("%-34s | %10llu | %12s | %12s | %9zu\n", label,
              static_cast<unsigned long long>(result.epoch_msgs),
              fmt_count(result.ev_comm).c_str(), fmt_ms(result.ev_lat).c_str(),
              result.decisions);
}

}  // namespace
}  // namespace lumiere::bench

int main() {
  using namespace lumiere::bench;
  using lumiere::Duration;
  using lumiere::TimePoint;
  std::printf("bench_ablation: Lumiere design-choice ablations (n = 7, f_a = 2 silent "
              "leaders unless noted)\n\n");
  std::printf("%-34s | %10s | %12s | %12s | %9s\n", "variant", "epoch msgs", "ev comm",
              "ev lat (ms)", "decisions");
  std::printf("-----------------------------------+------------+--------------+--------------+-"
              "---------\n");

  print_row("lumiere (full)",
            run_case("lumiere", true, true, Duration::zero(), 2));
  print_row("basic-lumiere (no success crit.)",
            run_case("basic-lumiere", true, true, Duration::zero(), 2));
  print_row("lumiere, no QC deadline",
            run_case("lumiere", false, true, Duration::zero(), 2));
  print_row("lumiere, no Delta-wait",
            run_case("lumiere", true, false, Duration::zero(), 2));
  print_row("lumiere, Gamma x1.5",
            run_case("lumiere", true, true, Duration::millis(150), 2));
  print_row("lumiere, Gamma x2",
            run_case("lumiere", true, true, Duration::millis(200), 2));
  print_row("lumiere (full), f_a = 0",
            run_case("lumiere", true, true, Duration::zero(), 0));
  print_row("basic-lumiere, f_a = 0",
            run_case("basic-lumiere", true, true, Duration::zero(), 0));

  // --- Section 3.3 "Reducing Gamma": Fever leader-tenure sweep ---------
  std::printf("\n--- Fever leader-tenure sweep (Section 3.3 remark), f_a = 2 ---\n");
  std::printf("%-10s | %12s | %12s | %9s\n", "tenure", "Gamma (ms)", "ev lat (ms)",
              "decisions");
  for (const std::uint32_t tenure : {2U, 3U, 4U, 6U}) {
    ScenarioBuilder builder = base_scenario("fever", 7, 4002);
    builder.delay(std::make_shared<lumiere::sim::FixedDelay>(Duration::micros(500)));
    builder.fever(lumiere::runtime::FeverOptions{tenure});
    with_silent_leaders(builder, 2);
    Cluster cluster(builder);
    cluster.run_for(Duration::seconds(90));
    const auto gamma = lumiere::pacemaker::FeverPacemaker::default_gamma(
        cluster.scenario().params, tenure);
    std::printf("%-10u | %12.0f | %12s | %9zu\n", tenure,
                static_cast<double>(gamma.ticks()) / 1000.0,
                fmt_ms(cluster.metrics().max_decision_gap(TimePoint::origin(), 30)).c_str(),
                cluster.metrics().decisions().size());
  }
  std::printf("(expected: Gamma falls toward (x+1) Delta as tenure grows; worst\n"
              " faulty-leader stalls track tenure * Gamma — the paper's trade-off)\n");

  // --- Bounded clock drift sweep (Section 2/4 remark) ------------------
  // The analysis assumes drift-free clocks after GST "for simplicity" and
  // claims easy extension to bounded drift. Sweep the per-processor rate
  // skew: liveness and the steady state must be insensitive until skew
  // becomes a meaningful fraction of the Gamma slack.
  std::printf("\n--- Clock-drift sweep (Section 2/4 remark), lumiere, n = 7, f_a = 2 ---\n");
  std::printf("%-12s | %10s | %12s | %9s\n", "drift (ppm)", "epoch msgs", "ev lat (ms)",
              "decisions");
  for (const std::int64_t ppm : {0LL, 200LL, 2'000LL, 20'000LL, 50'000LL}) {
    ScenarioBuilder builder = base_scenario("lumiere", 7, 4004);
    builder.delay(std::make_shared<lumiere::sim::FixedDelay>(Duration::micros(500)));
    builder.drift_ppm_max(ppm);
    with_silent_leaders(builder, 2);
    Cluster cluster(builder);
    cluster.run_for(Duration::seconds(90));
    std::printf("%-12lld | %10llu | %12s | %9zu\n", static_cast<long long>(ppm),
                static_cast<unsigned long long>(
                    cluster.metrics().count_for_type(lumiere::pacemaker::kEpochViewMsg)),
                fmt_ms(cluster.metrics().max_decision_gap(TimePoint::origin(), 30)).c_str(),
                cluster.metrics().decisions().size());
  }
  std::printf("(expected: flat across realistic skews — QC/VC clock bumps re-anchor\n"
              " drifted clocks constantly, so only stall windows accumulate error)\n");

  // --- Underlying-protocol ablation: 2-phase vs 3-phase commit rule ----
  // Reference [14] (HotStuff-2): the two-phase rule commits each block on
  // the *next* consecutive QC instead of two QCs later. Same pacemaker,
  // same network, same seed — only the chain rule differs.
  std::printf("\n--- Underlying protocol: HotStuff-2 (2-chain) vs chained HotStuff "
              "(3-chain), Lumiere pacemaker, n = 7 ---\n");
  std::printf("%-18s | %9s | %14s | %18s\n", "core", "commits", "frontier (view)",
              "mean QC->commit ms");
  for (const char* core : {"hotstuff-2", "chained-hotstuff"}) {
    ScenarioBuilder builder = base_scenario("lumiere", 7, 4003);
    builder.core(core);
    builder.params(lumiere::ProtocolParams::for_n(7, bench_delta_cap(), /*x=*/4));
    builder.delay(std::make_shared<lumiere::sim::FixedDelay>(Duration::micros(500)));
    Cluster cluster(builder);
    cluster.run_for(Duration::seconds(30));

    const auto& entries = cluster.node(0).ledger().entries();
    // Join each committed block with the decision that certified its view
    // to get the QC -> commit lag the chain rule imposes.
    std::map<lumiere::View, TimePoint> qc_at;
    for (const auto& decision : cluster.metrics().decisions()) {
      qc_at.emplace(decision.view, decision.at);
    }
    double total_lag_ms = 0;
    std::size_t joined = 0;
    for (const auto& entry : entries) {
      const auto it = qc_at.find(entry.view);
      if (it == qc_at.end()) continue;
      total_lag_ms += static_cast<double>((entry.committed_at - it->second).ticks()) / 1000.0;
      ++joined;
    }
    std::printf("%-18s | %9zu | %14lld | %18.2f\n", core,
                entries.size(), entries.empty() ? -1LL
                                                : static_cast<long long>(entries.back().view),
                joined == 0 ? 0.0 : total_lag_ms / static_cast<double>(joined));
  }
  std::printf("(expected: HotStuff-2 completes views faster — its responsive path\n"
              " proposes on QC(v-1) alone instead of awaiting a NewView quorum — and\n"
              " its QC->commit lag is one pipeline round lower: the [14] saving,\n"
              " orthogonal to the pacemaker)\n");

  std::printf(
      "\nReading guide: the success criterion is the whole difference in the\n"
      "'epoch msgs' column — Basic Lumiere pays heavy synchronization every\n"
      "epoch forever, full Lumiere only at bootstrap. Gamma scaling trades\n"
      "fault-stall latency (ev lat) against slack.\n");
  return 0;
}
