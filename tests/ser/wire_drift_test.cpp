// Wire-size drift: the modeled byte accounting (Message::wire_size(),
// what MetricsCollector charges) versus the real frame a TcpTransport
// ships (MessageCodec::encode(), [u32 type_id || body]).
//
// The two are intentionally NOT equal for certificate-bearing messages:
// the O(kappa) model folds the signer bitmap and the aggregate's
// statement/block binding digests into the kappa envelope (Section 2;
// crypto/threshold.h), while the real frame must carry them so the
// receiver can verify. This test pins the divergence EXACTLY, per
// registered message type and per registered authenticator scheme (the
// blob and tag lengths are scheme-reported via SigWireSpec, so each
// scheme's instance sizes are checked against its own frames): if either
// side changes — a field added to a serializer, a wire_size() formula
// touched, a new message type registered without an exemplar here — a
// test fails and the complexity accounting has to be re-justified rather
// than silently drifting.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>

#include "consensus/messages.h"
#include "crypto/authenticator.h"
#include "dissem/messages.h"
#include "pacemaker/messages.h"
#include "sync/messages.h"

namespace lumiere {
namespace {

// Serialization overheads the O(kappa) model folds away (documented in
// crypto/threshold.h and consensus/quorum_cert.h):
//   * a signer set ships u32 universe + u32 count + count * u32 ids;
//   * a full QC's 2-kappa envelope covers its statement digest and tag,
//     but the frame additionally ships the certified block hash — and,
//     when the QC rides inside another message (proposal justify,
//     new-view report), its own view number too.
constexpr std::size_t signer_set_bytes(std::uint32_t signers) { return 8 + 4ULL * signers; }
constexpr std::size_t kQcBlockHashBytes = crypto::Digest::kSize;
constexpr std::size_t kInnerQcViewBytes = 8;

crypto::ThresholdSig make_aggregate(const crypto::Authenticator& auth, std::uint32_t m,
                                    const crypto::Digest& statement) {
  crypto::QuorumAggregator agg(crypto::AuthView(&auth), statement, m);
  for (ProcessId id = 0; id < m; ++id) {
    agg.add(crypto::threshold_share(auth.signer_for(id), statement));
  }
  return agg.aggregate();
}

class WireDriftTest : public ::testing::TestWithParam<std::string> {};

TEST_P(WireDriftTest, EveryRegisteredTypeMatchesItsModeledSizePlusDeclaredFold) {
  constexpr std::uint32_t kN = 7;
  constexpr std::uint32_t kQuorum = 5;       // 2f+1 at n=7
  constexpr std::uint32_t kSmallQuorum = 3;  // f+1
  const auto auth_owner = crypto::make_authenticator(GetParam(), kN, 11);
  const crypto::Authenticator& auth = *auth_owner;

  MessageCodec codec;
  consensus::register_consensus_messages(codec);
  pacemaker::register_pacemaker_messages(codec);
  dissem::register_dissem_messages(codec);
  sync::register_sync_messages(codec);
  codec.set_sig_wire(auth.wire_spec());

  const crypto::Digest block_hash = crypto::Sha256::hash("drift-block");
  const crypto::Digest qc_statement = consensus::QuorumCert::statement(5, block_hash);
  const consensus::QuorumCert qc(5, block_hash, make_aggregate(auth, kQuorum, qc_statement));
  const std::vector<std::uint8_t> payload(37, 0xAB);

  struct Exemplar {
    MessagePtr msg;
    std::size_t model_fold;  ///< real-frame bytes the O(kappa) model folds away
  };
  std::map<std::uint32_t, Exemplar> exemplars;
  const auto add = [&exemplars](MessagePtr msg, std::size_t fold) {
    const std::uint32_t id = msg->type_id();
    exemplars.emplace(id, Exemplar{std::move(msg), fold});
  };

  add(std::make_shared<consensus::ProposalMsg>(
          consensus::Block(block_hash, 6, payload, qc)),
      /*payload length prefix*/ 4 + kInnerQcViewBytes + signer_set_bytes(kQuorum) +
          kQcBlockHashBytes);
  add(std::make_shared<consensus::VoteMsg>(
          5, block_hash, crypto::threshold_share(auth.signer_for(0), qc_statement)),
      0);
  add(std::make_shared<consensus::QcMsg>(qc),
      signer_set_bytes(kQuorum) + kQcBlockHashBytes);
  add(std::make_shared<consensus::NewViewMsg>(6, qc),
      kInnerQcViewBytes + signer_set_bytes(kQuorum) + kQcBlockHashBytes);

  const auto share_of = [&auth](crypto::Digest (*statement)(View), View v) {
    return crypto::threshold_share(auth.signer_for(2), statement(v));
  };
  add(std::make_shared<pacemaker::ViewMsg>(9, share_of(&pacemaker::view_msg_statement, 9)), 0);
  add(std::make_shared<pacemaker::EpochViewMsg>(9, share_of(&pacemaker::epoch_msg_statement, 9)),
      0);
  add(std::make_shared<pacemaker::WishMsg>(9, share_of(&pacemaker::wish_statement, 9)), 0);

  const auto cert_of = [&](crypto::Digest (*statement)(View), View v, std::uint32_t m) {
    return pacemaker::SyncCert(v, make_aggregate(auth, m, statement(v)));
  };
  // A cert frame carries the statement digest alongside the tag; the
  // model's 2-kappa envelope covers both, so only the signer set folds.
  add(std::make_shared<pacemaker::VcMsg>(
          cert_of(&pacemaker::view_msg_statement, 9, kSmallQuorum)),
      signer_set_bytes(kSmallQuorum));
  add(std::make_shared<pacemaker::EcMsg>(
          cert_of(&pacemaker::epoch_msg_statement, 9, kQuorum)),
      signer_set_bytes(kQuorum));
  add(std::make_shared<pacemaker::WishCertMsg>(
          cert_of(&pacemaker::wish_statement, 9, kSmallQuorum)),
      signer_set_bytes(kSmallQuorum));

  // Dissemination (0x4000 range): the push is the only payload-bearing
  // message (its model already counts the payload bytes, so only the
  // length prefix folds); ack/fetch are exact; the cert's O(kappa)
  // envelope covers its statement and tag, folding just the signer set.
  const dissem::BatchId batch_id{
      2, 7, crypto::Sha256::hash(std::span<const std::uint8_t>(payload.data(), payload.size()))};
  const dissem::BatchCert batch_cert(
      batch_id, make_aggregate(auth, kSmallQuorum, dissem::batch_statement(batch_id)));
  add(std::make_shared<dissem::BatchPushMsg>(batch_id, payload), /*payload length prefix*/ 4);
  add(std::make_shared<dissem::BatchAckMsg>(
          batch_id, crypto::threshold_share(auth.signer_for(0),
                                            dissem::batch_statement(batch_id))),
      0);
  add(std::make_shared<dissem::BatchCertMsg>(batch_cert), signer_set_bytes(kSmallQuorum));
  add(std::make_shared<dissem::BatchFetchMsg>(batch_id), 0);

  // Block sync (0x5000 range): the fetch is exact; a response ships a
  // u32 block count plus, per block, exactly what a proposal ships — so
  // each block folds the same bytes as the ProposalMsg exemplar above.
  const consensus::Block sync_block(block_hash, 6, payload, qc);
  const consensus::Block sync_parent(qc.block_hash(), 5, payload, qc);
  add(std::make_shared<sync::BlockFetchMsg>(block_hash,
                                            sync::BlockRespMsg::kMaxBlocksPerResponse),
      0);
  add(std::make_shared<sync::BlockRespMsg>(
          sync_block.hash(), std::vector<consensus::Block>{sync_block, sync_parent}),
      /*count prefix*/ 4 +
          2 * (/*payload length prefix*/ 4 + kInnerQcViewBytes + signer_set_bytes(kQuorum) +
               kQcBlockHashBytes));

  for (const std::uint32_t type_id : codec.registered_types()) {
    const auto it = exemplars.find(type_id);
    ASSERT_NE(it, exemplars.end())
        << "registered type 0x" << std::hex << type_id
        << " has no drift exemplar — add one (and its model-fold accounting) above";
    const Message& msg = *it->second.msg;
    const std::vector<std::uint8_t> frame = MessageCodec::encode(msg);
    EXPECT_EQ(msg.wire_size() + it->second.model_fold, frame.size() - 4)
        << msg.type_name() << ": modeled size + declared fold != real frame body";
    // The frame must round-trip, so the exemplar actually exercises the
    // registered decoder (a decode-only or encode-only drift still trips).
    EXPECT_NE(codec.decode(frame), nullptr) << msg.type_name();
  }
  EXPECT_EQ(exemplars.size(), codec.registered_types().size())
      << "exemplar list and registry disagree";
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, WireDriftTest,
                         ::testing::ValuesIn(crypto::scheme_names()),
                         [](const auto& info) { return info.param; });

}  // namespace
}  // namespace lumiere
