// Every protocol message must round-trip through the codec (the TCP
// transport depends on it; the simulator does not, which is exactly why a
// dedicated test is needed to keep serialization honest).
#include <gtest/gtest.h>

#include <memory>

#include "consensus/messages.h"
#include "crypto/authenticator.h"
#include "pacemaker/messages.h"
#include "ser/message.h"

namespace lumiere {
namespace {

class MessageRoundTripTest : public ::testing::Test {
 protected:
  MessageRoundTripTest() {
    consensus::register_consensus_messages(codec_);
    pacemaker::register_pacemaker_messages(codec_);
  }

  MessagePtr reencode(const Message& msg) {
    const auto frame = MessageCodec::encode(msg);
    return codec_.decode(frame);
  }

  std::unique_ptr<crypto::Authenticator> auth_ =
      crypto::make_authenticator(crypto::kDefaultScheme, 4, 5);
  MessageCodec codec_;

  [[nodiscard]] crypto::AuthView auth() const { return crypto::AuthView(auth_.get()); }
};

TEST_F(MessageRoundTripTest, Proposal) {
  const consensus::QuorumCert genesis =
      consensus::QuorumCert::genesis(consensus::Block::genesis().hash());
  const consensus::Block block(consensus::Block::genesis().hash(), 3, {1, 2, 3}, genesis);
  const consensus::ProposalMsg msg(block);
  const MessagePtr decoded = reencode(msg);
  ASSERT_NE(decoded, nullptr);
  const auto& p = static_cast<const consensus::ProposalMsg&>(*decoded);
  EXPECT_EQ(p.block().hash(), block.hash());
  EXPECT_EQ(p.block().view(), 3);
  EXPECT_EQ(p.block().payload(), (std::vector<std::uint8_t>{1, 2, 3}));
}

TEST_F(MessageRoundTripTest, Vote) {
  const crypto::Digest h = crypto::Sha256::hash("block");
  const auto share =
      crypto::threshold_share(auth_->signer_for(1), consensus::QuorumCert::statement(5, h));
  const consensus::VoteMsg msg(5, h, share);
  const MessagePtr decoded = reencode(msg);
  ASSERT_NE(decoded, nullptr);
  const auto& v = static_cast<const consensus::VoteMsg&>(*decoded);
  EXPECT_EQ(v.view(), 5);
  EXPECT_EQ(v.block_hash(), h);
  EXPECT_EQ(v.share(), share);
}

TEST_F(MessageRoundTripTest, QcAnnounce) {
  const crypto::Digest h = crypto::Sha256::hash("b");
  const crypto::Digest stmt = consensus::QuorumCert::statement(9, h);
  crypto::QuorumAggregator agg(auth(), stmt, 3);
  for (ProcessId id = 0; id < 3; ++id) agg.add(crypto::threshold_share(auth_->signer_for(id), stmt));
  const consensus::QuorumCert qc(9, h, agg.aggregate());
  const consensus::QcMsg msg(qc);
  const MessagePtr decoded = reencode(msg);
  ASSERT_NE(decoded, nullptr);
  const auto& q = static_cast<const consensus::QcMsg&>(*decoded);
  EXPECT_EQ(q.qc(), qc);
  EXPECT_TRUE(q.qc().verify(auth(), ProtocolParams::for_n(4, Duration::millis(1))));
}

TEST_F(MessageRoundTripTest, NewView) {
  const consensus::QuorumCert genesis =
      consensus::QuorumCert::genesis(consensus::Block::genesis().hash());
  const consensus::NewViewMsg msg(12, genesis);
  const MessagePtr decoded = reencode(msg);
  ASSERT_NE(decoded, nullptr);
  const auto& nv = static_cast<const consensus::NewViewMsg&>(*decoded);
  EXPECT_EQ(nv.view(), 12);
  EXPECT_EQ(nv.high_qc(), genesis);
}

TEST_F(MessageRoundTripTest, PacemakerShares) {
  const auto view_share =
      crypto::threshold_share(auth_->signer_for(2), pacemaker::view_msg_statement(8));
  const pacemaker::ViewMsg vm(8, view_share);
  auto decoded = reencode(vm);
  ASSERT_NE(decoded, nullptr);
  EXPECT_EQ(static_cast<const pacemaker::ViewMsg&>(*decoded).view(), 8);
  EXPECT_EQ(static_cast<const pacemaker::ViewMsg&>(*decoded).share(), view_share);

  const auto epoch_share =
      crypto::threshold_share(auth_->signer_for(0), pacemaker::epoch_msg_statement(40));
  decoded = reencode(pacemaker::EpochViewMsg(40, epoch_share));
  ASSERT_NE(decoded, nullptr);
  EXPECT_EQ(static_cast<const pacemaker::EpochViewMsg&>(*decoded).share(), epoch_share);

  const auto wish_share =
      crypto::threshold_share(auth_->signer_for(3), pacemaker::wish_statement(4));
  decoded = reencode(pacemaker::WishMsg(4, wish_share));
  ASSERT_NE(decoded, nullptr);
  EXPECT_EQ(static_cast<const pacemaker::WishMsg&>(*decoded).share(), wish_share);
}

TEST_F(MessageRoundTripTest, PacemakerCerts) {
  crypto::QuorumAggregator agg(auth(), pacemaker::view_msg_statement(6), 2);
  agg.add(crypto::threshold_share(auth_->signer_for(0), pacemaker::view_msg_statement(6)));
  agg.add(crypto::threshold_share(auth_->signer_for(1), pacemaker::view_msg_statement(6)));
  const pacemaker::SyncCert cert(6, agg.aggregate());
  const MessagePtr decoded = reencode(pacemaker::VcMsg(cert));
  ASSERT_NE(decoded, nullptr);
  const auto& vc = static_cast<const pacemaker::VcMsg&>(*decoded);
  EXPECT_EQ(vc.cert(), cert);
  EXPECT_TRUE(vc.cert().verify(auth(), 2, &pacemaker::view_msg_statement));
}

TEST_F(MessageRoundTripTest, UnknownTypeRejected) {
  std::vector<std::uint8_t> frame = {0xFF, 0xFF, 0x00, 0x00};  // type 0xFFFF
  EXPECT_EQ(codec_.decode(frame), nullptr);
}

TEST_F(MessageRoundTripTest, TruncatedFrameRejected) {
  const consensus::QuorumCert genesis =
      consensus::QuorumCert::genesis(consensus::Block::genesis().hash());
  const consensus::NewViewMsg msg(12, genesis);
  auto frame = MessageCodec::encode(msg);
  frame.resize(frame.size() / 2);
  EXPECT_EQ(codec_.decode(frame), nullptr);
}

TEST_F(MessageRoundTripTest, WireSizesAreOrderKappa) {
  // Every BVS message is O(kappa): independent of n. The constants here
  // pin the modeled sizes used by the byte-level metrics.
  const auto share =
      crypto::threshold_share(auth_->signer_for(0), pacemaker::view_msg_statement(1));
  EXPECT_EQ(pacemaker::ViewMsg(1, share).wire_size(), 8 + kKappaBytes + 4);
  crypto::QuorumAggregator agg(auth(), pacemaker::view_msg_statement(2), 2);
  agg.add(crypto::threshold_share(auth_->signer_for(0), pacemaker::view_msg_statement(2)));
  agg.add(crypto::threshold_share(auth_->signer_for(1), pacemaker::view_msg_statement(2)));
  EXPECT_EQ(pacemaker::VcMsg(pacemaker::SyncCert(2, agg.aggregate())).wire_size(),
            8 + 2 * kKappaBytes);
}

}  // namespace
}  // namespace lumiere
