// The O(kappa) message-size model (Section 2: "All messages sent by
// honest processors will be of length O(kappa)"; threshold signatures
// "do not depend on m or n").
//
// The complexity accounting (MetricsCollector byte counters, Table 1
// claims) relies on wire_size() being independent of the cluster size.
// These tests pin that property for every certificate-bearing message
// the protocols send, across a wide range of n — so nobody can silently
// make message size scale with n and still claim the paper's bounds.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "consensus/messages.h"
#include "crypto/authenticator.h"
#include "pacemaker/messages.h"

namespace lumiere {
namespace {

/// Builds a full m-of-n threshold signature over `statement`.
crypto::ThresholdSig make_aggregate(const crypto::Authenticator& auth, std::uint32_t m,
                                    const crypto::Digest& statement) {
  crypto::QuorumAggregator agg(crypto::AuthView(&auth), statement, m);
  for (ProcessId id = 0; id < m; ++id) {
    agg.add(crypto::threshold_share(auth.signer_for(id), statement));
  }
  EXPECT_TRUE(agg.complete());
  return agg.aggregate();
}

class WireSizeAcrossN : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(WireSizeAcrossN, CertificateMessagesAreKappaSized) {
  const std::uint32_t n = GetParam();
  const std::uint32_t f = (n - 1) / 3;
  const auto auth_owner = crypto::make_authenticator(crypto::kDefaultScheme, n, 7);
  const crypto::Authenticator& auth = *auth_owner;

  // QC announcement: 2f+1-of-n aggregate.
  const crypto::Digest qc_statement = consensus::QuorumCert::statement(9, crypto::Digest());
  const consensus::QcMsg qc(
      consensus::QuorumCert(9, crypto::Digest(), make_aggregate(auth, 2 * f + 1, qc_statement)));

  // VC: f+1-of-n aggregate.
  const pacemaker::VcMsg vc(pacemaker::SyncCert(
      8, make_aggregate(auth, f + 1, pacemaker::view_msg_statement(8))));

  // Shares and votes: one signer each.
  const pacemaker::ViewMsg view_msg(
      8, crypto::threshold_share(auth.signer_for(0), pacemaker::view_msg_statement(8)));
  const pacemaker::EpochViewMsg epoch_msg(
      0, crypto::threshold_share(auth.signer_for(0), pacemaker::epoch_msg_statement(0)));
  const consensus::VoteMsg vote(
      9, crypto::Digest(), crypto::threshold_share(auth.signer_for(0), qc_statement));
  const consensus::NewViewMsg new_view(
      10, consensus::QuorumCert(9, crypto::Digest(), make_aggregate(auth, 2 * f + 1,
                                                                    qc_statement)));

  // The accounted wire sizes must match the n = 4 baseline exactly: any
  // n-dependence here breaks the complexity model.
  // wire_size() is instance-reported now (the scheme decides blob and tag
  // lengths); for the default sim scheme an aggregate stays 2*kappa
  // and a share kappa+4, independent of m and n.
  EXPECT_EQ(qc.wire_size(), 8 + 2 * kKappaBytes);
  EXPECT_EQ(vc.wire_size(), 8 + 2 * kKappaBytes);
  EXPECT_EQ(vote.wire_size(), 8 + crypto::Digest::kSize + kKappaBytes + 4);
  EXPECT_EQ(new_view.wire_size(), 8 + 2 * kKappaBytes);
  EXPECT_EQ(view_msg.wire_size(), epoch_msg.wire_size());
  EXPECT_LE(view_msg.wire_size(), 8 + kKappaBytes + 4 + 8);
}

INSTANTIATE_TEST_SUITE_P(Sizes, WireSizeAcrossN,
                         ::testing::Values(4U, 7U, 31U, 100U, 301U));

TEST(WireSizeTest, ThresholdAggregateAccountedSizeIsConstant) {
  // Direct statement of the Section 2 assumption, for the default sim
  // scheme: the modeled size of an aggregate is 2*kappa regardless of the
  // threshold m or universe n.
  const auto small = crypto::make_authenticator(crypto::kDefaultScheme, 4, 1);
  const auto large = crypto::make_authenticator(crypto::kDefaultScheme, 301, 1);
  const crypto::Digest statement = crypto::Sha256::hash("statement");
  const auto a = make_aggregate(*small, 3, statement);
  const auto b = make_aggregate(*large, 201, statement);
  EXPECT_EQ(a.wire_size(), 2 * kKappaBytes);
  EXPECT_EQ(b.wire_size(), 2 * kKappaBytes);
  EXPECT_EQ(a.message, b.message);  // same statement, same digest
  // The *serialized* form carries the signer bitmap (an n-bit detail real
  // systems also ship); the accounting model charges O(kappa) for it. This
  // test exists so the distinction stays explicit: accounted size
  // constant, serialized size n-bit-linear.
  EXPECT_GT(b.signer_count(), a.signer_count());
}

TEST(WireSizeTest, SchemesReportTheirOwnGeometry) {
  // Every registered scheme's instances report sizes consistent with its
  // SigWireSpec — the accounting layer never hard-codes a scheme.
  for (const std::string& name : crypto::scheme_names()) {
    const auto auth = crypto::make_authenticator(name, 4, 1);
    const crypto::SigWireSpec spec = auth->wire_spec();
    const crypto::Digest statement = crypto::Sha256::hash("geometry");
    const crypto::Signature sig = auth->signer_for(0).sign(statement);
    EXPECT_EQ(sig.wire_size(), spec.sig_bytes + 4U) << name;
    const auto agg = make_aggregate(*auth, 3, statement);
    EXPECT_EQ(agg.wire_size(), kKappaBytes + spec.tag_bytes(3)) << name;
  }
}

TEST(WireSizeTest, ProposalSizeScalesOnlyWithPayload) {
  const auto auth_owner = crypto::make_authenticator(crypto::kDefaultScheme, 4, 7);
  const crypto::Authenticator& auth = *auth_owner;
  const crypto::Digest statement = consensus::QuorumCert::statement(3, crypto::Digest());
  consensus::QuorumCert qc(3, crypto::Digest(), make_aggregate(auth, 3, statement));
  const consensus::ProposalMsg empty(
      consensus::Block(crypto::Digest(), 4, {}, qc));
  const consensus::ProposalMsg loaded(
      consensus::Block(crypto::Digest(), 4, std::vector<std::uint8_t>(1000, 1), qc));
  EXPECT_EQ(loaded.wire_size(), empty.wire_size() + 1000);
}

}  // namespace
}  // namespace lumiere
