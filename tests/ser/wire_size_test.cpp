// The O(kappa) message-size model (Section 2: "All messages sent by
// honest processors will be of length O(kappa)"; threshold signatures
// "do not depend on m or n").
//
// The complexity accounting (MetricsCollector byte counters, Table 1
// claims) relies on wire_size() being independent of the cluster size.
// These tests pin that property for every certificate-bearing message
// the protocols send, across a wide range of n — so nobody can silently
// make message size scale with n and still claim the paper's bounds.
#include <gtest/gtest.h>

#include "consensus/messages.h"
#include "crypto/threshold.h"
#include "pacemaker/messages.h"

namespace lumiere {
namespace {

/// Builds a full m-of-n threshold signature over `statement`.
crypto::ThresholdSig make_aggregate(const crypto::Pki& pki, std::uint32_t m,
                                    const crypto::Digest& statement) {
  crypto::ThresholdAggregator agg(&pki, statement, m, pki.n());
  for (ProcessId id = 0; id < m; ++id) {
    agg.add(crypto::threshold_share(pki.signer_for(id), statement));
  }
  EXPECT_TRUE(agg.complete());
  return agg.aggregate();
}

class WireSizeAcrossN : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(WireSizeAcrossN, CertificateMessagesAreKappaSized) {
  const std::uint32_t n = GetParam();
  const std::uint32_t f = (n - 1) / 3;
  crypto::Pki pki(n, 7);

  // QC announcement: 2f+1-of-n aggregate.
  const crypto::Digest qc_statement = consensus::QuorumCert::statement(9, crypto::Digest());
  const consensus::QcMsg qc(
      consensus::QuorumCert(9, crypto::Digest(), make_aggregate(pki, 2 * f + 1, qc_statement)));

  // VC: f+1-of-n aggregate.
  const pacemaker::VcMsg vc(pacemaker::SyncCert(
      8, make_aggregate(pki, f + 1, pacemaker::view_msg_statement(8))));

  // Shares and votes: one signer each.
  const pacemaker::ViewMsg view_msg(
      8, crypto::threshold_share(pki.signer_for(0), pacemaker::view_msg_statement(8)));
  const pacemaker::EpochViewMsg epoch_msg(
      0, crypto::threshold_share(pki.signer_for(0), pacemaker::epoch_msg_statement(0)));
  const consensus::VoteMsg vote(
      9, crypto::Digest(), crypto::threshold_share(pki.signer_for(0), qc_statement));
  const consensus::NewViewMsg new_view(
      10, consensus::QuorumCert(9, crypto::Digest(), make_aggregate(pki, 2 * f + 1,
                                                                    qc_statement)));

  // The accounted wire sizes must match the n = 4 baseline exactly: any
  // n-dependence here breaks the complexity model.
  EXPECT_EQ(qc.wire_size(), 8 + crypto::ThresholdSig::wire_size());
  EXPECT_EQ(vc.wire_size(), 8 + crypto::ThresholdSig::wire_size());
  EXPECT_EQ(vote.wire_size(), 8 + crypto::Digest::kSize + crypto::PartialSig::wire_size());
  EXPECT_EQ(new_view.wire_size(), 8 + crypto::ThresholdSig::wire_size());
  EXPECT_EQ(view_msg.wire_size(), epoch_msg.wire_size());
  EXPECT_LE(view_msg.wire_size(), 8 + crypto::PartialSig::wire_size() + 8);
}

INSTANTIATE_TEST_SUITE_P(Sizes, WireSizeAcrossN,
                         ::testing::Values(4U, 7U, 31U, 100U, 301U));

TEST(WireSizeTest, ThresholdAggregateAccountedSizeIsConstant) {
  // Direct statement of the Section 2 assumption: the modeled size of an
  // aggregate is 2*kappa regardless of the threshold m or universe n.
  EXPECT_EQ(crypto::ThresholdSig::wire_size(), 2 * kKappaBytes);
  crypto::Pki small(4, 1);
  crypto::Pki large(301, 1);
  const crypto::Digest statement = crypto::Sha256::hash("statement");
  const auto a = make_aggregate(small, 3, statement);
  const auto b = make_aggregate(large, 201, statement);
  EXPECT_EQ(crypto::ThresholdSig::wire_size(), crypto::ThresholdSig::wire_size());
  EXPECT_EQ(a.message, b.message);  // same statement, same digest
  // The *serialized* form carries the signer bitmap (an n-bit detail real
  // systems also ship); the accounting model charges O(kappa) for it, as
  // documented in crypto/threshold.h. This test exists so the distinction
  // stays explicit: accounted size constant, serialized size n-bit-linear.
  EXPECT_GT(b.signer_count(), a.signer_count());
}

TEST(WireSizeTest, ProposalSizeScalesOnlyWithPayload) {
  crypto::Pki pki(4, 7);
  const crypto::Digest statement = consensus::QuorumCert::statement(3, crypto::Digest());
  consensus::QuorumCert qc(3, crypto::Digest(), make_aggregate(pki, 3, statement));
  const consensus::ProposalMsg empty(
      consensus::Block(crypto::Digest(), 4, {}, qc));
  const consensus::ProposalMsg loaded(
      consensus::Block(crypto::Digest(), 4, std::vector<std::uint8_t>(1000, 1), qc));
  EXPECT_EQ(loaded.wire_size(), empty.wire_size() + 1000);
}

}  // namespace
}  // namespace lumiere
