#include "ser/serializer.h"

#include <gtest/gtest.h>

namespace lumiere::ser {
namespace {

TEST(SerializerTest, ScalarRoundTrip) {
  Writer w;
  w.u8(0xAB);
  w.u16(0x1234);
  w.u32(0xDEADBEEF);
  w.u64(0x0123456789ABCDEFULL);
  w.i64(-42);
  w.boolean(true);
  w.view(-1);
  w.process(7);
  w.time_point(TimePoint(123456));
  w.duration(Duration::millis(5));

  Reader r(std::span<const std::uint8_t>(w.data().data(), w.size()));
  std::uint8_t u8 = 0;
  std::uint16_t u16 = 0;
  std::uint32_t u32 = 0;
  std::uint64_t u64 = 0;
  std::int64_t i64 = 0;
  bool b = false;
  View v = 0;
  ProcessId p = 0;
  TimePoint tp;
  Duration d;
  ASSERT_TRUE(r.u8(u8));
  ASSERT_TRUE(r.u16(u16));
  ASSERT_TRUE(r.u32(u32));
  ASSERT_TRUE(r.u64(u64));
  ASSERT_TRUE(r.i64(i64));
  ASSERT_TRUE(r.boolean(b));
  ASSERT_TRUE(r.view(v));
  ASSERT_TRUE(r.process(p));
  ASSERT_TRUE(r.time_point(tp));
  ASSERT_TRUE(r.duration(d));
  EXPECT_TRUE(r.exhausted());

  EXPECT_EQ(u8, 0xAB);
  EXPECT_EQ(u16, 0x1234);
  EXPECT_EQ(u32, 0xDEADBEEF);
  EXPECT_EQ(u64, 0x0123456789ABCDEFULL);
  EXPECT_EQ(i64, -42);
  EXPECT_TRUE(b);
  EXPECT_EQ(v, -1);
  EXPECT_EQ(p, 7U);
  EXPECT_EQ(tp, TimePoint(123456));
  EXPECT_EQ(d, Duration::millis(5));
}

TEST(SerializerTest, BytesAndStrings) {
  Writer w;
  w.str("hello");
  w.str("");
  const std::vector<std::uint8_t> blob = {1, 2, 3, 255};
  w.bytes(std::span<const std::uint8_t>(blob.data(), blob.size()));

  Reader r(std::span<const std::uint8_t>(w.data().data(), w.size()));
  std::string s1;
  std::string s2;
  std::vector<std::uint8_t> out;
  ASSERT_TRUE(r.str(s1));
  ASSERT_TRUE(r.str(s2));
  ASSERT_TRUE(r.bytes(out));
  EXPECT_EQ(s1, "hello");
  EXPECT_EQ(s2, "");
  EXPECT_EQ(out, blob);
}

TEST(SerializerTest, DigestRoundTrip) {
  const crypto::Digest d = crypto::Sha256::hash("x");
  Writer w;
  w.digest(d);
  Reader r(std::span<const std::uint8_t>(w.data().data(), w.size()));
  crypto::Digest out;
  ASSERT_TRUE(r.digest(out));
  EXPECT_EQ(out, d);
}

TEST(SerializerTest, SignerSetRoundTrip) {
  SignerSet set(70);
  set.add(0);
  set.add(64);
  set.add(69);
  Writer w;
  w.signer_set(set);
  Reader r(std::span<const std::uint8_t>(w.data().data(), w.size()));
  SignerSet out;
  ASSERT_TRUE(r.signer_set(out));
  EXPECT_EQ(out, set);
}

TEST(SerializerTest, TruncatedInputFailsCleanly) {
  Writer w;
  w.u64(12345);
  w.str("payload");
  const auto& bytes = w.data();
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    Reader r(std::span<const std::uint8_t>(bytes.data(), cut));
    std::uint64_t x = 0;
    std::string s;
    const bool ok = r.u64(x) && r.str(s);
    EXPECT_FALSE(ok) << "cut at " << cut << " must fail";
  }
}

TEST(SerializerTest, MalformedSignerSetRejected) {
  // count > universe.
  Writer w;
  w.u32(4);
  w.u32(5);
  Reader r(std::span<const std::uint8_t>(w.data().data(), w.size()));
  SignerSet out;
  EXPECT_FALSE(r.signer_set(out));

  // duplicate member.
  Writer w2;
  w2.u32(4);
  w2.u32(2);
  w2.u32(1);
  w2.u32(1);
  Reader r2(std::span<const std::uint8_t>(w2.data().data(), w2.size()));
  EXPECT_FALSE(r2.signer_set(out));

  // member out of universe.
  Writer w3;
  w3.u32(4);
  w3.u32(1);
  w3.u32(9);
  Reader r3(std::span<const std::uint8_t>(w3.data().data(), w3.size()));
  EXPECT_FALSE(r3.signer_set(out));
}

TEST(SerializerTest, BooleanRejectsGarbage) {
  Writer w;
  w.u8(2);
  Reader r(std::span<const std::uint8_t>(w.data().data(), w.size()));
  bool b = false;
  EXPECT_FALSE(r.boolean(b));
}

}  // namespace
}  // namespace lumiere::ser
