// Workload determinism: the same seed + scenario must produce
// byte-identical request traces (per-node rolling digests over every
// generated request) and identical committed ledgers across two sim runs
// — including when a scripted partition stalls and recovers the cluster
// mid-workload.
#include <gtest/gtest.h>

#include <functional>

#include "crypto/authenticator.h"
#include "obs/spec.h"
#include "runtime/cluster.h"
#include "workload/engine.h"
#include "workload/report.h"

namespace lumiere::workload {
namespace {

using runtime::Cluster;
using runtime::ScenarioBuilder;

ScenarioBuilder workload_options(std::uint64_t seed, bool with_partition,
                                 bool with_dissem = false) {
  WorkloadSpec spec;
  spec.arrival = Arrival::kPoisson;  // exercises the per-client rng streams
  spec.clients_per_node = 2;
  spec.rate_per_client = 150.0;
  spec.mempool.max_pending_count = 64;
  ScenarioBuilder builder;
  builder.params(ProtocolParams::for_n(4, Duration::millis(10), /*x=*/4));
  builder.pacemaker("lumiere");
  builder.core("chained-hotstuff");
  builder.seed(seed);
  builder.delay(std::make_shared<sim::FixedDelay>(Duration::micros(500)));
  builder.workload(spec);
  if (with_dissem) builder.dissemination();
  if (with_partition) {
    builder.partition({{0, 1}, {2, 3}}, TimePoint(Duration::seconds(2).ticks()));
    builder.heal(TimePoint(Duration::seconds(4).ticks()));
  }
  return builder;
}

void expect_identical_runs(const ScenarioBuilder& options) {
  Cluster first(options);
  first.run_for(Duration::seconds(8));
  Cluster second(options);
  second.run_for(Duration::seconds(8));

  for (ProcessId id = 0; id < 4; ++id) {
    const NodeWorkload* a = first.node_workload(id);
    const NodeWorkload* b = second.node_workload(id);
    ASSERT_NE(a, nullptr);
    ASSERT_NE(b, nullptr);
    EXPECT_EQ(a->trace_digest(), b->trace_digest())
        << "node " << id << " generated a different request byte-stream";
    EXPECT_EQ(a->stats().submitted, b->stats().submitted);
    EXPECT_EQ(a->stats().committed, b->stats().committed);

    // Ledgers agree entry by entry, payload bytes included.
    const auto& la = first.node(id).ledger().entries();
    const auto& lb = second.node(id).ledger().entries();
    ASSERT_EQ(la.size(), lb.size()) << "node " << id << " committed a different chain length";
    for (std::size_t i = 0; i < la.size(); ++i) {
      EXPECT_EQ(la[i].view, lb[i].view);
      EXPECT_EQ(la[i].hash, lb[i].hash);
      EXPECT_EQ(la[i].payload, lb[i].payload)
          << "node " << id << " entry " << i << " carries different bytes";
    }
  }
  const Report ra = first.workload_report();
  const Report rb = second.workload_report();
  EXPECT_EQ(ra.submitted, rb.submitted);
  EXPECT_EQ(ra.admitted, rb.admitted);
  EXPECT_EQ(ra.committed, rb.committed);
  EXPECT_EQ(ra.shed, rb.shed);
  EXPECT_EQ(ra.requeued, rb.requeued);
}

TEST(WorkloadDeterminismTest, IdenticalRunsByteForByte) {
  expect_identical_runs(workload_options(808, /*with_partition=*/false));
}

TEST(WorkloadDeterminismTest, IdenticalRunsWithDissemination) {
  // The dissemination layer adds push/ack/cert/fetch traffic and its own
  // timers; the runs must still replay byte for byte — refs payloads,
  // ledgers and request streams included.
  expect_identical_runs(
      workload_options(810, /*with_partition=*/true, /*with_dissem=*/true));
}

TEST(WorkloadDeterminismTest, IdenticalRunsUnderScriptedPartition) {
  const ScenarioBuilder options = workload_options(809, /*with_partition=*/true);
  // The partition actually bites: no side holds a quorum, so the cut
  // window must commit nothing — and the runs still replay identically.
  Cluster probe(options);
  probe.run_for(Duration::seconds(8));
  EXPECT_EQ(probe.metrics().requests_between(
                TimePoint(Duration::seconds(2).ticks()) + Duration::millis(10),
                TimePoint(Duration::seconds(4).ticks())),
            0U)
      << "requests committed inside a quorumless partition";
  EXPECT_GT(probe.workload_report().committed, 0U) << "no progress before/after the cut";
  expect_identical_runs(options);
}

// ---------------------------------------------------------------------
// Cross-refactor golden: the digest below was captured from the
// implementation as of PR 3 (std::function event queue, per-send
// delivery lambdas, uncached QC statements). Any substrate change that
// alters event ordering, RNG draw order, or message bytes shifts this
// value — rerunning the fold and comparing pins "the hot-path overhaul
// changed nothing observable" as a regression test. Constant arrival
// (not Poisson) keeps the fold free of libm transcendentals, so the
// constant is portable across toolchains.
crypto::Digest golden_fold_digest(
    const std::function<void(ScenarioBuilder&)>& customize = nullptr) {
  struct Proto {
    const char* pacemaker;
    const char* core;
  };
  // One run per protocol family exercises all three cores and three
  // pacemaker shapes over the same scripted partition.
  constexpr Proto kProtos[] = {{"lumiere", "chained-hotstuff"},
                               {"cogsworth", "chained-hotstuff"},
                               {"lp22", "hotstuff-2"}};
  crypto::Sha256 fold;
  for (const Proto& proto : kProtos) {
    WorkloadSpec spec;
    spec.arrival = Arrival::kConstant;
    spec.clients_per_node = 2;
    spec.rate_per_client = 120.0;
    spec.mempool.max_pending_count = 64;
    ScenarioBuilder builder;
    builder.params(ProtocolParams::for_n(4, Duration::millis(10), /*x=*/4));
    builder.pacemaker(proto.pacemaker);
    builder.core(proto.core);
    builder.seed(20260730);
    builder.delay(std::make_shared<sim::FixedDelay>(Duration::micros(500)));
    builder.workload(spec);
    builder.partition({{0, 1}, {2, 3}}, TimePoint(Duration::seconds(2).ticks()));
    builder.heal(TimePoint(Duration::seconds(4).ticks()));
    if (customize) customize(builder);
    Cluster cluster(builder);
    cluster.run_for(Duration::seconds(6));
    for (ProcessId id = 0; id < 4; ++id) {
      fold.update(cluster.node_workload(id)->trace_digest().as_span());
      for (const auto& entry : cluster.node(id).ledger().entries()) {
        ser::Writer w;
        w.view(entry.view);
        w.digest(entry.hash);
        w.bytes(std::span<const std::uint8_t>(entry.payload.data(), entry.payload.size()));
        fold.update(std::span<const std::uint8_t>(w.data().data(), w.size()));
      }
    }
  }
  return fold.finish();
}

TEST(WorkloadDeterminismTest, GoldenLedgersSurviveRefactors) {
  EXPECT_EQ(golden_fold_digest().hex(),
            "2a1b9d02b926f706f51905544c71134cab00fcbbf2336b5caaf809f129b78a4e");
}

TEST(WorkloadDeterminismTest, ExplicitAuthAndPipelineOffMatchTheGolden) {
  // The Authenticator/pipeline API redesign is observably zero: asking
  // for the default scheme and a disabled pipeline by name reproduces the
  // pinned pre-redesign digest byte for byte. (An *enabled* pipeline is
  // TCP-only and can never touch this fold — ScenarioBuilder::validate()
  // rejects it on the simulator.)
  const auto explicit_knobs = [](ScenarioBuilder& b) {
    b.auth_scheme(crypto::kDefaultScheme);
    b.pipeline(runtime::PipelineSpec{});
  };
  EXPECT_EQ(golden_fold_digest(explicit_knobs).hex(),
            "2a1b9d02b926f706f51905544c71134cab00fcbbf2336b5caaf809f129b78a4e");
}

TEST(WorkloadDeterminismTest, ObservabilityOnMatchesTheGolden) {
  // The view-sync tracer is passive: it draws no randomness, schedules no
  // events and sends no messages, so running it — with an explicit span
  // budget and a bounded trace ring — reproduces the pinned pre-obs
  // digest byte for byte. This is the contract that lets the tracer
  // default on everywhere.
  const auto observability = [](ScenarioBuilder& b) {
    obs::ObsSpec spec;
    spec.tracer = true;
    spec.max_spans = 512;
    spec.trace_capacity = 1 << 12;
    b.observability(spec);
  };
  EXPECT_EQ(golden_fold_digest(observability).hex(),
            "2a1b9d02b926f706f51905544c71134cab00fcbbf2336b5caaf809f129b78a4e");
}

// Dissemination-enabled golden: same fold, lumiere + chained-hotstuff
// with the dissemination layer on — the ledgers now carry refs payloads
// (magic + certified batch references), so this digest additionally pins
// cert encoding, cert aggregation order and the disseminator's timer
// interleaving. Captured when the layer landed; a change here means the
// dissemination substrate's observable behavior moved.
constexpr const char* kGoldenDissemHex =
    "5902a29bb83da889ad6b7e9aed5cf19d306b36cc91baae74de1ee29e86bd6d76";

crypto::Digest golden_dissem_fold_digest() {
  WorkloadSpec spec;
  spec.arrival = Arrival::kConstant;
  spec.clients_per_node = 2;
  spec.rate_per_client = 120.0;
  spec.mempool.max_pending_count = 64;
  ScenarioBuilder builder;
  builder.params(ProtocolParams::for_n(4, Duration::millis(10), /*x=*/4));
  builder.pacemaker("lumiere");
  builder.core("chained-hotstuff");
  builder.seed(20260730);
  builder.delay(std::make_shared<sim::FixedDelay>(Duration::micros(500)));
  builder.workload(spec);
  builder.dissemination();
  builder.partition({{0, 1}, {2, 3}}, TimePoint(Duration::seconds(2).ticks()));
  builder.heal(TimePoint(Duration::seconds(4).ticks()));
  Cluster cluster(builder);
  cluster.run_for(Duration::seconds(6));
  crypto::Sha256 fold;
  for (ProcessId id = 0; id < 4; ++id) {
    fold.update(cluster.node_workload(id)->trace_digest().as_span());
    for (const auto& entry : cluster.node(id).ledger().entries()) {
      ser::Writer w;
      w.view(entry.view);
      w.digest(entry.hash);
      w.bytes(std::span<const std::uint8_t>(entry.payload.data(), entry.payload.size()));
      fold.update(std::span<const std::uint8_t>(w.data().data(), w.size()));
    }
  }
  return fold.finish();
}

TEST(WorkloadDeterminismTest, GoldenDissemLedgersSurviveRefactors) {
  EXPECT_EQ(golden_dissem_fold_digest().hex(), kGoldenDissemHex);
}

TEST(WorkloadDeterminismTest, DifferentSeedsDiverge) {
  Cluster first(workload_options(1, false));
  first.run_for(Duration::seconds(3));
  Cluster second(workload_options(2, false));
  second.run_for(Duration::seconds(3));
  // Poisson draws differ => the request byte-streams differ.
  EXPECT_NE(first.node_workload(0)->trace_digest(), second.node_workload(0)->trace_digest());
}

}  // namespace
}  // namespace lumiere::workload
