// The workload engine end to end on the deterministic simulator: tagged
// requests flow client -> mempool -> proposals -> commits, latency is
// charged per request, and the admission/backpressure loop keeps the
// closed-loop invariant — an admitted request is never lost.
#include <gtest/gtest.h>

#include "runtime/cluster.h"
#include "workload/engine.h"
#include "workload/report.h"
#include "workload/request.h"

namespace lumiere::workload {
namespace {

using runtime::Cluster;
using runtime::ScenarioBuilder;

TEST(RequestTest, EncodeDecodeRoundTrip) {
  const std::vector<std::uint8_t> body = {1, 2, 3, 4};
  const auto wire = Request::encode(client_id(3, 7), 42,
                                    std::span<const std::uint8_t>(body.data(), body.size()));
  EXPECT_EQ(wire.size(), kRequestHeaderBytes + body.size());
  const auto request = Request::decode(std::span<const std::uint8_t>(wire.data(), wire.size()));
  ASSERT_TRUE(request.has_value());
  EXPECT_EQ(request->client, client_id(3, 7));
  EXPECT_EQ(client_node(request->client), 3U);
  EXPECT_EQ(request->seq, 42U);
  EXPECT_EQ(request->body, body);
}

TEST(RequestTest, RejectsForeignCommands) {
  EXPECT_FALSE(Request::decode({}).has_value());
  const std::vector<std::uint8_t> not_ours = {0x01, 0x02, 0x03};
  EXPECT_FALSE(
      Request::decode(std::span<const std::uint8_t>(not_ours.data(), not_ours.size())));
}

TEST(RequestTest, PaddingIsDeterministicPerTag) {
  EXPECT_EQ(padding_body(1, 2, 32), padding_body(1, 2, 32));
  EXPECT_NE(padding_body(1, 2, 32), padding_body(1, 3, 32));
  EXPECT_NE(padding_body(1, 2, 32), padding_body(2, 2, 32));
}

ScenarioBuilder base_builder(std::uint64_t seed) {
  ScenarioBuilder builder;
  builder.params(ProtocolParams::for_n(4, Duration::millis(10), /*x=*/4));
  builder.pacemaker("lumiere");
  builder.core("chained-hotstuff");
  builder.seed(seed);
  builder.delay(std::make_shared<sim::FixedDelay>(Duration::micros(500)));
  return builder;
}

TEST(WorkloadTest, OpenLoopConstantRateSubmitsAndCommits) {
  WorkloadSpec spec;
  spec.arrival = Arrival::kConstant;
  spec.clients_per_node = 1;
  spec.rate_per_client = 100.0;
  ScenarioBuilder builder = base_builder(11);
  builder.workload(spec);
  Cluster cluster(builder);
  cluster.run_for(Duration::seconds(10));

  const Report report = cluster.workload_report();
  // 4 nodes x 1 client x 100/s over 10s, modulo edge arrivals.
  EXPECT_GE(report.submitted, 3900U);
  EXPECT_LE(report.submitted, 4100U);
  EXPECT_EQ(report.shed, 0U) << "an unbounded pool never sheds";
  EXPECT_GT(report.committed, 0U);
  EXPECT_EQ(report.commit_misses, 0U);
  EXPECT_EQ(report.committed + report.outstanding, report.admitted);
  // Latency is measurable and positive.
  const auto p50 = report.latency_percentile(0.5);
  ASSERT_TRUE(p50.has_value());
  EXPECT_GT(*p50, Duration::zero());
  const auto p99 = report.latency_percentile(0.99);
  EXPECT_GE(*p99, *p50);
  // The sim transport feeds the shared metrics too, windowed or not.
  EXPECT_EQ(cluster.metrics().requests_committed(), report.committed);
  EXPECT_EQ(cluster.metrics().requests_between(TimePoint::origin(), TimePoint::max()),
            report.committed);
  EXPECT_TRUE(cluster.metrics().request_latency_percentile(0.5).has_value());
  EXPECT_GT(cluster.metrics().queue_depth_log().size(), 0U);
}

TEST(WorkloadTest, PoissonAndBurstyArrivalsFlow) {
  for (const Arrival arrival : {Arrival::kPoisson, Arrival::kBursty}) {
    WorkloadSpec spec;
    spec.arrival = arrival;
    spec.rate_per_client = 200.0;
    ScenarioBuilder builder = base_builder(12);
    builder.workload(spec);
    Cluster cluster(builder);
    cluster.run_for(Duration::seconds(5));
    const Report report = cluster.workload_report();
    EXPECT_GT(report.submitted, 1000U) << to_string(arrival);
    EXPECT_GT(report.committed, 0U) << to_string(arrival);
    EXPECT_EQ(report.commit_misses, 0U) << to_string(arrival);
  }
}

TEST(WorkloadTest, OpenLoopShedsUnderBackpressureWithoutLosingAdmitted) {
  WorkloadSpec spec;
  spec.arrival = Arrival::kConstant;
  spec.clients_per_node = 2;
  spec.rate_per_client = 2000.0;  // far beyond what tiny pools absorb
  spec.mempool.max_pending_count = 8;
  spec.mempool.max_pending_bytes = 1024;
  ScenarioBuilder builder = base_builder(13);
  builder.workload(spec);
  Cluster cluster(builder);
  cluster.run_for(Duration::seconds(5));

  const Report report = cluster.workload_report();
  EXPECT_GT(report.shed, 0U) << "offered load above capacity must shed";
  EXPECT_EQ(report.shed, report.rejected_full);
  EXPECT_GT(report.committed, 0U);
  EXPECT_EQ(report.commit_misses, 0U);
  EXPECT_EQ(report.committed + report.outstanding, report.admitted)
      << "every admitted request is committed or still queued — never lost";
  EXPECT_LE(report.max_queue_depth, 8U);
}

TEST(WorkloadTest, ClosedLoopNeverLosesAnAdmittedRequest) {
  // The acceptance invariant: a closed-loop run against a bounded
  // mempool, with a drain window after stop — every admitted request
  // commits exactly once.
  WorkloadSpec spec;
  spec.arrival = Arrival::kClosedLoop;
  spec.clients_per_node = 2;
  spec.in_flight = 4;
  spec.mempool.max_pending_count = 16;
  spec.mempool.max_pending_bytes = 4096;
  spec.stop = TimePoint(Duration::seconds(15).ticks());
  ScenarioBuilder builder = base_builder(14);
  builder.workload(spec);
  Cluster cluster(builder);
  cluster.run_for(Duration::seconds(25));  // 10s drain past stop

  const Report report = cluster.workload_report();
  EXPECT_GT(report.committed, 100U);
  EXPECT_EQ(report.commit_misses, 0U) << "some request committed twice";
  EXPECT_EQ(report.outstanding, 0U) << "admitted requests still un-committed after drain";
  EXPECT_EQ(report.committed, report.admitted) << "an admitted request was dropped";
  EXPECT_EQ(report.rejected_duplicate, 0U);
}

TEST(WorkloadTest, ClosedLoopHoldsItsWindow) {
  WorkloadSpec spec;
  spec.arrival = Arrival::kClosedLoop;
  spec.clients_per_node = 1;
  spec.in_flight = 3;
  ScenarioBuilder builder = base_builder(15);
  builder.workload(spec);
  Cluster cluster(builder);
  cluster.run_for(Duration::seconds(5));
  const Report report = cluster.workload_report();
  // At any instant each client has at most in_flight outstanding; at the
  // end outstanding can be at most clients x window across 4 nodes.
  EXPECT_LE(report.outstanding, 4U * 3U);
  EXPECT_GT(report.committed, 0U);
  EXPECT_EQ(report.committed + report.outstanding, report.admitted);
}

TEST(WorkloadTest, PerNodeOverridesSelectWhoDrives) {
  WorkloadSpec spec;
  spec.arrival = Arrival::kConstant;
  spec.rate_per_client = 100.0;
  WorkloadSpec disabled = spec;
  disabled.clients_per_node = 0;
  ScenarioBuilder builder = base_builder(16);
  builder.workload(spec);
  builder.node(2).workload(disabled);
  Cluster cluster(builder);
  EXPECT_NE(cluster.node_workload(0), nullptr);
  EXPECT_NE(cluster.node_workload(1), nullptr);
  EXPECT_EQ(cluster.node_workload(2), nullptr) << "clients_per_node = 0 disables the node";
  EXPECT_NE(cluster.node_workload(3), nullptr);
  cluster.run_for(Duration::seconds(3));
  EXPECT_GT(cluster.node_workload(0)->stats().submitted, 0U);
}

TEST(WorkloadTest, ValidateRejectsNonCommittingCore) {
  WorkloadSpec spec;
  ScenarioBuilder builder = base_builder(17);
  builder.core("simple-view");
  builder.workload(spec);
  const auto errors = builder.validate();
  ASSERT_FALSE(errors.empty());
  bool found = false;
  for (const auto& error : errors) {
    if (error.find("committing core") != std::string::npos) found = true;
  }
  EXPECT_TRUE(found) << "simple-view cannot complete any request";
}

TEST(WorkloadTest, ValidateRejectsConflictsAndBadShapes) {
  {
    ScenarioBuilder builder = base_builder(18);
    builder.workload([](View) { return std::vector<std::uint8_t>{}; });
    builder.workload(WorkloadSpec{});
    EXPECT_FALSE(builder.validate().empty()) << "spec and raw provider are exclusive";
  }
  {
    WorkloadSpec bad;
    bad.rate_per_client = 0.0;
    ScenarioBuilder builder = base_builder(19);
    builder.workload(bad);
    EXPECT_FALSE(builder.validate().empty());
  }
  {
    WorkloadSpec bad;
    bad.request_bytes = 4096;  // cannot fit the default 4096-byte batch + framing
    ScenarioBuilder builder = base_builder(20);
    builder.workload(bad);
    EXPECT_FALSE(builder.validate().empty());
  }
  {
    WorkloadSpec bad;
    bad.arrival = Arrival::kClosedLoop;
    bad.in_flight = 0;
    ScenarioBuilder builder = base_builder(21);
    builder.workload(bad);
    EXPECT_FALSE(builder.validate().empty());
  }
}

}  // namespace
}  // namespace lumiere::workload
