// Authenticator suite contract tests, parameterized over every registered
// scheme: whatever make_authenticator() can build must satisfy the same
// sign/verify/aggregate laws (the protocol layer never knows which scheme
// it runs on).
#include "crypto/authenticator.h"

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <string>

#include "common/rng.h"

namespace lumiere::crypto {
namespace {

class AuthenticatorTest : public ::testing::TestWithParam<std::string> {
 protected:
  static constexpr std::uint32_t kN = 7;  // f = 2
  std::unique_ptr<Authenticator> auth_ = make_authenticator(GetParam(), kN, 1234);
  Digest msg_ = Sha256::hash("statement");

  [[nodiscard]] AuthView view() const { return AuthView(auth_.get()); }
};

TEST_P(AuthenticatorTest, SignVerifyRoundTrip) {
  const Signer signer = auth_->signer_for(2);
  const Signature sig = signer.sign(msg_);
  EXPECT_EQ(sig.signer, 2U);
  EXPECT_EQ(sig.sig.size(), auth_->wire_spec().sig_bytes);
  EXPECT_TRUE(auth_->verify(msg_, sig));
}

TEST_P(AuthenticatorTest, RejectsWrongMessage) {
  const Signature sig = auth_->signer_for(1).sign(Sha256::hash("a"));
  EXPECT_FALSE(auth_->verify(Sha256::hash("b"), sig));
}

TEST_P(AuthenticatorTest, RejectsForgedSigner) {
  Signature sig = auth_->signer_for(0).sign(msg_);
  sig.signer = 1;  // claim someone else signed it
  EXPECT_FALSE(auth_->verify(msg_, sig));
}

TEST_P(AuthenticatorTest, RejectsOutOfRangeSigner) {
  Signature sig = auth_->signer_for(0).sign(msg_);
  sig.signer = kN + 3;
  EXPECT_FALSE(auth_->verify(msg_, sig));
}

TEST_P(AuthenticatorTest, KeysDifferAcrossProcessesAndSeeds) {
  const auto other = make_authenticator(GetParam(), kN, 77);
  // Same process id, different seed -> different signature bytes.
  EXPECT_NE(auth_->signer_for(0).sign(msg_).sig, other->signer_for(0).sign(msg_).sig);
  // Different processes, same seed -> different signature bytes.
  EXPECT_NE(auth_->signer_for(0).sign(msg_).sig, auth_->signer_for(1).sign(msg_).sig);
}

TEST_P(AuthenticatorTest, DeterministicForSeed) {
  const auto twin = make_authenticator(GetParam(), kN, 1234);
  EXPECT_EQ(auth_->signer_for(3).sign(msg_).sig, twin->signer_for(3).sign(msg_).sig);
}

TEST_P(AuthenticatorTest, CrossInstanceSignaturesDoNotVerify) {
  const auto other = make_authenticator(GetParam(), kN, 77);
  const Signature sig = auth_->signer_for(0).sign(msg_);
  EXPECT_FALSE(other->verify(msg_, sig));
}

TEST_P(AuthenticatorTest, AggregatesAtThreshold) {
  QuorumAggregator agg(view(), msg_, 5);
  for (ProcessId id = 0; id < 5; ++id) {
    EXPECT_FALSE(agg.complete());
    EXPECT_TRUE(agg.add(threshold_share(auth_->signer_for(id), msg_)));
  }
  EXPECT_TRUE(agg.complete());
  const ThresholdSig sig = agg.aggregate();
  EXPECT_EQ(sig.signer_count(), 5U);
  EXPECT_TRUE(view().verify_aggregate(sig, 5));
}

TEST_P(AuthenticatorTest, AggregatorRejectsDuplicates) {
  QuorumAggregator agg(view(), msg_, 3);
  const PartialSig share = threshold_share(auth_->signer_for(0), msg_);
  EXPECT_TRUE(agg.add(share));
  EXPECT_FALSE(agg.add(share));
  EXPECT_EQ(agg.count(), 1U);
}

TEST_P(AuthenticatorTest, AggregatorRejectsInvalidShare) {
  QuorumAggregator agg(view(), msg_, 3);
  PartialSig bogus = threshold_share(auth_->signer_for(0), msg_);
  bogus.signer = 1;  // share not actually signed by 1
  EXPECT_FALSE(agg.add(bogus));
  PartialSig out_of_range = threshold_share(auth_->signer_for(0), msg_);
  out_of_range.signer = 50;
  EXPECT_FALSE(agg.add(out_of_range));
}

TEST_P(AuthenticatorTest, AggregatorRejectsShareForOtherMessage) {
  QuorumAggregator agg(view(), msg_, 3);
  const PartialSig other = threshold_share(auth_->signer_for(0), Sha256::hash("other"));
  EXPECT_FALSE(agg.add(other));
}

TEST_P(AuthenticatorTest, VerifyRejectsBelowThreshold) {
  QuorumAggregator agg(view(), msg_, 3);
  for (ProcessId id = 0; id < 3; ++id) agg.add(threshold_share(auth_->signer_for(id), msg_));
  const ThresholdSig sig = agg.aggregate();
  EXPECT_TRUE(view().verify_aggregate(sig, 3));
  EXPECT_FALSE(view().verify_aggregate(sig, 4)) << "3 signers cannot satisfy a 4-threshold";
}

TEST_P(AuthenticatorTest, VerifyRejectsTamperedTag) {
  QuorumAggregator agg(view(), msg_, 3);
  for (ProcessId id = 0; id < 3; ++id) agg.add(threshold_share(auth_->signer_for(id), msg_));
  ThresholdSig sig = agg.aggregate();
  sig.tag = SigBytes::zeros(sig.tag.size());
  EXPECT_FALSE(view().verify_aggregate(sig, 3));
}

TEST_P(AuthenticatorTest, VerifyRejectsTamperedSignerSet) {
  QuorumAggregator agg(view(), msg_, 3);
  for (ProcessId id = 0; id < 3; ++id) agg.add(threshold_share(auth_->signer_for(id), msg_));
  ThresholdSig sig = agg.aggregate();
  sig.signers.add(5);  // claim an extra signer
  EXPECT_FALSE(view().verify_aggregate(sig, 3));
}

TEST_P(AuthenticatorTest, SharesAreDomainSeparatedFromSignatures) {
  // A threshold share must not verify as a standalone signature over the
  // message (and vice versa): different statements.
  const PartialSig share = threshold_share(auth_->signer_for(0), msg_);
  EXPECT_FALSE(auth_->verify(msg_, Signature{share.signer, share.sig}));
}

TEST_P(AuthenticatorTest, WireSizesFollowTheSchemeSpec) {
  const SigWireSpec spec = auth_->wire_spec();
  const Signature sig = auth_->signer_for(0).sign(msg_);
  EXPECT_EQ(sig.wire_size(), spec.sig_bytes + 4U);
  QuorumAggregator agg(view(), msg_, 3);
  for (ProcessId id = 0; id < 3; ++id) agg.add(threshold_share(auth_->signer_for(id), msg_));
  const ThresholdSig ts = agg.aggregate();
  EXPECT_EQ(ts.tag.size(), spec.tag_bytes(3));
  EXPECT_EQ(ts.wire_size(), kKappaBytes + spec.tag_bytes(3));
}

TEST_P(AuthenticatorTest, MemoSkipsNothingSemantically) {
  // A memo pre-loaded by a (simulated) pipeline worker changes cost, not
  // outcomes: valid claims pass with or without it, and a claim absent
  // from the memo still verifies inline.
  VerifyMemo memo;
  const AuthView memoized(auth_.get(), &memo);
  const PartialSig share = threshold_share(auth_->signer_for(2), msg_);
  EXPECT_TRUE(memoized.verify_share(msg_, share));
  memo.remember(share_fingerprint(msg_, share));
  EXPECT_TRUE(memoized.verify_share(msg_, share));

  // Tampered share: its fingerprint is not in the memo, so the inline
  // check still rejects it.
  PartialSig bad = share;
  bad.signer = 3;
  EXPECT_FALSE(memoized.verify_share(msg_, bad));
}

TEST_P(AuthenticatorTest, MemoizedAggregateStillChecksThreshold) {
  VerifyMemo memo;
  const AuthView memoized(auth_.get(), &memo);
  QuorumAggregator agg(view(), msg_, 3);
  for (ProcessId id = 0; id < 3; ++id) agg.add(threshold_share(auth_->signer_for(id), msg_));
  const ThresholdSig sig = agg.aggregate();
  memo.remember(aggregate_fingerprint(sig));
  EXPECT_TRUE(memoized.verify_aggregate(sig, 3));
  // The threshold check is never memoized away.
  EXPECT_FALSE(memoized.verify_aggregate(sig, 4));
}

/// Property sweep: any f+1 / 2f+1 subset aggregates and verifies.
TEST_P(AuthenticatorTest, AnySubsetOfThresholdSizeWorks) {
  for (const std::uint32_t f : {1U, 2U, 3U}) {
    const std::uint32_t n = 3 * f + 1;
    const auto auth = make_authenticator(GetParam(), n, 77);
    const AuthView view(auth.get());
    const Digest msg = Sha256::hash("sweep");
    Rng rng(f * 31 + 7);
    for (int round = 0; round < 3; ++round) {
      const std::uint32_t m = (round % 2 == 0) ? f + 1 : 2 * f + 1;
      QuorumAggregator agg(view, msg, m);
      const auto perm = rng.permutation(n);
      for (std::uint32_t i = 0; i < m; ++i) {
        ASSERT_TRUE(agg.add(threshold_share(auth->signer_for(perm[i]), msg)));
      }
      ASSERT_TRUE(agg.complete());
      EXPECT_TRUE(view.verify_aggregate(agg.aggregate(), m));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, AuthenticatorTest,
                         ::testing::ValuesIn(scheme_names()),
                         [](const auto& info) { return info.param; });

TEST(AuthenticatorRegistryTest, DefaultSchemeIsRegistered) {
  EXPECT_TRUE(has_scheme(kDefaultScheme));
  const auto names = scheme_names();
  EXPECT_GE(names.size(), 2U)
      << "expect the sim default plus at least one real-signature scheme";
}

TEST(AuthenticatorRegistryTest, UnknownSchemeThrowsListingKnownOnes) {
  try {
    (void)make_authenticator("no-such-scheme", 4, 1);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("no-such-scheme"), std::string::npos);
    EXPECT_NE(what.find(kDefaultScheme), std::string::npos);
  }
}

TEST(VerifyMemoTest, BoundedAndClearsWhenFull) {
  VerifyMemo memo(/*max_entries=*/4);
  for (int i = 0; i < 4; ++i) memo.remember(Sha256::hash(std::to_string(i)));
  EXPECT_EQ(memo.size(), 4U);
  EXPECT_TRUE(memo.contains(Sha256::hash("0")));
  memo.remember(Sha256::hash("overflow"));  // full -> cleared, then inserted
  EXPECT_EQ(memo.size(), 1U);
  EXPECT_FALSE(memo.contains(Sha256::hash("0")));
  EXPECT_TRUE(memo.contains(Sha256::hash("overflow")));
}

}  // namespace
}  // namespace lumiere::crypto
