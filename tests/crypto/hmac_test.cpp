#include "crypto/hmac.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace lumiere::crypto {
namespace {

// RFC 4231 test case 1.
TEST(HmacTest, Rfc4231Case1) {
  const std::vector<std::uint8_t> key(20, 0x0b);
  const std::string msg = "Hi There";
  const Digest mac = hmac_sha256(
      std::span<const std::uint8_t>(key.data(), key.size()),
      std::span<const std::uint8_t>(reinterpret_cast<const std::uint8_t*>(msg.data()),
                                    msg.size()));
  EXPECT_EQ(mac.hex(), "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

// RFC 4231 test case 2 ("Jefe").
TEST(HmacTest, Rfc4231Case2) {
  const std::string key = "Jefe";
  const std::string msg = "what do ya want for nothing?";
  const Digest mac = hmac_sha256(
      std::span<const std::uint8_t>(reinterpret_cast<const std::uint8_t*>(key.data()),
                                    key.size()),
      std::span<const std::uint8_t>(reinterpret_cast<const std::uint8_t*>(msg.data()),
                                    msg.size()));
  EXPECT_EQ(mac.hex(), "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

// RFC 4231 test case 3: key 20x0xaa, data 50x0xdd.
TEST(HmacTest, Rfc4231Case3) {
  const std::vector<std::uint8_t> key(20, 0xaa);
  const std::vector<std::uint8_t> data(50, 0xdd);
  const Digest mac = hmac_sha256(std::span<const std::uint8_t>(key.data(), key.size()),
                                 std::span<const std::uint8_t>(data.data(), data.size()));
  EXPECT_EQ(mac.hex(), "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
}

// RFC 4231 test case 6: oversized key (131 bytes) must be hashed first.
TEST(HmacTest, Rfc4231Case6OversizedKey) {
  const std::vector<std::uint8_t> key(131, 0xaa);
  const std::string msg = "Test Using Larger Than Block-Size Key - Hash Key First";
  const Digest mac = hmac_sha256(
      std::span<const std::uint8_t>(key.data(), key.size()),
      std::span<const std::uint8_t>(reinterpret_cast<const std::uint8_t*>(msg.data()),
                                    msg.size()));
  EXPECT_EQ(mac.hex(), "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(HmacTest, KeySensitivity) {
  SecretKey k1{};
  SecretKey k2{};
  k2[0] = 1;
  EXPECT_NE(hmac_sha256(k1, "message"), hmac_sha256(k2, "message"));
}

TEST(HmacTest, MessageSensitivity) {
  SecretKey key{};
  key[5] = 42;
  EXPECT_NE(hmac_sha256(key, "message-a"), hmac_sha256(key, "message-b"));
  EXPECT_EQ(hmac_sha256(key, "same"), hmac_sha256(key, "same"));
}

}  // namespace
}  // namespace lumiere::crypto
