#include "crypto/threshold.h"

#include <gtest/gtest.h>

namespace lumiere::crypto {
namespace {

class ThresholdTest : public ::testing::Test {
 protected:
  static constexpr std::uint32_t kN = 7;  // f = 2
  Pki pki_{kN, 1234};
  Digest msg_ = Sha256::hash("statement");
};

TEST_F(ThresholdTest, AggregatesAtThreshold) {
  ThresholdAggregator agg(&pki_, msg_, 5, kN);
  for (ProcessId id = 0; id < 5; ++id) {
    EXPECT_FALSE(agg.complete());
    EXPECT_TRUE(agg.add(threshold_share(pki_.signer_for(id), msg_)));
  }
  EXPECT_TRUE(agg.complete());
  const ThresholdSig sig = agg.aggregate();
  EXPECT_EQ(sig.signer_count(), 5U);
  EXPECT_TRUE(verify_threshold(pki_, sig, 5));
}

TEST_F(ThresholdTest, RejectsDuplicates) {
  ThresholdAggregator agg(&pki_, msg_, 3, kN);
  const PartialSig share = threshold_share(pki_.signer_for(0), msg_);
  EXPECT_TRUE(agg.add(share));
  EXPECT_FALSE(agg.add(share));
  EXPECT_EQ(agg.count(), 1U);
}

TEST_F(ThresholdTest, RejectsInvalidShare) {
  ThresholdAggregator agg(&pki_, msg_, 3, kN);
  PartialSig bogus = threshold_share(pki_.signer_for(0), msg_);
  bogus.signer = 1;  // share not actually signed by 1
  EXPECT_FALSE(agg.add(bogus));
  PartialSig out_of_range = threshold_share(pki_.signer_for(0), msg_);
  out_of_range.signer = 50;
  EXPECT_FALSE(agg.add(out_of_range));
}

TEST_F(ThresholdTest, RejectsShareForOtherMessage) {
  ThresholdAggregator agg(&pki_, msg_, 3, kN);
  const PartialSig other = threshold_share(pki_.signer_for(0), Sha256::hash("other"));
  EXPECT_FALSE(agg.add(other));
}

TEST_F(ThresholdTest, VerifyRejectsBelowThreshold) {
  ThresholdAggregator agg(&pki_, msg_, 3, kN);
  for (ProcessId id = 0; id < 3; ++id) agg.add(threshold_share(pki_.signer_for(id), msg_));
  const ThresholdSig sig = agg.aggregate();
  EXPECT_TRUE(verify_threshold(pki_, sig, 3));
  EXPECT_FALSE(verify_threshold(pki_, sig, 4)) << "3 signers cannot satisfy a 4-threshold";
}

TEST_F(ThresholdTest, VerifyRejectsTamperedTag) {
  ThresholdAggregator agg(&pki_, msg_, 3, kN);
  for (ProcessId id = 0; id < 3; ++id) agg.add(threshold_share(pki_.signer_for(id), msg_));
  ThresholdSig sig = agg.aggregate();
  sig.tag = Sha256::hash("forged");
  EXPECT_FALSE(verify_threshold(pki_, sig, 3));
}

TEST_F(ThresholdTest, VerifyRejectsTamperedSignerSet) {
  ThresholdAggregator agg(&pki_, msg_, 3, kN);
  for (ProcessId id = 0; id < 3; ++id) agg.add(threshold_share(pki_.signer_for(id), msg_));
  ThresholdSig sig = agg.aggregate();
  sig.signers.add(5);  // claim an extra signer
  EXPECT_FALSE(verify_threshold(pki_, sig, 3));
}

TEST_F(ThresholdTest, SharesAreDomainSeparatedFromSignatures) {
  // A threshold share must not verify as a standalone signature over the
  // message (and vice versa): different statements.
  const PartialSig share = threshold_share(pki_.signer_for(0), msg_);
  EXPECT_FALSE(pki_.verify(msg_, Signature{share.signer, share.mac}));
}

TEST_F(ThresholdTest, WireSizeIsKappaIndependentOfSigners) {
  EXPECT_EQ(ThresholdSig::wire_size(), 2 * kKappaBytes);
}

/// Property sweep: any f+1 / 2f+1 subset aggregates and verifies.
class ThresholdSubsetTest : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(ThresholdSubsetTest, AnySubsetOfThresholdSizeWorks) {
  const std::uint32_t f = GetParam();
  const std::uint32_t n = 3 * f + 1;
  Pki pki(n, 77);
  const Digest msg = Sha256::hash("sweep");
  Rng rng(f * 31 + 7);
  for (int round = 0; round < 5; ++round) {
    const std::uint32_t m = (round % 2 == 0) ? f + 1 : 2 * f + 1;
    ThresholdAggregator agg(&pki, msg, m, n);
    const auto perm = rng.permutation(n);
    for (std::uint32_t i = 0; i < m; ++i) {
      ASSERT_TRUE(agg.add(threshold_share(pki.signer_for(perm[i]), msg)));
    }
    ASSERT_TRUE(agg.complete());
    EXPECT_TRUE(verify_threshold(pki, agg.aggregate(), m));
  }
}

INSTANTIATE_TEST_SUITE_P(VariousF, ThresholdSubsetTest, ::testing::Values(1U, 2U, 3U, 5U, 10U));

}  // namespace
}  // namespace lumiere::crypto
