#include "crypto/sha256.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace lumiere::crypto {
namespace {

// FIPS 180-4 / NIST test vectors.
TEST(Sha256Test, EmptyString) {
  EXPECT_EQ(Sha256::hash("").hex(),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256Test, Abc) {
  EXPECT_EQ(Sha256::hash("abc").hex(),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256Test, TwoBlockMessage) {
  EXPECT_EQ(Sha256::hash("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq").hex(),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256Test, MillionAs) {
  Sha256 hasher;
  const std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) hasher.update(chunk);
  EXPECT_EQ(hasher.finish().hex(),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256Test, ExactBlockBoundary) {
  // 64 bytes: exercises the padding path where rem == 0 after a full block.
  const std::string data(64, 'x');
  EXPECT_EQ(Sha256::hash(data).hex(), Sha256::hash(data).hex());
  EXPECT_NE(Sha256::hash(data), Sha256::hash(std::string(63, 'x')));
}

TEST(Sha256Test, PaddingBoundary55And56) {
  // 55 bytes: length fits with padding in one block; 56: needs an extra.
  const std::string a(55, 'y');
  const std::string b(56, 'y');
  EXPECT_NE(Sha256::hash(a), Sha256::hash(b));
  // Regression values computed with coreutils sha256sum.
  EXPECT_EQ(Sha256::hash(std::string(55, 'a')).hex(),
            "9f4390f8d30c2dd92ec9f095b65e2b9ae9b0a925a5258e241c9f1e910f734318");
  EXPECT_EQ(Sha256::hash(std::string(56, 'a')).hex(),
            "b35439a4ac6f0948b6d6f9e3c6af0f5f590ce20f1bde7090ef7970686ec6738a");
}

TEST(Sha256Test, IncrementalMatchesOneShot) {
  const std::string data = "the quick brown fox jumps over the lazy dog";
  Sha256 hasher;
  for (char c : data) hasher.update(std::string_view(&c, 1));
  EXPECT_EQ(hasher.finish(), Sha256::hash(data));
}

TEST(Sha256Test, ResetReuses) {
  Sha256 hasher;
  hasher.update("abc");
  (void)hasher.finish();
  hasher.reset();
  hasher.update("abc");
  EXPECT_EQ(hasher.finish().hex(),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(DigestTest, PrefixAndZero) {
  const Digest d = Sha256::hash("abc");
  EXPECT_EQ(d.prefix64(), 0xba7816bf8f01cfeaULL);
  EXPECT_FALSE(d.is_zero());
  EXPECT_TRUE(Digest().is_zero());
}

TEST(DigestTest, OrderingAndHashing) {
  const Digest a = Sha256::hash("a");
  const Digest b = Sha256::hash("b");
  EXPECT_NE(a, b);
  EXPECT_TRUE(a < b || b < a);
  std::hash<Digest> hasher;
  EXPECT_NE(hasher(a), hasher(b));
}

}  // namespace
}  // namespace lumiere::crypto
