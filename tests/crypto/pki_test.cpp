#include "crypto/pki.h"

#include <gtest/gtest.h>

namespace lumiere::crypto {
namespace {

TEST(PkiTest, SignVerifyRoundTrip) {
  const Pki pki(4, 99);
  const Signer signer = pki.signer_for(2);
  const Digest msg = Sha256::hash("hello");
  const Signature sig = signer.sign(msg);
  EXPECT_EQ(sig.signer, 2U);
  EXPECT_TRUE(pki.verify(msg, sig));
}

TEST(PkiTest, RejectsWrongMessage) {
  const Pki pki(4, 99);
  const Signature sig = pki.signer_for(1).sign(Sha256::hash("a"));
  EXPECT_FALSE(pki.verify(Sha256::hash("b"), sig));
}

TEST(PkiTest, RejectsForgedSigner) {
  const Pki pki(4, 99);
  const Digest msg = Sha256::hash("m");
  Signature sig = pki.signer_for(0).sign(msg);
  sig.signer = 1;  // claim someone else signed it
  EXPECT_FALSE(pki.verify(msg, sig));
}

TEST(PkiTest, RejectsOutOfRangeSigner) {
  const Pki pki(4, 99);
  Signature sig = pki.signer_for(0).sign(Sha256::hash("m"));
  sig.signer = 7;
  EXPECT_FALSE(pki.verify(Sha256::hash("m"), sig));
}

TEST(PkiTest, KeysDifferAcrossProcessesAndSeeds) {
  const Pki pki_a(4, 1);
  const Pki pki_b(4, 2);
  const Digest msg = Sha256::hash("m");
  // Same process id, different seed -> different signature.
  EXPECT_NE(pki_a.signer_for(0).sign(msg).mac, pki_b.signer_for(0).sign(msg).mac);
  // Different processes, same seed -> different signature.
  EXPECT_NE(pki_a.signer_for(0).sign(msg).mac, pki_a.signer_for(1).sign(msg).mac);
}

TEST(PkiTest, DeterministicForSeed) {
  const Pki pki_a(4, 5);
  const Pki pki_b(4, 5);
  const Digest msg = Sha256::hash("m");
  EXPECT_EQ(pki_a.signer_for(3).sign(msg).mac, pki_b.signer_for(3).sign(msg).mac);
}

TEST(PkiTest, CrossPkiSignaturesDoNotVerify) {
  const Pki pki_a(4, 1);
  const Pki pki_b(4, 2);
  const Digest msg = Sha256::hash("m");
  const Signature sig = pki_a.signer_for(0).sign(msg);
  EXPECT_FALSE(pki_b.verify(msg, sig));
}

}  // namespace
}  // namespace lumiere::crypto
